package bulkpim

// TPC-H experiments: Fig. 8 (per-query run time normalized to Naive)
// and Fig. 9 (scope buffer hit rates — the TPC-H columns from the same
// runs, plus the YCSB column from a dedicated batch). One spec plans
// the whole (query x model) grid plus the fig9 YCSB points, so a
// distributed run ships them all as one unit.

import (
	"fmt"
	"sync"

	"bulkpim/internal/report"
	"bulkpim/internal/workload/tpch"
	"bulkpim/internal/workload/ycsb"
)

// tpchIdentity is the TPC-H workload identity for the result cache:
// query name plus everything NewWorkload derives the instruction
// streams from.
func tpchIdentity(q tpch.QuerySpec, threads int, scale float64, verify bool) string {
	return fmt.Sprintf("tpch:%s:threads=%d:scale=%g:verify=%v", q.Name, threads, scale, verify)
}

func tpchKey(query string, m Model) string {
	return fmt.Sprintf("tpch/%s/model=%s", query, m)
}

// tpchThreads is the paper's TPC-H worker count.
const tpchThreads = 4

// lazyTPCH defers workload construction to the first executing job of
// a query, mirroring lazyYCSB: planning touches no workload, a
// fully-cached run constructs none, and with a snapshot store attached
// construction is first tried as a content-addressed load. The
// prepared workload is shared read-only by the query's model variants.
type lazyTPCH struct {
	q       tpch.QuerySpec
	threads int
	scale   float64
	verify  bool
	snap    *SnapshotStore
	once    sync.Once
	w       *tpch.Workload
}

func (l *lazyTPCH) workload() *tpch.Workload {
	l.once.Do(func() {
		l.w = generateTPCH(l.snap, l.q, l.threads, l.scale, l.verify)
	})
	return l.w
}

// planTPCH enumerates one job per (query, model) point.
func planTPCH(opts Options, models []Model) []SimJob {
	var specs []SimJob
	for _, q := range tpch.Queries() {
		lw := &lazyTPCH{q: q, threads: tpchThreads, scale: opts.tpchScale(), snap: opts.Snapshots}
		extra := tpchIdentity(q, tpchThreads, opts.tpchScale(), false)
		for _, m := range models {
			m := m
			specs = append(specs, SimJob{
				Key:    tpchKey(q.Name, m),
				Base:   DefaultConfig(),
				Mutate: func(cfg *Config) { cfg.Model = m },
				Execute: countExec(func(cfg Config) (Result, error) {
					return tpch.Run(lw.workload(), cfg)
				}),
				Extra: extra,
			})
		}
	}
	return specs
}

// TPCHRun is one query under one model.
type TPCHRun struct {
	Query  string
	Model  Model
	Result Result
}

// TPCHSweep runs every Table IV query under the given models, one job
// per (query, model) point. Each query's workload is prepared once and
// shared read-only across its model variants.
func TPCHSweep(opts Options, models []Model) ([]TPCHRun, error) {
	rs, err := runPlan(opts, "tpch sweep", planTPCH(opts, models))
	var out []TPCHRun
	for _, q := range tpch.Queries() {
		for _, m := range models {
			if r, ok := rs.Lookup(tpchKey(q.Name, m)); ok {
				out = append(out, TPCHRun{Query: q.Name, Model: m, Result: r})
			}
		}
	}
	return out, err
}

// fig9YCSBKey identifies the Fig. 9 YCSB-column points.
func fig9YCSBKey(m Model) string { return fmt.Sprintf("fig9-ycsb/model=%s", m) }

// planFig9YCSB enumerates the YCSB column of Fig. 9: the proposed
// models on the sweep's largest workload.
func planFig9YCSB(opts Options) []SimJob {
	lw := &lazyYCSB{p: opts.lastRecordsParams(), snap: opts.Snapshots}
	extra := ycsbIdentity(lw.p)
	var specs []SimJob
	for _, m := range ProposedModels() {
		m := m
		specs = append(specs, SimJob{
			Key:    fig9YCSBKey(m),
			Base:   DefaultConfig(),
			Mutate: func(cfg *Config) { cfg.Model = m },
			Execute: countExec(func(cfg Config) (Result, error) {
				return ycsb.Run(lw.workload(), cfg)
			}),
			Extra: extra,
		})
	}
	return specs
}

// tpchKeys enumerates the TPC-H grid's job keys for the given models.
func tpchKeys(models []Model) []string {
	var out []string
	for _, q := range tpch.Queries() {
		for _, m := range models {
			out = append(out, tpchKey(q.Name, m))
		}
	}
	return out
}

// fig9YCSBKeys enumerates the Fig. 9 YCSB-column job keys.
func fig9YCSBKeys() []string {
	var out []string
	for _, m := range ProposedModels() {
		out = append(out, fig9YCSBKey(m))
	}
	return out
}

func fig8Spec() ExperimentSpec {
	return ExperimentSpec{
		Name:    "fig8",
		Bundles: []string{"fig9"},
		Plan: func(opts Options) ([]SimJob, error) {
			return append(planTPCH(opts, fig7Variants), planFig9YCSB(opts)...), nil
		},
		// fig9's hit rates come from the same TPC-H runs as fig8 (its
		// table builder normalizes against the full grid, Naive
		// included), plus the dedicated YCSB-column batch.
		Artifacts: func(opts Options) []Artifact {
			tk := tpchKeys(fig7Variants)
			return []Artifact{
				{Name: "fig8", Keys: tk},
				{Name: "fig9", Keys: append(append([]string{}, tk...), fig9YCSBKeys()...)},
			}
		},
		Render: func(opts Options, artifact string, rs *ResultSet) (string, error) {
			f8, f9, err := fig8fig9Tables(opts, rs)
			if err != nil {
				return "", err
			}
			switch artifact {
			case "fig8":
				return render(f8), nil
			case "fig9":
				y, err := fig9YCSBTable(rs)
				if err != nil {
					return "", err
				}
				return render(f9, y), nil
			}
			return "", fmt.Errorf("fig8: unknown artifact %q", artifact)
		},
	}
}

// fig8fig9Tables folds the TPC-H grid's results into Fig. 8 (run time
// normalized to Naive, with the geometric mean) and Fig. 9's TPC-H
// scope-buffer hit rates.
func fig8fig9Tables(opts Options, rs *ResultSet) (fig8, fig9 *Table, err error) {
	models := fig7Variants
	byQuery := map[string]map[string]float64{}
	hit := map[string]map[string]float64{}
	for _, q := range tpch.Queries() {
		byQuery[q.Name] = map[string]float64{}
		hit[q.Name] = map[string]float64{}
		for _, m := range models {
			r, ok := rs.Lookup(tpchKey(q.Name, m))
			if !ok {
				continue
			}
			byQuery[q.Name][m.String()] = float64(r.Cycles)
			hit[q.Name][m.String()] = r.Stats["llc.sb_hit_rate"]
		}
	}

	fig8 = &Table{Title: "Fig8 — TPC-H run time normalized to Naive"}
	fig8.Header = append([]string{"query"}, variantNames(models[1:])...)
	geo := map[string][]float64{}
	for _, q := range tpch.Queries() {
		row := []string{q.Name}
		naive := byQuery[q.Name][Naive.String()]
		if naive == 0 {
			return nil, nil, fmt.Errorf("fig8: no Naive baseline for %s", q.Name)
		}
		for _, m := range models[1:] {
			v := byQuery[q.Name][m.String()] / naive
			geo[m.String()] = append(geo[m.String()], v)
			row = append(row, report.F(v))
		}
		fig8.AddRow(row...)
	}
	row := []string{"geomean"}
	for _, m := range models[1:] {
		row = append(row, report.F(report.GeoMean(geo[m.String()])))
	}
	fig8.AddRow(row...)

	fig9 = &Table{Title: "Fig9 — scope buffer hit rate"}
	proposed := []Model{Atomic, Store, Scope, ScopeRelaxed}
	fig9.Header = append([]string{"query"}, variantNames(proposed)...)
	for _, q := range tpch.Queries() {
		row := []string{q.Name}
		for _, m := range proposed {
			row = append(row, report.F(hit[q.Name][m.String()]))
		}
		fig9.AddRow(row...)
	}
	return fig8, fig9, nil
}

// fig9YCSBTable renders the YCSB column of Fig. 9.
func fig9YCSBTable(rs *ResultSet) (*Table, error) {
	t := &Table{Title: "Fig9 (YCSB) — scope buffer hit rate", Header: []string{"model", "hit rate"}}
	for _, m := range ProposedModels() {
		r, ok := rs.Lookup(fig9YCSBKey(m))
		if !ok {
			return nil, fmt.Errorf("fig9-ycsb: missing point for %s", m)
		}
		t.AddRow(m.String(), report.F(r.Stats["llc.sb_hit_rate"]))
	}
	return t, nil
}

// Fig8Fig9 reproduces Fig. 8: per-query run time normalized to Naive, with
// the geometric mean, and Fig. 9's scope buffer hit rates from the same
// runs.
func Fig8Fig9(opts Options) (fig8, fig9 *Table, err error) {
	rs, err := runPlan(opts, "tpch sweep", planTPCH(opts, fig7Variants))
	if err != nil {
		return nil, nil, err
	}
	return fig8fig9Tables(opts, rs)
}

// Fig9YCSB adds the YCSB column of Fig. 9 (scope buffer hit rate).
func Fig9YCSB(opts Options) (*Table, error) {
	rs, err := runPlan(opts, "fig9-ycsb", planFig9YCSB(opts))
	if err != nil {
		return nil, err
	}
	return fig9YCSBTable(rs)
}
