package bulkpim

// Tests for the coordinator's bulkpim-side wiring: the dedup-then-
// dispatch property over the real suite manifest, the worker launch
// template, and the cache precondition. The dispatch machinery itself
// (retry, exclusion, fleet loss) is tested in internal/coord; the
// subprocess protocol end to end in cmd/pimbench.

import (
	"flag"
	"io"
	"math/rand"
	"reflect"
	"sync"
	"testing"
	"time"

	"bulkpim/internal/coord"
	"bulkpim/internal/system"
)

// manifestWorker is an in-memory coord.Worker over the real planned
// suite: it "executes" a task by recording its fingerprint, with
// seeded random delays to shuffle dispatch order.
type manifestWorker struct {
	rng   *rand.Rand
	mu    *sync.Mutex
	count map[string]int
}

func (w *manifestWorker) Run(t coord.Task) (system.Result, error) {
	time.Sleep(time.Duration(w.rng.Intn(100)) * time.Microsecond)
	w.mu.Lock()
	w.count[t.Fingerprint]++
	w.mu.Unlock()
	return system.Result{}, nil
}

func (w *manifestWorker) Close() error { return nil }

// TestCoordinateDeliversEachFingerprintOnce: over the paper's
// full-scale manifest, the coordinator's dedup-then-dispatch must
// deliver each distinct fingerprint to exactly one execution under
// randomized worker timing (seeded), for several fleet sizes — the
// distributed counterpart of the shard partition property.
func TestCoordinateDeliversEachFingerprintOnce(t *testing.T) {
	planned, err := planFor("all", Options{Scale: ScaleFull})
	if err != nil {
		t.Fatal(err)
	}
	groups, manifest := dedupPlan(planned)
	if len(groups) == 0 || len(groups) >= len(manifest) {
		t.Fatalf("degenerate dedup: %d groups of %d planned entries", len(groups), len(manifest))
	}
	tasks := make([]coord.Task, len(groups))
	for i, g := range groups {
		tasks[i] = coord.Task{Key: g.keys[0], Fingerprint: g.fp}
	}

	for _, workers := range []int{1, 3, 8} {
		var mu sync.Mutex
		count := map[string]int{}
		sum, err := coord.Run(tasks, coord.Options{
			Workers: workers,
			Launch: func(id int) (coord.Worker, error) {
				return &manifestWorker{rng: rand.New(rand.NewSource(int64(workers*100 + id))),
					mu: &mu, count: count}, nil
			},
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if sum.Done != len(groups) || sum.Failed != 0 || sum.Retried != 0 {
			t.Fatalf("workers=%d: summary %+v", workers, sum)
		}
		for _, g := range groups {
			if got := count[g.fp]; got != 1 {
				t.Fatalf("workers=%d: fingerprint %s (key %s) executed %d times, want exactly 1",
					workers, g.fp, g.keys[0], got)
			}
		}
	}
}

// TestDedupPlanGroupsCoverManifest: the fingerprint groups partition
// the manifest's distinct (key, fingerprint) identities — every
// planned identity appears in exactly one group, canonical key first
// in plan order.
func TestDedupPlanGroupsCoverManifest(t *testing.T) {
	planned, err := planFor("all", Options{Scale: ScaleFull})
	if err != nil {
		t.Fatal(err)
	}
	groups, manifest := dedupPlan(planned)
	type identity struct{ key, fp string }
	want := map[identity]bool{}
	firstKey := map[string]string{}
	for _, j := range manifest {
		want[identity{j.Key, j.Fingerprint}] = true
		if _, ok := firstKey[j.Fingerprint]; !ok {
			firstKey[j.Fingerprint] = j.Key
		}
	}
	got := map[identity]bool{}
	for _, g := range groups {
		if g.keys[0] != firstKey[g.fp] {
			t.Fatalf("group %s canonical key %s, want first-in-plan-order %s", g.fp, g.keys[0], firstKey[g.fp])
		}
		for _, k := range g.keys {
			id := identity{k, g.fp}
			if got[id] {
				t.Fatalf("identity %v in two groups", id)
			}
			got[id] = true
		}
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("groups cover %d identities, manifest has %d", len(got), len(want))
	}
}

// TestWorkerArgv covers the launch template grammar.
func TestWorkerArgv(t *testing.T) {
	workArgs := []string{"work", "-exp", "all", "-scale", "smoke"}

	self, err := workerArgv("", workArgs)
	if err != nil || len(self) != len(workArgs)+1 || self[0] == "" || self[1] != "work" {
		t.Fatalf("self-exec argv = %v, %v", self, err)
	}

	ssh, err := workerArgv("ssh build-02 /opt/pimbench {args}", workArgs)
	want := append([]string{"ssh", "build-02", "/opt/pimbench"}, workArgs...)
	if err != nil || !reflect.DeepEqual(ssh, want) {
		t.Fatalf("template argv = %v, %v", ssh, err)
	}

	appended, err := workerArgv("nice -n 10 /opt/pimbench", workArgs)
	want = append([]string{"nice", "-n", "10", "/opt/pimbench"}, workArgs...)
	if err != nil || !reflect.DeepEqual(appended, want) {
		t.Fatalf("no-placeholder argv = %v, %v", appended, err)
	}

	if _, err := workerArgv("   ", workArgs); err == nil {
		t.Fatal("blank template accepted")
	}
}

// workFlagSet mirrors the `pimbench work` subcommand's flag set. Keep
// it in sync with workCmd in cmd/pimbench — TestCoordWorkArgsRoundTrip
// parses coordWorkArgs through it, so an option the coordinator emits
// that workers cannot parse fails here instead of at fleet launch.
func workFlagSet() (*flag.FlagSet, map[string]*string) {
	fs := flag.NewFlagSet("work", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	got := map[string]*string{
		"exp":          fs.String("exp", "all", ""),
		"scale":        fs.String("scale", "quick", ""),
		"seed":         fs.String("seed", "0", ""),
		"snapshot-dir": fs.String("snapshot-dir", "", ""),
	}
	fs.Bool("v", false, "")
	fs.Bool("dynamic", false, "")
	fs.Int("fail-after", 0, "")
	return fs, got
}

// TestCoordWorkArgsRoundTrip: the full worker argv must round-trip
// through the work subcommand's flag set — every option propagated,
// nothing dropped, nothing the workers cannot parse. This is the guard
// the -snapshot-dir propagation fix added: a silently dropped flag
// would let workers plan with skewed options (or regenerate every
// database the store already holds).
func TestCoordWorkArgsRoundTrip(t *testing.T) {
	snap, err := OpenSnapshotStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{Scale: ScaleMedium, Seed: 7, Snapshots: snap}
	args := coordWorkArgs("fig7", opts)
	if len(args) == 0 || args[0] != "work" {
		t.Fatalf("argv must start with the work subcommand: %v", args)
	}
	fs, got := workFlagSet()
	if err := fs.Parse(args[1:]); err != nil {
		t.Fatalf("work flag set rejects coordinator argv %v: %v", args, err)
	}
	if fs.NArg() != 0 {
		t.Fatalf("argv %v leaves unparsed operands %v — a flag was dropped or misspelled", args, fs.Args())
	}
	want := map[string]string{
		"exp": "fig7", "scale": "medium", "seed": "7", "snapshot-dir": snap.Dir(),
	}
	for name, w := range want {
		if *got[name] != w {
			t.Errorf("-%s = %q, want %q", name, *got[name], w)
		}
	}

	// Without a snapshot store the flag is omitted entirely, keeping
	// workers on their no-store default.
	args = coordWorkArgs("all", Options{Scale: ScaleSmoke})
	for _, a := range args {
		if a == "-snapshot-dir" {
			t.Fatalf("store-less coordinator emitted -snapshot-dir: %v", args)
		}
	}
	fs, got = workFlagSet()
	if err := fs.Parse(args[1:]); err != nil || fs.NArg() != 0 {
		t.Fatalf("argv %v does not round-trip: %v, %v", args, err, fs.Args())
	}
	if *got["exp"] != "all" || *got["scale"] != "smoke" || *got["seed"] != "0" {
		t.Fatalf("defaults did not round-trip: %v", args)
	}
}

// TestServeWorkArgsRoundTrip: a serve daemon's dynamic-worker argv must
// also round-trip through the work flag set — the same skew guard as
// the coordinator's, for the fleet that plans per job spec.
func TestServeWorkArgsRoundTrip(t *testing.T) {
	snap, err := OpenSnapshotStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	args := serveWorkArgs(Options{Snapshots: snap})
	if len(args) == 0 || args[0] != "work" {
		t.Fatalf("argv must start with the work subcommand: %v", args)
	}
	fs, got := workFlagSet()
	if err := fs.Parse(args[1:]); err != nil {
		t.Fatalf("work flag set rejects serve argv %v: %v", args, err)
	}
	if fs.NArg() != 0 {
		t.Fatalf("argv %v leaves unparsed operands %v — a flag was dropped or misspelled", args, fs.Args())
	}
	if fs.Lookup("dynamic").Value.String() != "true" {
		t.Fatalf("serve argv %v did not set -dynamic: static workers cannot join a serve fleet", args)
	}
	if *got["snapshot-dir"] != snap.Dir() {
		t.Errorf("-snapshot-dir = %q, want %q", *got["snapshot-dir"], snap.Dir())
	}

	// Store-less daemons omit the flag, like store-less coordinators.
	for _, a := range serveWorkArgs(Options{}) {
		if a == "-snapshot-dir" {
			t.Fatalf("store-less serve argv emitted -snapshot-dir: %v", serveWorkArgs(Options{}))
		}
	}
}

// TestCoordinateRequiresCache: a coordinated run without a cache would
// compute results and drop them.
func TestCoordinateRequiresCache(t *testing.T) {
	if _, err := Coordinate("fig3", Options{Scale: ScaleSmoke}, CoordOptions{}); err == nil {
		t.Fatal("cache-less coordinated run accepted")
	}
}
