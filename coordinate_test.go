package bulkpim

// Tests for the coordinator's bulkpim-side wiring: the dedup-then-
// dispatch property over the real suite manifest, the worker launch
// template, and the cache precondition. The dispatch machinery itself
// (retry, exclusion, fleet loss) is tested in internal/coord; the
// subprocess protocol end to end in cmd/pimbench.

import (
	"math/rand"
	"reflect"
	"sync"
	"testing"
	"time"

	"bulkpim/internal/coord"
	"bulkpim/internal/system"
)

// manifestWorker is an in-memory coord.Worker over the real planned
// suite: it "executes" a task by recording its fingerprint, with
// seeded random delays to shuffle dispatch order.
type manifestWorker struct {
	rng   *rand.Rand
	mu    *sync.Mutex
	count map[string]int
}

func (w *manifestWorker) Run(t coord.Task) (system.Result, error) {
	time.Sleep(time.Duration(w.rng.Intn(100)) * time.Microsecond)
	w.mu.Lock()
	w.count[t.Fingerprint]++
	w.mu.Unlock()
	return system.Result{}, nil
}

func (w *manifestWorker) Close() error { return nil }

// TestCoordinateDeliversEachFingerprintOnce: over the paper's
// full-scale manifest, the coordinator's dedup-then-dispatch must
// deliver each distinct fingerprint to exactly one execution under
// randomized worker timing (seeded), for several fleet sizes — the
// distributed counterpart of the shard partition property.
func TestCoordinateDeliversEachFingerprintOnce(t *testing.T) {
	planned, err := planFor("all", Options{Scale: ScaleFull})
	if err != nil {
		t.Fatal(err)
	}
	groups, manifest := dedupPlan(planned)
	if len(groups) == 0 || len(groups) >= len(manifest) {
		t.Fatalf("degenerate dedup: %d groups of %d planned entries", len(groups), len(manifest))
	}
	tasks := make([]coord.Task, len(groups))
	for i, g := range groups {
		tasks[i] = coord.Task{Key: g.keys[0], Fingerprint: g.fp}
	}

	for _, workers := range []int{1, 3, 8} {
		var mu sync.Mutex
		count := map[string]int{}
		sum, err := coord.Run(tasks, coord.Options{
			Workers: workers,
			Launch: func(id int) (coord.Worker, error) {
				return &manifestWorker{rng: rand.New(rand.NewSource(int64(workers*100 + id))),
					mu: &mu, count: count}, nil
			},
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if sum.Done != len(groups) || sum.Failed != 0 || sum.Retried != 0 {
			t.Fatalf("workers=%d: summary %+v", workers, sum)
		}
		for _, g := range groups {
			if got := count[g.fp]; got != 1 {
				t.Fatalf("workers=%d: fingerprint %s (key %s) executed %d times, want exactly 1",
					workers, g.fp, g.keys[0], got)
			}
		}
	}
}

// TestDedupPlanGroupsCoverManifest: the fingerprint groups partition
// the manifest's distinct (key, fingerprint) identities — every
// planned identity appears in exactly one group, canonical key first
// in plan order.
func TestDedupPlanGroupsCoverManifest(t *testing.T) {
	planned, err := planFor("all", Options{Scale: ScaleFull})
	if err != nil {
		t.Fatal(err)
	}
	groups, manifest := dedupPlan(planned)
	type identity struct{ key, fp string }
	want := map[identity]bool{}
	firstKey := map[string]string{}
	for _, j := range manifest {
		want[identity{j.Key, j.Fingerprint}] = true
		if _, ok := firstKey[j.Fingerprint]; !ok {
			firstKey[j.Fingerprint] = j.Key
		}
	}
	got := map[identity]bool{}
	for _, g := range groups {
		if g.keys[0] != firstKey[g.fp] {
			t.Fatalf("group %s canonical key %s, want first-in-plan-order %s", g.fp, g.keys[0], firstKey[g.fp])
		}
		for _, k := range g.keys {
			id := identity{k, g.fp}
			if got[id] {
				t.Fatalf("identity %v in two groups", id)
			}
			got[id] = true
		}
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("groups cover %d identities, manifest has %d", len(got), len(want))
	}
}

// TestWorkerArgv covers the launch template grammar.
func TestWorkerArgv(t *testing.T) {
	workArgs := []string{"work", "-exp", "all", "-scale", "smoke"}

	self, err := workerArgv("", workArgs)
	if err != nil || len(self) != len(workArgs)+1 || self[0] == "" || self[1] != "work" {
		t.Fatalf("self-exec argv = %v, %v", self, err)
	}

	ssh, err := workerArgv("ssh build-02 /opt/pimbench {args}", workArgs)
	want := append([]string{"ssh", "build-02", "/opt/pimbench"}, workArgs...)
	if err != nil || !reflect.DeepEqual(ssh, want) {
		t.Fatalf("template argv = %v, %v", ssh, err)
	}

	appended, err := workerArgv("nice -n 10 /opt/pimbench", workArgs)
	want = append([]string{"nice", "-n", "10", "/opt/pimbench"}, workArgs...)
	if err != nil || !reflect.DeepEqual(appended, want) {
		t.Fatalf("no-placeholder argv = %v, %v", appended, err)
	}

	if _, err := workerArgv("   ", workArgs); err == nil {
		t.Fatal("blank template accepted")
	}
}

// TestCoordinateRequiresCache: a coordinated run without a cache would
// compute results and drop them.
func TestCoordinateRequiresCache(t *testing.T) {
	if _, err := Coordinate("fig3", Options{Scale: ScaleSmoke}, CoordOptions{}); err == nil {
		t.Fatal("cache-less coordinated run accepted")
	}
}
