package bulkpim

// Fig. 1 litmus experiment: the §I stale-read / happens-before-cycle
// scenario swept over adversary timings for every variant. Each
// model's sweep is one planned job whose verdict is folded into the
// harness Result shape, so Fig. 1 flows through the same
// plan/execute/report, cache and shard machinery as the simulation
// sweeps.

import (
	"fmt"
)

// fig1Models is the paper's Fig. 1 variant list.
var fig1Models = []Model{Naive, SWFlush, Atomic, Store, Scope, ScopeRelaxed}

func fig1Key(m Model) string { return fmt.Sprintf("fig1/model=%s", m) }

// Result.Stats keys carrying a litmus sweep's verdict (1 = observed).
const (
	litmusStaleStat      = "litmus.stale"
	litmusCycleStat      = "litmus.cycle"
	litmusIncompleteStat = "litmus.incomplete"
)

// litmusResult folds a sweep's outcomes into the Result shape.
func litmusResult(outs []LitmusOutcome) Result {
	flag := func(b bool) float64 {
		if b {
			return 1
		}
		return 0
	}
	stale, cycle := LitmusVulnerable(outs)
	incomplete := false
	for _, o := range outs {
		if !o.Completed {
			incomplete = true
		}
	}
	return Result{Stats: map[string]float64{
		litmusStaleStat:      flag(stale),
		litmusCycleStat:      flag(cycle),
		litmusIncompleteStat: flag(incomplete),
	}}
}

// planFig1 enumerates one job per model, each running the full
// adversary-timing sweep. The delays are part of the cache identity.
func planFig1() []SimJob {
	extra := fmt.Sprintf("litmus:fig1:delays=%v", LitmusDefaultSweep())
	var specs []SimJob
	for _, m := range fig1Models {
		m := m
		specs = append(specs, SimJob{
			Key:    fig1Key(m),
			Base:   DefaultConfig(),
			Mutate: func(cfg *Config) { cfg.Model = m },
			Execute: countExec(func(cfg Config) (Result, error) {
				outs, err := SweepFig1(cfg.Model, LitmusDefaultSweep())
				if err != nil {
					return Result{}, err
				}
				return litmusResult(outs), nil
			}),
			Extra: extra,
		})
	}
	return specs
}

// fig1Keys enumerates the litmus sweep's job keys, one per model.
func fig1Keys() []string {
	out := make([]string, len(fig1Models))
	for i, m := range fig1Models {
		out[i] = fig1Key(m)
	}
	return out
}

func fig1Spec() ExperimentSpec {
	s := ExperimentSpec{
		Name: "fig1",
		Plan: func(opts Options) ([]SimJob, error) { return planFig1(), nil },
	}
	s.Artifacts, s.Render = singleArtifact("fig1",
		func(Options) []string { return fig1Keys() },
		func(opts Options, rs *ResultSet) (string, error) {
			t, err := fig1TableFrom(opts, rs)
			if err != nil {
				return "", err
			}
			return render(t), nil
		})
	return s
}

// fig1TableFrom tabulates the verdicts (§I / Fig. 1).
func fig1TableFrom(opts Options, rs *ResultSet) (*Table, error) {
	t := &Table{Title: "Fig1 — litmus: stale read / happens-before cycle under adversarial prefetch",
		Header: []string{"model", "stale read", "hb cycle", "guaranteed correct"}}
	for _, m := range fig1Models {
		r, ok := rs.Lookup(fig1Key(m))
		if !ok {
			return nil, fmt.Errorf("fig1: missing sweep for %s", m)
		}
		stale := r.Stats[litmusStaleStat] != 0
		cycle := r.Stats[litmusCycleStat] != 0
		incomplete := r.Stats[litmusIncompleteStat] != 0
		verdict := "yes"
		if stale || cycle || incomplete {
			verdict = "NO"
		}
		staleS := fmt.Sprintf("%v", stale)
		if incomplete {
			staleS += " (stuck reads)"
		}
		t.AddRow(m.String(), staleS, fmt.Sprintf("%v", cycle), verdict)
		opts.log("fig1 %s stale=%v cycle=%v", m, stale, cycle)
	}
	return t, nil
}

// Fig1Table runs the litmus sweep for every variant and tabulates the
// verdicts (§I / Fig. 1).
func Fig1Table(opts Options) (*Table, error) {
	rs, err := runPlan(opts, "fig1", planFig1())
	if err != nil {
		return nil, err
	}
	return fig1TableFrom(opts, rs)
}
