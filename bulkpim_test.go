package bulkpim

import (
	"strings"
	"testing"
)

func TestFacadeModels(t *testing.T) {
	if len(ProposedModels()) != 4 || len(AllVariants()) != 7 {
		t.Fatal("model inventories wrong")
	}
	m, err := ParseModel("scope-relaxed")
	if err != nil || m != ScopeRelaxed {
		t.Fatal("ParseModel broken through facade")
	}
}

func TestTablesRender(t *testing.T) {
	cases := map[string][]string{
		"table1": {"atomic", "store", "scope", "All caches"},
		"table2": {"2MB", "MESI", "huge page"},
		"table3": {"95%", "zipfian", "uniform [1,100]"},
		"table4": {"q1", "q22", "Full-query", "1832"},
		"area":   {"0.092", "LLC only", "all caches"},
	}
	for name, wants := range cases {
		out, err := RunExperiment(name, Options{Scale: ScaleBench})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for _, w := range wants {
			if !strings.Contains(out, w) {
				t.Errorf("%s output missing %q:\n%s", name, w, out)
			}
		}
	}
}

func TestAreaReportMatchesPaper(t *testing.T) {
	rep := EstimateArea()
	if rep.LLCOnlyCalibratedPct < 0.08 || rep.LLCOnlyCalibratedPct > 0.11 {
		t.Errorf("LLC overhead %.4f%%, paper says 0.092%%", rep.LLCOnlyCalibratedPct)
	}
	if rep.AllCachesCalibratedPct < 0.2 || rep.AllCachesCalibratedPct > 0.25 {
		t.Errorf("all-caches overhead %.4f%%, paper says 0.22%%", rep.AllCachesCalibratedPct)
	}
}

func TestRunExperimentUnknown(t *testing.T) {
	if _, err := RunExperiment("fig99", Options{}); err == nil {
		t.Fatal("expected error for unknown experiment")
	}
}

func TestExperimentsList(t *testing.T) {
	found := map[string]bool{}
	for _, e := range Experiments() {
		found[e] = true
	}
	for _, want := range []string{"fig1", "fig3", "fig7", "fig8", "fig11a", "fig12", "fig13", "table1", "area", "all"} {
		if !found[want] {
			t.Errorf("experiment %s missing", want)
		}
	}
}

// TestFig3BenchScale checks the Fig. 3 ordering at the smallest scale:
// uncacheable must be the slowest coherence approach, swflush in between.
func TestFig3BenchScale(t *testing.T) {
	s, err := Fig3(Options{Scale: ScaleBench})
	if err != nil {
		t.Fatal(err)
	}
	last := len(s.X) - 1
	naive := s.Y["naive"][last]
	sw := s.Y["swflush"][last]
	unc := s.Y["uncacheable"][last]
	if naive != 1 {
		t.Fatalf("naive norm = %v", naive)
	}
	if !(unc > sw && sw > 1) {
		t.Errorf("expected uncacheable > swflush > naive, got unc=%v sw=%v", unc, sw)
	}
}

// TestFig7BenchScale checks the headline claim at the smallest scale: the
// four models' overhead over naive stays small (paper: at most ~6%; the
// reduced scale allows a wider margin) and all runs complete.
func TestFig7BenchScale(t *testing.T) {
	f, err := Fig7(Options{Scale: ScaleBench})
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []string{"atomic", "store", "scope", "scope-relaxed"} {
		for i := range f.Norm.X {
			v := f.Norm.Y[m][i]
			if v <= 0 || v > 1.5 {
				t.Errorf("%s at %v scopes: norm %v out of plausible range", m, f.Norm.X[i], v)
			}
		}
	}
	// Scan machinery engaged: scan latency sampled, skip ratio high.
	last := len(f.SkipRatio.X) - 1
	if f.SkipRatio.Y["atomic"][last] < 0.5 {
		t.Errorf("SBV skip ratio %v implausibly low", f.SkipRatio.Y["atomic"][last])
	}
}
