// Package bulkpim is a from-scratch reproduction of "On Consistency for
// Bulk-Bitwise Processing-in-Memory" (Perach, Ronen, Kvatinsky — HPCA
// 2023): four consistency models for bulk-bitwise PIM operations, the
// scope buffer and scope bit-vector coherence hardware, a deterministic
// discrete-event simulator of the host (cores, MESI caches, reordering
// NoC, memory controller) and of a PIMDB-style PIM module with a
// functional bulk-bitwise execution engine, plus the paper's YCSB and
// TPC-H workloads and a harness that regenerates every figure and table
// of its evaluation.
//
// Quick start:
//
//	cfg := bulkpim.DefaultConfig()
//	cfg.Model = bulkpim.Scope
//	w := bulkpim.NewYCSB(bulkpim.YCSBParams(100_000))
//	res, err := bulkpim.RunYCSB(w, cfg)
//
// See examples/ for runnable programs and cmd/pimbench for the experiment
// harness.
package bulkpim

import (
	"bulkpim/internal/core"
	"bulkpim/internal/cpu"
	"bulkpim/internal/mem"
	"bulkpim/internal/pimdb"
	"bulkpim/internal/report"
	"bulkpim/internal/resultcache"
	"bulkpim/internal/runner"
	"bulkpim/internal/sim"
	"bulkpim/internal/snapshot"
	"bulkpim/internal/system"
	"bulkpim/internal/workload/litmus"
	"bulkpim/internal/workload/tpch"
	"bulkpim/internal/workload/ycsb"
)

// Model selects the PIM consistency model or baseline (paper §III, §VI-C).
type Model = core.Model

// The three baselines and four proposed consistency models.
const (
	Naive        = core.Naive
	SWFlush      = core.SWFlush
	Uncacheable  = core.Uncacheable
	Atomic       = core.Atomic
	Store        = core.Store
	Scope        = core.Scope
	ScopeRelaxed = core.ScopeRelaxed
)

// ProposedModels returns the paper's four models, strictest first.
func ProposedModels() []Model { return core.ProposedModels() }

// AllVariants returns baselines plus proposed models.
func AllVariants() []Model { return core.AllVariants() }

// ParseModel converts a model name to a Model.
func ParseModel(s string) (Model, error) { return core.ParseModel(s) }

// Config is the full machine configuration (paper Table II).
type Config = system.Config

// DefaultConfig returns Table II's system.
func DefaultConfig() Config { return system.Default() }

// System is an assembled machine; Result one run's outcome.
type (
	System = system.System
	Result = system.Result
)

// NewSystem builds a machine for cfg.
func NewSystem(cfg Config) *System { return system.New(cfg) }

// Tick is simulated time in CPU cycles.
type Tick = sim.Tick

// Thread is a workload instruction stream; Instr one instruction.
type (
	Thread     = cpu.Thread
	Instr      = cpu.Instr
	InstrKind  = cpu.InstrKind
	BurstRange = cpu.BurstRange
	Barrier    = cpu.Barrier
)

// Instruction kinds for hand-built threads (litmus tests, examples).
const (
	InstrCompute    = cpu.InstrCompute
	InstrLoad       = cpu.InstrLoad
	InstrLoadBurst  = cpu.InstrLoadBurst
	InstrStore      = cpu.InstrStore
	InstrPIMOp      = cpu.InstrPIMOp
	InstrFlush      = cpu.InstrFlush
	InstrFenceFull  = cpu.InstrFenceFull
	InstrFencePIM   = cpu.InstrFencePIM
	InstrScopeFence = cpu.InstrScopeFence
	InstrBarrier    = cpu.InstrBarrier
)

// NewSliceThread builds a thread that replays a fixed instruction
// sequence.
func NewSliceThread(instrs ...Instr) Thread { return &cpu.SliceThread{Instrs: instrs} }

// NewBarrier builds a reusable barrier for n threads.
func NewBarrier(n int) *Barrier { return cpu.NewBarrier(n) }

// PIMProgram is one bulk-bitwise PIM operation (latency + functional
// effect).
type PIMProgram = mem.PIMProgram

// NewPIMProgram builds a custom PIM program: microOps drives the latency
// model; apply, when non-nil, performs the functional memory update
// through byte-granular read/write accessors.
func NewPIMProgram(name string, microOps int, apply func(read func(Addr) byte, write func(Addr, byte))) *PIMProgram {
	p := &PIMProgram{Name: name, MicroOps: microOps}
	if apply != nil {
		p.Apply = func(b *mem.Backing, writer uint64) {
			touched := make(map[mem.LineAddr]bool)
			apply(b.ByteAt, func(a Addr, v byte) {
				b.SetByte(a, v)
				touched[mem.LineOf(a)] = true
			})
			for line := range touched {
				b.SetWriter(line, writer)
			}
		}
	}
	return p
}

// ---- YCSB ----

// YCSBWorkload is a generated YCSB run (paper Table III).
type YCSBWorkload = ycsb.Workload

// YCSBParamsT are the workload knobs.
type YCSBParamsT = ycsb.Params

// YCSBParams returns Table III defaults for a record count.
func YCSBParams(records int) YCSBParamsT { return ycsb.DefaultParams(records) }

// NewYCSB generates the operation sequence.
func NewYCSB(p YCSBParamsT) *YCSBWorkload { return ycsb.New(p) }

// RunYCSB executes the workload on a fresh system built from cfg.
func RunYCSB(w *YCSBWorkload, cfg Config) (Result, error) { return ycsb.Run(w, cfg) }

// ---- TPC-H ----

// TPCHQuery describes one query's PIM section (paper Table IV).
type TPCHQuery = tpch.QuerySpec

// TPCHWorkload is a query prepared for execution.
type TPCHWorkload = tpch.Workload

// TPCHQueries returns the 19 evaluated queries.
func TPCHQueries() []TPCHQuery { return tpch.Queries() }

// TPCHQueryByName looks a query up ("q1".."q22").
func TPCHQueryByName(name string) (TPCHQuery, bool) { return tpch.QueryByName(name) }

// NewTPCH prepares a query for threads workers at a scope/run scale in
// (0, 1] (1.0 = Table IV scale).
func NewTPCH(q TPCHQuery, threads int, scale float64, verify bool) *TPCHWorkload {
	return tpch.NewWorkload(q, threads, scale, verify)
}

// RunTPCH executes the query workload on a fresh system built from cfg.
func RunTPCH(w *TPCHWorkload, cfg Config) (Result, error) { return tpch.Run(w, cfg) }

// ---- Litmus (paper §I, Fig. 1) ----

// LitmusOutcome is one Fig. 1 run's result.
type LitmusOutcome = litmus.Outcome

// RunFig1 executes the Fig. 1 scenario at one adversary timing.
func RunFig1(m Model, adversaryDelay Tick) (LitmusOutcome, error) {
	return litmus.RunFig1(m, adversaryDelay)
}

// SweepFig1 runs Fig. 1 across adversary timings.
func SweepFig1(m Model, delays []Tick) ([]LitmusOutcome, error) {
	return litmus.SweepFig1(m, delays)
}

// LitmusDefaultSweep covers the vulnerable window.
func LitmusDefaultSweep() []Tick { return litmus.DefaultSweep() }

// LitmusVulnerable summarizes a sweep.
func LitmusVulnerable(outs []LitmusOutcome) (stale, cycle bool) {
	return litmus.Vulnerable(outs)
}

// ---- parallel job runner ----

// Job is one independent simulation point for RunJobs; JobResult pairs
// its outcome with the submission index; JobOptions sets parallelism
// and an optional progress callback; SimJob is the declarative point
// spec (base Config + mutator + Execute); JobSummary is a batch's
// wall-clock / sim-cycle accounting. Every experiment sweep in this
// package runs on the same machinery.
type (
	Job        = runner.Job[Result]
	JobResult  = runner.JobResult[Result]
	JobOptions = runner.Options[Result]
	SimJob     = runner.SimJob
	JobSummary = runner.Summary
)

// RunJobs executes independent simulation jobs on a worker pool
// (JobOptions.Parallelism wide; 0 = GOMAXPROCS) and returns results
// re-ordered by submission index, so output is identical to running
// the jobs sequentially. A failed job is captured in its JobResult
// without aborting siblings. Anything jobs share — e.g. one generated
// workload across model variants — must be read-only; freeze a YCSB
// workload with its Precompute method before sharing it.
func RunJobs(jobs []Job, opts JobOptions) []JobResult { return runner.RunJobs(jobs, opts) }

// SimJobs lowers declarative job specs into runnable jobs.
func SimJobs(specs []SimJob) []Job { return runner.SimJobs(specs) }

// SummarizeJobs folds a batch into its accounting.
func SummarizeJobs(rs []JobResult) JobSummary { return runner.Summarize(rs) }

// WorkerPool is a shared worker pool: several concurrent RunJobs
// batches can submit to one pool (JobOptions.Pool), bounding total
// simulation concurrency suite-wide. RunAll uses one internally.
type WorkerPool = runner.Pool

// NewWorkerPool starts a pool of `parallelism` workers (<= 0 =
// GOMAXPROCS). Close it to release them.
func NewWorkerPool(parallelism int) *WorkerPool { return runner.NewPool(parallelism) }

// ---- persistent result cache ----

// ResultCache is an on-disk, content-addressed store of finished
// simulation results, keyed by (job key, config + workload
// fingerprint, schema version) and persisted as JSON lines. Set it on
// Options.Cache (or pimbench -cache-dir) to memoize grid points across
// harness invocations: a warm run skips already-computed points and
// emits byte-identical reports, so an interrupted sweep resumes
// cheaply. Loading tolerates truncated or corrupt lines — the residue
// of an interrupted run — and invalidates entries from older schema
// versions.
type ResultCache = resultcache.Cache

// CacheStats is the cache's hit/miss/invalidation accounting.
type CacheStats = resultcache.Stats

// OpenResultCache loads (or creates) a result cache under dir.
func OpenResultCache(dir string) (*ResultCache, error) { return resultcache.Open(dir) }

// CacheFileStats summarizes one validated cache file; CacheMergeStats
// summarizes a merge of several.
type (
	CacheFileStats  = resultcache.FileStats
	CacheMergeStats = resultcache.MergeStats
)

// ValidateResultCache strictly checks one cache file (or directory):
// unlike the tolerant load path, a corrupt line, a foreign schema
// version or conflicting results for one (key, fingerprint) identity
// is an error naming the file and line.
func ValidateResultCache(path string) (CacheFileStats, error) { return resultcache.Validate(path) }

// MergeResultCaches validates the source caches (directories or
// results.jsonl paths) and writes their deduplicated union to
// dstDir/results.jsonl — the coordinator half of a sharded run, after
// which a report pass against dstDir is served entirely from cache
// hits. See resultcache.Merge for the conflict rules.
func MergeResultCaches(dstDir string, srcs ...string) (CacheMergeStats, error) {
	return resultcache.Merge(dstDir, srcs...)
}

// ---- workload snapshot store ----

// SnapshotStore is a content-addressed, on-disk store of generated
// workload snapshots, keyed by workload identity (the same identity
// SimJob.Extra folds into result-cache fingerprints) and verified by
// an integrity hash on load. Set it on Options.Snapshots (or pimbench
// -snapshot-dir) to skip regenerating identical databases across
// harness invocations — and, with a shared filesystem, across a whole
// worker fleet: writers publish atomically, so each database is
// generated at most once suite-wide. Corrupt or foreign-version files
// degrade to regeneration, never errors.
type SnapshotStore = snapshot.Store

// SnapshotStats is the store's hit/miss/corruption accounting;
// SnapshotInfo describes one stored snapshot for inspection.
type (
	SnapshotStats = snapshot.Stats
	SnapshotInfo  = snapshot.Info
)

// OpenSnapshotStore prepares a snapshot store under dir.
func OpenSnapshotStore(dir string) (*SnapshotStore, error) { return snapshot.Open(dir) }

// ---- Hardware overhead (paper §VI-A) ----

// AreaReport is the scope buffer + SBV area estimate.
type AreaReport = core.AreaReport

// EstimateArea computes the paper's hardware-overhead claim (0.092% LLC
// only, 0.22% all caches).
func EstimateArea() AreaReport { return core.EstimateArea(core.DefaultAreaConfig()) }

// ---- misc re-exports used by examples and the harness ----

// Layout is the PIMDB record/result organization inside a scope.
type Layout = pimdb.Layout

// DefaultLayout returns the 64-array, 512x512 organization of 2MB scopes.
func DefaultLayout() Layout { return pimdb.DefaultLayout() }

// Addr is a physical address; LineAddr a cache-line-aligned address;
// ScopeID a PIM scope.
type (
	Addr     = mem.Addr
	LineAddr = mem.LineAddr
	ScopeID  = mem.ScopeID
)

// Series and Table are the harness output forms.
type (
	Series = report.Series
	Table  = report.Table
)
