// Trace example: follow a single PIM operation through the machine —
// core issue, entry-point gating, LLC scan-and-flush, memory-controller
// admission and ACK, PIM-module execution — using the simulator's debug
// tracing (the analogue of gem5 debug flags).
package main

import (
	"fmt"
	"log"
	"os"

	"bulkpim"
)

func main() {
	cfg := bulkpim.DefaultConfig()
	cfg.Model = bulkpim.Atomic
	cfg.Cores = 1
	cfg.ScopeCount = 2
	cfg.Functional = true
	cfg.TraceWriter = os.Stdout
	cfg.TraceCategories = "cpu,cache,mc,pim"

	s := bulkpim.NewSystem(cfg)
	scope := bulkpim.ScopeID(1)
	addr := s.Scopes.ScopeBase(scope) + 128

	fmt.Println("=== store -> PIM op -> load under the atomic model ===")
	var got byte
	th := bulkpim.NewSliceThread(
		bulkpim.Instr{Kind: bulkpim.InstrStore, Addr: addr, Data: []byte{0x10}, Label: "W(A)"},
		bulkpim.Instr{Kind: bulkpim.InstrPIMOp, Scope: scope, Label: "PIMop",
			Prog: bulkpim.NewPIMProgram("inc", 8, func(read func(bulkpim.Addr) byte, write func(bulkpim.Addr, byte)) {
				write(addr, read(addr)+1)
			})},
		bulkpim.Instr{Kind: bulkpim.InstrLoad, Addr: addr, Label: "R(A)",
			OnData: func(_ bulkpim.LineAddr, d []byte) { got = d[int(addr)%64] }},
	)
	res, err := s.Run([]bulkpim.Thread{th})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nrun complete in %d cycles; %d trace records; R(A)=%#x (store 0x10 + PIM increment)\n",
		res.Cycles, s.Tracer.Count(), got)
}
