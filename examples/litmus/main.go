// Litmus example: reproduce the paper's Fig. 1 — the cyclic ordering that
// software cache flushes cannot prevent — and show that the proposed
// consistency models make it impossible.
package main

import (
	"fmt"
	"log"

	"bulkpim"
)

func main() {
	fmt.Println("Fig. 1 scenario: W(A); fence; W(B); fence; [flush A,B]; PIM op {A,B <- new}")
	fmt.Println("Adversary: a timed prefetch of A between the flushes and the PIM op.")
	fmt.Println("Checker: poll B until the PIM value appears, then read A.")
	fmt.Println()

	for _, m := range []bulkpim.Model{bulkpim.SWFlush, bulkpim.Atomic, bulkpim.Store, bulkpim.Scope, bulkpim.ScopeRelaxed} {
		outs, err := bulkpim.SweepFig1(m, bulkpim.LitmusDefaultSweep())
		if err != nil {
			log.Fatal(err)
		}
		stale, cycle := bulkpim.LitmusVulnerable(outs)
		fmt.Printf("%-14s stale-read=%-5v hb-cycle=%-5v", m, stale, cycle)
		if stale || cycle {
			fmt.Print("  -> BROKEN (Fig. 1 reproduced)")
			for _, o := range outs {
				if o.Cycle != nil {
					fmt.Printf("\n    first cycle at adversary delay %d:\n    %s", o.AdversaryDelay, o.Cycle)
					break
				}
			}
		} else {
			fmt.Print("  -> safe at every adversary timing")
		}
		fmt.Println()
	}
}
