// Quickstart: build a small PIM system, store a few records, run a
// bulk-bitwise range scan under the atomic consistency model, and read the
// result bit-vector back through the simulated cache hierarchy.
package main

import (
	"fmt"
	"log"

	"bulkpim"
)

func main() {
	// A small machine: 2 cores, 4 scopes, functional PIM execution.
	cfg := bulkpim.DefaultConfig()
	cfg.Model = bulkpim.Atomic
	cfg.Cores = 2
	cfg.ScopeCount = 4
	cfg.Functional = true

	// The YCSB workload generator doubles as a tiny key-value database:
	// 5000 records, 4 scan/insert operations, with oracle verification on.
	p := bulkpim.YCSBParams(5000)
	p.Operations = 4
	p.Threads = 2
	p.Verify = true
	w := bulkpim.NewYCSB(p)

	res, err := bulkpim.RunYCSB(w, cfg)
	if err != nil {
		log.Fatal(err)
	}

	scans, inserts := w.Ops()
	fmt.Printf("ran %d scans and %d inserts over %d scopes\n", scans, inserts, w.Scopes)
	fmt.Printf("simulated time: %d cycles (%.3f ms at 3.6GHz)\n", res.Cycles, res.Seconds*1e3)
	fmt.Printf("PIM ops executed: %.0f\n", res.Stats["pim.ops_executed"])
	fmt.Printf("LLC scans: %.0f, scope buffer hit rate: %.2f\n",
		res.Stats["llc.scan_count"], res.Stats["llc.sb_hit_rate"])
	fmt.Printf("verification failures: %d (atomic model must report 0)\n", res.Violations)

	if res.Violations != 0 {
		log.Fatal("unexpected verification failures")
	}
	fmt.Println("OK: every scan observed exactly the oracle's results")
}
