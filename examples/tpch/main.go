// TPC-H PIM-section example: run query q6 (a full-query PIM section:
// filter + in-PIM aggregation) functionally on a small relation, verify
// the match bit-vectors against the oracle, then time the same query under
// each consistency model.
package main

import (
	"fmt"
	"log"

	"bulkpim"
)

func main() {
	q, ok := bulkpim.TPCHQueryByName("q6")
	if !ok {
		log.Fatal("q6 missing")
	}
	fmt.Printf("q6: %d scopes in Table IV, %d predicate terms, %d PIM ops per scope, full-query section\n\n",
		q.Scopes, len(q.Terms), q.OpsPerScope())

	// Functional run on a scaled-down relation: every match bit is checked
	// against direct predicate evaluation.
	wf := bulkpim.NewTPCH(q, 2, 0.003, true) // ~5 scopes
	wf.Runs = 1
	cfg := bulkpim.DefaultConfig()
	cfg.Model = bulkpim.Scope
	cfg.Cores = 2
	res, err := bulkpim.RunTPCH(wf, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("functional run: %d scopes, %.0f PIM ops, %d verification failures\n\n",
		wf.Scopes, res.Stats["pim.ops_executed"], res.Violations)
	if res.Violations != 0 {
		log.Fatal("bit-serial filter diverged from the oracle")
	}

	// Timing comparison at a larger scale.
	wt := bulkpim.NewTPCH(q, 4, 0.05, false) // ~91 scopes
	wt.Runs = 2
	var naive float64
	fmt.Printf("%-14s %14s %10s\n", "model", "cycles", "norm")
	for _, m := range bulkpim.AllVariants() {
		c := bulkpim.DefaultConfig()
		c.Model = m
		r, err := bulkpim.RunTPCH(wt, c)
		if err != nil {
			log.Fatalf("%v: %v", m, err)
		}
		if m == bulkpim.Naive {
			naive = float64(r.Cycles)
		}
		fmt.Printf("%-14s %14d %10.4f\n", m, r.Cycles, float64(r.Cycles)/naive)
	}
}
