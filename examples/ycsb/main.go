// YCSB model comparison: run the paper's YCSB short-range-scan workload
// (Table III) under every baseline and consistency model and print a
// miniature of Fig. 7b (run time normalized to the naive baseline).
package main

import (
	"fmt"
	"log"

	"bulkpim"
)

func main() {
	records := 2_000_000 // ~63 scopes
	p := bulkpim.YCSBParams(records)
	p.Operations = 24
	w := bulkpim.NewYCSB(p)

	fmt.Printf("YCSB: %d records (%d scopes), %d operations, %d threads\n\n",
		records, w.Scopes, p.Operations, p.Threads)

	var naive float64
	fmt.Printf("%-14s %14s %12s %10s\n", "model", "cycles", "norm", "pim-ops")
	for _, m := range bulkpim.AllVariants() {
		cfg := bulkpim.DefaultConfig()
		cfg.Model = m
		res, err := bulkpim.RunYCSB(w, cfg)
		if err != nil {
			log.Fatalf("%v: %v", m, err)
		}
		if m == bulkpim.Naive {
			naive = float64(res.Cycles)
		}
		fmt.Printf("%-14s %14d %12.4f %10.0f\n",
			m, res.Cycles, float64(res.Cycles)/naive, res.Stats["pim.ops_executed"])
	}

	fmt.Println("\nNaive and swflush do not guarantee correct execution;")
	fmt.Println("the four models below them do, at the overhead shown (paper: at most ~6%).")
}
