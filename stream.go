package bulkpim

// Streaming reports: instead of one batch report after the last job of
// the last experiment, each declared artifact (registry.go) is
// rendered and emitted the moment its final job settles. The machinery
// is split in two so every execution path can reuse it — ReportStream
// is the per-artifact remaining-key countdown fed by job settlements
// (in-process runner callbacks or coordinator completions), and
// StreamAssembler reorders the resulting emissions into canonical
// report order so the incremental output stays byte-identical to the
// batch report. StreamReport wires both onto a local run; Coordinate
// accepts a Stream hook for the fleet path (coordinate.go).

import (
	"fmt"
	"io"
	"strings"
	"sync"
)

// StreamEmit is one streamed artifact emission: the artifact's
// rendered output (or its render error) the instant its last planned
// job settled. Seq numbers emissions in settle order across the whole
// stream, starting at 0 — the order artifacts became ready, which
// varies run to run, unlike the canonical order an assembler writes.
type StreamEmit struct {
	Experiment string
	Artifact   string
	Seq        int
	Output     string
	Err        error
}

// streamArtifact is one artifact's countdown state.
type streamArtifact struct {
	spec      ExperimentSpec
	name      string
	remaining map[string]struct{}
	done      bool
}

// ReportStream tracks per-artifact remaining-key countdowns over
// settling job results and emits each artifact — rendered from results
// alone — the moment its last key settles. Settle is safe for
// concurrent use; emissions are serialized under one mutex. A key is
// honored at most once stream-wide: the suite's key→fingerprint
// mapping is coherent (a key always denotes the same simulation, see
// TestManifestKeyFingerprintCoherent), so the first settlement of a
// shared key — the Naive baselines several experiments plan — answers
// every artifact listening on it.
type ReportStream struct {
	opts Options
	emit func(StreamEmit)

	mu      sync.Mutex
	rs      *ResultSet
	settled map[string]bool
	byKey   map[string][]*streamArtifact
	seq     int
	pending int
}

// streamSpecs resolves a stream's spec list: the whole registry for
// "all", the owning spec otherwise (a bundled name like fig10 streams
// its owner's full artifact list, matching RunExperiment).
func streamSpecs(name string) ([]ExperimentSpec, error) {
	if strings.ToLower(name) == "all" {
		return registry, nil
	}
	spec, ok := LookupExperiment(name)
	if !ok {
		return nil, fmt.Errorf("unknown experiment %q (have %v)", name, Experiments())
	}
	return []ExperimentSpec{spec}, nil
}

// NewReportStream builds the countdown tracker for the named
// experiment ("all" for the suite) and immediately emits every
// jobless artifact — the static tables are renderable before any job
// runs, so they stream out at construction.
func NewReportStream(name string, opts Options, emit func(StreamEmit)) (*ReportStream, error) {
	specs, err := streamSpecs(name)
	if err != nil {
		return nil, err
	}
	s := &ReportStream{
		opts:    opts,
		emit:    emit,
		rs:      &ResultSet{byKey: map[string]Result{}},
		settled: map[string]bool{},
		byKey:   map[string][]*streamArtifact{},
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, spec := range specs {
		for _, a := range spec.Artifacts(opts) {
			sa := &streamArtifact{spec: spec, name: a.Name,
				remaining: make(map[string]struct{}, len(a.Keys))}
			for _, k := range a.Keys {
				sa.remaining[k] = struct{}{}
				s.byKey[k] = append(s.byKey[k], sa)
			}
			s.pending++
			if len(sa.remaining) == 0 {
				s.finish(sa)
			}
		}
	}
	return s, nil
}

// Settle records one settled job under its key: a result (jobErr nil)
// or a failure. Repeat settlements of a key are ignored. Every
// artifact whose last outstanding key this was is rendered and emitted
// before Settle returns. A failed job still counts down — the artifact
// emits with a render error instead of stalling the stream — so a
// stream always terminates; assemblers skip errored artifacts like the
// batch path skips failed experiments.
func (s *ReportStream) Settle(key string, r Result, jobErr error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.settled[key] {
		return
	}
	s.settled[key] = true
	if jobErr == nil {
		s.rs.byKey[key] = r
	}
	for _, sa := range s.byKey[key] {
		if sa.done {
			continue
		}
		delete(sa.remaining, key)
		if len(sa.remaining) == 0 {
			s.finish(sa)
		}
	}
}

// finish renders and emits one completed artifact; callers hold s.mu.
func (s *ReportStream) finish(sa *streamArtifact) {
	sa.done = true
	out, err := sa.spec.Render(s.opts, sa.name, s.rs)
	s.emit(StreamEmit{Experiment: sa.spec.Name, Artifact: sa.name,
		Seq: s.seq, Output: out, Err: err})
	s.seq++
	s.pending--
}

// Pending returns the number of artifacts not yet emitted.
func (s *ReportStream) Pending() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.pending
}

// streamSlot is one artifact's position in the canonical output order.
type streamSlot struct {
	exp      string
	artifact string
	first    bool // first artifact of its experiment (owns the ==== header)
	last     bool // last artifact of its experiment (owns the trailing blank line)
	ready    bool
	skip     bool
	out      string
}

// StreamAssembler reassembles streamed emissions into canonical report
// order, writing incrementally to w: an artifact's bytes go out as
// soon as it and everything before it in declaration order are ready.
// A fully-successful stream therefore produces output byte-identical
// to the batch report — experiment headers included in "all" mode —
// while still appearing figure by figure. An artifact that settled
// with an error is skipped (the run's returned error reports it), so
// on failure the assembled output diverges from batch exactly like the
// batch path's own skip-failed-experiments behaviour.
type StreamAssembler struct {
	w   io.Writer
	all bool

	mu    sync.Mutex
	slots []streamSlot
	index map[string]int // experiment+"\x00"+artifact -> slot
	next  int
	err   error
}

// NewStreamAssembler derives the canonical slot order for the named
// experiment ("all" for the suite) from the registry.
func NewStreamAssembler(name string, w io.Writer) (*StreamAssembler, error) {
	specs, err := streamSpecs(name)
	if err != nil {
		return nil, err
	}
	a := &StreamAssembler{w: w, all: strings.ToLower(name) == "all", index: map[string]int{}}
	for _, spec := range specs {
		names := spec.ArtifactNames()
		for i, an := range names {
			a.index[spec.Name+"\x00"+an] = len(a.slots)
			a.slots = append(a.slots, streamSlot{exp: spec.Name, artifact: an,
				first: i == 0, last: i == len(names)-1})
		}
	}
	return a, nil
}

// Observe feeds one emission into the assembler; safe for concurrent
// use. Unknown or repeated (experiment, artifact) pairs are ignored.
func (a *StreamAssembler) Observe(e StreamEmit) {
	a.mu.Lock()
	defer a.mu.Unlock()
	i, ok := a.index[e.Experiment+"\x00"+e.Artifact]
	if !ok || a.slots[i].ready {
		return
	}
	a.slots[i].ready = true
	a.slots[i].out = e.Output
	a.slots[i].skip = e.Err != nil
	for a.next < len(a.slots) && a.slots[a.next].ready {
		s := a.slots[a.next]
		a.next++
		if s.skip {
			continue
		}
		if a.all && s.first {
			a.write("==== " + s.exp + " ====\n")
		}
		a.write(s.out)
		if a.all && s.last {
			a.write("\n")
		}
	}
}

// write appends to the output, latching the first writer error.
func (a *StreamAssembler) write(s string) {
	if a.err != nil {
		return
	}
	_, a.err = io.WriteString(a.w, s)
}

// Err returns the first error the output writer reported, if any.
func (a *StreamAssembler) Err() error {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.err
}

// StreamReport runs the named experiment ("all" for the suite) with
// streaming reports: each artifact is rendered and handed to emit the
// moment its last job settles (emit may be nil), while w receives the
// artifacts' bytes in canonical report order, incrementally — for a
// fully-successful run, exactly the bytes RunExperiment(name) would
// return. Timings are the per-experiment walls for "all" runs, nil
// otherwise.
func StreamReport(name string, opts Options, emit func(StreamEmit), w io.Writer) ([]ExperimentTiming, error) {
	asm, err := NewStreamAssembler(name, w)
	if err != nil {
		return nil, err
	}
	observe := func(e StreamEmit) {
		asm.Observe(e)
		if emit != nil {
			emit(e)
		}
	}
	stream, err := NewReportStream(name, opts, observe)
	if err != nil {
		return nil, err
	}
	opts.onSettle = stream.Settle

	var timings []ExperimentTiming
	var runErr error
	if strings.ToLower(name) == "all" {
		// The assembler already carries every report; discard RunAll's
		// batch emissions and keep only its timing/error accounting.
		timings, runErr = RunAll(opts, func(string, string) {}, nil)
	} else {
		spec, _ := LookupExperiment(name)
		_, runErr = runSpec(spec, opts)
	}
	if werr := asm.Err(); werr != nil {
		return timings, fmt.Errorf("stream write: %w", werr)
	}
	return timings, runErr
}
