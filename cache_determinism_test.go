package bulkpim

// Tests for the persistent result cache's end-to-end contract: a
// warm-cache suite run must produce byte-identical reports to a
// cold-cache run (results round-trip exactly through the JSON-lines
// store), a warm run must actually be served from the cache, and a
// truncated cache file — the residue of an interrupted run — must
// degrade to a partial cache instead of failing the run.

import (
	"os"
	"strings"
	"testing"
)

// runAllReports executes the full suite at smoke scale against the
// given cache and returns the concatenated per-experiment reports in
// canonical order.
func runAllReports(t *testing.T, cache *ResultCache) string {
	t.Helper()
	var b strings.Builder
	opts := Options{Scale: ScaleSmoke, Cache: cache}
	if _, err := RunAll(opts, func(name, report string) {
		b.WriteString("==== " + name + " ====\n" + report + "\n")
	}, nil); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

// TestWarmCacheByteIdenticalReports is the memoization contract: the
// cold run computes and stores every grid point; the warm run must
// serve >90% of lookups from the cache (everything but the litmus
// sweeps, which carry no config fingerprint) and emit exactly the same
// bytes.
func TestWarmCacheByteIdenticalReports(t *testing.T) {
	cache, err := OpenResultCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer cache.Close()

	cold := runAllReports(t, cache)
	afterCold := cache.Stats()
	if afterCold.Stores == 0 {
		t.Fatal("cold run stored nothing")
	}

	warm := runAllReports(t, cache)
	if cold != warm {
		t.Fatalf("warm-cache reports differ from cold-cache reports\ncold %d bytes, warm %d bytes",
			len(cold), len(warm))
	}
	warmStats := cache.Stats()
	hits := warmStats.Hits - afterCold.Hits
	misses := warmStats.Misses - afterCold.Misses
	if hits+misses == 0 {
		t.Fatal("warm run performed no lookups")
	}
	if rate := float64(hits) / float64(hits+misses); rate <= 0.9 {
		t.Fatalf("warm hit rate %.1f%% (%d hits, %d misses), want >90%%",
			100*rate, hits, misses)
	}
	if warmStats.Stores != afterCold.Stores {
		t.Fatalf("warm run re-stored points: %d -> %d", afterCold.Stores, warmStats.Stores)
	}
}

// TestWarmRunAllFullyHit is the fingerprint-level Flight dedup
// follow-through (ROADMAP item closed by this PR): a cold single-
// process `-exp all` run computes each distinct fingerprint exactly
// once — aliased keys (fig9-ycsb, the ablation baseline, the sizing
// defaults all planning the suite's most expensive simulation) ride
// their Flight primary instead of recomputing — yet still leaves a
// cache entry under EVERY planned (key, fingerprint) identity, so a
// warm re-run is 100%-hit and byte-identical.
func TestWarmRunAllFullyHit(t *testing.T) {
	cache, err := OpenResultCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer cache.Close()

	before := execCount.Load()
	cold := runAllReports(t, cache)
	executed := execCount.Load() - before

	manifest, err := Manifest("all", Options{Scale: ScaleSmoke})
	if err != nil {
		t.Fatal(err)
	}
	distinct := map[string]bool{}
	for _, j := range manifest {
		distinct[j.Fingerprint] = true
	}
	if executed != int64(len(distinct)) {
		t.Fatalf("cold run executed %d simulations, suite has %d distinct fingerprints (aliases must dedup)",
			executed, len(distinct))
	}
	for _, j := range manifest {
		if _, ok := cache.Lookup(j.Key, j.Fingerprint); !ok {
			t.Fatalf("planned identity missing from cache after cold run: %s (%s)", j.Key, j.Fingerprint)
		}
	}

	beforeWarm := cache.Stats()
	warm := runAllReports(t, cache)
	stats := cache.Stats()
	if misses := stats.Misses - beforeWarm.Misses; misses != 0 {
		t.Fatalf("warm run missed the cache %d times, want 0 (100%% hit)", misses)
	}
	if cold != warm {
		t.Fatalf("warm reports differ from cold: cold %d bytes, warm %d bytes", len(cold), len(warm))
	}
}

// TestTruncatedCacheIgnoredNotFatal interrupts a cached run by
// truncating the store mid-line: reopening must succeed, valid entries
// must survive, and a fresh suite run must recompute only what was
// lost while still producing identical reports.
func TestTruncatedCacheIgnoredNotFatal(t *testing.T) {
	dir := t.TempDir()
	cache, err := OpenResultCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	reference := runAllReports(t, cache)
	entries := cache.Len()
	cache.Close()

	b, err := os.ReadFile(cache.Path())
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(cache.Path(), b[:len(b)-37], 0o644); err != nil {
		t.Fatal(err)
	}

	reopened, err := OpenResultCache(dir)
	if err != nil {
		t.Fatalf("truncated cache must not be fatal: %v", err)
	}
	defer reopened.Close()
	if reopened.Stats().Corrupt == 0 {
		t.Fatalf("truncated line not counted: %+v", reopened.Stats())
	}
	if got := reopened.Len(); got == 0 || got >= entries {
		t.Fatalf("loaded %d entries from truncated file, had %d", got, entries)
	}
	if rerun := runAllReports(t, reopened); rerun != reference {
		t.Fatal("reports after cache truncation differ from reference")
	}
}
