package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// Canned `go test -bench` output: custom metrics, a GOMAXPROCS suffix,
// paired BitSerial and Ref baselines, an unpaired benchmark, and noise
// lines.
const canned = `goos: linux
goarch: amd64
pkg: bulkpim/internal/pim
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkKernel-4            	 8210526	       145.5 ns/op	   6873216 events/sec
BenchmarkAddFields           	    2731	    127641 ns/op	         7.791 ns/row-bit
BenchmarkAddFieldsBitSerial  	     651	    551359 ns/op	        33.65 ns/row-bit
BenchmarkMulFields           	    2533	    135004 ns/op	         0.2575 ns/row-bit
BenchmarkMulFieldsBitSerial  	      33	  10571324 ns/op	        20.16 ns/row-bit
BenchmarkPopCount            	 2924404	       205.1 ns/op	         0.4005 ns/row-bit
BenchmarkPopCountBitSerial   	 1799893	       353.8 ns/op	         0.6910 ns/row-bit
PASS
ok  	bulkpim/internal/pim	3.287s
pkg: bulkpim/internal/memctrl
BenchmarkSchedule            	    1036	   1129930 ns/op	   1359378 reqs/sec
BenchmarkScheduleRef         	      56	  21874256 ns/op	     70220 reqs/sec
PASS
ok  	bulkpim/internal/memctrl	2.681s
pkg: bulkpim/internal/system
BenchmarkTransactionPath         	   30000	      1018 ns/op	       1 B/op	       2 allocs/op
BenchmarkTransactionPathUnpooled 	   30000	      1569 ns/op	     635 B/op	       8 allocs/op
PASS
ok  	bulkpim/internal/system	0.082s
`

func runCanned(t *testing.T, args ...string) (Report, string, int) {
	t.Helper()
	var stdout, stderr bytes.Buffer
	code := run(args, strings.NewReader(canned), &stdout, &stderr)
	var rep Report
	if stdout.Len() > 0 {
		if err := json.Unmarshal(stdout.Bytes(), &rep); err != nil {
			t.Fatalf("bad JSON: %v\n%s", err, stdout.String())
		}
	}
	return rep, stderr.String(), code
}

func TestParseAndSpeedups(t *testing.T) {
	rep, _, code := runCanned(t)
	if code != 0 {
		t.Fatalf("exit code %d", code)
	}
	if len(rep.Benchmarks) != 11 {
		t.Fatalf("parsed %d benchmarks, want 11", len(rep.Benchmarks))
	}
	if rep.Benchmarks[0].Name != "Kernel" {
		t.Fatalf("GOMAXPROCS suffix not stripped: %q", rep.Benchmarks[0].Name)
	}
	if got := rep.Benchmarks[0].Metrics["events/sec"]; got != 6873216 {
		t.Fatalf("events/sec = %v", got)
	}
	if got := rep.Benchmarks[1].NsPerOp; got != 127641 {
		t.Fatalf("ns/op = %v", got)
	}
	want := map[string]float64{
		"AddFields": 551359.0 / 127641,
		"MulFields": 10571324.0 / 135004,
		"PopCount":  353.8 / 205.1,
		"Schedule":  21874256.0 / 1129930,
	}
	for name, ratio := range want {
		if got := rep.Speedups[name]; got < ratio*0.999 || got > ratio*1.001 {
			t.Fatalf("speedup[%s] = %v, want ~%v", name, got, ratio)
		}
	}
	if _, ok := rep.Speedups["Kernel"]; ok {
		t.Fatal("unpaired Kernel must not get a speedup entry")
	}
}

// The gate passes when every gated pair clears the threshold, even if
// an ungated pair (PopCount, load-bound) is below it.
func TestGateSelectsPairs(t *testing.T) {
	_, stderr, code := runCanned(t, "-min-speedup", "3", "-gate", "AddFields,MulFields,Schedule")
	if code != 0 {
		t.Fatalf("exit code %d, stderr:\n%s", code, stderr)
	}
	if !strings.Contains(stderr, "AddFields speedup") {
		t.Fatalf("missing gate diagnostic:\n%s", stderr)
	}
	if !strings.Contains(stderr, "Schedule speedup") {
		t.Fatalf("missing Ref-paired gate diagnostic:\n%s", stderr)
	}
}

func TestGateFailsBelowThreshold(t *testing.T) {
	_, stderr, code := runCanned(t, "-min-speedup", "3")
	if code != 1 {
		t.Fatalf("exit code %d, want 1 (PopCount is below 3x)", code)
	}
	if !strings.Contains(stderr, "PopCount speedup") || !strings.Contains(stderr, "below") {
		t.Fatalf("stderr:\n%s", stderr)
	}
}

// A gated name with no pair in the input is a hard failure — a renamed
// benchmark must not silently disable its gate.
func TestGateMissingPairFails(t *testing.T) {
	_, stderr, code := runCanned(t, "-min-speedup", "3", "-gate", "AddFieldz")
	if code != 1 {
		t.Fatalf("exit code %d, want 1", code)
	}
	if !strings.Contains(stderr, "not found") {
		t.Fatalf("stderr:\n%s", stderr)
	}
}

// -benchmem columns land in first-class fields, the Unpooled pair gets an
// allocs/op ratio, and its ns/op speedup is reported alongside.
func TestAllocColumnsAndRatios(t *testing.T) {
	rep, _, code := runCanned(t)
	if code != 0 {
		t.Fatalf("exit code %d", code)
	}
	var tx Benchmark
	for _, b := range rep.Benchmarks {
		if b.Name == "TransactionPath" {
			tx = b
		}
	}
	if tx.AllocsPerOp != 2 || tx.BytesPerOp != 1 {
		t.Fatalf("TransactionPath allocs/op=%v B/op=%v, want 2/1", tx.AllocsPerOp, tx.BytesPerOp)
	}
	if got := rep.AllocRatios["TransactionPath"]; got != 2.0/8 {
		t.Fatalf("alloc ratio = %v, want 0.25", got)
	}
	if got := rep.Speedups["TransactionPath"]; got < 1.5 || got > 1.6 {
		t.Fatalf("Unpooled pair speedup = %v, want ~1.54", got)
	}
}

func TestAllocGatePassesAndFails(t *testing.T) {
	_, stderr, code := runCanned(t, "-max-alloc-ratio", "0.5", "-alloc-gate", "TransactionPath")
	if code != 0 {
		t.Fatalf("exit code %d (ratio 0.25 <= 0.5), stderr:\n%s", code, stderr)
	}
	if !strings.Contains(stderr, "TransactionPath allocs/op ratio") {
		t.Fatalf("missing alloc gate diagnostic:\n%s", stderr)
	}
	_, stderr, code = runCanned(t, "-max-alloc-ratio", "0.1")
	if code != 1 {
		t.Fatalf("exit code %d, want 1 (ratio 0.25 > 0.1)", code)
	}
	if !strings.Contains(stderr, "above") {
		t.Fatalf("stderr:\n%s", stderr)
	}
}

// An alloc-gated name with no Unpooled pair fails hard, like -gate.
func TestAllocGateMissingPairFails(t *testing.T) {
	_, stderr, code := runCanned(t, "-max-alloc-ratio", "0.5", "-alloc-gate", "Schedule")
	if code != 1 {
		t.Fatalf("exit code %d, want 1", code)
	}
	if !strings.Contains(stderr, "not found") {
		t.Fatalf("stderr:\n%s", stderr)
	}
}

func TestEmptyInputFails(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run(nil, strings.NewReader("PASS\n"), &stdout, &stderr); code != 2 {
		t.Fatalf("exit code %d, want 2", code)
	}
}

// Serve-latency style input: custom metrics only, gated by value bounds
// instead of baseline pairs.
const servedCanned = `BenchmarkServeWarm 200 812345 ns/op 1.0000 hit-rate 700000 p50-ns 2500000 p99-ns
BenchmarkServeMixed 100 42812345 ns/op 0.8000 hit-rate 900000 p50-ns 98000000 p99-ns
PASS
`

func runServed(t *testing.T, args ...string) (string, int) {
	t.Helper()
	var stdout, stderr bytes.Buffer
	code := run(args, strings.NewReader(servedCanned), &stdout, &stderr)
	return stderr.String(), code
}

func TestMetricGatesPass(t *testing.T) {
	stderr, code := runServed(t,
		"-min-metric", "ServeWarm:hit-rate=0.99,ServeMixed:hit-rate=0.5",
		"-max-metric", "ServeWarm:p99-ns=1e9")
	if code != 0 {
		t.Fatalf("exit code %d, stderr:\n%s", code, stderr)
	}
	if !strings.Contains(stderr, "ServeWarm hit-rate 1 (min gate 0.99)") {
		t.Fatalf("missing pass line:\n%s", stderr)
	}
}

func TestMetricGatesFail(t *testing.T) {
	if stderr, code := runServed(t, "-min-metric", "ServeMixed:hit-rate=0.99"); code != 1 ||
		!strings.Contains(stderr, "hit-rate 0.8 below the 0.99 gate") {
		t.Fatalf("min gate: exit %d, stderr:\n%s", code, stderr)
	}
	if stderr, code := runServed(t, "-max-metric", "ServeMixed:p99-ns=1e6"); code != 1 ||
		!strings.Contains(stderr, "p99-ns 9.8e+07 above the 1e+06 gate") {
		t.Fatalf("max gate: exit %d, stderr:\n%s", code, stderr)
	}
	// First-class columns are addressable by their go-bench unit names.
	if stderr, code := runServed(t, "-max-metric", "ServeWarm:ns/op=1000"); code != 1 ||
		!strings.Contains(stderr, "ServeWarm ns/op") {
		t.Fatalf("ns/op gate: exit %d, stderr:\n%s", code, stderr)
	}
	// Missing benchmark or metric fails instead of silently passing.
	if stderr, code := runServed(t, "-min-metric", "Nope:hit-rate=0.5"); code != 1 ||
		!strings.Contains(stderr, "benchmark Nope not found") {
		t.Fatalf("missing benchmark: exit %d, stderr:\n%s", code, stderr)
	}
	if stderr, code := runServed(t, "-min-metric", "ServeWarm:zz=0.5"); code != 1 ||
		!strings.Contains(stderr, "has no zz metric") {
		t.Fatalf("missing metric: exit %d, stderr:\n%s", code, stderr)
	}
}

func TestMetricGateBadSpec(t *testing.T) {
	for _, bad := range []string{"NoColon=1", "Name:metric", "Name:metric=x", ":m=1", "Name:=1"} {
		if _, code := runServed(t, "-min-metric", bad); code != 2 {
			t.Fatalf("spec %q: exit %d, want 2", bad, code)
		}
	}
}
