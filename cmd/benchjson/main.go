// Command benchjson converts `go test -bench` output into the
// BENCH_sim_throughput.json artifact and gates paired speedups.
//
// Each benchmark line becomes a record carrying ns/op plus any custom
// metrics (events/sec, ns/row-bit). For every benchmark with a paired
// baseline in the same input — Foo / FooBitSerial (the bit-serial arith
// references) or Foo / FooRef (the reference-scheduler baselines) — the
// tool computes speedup = ns/op(baseline) / ns/op(Foo); the baseline is
// recorded in the same run, on the same machine, so the ratio is
// load-comparable.
//
//	go test -bench ... ./... | benchjson -min-speedup 3 -gate AddFields,MulFields > BENCH_sim_throughput.json
//
// With -min-speedup > 0, a gated pair below the threshold fails the
// run (exit 1) after writing the JSON, so CI still uploads the
// artifact that shows the regression. -gate selects which pairs the
// threshold applies to (default: every pair found).
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Benchmark is one parsed `go test -bench` result line. AllocsPerOp and
// BytesPerOp are first-class (from -benchmem's allocs/op and B/op columns)
// so allocation gates don't dig through Metrics.
type Benchmark struct {
	Name        string             `json:"name"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	AllocsPerOp float64            `json:"allocs_per_op,omitempty"`
	BytesPerOp  float64            `json:"bytes_per_op,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// Report is the JSON document benchjson emits. AllocRatios maps each
// benchmark with a FooUnpooled counterpart to allocs/op(Foo) /
// allocs/op(FooUnpooled) — 0.5 means pooling removed half the
// allocations.
type Report struct {
	Benchmarks  []Benchmark        `json:"benchmarks"`
	Speedups    map[string]float64 `json:"speedups,omitempty"`
	AllocRatios map[string]float64 `json:"alloc_ratios,omitempty"`
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

func run(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("benchjson", flag.ContinueOnError)
	fs.SetOutput(stderr)
	minSpeedup := fs.Float64("min-speedup", 0, "fail (exit 1) when a gated Foo/FooBitSerial pair is below this ratio (0 = report only)")
	gate := fs.String("gate", "", "comma-separated benchmark names the -min-speedup gate applies to (default: every pair)")
	maxAllocRatio := fs.Float64("max-alloc-ratio", 0, "fail (exit 1) when a gated Foo/FooUnpooled allocs/op ratio exceeds this (0 = report only); 0.5 requires pooling to remove half the allocations")
	allocGate := fs.String("alloc-gate", "", "comma-separated benchmark names the -max-alloc-ratio gate applies to (default: every Unpooled pair)")
	minMetric := fs.String("min-metric", "", "comma-separated Name:metric=value gates; fail (exit 1) when the named benchmark's metric is below value or missing (e.g. ServeWarm:hit-rate=0.99)")
	maxMetric := fs.String("max-metric", "", "comma-separated Name:metric=value gates; fail (exit 1) when the named benchmark's metric is above value or missing (e.g. ServeWarm:p99-ns=1e9)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	minGates, err := parseMetricGates(*minMetric)
	if err != nil {
		fmt.Fprintf(stderr, "benchjson: -min-metric: %v\n", err)
		return 2
	}
	maxGates, err := parseMetricGates(*maxMetric)
	if err != nil {
		fmt.Fprintf(stderr, "benchjson: -max-metric: %v\n", err)
		return 2
	}

	benches, err := parseBench(stdin)
	if err != nil {
		fmt.Fprintf(stderr, "benchjson: %v\n", err)
		return 2
	}
	if len(benches) == 0 {
		fmt.Fprintln(stderr, "benchjson: no benchmark lines on stdin")
		return 2
	}
	report := Report{Benchmarks: benches, Speedups: speedups(benches), AllocRatios: allocRatios(benches)}

	enc := json.NewEncoder(stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(report); err != nil {
		fmt.Fprintf(stderr, "benchjson: %v\n", err)
		return 2
	}

	fail := false
	if *minSpeedup > 0 {
		for _, name := range gatedNames(*gate, report.Speedups) {
			ratio, ok := report.Speedups[name]
			if !ok {
				fmt.Fprintf(stderr, "benchjson: gated pair for %s (no %s{%s} baseline) not found in input\n",
					name, name, strings.Join(baselineSuffixes, ","))
				fail = true
				continue
			}
			if ratio < *minSpeedup {
				fmt.Fprintf(stderr, "benchjson: %s speedup %.2fx below the %.2fx gate\n", name, ratio, *minSpeedup)
				fail = true
			} else {
				fmt.Fprintf(stderr, "benchjson: %s speedup %.2fx (gate %.2fx)\n", name, ratio, *minSpeedup)
			}
		}
	}
	if *maxAllocRatio > 0 {
		for _, name := range gatedNames(*allocGate, report.AllocRatios) {
			ratio, ok := report.AllocRatios[name]
			if !ok {
				fmt.Fprintf(stderr, "benchjson: alloc-gated pair for %s (no %sUnpooled baseline with allocs/op) not found in input\n", name, name)
				fail = true
				continue
			}
			if ratio > *maxAllocRatio {
				fmt.Fprintf(stderr, "benchjson: %s allocs/op ratio %.3f above the %.3f gate\n", name, ratio, *maxAllocRatio)
				fail = true
			} else {
				fmt.Fprintf(stderr, "benchjson: %s allocs/op ratio %.3f (gate %.3f)\n", name, ratio, *maxAllocRatio)
			}
		}
	}
	if len(minGates)+len(maxGates) > 0 {
		byName := map[string]Benchmark{}
		for _, b := range benches {
			byName[b.Name] = b
		}
		checkGate := func(g metricGate, min bool) {
			rel, bound := "above", "max"
			if min {
				rel, bound = "below", "min"
			}
			b, ok := byName[g.bench]
			if !ok {
				fmt.Fprintf(stderr, "benchjson: %s-metric gate: benchmark %s not found in input\n", bound, g.bench)
				fail = true
				return
			}
			v, ok := metricValue(b, g.metric)
			if !ok {
				fmt.Fprintf(stderr, "benchjson: %s-metric gate: %s has no %s metric\n", bound, g.bench, g.metric)
				fail = true
				return
			}
			if (min && v < g.value) || (!min && v > g.value) {
				fmt.Fprintf(stderr, "benchjson: %s %s %g %s the %g gate\n", g.bench, g.metric, v, rel, g.value)
				fail = true
				return
			}
			fmt.Fprintf(stderr, "benchjson: %s %s %g (%s gate %g)\n", g.bench, g.metric, v, bound, g.value)
		}
		for _, g := range minGates {
			checkGate(g, true)
		}
		for _, g := range maxGates {
			checkGate(g, false)
		}
	}
	if fail {
		return 1
	}
	return 0
}

// metricGate is one -min-metric/-max-metric bound: a threshold on a
// named benchmark's named metric.
type metricGate struct {
	bench, metric string
	value         float64
}

// parseMetricGates parses comma-separated Name:metric=value specs.
func parseMetricGates(s string) ([]metricGate, error) {
	if s == "" {
		return nil, nil
	}
	var out []metricGate
	for _, part := range strings.Split(s, ",") {
		bench, rest, ok := strings.Cut(part, ":")
		if !ok || bench == "" {
			return nil, fmt.Errorf("%q is not Name:metric=value", part)
		}
		metric, val, ok := strings.Cut(rest, "=")
		if !ok || metric == "" {
			return nil, fmt.Errorf("%q is not Name:metric=value", part)
		}
		v, err := strconv.ParseFloat(val, 64)
		if err != nil {
			return nil, fmt.Errorf("%q: bad value %q", part, val)
		}
		out = append(out, metricGate{bench: bench, metric: metric, value: v})
	}
	return out, nil
}

// metricValue reads one metric off a benchmark record; the three
// first-class columns are addressable by their go-bench unit names.
func metricValue(b Benchmark, metric string) (float64, bool) {
	switch metric {
	case "ns/op":
		return b.NsPerOp, b.NsPerOp > 0
	case "allocs/op":
		return b.AllocsPerOp, true
	case "B/op":
		return b.BytesPerOp, true
	}
	v, ok := b.Metrics[metric]
	return v, ok
}

// parseBench extracts benchmark result lines: name, iteration count,
// then (value, unit) pairs. GOMAXPROCS suffixes (-8) are stripped from
// names so pairing is machine-independent.
func parseBench(r io.Reader) ([]Benchmark, error) {
	var out []Benchmark
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue // PASS/ok/header lines that happen to start with Benchmark
		}
		b := Benchmark{Name: benchName(fields[0]), Iterations: iters}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("line %q: bad value %q", sc.Text(), fields[i])
			}
			switch fields[i+1] {
			case "ns/op":
				b.NsPerOp = v
				continue
			case "allocs/op":
				b.AllocsPerOp = v
				continue
			case "B/op":
				b.BytesPerOp = v
				continue
			}
			if b.Metrics == nil {
				b.Metrics = map[string]float64{}
			}
			b.Metrics[fields[i+1]] = v
		}
		out = append(out, b)
	}
	return out, sc.Err()
}

func benchName(s string) string {
	s = strings.TrimPrefix(s, "Benchmark")
	if i := strings.LastIndex(s, "-"); i > 0 {
		if _, err := strconv.Atoi(s[i+1:]); err == nil {
			s = s[:i]
		}
	}
	return s
}

// baselineSuffixes mark baseline benchmarks: FooBitSerial is Foo's
// bit-serial arith reference, FooRef its reference-scheduler (linear
// conflict scan) counterpart, FooUnpooled its pool-disabled allocation
// baseline.
var baselineSuffixes = []string{"BitSerial", "Ref", "Unpooled"}

// speedups pairs every Foo with its baseline-suffixed counterpart from
// the same run.
func speedups(benches []Benchmark) map[string]float64 {
	byName := map[string]Benchmark{}
	for _, b := range benches {
		byName[b.Name] = b
	}
	out := map[string]float64{}
	for name, base := range byName {
		for _, suffix := range baselineSuffixes {
			if !strings.HasSuffix(name, suffix) {
				continue
			}
			fast, ok := byName[strings.TrimSuffix(name, suffix)]
			if !ok || fast.NsPerOp <= 0 {
				continue
			}
			out[fast.Name] = base.NsPerOp / fast.NsPerOp
		}
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

// allocRatios pairs every Foo with its FooUnpooled baseline by allocs/op.
// A pair with a zero-allocation baseline is skipped (nothing to remove).
func allocRatios(benches []Benchmark) map[string]float64 {
	byName := map[string]Benchmark{}
	for _, b := range benches {
		byName[b.Name] = b
	}
	out := map[string]float64{}
	for name, base := range byName {
		if !strings.HasSuffix(name, "Unpooled") || base.AllocsPerOp <= 0 {
			continue
		}
		fast, ok := byName[strings.TrimSuffix(name, "Unpooled")]
		if !ok {
			continue
		}
		out[fast.Name] = fast.AllocsPerOp / base.AllocsPerOp
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

// gatedNames resolves the -gate list; empty means every pair, sorted
// for stable diagnostics.
func gatedNames(gate string, pairs map[string]float64) []string {
	if gate != "" {
		var names []string
		for _, n := range strings.Split(gate, ",") {
			if n = strings.TrimSpace(n); n != "" {
				names = append(names, n)
			}
		}
		return names
	}
	names := make([]string, 0, len(pairs))
	for n := range pairs {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
