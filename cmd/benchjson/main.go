// Command benchjson converts `go test -bench` output into the
// BENCH_sim_throughput.json artifact and gates paired speedups.
//
// Each benchmark line becomes a record carrying ns/op plus any custom
// metrics (events/sec, ns/row-bit). For every benchmark with a paired
// baseline in the same input — Foo / FooBitSerial (the bit-serial arith
// references) or Foo / FooRef (the reference-scheduler baselines) — the
// tool computes speedup = ns/op(baseline) / ns/op(Foo); the baseline is
// recorded in the same run, on the same machine, so the ratio is
// load-comparable.
//
//	go test -bench ... ./... | benchjson -min-speedup 3 -gate AddFields,MulFields > BENCH_sim_throughput.json
//
// With -min-speedup > 0, a gated pair below the threshold fails the
// run (exit 1) after writing the JSON, so CI still uploads the
// artifact that shows the regression. -gate selects which pairs the
// threshold applies to (default: every pair found).
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Benchmark is one parsed `go test -bench` result line.
type Benchmark struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	NsPerOp    float64            `json:"ns_per_op"`
	Metrics    map[string]float64 `json:"metrics,omitempty"`
}

// Report is the JSON document benchjson emits.
type Report struct {
	Benchmarks []Benchmark        `json:"benchmarks"`
	Speedups   map[string]float64 `json:"speedups,omitempty"`
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

func run(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("benchjson", flag.ContinueOnError)
	fs.SetOutput(stderr)
	minSpeedup := fs.Float64("min-speedup", 0, "fail (exit 1) when a gated Foo/FooBitSerial pair is below this ratio (0 = report only)")
	gate := fs.String("gate", "", "comma-separated benchmark names the -min-speedup gate applies to (default: every pair)")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	benches, err := parseBench(stdin)
	if err != nil {
		fmt.Fprintf(stderr, "benchjson: %v\n", err)
		return 2
	}
	if len(benches) == 0 {
		fmt.Fprintln(stderr, "benchjson: no benchmark lines on stdin")
		return 2
	}
	report := Report{Benchmarks: benches, Speedups: speedups(benches)}

	enc := json.NewEncoder(stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(report); err != nil {
		fmt.Fprintf(stderr, "benchjson: %v\n", err)
		return 2
	}

	if *minSpeedup <= 0 {
		return 0
	}
	gated := gatedNames(*gate, report.Speedups)
	fail := false
	for _, name := range gated {
		ratio, ok := report.Speedups[name]
		if !ok {
			fmt.Fprintf(stderr, "benchjson: gated pair for %s (no %s{%s} baseline) not found in input\n",
				name, name, strings.Join(baselineSuffixes, ","))
			fail = true
			continue
		}
		if ratio < *minSpeedup {
			fmt.Fprintf(stderr, "benchjson: %s speedup %.2fx below the %.2fx gate\n", name, ratio, *minSpeedup)
			fail = true
		} else {
			fmt.Fprintf(stderr, "benchjson: %s speedup %.2fx (gate %.2fx)\n", name, ratio, *minSpeedup)
		}
	}
	if fail {
		return 1
	}
	return 0
}

// parseBench extracts benchmark result lines: name, iteration count,
// then (value, unit) pairs. GOMAXPROCS suffixes (-8) are stripped from
// names so pairing is machine-independent.
func parseBench(r io.Reader) ([]Benchmark, error) {
	var out []Benchmark
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue // PASS/ok/header lines that happen to start with Benchmark
		}
		b := Benchmark{Name: benchName(fields[0]), Iterations: iters}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("line %q: bad value %q", sc.Text(), fields[i])
			}
			if fields[i+1] == "ns/op" {
				b.NsPerOp = v
				continue
			}
			if b.Metrics == nil {
				b.Metrics = map[string]float64{}
			}
			b.Metrics[fields[i+1]] = v
		}
		out = append(out, b)
	}
	return out, sc.Err()
}

func benchName(s string) string {
	s = strings.TrimPrefix(s, "Benchmark")
	if i := strings.LastIndex(s, "-"); i > 0 {
		if _, err := strconv.Atoi(s[i+1:]); err == nil {
			s = s[:i]
		}
	}
	return s
}

// baselineSuffixes mark baseline benchmarks: FooBitSerial is Foo's
// bit-serial arith reference, FooRef its reference-scheduler (linear
// conflict scan) counterpart.
var baselineSuffixes = []string{"BitSerial", "Ref"}

// speedups pairs every Foo with its baseline-suffixed counterpart from
// the same run.
func speedups(benches []Benchmark) map[string]float64 {
	byName := map[string]Benchmark{}
	for _, b := range benches {
		byName[b.Name] = b
	}
	out := map[string]float64{}
	for name, base := range byName {
		for _, suffix := range baselineSuffixes {
			if !strings.HasSuffix(name, suffix) {
				continue
			}
			fast, ok := byName[strings.TrimSuffix(name, suffix)]
			if !ok || fast.NsPerOp <= 0 {
				continue
			}
			out[fast.Name] = base.NsPerOp / fast.NsPerOp
		}
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

// gatedNames resolves the -gate list; empty means every pair, sorted
// for stable diagnostics.
func gatedNames(gate string, pairs map[string]float64) []string {
	if gate != "" {
		var names []string
		for _, n := range strings.Split(gate, ",") {
			if n = strings.TrimSpace(n); n != "" {
				names = append(names, n)
			}
		}
		return names
	}
	names := make([]string, 0, len(pairs))
	for n := range pairs {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
