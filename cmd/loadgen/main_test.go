package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// fakeDaemon emulates the serve API's submit/poll surface: requests
// with the base seed settle cached in the submit response; fresh-seed
// (miss) requests go pending and settle done after one poll.
type fakeDaemon struct {
	mu       sync.Mutex
	submits  int
	misses   int
	polls    map[string]int
	baseSeed uint64
}

func newFakeDaemon(baseSeed uint64) *fakeDaemon {
	return &fakeDaemon{polls: map[string]int{}, baseSeed: baseSeed}
}

func (d *fakeDaemon) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		var req struct {
			Experiment string `json:"experiment"`
			Scale      string `json:"scale"`
			Seed       uint64 `json:"seed"`
			Overrides  any    `json:"overrides"`
		}
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil || req.Experiment == "" || req.Scale == "" {
			http.Error(w, "bad request", http.StatusBadRequest)
			return
		}
		d.mu.Lock()
		d.submits++
		hit := req.Seed == d.baseSeed || req.Seed == 0
		var id string
		if !hit {
			d.misses++
			id = fmt.Sprintf("j%d", d.submits)
			d.polls[id] = 0
		}
		d.mu.Unlock()
		if hit {
			json.NewEncoder(w).Encode(map[string]any{
				"id": "jh", "status": "done", "points": 3, "cached": 3})
			return
		}
		json.NewEncoder(w).Encode(map[string]any{
			"id": id, "status": "pending", "points": 3, "cached": 1})
	})
	mux.HandleFunc("GET /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		id := r.PathValue("id")
		d.mu.Lock()
		n, ok := d.polls[id]
		if ok {
			d.polls[id] = n + 1
		}
		d.mu.Unlock()
		if !ok {
			http.Error(w, "no such job", http.StatusNotFound)
			return
		}
		if n == 0 { // still pending on the first poll
			json.NewEncoder(w).Encode(map[string]any{
				"id": id, "status": "pending", "points": 3, "cached": 1})
			return
		}
		json.NewEncoder(w).Encode(map[string]any{
			"id": id, "status": "done", "points": 3, "cached": 1})
	})
	return mux
}

func TestLoadgenWarmAndMixed(t *testing.T) {
	daemon := newFakeDaemon(0)
	ts := httptest.NewServer(daemon.handler())
	defer ts.Close()

	// Warm run: every request hits.
	var stdout, stderr bytes.Buffer
	code := run([]string{"-url", ts.URL, "-exp", "fig3", "-scale", "smoke",
		"-requests", "20", "-clients", "4", "-name", "ServeWarm"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, stderr.String())
	}
	line := strings.TrimSpace(stdout.String())
	if !strings.HasPrefix(line, "BenchmarkServeWarm 20 ") {
		t.Fatalf("bench line: %q", line)
	}
	for _, unit := range []string{"ns/op", "hit-rate", "p50-ns", "p99-ns"} {
		if !strings.Contains(line, " "+unit) {
			t.Fatalf("bench line missing %s: %q", unit, line)
		}
	}
	if !strings.Contains(line, " 1.0000 hit-rate") {
		t.Fatalf("warm run not 100%% hits: %q", line)
	}

	// Mixed run: every 4th request carries a fresh seed, goes pending,
	// and needs polling — 25% misses exactly.
	stdout.Reset()
	stderr.Reset()
	code = run([]string{"-url", ts.URL, "-exp", "fig3", "-scale", "smoke",
		"-requests", "20", "-clients", "4", "-miss-every", "4",
		"-poll", "1ms", "-name", "ServeMixed"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, stderr.String())
	}
	line = strings.TrimSpace(stdout.String())
	if !strings.Contains(line, " 0.7500 hit-rate") {
		t.Fatalf("mixed run hit rate: %q", line)
	}
	daemon.mu.Lock()
	misses := daemon.misses
	daemon.mu.Unlock()
	if misses != 5 {
		t.Fatalf("daemon saw %d misses, want 5", misses)
	}
}

func TestLoadgenFailurePaths(t *testing.T) {
	// Usage errors.
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-requests", "5"}, &stdout, &stderr); code != 2 {
		t.Fatalf("missing -url: exit %d, want 2", code)
	}
	if code := run([]string{"-url", "http://x", "-requests", "0"}, &stdout, &stderr); code != 2 {
		t.Fatalf("zero requests: exit %d, want 2", code)
	}

	// A daemon rejecting the request (HTTP 400) fails the run with its
	// error text.
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "unknown experiment", http.StatusBadRequest)
	}))
	defer ts.Close()
	stderr.Reset()
	if code := run([]string{"-url", ts.URL, "-requests", "3", "-clients", "2"},
		&stdout, &stderr); code != 1 {
		t.Fatalf("rejecting daemon: exit %d, want 1\n%s", code, stderr.String())
	}
	if !strings.Contains(stderr.String(), "unknown experiment") {
		t.Fatalf("error text not surfaced:\n%s", stderr.String())
	}

	// A job that never settles trips the per-request deadline.
	ts2 := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(map[string]any{"id": "j1", "status": "pending", "points": 1})
	}))
	defer ts2.Close()
	stderr.Reset()
	if code := run([]string{"-url", ts2.URL, "-requests", "1", "-clients", "1",
		"-poll", "1ms", "-timeout", "50ms"}, &stdout, &stderr); code != 1 {
		t.Fatalf("stuck job: exit %d, want 1\n%s", code, stderr.String())
	}
	if !strings.Contains(stderr.String(), "still pending") {
		t.Fatalf("deadline not reported:\n%s", stderr.String())
	}
}

func TestPercentilesAndBenchLine(t *testing.T) {
	r := &result{n: 100}
	for i := 1; i <= 100; i++ {
		r.latencies = append(r.latencies, time.Duration(i)*time.Millisecond)
	}
	r.hits = 99
	if got := r.percentile(50); got != 50*time.Millisecond {
		t.Fatalf("p50 = %s", got)
	}
	if got := r.percentile(99); got != 99*time.Millisecond {
		t.Fatalf("p99 = %s", got)
	}
	line := r.benchLine("X")
	want := fmt.Sprintf("BenchmarkX 100 %d ns/op 0.9900 hit-rate %d p50-ns %d p99-ns",
		(50500 * time.Microsecond).Nanoseconds(),
		(50 * time.Millisecond).Nanoseconds(),
		(99 * time.Millisecond).Nanoseconds())
	if line != want {
		t.Fatalf("bench line:\n got %q\nwant %q", line, want)
	}
}
