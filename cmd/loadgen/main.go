// Command loadgen hammers a pimbench serve daemon with a configurable
// cache hit/miss mix and reports request latency in `go test -bench`
// format, so benchjson can turn a load test into the gated
// BENCH_serve_latency.json artifact.
//
// Every request submits the same experiment × scale shape. By default
// all requests reuse one seed — after the first settles, the rest are
// pure cache hits, measuring the daemon's serving overhead. With
// -miss-every N, every Nth request substitutes a fresh unique seed, a
// guaranteed cold plan that must execute on the worker fleet, so the
// mix probes the in-flight dedup and execution path under load.
//
//	loadgen -url http://127.0.0.1:8080 -exp fig3 -scale smoke \
//	        -requests 200 -clients 8 -name ServeWarm | benchjson \
//	        -min-metric ServeWarm:hit-rate=0.99
//
// The bench line carries mean ns/op plus hit-rate (fraction of
// requests settled fully from cache in the submit response), p50-ns
// and p99-ns custom metrics.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

type config struct {
	url, exp, scale, overrides, name string

	seed      uint64
	requests  int
	clients   int
	missEvery int
	poll      time.Duration
	timeout   time.Duration
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("loadgen", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var cfg config
	fs.StringVar(&cfg.url, "url", "", "base URL of the serve daemon (required), e.g. http://127.0.0.1:8080")
	fs.StringVar(&cfg.exp, "exp", "fig3", "experiment submitted by every request")
	fs.StringVar(&cfg.scale, "scale", "smoke", "measurement scale submitted by every request")
	fs.StringVar(&cfg.overrides, "overrides", "", "config-override JSON object attached to every request")
	fs.StringVar(&cfg.name, "name", "Serve", "benchmark name for the output line (Benchmark<name>)")
	fs.Uint64Var(&cfg.seed, "seed", 0, "workload seed shared by the hit-side requests")
	fs.IntVar(&cfg.requests, "requests", 100, "total requests to issue")
	fs.IntVar(&cfg.clients, "clients", 4, "concurrent client goroutines")
	fs.IntVar(&cfg.missEvery, "miss-every", 0, "force a cache miss every Nth request via a fresh unique seed (0 = all requests share one seed)")
	fs.DurationVar(&cfg.poll, "poll", 25*time.Millisecond, "poll interval for pending jobs")
	fs.DurationVar(&cfg.timeout, "timeout", 5*time.Minute, "per-request settle deadline")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}
	if cfg.url == "" {
		fmt.Fprintln(stderr, "loadgen: -url is required")
		return 2
	}
	if cfg.requests <= 0 || cfg.clients <= 0 {
		fmt.Fprintln(stderr, "loadgen: -requests and -clients must be positive")
		return 2
	}
	cfg.url = strings.TrimSuffix(cfg.url, "/")

	res, err := hammer(cfg)
	if err != nil {
		fmt.Fprintf(stderr, "loadgen: %v\n", err)
		return 1
	}
	fmt.Fprintln(stdout, res.benchLine(cfg.name))
	fmt.Fprintf(stderr, "loadgen: %d requests (%d clients): %.1f%% hit rate, p50 %s, p99 %s\n",
		res.n, cfg.clients, 100*res.hitRate(), res.percentile(50), res.percentile(99))
	return 0
}

// jobStatus is the slice of the API's job document loadgen reads.
type jobStatus struct {
	ID     string            `json:"id"`
	Status string            `json:"status"`
	Points int               `json:"points"`
	Cached int               `json:"cached"`
	Errors map[string]string `json:"errors"`
}

// result aggregates the run. latencies holds one settle time per
// request, sorted ascending after the run.
type result struct {
	n         int
	hits      int
	latencies []time.Duration
}

func (r *result) hitRate() float64 {
	if r.n == 0 {
		return 0
	}
	return float64(r.hits) / float64(r.n)
}

// percentile returns the p-th latency percentile (nearest-rank on the
// sorted sample).
func (r *result) percentile(p int) time.Duration {
	if len(r.latencies) == 0 {
		return 0
	}
	return r.latencies[(len(r.latencies)-1)*p/100]
}

// benchLine renders the run as one `go test -bench` result line:
// iterations, mean ns/op, then (value, unit) custom-metric pairs —
// exactly the shape benchjson parses.
func (r *result) benchLine(name string) string {
	var mean time.Duration
	if r.n > 0 {
		var sum time.Duration
		for _, d := range r.latencies {
			sum += d
		}
		mean = sum / time.Duration(r.n)
	}
	return fmt.Sprintf("Benchmark%s %d %d ns/op %.4f hit-rate %d p50-ns %d p99-ns",
		name, r.n, mean.Nanoseconds(), r.hitRate(),
		r.percentile(50).Nanoseconds(), r.percentile(99).Nanoseconds())
}

// hammer issues cfg.requests requests across cfg.clients goroutines
// and collects per-request settle latency. The first request error
// aborts the run: a load test against a broken daemon has no valid
// latency to report.
func hammer(cfg config) (*result, error) {
	client := &http.Client{Timeout: cfg.timeout}
	var (
		next     atomic.Int64
		mu       sync.Mutex
		res      = &result{}
		firstErr error
		wg       sync.WaitGroup
	)
	fail := func(err error) {
		mu.Lock()
		defer mu.Unlock()
		if firstErr == nil {
			firstErr = err
		}
	}
	for c := 0; c < cfg.clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= cfg.requests {
					return
				}
				mu.Lock()
				aborted := firstErr != nil
				mu.Unlock()
				if aborted {
					return
				}
				lat, hit, err := oneRequest(client, cfg, i)
				if err != nil {
					fail(fmt.Errorf("request %d: %w", i, err))
					return
				}
				mu.Lock()
				res.n++
				res.latencies = append(res.latencies, lat)
				if hit {
					res.hits++
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	sort.Slice(res.latencies, func(a, b int) bool { return res.latencies[a] < res.latencies[b] })
	return res, nil
}

// oneRequest submits request i and waits for it to settle, returning
// the submit-to-settled latency and whether it was a pure cache hit
// (settled done in the submit response with every point cached).
func oneRequest(client *http.Client, cfg config, i int) (time.Duration, bool, error) {
	seed := cfg.seed
	if cfg.missEvery > 0 && (i+1)%cfg.missEvery == 0 {
		// A unique fresh seed shifts every fingerprint of the plan: a
		// guaranteed miss that has to execute on the fleet. Offset far
		// from the shared seed so the two ranges never collide.
		seed = cfg.seed + 1<<32 + uint64(i)
	}
	body := map[string]any{"experiment": cfg.exp, "scale": cfg.scale}
	if seed != 0 {
		body["seed"] = seed
	}
	if cfg.overrides != "" {
		body["overrides"] = json.RawMessage(cfg.overrides)
	}
	payload, err := json.Marshal(body)
	if err != nil {
		return 0, false, err
	}

	start := time.Now()
	st, err := postJSON(client, cfg.url+"/v1/jobs", string(payload))
	if err != nil {
		return 0, false, err
	}
	hit := st.Status == "done" && st.Points > 0 && st.Cached == st.Points
	deadline := start.Add(cfg.timeout)
	for st.Status == "pending" {
		if time.Now().After(deadline) {
			return 0, false, fmt.Errorf("job %s still pending after %s", st.ID, cfg.timeout)
		}
		time.Sleep(cfg.poll)
		st, err = getJSON(client, cfg.url+"/v1/jobs/"+st.ID)
		if err != nil {
			return 0, false, err
		}
	}
	if st.Status != "done" {
		return 0, false, fmt.Errorf("job %s settled %q: %v", st.ID, st.Status, st.Errors)
	}
	return time.Since(start), hit, nil
}

func postJSON(client *http.Client, url, body string) (jobStatus, error) {
	resp, err := client.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		return jobStatus{}, err
	}
	return decodeStatus(resp)
}

func getJSON(client *http.Client, url string) (jobStatus, error) {
	resp, err := client.Get(url)
	if err != nil {
		return jobStatus{}, err
	}
	return decodeStatus(resp)
}

func decodeStatus(resp *http.Response) (jobStatus, error) {
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return jobStatus{}, fmt.Errorf("HTTP %d: %s", resp.StatusCode, strings.TrimSpace(string(msg)))
	}
	var st jobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return jobStatus{}, fmt.Errorf("bad job document: %w", err)
	}
	return st, nil
}
