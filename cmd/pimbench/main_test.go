package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestRunSmoke drives the binary end-to-end at ScaleBench: a small
// experiment must run through the job runner and emit a non-empty
// report on stdout.
func TestRunSmoke(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-exp", "fig3", "-scale", "bench", "-parallel", "2"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit code %d, stderr:\n%s", code, stderr.String())
	}
	out := stdout.String()
	if !strings.Contains(out, "Fig3") {
		t.Fatalf("report missing Fig3 header:\n%s", out)
	}
	for _, model := range []string{"naive", "uncacheable", "swflush"} {
		if !strings.Contains(out, model) {
			t.Fatalf("report missing %s series:\n%s", model, out)
		}
	}
	if !strings.Contains(stderr.String(), "fig3 at scale bench") {
		t.Fatalf("missing wall-time report on stderr:\n%s", stderr.String())
	}
}

// TestRunList checks the -list path.
func TestRunList(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-list"}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit code %d", code)
	}
	for _, e := range []string{"fig1", "fig7", "table2", "all"} {
		if !strings.Contains(stdout.String(), e) {
			t.Fatalf("list missing %s:\n%s", e, stdout.String())
		}
	}
}

// TestRunUnknownExperiment must fail with a non-zero exit code.
func TestRunUnknownExperiment(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-exp", "nope"}, &stdout, &stderr); code != 1 {
		t.Fatalf("exit code %d, want 1", code)
	}
	if !strings.Contains(stderr.String(), "unknown experiment") {
		t.Fatalf("stderr: %s", stderr.String())
	}
}
