package main

import (
	"bytes"
	"encoding/json"
	"io"
	"os"
	"strings"
	"sync"
	"testing"
)

// TestMain doubles as the worker re-exec hook: `pimbench coord` spawns
// workers by re-executing the current binary, which under `go test` is
// the test binary — so with PIMBENCH_EXEC set, the spawn routes into
// run() instead of the test suite. Coordinator e2e tests set the
// variable via t.Setenv and inherit it into their worker subprocesses.
func TestMain(m *testing.M) {
	if os.Getenv("PIMBENCH_EXEC") == "1" {
		os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
	}
	os.Exit(m.Run())
}

// TestRunSmoke drives the binary end-to-end at ScaleBench: a small
// experiment must run through the job runner and emit a non-empty
// report on stdout.
func TestRunSmoke(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-exp", "fig3", "-scale", "bench", "-parallel", "2"}, nil, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit code %d, stderr:\n%s", code, stderr.String())
	}
	out := stdout.String()
	if !strings.Contains(out, "Fig3") {
		t.Fatalf("report missing Fig3 header:\n%s", out)
	}
	for _, model := range []string{"naive", "uncacheable", "swflush"} {
		if !strings.Contains(out, model) {
			t.Fatalf("report missing %s series:\n%s", model, out)
		}
	}
	if !strings.Contains(stderr.String(), "fig3 at scale bench") {
		t.Fatalf("missing wall-time report on stderr:\n%s", stderr.String())
	}
}

// TestRunList checks the -list path.
func TestRunList(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-list"}, nil, &stdout, &stderr); code != 0 {
		t.Fatalf("exit code %d", code)
	}
	for _, e := range []string{"fig1", "fig7", "table2", "all"} {
		if !strings.Contains(stdout.String(), e) {
			t.Fatalf("list missing %s:\n%s", e, stdout.String())
		}
	}
}

// TestRunUnknownExperiment must fail with a non-zero exit code.
func TestRunUnknownExperiment(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-exp", "nope"}, nil, &stdout, &stderr); code != 1 {
		t.Fatalf("exit code %d, want 1", code)
	}
	if !strings.Contains(stderr.String(), "unknown experiment") {
		t.Fatalf("stderr: %s", stderr.String())
	}
}

// TestRunCacheWarm runs the same experiment twice against one cache
// dir: the second run must serve every point from the cache and print
// byte-identical reports on stdout.
func TestRunCacheWarm(t *testing.T) {
	dir := t.TempDir()
	runOnce := func() (string, string) {
		var stdout, stderr bytes.Buffer
		code := run([]string{"-exp", "fig3", "-scale", "smoke", "-cache-dir", dir}, nil, &stdout, &stderr)
		if code != 0 {
			t.Fatalf("exit code %d, stderr:\n%s", code, stderr.String())
		}
		return stdout.String(), stderr.String()
	}
	coldOut, coldErr := runOnce()
	warmOut, warmErr := runOnce()
	if coldOut != warmOut {
		t.Fatalf("warm-cache report differs from cold:\ncold:\n%s\nwarm:\n%s", coldOut, warmOut)
	}
	if !strings.Contains(coldErr, "pimbench: cache:") || !strings.Contains(warmErr, "pimbench: cache:") {
		t.Fatalf("missing cache stats line:\ncold:\n%s\nwarm:\n%s", coldErr, warmErr)
	}
	// The leading space matters: "10 misses" must not satisfy the gate.
	if !strings.Contains(warmErr, " 0 misses") {
		t.Fatalf("warm run recomputed points:\n%s", warmErr)
	}
}

// TestRunSnapshotWarm runs the same experiment twice against one
// snapshot store (no result cache, so every simulation recomputes):
// the second run must load every workload — 100% snapshot hit rate,
// zero generations — and still print byte-identical reports.
func TestRunSnapshotWarm(t *testing.T) {
	dir := t.TempDir()
	runOnce := func() (string, string) {
		var stdout, stderr bytes.Buffer
		code := run([]string{"-exp", "fig3", "-scale", "smoke", "-snapshot-dir", dir}, nil, &stdout, &stderr)
		if code != 0 {
			t.Fatalf("exit code %d, stderr:\n%s", code, stderr.String())
		}
		return stdout.String(), stderr.String()
	}
	coldOut, coldErr := runOnce()
	warmOut, warmErr := runOnce()
	if coldOut != warmOut {
		t.Fatalf("snapshot-warm report differs from cold:\ncold:\n%s\nwarm:\n%s", coldOut, warmOut)
	}
	if !strings.Contains(coldErr, "pimbench: snapshots:") || strings.Contains(coldErr, "; 0 workloads generated") {
		t.Fatalf("cold run should report generations:\n%s", coldErr)
	}
	if !strings.Contains(warmErr, "(100.0% hit rate)") || !strings.Contains(warmErr, "; 0 workloads generated") {
		t.Fatalf("warm run regenerated workloads:\n%s", warmErr)
	}
}

// TestSnapshotSubcommand covers the inspection/GC surface: -ls lists
// labeled snapshots, -gc empties the store, and a missing -snapshot-dir
// is a usage error.
func TestSnapshotSubcommand(t *testing.T) {
	dir := t.TempDir()
	mustRun := func(args ...string) (string, string) {
		t.Helper()
		var stdout, stderr bytes.Buffer
		if code := run(args, nil, &stdout, &stderr); code != 0 {
			t.Fatalf("pimbench %v: exit %d, stderr:\n%s", args, code, stderr.String())
		}
		return stdout.String(), stderr.String()
	}
	mustRun("-exp", "fig3", "-scale", "smoke", "-snapshot-dir", dir)

	ls, lsErr := mustRun("snapshot", "-snapshot-dir", dir, "-ls")
	if !strings.Contains(ls, "ycsb:") || strings.Contains(ls, "BROKEN") {
		t.Fatalf("listing missing labeled snapshots:\n%s", ls)
	}
	if !strings.Contains(lsErr, "snapshots in") {
		t.Fatalf("missing summary line:\n%s", lsErr)
	}

	gcOut, _ := mustRun("snapshot", "-snapshot-dir", dir, "-gc")
	if !strings.Contains(gcOut, "removed ") {
		t.Fatalf("gc summary missing:\n%s", gcOut)
	}
	ls, _ = mustRun("snapshot", "-snapshot-dir", dir)
	if strings.TrimSpace(ls) != "" {
		t.Fatalf("store not empty after full gc:\n%s", ls)
	}

	var stdout, stderr bytes.Buffer
	if code := run([]string{"snapshot", "-ls"}, nil, &stdout, &stderr); code != 2 {
		t.Fatalf("snapshot without -snapshot-dir: exit %d, want 2", code)
	}
}

// syncBuffer serializes writes: with -v the coordinator forwards every
// worker subprocess's stderr into the same writer from concurrent copy
// goroutines (a real terminal's file descriptor handles that in the
// kernel; an in-process bytes.Buffer must lock).
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// TestCoordSnapshotPropagation: a coordinated run with -snapshot-dir
// pre-warms the store and propagates the flag to its worker
// subprocesses — their forwarded footers must report zero generations
// (they loaded the pre-warmed database); afterwards a store-backed run
// generates nothing either.
func TestCoordSnapshotPropagation(t *testing.T) {
	t.Setenv("PIMBENCH_EXEC", "1")
	cacheDir, snapDir := t.TempDir(), t.TempDir()
	var coordErr syncBuffer
	var stdout bytes.Buffer
	code := run([]string{"coord", "-workers", "2", "-exp", "fig3", "-scale", "smoke",
		"-cache-dir", cacheDir, "-snapshot-dir", snapDir, "-v"}, nil, &stdout, &coordErr)
	if code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, coordErr.String())
	}
	se := coordErr.String()
	if !strings.Contains(se, "pre-warmed") {
		t.Fatalf("coordinator did not pre-warm the snapshot store:\n%s", se)
	}
	if !strings.Contains(se, "0 failed, 0 retried, 0 workers lost") {
		t.Fatalf("fleet run not clean:\n%s", se)
	}
	// Worker footers ride the forwarded stderr: at least one must show
	// an attached store that served it fully (the propagation proof —
	// without -snapshot-dir in workerArgv no worker prints a footer).
	if !strings.Contains(se, "; 0 workloads generated ("+snapDir) {
		t.Fatalf("no worker footer shows the propagated store serving it:\n%s", se)
	}

	stdout.Reset()
	var warmErr bytes.Buffer
	if code := run([]string{"-exp", "fig3", "-scale", "smoke", "-snapshot-dir", snapDir},
		nil, &stdout, &warmErr); code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, warmErr.String())
	}
	if !strings.Contains(warmErr.String(), "; 0 workloads generated") {
		t.Fatalf("run after coordinated fleet regenerated workloads:\n%s", warmErr.String())
	}
}

// TestRunResume: -resume without -cache-dir uses the default cache
// location; -no-cache wins over both.
func TestRunResume(t *testing.T) {
	dir := t.TempDir() + "/resume-cache"
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-exp", "fig3", "-scale", "smoke", "-cache-dir", dir, "-resume"},
		nil, &stdout, &stderr); code != 0 {
		t.Fatalf("exit code %d, stderr:\n%s", code, stderr.String())
	}
	if !strings.Contains(stderr.String(), "resuming from") {
		t.Fatalf("missing resume line:\n%s", stderr.String())
	}

	stdout.Reset()
	stderr.Reset()
	if code := run([]string{"-exp", "fig3", "-scale", "smoke", "-cache-dir", dir, "-no-cache"},
		nil, &stdout, &stderr); code != 0 {
		t.Fatalf("exit code %d, stderr:\n%s", code, stderr.String())
	}
	if strings.Contains(stderr.String(), "pimbench: cache:") {
		t.Fatalf("-no-cache still used the cache:\n%s", stderr.String())
	}
}

// TestRunUnknownScale must be rejected up front instead of silently
// falling back to quick.
func TestRunUnknownScale(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-exp", "fig3", "-scale", "nope"}, nil, &stdout, &stderr); code != 2 {
		t.Fatalf("exit code %d, want 2", code)
	}
	if !strings.Contains(stderr.String(), "unknown scale") {
		t.Fatalf("stderr: %s", stderr.String())
	}
}

// TestShardMergeByteIdentical is the distributed pipeline's acceptance
// contract end to end: a 2-shard smoke run of the whole suite, merged
// via the merge subcommand, followed by a warm report pass, must emit
// exactly the bytes of a single-process run — and the report pass must
// be served entirely from the merged cache.
func TestShardMergeByteIdentical(t *testing.T) {
	mustRun := func(args ...string) (string, string) {
		t.Helper()
		var stdout, stderr bytes.Buffer
		if code := run(args, nil, &stdout, &stderr); code != 0 {
			t.Fatalf("pimbench %v: exit %d, stderr:\n%s", args, code, stderr.String())
		}
		return stdout.String(), stderr.String()
	}

	single, _ := mustRun("-exp", "all", "-scale", "smoke")

	s0, s1, merged := t.TempDir(), t.TempDir(), t.TempDir()
	out0, err0 := mustRun("run", "-exp", "all", "-scale", "smoke", "-shard", "0/2", "-cache-dir", s0)
	out1, _ := mustRun("run", "-exp", "all", "-scale", "smoke", "-shard", "1/2", "-cache-dir", s1)
	if out0 != "" || out1 != "" {
		t.Fatalf("shard runs wrote reports to stdout:\n%s%s", out0, out1)
	}
	if !strings.Contains(err0, "shard 0/2") {
		t.Fatalf("shard summary missing from stderr:\n%s", err0)
	}

	mergeOut, _ := mustRun("merge", "-o", merged, s0, s1)
	if !strings.Contains(mergeOut, "merged into") {
		t.Fatalf("merge summary missing:\n%s", mergeOut)
	}

	warm, warmErr := mustRun("-exp", "all", "-scale", "smoke", "-cache-dir", merged)
	if warm != single {
		t.Fatalf("sharded+merged warm report differs from single-process run:\nsingle %d bytes, warm %d bytes",
			len(single), len(warm))
	}
	// The leading space matters: "10 misses" must not satisfy the gate.
	if !strings.Contains(warmErr, " 0 misses") {
		t.Fatalf("warm report pass recomputed points:\n%s", warmErr)
	}
}

// TestCoordCrashInjection is the coordinator's acceptance contract end
// to end, through real worker subprocesses and pipes: a 3-worker
// coordinated smoke run with one worker crashing mid-run (the
// -fail-after hook kills worker 1 after 2 served jobs, losing its 3rd
// job in flight) must complete, retry the lost job on a survivor, and
// leave a cache whose warm report pass is 100%-hit and byte-identical
// to a single-process cold run.
func TestCoordCrashInjection(t *testing.T) {
	t.Setenv("PIMBENCH_EXEC", "1")
	mustRun := func(args ...string) (string, string) {
		t.Helper()
		var stdout, stderr bytes.Buffer
		if code := run(args, nil, &stdout, &stderr); code != 0 {
			t.Fatalf("pimbench %v: exit %d, stderr:\n%s", args, code, stderr.String())
		}
		return stdout.String(), stderr.String()
	}

	single, _ := mustRun("-exp", "all", "-scale", "smoke", "-parallel", "4")

	dir := t.TempDir()
	coordOut, coordErr := mustRun("coord", "-workers", "3", "-exp", "all", "-scale", "smoke",
		"-cache-dir", dir, "-fail-worker", "1", "-fail-after", "2")
	if coordOut != "" {
		t.Fatalf("coordinator wrote reports to stdout:\n%s", coordOut)
	}
	if !strings.Contains(coordErr, "1 retried, 1 workers lost") {
		t.Fatalf("crashed worker's job not retried exactly once:\n%s", coordErr)
	}
	if !strings.Contains(coordErr, "0 failed") {
		t.Fatalf("coordinated run failed jobs:\n%s", coordErr)
	}
	if !strings.Contains(coordErr, "ETA") {
		t.Fatalf("missing live progress footer:\n%s", coordErr)
	}

	warm, warmErr := mustRun("-exp", "all", "-scale", "smoke", "-cache-dir", dir)
	if warm != single {
		t.Fatalf("coordinated warm report differs from single-process run:\nsingle %d bytes, warm %d bytes",
			len(single), len(warm))
	}
	// The leading space matters: "10 misses" must not satisfy the gate.
	if !strings.Contains(warmErr, " 0 misses") {
		t.Fatalf("warm report pass recomputed points:\n%s", warmErr)
	}
}

// TestCoordWorkerCmdTemplate: -worker-cmd launches workers through the
// template instead of bare self-exec ({args} expands to the work
// subcommand's arguments).
func TestCoordWorkerCmdTemplate(t *testing.T) {
	t.Setenv("PIMBENCH_EXEC", "1")
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	if strings.ContainsAny(exe, " \t") {
		t.Skipf("test binary path %q contains whitespace; template splits on fields", exe)
	}
	dir := t.TempDir()
	var stdout, stderr bytes.Buffer
	code := run([]string{"coord", "-workers", "2", "-exp", "fig3", "-scale", "smoke",
		"-cache-dir", dir, "-worker-cmd", exe + " {args}"}, nil, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, stderr.String())
	}
	if !strings.Contains(stderr.String(), "0 failed, 0 retried, 0 workers lost") {
		t.Fatalf("templated fleet run not clean:\n%s", stderr.String())
	}
}

// TestCoordRequiresCache: a coordinated run without -cache-dir would
// compute results and drop them; it must be rejected up front.
func TestCoordRequiresCache(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"coord", "-exp", "fig3", "-scale", "smoke"}, nil, &stdout, &stderr); code != 2 {
		t.Fatalf("exit code %d, want 2", code)
	}
	if !strings.Contains(stderr.String(), "coord needs -cache-dir") {
		t.Fatalf("stderr: %s", stderr.String())
	}
}

// TestWorkProtocolEndpoint drives the hidden worker endpoint directly:
// hello on stdout, then EOF on stdin is a clean exit.
func TestWorkProtocolEndpoint(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"work", "-exp", "fig3", "-scale", "smoke"},
		strings.NewReader(""), &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, stderr.String())
	}
	var hello struct {
		Type     string `json:"type"`
		Distinct int    `json:"distinct"`
	}
	if err := json.Unmarshal(stdout.Bytes(), &hello); err != nil || hello.Type != "hello" || hello.Distinct == 0 {
		t.Fatalf("worker hello = %+v, %v (stdout %q)", hello, err, stdout.String())
	}
}

// TestShardRequiresCache: an execute-only shard run without a cache
// would compute results and drop them; it must be rejected up front.
func TestShardRequiresCache(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"run", "-exp", "fig3", "-scale", "smoke", "-shard", "0/2"},
		nil, &stdout, &stderr); code != 2 {
		t.Fatalf("exit code %d, want 2", code)
	}
	if !strings.Contains(stderr.String(), "-shard needs -cache-dir") {
		t.Fatalf("stderr: %s", stderr.String())
	}
}

// TestShardBadSpec: malformed -shard values are usage errors.
func TestShardBadSpec(t *testing.T) {
	for _, bad := range []string{"2/2", "x", "-1/3"} {
		var stdout, stderr bytes.Buffer
		if code := run([]string{"run", "-exp", "fig3", "-shard", bad, "-cache-dir", t.TempDir()},
			nil, &stdout, &stderr); code != 2 {
			t.Fatalf("shard %q: exit code %d, want 2", bad, code)
		}
	}
}

// TestPlanText: the manifest is experiment/key/fingerprint lines, and
// -shard filters partition it exactly.
func TestPlanText(t *testing.T) {
	plan := func(args ...string) []string {
		t.Helper()
		var stdout, stderr bytes.Buffer
		if code := run(append([]string{"plan"}, args...), nil, &stdout, &stderr); code != 0 {
			t.Fatalf("plan %v: exit %d, stderr:\n%s", args, code, stderr.String())
		}
		var lines []string
		for _, l := range strings.Split(stdout.String(), "\n") {
			if l != "" {
				lines = append(lines, l)
			}
		}
		return lines
	}

	full := plan("-exp", "all", "-scale", "smoke")
	if len(full) == 0 {
		t.Fatal("empty manifest")
	}
	for _, l := range full {
		if parts := strings.Split(l, "\t"); len(parts) != 3 ||
			parts[0] == "" || parts[1] == "" || parts[2] == "" {
			t.Fatalf("bad manifest line %q", l)
		}
	}
	sh0 := plan("-exp", "all", "-scale", "smoke", "-shard", "0/2")
	sh1 := plan("-exp", "all", "-scale", "smoke", "-shard", "1/2")
	if len(sh0)+len(sh1) != len(full) || len(sh0) == 0 || len(sh1) == 0 {
		t.Fatalf("shard manifests don't partition the suite: %d + %d != %d",
			len(sh0), len(sh1), len(full))
	}
	union := map[string]bool{}
	for _, l := range append(sh0, sh1...) {
		union[l] = true
	}
	for _, l := range full {
		if !union[l] {
			t.Fatalf("manifest line lost by sharding: %q", l)
		}
	}
}

// TestPlanJSON: -json emits the schema-versioned manifest envelope —
// version stamps first (so an old-build manifest fails a later diff
// loudly), then the machine-readable job list.
func TestPlanJSON(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"plan", "-exp", "fig3", "-scale", "smoke", "-json"},
		nil, &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, stderr.String())
	}
	var env struct {
		Version    string `json:"manifest_version"`
		Schema     string `json:"schema_version"`
		Build      string `json:"build"`
		Experiment string `json:"experiment"`
		Scale      string `json:"scale"`
		Jobs       []struct {
			Experiment  string `json:"experiment"`
			Key         string `json:"key"`
			Fingerprint string `json:"fingerprint"`
		} `json:"jobs"`
	}
	if err := json.Unmarshal(stdout.Bytes(), &env); err != nil {
		t.Fatalf("manifest is not JSON: %v\n%s", err, stdout.String())
	}
	if env.Version != "bulkpim-manifest-v1" {
		t.Fatalf("manifest_version %q", env.Version)
	}
	if env.Schema == "" || env.Build == "" {
		t.Fatalf("missing version stamps: schema %q build %q", env.Schema, env.Build)
	}
	if env.Experiment != "fig3" || env.Scale != "smoke" {
		t.Fatalf("envelope identity %s/%s", env.Experiment, env.Scale)
	}
	if len(env.Jobs) == 0 {
		t.Fatal("empty manifest")
	}
	for _, j := range env.Jobs {
		if j.Experiment != "fig3" || !strings.HasPrefix(j.Key, "ycsb/") || len(j.Fingerprint) != 32 {
			t.Fatalf("bad manifest entry %+v", j)
		}
	}
	// The envelope round-trips through the diff loader: a self-diff is
	// empty.
	dir := t.TempDir()
	if err := os.WriteFile(dir+"/m.json", stdout.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	var dout, derr bytes.Buffer
	if code := run([]string{"plan", "-exp", "fig3", "-scale", "smoke", "-json", "-diff", dir + "/m.json"},
		nil, &dout, &derr); code != 0 {
		t.Fatalf("diff exit %d, stderr:\n%s", code, derr.String())
	}
	var denv struct {
		Jobs []json.RawMessage `json:"jobs"`
	}
	if err := json.Unmarshal(dout.Bytes(), &denv); err != nil {
		t.Fatalf("diff manifest is not JSON: %v\n%s", err, dout.String())
	}
	if len(denv.Jobs) != 0 {
		t.Fatalf("self-diff planned %d jobs, want 0\n%s", len(denv.Jobs), derr.String())
	}
	if !strings.Contains(derr.String(), "0 invalidated") {
		t.Fatalf("diff summary missing:\n%s", derr.String())
	}
}

// TestPlanDiff drives the incremental re-plan end to end: a seed
// change invalidates every fingerprint (and reports the prior ones as
// removed), while a legacy bare-array manifest is rejected loudly
// instead of diffing as "nothing to do".
func TestPlanDiff(t *testing.T) {
	dir := t.TempDir()
	var m1 bytes.Buffer
	var stderr bytes.Buffer
	if code := run([]string{"plan", "-exp", "fig13", "-scale", "smoke", "-json"},
		nil, &m1, &stderr); code != 0 {
		t.Fatalf("plan exit %d, stderr:\n%s", code, stderr.String())
	}
	old := dir + "/old.json"
	if err := os.WriteFile(old, m1.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}

	// Different seed: every fingerprint changes, so the diff re-plans
	// the full experiment and reports every prior job as removed.
	var dout, derr bytes.Buffer
	if code := run([]string{"plan", "-exp", "fig13", "-scale", "smoke", "-seed", "7", "-diff", old},
		nil, &dout, &derr); code != 0 {
		t.Fatalf("diff exit %d, stderr:\n%s", code, derr.String())
	}
	var full bytes.Buffer
	if code := run([]string{"plan", "-exp", "fig13", "-scale", "smoke", "-seed", "7"},
		nil, &full, io.Discard); code != 0 {
		t.Fatal("full plan failed")
	}
	if dout.String() != full.String() {
		t.Fatalf("seed-change diff should re-plan everything:\n%s\nvs\n%s", dout.String(), full.String())
	}
	se := derr.String()
	if !strings.Contains(se, "seed=0") || !strings.Contains(se, "seed=7") {
		t.Fatalf("missing identity-mismatch warning:\n%s", se)
	}
	if got := strings.Count(se, "pimbench: removed: fig13\t"); got != strings.Count(full.String(), "\n") {
		t.Fatalf("%d removed lines, want %d:\n%s", got, strings.Count(full.String(), "\n"), se)
	}

	// A legacy bare-array manifest (pre-envelope build) fails loudly.
	if err := os.WriteFile(dir+"/legacy.json", []byte("[]\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	var lout, lerr bytes.Buffer
	if code := run([]string{"plan", "-exp", "fig13", "-scale", "smoke", "-diff", dir + "/legacy.json"},
		nil, &lout, &lerr); code != 1 {
		t.Fatalf("legacy diff exit %d, want 1\n%s", code, lerr.String())
	}
	if !strings.Contains(lerr.String(), "older pimbench build") {
		t.Fatalf("legacy manifest error not loud:\n%s", lerr.String())
	}
}

// TestUnknownSubcommand must fail with a usage error.
func TestUnknownSubcommand(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"frobnicate"}, nil, &stdout, &stderr); code != 2 {
		t.Fatalf("exit code %d, want 2", code)
	}
	if !strings.Contains(stderr.String(), "unknown subcommand") {
		t.Fatalf("stderr: %s", stderr.String())
	}
}

// TestMergeUsage: merge without -o or sources is a usage error.
func TestMergeUsage(t *testing.T) {
	for _, args := range [][]string{
		{"merge"},
		{"merge", "-o", t.TempDir()},
		{"merge", "somedir"},
	} {
		var stdout, stderr bytes.Buffer
		if code := run(args, nil, &stdout, &stderr); code != 2 {
			t.Fatalf("%v: exit code %d, want 2", args, code)
		}
	}
}

// TestRunAllTimingFooter: the "all" path must print the unconditional
// per-experiment timing footer on stderr.
func TestRunAllTimingFooter(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-exp", "all", "-scale", "smoke"}, nil, &stdout, &stderr); code != 0 {
		t.Fatalf("exit code %d, stderr:\n%s", code, stderr.String())
	}
	se := stderr.String()
	if !strings.Contains(se, "pimbench: timing (overlapping):") || !strings.Contains(se, "total=") {
		t.Fatalf("missing timing footer:\n%s", se)
	}
	for _, name := range []string{"fig1=", "fig8=", "multimod="} {
		if !strings.Contains(se, name) {
			t.Fatalf("timing footer missing %s:\n%s", name, se)
		}
	}
}

// TestRunProfiles drives `run -cpuprofile/-memprofile` end-to-end: both
// files must come back as valid (gzip-framed protobuf) pprof profiles.
func TestRunProfiles(t *testing.T) {
	dir := t.TempDir()
	cpu, heap := dir+"/cpu.prof", dir+"/heap.prof"
	var stdout, stderr bytes.Buffer
	code := run([]string{"run", "-exp", "fig3", "-scale", "bench",
		"-cpuprofile", cpu, "-memprofile", heap}, nil, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit code %d, stderr:\n%s", code, stderr.String())
	}
	for _, path := range []string{cpu, heap} {
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("profile not written: %v", err)
		}
		if len(data) < 2 || data[0] != 0x1f || data[1] != 0x8b {
			t.Fatalf("%s: not a gzip-framed pprof profile (%d bytes, magic %x)",
				path, len(data), data[:min(len(data), 2)])
		}
	}
}

// TestRunProfileBadPath: an uncreatable profile path must fail loudly,
// not silently drop the profile.
func TestRunProfileBadPath(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"run", "-exp", "fig3", "-scale", "bench",
		"-cpuprofile", t.TempDir() + "/no/such/dir/cpu.prof"}, nil, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit code %d, want 1; stderr:\n%s", code, stderr.String())
	}
	if !strings.Contains(stderr.String(), "profile") {
		t.Fatalf("stderr missing profile error:\n%s", stderr.String())
	}
}

// TestVersion checks the build-identity report: module path and Go
// toolchain must appear so BENCH_* artifacts are attributable.
func TestVersion(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"version"}, nil, &stdout, &stderr); code != 0 {
		t.Fatalf("exit code %d, stderr:\n%s", code, stderr.String())
	}
	out := stdout.String()
	if !strings.Contains(out, "bulkpim") || !strings.Contains(out, "go1.") {
		t.Fatalf("version output missing module path or Go version:\n%s", out)
	}
	stdout.Reset()
	if code := run([]string{"version", "-bogus"}, nil, &stdout, &stderr); code != 2 {
		t.Fatalf("version -bogus: exit code %d, want 2", code)
	}
}

// TestRunStream is the streaming acceptance gate from the binary's
// side: `run -stream` must write stdout byte-identical to the batch
// report while logging each artifact's settle order on stderr — one
// line per declared artifact, suite-wide.
func TestRunStream(t *testing.T) {
	var batch, batchErr bytes.Buffer
	if code := run([]string{"-exp", "all", "-scale", "smoke"}, nil, &batch, &batchErr); code != 0 {
		t.Fatalf("batch exit %d, stderr:\n%s", code, batchErr.String())
	}
	var stream, streamErr bytes.Buffer
	if code := run([]string{"-exp", "all", "-scale", "smoke", "-stream"}, nil, &stream, &streamErr); code != 0 {
		t.Fatalf("stream exit %d, stderr:\n%s", code, streamErr.String())
	}
	if batch.String() != stream.String() {
		t.Fatalf("streamed stdout diverges from the batch report:\n--- batch ---\n%s\n--- stream ---\n%s",
			batch.String(), stream.String())
	}
	se := streamErr.String()
	if got := strings.Count(se, "pimbench: artifact "); got != 18 {
		t.Fatalf("%d artifact settle lines, want 18 (one per declared artifact):\n%s", got, se)
	}
	for _, a := range []string{"fig7/fig10", "fig8/fig9", "table2/table2"} {
		if !strings.Contains(se, "pimbench: artifact "+a+" ready") {
			t.Fatalf("missing settle line for %s:\n%s", a, se)
		}
	}
	if !strings.Contains(se, "timing (overlapping):") {
		t.Fatalf("stream run lost the timing footer:\n%s", se)
	}
	// -stream is report machinery; a reportless shard run must reject it.
	var out, errb bytes.Buffer
	if code := run([]string{"-exp", "all", "-scale", "smoke", "-stream",
		"-shard", "0/2", "-cache-dir", t.TempDir()}, nil, &out, &errb); code != 2 {
		t.Fatalf("-stream -shard: exit %d, want 2:\n%s", code, errb.String())
	}
}

// TestCoordStream: a coordinated fleet run with -stream renders the
// figures coordinator-side as worker results settle, and the assembled
// stdout is byte-identical to a plain single-process run.
func TestCoordStream(t *testing.T) {
	t.Setenv("PIMBENCH_EXEC", "1")
	var plain, plainErr bytes.Buffer
	if code := run([]string{"-exp", "fig8", "-scale", "smoke"}, nil, &plain, &plainErr); code != 0 {
		t.Fatalf("plain exit %d, stderr:\n%s", code, plainErr.String())
	}
	var stdout bytes.Buffer
	var stderr syncBuffer
	code := run([]string{"coord", "-workers", "2", "-exp", "fig8", "-scale", "smoke",
		"-stream", "-cache-dir", t.TempDir()}, nil, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("coord exit %d, stderr:\n%s", code, stderr.String())
	}
	if stdout.String() != plain.String() {
		t.Fatalf("coord -stream stdout diverges from a plain run:\n--- plain ---\n%s\n--- coord ---\n%s",
			plain.String(), stdout.String())
	}
	se := stderr.String()
	for _, a := range []string{"fig8/fig8", "fig8/fig9"} {
		if !strings.Contains(se, "pimbench: artifact "+a+" ready") {
			t.Fatalf("missing settle line for %s:\n%s", a, se)
		}
	}
}
