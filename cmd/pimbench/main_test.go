package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestRunSmoke drives the binary end-to-end at ScaleBench: a small
// experiment must run through the job runner and emit a non-empty
// report on stdout.
func TestRunSmoke(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-exp", "fig3", "-scale", "bench", "-parallel", "2"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit code %d, stderr:\n%s", code, stderr.String())
	}
	out := stdout.String()
	if !strings.Contains(out, "Fig3") {
		t.Fatalf("report missing Fig3 header:\n%s", out)
	}
	for _, model := range []string{"naive", "uncacheable", "swflush"} {
		if !strings.Contains(out, model) {
			t.Fatalf("report missing %s series:\n%s", model, out)
		}
	}
	if !strings.Contains(stderr.String(), "fig3 at scale bench") {
		t.Fatalf("missing wall-time report on stderr:\n%s", stderr.String())
	}
}

// TestRunList checks the -list path.
func TestRunList(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-list"}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit code %d", code)
	}
	for _, e := range []string{"fig1", "fig7", "table2", "all"} {
		if !strings.Contains(stdout.String(), e) {
			t.Fatalf("list missing %s:\n%s", e, stdout.String())
		}
	}
}

// TestRunUnknownExperiment must fail with a non-zero exit code.
func TestRunUnknownExperiment(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-exp", "nope"}, &stdout, &stderr); code != 1 {
		t.Fatalf("exit code %d, want 1", code)
	}
	if !strings.Contains(stderr.String(), "unknown experiment") {
		t.Fatalf("stderr: %s", stderr.String())
	}
}

// TestRunCacheWarm runs the same experiment twice against one cache
// dir: the second run must serve every point from the cache and print
// byte-identical reports on stdout.
func TestRunCacheWarm(t *testing.T) {
	dir := t.TempDir()
	runOnce := func() (string, string) {
		var stdout, stderr bytes.Buffer
		code := run([]string{"-exp", "fig3", "-scale", "smoke", "-cache-dir", dir}, &stdout, &stderr)
		if code != 0 {
			t.Fatalf("exit code %d, stderr:\n%s", code, stderr.String())
		}
		return stdout.String(), stderr.String()
	}
	coldOut, coldErr := runOnce()
	warmOut, warmErr := runOnce()
	if coldOut != warmOut {
		t.Fatalf("warm-cache report differs from cold:\ncold:\n%s\nwarm:\n%s", coldOut, warmOut)
	}
	if !strings.Contains(coldErr, "pimbench: cache:") || !strings.Contains(warmErr, "pimbench: cache:") {
		t.Fatalf("missing cache stats line:\ncold:\n%s\nwarm:\n%s", coldErr, warmErr)
	}
	if !strings.Contains(warmErr, "0 misses") {
		t.Fatalf("warm run recomputed points:\n%s", warmErr)
	}
}

// TestRunResume: -resume without -cache-dir uses the default cache
// location; -no-cache wins over both.
func TestRunResume(t *testing.T) {
	dir := t.TempDir() + "/resume-cache"
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-exp", "fig3", "-scale", "smoke", "-cache-dir", dir, "-resume"},
		&stdout, &stderr); code != 0 {
		t.Fatalf("exit code %d, stderr:\n%s", code, stderr.String())
	}
	if !strings.Contains(stderr.String(), "resuming from") {
		t.Fatalf("missing resume line:\n%s", stderr.String())
	}

	stdout.Reset()
	stderr.Reset()
	if code := run([]string{"-exp", "fig3", "-scale", "smoke", "-cache-dir", dir, "-no-cache"},
		&stdout, &stderr); code != 0 {
		t.Fatalf("exit code %d, stderr:\n%s", code, stderr.String())
	}
	if strings.Contains(stderr.String(), "pimbench: cache:") {
		t.Fatalf("-no-cache still used the cache:\n%s", stderr.String())
	}
}

// TestRunUnknownScale must be rejected up front instead of silently
// falling back to quick.
func TestRunUnknownScale(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-exp", "fig3", "-scale", "nope"}, &stdout, &stderr); code != 2 {
		t.Fatalf("exit code %d, want 2", code)
	}
	if !strings.Contains(stderr.String(), "unknown scale") {
		t.Fatalf("stderr: %s", stderr.String())
	}
}

// TestRunAllTimingFooter: the "all" path must print the unconditional
// per-experiment timing footer on stderr.
func TestRunAllTimingFooter(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-exp", "all", "-scale", "smoke"}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit code %d, stderr:\n%s", code, stderr.String())
	}
	se := stderr.String()
	if !strings.Contains(se, "pimbench: timing (overlapping):") || !strings.Contains(se, "total=") {
		t.Fatalf("missing timing footer:\n%s", se)
	}
	for _, name := range []string{"fig1=", "fig8=", "multimod="} {
		if !strings.Contains(se, name) {
			t.Fatalf("timing footer missing %s:\n%s", name, se)
		}
	}
}
