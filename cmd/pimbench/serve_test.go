package main

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"bulkpim"
)

// jobView decodes the API's job status with the results subobject kept
// as raw bytes, so warm responses can be compared for byte identity
// (job ids differ between submissions; the results must not).
type jobView struct {
	ID      string            `json:"id"`
	Status  string            `json:"status"`
	Points  int               `json:"points"`
	Done    int               `json:"done"`
	Cached  int               `json:"cached"`
	Failed  int               `json:"failed"`
	Results json.RawMessage   `json:"results"`
	Errors  map[string]string `json:"errors"`
}

func postJobView(t *testing.T, url, body string) jobView {
	t.Helper()
	resp, err := http.Post(url+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var v jobView
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /v1/jobs %s: status %d, err %v", body, resp.StatusCode, err)
	}
	return v
}

func awaitJobView(t *testing.T, url, id string) jobView {
	t.Helper()
	deadline := time.Now().Add(3 * time.Minute)
	for {
		resp, err := http.Get(url + "/v1/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var v jobView
		err = json.NewDecoder(resp.Body).Decode(&v)
		resp.Body.Close()
		if err != nil || resp.StatusCode != http.StatusOK {
			t.Fatalf("GET /v1/jobs/%s: status %d, err %v", id, resp.StatusCode, err)
		}
		if v.Status != "pending" {
			return v
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s still pending after 3m", id)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// TestServeDaemonE2E is the serving acceptance contract end to end,
// through real `work -dynamic` subprocess workers: a daemon over a
// pre-warmed cache answers cached requests in the submit response —
// 100% hit rate, byte-identical results across submissions — and a
// cold request with one worker crash-injected mid-run (the -fail-after
// hook) settles done on a survivor, with the loss visible in the fleet
// stats and the recomputed points written back to the shared cache.
func TestServeDaemonE2E(t *testing.T) {
	t.Setenv("PIMBENCH_EXEC", "1")

	// Pre-warm the cache with fig3 at smoke scale.
	dir := t.TempDir()
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-exp", "fig3", "-scale", "smoke", "-cache-dir", dir},
		nil, &stdout, &stderr); code != 0 {
		t.Fatalf("pre-warm exit %d, stderr:\n%s", code, stderr.String())
	}

	cache, err := bulkpim.OpenResultCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer cache.Close()
	srv, err := bulkpim.NewServer(bulkpim.Options{Cache: cache}, bulkpim.ServerOptions{
		Workers:    2,
		FailWorker: 0,
		FailAfter:  1, // initial worker 0 dies when its second job arrives
	})
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	}()
	url := "http://" + srv.Addr()

	// Warm phase: both submissions settle in the submit response at a
	// 100% hit rate with byte-identical results.
	warm1 := postJobView(t, url, `{"experiment":"fig3","scale":"smoke"}`)
	warm2 := postJobView(t, url, `{"experiment":"fig3","scale":"smoke"}`)
	for i, w := range []jobView{warm1, warm2} {
		if w.Status != "done" || w.Points == 0 || w.Cached != w.Points {
			t.Fatalf("warm submit %d not fully cached: %+v", i+1, w)
		}
	}
	if !bytes.Equal(warm1.Results, warm2.Results) {
		t.Fatalf("cached results differ between submissions:\n%s\nvs\n%s", warm1.Results, warm2.Results)
	}

	// A cached point is also directly addressable by fingerprint; the
	// deterministic plan manifest knows the fingerprints.
	manifest, err := bulkpim.Manifest("fig3", bulkpim.Options{Scale: bulkpim.ScaleSmoke})
	if err != nil || len(manifest) == 0 {
		t.Fatalf("manifest: %v (%d jobs)", err, len(manifest))
	}
	resp, err := http.Get(url + "/v1/results/" + manifest[0].Fingerprint)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/results/%s: status %d", manifest[0].Fingerprint, resp.StatusCode)
	}

	// Crash phase: the whole suite at smoke is mostly cold; enough jobs
	// flow through worker 0 to trigger its injected crash, and the run
	// must settle done on the survivor + auto-joined replacement.
	miss := postJobView(t, url, `{"experiment":"all","scale":"smoke"}`)
	if miss.Cached >= miss.Points {
		t.Fatalf("crash-phase request was fully cached (%d/%d) — no miss to crash on", miss.Cached, miss.Points)
	}
	settled := awaitJobView(t, url, miss.ID)
	if settled.Status != "done" || settled.Failed != 0 {
		t.Fatalf("crash-injected run settled %q (%d failed): errors %v",
			settled.Status, settled.Failed, settled.Errors)
	}

	// The injected crash must be visible in the fleet stats.
	var stats struct {
		Fleet struct {
			Lost    int `json:"lost"`
			Retried int `json:"retried"`
			Workers []struct {
				ID int `json:"id"`
			} `json:"workers"`
		} `json:"fleet"`
	}
	resp, err = http.Get(url + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	err = json.NewDecoder(resp.Body).Decode(&stats)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Fleet.Lost < 1 {
		t.Fatalf("no worker loss recorded after crash injection: %+v", stats.Fleet)
	}
	if len(stats.Fleet.Workers) < 2 {
		t.Fatalf("lost worker not replaced: fleet %+v", stats.Fleet.Workers)
	}
	for _, w := range stats.Fleet.Workers {
		if w.ID == 0 {
			t.Fatalf("crashed worker 0 still listed: %+v", stats.Fleet.Workers)
		}
	}

	// The recomputed points were written back: an immediate re-submit is
	// a pure cache hit, settled synchronously.
	again := postJobView(t, url, `{"experiment":"all","scale":"smoke"}`)
	if again.Status != "done" || again.Cached != again.Points {
		t.Fatalf("post-crash warm submit not fully cached: %+v", again)
	}
}

// TestServeRequiresCache: a daemon without -cache-dir has nothing to
// serve from; it must be rejected up front.
func TestServeRequiresCache(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"serve", "-addr", "127.0.0.1:0"}, nil, &stdout, &stderr); code != 2 {
		t.Fatalf("exit code %d, want 2", code)
	}
	if !strings.Contains(stderr.String(), "serve needs -cache-dir") {
		t.Fatalf("stderr: %s", stderr.String())
	}
}

// TestServeCmdLocalSmoke drives the serve subcommand itself (flag
// parsing, daemon boot, address announcement, graceful shutdown via
// /v1/shutdown) with in-process workers.
func TestServeCmdLocalSmoke(t *testing.T) {
	dir := t.TempDir()
	var preOut, preErr bytes.Buffer
	if code := run([]string{"-exp", "fig3", "-scale", "smoke", "-cache-dir", dir},
		nil, &preOut, &preErr); code != 0 {
		t.Fatalf("pre-warm exit %d, stderr:\n%s", code, preErr.String())
	}

	var stderr, discard lockedBuffer
	done := make(chan int, 1)
	go func() {
		done <- run([]string{"serve", "-addr", "127.0.0.1:0", "-cache-dir", dir, "-local"},
			nil, &discard, &stderr)
	}()

	// The daemon prints its bound address on stderr once listening.
	var url string
	deadline := time.Now().Add(30 * time.Second)
	for url == "" {
		if time.Now().After(deadline) {
			t.Fatalf("daemon never announced its address:\n%s", stderr.String())
		}
		for _, line := range strings.Split(stderr.String(), "\n") {
			if rest, ok := strings.CutPrefix(line, "pimbench: serving on "); ok {
				url = "http://" + strings.Fields(rest)[0]
				break
			}
		}
		time.Sleep(10 * time.Millisecond)
	}

	st := postJobView(t, url, `{"experiment":"fig3","scale":"smoke"}`)
	if st.Status != "done" || st.Cached != st.Points || st.Points == 0 {
		t.Fatalf("warm submit against serve subcommand: %+v", st)
	}

	resp, err := http.Post(url+"/v1/shutdown", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	select {
	case code := <-done:
		if code != 0 {
			t.Fatalf("serve exited %d after graceful shutdown:\n%s", code, stderr.String())
		}
	case <-time.After(30 * time.Second):
		t.Fatalf("serve did not exit after /v1/shutdown:\n%s", stderr.String())
	}
	if !strings.Contains(stderr.String(), "pimbench: cache:") {
		t.Fatalf("missing cache accounting footer:\n%s", stderr.String())
	}
}

// lockedBuffer makes the daemon goroutine's stderr readable from the
// test goroutine without a race.
type lockedBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *lockedBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *lockedBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}
