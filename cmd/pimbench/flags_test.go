package main

import (
	"flag"
	"io"
	"testing"
)

// TestSharedFlagParity pins the consolidation contract of flags.go:
// every flag name appearing in several subcommands is declared by one
// shared builder, so its default cannot drift between subcommands —
// the failure mode that would let run's -stream and coord's -stream
// (or the -exp/-scale/-seed trio the coordinator round-trips to its
// workers) silently diverge.
func TestSharedFlagParity(t *testing.T) {
	sets := map[string]*flag.FlagSet{}
	collect := func(name string, fs *flag.FlagSet) { sets[name] = fs }
	{
		fs, _ := newRunFlags(io.Discard)
		collect("run", fs)
	}
	{
		fs, _ := newPlanFlags(io.Discard)
		collect("plan", fs)
	}
	{
		fs, _ := newCoordFlags(io.Discard)
		collect("coord", fs)
	}
	{
		fs, _ := newServeFlags(io.Discard)
		collect("serve", fs)
	}
	{
		fs, _ := newWorkFlags(io.Discard)
		collect("work", fs)
	}

	type decl struct{ cmd, def string }
	byName := map[string][]decl{}
	for cmd, fs := range sets {
		fs.VisitAll(func(f *flag.Flag) {
			byName[f.Name] = append(byName[f.Name], decl{cmd: cmd, def: f.DefValue})
		})
	}
	for name, decls := range byName {
		for _, d := range decls[1:] {
			if d.def != decls[0].def {
				t.Errorf("flag -%s default drifts: %s has %q, %s has %q",
					name, decls[0].cmd, decls[0].def, d.cmd, d.def)
			}
		}
	}

	has := func(cmd, name string) bool { return sets[cmd].Lookup(name) != nil }
	// -stream exists on exactly the two report-rendering subcommands.
	for cmd, want := range map[string]bool{"run": true, "coord": true, "plan": false, "serve": false, "work": false} {
		if got := has(cmd, "stream"); got != want {
			t.Errorf("-stream on %s: got %v, want %v", cmd, got, want)
		}
	}
	// -diff is plan-only: an incremental re-plan is a planning decision.
	for cmd, want := range map[string]bool{"plan": true, "run": false, "coord": false, "serve": false, "work": false} {
		if got := has(cmd, "diff"); got != want {
			t.Errorf("-diff on %s: got %v, want %v", cmd, got, want)
		}
	}
	// The experiment-selection trio rides every planning subcommand.
	for _, cmd := range []string{"run", "plan", "coord", "work"} {
		for _, name := range []string{"exp", "scale", "seed"} {
			if !has(cmd, name) {
				t.Errorf("%s is missing -%s", cmd, name)
			}
		}
	}
}

// TestWorkFlagsParseCoordArgs: the work flag set must parse exactly
// the argv shapes coordWorkArgs and serveWorkArgs build — the cmd-side
// half of the bulkpim round-trip tests (TestCoordWorkArgsRoundTrip,
// TestServeWorkArgsRoundTrip).
func TestWorkFlagsParseCoordArgs(t *testing.T) {
	snapDir := t.TempDir()
	fs, f := newWorkFlags(io.Discard)
	if err := fs.Parse([]string{"-exp", "fig7", "-scale", "smoke", "-seed", "3",
		"-snapshot-dir", snapDir, "-fail-after", "2"}); err != nil {
		t.Fatal(err)
	}
	if *f.exp != "fig7" || *f.scale != "smoke" || *f.seed != 3 ||
		*f.snapDir != snapDir || *f.failAfter != 2 {
		t.Fatalf("round-trip skew: exp=%q scale=%q seed=%d snap=%q failAfter=%d",
			*f.exp, *f.scale, *f.seed, *f.snapDir, *f.failAfter)
	}

	fs2, f2 := newWorkFlags(io.Discard)
	if err := fs2.Parse([]string{"-dynamic", "-snapshot-dir", snapDir}); err != nil {
		t.Fatal(err)
	}
	if !*f2.dynamic || *f2.snapDir != snapDir {
		t.Fatalf("dynamic argv skew: dynamic=%v snap=%q", *f2.dynamic, *f2.snapDir)
	}
}
