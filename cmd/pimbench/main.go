// Command pimbench regenerates the tables and figures of "On Consistency
// for Bulk-Bitwise Processing-in-Memory" (HPCA 2023).
//
// Usage:
//
//	pimbench -exp fig7 -scale quick
//	pimbench -exp all  -scale medium -v
//	pimbench -list
//
// Scales: quick (minutes), medium (tens of minutes), full (the paper's
// measurement volume; hours). All scales produce the same figure shapes;
// see EXPERIMENTS.md.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"bulkpim"
)

func main() {
	exp := flag.String("exp", "all", "experiment to run: "+strings.Join(bulkpim.Experiments(), ", "))
	scale := flag.String("scale", "quick", "measurement scale: quick | medium | full")
	verbose := flag.Bool("v", false, "log per-run progress")
	seed := flag.Uint64("seed", 0, "workload seed (0 = default)")
	list := flag.Bool("list", false, "list experiments and exit")
	csvDir := flag.String("csvdir", "", "also write figure series as CSV files into this directory")
	flag.Parse()

	if *list {
		for _, e := range bulkpim.Experiments() {
			fmt.Println(e)
		}
		return
	}

	opts := bulkpim.Options{Scale: bulkpim.Scale(*scale), Seed: *seed}
	if *verbose {
		opts.Log = func(format string, args ...interface{}) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}

	start := time.Now()
	out, err := bulkpim.RunExperiment(*exp, opts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pimbench: %v\n", err)
		os.Exit(1)
	}
	fmt.Print(out)
	if *csvDir != "" {
		if err := writeCSVs(*csvDir, *exp, opts); err != nil {
			fmt.Fprintf(os.Stderr, "pimbench: csv: %v\n", err)
			os.Exit(1)
		}
	}
	fmt.Fprintf(os.Stderr, "pimbench: %s at scale %s in %s\n", *exp, *scale, time.Since(start).Round(time.Millisecond))
}

// writeCSVs re-renders figure series as CSV for external plotting. Only
// series-shaped experiments have CSV forms.
func writeCSVs(dir, exp string, opts bulkpim.Options) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	write := func(name string, s *bulkpim.Series) error {
		return os.WriteFile(dir+"/"+name+".csv", []byte(s.CSV()), 0o644)
	}
	switch exp {
	case "fig3":
		s, err := bulkpim.Fig3(opts)
		if err != nil {
			return err
		}
		return write("fig3", s)
	case "fig7", "fig10":
		f, err := bulkpim.Fig7(opts)
		if err != nil {
			return err
		}
		for name, s := range map[string]*bulkpim.Series{
			"fig7a": f.Abs, "fig7b": f.Norm, "fig10a": f.BufLen,
			"fig10b": f.UniqueScopes, "fig10c": f.ScanLatency, "fig10d": f.SkipRatio,
		} {
			if err := write(name, s); err != nil {
				return err
			}
		}
		return nil
	case "fig11a":
		s, err := bulkpim.Fig11a(opts)
		if err != nil {
			return err
		}
		return write("fig11a", s)
	case "fig11b":
		s, err := bulkpim.Fig11b(opts)
		if err != nil {
			return err
		}
		return write("fig11b", s)
	case "fig13":
		s, err := bulkpim.Fig13(opts)
		if err != nil {
			return err
		}
		return write("fig13", s)
	default:
		fmt.Fprintf(os.Stderr, "pimbench: no CSV form for %s\n", exp)
		return nil
	}
}
