// Command pimbench regenerates the tables and figures of "On Consistency
// for Bulk-Bitwise Processing-in-Memory" (HPCA 2023).
//
// Usage:
//
//	pimbench [run] [flags]      execute experiments and print reports
//	pimbench plan [flags]       print the deterministic job manifest
//	pimbench merge -o DIR SRC...  merge collected result caches
//	pimbench coord [flags]      dispatch jobs to a fault-tolerant worker fleet
//	pimbench serve [flags]      HTTP daemon: cached results instantly, misses on a live fleet
//	pimbench work [flags]       worker protocol endpoint (spawned by coord and serve)
//	pimbench snapshot [flags]   inspect / garbage-collect workload snapshots
//	pimbench version [-v]       print build identity (module, Go, VCS revision)
//
// `run` and `work` accept -cpuprofile/-memprofile to capture pprof
// profiles of the simulation (see README "Profiling & sim performance").
//
//	pimbench -exp fig7 -scale quick
//	pimbench -exp all  -scale medium -parallel 8 -v
//	pimbench -exp all  -scale full -resume                # interrupt...
//	pimbench -exp all  -scale full -resume                # ...and resume
//	pimbench -list
//
// Distributed runs split the suite across machines. Planning is
// deterministic and the -shard filter is a stable hash of the job key,
// so independently planned shards partition the suite exactly:
//
//	pimbench plan -exp all -scale full -json              # manifest
//	pimbench run -exp all -scale full -shard 0/2 -cache-dir s0   # machine 0
//	pimbench run -exp all -scale full -shard 1/2 -cache-dir s1   # machine 1
//	pimbench merge -o merged s0 s1
//	pimbench run -exp all -scale full -cache-dir merged   # warm report pass
//
// A shard run executes only its grid points (no reports); the final
// report pass is served entirely from the merged cache and is
// byte-identical to a single-process run.
//
// Incremental re-plans diff a saved manifest against the current
// build — only jobs whose fingerprint is new or changed are planned,
// and grid points that disappeared are reported, never dropped:
//
//	pimbench plan -exp all -scale full -json > manifest.json
//	# ...edit a Config parameter...
//	pimbench plan -exp all -scale full -json -diff manifest.json
//
// Streaming reports (-stream on run and coord) render each figure or
// table the moment its last job settles — settle order logs on
// stderr, stdout stays byte-identical to the batch report:
//
//	pimbench run -exp all -scale full -parallel 16 -stream
//
// The coordinator automates the whole distributed flow on one machine
// (and, via -worker-cmd, over ssh-style launchers): it dedups the
// planned suite by fingerprint, dispatches individual jobs to worker
// subprocesses with dynamic work-stealing, retries jobs from crashed
// or erroring workers on the survivors, and streams every finished
// result into the cache as it lands:
//
//	pimbench coord -workers 8 -exp all -scale full -cache-dir d
//	pimbench run -exp all -scale full -cache-dir d        # warm report pass
//
// The run survives worker death (it completes as long as one worker
// lives), and a mid-run kill of the coordinator loses at most the
// in-flight jobs — re-running resumes from the cache.
//
// The serve daemon is the coordinator promoted to an always-on service:
// an HTTP/JSON API over the same cache and a persistent worker fleet.
// Cached requests answer instantly; misses are planned, deduplicated
// against all in-flight work fleet-wide, executed once, and written
// back (see README "Serving"):
//
//	pimbench serve -addr :8080 -cache-dir d -snapshot-dir s -workers 4
//	curl -d '{"experiment":"fig7","scale":"smoke"}' localhost:8080/v1/jobs
//
// Scales: smoke (CI, seconds), quick (minutes), medium (tens of
// minutes), full (the paper's measurement volume; hours sequentially —
// every grid point is an independent simulation, so -parallel N divides
// the wall time down to the slowest single point). All scales produce
// the same figure shapes; see README.md.
//
// With -cache-dir (or -resume), finished grid points are memoized on
// disk and skipped on re-runs; reports are byte-identical either way,
// and a cache-stats summary is printed on stderr. -resume uses
// .pimbench-cache unless -cache-dir names another directory; pass the
// same directory on both runs.
//
// With -snapshot-dir, generated workloads (YCSB databases, TPC-H query
// sections) are additionally memoized in a content-addressed snapshot
// store: re-runs — and fleet workers sharing the directory — load each
// database instead of regenerating it, so a warm run performs zero
// workload generations. `pimbench coord -snapshot-dir d` pre-warms the
// biggest databases and propagates the store to every worker.
// `pimbench snapshot -snapshot-dir d -ls` lists the store; `-gc`
// garbage-collects it.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"bulkpim"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

// run is main with its dependencies injected (flags, stdio streams) so
// tests can drive the binary end-to-end in-process; only the work
// subcommand reads stdin. The first argument selects a subcommand;
// bare flags keep their historical meaning of "run".
func run(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	if len(args) > 0 && !strings.HasPrefix(args[0], "-") {
		switch args[0] {
		case "run":
			return runCmd(args[1:], stdout, stderr)
		case "plan":
			return planCmd(args[1:], stdout, stderr)
		case "merge":
			return mergeCmd(args[1:], stdout, stderr)
		case "coord":
			return coordCmd(args[1:], stdout, stderr)
		case "serve":
			return serveCmd(args[1:], stdout, stderr)
		case "work":
			return workCmd(args[1:], stdin, stdout, stderr)
		case "snapshot":
			return snapshotCmd(args[1:], stdout, stderr)
		case "version":
			return versionCmd(args[1:], stdout, stderr)
		default:
			fmt.Fprintf(stderr, "pimbench: unknown subcommand %q (have run, plan, merge, coord, serve, work, snapshot, version)\n", args[0])
			return 2
		}
	}
	return runCmd(args, stdout, stderr)
}

// defaultCacheDir is where -resume looks without an explicit -cache-dir.
const defaultCacheDir = ".pimbench-cache"

// runCmd executes experiments: the full plan -> execute -> report path,
// or — with -shard — the execute-only worker half of a distributed run.
func runCmd(args []string, stdout, stderr io.Writer) int {
	fs, f := newRunFlags(stderr)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}

	if *f.list {
		for _, e := range bulkpim.Experiments() {
			fmt.Fprintln(stdout, e)
		}
		return 0
	}
	if !f.validScale(stderr) {
		return 2
	}
	var shard bulkpim.Shard
	sharded := *f.shard != ""
	if sharded {
		var err error
		if shard, err = bulkpim.ParseShard(*f.shard); err != nil {
			fmt.Fprintf(stderr, "pimbench: %v\n", err)
			return 2
		}
		if *f.csvDir != "" {
			fmt.Fprintln(stderr, "pimbench: -csvdir is incompatible with -shard (shard runs build no reports)")
			return 2
		}
		if *f.stream {
			fmt.Fprintln(stderr, "pimbench: -stream is incompatible with -shard (shard runs build no reports)")
			return 2
		}
	}

	stopProfiles, err := startProfiles(*f.prof.cpu, *f.prof.mem)
	if err != nil {
		fmt.Fprintf(stderr, "pimbench: profile: %v\n", err)
		return 1
	}
	defer func() {
		if err := stopProfiles(); err != nil {
			fmt.Fprintf(stderr, "pimbench: profile: %v\n", err)
		}
	}()

	opts := f.options()
	opts.Parallelism = *f.parallel
	if *f.verbose {
		opts.Log = func(format string, args ...interface{}) {
			fmt.Fprintf(stderr, format+"\n", args...)
		}
	}

	dir := *f.cacheDir
	if *f.resume && dir == "" {
		dir = defaultCacheDir
	}
	if sharded && (dir == "" || *f.noCache) {
		fmt.Fprintln(stderr, "pimbench: -shard needs -cache-dir (or -resume): a shard ships its results as a cache file")
		return 2
	}
	var cache *bulkpim.ResultCache
	if dir != "" && !*f.noCache {
		var err error
		if cache, err = bulkpim.OpenResultCache(dir); err != nil {
			fmt.Fprintf(stderr, "pimbench: %v\n", err)
			return 1
		}
		defer cache.Close()
		opts.Cache = cache
		if *f.resume {
			fmt.Fprintf(stderr, "pimbench: resuming from %s (%d cached points)\n",
				cache.Path(), cache.Len())
		}
	}
	snapFooter, err := attachSnapshots(*f.snapDir, &opts, stderr)
	if err != nil {
		fmt.Fprintf(stderr, "pimbench: %v\n", err)
		return 1
	}

	start := time.Now()
	var runErr error
	switch {
	case sharded:
		runErr = runShard(*f.exp, opts, shard, stderr)
	case *f.stream:
		runErr = streamExperiments(*f.exp, opts, stdout, stderr)
	default:
		runErr = runExperiments(*f.exp, opts, stdout, stderr)
	}
	// Accounting goes to stderr even on failure: a partially-failed
	// resumed run still reports what it skipped and recomputed.
	if cache != nil {
		fmt.Fprintf(stderr, "pimbench: cache: %s (%s)\n", cache.Stats(), cache.Path())
	}
	snapFooter()
	if runErr != nil {
		fmt.Fprintf(stderr, "pimbench: %v\n", runErr)
		return 1
	}
	if *f.csvDir != "" {
		if err := writeCSVs(*f.csvDir, *f.exp, opts, stderr); err != nil {
			fmt.Fprintf(stderr, "pimbench: csv: %v\n", err)
			return 1
		}
	}
	if *f.gcstats != "" {
		if err := writeGCStats(*f.gcstats); err != nil {
			fmt.Fprintf(stderr, "pimbench: gcstats: %v\n", err)
			return 1
		}
	}
	fmt.Fprintf(stderr, "pimbench: %s at scale %s (parallel=%d) in %s\n",
		*f.exp, *f.scale, *f.parallel, time.Since(start).Round(time.Millisecond))
	return 0
}

// attachSnapshots opens the workload snapshot store under dir (when
// non-empty) and attaches it to opts. The returned footer prints the
// snapshot accounting — store stats plus the workloads this run
// actually generated, the number a snapshot-warm run must drive to
// zero — and is never nil, so callers print it unconditionally next to
// the cache footer.
func attachSnapshots(dir string, opts *bulkpim.Options, stderr io.Writer) (footer func(), err error) {
	if dir == "" {
		return func() {}, nil
	}
	snap, err := bulkpim.OpenSnapshotStore(dir)
	if err != nil {
		return nil, err
	}
	opts.Snapshots = snap
	genBefore := bulkpim.WorkloadGenerations()
	return func() {
		fmt.Fprintf(stderr, "pimbench: snapshots: %s; %d workloads generated (%s)\n",
			snap.Stats(), bulkpim.WorkloadGenerations()-genBefore, snap.Dir())
	}, nil
}

// runShard executes the shard's slice of the planned jobs into the
// cache — the worker half of a distributed run. Reports stay with the
// coordinator, so stdout is untouched.
func runShard(exp string, opts bulkpim.Options, shard bulkpim.Shard, stderr io.Writer) error {
	sum, err := bulkpim.ExecuteShard(exp, opts, shard)
	fmt.Fprintf(stderr, "pimbench: shard %s: %s\n", shard, sum)
	return err
}

// planCmd prints the deterministic job manifest — experiment, key,
// fingerprint per planned job — without executing any simulation work.
// -json emits the schema-versioned manifest envelope for external
// schedulers and later diffing; -shard filters to one shard's slice;
// -diff OLD.json keeps only the jobs whose fingerprint the prior
// manifest does not contain — the exact subset an incremental re-run
// has to execute (everything else is a warm cache hit).
func planCmd(args []string, stdout, stderr io.Writer) int {
	fs, f := newPlanFlags(stderr)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}
	if !f.validScale(stderr) {
		return 2
	}
	var shard bulkpim.Shard
	if *f.shard != "" {
		var err error
		if shard, err = bulkpim.ParseShard(*f.shard); err != nil {
			fmt.Fprintf(stderr, "pimbench: %v\n", err)
			return 2
		}
	}

	opts := f.options()
	manifest, err := bulkpim.Manifest(*f.exp, opts)
	if err != nil {
		fmt.Fprintf(stderr, "pimbench: %v\n", err)
		return 1
	}
	// FilterManifest applies the same dedup-then-assign rule as a
	// `run -shard` execution, so the printed slice is exactly the work
	// (and the cache entries) that shard will produce.
	manifest = bulkpim.FilterManifest(manifest, shard)
	envelope := bulkpim.NewManifestEnvelope(*f.exp, opts, buildLine(), manifest)

	footer := fmt.Sprintf("planned %d jobs (%s at scale %s)", len(manifest), *f.exp, *f.scale)
	if *f.diff != "" {
		data, err := os.ReadFile(*f.diff)
		if err != nil {
			fmt.Fprintf(stderr, "pimbench: diff: %v\n", err)
			return 1
		}
		old, err := bulkpim.ParseManifest(data)
		if err != nil {
			fmt.Fprintf(stderr, "pimbench: diff: %v\n", err)
			return 1
		}
		if old.Experiment != envelope.Experiment || old.Scale != envelope.Scale || old.Seed != envelope.Seed {
			fmt.Fprintf(stderr, "pimbench: diff: prior manifest is %s/%s/seed=%d, this plan is %s/%s/seed=%d — diffing anyway\n",
				old.Experiment, old.Scale, old.Seed, envelope.Experiment, envelope.Scale, envelope.Seed)
		}
		d := bulkpim.DiffManifests(old, envelope)
		// Removed grid points are reported, never silently dropped: a
		// fingerprint the new plan no longer contains is stale cache the
		// operator may want to know about.
		for _, j := range d.Removed {
			fmt.Fprintf(stderr, "pimbench: removed: %s\t%s\t%s\n", j.Experiment, j.Key, j.Fingerprint)
		}
		manifest = d.Invalidated
		if manifest == nil {
			manifest = []bulkpim.PlannedJob{}
		}
		envelope.Jobs = manifest
		footer = fmt.Sprintf("diff vs %s: %s", *f.diff, d.Summary())
	}

	if *f.asJSON {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(envelope); err != nil {
			fmt.Fprintf(stderr, "pimbench: %v\n", err)
			return 1
		}
	} else {
		for _, j := range manifest {
			fmt.Fprintf(stdout, "%s\t%s\t%s\n", j.Experiment, j.Key, j.Fingerprint)
		}
	}
	fmt.Fprintf(stderr, "pimbench: %s\n", footer)
	return 0
}

// mergeCmd validates and merges collected result caches — the
// coordinator half of a distributed run.
func mergeCmd(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("pimbench merge", flag.ContinueOnError)
	fs.SetOutput(stderr)
	out := fs.String("o", "", "destination cache directory (required)")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}
	if *out == "" || fs.NArg() == 0 {
		fmt.Fprintln(stderr, "pimbench: usage: pimbench merge -o DIR SRC_DIR...")
		return 2
	}
	stats, err := bulkpim.MergeResultCaches(*out, fs.Args()...)
	if err != nil {
		fmt.Fprintf(stderr, "pimbench: merge: %v\n", err)
		return 1
	}
	fmt.Fprintf(stdout, "merged into %s: %s\n", *out, stats)
	return 0
}

// coordCmd runs the fault-tolerant coordinator: an execute-only fleet
// run streaming results into the cache, with a live jobs-done/ETA
// footer on stderr. Reports stay with a later warm run against the
// same cache directory — unless -stream, which renders each artifact
// coordinator-side the moment its last job settles and writes the
// assembled reports to stdout, byte-identical to that warm run.
func coordCmd(args []string, stdout, stderr io.Writer) int {
	fs, f := newCoordFlags(stderr)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}
	if !f.validScale(stderr) {
		return 2
	}
	if *f.cacheDir == "" {
		fmt.Fprintln(stderr, "pimbench: coord needs -cache-dir: the coordinator streams results into a cache the report pass reads")
		return 2
	}
	fmt.Fprintf(stderr, "pimbench: build: %s\n", buildLine())

	opts := f.options()
	if *f.verbose {
		opts.Log = func(format string, args ...interface{}) {
			fmt.Fprintf(stderr, format+"\n", args...)
		}
	}
	cache, err := bulkpim.OpenResultCache(*f.cacheDir)
	if err != nil {
		fmt.Fprintf(stderr, "pimbench: %v\n", err)
		return 1
	}
	defer cache.Close()
	opts.Cache = cache
	snapFooter, err := attachSnapshots(*f.snapDir, &opts, stderr)
	if err != nil {
		fmt.Fprintf(stderr, "pimbench: %v\n", err)
		return 1
	}

	copts := bulkpim.CoordOptions{
		Workers:    *f.fleet.workers,
		WorkerCmd:  *f.fleet.workerCmd,
		Progress:   stderr,
		FailWorker: *f.fleet.failWorker,
		FailAfter:  *f.fleet.failAfter,
	}
	if *f.verbose {
		copts.WorkerStderr = stderr
	}
	var asm *bulkpim.StreamAssembler
	if *f.stream {
		if asm, err = bulkpim.NewStreamAssembler(*f.exp, stdout); err != nil {
			fmt.Fprintf(stderr, "pimbench: %v\n", err)
			return 2
		}
		copts.Stream = func(e bulkpim.StreamEmit) {
			asm.Observe(e)
			logStreamEmit(e, stderr)
		}
	}
	sum, runErr := bulkpim.Coordinate(*f.exp, opts, copts)
	fmt.Fprintf(stderr, "pimbench: coord: %s\n", sum)
	fmt.Fprintf(stderr, "pimbench: cache: %s (%s)\n", cache.Stats(), cache.Path())
	snapFooter()
	if runErr != nil {
		fmt.Fprintf(stderr, "pimbench: %v\n", runErr)
		return 1
	}
	if asm != nil {
		if werr := asm.Err(); werr != nil {
			fmt.Fprintf(stderr, "pimbench: stream write: %v\n", werr)
			return 1
		}
	}
	return 0
}

// serveCmd runs the always-on daemon: an HTTP/JSON API in front of the
// result cache and a persistent elastic worker fleet. SIGINT/SIGTERM
// shut it down gracefully (in-flight jobs finish, queued ones fail).
func serveCmd(args []string, stdout, stderr io.Writer) int {
	fs, f := newServeFlags(stderr)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}
	if *f.cacheDir == "" {
		fmt.Fprintln(stderr, "pimbench: serve needs -cache-dir: the daemon is a results CDN over a shared result cache")
		return 2
	}
	fmt.Fprintf(stderr, "pimbench: build: %s\n", buildLine())

	var opts bulkpim.Options
	if *f.verbose {
		opts.Log = func(format string, args ...interface{}) {
			fmt.Fprintf(stderr, format+"\n", args...)
		}
	}
	cache, err := bulkpim.OpenResultCache(*f.cacheDir)
	if err != nil {
		fmt.Fprintf(stderr, "pimbench: %v\n", err)
		return 1
	}
	defer cache.Close()
	opts.Cache = cache
	snapFooter, err := attachSnapshots(*f.snapDir, &opts, stderr)
	if err != nil {
		fmt.Fprintf(stderr, "pimbench: %v\n", err)
		return 1
	}

	sopts := bulkpim.ServerOptions{
		Addr:       *f.addr,
		Workers:    *f.fleet.workers,
		WorkerCmd:  *f.fleet.workerCmd,
		Local:      *f.local,
		FailWorker: *f.fleet.failWorker,
		FailAfter:  *f.fleet.failAfter,
	}
	if *f.verbose {
		sopts.WorkerStderr = stderr
	}
	srv, err := bulkpim.NewServer(opts, sopts)
	if err != nil {
		fmt.Fprintf(stderr, "pimbench: %v\n", err)
		return 1
	}
	fmt.Fprintf(stderr, "pimbench: serving on %s (%d cached points, %s)\n",
		srv.Addr(), cache.Len(), cache.Path())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sig)
	go func() {
		s, ok := <-sig
		if !ok {
			return
		}
		fmt.Fprintf(stderr, "pimbench: %v: shutting down\n", s)
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			fmt.Fprintf(stderr, "pimbench: shutdown: %v\n", err)
		}
	}()

	serveErr := srv.Serve()
	fmt.Fprintf(stderr, "pimbench: cache: %s (%s)\n", cache.Stats(), cache.Path())
	snapFooter()
	if serveErr != nil {
		fmt.Fprintf(stderr, "pimbench: serve: %v\n", serveErr)
		return 1
	}
	return 0
}

// workCmd is the hidden worker endpoint `pimbench coord` and `pimbench
// serve` spawn: it speaks the line-delimited JSON protocol on
// stdin/stdout (stdout carries nothing else) and logs on stderr.
func workCmd(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fs, f := newWorkFlags(stderr)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}
	if !f.validScale(stderr) {
		return 2
	}
	stopProfiles, err := startProfiles(*f.prof.cpu, *f.prof.mem)
	if err != nil {
		fmt.Fprintf(stderr, "pimbench: profile: %v\n", err)
		return 1
	}
	defer func() {
		if err := stopProfiles(); err != nil {
			fmt.Fprintf(stderr, "pimbench: profile: %v\n", err)
		}
	}()
	fmt.Fprintf(stderr, "pimbench: build: %s\n", buildLine())
	opts := f.options()
	if *f.verbose {
		opts.Log = func(format string, args ...interface{}) {
			fmt.Fprintf(stderr, format+"\n", args...)
		}
	}
	snapFooter, err := attachSnapshots(*f.snapDir, &opts, stderr)
	if err != nil {
		fmt.Fprintf(stderr, "pimbench: %v\n", err)
		return 1
	}
	defer snapFooter()
	var workErr error
	if *f.dynamic {
		workErr = bulkpim.ServeDynamicWork(opts, stdin, stdout, *f.failAfter)
	} else {
		workErr = bulkpim.ServeWork(*f.exp, opts, stdin, stdout, *f.failAfter)
	}
	if workErr != nil {
		fmt.Fprintf(stderr, "pimbench: work: %v\n", workErr)
		return 1
	}
	return 0
}

// snapshotCmd inspects and garbage-collects a workload snapshot store.
// -ls (the default) lists id, size and workload identity per snapshot,
// flagging files that fail verification; -gc removes snapshots older
// than -older-than (0 = all) plus anything broken — corrupt files,
// foreign store versions and orphaned temp files can never hit, so
// they are always garbage.
func snapshotCmd(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("pimbench snapshot", flag.ContinueOnError)
	fs.SetOutput(stderr)
	dir := fs.String("snapshot-dir", "", "snapshot store directory (required)")
	ls := fs.Bool("ls", false, "list snapshots (default action)")
	gc := fs.Bool("gc", false, "garbage-collect the store")
	olderThan := fs.Duration("older-than", 0, "with -gc, only remove snapshots older than this (0 removes every snapshot)")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}
	if *dir == "" || fs.NArg() != 0 {
		fmt.Fprintln(stderr, "pimbench: usage: pimbench snapshot -snapshot-dir DIR [-ls | -gc [-older-than DUR]]")
		return 2
	}
	snap, err := bulkpim.OpenSnapshotStore(*dir)
	if err != nil {
		fmt.Fprintf(stderr, "pimbench: %v\n", err)
		return 1
	}
	if *gc {
		removed, freed, err := snap.GC(*olderThan, time.Now())
		if err != nil {
			fmt.Fprintf(stderr, "pimbench: snapshot gc: %v\n", err)
			return 1
		}
		fmt.Fprintf(stdout, "removed %d files (%d bytes) from %s\n", removed, freed, snap.Dir())
		return 0
	}
	_ = ls // listing is the default action
	infos, err := snap.List()
	if err != nil {
		fmt.Fprintf(stderr, "pimbench: %v\n", err)
		return 1
	}
	for _, in := range infos {
		if in.Err != nil {
			fmt.Fprintf(stdout, "%s\t%d\tBROKEN: %v\n", in.ID, in.Size, in.Err)
			continue
		}
		fmt.Fprintf(stdout, "%s\t%d\t%s\n", in.ID, in.Size, in.Label)
	}
	fmt.Fprintf(stderr, "pimbench: %d snapshots in %s\n", len(infos), snap.Dir())
	return 0
}

// runExperiments executes one experiment — or, for "all", every
// experiment concurrently on one shared worker pool, with a
// per-experiment timing footer on stderr (wall times vary run to run,
// so the footer stays out of the byte-stable stdout reports).
func runExperiments(exp string, opts bulkpim.Options, stdout, stderr io.Writer) error {
	if exp != "all" {
		out, err := bulkpim.RunExperiment(exp, opts)
		if err != nil {
			return err
		}
		fmt.Fprint(stdout, out)
		return nil
	}
	timings, err := bulkpim.RunAll(opts, func(name, report string) {
		fmt.Fprintf(stdout, "==== %s ====\n%s\n", name, report)
	}, func(name string, d time.Duration) {
		fmt.Fprintf(stderr, "pimbench: %s in %s\n", name, d.Round(time.Millisecond))
	})
	fmt.Fprintf(stderr, "pimbench: %s\n", bulkpim.TimingFooter(timings))
	return err
}

// logStreamEmit prints one artifact emission's settle-order line on
// stderr — the wall-clock evidence that figures stream out before the
// suite finishes (stdout carries only the byte-stable reports).
func logStreamEmit(e bulkpim.StreamEmit, stderr io.Writer) {
	if e.Err != nil {
		fmt.Fprintf(stderr, "pimbench: artifact %s/%s failed: %v\n", e.Experiment, e.Artifact, e.Err)
		return
	}
	fmt.Fprintf(stderr, "pimbench: artifact %s/%s ready (settled #%d)\n", e.Experiment, e.Artifact, e.Seq+1)
}

// streamExperiments is runExperiments with -stream: artifacts render
// the moment their last job settles and reach stdout incrementally in
// canonical order, byte-identical to the batch report for a successful
// run.
func streamExperiments(exp string, opts bulkpim.Options, stdout, stderr io.Writer) error {
	timings, err := bulkpim.StreamReport(exp, opts, func(e bulkpim.StreamEmit) {
		logStreamEmit(e, stderr)
	}, stdout)
	if len(timings) > 0 {
		fmt.Fprintf(stderr, "pimbench: %s\n", bulkpim.TimingFooter(timings))
	}
	return err
}

// writeCSVs re-renders figure series as CSV for external plotting. Only
// series-shaped experiments have CSV forms.
func writeCSVs(dir, exp string, opts bulkpim.Options, stderr io.Writer) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	write := func(name string, s *bulkpim.Series) error {
		return os.WriteFile(dir+"/"+name+".csv", []byte(s.CSV()), 0o644)
	}
	switch exp {
	case "fig3":
		s, err := bulkpim.Fig3(opts)
		if err != nil {
			return err
		}
		return write("fig3", s)
	case "fig7", "fig10":
		f, err := bulkpim.Fig7(opts)
		if err != nil {
			return err
		}
		for name, s := range map[string]*bulkpim.Series{
			"fig7a": f.Abs, "fig7b": f.Norm, "fig10a": f.BufLen,
			"fig10b": f.UniqueScopes, "fig10c": f.ScanLatency, "fig10d": f.SkipRatio,
		} {
			if err := write(name, s); err != nil {
				return err
			}
		}
		return nil
	case "fig11a":
		s, err := bulkpim.Fig11a(opts)
		if err != nil {
			return err
		}
		return write("fig11a", s)
	case "fig11b":
		s, err := bulkpim.Fig11b(opts)
		if err != nil {
			return err
		}
		return write("fig11b", s)
	case "fig13":
		s, err := bulkpim.Fig13(opts)
		if err != nil {
			return err
		}
		return write("fig13", s)
	default:
		fmt.Fprintf(stderr, "pimbench: no CSV form for %s\n", exp)
		return nil
	}
}
