package main

// Single source of shared flag definitions. The run, plan, coord,
// serve and work subcommands overlap on most of their flags — the
// -exp/-scale/-seed trio, -v, -cache-dir, -snapshot-dir, the fleet and
// crash-injection knobs, -stream — and before this file each
// subcommand declared its copies inline, so a rename or default change
// in one place could silently skew the others (and a new shared flag
// like -stream could land on run but drift from coord). Every shared
// flag is now declared by exactly one builder below; the per-
// subcommand newXxxFlags constructors compose them plus their own
// private flags. TestSharedFlagParity walks all five flag sets and
// asserts that a flag name appearing in several subcommands carries
// one default everywhere.

import (
	"flag"
	"fmt"
	"io"
	"strings"

	"bulkpim"
)

// newFlagSet builds a subcommand flag set that reports usage and parse
// errors on stderr.
func newFlagSet(name string, stderr io.Writer) *flag.FlagSet {
	fs := flag.NewFlagSet(name, flag.ContinueOnError)
	fs.SetOutput(stderr)
	return fs
}

// expFlags is the experiment-selection trio (-exp, -scale, -seed)
// shared by run, plan, coord and work.
type expFlags struct {
	exp   *string
	scale *string
	seed  *uint64
}

func addExpFlags(fs *flag.FlagSet, verb string) expFlags {
	return expFlags{
		exp:   fs.String("exp", "all", "experiment to "+verb+": "+strings.Join(bulkpim.Experiments(), ", ")),
		scale: fs.String("scale", "quick", "measurement scale: smoke | bench | quick | medium | full"),
		seed:  fs.Uint64("seed", 0, "workload seed (0 = default)"),
	}
}

// validScale validates -scale, printing the standard error line.
func (ef expFlags) validScale(stderr io.Writer) bool {
	if !bulkpim.ValidScale(bulkpim.Scale(*ef.scale)) {
		fmt.Fprintf(stderr, "pimbench: unknown scale %q (have %v)\n", *ef.scale, bulkpim.Scales())
		return false
	}
	return true
}

// options builds the harness Options the trio selects.
func (ef expFlags) options() bulkpim.Options {
	return bulkpim.Options{Scale: bulkpim.Scale(*ef.scale), Seed: *ef.seed}
}

func addVerbose(fs *flag.FlagSet, help string) *bool {
	return fs.Bool("v", false, help)
}

func addCacheDir(fs *flag.FlagSet, help string) *string {
	return fs.String("cache-dir", "", help)
}

func addSnapshotDir(fs *flag.FlagSet, help string) *string {
	return fs.String("snapshot-dir", "", help)
}

// addStream declares -stream for the subcommands that render reports
// (run and coord): emit each figure/table the moment its last job
// settles instead of batching every report to the end. The assembled
// stdout bytes stay identical to a batch report; the settle order is
// logged per artifact on stderr.
func addStream(fs *flag.FlagSet) *bool {
	return fs.Bool("stream", false, "stream each figure/table to stdout the moment its last job settles (bytes identical to the batch report; settle order logs on stderr)")
}

func addFailAfter(fs *flag.FlagSet, help string) *int {
	return fs.Int("fail-after", 0, help)
}

// fleetFlags are the worker-fleet knobs coord and serve share.
type fleetFlags struct {
	workers    *int
	workerCmd  *string
	failWorker *int
	failAfter  *int
}

func addFleetFlags(fs *flag.FlagSet, workersHelp string) fleetFlags {
	return fleetFlags{
		workers:    fs.Int("workers", 0, workersHelp),
		workerCmd:  fs.String("worker-cmd", "", "worker launch template; {args} expands to the work-subcommand arguments (default: re-execute this binary)"),
		failWorker: fs.Int("fail-worker", 0, "crash-injection test hook: which worker gets -fail-after"),
		failAfter:  addFailAfter(fs, "crash-injection test hook: kill that worker after N served jobs"),
	}
}

// profileFlags are the pprof capture knobs run and work share.
type profileFlags struct {
	cpu *string
	mem *string
}

func addProfileFlags(fs *flag.FlagSet) profileFlags {
	return profileFlags{
		cpu: fs.String("cpuprofile", "", "write a CPU profile (pprof) of the run to this file"),
		mem: fs.String("memprofile", "", "write a heap profile (pprof) at run end to this file"),
	}
}

// runFlags is the `pimbench run` flag set.
type runFlags struct {
	expFlags
	verbose  *bool
	parallel *int
	list     *bool
	csvDir   *string
	cacheDir *string
	noCache  *bool
	resume   *bool
	snapDir  *string
	shard    *string
	stream   *bool
	prof     profileFlags
	gcstats  *string
}

func newRunFlags(stderr io.Writer) (*flag.FlagSet, *runFlags) {
	fs := newFlagSet("pimbench", stderr)
	f := &runFlags{
		expFlags: addExpFlags(fs, "run"),
		verbose:  addVerbose(fs, "log per-run progress"),
		parallel: fs.Int("parallel", 0, "concurrent simulation jobs (0 = GOMAXPROCS, 1 = sequential; results are identical at any value)"),
		list:     fs.Bool("list", false, "list experiments and exit"),
		csvDir:   fs.String("csvdir", "", "also write figure series as CSV files into this directory"),
		cacheDir: addCacheDir(fs, "persist finished grid points here and skip them on re-runs (reports are byte-identical either way)"),
		noCache:  fs.Bool("no-cache", false, "disable the result cache even when -cache-dir or -resume is set"),
		resume:   fs.Bool("resume", false, "resume an interrupted run from the result cache (defaults -cache-dir to "+defaultCacheDir+")"),
		snapDir:  addSnapshotDir(fs, "memoize generated workloads here (content-addressed) and load instead of regenerating on re-runs; shareable across a fleet"),
		shard:    fs.String("shard", "", "execute only shard i/n of the planned jobs (stable hash of the job key) into the cache; no reports are built"),
		stream:   addStream(fs),
		prof:     addProfileFlags(fs),
		gcstats:  fs.String("gcstats", "", "write an allocation/GC summary (runtime.MemStats JSON) at run end to this file"),
	}
	return fs, f
}

// planFlags is the `pimbench plan` flag set.
type planFlags struct {
	expFlags
	shard  *string
	asJSON *bool
	diff   *string
}

func newPlanFlags(stderr io.Writer) (*flag.FlagSet, *planFlags) {
	fs := newFlagSet("pimbench plan", stderr)
	f := &planFlags{
		expFlags: addExpFlags(fs, "plan"),
		shard:    fs.String("shard", "", "print only shard i/n of the manifest"),
		asJSON:   fs.Bool("json", false, "emit the manifest as a schema-versioned JSON envelope"),
		diff:     fs.String("diff", "", "incremental re-plan: load a prior `plan -json` manifest and keep only jobs whose fingerprint is new or changed (removed jobs and a summary report on stderr)"),
	}
	return fs, f
}

// coordFlags is the `pimbench coord` flag set.
type coordFlags struct {
	expFlags
	fleet    fleetFlags
	cacheDir *string
	snapDir  *string
	verbose  *bool
	stream   *bool
}

func newCoordFlags(stderr io.Writer) (*flag.FlagSet, *coordFlags) {
	fs := newFlagSet("pimbench coord", stderr)
	f := &coordFlags{
		expFlags: addExpFlags(fs, "run"),
		fleet:    addFleetFlags(fs, "worker subprocesses (0 = GOMAXPROCS)"),
		cacheDir: addCacheDir(fs, "stream finished results into this cache directory (required)"),
		snapDir:  addSnapshotDir(fs, "workload snapshot store: the coordinator pre-warms the biggest databases and every worker is pointed at it"),
		verbose:  addVerbose(fs, "log per-job progress and forward worker stderr"),
		stream:   addStream(fs),
	}
	return fs, f
}

// serveFlags is the `pimbench serve` flag set.
type serveFlags struct {
	addr     *string
	cacheDir *string
	snapDir  *string
	fleet    fleetFlags
	local    *bool
	verbose  *bool
}

func newServeFlags(stderr io.Writer) (*flag.FlagSet, *serveFlags) {
	fs := newFlagSet("pimbench serve", stderr)
	f := &serveFlags{
		addr:     fs.String("addr", "127.0.0.1:8080", "listen address (host:port; port 0 picks an ephemeral port)"),
		cacheDir: addCacheDir(fs, "result cache directory the daemon serves from and writes back into (required)"),
		snapDir:  addSnapshotDir(fs, "workload snapshot store shared with the worker fleet"),
		fleet:    addFleetFlags(fs, "initial worker fleet size and auto-replace target (0 = 2)"),
		local:    fs.Bool("local", false, "execute in-process instead of spawning worker subprocesses"),
		verbose:  addVerbose(fs, "log requests, fleet events and forward worker stderr"),
	}
	return fs, f
}

// workFlags is the `pimbench work` flag set.
type workFlags struct {
	expFlags
	dynamic   *bool
	snapDir   *string
	verbose   *bool
	failAfter *int
	prof      profileFlags
}

func newWorkFlags(stderr io.Writer) (*flag.FlagSet, *workFlags) {
	fs := newFlagSet("pimbench work", stderr)
	f := &workFlags{
		expFlags:  addExpFlags(fs, "serve"),
		dynamic:   fs.Bool("dynamic", false, "serve-fleet mode: plan per job spec instead of per startup flags (-exp/-scale/-seed are ignored)"),
		snapDir:   addSnapshotDir(fs, "workload snapshot store shared with the coordinator and sibling workers"),
		verbose:   addVerbose(fs, "log served jobs on stderr"),
		failAfter: addFailAfter(fs, "crash-injection test hook: exit 3 when job N+1 arrives"),
		prof:      addProfileFlags(fs),
	}
	return fs, f
}
