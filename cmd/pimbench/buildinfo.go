package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/debug"
	"runtime/pprof"
	"strings"
)

// Build attribution and profile capture: BENCH_* artifacts, worker logs
// and pprof files are only useful if they can be tied to the build that
// produced them, and the kernel rewrite in internal/sim was driven by
// exactly the profiles these flags capture.

// buildLine returns the one-line build identity: module path, module
// version, Go toolchain, and VCS revision/dirty state when the binary
// was built from a checkout.
func buildLine() string {
	info, ok := debug.ReadBuildInfo()
	if !ok {
		return "pimbench (no build info)"
	}
	var b strings.Builder
	path := info.Main.Path
	if path == "" {
		path = "bulkpim"
	}
	ver := info.Main.Version
	if ver == "" {
		ver = "(devel)"
	}
	fmt.Fprintf(&b, "pimbench %s %s %s", path, ver, info.GoVersion)
	var rev, modified string
	for _, s := range info.Settings {
		switch s.Key {
		case "vcs.revision":
			rev = s.Value
		case "vcs.modified":
			modified = s.Value
		}
	}
	if rev != "" {
		if len(rev) > 12 {
			rev = rev[:12]
		}
		fmt.Fprintf(&b, " rev %s", rev)
		if modified == "true" {
			b.WriteString(" (dirty)")
		}
	}
	return b.String()
}

// versionCmd prints the build identity; -v adds the full build-settings
// dump (compiler flags, CGO state, VCS timestamps).
func versionCmd(args []string, stdout, stderr io.Writer) int {
	verbose := false
	for _, a := range args {
		switch a {
		case "-v", "--v", "-verbose", "--verbose":
			verbose = true
		default:
			fmt.Fprintf(stderr, "pimbench: usage: pimbench version [-v]\n")
			return 2
		}
	}
	fmt.Fprintln(stdout, buildLine())
	if verbose {
		if info, ok := debug.ReadBuildInfo(); ok {
			for _, s := range info.Settings {
				fmt.Fprintf(stdout, "\t%s=%s\n", s.Key, s.Value)
			}
		}
	}
	return 0
}

// startProfiles begins CPU profiling when cpuPath is non-empty and
// returns a stop function that finishes the CPU profile and — when
// memPath is non-empty — snapshots the live heap after a GC. The stop
// function is safe to call exactly once and is never nil.
func startProfiles(cpuPath, memPath string) (stop func() error, err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, err
		}
		cpuFile = f
	}
	return func() error {
		var first error
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				first = err
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				if first == nil {
					first = err
				}
				return first
			}
			runtime.GC() // materialize the live heap before snapshotting
			if err := pprof.WriteHeapProfile(f); err != nil && first == nil {
				first = err
			}
			if err := f.Close(); err != nil && first == nil {
				first = err
			}
		}
		return first
	}, nil
}

// gcStats is the allocation/GC summary -gcstats dumps (the
// BENCH_gcstats.json artifact): the runtime.MemStats counters that show
// what the pooled request path keeps off the garbage collector.
type gcStats struct {
	Build         string  `json:"build"`
	TotalAllocB   uint64  `json:"total_alloc_bytes"`
	Mallocs       uint64  `json:"mallocs"`
	Frees         uint64  `json:"frees"`
	HeapAllocB    uint64  `json:"heap_alloc_bytes"`
	HeapObjects   uint64  `json:"heap_objects"`
	SysB          uint64  `json:"sys_bytes"`
	NumGC         uint32  `json:"num_gc"`
	PauseTotalNs  uint64  `json:"pause_total_ns"`
	GCCPUFraction float64 `json:"gc_cpu_fraction"`
}

// writeGCStats snapshots runtime.MemStats into path as JSON. Called at
// run end, so the counters cover the whole run.
func writeGCStats(path string) error {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	s := gcStats{
		Build:         buildLine(),
		TotalAllocB:   ms.TotalAlloc,
		Mallocs:       ms.Mallocs,
		Frees:         ms.Frees,
		HeapAllocB:    ms.HeapAlloc,
		HeapObjects:   ms.HeapObjects,
		SysB:          ms.Sys,
		NumGC:         ms.NumGC,
		PauseTotalNs:  ms.PauseTotalNs,
		GCCPUFraction: ms.GCCPUFraction,
	}
	data, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
