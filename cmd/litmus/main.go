// Command litmus runs the paper's Fig. 1 ordering-violation scenario under
// any model and prints the outcomes, including the happens-before cycle
// when one exists.
//
// Usage:
//
//	litmus -model swflush
//	litmus -model atomic -delay 800
package main

import (
	"flag"
	"fmt"
	"os"

	"bulkpim"
)

func main() {
	modelName := flag.String("model", "swflush", "model: naive, swflush, uncacheable, atomic, store, scope, scope-relaxed")
	delay := flag.Int64("delay", -1, "adversary prefetch delay in cycles (-1 = sweep)")
	flag.Parse()

	model, err := bulkpim.ParseModel(*modelName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	var delays []bulkpim.Tick
	if *delay >= 0 {
		delays = []bulkpim.Tick{bulkpim.Tick(*delay)}
	} else {
		delays = bulkpim.LitmusDefaultSweep()
	}

	outs, err := bulkpim.SweepFig1(model, delays)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	for _, o := range outs {
		fmt.Println(o)
		if o.Cycle != nil {
			fmt.Printf("  cycle: %s\n", o.Cycle)
		}
	}
	stale, cycle := bulkpim.LitmusVulnerable(outs)
	fmt.Printf("\nmodel %s: stale-read=%v happens-before-cycle=%v\n", model, stale, cycle)
	if stale || cycle {
		fmt.Println("VERDICT: ordering rules violated (Fig. 1 reproduced)")
		os.Exit(2)
	}
	fmt.Println("VERDICT: no violation at any tested adversary timing")
}
