package bulkpim

// The experiment registry is the declarative backbone of the harness:
// every experiment is an ExperimentSpec with two separable phases — a
// Plan that enumerates its simulation jobs without executing anything,
// and a set of Artifacts (figures/tables), each declaring the exact
// job-key set it needs and rendered individually by Render purely from
// job results looked up by key. Everything else is built on that
// split: a local run plans and executes in one process; a distributed
// run plans everywhere, executes a shard-filtered subset per machine
// into a local result cache, merges the caches, and runs the report
// pass entirely from cache hits; a streaming run (stream.go) counts
// down each artifact's key set as results settle and renders it the
// moment its last job lands. The legacy monolithic Report is now a
// method that concatenates the artifact renders in declaration order.
// RunExperiment, RunAll, the pimbench plan/merge subcommands and the
// -shard filter all resolve experiments through this one table, so the
// advertised experiment list can never drift from what actually runs.

import (
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"bulkpim/internal/runner"
)

// Artifact is one renderable output of an ExperimentSpec — a figure or
// table name (fig7, fig10, table2, …) plus the exact job-key set whose
// results its render folds. Keys is empty for static tables, which are
// renderable before any job runs. The per-artifact key sets are what
// make streaming cheap: "the last job for figure X settled" is a
// remaining-key countdown over Keys, no simulation knowledge needed.
type Artifact struct {
	Name string
	Keys []string
}

// ExperimentSpec declares one experiment of the paper's evaluation.
type ExperimentSpec struct {
	// Name is the canonical experiment name ("fig7", "table2", ...).
	Name string
	// Bundles lists additional artifact names this spec renders from
	// the same sweep (fig10 rides on fig7's jobs, fig9 on fig8's);
	// requesting a bundled name resolves to this spec.
	Bundles []string
	// Plan enumerates the experiment's simulation jobs — keys,
	// fingerprints, workload identity — without executing any
	// simulation work. Workload generation is deferred into the job
	// closures, so planning a full-scale suite is instant. nil for
	// static table experiments with no jobs.
	Plan func(opts Options) ([]SimJob, error)
	// Artifacts declares the spec's renderable outputs in report
	// order: the artifact named after the spec first, bundled names
	// after. Like Plan it executes nothing; key sets may vary with
	// opts (scale changes the grid) but names never do.
	Artifacts func(opts Options) []Artifact
	// Render produces one declared artifact from planned-job results,
	// looked up by job key. It performs no simulation work, so a
	// coordinator whose cache holds an artifact's key set renders it
	// without computing anything — and a stream renders it the moment
	// the last of those keys settles.
	Render func(opts Options, artifact string, rs *ResultSet) (string, error)
}

// Report renders the spec's full printable report: every declared
// artifact, rendered in declaration order and concatenated. This is
// the legacy monolithic entry point the batch paths still call — the
// golden tests pin that a streamed run's artifacts reassemble to
// exactly these bytes.
func (s ExperimentSpec) Report(opts Options, rs *ResultSet) (string, error) {
	var b strings.Builder
	for _, a := range s.Artifacts(opts) {
		out, err := s.Render(opts, a.Name, rs)
		if err != nil {
			return "", err
		}
		b.WriteString(out)
	}
	return b.String(), nil
}

// ArtifactNames lists the spec's artifact names in declaration order.
// Names are scale-independent — only key sets vary with options — so a
// fixed smoke-scale enumeration serves catalogs and lookups.
func (s ExperimentSpec) ArtifactNames() []string {
	arts := s.Artifacts(Options{Scale: ScaleSmoke})
	out := make([]string, len(arts))
	for i, a := range arts {
		out[i] = a.Name
	}
	return out
}

// LookupArtifact resolves an artifact name (fig10, table2, …) to the
// spec that renders it. Artifact names are the union of spec names and
// bundled names, so this is LookupExperiment at artifact granularity.
func LookupArtifact(name string) (ExperimentSpec, bool) {
	n := strings.ToLower(name)
	for _, s := range registry {
		for _, a := range s.ArtifactNames() {
			if a == n {
				return s, true
			}
		}
	}
	return ExperimentSpec{}, false
}

// singleArtifact wires the Artifacts/Render pair for the common
// one-artifact spec: the artifact carries the spec's name, keys
// enumerates its job keys at the given options (nil for static
// tables), renderOne produces the report body.
func singleArtifact(name string, keys func(opts Options) []string,
	renderOne func(opts Options, rs *ResultSet) (string, error)) (
	func(Options) []Artifact, func(Options, string, *ResultSet) (string, error)) {
	artifacts := func(opts Options) []Artifact {
		var ks []string
		if keys != nil {
			ks = keys(opts)
		}
		return []Artifact{{Name: name, Keys: ks}}
	}
	renderFn := func(opts Options, artifact string, rs *ResultSet) (string, error) {
		if artifact != name {
			return "", fmt.Errorf("%s: unknown artifact %q", name, artifact)
		}
		return renderOne(opts, rs)
	}
	return artifacts, renderFn
}

// ResultSet indexes executed grid-point results by job key: the
// interface between an experiment's execute and report phases. Failed
// points are absent, mirroring the skip-failed-points behaviour of the
// pre-registry sweeps (the execute phase separately folds failures
// into an error).
type ResultSet struct {
	byKey map[string]Result
}

// newResultSet indexes a batch's successful results.
func newResultSet(rs []runner.JobResult[Result]) *ResultSet {
	s := &ResultSet{byKey: make(map[string]Result, len(rs))}
	for _, r := range rs {
		if r.Err == nil {
			s.byKey[r.Key] = r.Value
		}
	}
	return s
}

// Lookup returns the result of the job planned under key.
func (s *ResultSet) Lookup(key string) (Result, bool) {
	r, ok := s.byKey[key]
	return r, ok
}

// Len returns the number of indexed results.
func (s *ResultSet) Len() int { return len(s.byKey) }

// execCount counts Execute invocations of planned jobs, across every
// experiment. Tests use it to enforce the plan/execute separation
// contract: planning (and fingerprinting) a suite must execute zero
// simulation work.
var execCount atomic.Int64

// countExec wraps a planned job's Execute with the invocation counter.
// Every spec's Plan routes its Execute closures through this.
func countExec(f func(Config) (Result, error)) func(Config) (Result, error) {
	return func(cfg Config) (Result, error) {
		execCount.Add(1)
		return f(cfg)
	}
}

// registry lists every experiment in canonical suite order. Specs are
// appended here and nowhere else; Experiments, StandaloneExperiments,
// RunExperiment, RunAll and the plan/shard pipeline all derive from
// this table.
var registry = []ExperimentSpec{
	fig1Spec(),
	fig3Spec(),
	fig7Spec(),
	fig8Spec(),
	fig11aSpec(),
	fig11bSpec(),
	fig12Spec(),
	fig13Spec(),
	tableSpec("table1", TableITable),
	tableSpec("table2", TableIITable),
	tableSpec("table3", TableIIITable),
	tableSpec("table4", TableIVTable),
	tableSpec("area", AreaTable),
	ablationSpec(),
	sbsizeSpec(),
	multimodSpec(),
}

// LookupExperiment resolves an experiment name — canonical or bundled
// (fig10 -> fig7, fig9 -> fig8) — to its spec.
func LookupExperiment(name string) (ExperimentSpec, bool) {
	n := strings.ToLower(name)
	for _, s := range registry {
		if s.Name == n {
			return s, true
		}
		for _, b := range s.Bundles {
			if b == n {
				return s, true
			}
		}
	}
	return ExperimentSpec{}, false
}

// Experiments lists the regenerable artifacts: every registered spec,
// its bundled artifact names, and "all".
func Experiments() []string {
	var out []string
	for _, s := range registry {
		out = append(out, s.Name)
		out = append(out, s.Bundles...)
	}
	return append(out, "all")
}

// StandaloneExperiments returns the canonical iteration list for an
// "all" run: each registered spec exactly once, in suite order —
// bundled names (fig10 with fig7, fig9 with fig8) are rendered by
// their owning spec and therefore excluded.
func StandaloneExperiments() []string {
	out := make([]string, len(registry))
	for i, s := range registry {
		out[i] = s.Name
	}
	return out
}

// render concatenates printable report items, one per line — the
// report emission shape shared by every experiment.
func render(items ...fmt.Stringer) string {
	var b strings.Builder
	for _, it := range items {
		b.WriteString(it.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// runPlan executes planned jobs on the harness runner (parallelism,
// shared pool, cache and flight hooks all via opts), logs the batch's
// accounting under label, and indexes the results for the report
// phase. Per-job failures are folded into the returned error against
// their keys without discarding siblings. This is the one execute step
// shared by runSpec and the exported legacy wrappers.
func runPlan(opts Options, label string, specs []SimJob) (*ResultSet, error) {
	results := runner.RunJobs(runner.SimJobs(specs), opts.runnerOpts())
	opts.log("%s: %s", label, runner.Summarize(results))
	return newResultSet(results), collectErrs(results)
}

// runSpec is the single plan -> execute -> report path every
// experiment runs through.
func runSpec(spec ExperimentSpec, opts Options) (string, error) {
	rs := &ResultSet{}
	if spec.Plan != nil {
		jobs, err := spec.Plan(opts)
		if err != nil {
			return "", err
		}
		if rs, err = runPlan(opts, spec.Name, jobs); err != nil {
			return "", err
		}
	}
	return spec.Report(opts, rs)
}

// RunExperiment dispatches by name through the registry and returns
// the printable report. "all" runs the whole standalone suite via
// RunAll.
func RunExperiment(name string, opts Options) (string, error) {
	if strings.ToLower(name) == "all" {
		// The timing footer is intentionally not embedded in the report:
		// wall times vary run to run, and the report must stay
		// byte-identical across cold, warm, parallel and sharded runs.
		var b strings.Builder
		if _, err := RunAll(opts, func(name, report string) {
			fmt.Fprintf(&b, "==== %s ====\n%s\n", name, report)
		}, nil); err != nil {
			return b.String(), err
		}
		return b.String(), nil
	}
	spec, ok := LookupExperiment(name)
	if !ok {
		return "", fmt.Errorf("unknown experiment %q (have %v)", name, Experiments())
	}
	return runSpec(spec, opts)
}

// RunAll executes every standalone experiment, handing each name and
// printable report to emit in the canonical StandaloneExperiments
// order. Experiments run concurrently — at most opts.Parallelism (or
// GOMAXPROCS) at a time, so workload generation cannot oversubscribe
// the machine beyond the cap the pool enforces for simulation — and
// enqueue their simulation jobs onto one shared worker pool, so the
// whole suite is bounded by its slowest single point rather than the
// sum of per-experiment tails. Per-experiment result demultiplexing
// keeps every report byte-identical to a serial run, and a shared
// in-flight dedup computes grid points that several experiments
// overlap on (the Naive baselines) only once. Per-experiment timing is
// collected unconditionally and returned; timed, when non-nil,
// additionally observes each experiment as it finishes (in emission
// order). A failed experiment is reported against its name without
// aborting the others. RunAll resolves every experiment through the
// registry — the same table RunExperiment dispatches on — and is the
// single "all" orchestration shared by RunExperiment("all") and
// cmd/pimbench.
func RunAll(opts Options, emit func(name, report string), timed func(name string, d time.Duration)) ([]ExperimentTiming, error) {
	specs := registry
	pool := runner.NewPool(opts.Parallelism)
	defer pool.Close()
	opts.pool = pool
	opts.flight = runner.NewFlight[Result]()
	if inner := opts.Log; inner != nil {
		// Experiments log concurrently; serialize so callers' Log (and
		// pimbench's -v writer) need not be goroutine-safe.
		var logMu sync.Mutex
		opts.Log = func(format string, args ...interface{}) {
			logMu.Lock()
			defer logMu.Unlock()
			inner(format, args...)
		}
	}
	par := opts.Parallelism
	if par <= 0 {
		par = runtime.GOMAXPROCS(0)
	}
	sem := make(chan struct{}, par)

	type outcome struct {
		report string
		err    error
		wall   time.Duration
	}
	outs := make([]outcome, len(specs))
	ready := make([]chan struct{}, len(specs))
	for i := range ready {
		ready[i] = make(chan struct{})
	}
	for i, spec := range specs {
		go func(i int, spec ExperimentSpec) {
			defer close(ready[i])
			sem <- struct{}{}
			defer func() { <-sem }()
			start := time.Now()
			rep, err := runSpec(spec, opts)
			outs[i] = outcome{report: rep, err: err, wall: time.Since(start)}
		}(i, spec)
	}

	timings := make([]ExperimentTiming, 0, len(specs))
	var errs []error
	for i, spec := range specs {
		<-ready[i]
		timings = append(timings, ExperimentTiming{Name: spec.Name, Wall: outs[i].wall})
		if timed != nil {
			timed(spec.Name, outs[i].wall)
		} else {
			opts.log("%s finished in %s", spec.Name, outs[i].wall.Round(time.Millisecond))
		}
		if outs[i].err != nil {
			errs = append(errs, fmt.Errorf("%s: %w", spec.Name, outs[i].err))
			continue
		}
		emit(spec.Name, outs[i].report)
	}
	return timings, errors.Join(errs...)
}
