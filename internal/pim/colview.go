package pim

import (
	"encoding/binary"

	"bulkpim/internal/mem"
)

// Column-major bit-plane view of an ArrayImage.
//
// The functional engine's unit of work is a column operation: combine one
// bit of every row. Row-major storage makes that a strided single-bit
// walk, so the original engine paid a Bit/SetBit call per row per column
// op. A bit plane packs column c of 64 consecutive rows into one uint64 —
// bit r%64 of word r/64 is cell (r, c) — so a boolean column op becomes
// one machine word op per 64 rows: the host-side analogue of the
// bulk-bitwise parallelism the simulated arrays embody (and of the
// long-stride 8-bytes-per-putLong trick bulk-bitwise simulators use).
// Gather/scatter between the row-major truth and the packed planes is a
// byte walk with line-size stride; everything between is word-parallel.

// PlaneWords returns the packed-plane length: one uint64 per 64 rows.
func (a *ArrayImage) PlaneWords() int { return (a.g.Rows + 63) / 64 }

// LoadPlane gathers column col into dst, which must hold PlaneWords()
// words. Bit r%64 of dst[r/64] is cell (r, col); tail bits past the last
// row are zero.
func (a *ArrayImage) LoadPlane(col int, dst []uint64) {
	byteOff := col >> 3
	shift := uint(col & 7)
	rows := a.g.Rows
	for w := range dst {
		base := w * 64
		n := rows - base
		if n > 64 {
			n = 64
		}
		var word uint64
		idx := base*mem.LineSize + byteOff
		for i := 0; i < n; i++ {
			word |= uint64(a.rows[idx]>>shift&1) << uint(i)
			idx += mem.LineSize
		}
		dst[w] = word
	}
}

// StorePlane scatters src back into column col and marks every row dirty —
// a column write touches all rows, exactly like ColSet/ColOp.
func (a *ArrayImage) StorePlane(col int, src []uint64) {
	byteOff := col >> 3
	bit := byte(1) << uint(col&7)
	rows := a.g.Rows
	for w, word := range src {
		base := w * 64
		n := rows - base
		if n > 64 {
			n = 64
		}
		idx := base*mem.LineSize + byteOff
		for i := 0; i < n; i++ {
			if word>>uint(i)&1 != 0 {
				a.rows[idx] |= bit
			} else {
				a.rows[idx] &^= bit
			}
			idx += mem.LineSize
		}
	}
	for r := 0; r < rows; r++ {
		a.dirty[r] = true
	}
}

// SetRowBits writes bits [0, n) of the packed words into columns [0, n) of
// one row, leaving higher columns untouched. Packed plane words and row
// bytes share the same LSB-first bit order, so full words land as plain
// 8-byte little-endian stores — the result-gather transpose writes one
// word per 64 match bits instead of one SetBit per record.
func (a *ArrayImage) SetRowBits(row int, bits []uint64, n int) {
	if n > a.g.Cols {
		panic("pim: row write wider than row")
	}
	out := a.Row(row)
	full := n / 64
	for w := 0; w < full; w++ {
		binary.LittleEndian.PutUint64(out[w*8:], bits[w])
	}
	for i := full * 64; i < n; i++ {
		if bits[i/64]>>uint(i%64)&1 != 0 {
			out[i/8] |= 1 << uint(i%8)
		} else {
			out[i/8] &^= 1 << uint(i%8)
		}
	}
	a.dirty[row] = true
}

// plane returns reusable zero-initialized-on-first-use scratch plane
// `slot`. Slots are per-image and per-call-frame: engine entry points use
// disjoint slot ranges and never nest, so no slot is live across two
// concurrent uses. Contents are whatever the previous user left — callers
// overwrite or clear before reading.
func (a *ArrayImage) plane(slot int) []uint64 {
	nw := a.PlaneWords()
	for len(a.planes) <= slot {
		a.planes = append(a.planes, make([]uint64, nw))
	}
	return a.planes[slot]
}

// truthMasks expands an arbitrary BoolOp into the four word-wide masks of
// its truth table, so any two-input boolean function — the five named ops
// or a custom one — applies word-parallel without changing the BoolOp API.
func truthMasks(op BoolOp) (t00, t01, t10, t11 uint64) {
	if op(false, false) {
		t00 = ^uint64(0)
	}
	if op(false, true) {
		t01 = ^uint64(0)
	}
	if op(true, false) {
		t10 = ^uint64(0)
	}
	if op(true, true) {
		t11 = ^uint64(0)
	}
	return
}

// wordOp applies a truth table to packed operands: out bit = op(x bit, y bit).
func wordOp(x, y, t00, t01, t10, t11 uint64) uint64 {
	return (^x & ^y & t00) | (^x & y & t01) | (x & ^y & t10) | (x & y & t11)
}
