package pim

import (
	"math/rand"
	"testing"

	"bulkpim/internal/mem"
)

// Microbenchmarks feeding BENCH_sim_throughput.json: each word-packed op
// is paired with its retained bit-serial reference (the *BitSerial
// variants) so the recorded run carries its own baseline — benchjson
// computes the speedup and bench.yml gates the compute-bound pairs
// (AddFields, MulFields, CmpConst) at >= 3x. The ns/row-bit metric
// normalizes across geometries and widths.

const benchWidth = 32

func benchImage(b *testing.B) *ArrayImage {
	b.Helper()
	g := DefaultGeometry()
	img := LoadArray(mem.NewBacking(), 0, g, 0)
	rng := rand.New(rand.NewSource(42))
	line := make([]byte, mem.LineSize)
	for r := 0; r < g.Rows; r++ {
		rng.Read(line)
		img.SetRow(r, line)
	}
	return img
}

func reportRowBits(b *testing.B, rows, bitsPerRow int) {
	b.Helper()
	total := float64(b.N) * float64(rows) * float64(bitsPerRow)
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/total, "ns/row-bit")
}

func BenchmarkAddFields(b *testing.B) {
	img := benchImage(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		img.AddFields(0, 64, 128, benchWidth, 448, 449)
	}
	reportRowBits(b, img.g.Rows, benchWidth)
}

func BenchmarkAddFieldsBitSerial(b *testing.B) {
	img := benchImage(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		refAddFields(img, 0, 64, 128, benchWidth, 448, 449)
	}
	reportRowBits(b, img.g.Rows, benchWidth)
}

func BenchmarkMulFields(b *testing.B) {
	img := benchImage(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		img.MulFields(0, 64, 128, benchWidth, 448, 449)
	}
	reportRowBits(b, img.g.Rows, benchWidth*benchWidth)
}

func BenchmarkMulFieldsBitSerial(b *testing.B) {
	img := benchImage(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		refMulFields(img, 0, 64, 128, benchWidth, 448, 449)
	}
	reportRowBits(b, img.g.Rows, benchWidth*benchWidth)
}

// PopCount is recorded but not speedup-gated: the column gather is
// load-bound — one column bit per 64-byte row line, so the packed and
// bit-serial paths both pay one load per row and the SWAR combine can
// only trim the per-row arithmetic (~2x), never approach the 64x lever
// the boolean ops get.
func BenchmarkPopCount(b *testing.B) {
	img := benchImage(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		img.PopCountColumn(300, img.g.Rows)
	}
	reportRowBits(b, img.g.Rows, 1)
}

func BenchmarkPopCountBitSerial(b *testing.B) {
	img := benchImage(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		refPopCountColumn(img, 300, img.g.Rows)
	}
	reportRowBits(b, img.g.Rows, 1)
}

// BenchmarkCmpConst covers the scan hot path — the op YCSB/TPC-H
// filters issue per field, so its pair is gated alongside the adders.
func BenchmarkCmpConst(b *testing.B) {
	img := benchImage(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		img.CmpConst(PredGE, 0, 64, 1<<40, 470, 464, 465)
	}
	reportRowBits(b, img.g.Rows, 64)
}

func BenchmarkCmpConstBitSerial(b *testing.B) {
	img := benchImage(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		refCmpConst(img, PredGE, 0, 64, 1<<40, 470, 464, 465)
	}
	reportRowBits(b, img.g.Rows, 64)
}
