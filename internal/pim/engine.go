package pim

import (
	"encoding/binary"

	"bulkpim/internal/mem"
)

// ArrayImage is the functional state of one crossbar array, loaded from
// backing memory, operated on with bulk-bitwise micro-operations, and
// stored back. All column operations act on every row in parallel, exactly
// like the hardware's row-parallel column logic (Fig. 2).
type ArrayImage struct {
	g     Geometry
	base  mem.Addr
	array int
	rows  []byte // Rows * LineSize, row-major
	dirty []bool // per row

	planes [][]uint64 // reusable column bit-plane scratch (colview.go)
	// planeRefs is MulFields' reusable operand/accumulator pointer table.
	planeRefs [][]uint64
}

// LoadArray materializes array `array` of the scope at base from b.
func LoadArray(b *mem.Backing, base mem.Addr, g Geometry, array int) *ArrayImage {
	img := &ArrayImage{
		g: g, base: base, array: array,
		rows:  make([]byte, g.Rows*mem.LineSize),
		dirty: make([]bool, g.Rows),
	}
	b.Read(g.RowAddr(base, array, 0), img.rows)
	return img
}

// Store writes modified rows back to b, tagging each written line with
// writer for happens-before tracking.
func (a *ArrayImage) Store(b *mem.Backing, writer uint64) {
	for r := 0; r < a.g.Rows; r++ {
		if !a.dirty[r] {
			continue
		}
		addr := a.g.RowAddr(a.base, a.array, r)
		b.Write(addr, a.rows[r*mem.LineSize:(r+1)*mem.LineSize])
		b.SetWriter(mem.LineOf(addr), writer)
	}
}

// Bit returns cell (row, col).
func (a *ArrayImage) Bit(row, col int) bool {
	byteIdx := row*mem.LineSize + col/8
	return a.rows[byteIdx]&(1<<uint(col%8)) != 0
}

// SetBit writes cell (row, col).
func (a *ArrayImage) SetBit(row, col int, v bool) {
	byteIdx := row*mem.LineSize + col/8
	bit := byte(1) << uint(col%8)
	if v {
		a.rows[byteIdx] |= bit
	} else {
		a.rows[byteIdx] &^= bit
	}
	a.dirty[row] = true
}

// Row returns the 64-byte image of one row.
func (a *ArrayImage) Row(row int) []byte {
	return a.rows[row*mem.LineSize : (row+1)*mem.LineSize]
}

// SetRow overwrites one row.
func (a *ArrayImage) SetRow(row int, data []byte) {
	copy(a.Row(row), data[:mem.LineSize])
	a.dirty[row] = true
}

// BoolOp is a two-input bitwise logic function (the array's basic
// operation: NOR in MAGIC, AND/OR in Ambit, ...).
type BoolOp func(x, y bool) bool

// Basic operations offered by the technology. Complex logic is composed
// from these.
var (
	OpNOR  BoolOp = func(x, y bool) bool { return !(x || y) }
	OpAND  BoolOp = func(x, y bool) bool { return x && y }
	OpOR   BoolOp = func(x, y bool) bool { return x || y }
	OpXOR  BoolOp = func(x, y bool) bool { return x != y }
	OpNAND BoolOp = func(x, y bool) bool { return !(x && y) }
)

// ColOp computes dst = op(src1, src2) for every row of the array in
// parallel: one hardware micro-operation. Rows are processed as packed
// 64-row words through the op's truth table, so any BoolOp — named or
// custom — runs word-parallel.
func (a *ArrayImage) ColOp(op BoolOp, dst, src1, src2 int) {
	x, y, d := a.plane(0), a.plane(1), a.plane(2)
	a.LoadPlane(src1, x)
	a.LoadPlane(src2, y)
	t00, t01, t10, t11 := truthMasks(op)
	for w := range d {
		d[w] = wordOp(x[w], y[w], t00, t01, t10, t11)
	}
	a.StorePlane(dst, d)
}

// ColNot computes dst = NOT src for every row (NOR with itself).
func (a *ArrayImage) ColNot(dst, src int) {
	a.ColOp(OpNOR, dst, src, src)
}

// ColSet initializes a column to a constant in every row (a bulk write
// driven by the periphery).
func (a *ArrayImage) ColSet(dst int, v bool) {
	d := a.plane(0)
	var word uint64
	if v {
		word = ^uint64(0)
	}
	for w := range d {
		d[w] = word
	}
	a.StorePlane(dst, d)
}

// ColCopy copies a column (two NORs in MAGIC; we count it as issued
// micro-ops at the program level).
func (a *ArrayImage) ColCopy(dst, src int) {
	d := a.plane(0)
	a.LoadPlane(src, d)
	a.StorePlane(dst, d)
}

// RowOp computes row dst = op(src1, src2) bitwise across all columns: the
// row-direction counterpart used to combine result rows. Rows are already
// bit-packed bytes, so this runs 64 columns per word directly on the row
// storage.
func (a *ArrayImage) RowOp(op BoolOp, dst, src1, src2 int) {
	r1, r2, rd := a.Row(src1), a.Row(src2), a.Row(dst)
	t00, t01, t10, t11 := truthMasks(op)
	for o := 0; o+8 <= mem.LineSize; o += 8 {
		x := binary.LittleEndian.Uint64(r1[o:])
		y := binary.LittleEndian.Uint64(r2[o:])
		binary.LittleEndian.PutUint64(rd[o:], wordOp(x, y, t00, t01, t10, t11))
	}
	a.dirty[dst] = true
}

// TransposeColToRow copies column src of rows [0, n) into row dst, bit i of
// the row taking the value of cell (i, src). This is the result-gather
// step: after a filter leaves one match bit per record (row) in a result
// column, the transpose packs those bits into a single row — one cache
// line — so the host reads one line per array instead of one per record.
// The packed plane of the source column IS the destination row's bit
// pattern, so the move is a gather plus word-wide row stores.
func (a *ArrayImage) TransposeColToRow(dst, src, n int) {
	if n > a.g.Cols {
		panic("pim: transpose wider than row")
	}
	p := a.plane(0)
	a.LoadPlane(src, p)
	a.SetRowBits(dst, p, n)
}

// CmpConst computes, for every row in parallel, the comparison of the
// unsigned big-endian field stored in columns [fieldBase, fieldBase+width)
// against constant k, leaving the boolean result in column dstCol. The
// temporaries tmpGT and tmpEQ must be two scratch columns.
//
// This is the standard bit-serial magnitude comparator: walk the bits from
// MSB to LSB keeping running "greater" and "equal" flags. With the constant
// known at compile time each bit step specializes to about two column ops.
// The returned micro-op count is what the timing model charges.
// The running "greater" and "equal" flags stay in packed registers for the
// whole bit walk — only the compared field's columns are gathered, and the
// flag columns are scattered once at the end — so the comparator costs one
// gather plus two word ops per bit per 64 rows. Charged micro-ops are
// unchanged: the timing model still sees the bit-serial op sequence.
func (a *ArrayImage) CmpConst(pred Predicate, fieldBase, width int, k uint64, dstCol, tmpGT, tmpEQ int) int {
	micro := 0
	gt, eq, x := a.plane(0), a.plane(1), a.plane(2)
	for w := range gt {
		gt[w] = 0
		eq[w] = ^uint64(0)
	}
	micro += 2
	for b := 0; b < width; b++ {
		col := fieldBase + b // bit b is the MSB-first position
		kbit := k&(1<<uint(width-1-b)) != 0
		a.LoadPlane(col, x)
		if kbit {
			// x_b=0 while still equal => x < k at this bit; gt unchanged;
			// eq &= x_b.
			for w := range eq {
				eq[w] &= x[w]
			}
			micro++
		} else {
			// x_b=1 while still equal => x > k: gt |= eq & x_b; eq &= !x_b.
			for w := range eq {
				gt[w] |= eq[w] & x[w]
				eq[w] &^= x[w]
			}
			micro += 2
		}
	}
	a.StorePlane(tmpGT, gt)
	a.StorePlane(tmpEQ, eq)
	// Combine flags per predicate.
	d := a.plane(3)
	switch pred {
	case PredEQ:
		copy(d, eq)
		micro++
	case PredNE:
		for w := range d {
			d[w] = ^eq[w]
		}
		micro++
	case PredGT:
		copy(d, gt)
		micro++
	case PredGE:
		for w := range d {
			d[w] = gt[w] | eq[w]
		}
		micro++
	case PredLT:
		for w := range d {
			d[w] = ^(gt[w] | eq[w]) // NOT >=
		}
		micro += 2
	case PredLE:
		for w := range d {
			d[w] = ^gt[w]
		}
		micro++
	default:
		panic("pim: unknown predicate")
	}
	a.StorePlane(dstCol, d)
	return micro
}

// CmpMicroOps returns the micro-op count CmpConst will report, for timing
// estimation without functional execution.
func CmpMicroOps(pred Predicate, width int, k uint64) int {
	micro := 2
	for b := 0; b < width; b++ {
		if k&(1<<uint(width-1-b)) != 0 {
			micro++
		} else {
			micro += 2
		}
	}
	if pred == PredLT {
		return micro + 2
	}
	return micro + 1
}

// Predicate is a comparison against a constant.
type Predicate uint8

const (
	PredEQ Predicate = iota
	PredNE
	PredLT
	PredLE
	PredGT
	PredGE
)

func (p Predicate) String() string {
	switch p {
	case PredEQ:
		return "=="
	case PredNE:
		return "!="
	case PredLT:
		return "<"
	case PredLE:
		return "<="
	case PredGT:
		return ">"
	case PredGE:
		return ">="
	default:
		return "?"
	}
}

// Eval applies the predicate to host integers (the oracle the bit-serial
// programs are property-tested against).
func (p Predicate) Eval(x, k uint64) bool {
	switch p {
	case PredEQ:
		return x == k
	case PredNE:
		return x != k
	case PredLT:
		return x < k
	case PredLE:
		return x <= k
	case PredGT:
		return x > k
	case PredGE:
		return x >= k
	default:
		panic("pim: unknown predicate")
	}
}

// FieldBE reads the big-endian field stored in columns
// [fieldBase, fieldBase+width) of a row, for tests and oracles.
func (a *ArrayImage) FieldBE(row, fieldBase, width int) uint64 {
	var v uint64
	for b := 0; b < width; b++ {
		v <<= 1
		if a.Bit(row, fieldBase+b) {
			v |= 1
		}
	}
	return v
}

// SetFieldBE writes the big-endian field of a row.
func (a *ArrayImage) SetFieldBE(row, fieldBase, width int, v uint64) {
	for b := 0; b < width; b++ {
		a.SetBit(row, fieldBase+b, v&(1<<uint(width-1-b)) != 0)
	}
}
