package pim

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"bulkpim/internal/mem"
)

// Differential property tests: the word-packed engine and arithmetic are
// pinned, byte-for-byte over the whole array image, against the retained
// bit-serial reference implementations below — the original one-Bit/SetBit-
// per-row loops. Geometries straddle word boundaries (rows 1..512,
// including non-multiples of 64) and widths span 1..64.

// refColOp is the bit-serial ColOp: one Bit/SetBit pair per row.
func refColOp(a *ArrayImage, op BoolOp, dst, src1, src2 int) {
	for r := 0; r < a.g.Rows; r++ {
		a.SetBit(r, dst, op(a.Bit(r, src1), a.Bit(r, src2)))
	}
}

func refColSet(a *ArrayImage, dst int, v bool) {
	for r := 0; r < a.g.Rows; r++ {
		a.SetBit(r, dst, v)
	}
}

func refColCopy(a *ArrayImage, dst, src int) {
	for r := 0; r < a.g.Rows; r++ {
		a.SetBit(r, dst, a.Bit(r, src))
	}
}

func refTransposeColToRow(a *ArrayImage, dst, src, n int) {
	for i := 0; i < n; i++ {
		a.SetBit(dst, i, a.Bit(i, src))
	}
}

// refCmpConst is the bit-serial magnitude comparator, as originally
// implemented.
func refCmpConst(a *ArrayImage, pred Predicate, fieldBase, width int, k uint64, dstCol, tmpGT, tmpEQ int) int {
	micro := 0
	refColSet(a, tmpGT, false)
	refColSet(a, tmpEQ, true)
	micro += 2
	for b := 0; b < width; b++ {
		col := fieldBase + b
		kbit := k&(1<<uint(width-1-b)) != 0
		if kbit {
			refColOp(a, OpAND, tmpEQ, tmpEQ, col)
			micro++
		} else {
			for r := 0; r < a.g.Rows; r++ {
				eq := a.Bit(r, tmpEQ)
				x := a.Bit(r, col)
				if eq && x {
					a.SetBit(r, tmpGT, true)
				}
				if x {
					a.SetBit(r, tmpEQ, false)
				}
			}
			micro += 2
		}
	}
	switch pred {
	case PredEQ:
		refColCopy(a, dstCol, tmpEQ)
		micro++
	case PredNE:
		refColOp(a, OpNOR, dstCol, tmpEQ, tmpEQ)
		micro++
	case PredGT:
		refColCopy(a, dstCol, tmpGT)
		micro++
	case PredGE:
		refColOp(a, OpOR, dstCol, tmpGT, tmpEQ)
		micro++
	case PredLT:
		refColOp(a, OpOR, dstCol, tmpGT, tmpEQ)
		refColOp(a, OpNOR, dstCol, dstCol, dstCol)
		micro += 2
	case PredLE:
		refColOp(a, OpNOR, dstCol, tmpGT, tmpGT)
		micro++
	}
	return micro
}

// refAddFields is the bit-serial ripple adder, as originally implemented.
func refAddFields(img *ArrayImage, aBase, bBase, dstBase, width, carryCol, tmpCol int) int {
	micro := 1
	refColSet(img, carryCol, false)
	for bit := width - 1; bit >= 0; bit-- {
		a := aBase + bit
		b := bBase + bit
		d := dstBase + bit
		refColOp(img, OpXOR, tmpCol, a, b)
		refColOp(img, OpXOR, d, tmpCol, carryCol)
		for r := 0; r < img.g.Rows; r++ {
			av, bv, cv := img.Bit(r, a), img.Bit(r, b), img.Bit(r, carryCol)
			img.SetBit(r, carryCol, (av && bv) || ((av != bv) && cv))
		}
		micro += 5
	}
	return micro
}

func refAddConst(img *ArrayImage, aBase, dstBase, width int, k uint64, carryCol int) int {
	micro := 1
	refColSet(img, carryCol, false)
	for bit := width - 1; bit >= 0; bit-- {
		a := aBase + bit
		d := dstBase + bit
		kbit := k&(1<<uint(width-1-bit)) != 0
		for r := 0; r < img.g.Rows; r++ {
			av, cv := img.Bit(r, a), img.Bit(r, carryCol)
			bv := kbit
			img.SetBit(r, d, (av != bv) != cv)
			img.SetBit(r, carryCol, (av && bv) || ((av != bv) && cv))
		}
		micro += 3
	}
	return micro
}

// refMulFields is the bit-serial shift-and-add multiplier, materializing
// the gated addend in gateCol like the word-packed version.
func refMulFields(img *ArrayImage, aBase, bBase, dstBase, width, carryCol, gateCol int) int {
	micro := 0
	for bit := 0; bit < width; bit++ {
		refColSet(img, dstBase+bit, false)
	}
	micro += width
	for shift := 0; shift < width; shift++ {
		bCol := bBase + width - 1 - shift
		refColSet(img, carryCol, false)
		micro++
		for bit := width - 1; bit >= 0; bit-- {
			srcBit := bit + shift
			d := dstBase + bit
			for r := 0; r < img.g.Rows; r++ {
				var av bool
				if srcBit < width {
					av = img.Bit(r, aBase+srcBit)
				}
				gv := av && img.Bit(r, bCol)
				img.SetBit(r, gateCol, gv)
				dv := img.Bit(r, d)
				cv := img.Bit(r, carryCol)
				img.SetBit(r, d, (dv != gv) != cv)
				img.SetBit(r, carryCol, (dv && gv) || ((dv != gv) && cv))
			}
			micro += 6
		}
	}
	return micro
}

func refPopCountColumn(img *ArrayImage, col, n int) (count, microOps int) {
	for r := 0; r < n; r++ {
		if img.Bit(r, col) {
			count++
		}
	}
	levels := 0
	for v := n; v > 1; v >>= 1 {
		levels++
	}
	return count, 2 * levels * 8
}

// diffRows are the row counts exercised: word-multiple, off-by-one around
// every boundary, and sub-word arrays.
var diffRows = []int{1, 3, 63, 64, 65, 100, 127, 128, 200, 511, 512}

// twinImages returns two independent images with identical pseudo-random
// contents for the given row count.
func twinImages(rng *rand.Rand, rows int) (got, want *ArrayImage) {
	g := Geometry{Rows: rows, Cols: mem.LineSize * 8, Arrays: 1}
	got = LoadArray(mem.NewBacking(), 0, g, 0)
	want = LoadArray(mem.NewBacking(), 0, g, 0)
	line := make([]byte, mem.LineSize)
	for r := 0; r < rows; r++ {
		rng.Read(line)
		got.SetRow(r, line)
		want.SetRow(r, line)
	}
	return got, want
}

func assertSameImage(t *testing.T, ctx string, got, want *ArrayImage) {
	t.Helper()
	for r := 0; r < got.g.Rows; r++ {
		if !bytes.Equal(got.Row(r), want.Row(r)) {
			t.Fatalf("%s: row %d diverges from bit-serial reference\n packed: %x\n serial: %x",
				ctx, r, got.Row(r), want.Row(r))
		}
	}
}

func TestColOpsMatchBitSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	ops := []struct {
		name string
		op   BoolOp
	}{{"nor", OpNOR}, {"and", OpAND}, {"or", OpOR}, {"xor", OpXOR}, {"nand", OpNAND}}
	for _, rows := range diffRows {
		for _, o := range ops {
			got, want := twinImages(rng, rows)
			got.ColOp(o.op, 7, 130, 300)
			refColOp(want, o.op, 7, 130, 300)
			assertSameImage(t, fmt.Sprintf("ColOp(%s) rows=%d", o.name, rows), got, want)
		}
		got, want := twinImages(rng, rows)
		got.ColSet(9, true)
		got.ColSet(10, false)
		got.ColCopy(11, 130)
		got.ColNot(12, 130)
		refColSet(want, 9, true)
		refColSet(want, 10, false)
		refColCopy(want, 11, 130)
		refColOp(want, OpNOR, 12, 130, 130)
		assertSameImage(t, fmt.Sprintf("ColSet/Copy/Not rows=%d", rows), got, want)

		n := rows
		got.TransposeColToRow(0, 200, n)
		refTransposeColToRow(want, 0, 200, n)
		assertSameImage(t, fmt.Sprintf("TransposeColToRow rows=%d", rows), got, want)
	}
}

func TestRowOpMatchesBitSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	got, want := twinImages(rng, 8)
	for _, op := range []BoolOp{OpNOR, OpAND, OpOR, OpXOR, OpNAND} {
		got.RowOp(op, 3, 1, 2)
		for c := 0; c < want.g.Cols; c++ {
			want.SetBit(3, c, op(want.Bit(1, c), want.Bit(2, c)))
		}
		assertSameImage(t, "RowOp", got, want)
	}
}

func TestCmpConstMatchesBitSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	preds := []Predicate{PredEQ, PredNE, PredLT, PredLE, PredGT, PredGE}
	for _, rows := range diffRows {
		for trial := 0; trial < 4; trial++ {
			width := 1 + rng.Intn(64)
			pred := preds[rng.Intn(len(preds))]
			var k uint64
			if width == 64 {
				k = rng.Uint64()
			} else {
				k = rng.Uint64() & ((1 << uint(width)) - 1)
			}
			got, want := twinImages(rng, rows)
			m1 := got.CmpConst(pred, 0, width, k, 470, 464, 465)
			m2 := refCmpConst(want, pred, 0, width, k, 470, 464, 465)
			if m1 != m2 {
				t.Fatalf("CmpConst rows=%d width=%d pred=%s: micro %d != reference %d", rows, width, pred, m1, m2)
			}
			if m1 != CmpMicroOps(pred, width, k) {
				t.Fatalf("CmpConst micro %d != CmpMicroOps %d", m1, CmpMicroOps(pred, width, k))
			}
			assertSameImage(t, fmt.Sprintf("CmpConst rows=%d width=%d pred=%s k=%d", rows, width, pred, k), got, want)
		}
	}
}

func TestAddFieldsMatchesBitSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, rows := range diffRows {
		for trial := 0; trial < 4; trial++ {
			width := 1 + rng.Intn(64)
			got, want := twinImages(rng, rows)
			m1 := got.AddFields(0, 64, 128, width, 448, 449)
			m2 := refAddFields(want, 0, 64, 128, width, 448, 449)
			if m1 != m2 || m1 != AddFieldsMicroOps(width) {
				t.Fatalf("AddFields width=%d: micro %d, reference %d, formula %d", width, m1, m2, AddFieldsMicroOps(width))
			}
			assertSameImage(t, fmt.Sprintf("AddFields rows=%d width=%d", rows, width), got, want)
		}
	}
}

func TestAddConstMatchesBitSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, rows := range diffRows {
		for trial := 0; trial < 4; trial++ {
			width := 1 + rng.Intn(64)
			var k uint64
			if width == 64 {
				k = rng.Uint64()
			} else {
				k = rng.Uint64() & ((1 << uint(width)) - 1)
			}
			got, want := twinImages(rng, rows)
			m1 := got.AddConst(0, 64, width, k, 448)
			m2 := refAddConst(want, 0, 64, width, k, 448)
			if m1 != m2 {
				t.Fatalf("AddConst width=%d: micro %d != reference %d", width, m1, m2)
			}
			assertSameImage(t, fmt.Sprintf("AddConst rows=%d width=%d k=%d", rows, width, k), got, want)
		}
	}
}

func TestMulFieldsMatchesBitSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for _, rows := range diffRows {
		// Multiplication is quadratic; keep widths moderate but cross the
		// interesting shift-out boundaries.
		for _, width := range []int{1, 2, 7, 8, 13, 16} {
			got, want := twinImages(rng, rows)
			m1 := got.MulFields(0, 64, 128, width, 448, 449)
			m2 := refMulFields(want, 0, 64, 128, width, 448, 449)
			if m1 != m2 || m1 != MulFieldsMicroOps(width) {
				t.Fatalf("MulFields width=%d: micro %d, reference %d, formula %d", width, m1, m2, MulFieldsMicroOps(width))
			}
			assertSameImage(t, fmt.Sprintf("MulFields rows=%d width=%d", rows, width), got, want)
		}
	}
}

func TestPopCountColumnMatchesBitSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, rows := range diffRows {
		got, want := twinImages(rng, rows)
		for _, n := range []int{rows, rows / 2, 1} {
			if n < 1 {
				continue
			}
			c1, m1 := got.PopCountColumn(300, n)
			c2, m2 := refPopCountColumn(want, 300, n)
			if c1 != c2 || m1 != m2 {
				t.Fatalf("PopCountColumn rows=%d n=%d: got (%d, %d), reference (%d, %d)", rows, n, c1, m1, c2, m2)
			}
		}
	}
}
