package pim

import (
	"testing"
	"testing/quick"

	"bulkpim/internal/mem"
	"bulkpim/internal/sim"
)

func testGeom() Geometry { return Geometry{Rows: 8, Cols: mem.LineSize * 8, Arrays: 2} }

func TestGeometryDefaultTilesScope(t *testing.T) {
	g := DefaultGeometry()
	g.Validate(mem.DefaultScopeSize) // panics on failure
	if g.Rows*g.Arrays*mem.LineSize != mem.DefaultScopeSize {
		t.Fatal("default geometry does not tile a 2MB scope")
	}
}

func TestGeometryValidateRejects(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Geometry{Rows: 100, Cols: 512, Arrays: 3}.Validate(mem.DefaultScopeSize)
}

func TestGeometryLineOf(t *testing.T) {
	g := DefaultGeometry()
	base := mem.DefaultPIMBase
	if g.LineOf(base, 0, 0) != mem.LineOf(base) {
		t.Fatal("array 0 row 0 should be the scope base line")
	}
	// Array stride is Rows lines.
	l0 := g.LineOf(base, 1, 0)
	if l0.Index()-mem.LineOf(base).Index() != uint64(g.Rows) {
		t.Fatal("array stride wrong")
	}
}

func TestArrayImageBits(t *testing.T) {
	b := mem.NewBacking()
	img := LoadArray(b, 0, testGeom(), 0)
	img.SetBit(3, 100, true)
	if !img.Bit(3, 100) || img.Bit(3, 101) || img.Bit(2, 100) {
		t.Fatal("bit set/get wrong")
	}
	img.Store(b, 42)
	img2 := LoadArray(b, 0, testGeom(), 0)
	if !img2.Bit(3, 100) {
		t.Fatal("store/load round trip lost bit")
	}
}

func TestArrayImageStoreOnlyDirtyRows(t *testing.T) {
	b := mem.NewBacking()
	b.TrackWriters = true
	g := testGeom()
	img := LoadArray(b, 0, g, 0)
	img.SetBit(2, 0, true)
	img.Store(b, 7)
	if b.WriterOf(g.LineOf(0, 0, 2)) != 7 {
		t.Fatal("dirty row writer missing")
	}
	if b.WriterOf(g.LineOf(0, 0, 3)) != 0 {
		t.Fatal("clean row should not be written")
	}
}

func TestColOps(t *testing.T) {
	b := mem.NewBacking()
	img := LoadArray(b, 0, testGeom(), 0)
	// Row r: col0 = r&1, col1 = r&2.
	for r := 0; r < 8; r++ {
		img.SetBit(r, 0, r&1 != 0)
		img.SetBit(r, 1, r&2 != 0)
	}
	img.ColOp(OpAND, 2, 0, 1)
	img.ColOp(OpOR, 3, 0, 1)
	img.ColOp(OpXOR, 4, 0, 1)
	img.ColOp(OpNOR, 5, 0, 1)
	img.ColNot(6, 0)
	img.ColCopy(7, 0)
	for r := 0; r < 8; r++ {
		x, y := r&1 != 0, r&2 != 0
		if img.Bit(r, 2) != (x && y) || img.Bit(r, 3) != (x || y) ||
			img.Bit(r, 4) != (x != y) || img.Bit(r, 5) != !(x || y) ||
			img.Bit(r, 6) != !x || img.Bit(r, 7) != x {
			t.Fatalf("row %d column ops wrong", r)
		}
	}
}

func TestRowOp(t *testing.T) {
	b := mem.NewBacking()
	img := LoadArray(b, 0, testGeom(), 0)
	for c := 0; c < 16; c++ {
		img.SetBit(0, c, c%2 == 0)
		img.SetBit(1, c, c%3 == 0)
	}
	img.RowOp(OpAND, 2, 0, 1)
	for c := 0; c < 16; c++ {
		want := (c%2 == 0) && (c%3 == 0)
		if img.Bit(2, c) != want {
			t.Fatalf("row AND at col %d", c)
		}
	}
}

func TestFieldBERoundTrip(t *testing.T) {
	b := mem.NewBacking()
	img := LoadArray(b, 0, testGeom(), 0)
	img.SetFieldBE(5, 10, 16, 0xBEEF)
	if got := img.FieldBE(5, 10, 16); got != 0xBEEF {
		t.Fatalf("field = %#x, want 0xBEEF", got)
	}
}

func TestTransposeColToRow(t *testing.T) {
	b := mem.NewBacking()
	img := LoadArray(b, 0, testGeom(), 0)
	for r := 0; r < 8; r++ {
		img.SetBit(r, 9, r%3 == 0)
	}
	img.TransposeColToRow(7, 9, 8)
	for i := 0; i < 8; i++ {
		if img.Bit(7, i) != (i%3 == 0) {
			t.Fatalf("transpose bit %d wrong", i)
		}
	}
}

// Property: the bit-serial comparator matches integer comparison for every
// predicate, width and operand pair.
func TestCmpConstMatchesIntegers(t *testing.T) {
	g := testGeom()
	preds := []Predicate{PredEQ, PredNE, PredLT, PredLE, PredGT, PredGE}
	prop := func(vals [8]uint16, k uint16, p uint8) bool {
		pred := preds[int(p)%len(preds)]
		b := mem.NewBacking()
		img := LoadArray(b, 0, g, 0)
		const width = 16
		for r := 0; r < 8; r++ {
			img.SetFieldBE(r, 0, width, uint64(vals[r]))
		}
		micro := img.CmpConst(pred, 0, width, uint64(k), 100, 101, 102)
		if micro != CmpMicroOps(pred, width, uint64(k)) {
			return false
		}
		for r := 0; r < 8; r++ {
			if img.Bit(r, 100) != pred.Eval(uint64(vals[r]), uint64(k)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestPredicateEval(t *testing.T) {
	if !PredLE.Eval(3, 3) || PredLT.Eval(3, 3) || !PredGE.Eval(3, 3) || PredGT.Eval(3, 3) {
		t.Fatal("boundary predicates wrong")
	}
	if PredEQ.String() != "==" || PredGE.String() != ">=" {
		t.Fatal("strings wrong")
	}
}

func TestModuleExecutesAndAppliesFunctionally(t *testing.T) {
	k := sim.NewKernel()
	b := mem.NewBacking()
	m := NewModule(k, b)
	m.Functional = true
	applied := false
	req := &mem.Request{
		Kind:  mem.ReqPIMOp,
		Scope: 3,
		PIM: &mem.PIMCommand{Scope: 3, Program: &mem.PIMProgram{
			Name: "t", MicroOps: 10,
			Apply: func(bk *mem.Backing, w uint64) {
				applied = true
				bk.WriteWord(0, 99)
			},
		}},
	}
	var completed []mem.ScopeID
	m.OnComplete = func(r *mem.Request) { completed = append(completed, r.Scope) }
	if !m.TryEnqueue(req) {
		t.Fatal("enqueue failed")
	}
	end, err := k.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !applied || b.ReadWord(0) != 99 {
		t.Fatal("program not applied")
	}
	want := m.FixedOpLatency + 10*m.CyclesPerMicroOp
	if end != want {
		t.Fatalf("completion at %d, want %d", end, want)
	}
	if len(completed) != 1 || completed[0] != 3 {
		t.Fatal("completion callback wrong")
	}
}

func TestModuleSameScopeSerializesDifferentScopesParallel(t *testing.T) {
	k := sim.NewKernel()
	m := NewModule(k, mem.NewBacking())
	m.FixedOpLatency = 100
	m.CyclesPerMicroOp = 0
	var done []struct {
		scope mem.ScopeID
		at    sim.Tick
	}
	m.OnComplete = func(r *mem.Request) {
		done = append(done, struct {
			scope mem.ScopeID
			at    sim.Tick
		}{r.Scope, k.Now()})
	}
	mk := func(s mem.ScopeID) *mem.Request {
		return &mem.Request{Kind: mem.ReqPIMOp, Scope: s,
			PIM: &mem.PIMCommand{Scope: s, Program: &mem.PIMProgram{MicroOps: 0}}}
	}
	// Two ops to scope 1, one to scope 2, all at t=0.
	m.TryEnqueue(mk(1))
	m.TryEnqueue(mk(1))
	m.TryEnqueue(mk(2))
	if _, err := k.Run(); err != nil {
		t.Fatal(err)
	}
	byScope := map[mem.ScopeID][]sim.Tick{}
	for _, d := range done {
		byScope[d.scope] = append(byScope[d.scope], d.at)
	}
	if len(byScope[1]) != 2 || byScope[1][0] != 100 || byScope[1][1] != 200 {
		t.Fatalf("scope 1 completions %v, want [100 200] (serialized)", byScope[1])
	}
	if len(byScope[2]) != 1 || byScope[2][0] != 100 {
		t.Fatalf("scope 2 completion %v, want [100] (parallel)", byScope[2])
	}
}

func TestModuleBoundedBufferBackpressure(t *testing.T) {
	k := sim.NewKernel()
	m := NewModule(k, mem.NewBacking())
	m.BufferSize = 2
	m.FixedOpLatency = 50
	spaces := 0
	m.OnSpace = func() { spaces++ }
	mk := func(s mem.ScopeID) *mem.Request {
		return &mem.Request{Kind: mem.ReqPIMOp, Scope: s,
			PIM: &mem.PIMCommand{Scope: s, Program: &mem.PIMProgram{}}}
	}
	// Scope 1 executes immediately (buffer drains); fill buffer with
	// same-scope ops that must wait.
	if !m.TryEnqueue(mk(1)) || !m.TryEnqueue(mk(1)) || !m.TryEnqueue(mk(1)) {
		t.Fatal("first three enqueues should fit (one starts immediately)")
	}
	if m.TryEnqueue(mk(1)) {
		t.Fatal("buffer should be full")
	}
	if _, err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if m.BufferLen() != 0 || m.InFlight() != 0 {
		t.Fatal("ops left behind")
	}
	if spaces == 0 {
		t.Fatal("OnSpace never fired")
	}
	if m.OpsExecuted.Value() != 3 {
		t.Fatalf("executed %d, want 3", m.OpsExecuted.Value())
	}
}

func TestModuleUnboundedBuffer(t *testing.T) {
	k := sim.NewKernel()
	m := NewModule(k, mem.NewBacking())
	m.BufferSize = 0 // unbounded (Fig. 11a)
	for i := 0; i < 1000; i++ {
		if !m.TryEnqueue(&mem.Request{Kind: mem.ReqPIMOp, Scope: 1,
			PIM: &mem.PIMCommand{Scope: 1, Program: &mem.PIMProgram{}}}) {
			t.Fatal("unbounded buffer rejected")
		}
	}
	if _, err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if m.OpsExecuted.Value() != 1000 {
		t.Fatal("not all executed")
	}
}

func TestModuleZeroLatency(t *testing.T) {
	k := sim.NewKernel()
	m := NewModule(k, mem.NewBacking())
	m.ZeroLatency = true // Fig. 11b
	m.TryEnqueue(&mem.Request{Kind: mem.ReqPIMOp, Scope: 1,
		PIM: &mem.PIMCommand{Scope: 1, Program: &mem.PIMProgram{MicroOps: 1000}}})
	end, err := k.Run()
	if err != nil {
		t.Fatal(err)
	}
	if end != 0 {
		t.Fatalf("zero-latency op finished at %d", end)
	}
}

func TestModuleArrivalStats(t *testing.T) {
	k := sim.NewKernel()
	m := NewModule(k, mem.NewBacking())
	m.FixedOpLatency = 1000 // keep everything buffered during enqueues
	mk := func(s mem.ScopeID) *mem.Request {
		return &mem.Request{Kind: mem.ReqPIMOp, Scope: s,
			PIM: &mem.PIMCommand{Scope: s, Program: &mem.PIMProgram{}}}
	}
	m.TryEnqueue(mk(1)) // arrival sees empty buffer, 0 scopes; starts immediately
	m.TryEnqueue(mk(1)) // buffer: [] -> sees 0 (first started); stays
	m.TryEnqueue(mk(2)) // sees 1 buffered, 1 unique scope; starts
	m.TryEnqueue(mk(1)) // sees 1 buffered (the scope-1 op), 1 unique
	if m.BufLenOnArrival.Count() != 4 {
		t.Fatal("arrival samples missing")
	}
	if m.PeakBuffer < 2 {
		t.Fatalf("peak buffer %d, want >= 2", m.PeakBuffer)
	}
	if _, err := k.Run(); err != nil {
		t.Fatal(err)
	}
}
