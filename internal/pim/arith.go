package pim

// Bit-serial arithmetic on fields, the "complex operations" of §II-A:
// composed from the basic column ops, consuming scratch columns for
// intermediate values and taking one micro-op sequence per bit — the
// reason complex PIM ops are long and why fine-grained ISAs issue several
// PIM ops per computation (§IV-A).

// AddFields computes, for every row in parallel, dst = a + b where a and b
// are width-bit big-endian fields at columns aBase/bBase and dst is a
// width-bit field at dstBase (carry out discarded). carryCol and tmpCol
// are scratch columns. Returns the micro-op count charged by the timing
// model.
//
// The ripple adder walks from LSB (last column) to MSB: sum = a^b^c,
// carry' = majority(a,b,c), five column ops per bit.
func (img *ArrayImage) AddFields(aBase, bBase, dstBase, width, carryCol, tmpCol int) int {
	micro := 1
	img.ColSet(carryCol, false)
	for bit := width - 1; bit >= 0; bit-- {
		a := aBase + bit
		b := bBase + bit
		d := dstBase + bit
		// tmp = a XOR b
		img.ColOp(OpXOR, tmpCol, a, b)
		// sum = tmp XOR carry
		img.ColOp(OpXOR, d, tmpCol, carryCol)
		// carry = (a AND b) OR (tmp AND carry): compute in place without
		// clobbering inputs — use d as no storage (d already written), so
		// fold via boolean identity on a fresh pass over rows.
		for r := 0; r < img.g.Rows; r++ {
			av, bv, cv := img.Bit(r, a), img.Bit(r, b), img.Bit(r, carryCol)
			img.SetBit(r, carryCol, (av && bv) || ((av != bv) && cv))
		}
		micro += 5 // xor, xor, and, and, or
	}
	return micro
}

// AddFieldsMicroOps returns the cost AddFields charges.
func AddFieldsMicroOps(width int) int { return 1 + 5*width }

// AddConst computes dst = a + k for every row (constant broadcast by the
// periphery), using the same scratch columns.
func (img *ArrayImage) AddConst(aBase, dstBase, width int, k uint64, carryCol int) int {
	micro := 1
	img.ColSet(carryCol, false)
	for bit := width - 1; bit >= 0; bit-- {
		a := aBase + bit
		d := dstBase + bit
		kbit := k&(1<<uint(width-1-bit)) != 0
		for r := 0; r < img.g.Rows; r++ {
			av, cv := img.Bit(r, a), img.Bit(r, carryCol)
			bv := kbit
			img.SetBit(r, d, (av != bv) != cv)
			img.SetBit(r, carryCol, (av && bv) || ((av != bv) && cv))
		}
		// With the constant known, each bit step specializes to ~3 ops.
		micro += 3
	}
	return micro
}

// MulFields computes, for every row in parallel, dst = a * b (mod
// 2^width) by shift-and-add: for each set bit of b, add the shifted a
// into the accumulator. Bit-serial multiplication is the paper's example
// of a long complex operation (§II-A: ADD, MUL built from basic ops).
// scratch needs four columns: carry, tmp, and a two-column gate pair.
func (img *ArrayImage) MulFields(aBase, bBase, dstBase, width, carryCol, tmpCol, gateCol, addCol int) int {
	micro := 0
	// Clear the accumulator.
	for bit := 0; bit < width; bit++ {
		img.ColSet(dstBase+bit, false)
	}
	micro += width
	for shift := 0; shift < width; shift++ {
		bCol := bBase + width - 1 - shift // bit `shift` of b (LSB first)
		// gate = a AND b_bit, per product bit; then dst += gate << shift.
		// The shifted addend's bit i comes from a's bit (i + shift) —
		// positions shifted out are zero.
		img.ColSet(carryCol, false)
		micro++
		for bit := width - 1; bit >= 0; bit-- {
			srcBit := bit + shift // big-endian index of a's contributing bit
			d := dstBase + bit
			for r := 0; r < img.g.Rows; r++ {
				var av bool
				if srcBit < width {
					av = img.Bit(r, aBase+srcBit)
				}
				gv := av && img.Bit(r, bCol)
				dv := img.Bit(r, d)
				cv := img.Bit(r, carryCol)
				img.SetBit(r, d, (dv != gv) != cv)
				img.SetBit(r, carryCol, (dv && gv) || ((dv != gv) && cv))
			}
			micro += 6 // gate AND + full-adder ops
		}
	}
	_ = tmpCol
	_ = gateCol
	_ = addCol
	return micro
}

// MulFieldsMicroOps returns the cost MulFields charges.
func MulFieldsMicroOps(width int) int { return width + width*(1+6*width) }

// PopCountColumn counts the set bits of a column over rows [0, n) — the
// reduction the control logic runs for COUNT aggregates. The timing model
// charges a log-depth reduction tree.
func (img *ArrayImage) PopCountColumn(col, n int) (count int, microOps int) {
	for r := 0; r < n; r++ {
		if img.Bit(r, col) {
			count++
		}
	}
	// Reduction tree: ~2 micro-ops per level over log2(n) levels of
	// row-pair additions, each level touching n/2 shrinking rows.
	levels := 0
	for v := n; v > 1; v >>= 1 {
		levels++
	}
	return count, 2 * levels * 8
}
