package pim

import (
	"math/bits"

	"bulkpim/internal/mem"
)

// Bit-serial arithmetic on fields, the "complex operations" of §II-A:
// composed from the basic column ops, consuming scratch columns for
// intermediate values and taking one micro-op sequence per bit — the
// reason complex PIM ops are long and why fine-grained ISAs issue several
// PIM ops per computation (§IV-A).
//
// Functionally the host processes rows as packed 64-lane words (colview.go)
// — carry and temporary columns live in registers across the whole bit walk
// and only real operand/result columns touch the row-major image — while
// the charged micro-op counts still describe the bit-serial column-op
// sequences the hardware would execute, so timing results are unchanged.

// AddFields computes, for every row in parallel, dst = a + b where a and b
// are width-bit big-endian fields at columns aBase/bBase and dst is a
// width-bit field at dstBase (carry out discarded). carryCol and tmpCol
// are scratch columns. Returns the micro-op count charged by the timing
// model.
//
// The ripple adder walks from LSB (last column) to MSB: sum = a^b^c,
// carry' = majority(a,b,c), five column ops per bit.
func (img *ArrayImage) AddFields(aBase, bBase, dstBase, width, carryCol, tmpCol int) int {
	micro := 1 // ColSet(carryCol, false)
	ap, bp, d, carry, tmp := img.plane(0), img.plane(1), img.plane(2), img.plane(3), img.plane(4)
	for w := range carry {
		carry[w] = 0
	}
	for bit := width - 1; bit >= 0; bit-- {
		img.LoadPlane(aBase+bit, ap)
		img.LoadPlane(bBase+bit, bp)
		for w := range d {
			av, bv, cv := ap[w], bp[w], carry[w]
			t := av ^ bv
			tmp[w] = t
			d[w] = t ^ cv
			carry[w] = (av & bv) | (t & cv)
		}
		img.StorePlane(dstBase+bit, d)
		micro += 5 // xor, xor, and, and, or
	}
	img.StorePlane(tmpCol, tmp)
	img.StorePlane(carryCol, carry)
	return micro
}

// AddFieldsMicroOps returns the cost AddFields charges.
func AddFieldsMicroOps(width int) int { return 1 + 5*width }

// AddConst computes dst = a + k for every row (constant broadcast by the
// periphery), using the same scratch columns.
func (img *ArrayImage) AddConst(aBase, dstBase, width int, k uint64, carryCol int) int {
	micro := 1 // ColSet(carryCol, false)
	ap, d, carry := img.plane(0), img.plane(1), img.plane(2)
	for w := range carry {
		carry[w] = 0
	}
	for bit := width - 1; bit >= 0; bit-- {
		var bv uint64
		if k&(1<<uint(width-1-bit)) != 0 {
			bv = ^uint64(0)
		}
		img.LoadPlane(aBase+bit, ap)
		for w := range d {
			av, cv := ap[w], carry[w]
			t := av ^ bv
			d[w] = t ^ cv
			carry[w] = (av & bv) | (t & cv)
		}
		img.StorePlane(dstBase+bit, d)
		// With the constant known, each bit step specializes to ~3 ops.
		micro += 3
	}
	img.StorePlane(carryCol, carry)
	return micro
}

// MulFields computes, for every row in parallel, dst = a * b (mod
// 2^width) by shift-and-add: for each set bit of b, add the shifted a
// into the accumulator. Bit-serial multiplication is the paper's example
// of a long complex operation (§II-A: ADD, MUL built from basic ops).
// carryCol holds the ripple carry; gateCol materializes the gated addend
// bit (a's shifted bit AND b's multiplier bit) before it enters the
// adder, mirroring the charged micro-op sequence: per product bit, one
// gate AND plus the five full-adder ops.
// The host gathers a's field and the accumulator into packed planes once
// — O(width) transposes — and runs the O(width^2) shift-and-add entirely
// on words, scattering results back at the end. Operand, destination and
// scratch columns must be disjoint.
func (img *ArrayImage) MulFields(aBase, bBase, dstBase, width, carryCol, gateCol int) int {
	micro := 0
	nw := img.PlaneWords()
	// Plane slots: a's bits [0,width), accumulator [width,2*width), then
	// the multiplier bit, carry and gate planes.
	for cap(img.planeRefs) < 2*width {
		img.planeRefs = append(img.planeRefs[:cap(img.planeRefs)], nil)
	}
	aP := img.planeRefs[:width]
	dP := img.planeRefs[width : 2*width]
	for i := 0; i < width; i++ {
		aP[i] = img.plane(i)
		img.LoadPlane(aBase+i, aP[i])
		dP[i] = img.plane(width + i)
		for w := range dP[i] {
			dP[i][w] = 0 // clear the accumulator
		}
	}
	micro += width
	bp, carry, gate := img.plane(2*width), img.plane(2*width+1), img.plane(2*width+2)
	for shift := 0; shift < width; shift++ {
		bCol := bBase + width - 1 - shift // bit `shift` of b (LSB first)
		img.LoadPlane(bCol, bp)
		for w := range carry {
			carry[w] = 0 // ColSet(carryCol, false)
		}
		micro++
		for bit := width - 1; bit >= 0; bit-- {
			// The shifted addend's bit i comes from a's bit (i + shift) —
			// positions shifted out are zero.
			srcBit := bit + shift // big-endian index of a's contributing bit
			d := dP[bit]
			if srcBit >= width {
				for w := 0; w < nw; w++ {
					gate[w] = 0
					dv, cv := d[w], carry[w]
					d[w] = dv ^ cv
					carry[w] = dv & cv
				}
			} else {
				ap := aP[srcBit]
				for w := 0; w < nw; w++ {
					gv := ap[w] & bp[w]
					gate[w] = gv
					dv, cv := d[w], carry[w]
					t := dv ^ gv
					d[w] = t ^ cv
					carry[w] = (dv & gv) | (t & cv)
				}
			}
			micro += 6 // gate AND + full-adder ops
		}
	}
	for bit := 0; bit < width; bit++ {
		img.StorePlane(dstBase+bit, dP[bit])
	}
	img.StorePlane(gateCol, gate)
	img.StorePlane(carryCol, carry)
	return micro
}

// MulFieldsMicroOps returns the cost MulFields charges: width accumulator
// clears, then per shift one carry clear plus width product-bit steps of
// six ops each (gate AND + full adder).
func MulFieldsMicroOps(width int) int { return width + width*(1+6*width) }

// PopCountColumn counts the set bits of a column over rows [0, n) — the
// reduction the control logic runs for COUNT aggregates. The host counts
// 64 rows per OnesCount64; the timing model charges a log-depth reduction
// tree.
func (img *ArrayImage) PopCountColumn(col, n int) (count int, microOps int) {
	byteOff := col >> 3
	shift := uint(col & 7)
	// One packed-SWAR step per eight rows: splice the eight strided column
	// bytes into a word and count every eighth bit at once.
	mask := uint64(0x0101010101010101) << shift
	idx := byteOff
	i := 0
	for ; i+8 <= n; i += 8 {
		w := uint64(img.rows[idx]) |
			uint64(img.rows[idx+mem.LineSize])<<8 |
			uint64(img.rows[idx+2*mem.LineSize])<<16 |
			uint64(img.rows[idx+3*mem.LineSize])<<24 |
			uint64(img.rows[idx+4*mem.LineSize])<<32 |
			uint64(img.rows[idx+5*mem.LineSize])<<40 |
			uint64(img.rows[idx+6*mem.LineSize])<<48 |
			uint64(img.rows[idx+7*mem.LineSize])<<56
		count += bits.OnesCount64(w & mask)
		idx += 8 * mem.LineSize
	}
	for ; i < n; i++ {
		count += int(img.rows[idx] >> shift & 1)
		idx += mem.LineSize
	}
	// Reduction tree: ~2 micro-ops per level over log2(n) levels of
	// row-pair additions, each level touching n/2 shrinking rows.
	levels := 0
	for v := n; v > 1; v >>= 1 {
		levels++
	}
	return count, 2 * levels * 8
}
