package pim

import (
	"testing"

	"bulkpim/internal/mem"
)

// TestArithAllocFree pins the word-packed arithmetic kernels at zero
// steady-state allocations: after a first call warms the image's plane
// scratch, repeated ops must reuse it.
func TestArithAllocFree(t *testing.T) {
	g := DefaultGeometry()
	img := LoadArray(mem.NewBacking(), 0, g, 0)
	const w = 16
	ops := map[string]func(){
		"AddFields": func() { img.AddFields(0, 32, 64, w, 448, 449) },
		"MulFields": func() { img.MulFields(0, 32, 64, w, 448, 449) },
		"CmpConst":  func() { img.CmpConst(PredGT, 0, w, 12345, 448, 449, 450) },
	}
	for name, op := range ops {
		op() // warm the plane scratch
		if avg := testing.AllocsPerRun(3, op); avg != 0 {
			t.Errorf("%s allocates %.2f allocs/op steady-state, want 0", name, avg)
		}
	}
}
