package pim

import (
	"testing"
	"testing/quick"

	"bulkpim/internal/mem"
)

// Property: the bit-serial ripple adder equals integer addition modulo
// 2^width for every operand pair.
func TestAddFieldsMatchesIntegers(t *testing.T) {
	g := testGeom()
	prop := func(as, bs [8]uint16) bool {
		b := mem.NewBacking()
		img := LoadArray(b, 0, g, 0)
		const width = 16
		for r := 0; r < 8; r++ {
			img.SetFieldBE(r, 0, width, uint64(as[r]))
			img.SetFieldBE(r, width, width, uint64(bs[r]))
		}
		micro := img.AddFields(0, width, 2*width, width, 100, 101)
		if micro != AddFieldsMicroOps(width) {
			return false
		}
		for r := 0; r < 8; r++ {
			want := uint64(as[r]) + uint64(bs[r])
			want &= (1 << width) - 1
			if img.FieldBE(r, 2*width, width) != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: AddConst equals integer addition with a broadcast constant.
func TestAddConstMatchesIntegers(t *testing.T) {
	g := testGeom()
	prop := func(as [8]uint16, k uint16) bool {
		b := mem.NewBacking()
		img := LoadArray(b, 0, g, 0)
		const width = 16
		for r := 0; r < 8; r++ {
			img.SetFieldBE(r, 0, width, uint64(as[r]))
		}
		img.AddConst(0, width, width, uint64(k), 100)
		for r := 0; r < 8; r++ {
			want := (uint64(as[r]) + uint64(k)) & ((1 << width) - 1)
			if img.FieldBE(r, width, width) != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: the bit-serial shift-and-add multiplier equals integer
// multiplication modulo 2^width.
func TestMulFieldsMatchesIntegers(t *testing.T) {
	g := testGeom()
	prop := func(as, bs [8]uint8) bool {
		b := mem.NewBacking()
		img := LoadArray(b, 0, g, 0)
		const width = 8
		for r := 0; r < 8; r++ {
			img.SetFieldBE(r, 0, width, uint64(as[r]))
			img.SetFieldBE(r, width, width, uint64(bs[r]))
		}
		micro := img.MulFields(0, width, 2*width, width, 100, 101)
		if micro != MulFieldsMicroOps(width) {
			return false
		}
		for r := 0; r < 8; r++ {
			want := (uint64(as[r]) * uint64(bs[r])) & ((1 << width) - 1)
			if img.FieldBE(r, 2*width, width) != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func TestMulCostDominatesAdd(t *testing.T) {
	// MUL is quadratic in width, ADD linear: the §II-A claim that complex
	// ops occupy the array for long periods.
	if MulFieldsMicroOps(32) <= 10*AddFieldsMicroOps(32) {
		t.Fatal("multiply cost implausibly low")
	}
}

func TestPopCountColumn(t *testing.T) {
	g := testGeom()
	b := mem.NewBacking()
	img := LoadArray(b, 0, g, 0)
	for r := 0; r < 8; r++ {
		img.SetBit(r, 5, r%3 == 0)
	}
	count, micro := img.PopCountColumn(5, 8)
	if count != 3 {
		t.Fatalf("popcount = %d, want 3", count)
	}
	if micro <= 0 {
		t.Fatal("no cost charged")
	}
}

// Addition carry chain: all-ones plus one wraps to zero.
func TestAddFieldsCarryChain(t *testing.T) {
	g := testGeom()
	b := mem.NewBacking()
	img := LoadArray(b, 0, g, 0)
	const width = 12
	img.SetFieldBE(0, 0, width, (1<<width)-1)
	img.SetFieldBE(0, width, width, 1)
	img.AddFields(0, width, 2*width, width, 100, 101)
	if got := img.FieldBE(0, 2*width, width); got != 0 {
		t.Fatalf("all-ones + 1 = %#x, want 0 (wrap)", got)
	}
}
