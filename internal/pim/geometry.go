// Package pim implements the bulk-bitwise PIM memory module: the crossbar
// array geometry and its functional bulk-bitwise execution engine (§II-A),
// and the timed module model — a bounded operation buffer, strict per-scope
// serialization ("once the PIM op starts execution, the memory array is
// occupied until the operation is complete", §III) and full parallelism
// across scopes, which is what the scope consistency model exploits (§VII).
package pim

import (
	"fmt"

	"bulkpim/internal/mem"
)

// Geometry describes the crossbar organization of one scope. The defaults
// mirror a PIMDB-style 2MB huge-page scope: 64 arrays of 512x512 memristive
// cells. One array row is 512 bits = 64 bytes = exactly one cache line, so
// the address of (array, row) is scopeBase + (array*Rows + row)*64.
//
// Records are stored one per row ("horizontal" layout, Fig. 2): bitwise
// column operations combine columns across all rows of an array in
// parallel, which is how a filter compares a field of every record at once.
type Geometry struct {
	Rows   int // rows per array; one row = one cache line
	Cols   int // bit columns per row; must be LineSize*8
	Arrays int // arrays per scope
}

// DefaultGeometry is the 2MB-scope organization described above.
func DefaultGeometry() Geometry { return Geometry{Rows: 512, Cols: mem.LineSize * 8, Arrays: 64} }

// Validate panics when the geometry does not tile a scope of scopeSize
// bytes exactly.
func (g Geometry) Validate(scopeSize uint64) {
	if g.Cols != mem.LineSize*8 {
		panic("pim: geometry columns must equal one cache line")
	}
	if uint64(g.Rows*g.Arrays*mem.LineSize) != scopeSize {
		panic(fmt.Sprintf("pim: geometry %dx%dx%d does not tile scope of %d bytes",
			g.Arrays, g.Rows, g.Cols, scopeSize))
	}
}

// LineOf returns the cache line holding row `row` of array `array` in the
// scope starting at base.
func (g Geometry) LineOf(base mem.Addr, array, row int) mem.LineAddr {
	return mem.LineOf(base + mem.Addr((array*g.Rows+row)*mem.LineSize))
}

// RowAddr returns the byte address of the row.
func (g Geometry) RowAddr(base mem.Addr, array, row int) mem.Addr {
	return base + mem.Addr((array*g.Rows+row)*mem.LineSize)
}

// ArrayBytes returns the storage of one array.
func (g Geometry) ArrayBytes() int { return g.Rows * mem.LineSize }
