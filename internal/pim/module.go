package pim

import (
	"bulkpim/internal/mem"
	"bulkpim/internal/sim"
	"bulkpim/internal/stats"
	"bulkpim/internal/trace"
)

// Module is the timed model of the PIM memory card. PIM ops forwarded by
// the memory controller enter a bounded buffer; the module starts the
// oldest buffered op of every idle scope, so different scopes execute fully
// in parallel while ops to one scope serialize in arrival order. The
// bounded buffer is the source of the back-pressure the paper studies
// (Fig. 10a, Fig. 11a).
type Module struct {
	k *sim.Kernel

	// BufferSize bounds the op buffer; <= 0 means unbounded (Fig. 11a).
	BufferSize int
	// CyclesPerMicroOp converts a program's micro-op count to CPU cycles.
	CyclesPerMicroOp sim.Tick
	// FixedOpLatency is a per-op floor (decode, array setup).
	FixedOpLatency sim.Tick
	// ZeroLatency forces zero execution time (Fig. 11b).
	ZeroLatency bool
	// Functional executes programs on Backing; otherwise only timing.
	Functional bool
	Backing    *mem.Backing

	// OnComplete fires when an op finishes executing (the memory
	// controller clears its per-scope dependences with it).
	OnComplete func(req *mem.Request)
	// OnSpace fires when buffer space frees.
	OnSpace func()

	// Tracer, when enabled for CatPIM, logs op start and completion.
	Tracer *trace.Tracer

	buffer    []*mem.Request
	executing map[mem.ScopeID]*mem.Request
	// scopeSeen is uniqueScopes' reusable scratch set; completeFn the
	// hoisted completion callback (both avoid per-op allocation).
	scopeSeen  map[mem.ScopeID]struct{}
	completeFn func(any)

	// Stats (names match the figures they feed).
	BufLenOnArrival   stats.Mean // Fig. 10a
	UniqueScopesOnArr stats.Mean // Fig. 10b
	ExecCycles        stats.Mean
	OpsExecuted       stats.Counter
	PeakBuffer        int
}

// NewModule builds a module bound to kernel k.
func NewModule(k *sim.Kernel, backing *mem.Backing) *Module {
	m := &Module{
		k:                k,
		Backing:          backing,
		BufferSize:       128,
		CyclesPerMicroOp: 360, // ~100ns per array micro-op at 3.6GHz
		FixedOpLatency:   720,
		executing:        make(map[mem.ScopeID]*mem.Request),
		scopeSeen:        make(map[mem.ScopeID]struct{}),
	}
	m.completeFn = func(x any) { m.complete(x.(*mem.Request)) }
	return m
}

// ScopeBusy reports whether scope s is executing an op right now (the
// memory array is occupied, §III).
func (m *Module) ScopeBusy(s mem.ScopeID) bool {
	_, busy := m.executing[s]
	return busy
}

// BufferLen returns the number of buffered (not yet started) ops.
func (m *Module) BufferLen() int { return len(m.buffer) }

// InFlight returns buffered plus executing ops.
func (m *Module) InFlight() int { return len(m.buffer) + len(m.executing) }

// uniqueScopes counts distinct scopes in the buffer.
func (m *Module) uniqueScopes() int {
	clear(m.scopeSeen)
	for _, r := range m.buffer {
		m.scopeSeen[r.Scope] = struct{}{}
	}
	return len(m.scopeSeen)
}

// TryEnqueue accepts a PIM op into the buffer, or reports false when the
// buffer is full. Arrival statistics are sampled before insertion, matching
// the paper's "on PIM op arrival" measurements.
func (m *Module) TryEnqueue(req *mem.Request) bool {
	if m.BufferSize > 0 && len(m.buffer) >= m.BufferSize {
		return false
	}
	m.BufLenOnArrival.Observe(float64(len(m.buffer)))
	m.UniqueScopesOnArr.Observe(float64(m.uniqueScopes()))
	m.buffer = append(m.buffer, req)
	if len(m.buffer) > m.PeakBuffer {
		m.PeakBuffer = len(m.buffer)
	}
	m.tryStart()
	return true
}

// tryStart launches the oldest buffered op of every idle scope.
func (m *Module) tryStart() {
	freed := false
	kept := m.buffer[:0]
	for _, req := range m.buffer {
		if _, busy := m.executing[req.Scope]; busy {
			kept = append(kept, req)
			continue
		}
		m.executing[req.Scope] = req
		freed = true
		if m.Tracer.Enabled(trace.CatPIM) {
			name := ""
			if req.PIM != nil && req.PIM.Program != nil {
				name = req.PIM.Program.Name
			}
			m.Tracer.Emit(trace.CatPIM, "pim", "start scope=%d op=%s buffered=%d", req.Scope, name, len(m.buffer))
		}
		m.k.ScheduleCtx(m.execLatency(req), m.completeFn, req)
	}
	m.buffer = kept
	if freed && m.OnSpace != nil {
		m.OnSpace()
	}
}

func (m *Module) execLatency(req *mem.Request) sim.Tick {
	if m.ZeroLatency {
		return 0
	}
	micro := 0
	if req.PIM != nil && req.PIM.Program != nil {
		micro = req.PIM.Program.MicroOps
	}
	return m.FixedOpLatency + sim.Tick(micro)*m.CyclesPerMicroOp
}

func (m *Module) complete(req *mem.Request) {
	if m.Functional && req.PIM != nil && req.PIM.Program != nil && req.PIM.Program.Apply != nil {
		req.PIM.Program.Apply(m.Backing, req.Writer)
	}
	if m.Tracer.Enabled(trace.CatPIM) {
		m.Tracer.Emit(trace.CatPIM, "pim", "complete scope=%d", req.Scope)
	}
	m.ExecCycles.Observe(float64(m.execLatency(req)))
	m.OpsExecuted.Inc()
	delete(m.executing, req.Scope)
	if m.OnComplete != nil {
		m.OnComplete(req)
	}
	m.tryStart()
}
