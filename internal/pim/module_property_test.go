package pim

import (
	"testing"
	"testing/quick"

	"bulkpim/internal/mem"
	"bulkpim/internal/sim"
)

// Property: for any arrival sequence, ops to one scope complete in arrival
// order (the memory array is occupied until the op completes, §III), and
// every op completes exactly once.
func TestModulePerScopeFIFOProperty(t *testing.T) {
	prop := func(scopes []uint8, latencies []uint8) bool {
		if len(scopes) == 0 {
			return true
		}
		k := sim.NewKernel()
		k.EventLimit = 1_000_000
		m := NewModule(k, mem.NewBacking())
		m.BufferSize = 0 // unbounded so every op is accepted
		m.FixedOpLatency = 1
		m.CyclesPerMicroOp = 1

		type tag struct {
			scope mem.ScopeID
			idx   int
		}
		var completions []tag
		m.OnComplete = func(r *mem.Request) {
			completions = append(completions, tag{r.Scope, int(r.ID)})
		}
		for i, s := range scopes {
			micro := 1
			if len(latencies) > 0 {
				micro = int(latencies[i%len(latencies)])%17 + 1
			}
			m.TryEnqueue(&mem.Request{
				ID: uint64(i), Kind: mem.ReqPIMOp, Scope: mem.ScopeID(s % 5),
				PIM: &mem.PIMCommand{Program: &mem.PIMProgram{MicroOps: micro}},
			})
		}
		if _, err := k.Run(); err != nil {
			return false
		}
		if len(completions) != len(scopes) {
			return false
		}
		// Per-scope completion order must match arrival (ID) order.
		lastIdx := map[mem.ScopeID]int{}
		for _, c := range completions {
			if prev, ok := lastIdx[c.scope]; ok && c.idx < prev {
				return false
			}
			lastIdx[c.scope] = c.idx
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// Property: at no instant do two ops of the same scope execute; distinct
// scopes overlap freely.
func TestModuleScopeExclusivityProperty(t *testing.T) {
	k := sim.NewKernel()
	m := NewModule(k, mem.NewBacking())
	m.BufferSize = 0
	m.FixedOpLatency = 37
	rng := sim.NewRand(5)
	type window struct{ start, end sim.Tick }
	running := map[mem.ScopeID][]window{}
	m.OnComplete = func(r *mem.Request) {
		s := r.Scope
		running[s][len(running[s])-1].end = k.Now()
	}
	orig := m.Tracer
	_ = orig
	for i := 0; i < 200; i++ {
		s := mem.ScopeID(rng.Intn(6))
		req := &mem.Request{Kind: mem.ReqPIMOp, Scope: s,
			PIM: &mem.PIMCommand{Program: &mem.PIMProgram{MicroOps: rng.Intn(5)}}}
		// record start via a wrapper on enqueue time is not the start;
		// instead track via the executing map after TryEnqueue.
		m.TryEnqueue(req)
		if m.ScopeBusy(s) && len(running[s]) == 0 {
			running[s] = append(running[s], window{start: k.Now()})
		}
		if rng.Intn(3) == 0 {
			if _, err := k.RunUntil(k.Now() + sim.Tick(rng.Intn(100))); err != nil {
				t.Fatal(err)
			}
		}
		// Re-open windows for scopes that started during draining.
		for sc := mem.ScopeID(0); sc < 6; sc++ {
			if m.ScopeBusy(sc) {
				ws := running[sc]
				if len(ws) == 0 || ws[len(ws)-1].end != 0 {
					running[sc] = append(ws, window{start: k.Now()})
				}
			}
		}
	}
	if _, err := k.Run(); err != nil {
		t.Fatal(err)
	}
	// Windows of one scope must not overlap.
	for s, ws := range running {
		for i := 1; i < len(ws); i++ {
			if ws[i].start < ws[i-1].end {
				t.Fatalf("scope %d windows overlap: %v", s, ws)
			}
		}
	}
	if m.InFlight() != 0 {
		t.Fatal("ops left in flight")
	}
}
