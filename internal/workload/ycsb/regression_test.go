package ycsb

import (
	"testing"

	"bulkpim/internal/core"
	"bulkpim/internal/system"
)

// Regression: a stale scheduled burst poll used to spuriously resume a
// core waiting at a barrier, desynchronizing the 8-thread run of Fig. 13
// into a deadlock. Token-guarded resumes fixed it.
func TestEightThreadBarrierRegression(t *testing.T) {
	p := DefaultParams(500000)
	p.Operations = 16
	p.Threads = 8
	p.Seed = 1
	w := New(p)
	cfg := system.Default()
	cfg.Model = core.Naive
	cfg.Cores = 16
	_, err := Run(w, cfg)
	if err != nil {
		t.Fatal(err)
	}
}
