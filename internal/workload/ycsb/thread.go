package ycsb

import (
	"bytes"

	"bulkpim/internal/core"
	"bulkpim/internal/cpu"
	"bulkpim/internal/mem"
	"bulkpim/internal/system"
)

// Threads builds the worker threads for one run on sys. Scopes are divided
// evenly among the threads; each thread issues the PIM ops for its scopes,
// then reads the scan results and the extracted record fields with
// standard loads (§VI-B).
func (w *Workload) Threads(sys *system.System) []cpu.Thread {
	bar := cpu.NewBarrier(w.P.Threads)
	threads := make([]cpu.Thread, w.P.Threads)
	for t := 0; t < w.P.Threads; t++ {
		th := &thread{w: w, sys: sys, id: t, bar: bar}
		for s := 0; s < w.Scopes; s++ {
			if s%w.P.Threads == t {
				th.owned = append(th.owned, mem.ScopeID(s))
			}
		}
		if sys.Cfg.Model == core.SWFlush {
			th.touched = make(map[mem.ScopeID][]mem.LineAddr)
			th.touchedSet = make(map[mem.LineAddr]bool)
		}
		threads[t] = th
	}
	return threads
}

type thread struct {
	w     *Workload
	sys   *system.System
	id    int
	owned []mem.ScopeID
	bar   *cpu.Barrier

	opIdx   int
	pending []cpu.Instr
	pos     int

	// SW-Flush baseline: lines this thread cached from each scope since
	// its last flush (the software's explicit coherence bookkeeping).
	touched    map[mem.ScopeID][]mem.LineAddr
	touchedSet map[mem.LineAddr]bool
}

// Next implements cpu.Thread.
func (th *thread) Next() (cpu.Instr, bool) {
	for th.pos >= len(th.pending) {
		if th.opIdx >= len(th.w.ops) {
			return cpu.Instr{}, false
		}
		th.pending = th.pending[:0]
		th.pos = 0
		th.emitOp(th.w.ops[th.opIdx])
		th.opIdx++
	}
	in := th.pending[th.pos]
	th.pos++
	return in, true
}

func (th *thread) emit(in cpu.Instr) { th.pending = append(th.pending, in) }

func (th *thread) touch(scope mem.ScopeID, line mem.LineAddr) {
	if th.touched == nil || th.touchedSet[line] {
		return
	}
	th.touchedSet[line] = true
	th.touched[scope] = append(th.touched[scope], line)
}

func (th *thread) emitOp(op *opSpec) {
	switch op.kind {
	case opScan:
		th.emitScan(op)
	case opInsert:
		th.emitInsert(op)
	}
	th.emit(cpu.Instr{Kind: cpu.InstrBarrier, Barrier: th.bar})
}

func (th *thread) emitScan(op *opSpec) {
	w := th.w
	model := th.sys.Cfg.Model

	// SW-Flush: flush everything this thread cached from its scopes
	// before issuing the PIM ops ([25]'s software coherence).
	if th.touched != nil {
		for _, s := range th.owned {
			if lines := th.touched[s]; len(lines) > 0 {
				th.emit(cpu.Instr{Kind: cpu.InstrFlush, Lines: lines})
				for _, l := range lines {
					delete(th.touchedSet, l)
				}
				th.touched[s] = nil
			}
		}
	}

	// Keys are stored +1 so the all-zero image of an empty row can never
	// match a scan (0 is the "invalid record" sentinel).
	lo, hi := op.base+1, op.base+op.count

	// Issue phase: the fine-grained op sequence, duplicated per scope.
	// Timing-only programs carry no Apply closure, so one compilation
	// serves every scope.
	functional := th.sys.Cfg.Functional
	var shared []*mem.PIMProgram
	if !functional {
		shared = w.Layout.CompileRangeScan(0, lo, hi, false)
	}
	for _, s := range th.owned {
		progs := shared
		if functional {
			progs = w.Layout.CompileRangeScan(th.sys.Scopes.ScopeBase(s), lo, hi, true)
		}
		for _, p := range progs {
			th.emit(cpu.Instr{Kind: cpu.InstrPIMOp, Scope: s, Prog: p, Label: p.Name})
		}
	}

	// Read phase, per scope: the result bit-vectors, then the extracted
	// field of each matching record.
	for _, s := range th.owned {
		scope := s
		base := th.sys.Scopes.ScopeBase(scope)
		if model.NeedsScopeFence() {
			th.emit(cpu.Instr{Kind: cpu.InstrScopeFence, Scope: scope})
		}
		resStart, resBytes := w.Layout.ResultRegion(base)
		resInstr := cpu.Instr{Kind: cpu.InstrLoadBurst,
			Burst: []cpu.BurstRange{{Start: resStart, Bytes: resBytes}}}
		if th.w.P.Verify {
			resInstr.OnData = th.resultVerifier(op, scope, resStart)
		}
		if th.touched != nil {
			for l := mem.LineOf(resStart); l < mem.LineOf(resStart+mem.Addr(resBytes)); l += mem.LineSize {
				th.touch(scope, l)
			}
		}
		th.emit(resInstr)

		matches := w.matchesInScope(op, scope)
		if len(matches) > 0 {
			var ranges []cpu.BurstRange
			expect := make(map[mem.LineAddr][]byte, len(matches))
			for _, m := range matches {
				line := w.Layout.RecordLine(base, m.pos)
				off := w.Layout.FieldByteOff(op.field)
				ranges = append(ranges, cpu.BurstRange{
					Start: line.Addr() + mem.Addr(off), Bytes: w.P.FieldBytes})
				if th.w.P.Verify {
					want := make([]byte, w.P.FieldBytes)
					for i := range want {
						want[i] = FieldByte(m.key, op.field, i)
					}
					expect[line] = want
				}
				th.touch(scope, line)
			}
			recInstr := cpu.Instr{Kind: cpu.InstrLoadBurst, Burst: ranges}
			if th.w.P.Verify {
				field := op.field
				recInstr.OnData = func(line mem.LineAddr, data []byte) {
					want := expect[line]
					if want == nil {
						return
					}
					off := w.Layout.FieldByteOff(field)
					if !bytes.Equal(data[off:off+len(want)], want) {
						th.sys.Violations.Inc()
					}
				}
			}
			th.emit(recInstr)
		}
	}
}

// resultVerifier checks result bit-vector lines against the oracle.
func (th *thread) resultVerifier(op *opSpec, scope mem.ScopeID, resStart mem.Addr) func(mem.LineAddr, []byte) {
	w := th.w
	return func(line mem.LineAddr, data []byte) {
		array := int(line.Addr()-resStart) / mem.LineSize
		if array < 0 || array >= w.Layout.DataArrays {
			return
		}
		want := w.expectedResultLine(op, scope, array)
		if !bytes.Equal(data[:mem.LineSize], want) {
			th.sys.Violations.Inc()
		}
	}
}

func (th *thread) emitInsert(op *opSpec) {
	if op.thr != th.id {
		return // only the designated thread inserts; all threads barrier
	}
	w := th.w
	pos := w.Position(op.key)
	if pos >= w.Scopes*w.Layout.RecordsPerScope() {
		return // database full: the append has no free slot
	}
	scope := w.Layout.ScopeOfRecord(pos)
	base := th.sys.Scopes.ScopeBase(scope)
	line := w.Layout.RecordLine(base, pos%w.Layout.RecordsPerScope())
	image := w.Layout.EncodeRecord(op.key+1, w.recordFields(op.key))
	th.emit(cpu.Instr{Kind: cpu.InstrStore, Addr: line.Addr(), Data: image, Label: "insert"})
	if th.touched != nil {
		// SW-Flush: flush immediately after writing so any thread's next
		// scan sees the record.
		th.emit(cpu.Instr{Kind: cpu.InstrFlush, Lines: []mem.LineAddr{line}})
	}
}
