package ycsb

import (
	"reflect"
	"testing"

	"bulkpim/internal/system"
)

// snapParams reuses the functional-run helper but at non-verify
// defaults: snapshots serve performance sweeps.
func snapParams() Params {
	p := smallParams(12)
	p.Verify = false
	return p
}

// TestSnapshotRoundtrip: a restored workload must be structurally
// identical to the generated one — params, permutation, op sequence
// and every Precomputed match cache.
func TestSnapshotRoundtrip(t *testing.T) {
	p := snapParams()
	w := New(p)
	w.Precompute()
	data, err := w.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	got, err := FromSnapshot(data, p)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.P, w.P) || got.Scopes != w.Scopes ||
		got.permA != w.permA || got.permC != w.permC || got.inserted != w.inserted {
		t.Fatalf("restored workload header differs: %+v vs %+v", got, w)
	}
	if len(got.ops) != len(w.ops) {
		t.Fatalf("restored %d ops, want %d", len(got.ops), len(w.ops))
	}
	for i := range w.ops {
		if !reflect.DeepEqual(*got.ops[i], *w.ops[i]) {
			t.Fatalf("op %d differs:\n%+v\nvs\n%+v", i, *got.ops[i], *w.ops[i])
		}
	}
	if err := got.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestSnapshotRunEquivalence is the contract the snapshot store
// depends on: simulating a restored workload must produce exactly the
// result of simulating the original — snapshots and generation are
// interchangeable, so reports stay byte-identical.
func TestSnapshotRunEquivalence(t *testing.T) {
	p := snapParams()
	w := New(p)
	w.Precompute()
	data, err := w.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	restored, err := FromSnapshot(data, p)
	if err != nil {
		t.Fatal(err)
	}
	cfg := system.Default()
	want, err := Run(w, cfg)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Run(restored, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("restored workload simulates differently:\n%+v\nvs\n%+v", got, want)
	}
}

// TestFromSnapshotRejectsMismatch: version skew and foreign params are
// explicit errors, not silently wrong workloads.
func TestFromSnapshotRejectsMismatch(t *testing.T) {
	p := snapParams()
	w := New(p)
	w.Precompute()
	data, err := w.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	other := p
	other.Operations++
	if _, err := FromSnapshot(data, other); err == nil {
		t.Fatal("snapshot accepted under foreign params")
	}
	if _, err := FromSnapshot([]byte("not gob"), p); err == nil {
		t.Fatal("garbage accepted as snapshot")
	}
}
