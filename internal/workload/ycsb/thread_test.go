package ycsb

import (
	"testing"

	"bulkpim/internal/core"
	"bulkpim/internal/cpu"
	"bulkpim/internal/mem"
	"bulkpim/internal/system"
)

// drainThread pulls every instruction out of a thread without simulating.
func drainThread(t *testing.T, th cpu.Thread, limit int) []cpu.Instr {
	t.Helper()
	var out []cpu.Instr
	for i := 0; i < limit; i++ {
		in, ok := th.Next()
		if !ok {
			return out
		}
		out = append(out, in)
	}
	t.Fatalf("thread did not terminate within %d instructions", limit)
	return nil
}

func TestThreadStructurePerOp(t *testing.T) {
	p := DefaultParams(100000) // 4 scopes
	p.Operations = 5
	p.ScanFraction = 1.0
	p.Threads = 2
	w := New(p)
	cfg := system.Default()
	cfg.Model = core.Atomic
	cfg = w.SystemConfig(cfg)
	s := system.New(cfg)
	threads := w.Threads(s)
	if len(threads) != 2 {
		t.Fatal("thread count")
	}
	instrs := drainThread(t, threads[0], 100000)
	var pims, bursts, barriers int
	for _, in := range instrs {
		switch in.Kind {
		case cpu.InstrPIMOp:
			pims++
		case cpu.InstrLoadBurst:
			bursts++
		case cpu.InstrBarrier:
			barriers++
		}
	}
	// Thread 0 owns 2 of 4 scopes: per scan 2 scopes x 4 PIM ops.
	if pims != 5*2*4 {
		t.Errorf("pim instrs = %d, want %d", pims, 5*2*4)
	}
	if barriers != 5 {
		t.Errorf("barriers = %d, want 5 (one per op)", barriers)
	}
	// At least one result burst per scope per scan.
	if bursts < 5*2 {
		t.Errorf("bursts = %d, want >= %d", bursts, 5*2)
	}
}

func TestSWFlushThreadEmitsFlushes(t *testing.T) {
	p := DefaultParams(100000)
	p.Operations = 4
	p.ScanFraction = 1.0
	p.Threads = 1
	w := New(p)
	cfg := system.Default()
	cfg.Model = core.SWFlush
	cfg = w.SystemConfig(cfg)
	s := system.New(cfg)
	th := w.Threads(s)[0]
	instrs := drainThread(t, th, 200000)
	flushes := 0
	flushedLines := 0
	for _, in := range instrs {
		if in.Kind == cpu.InstrFlush {
			flushes++
			flushedLines += len(in.Lines)
		}
	}
	// First scan has nothing to flush; later scans flush the previously
	// read result lines.
	if flushes == 0 || flushedLines == 0 {
		t.Fatal("swflush thread never flushed")
	}
	// Each scope's result region is 63 lines; 4 scopes, scans 2..4 flush.
	if flushedLines < 3*4*63 {
		t.Errorf("flushed %d lines, want >= %d", flushedLines, 3*4*63)
	}
}

func TestScopeRelaxedThreadEmitsScopeFences(t *testing.T) {
	p := DefaultParams(100000)
	p.Operations = 3
	p.ScanFraction = 1.0
	p.Threads = 1
	w := New(p)
	cfg := system.Default()
	cfg.Model = core.ScopeRelaxed
	cfg = w.SystemConfig(cfg)
	s := system.New(cfg)
	instrs := drainThread(t, w.Threads(s)[0], 200000)
	fences := 0
	for _, in := range instrs {
		if in.Kind == cpu.InstrScopeFence {
			fences++
		}
	}
	if fences != 3*4 {
		t.Errorf("scope fences = %d, want one per scope per scan (%d)", fences, 3*4)
	}
}

func TestInsertTargetsFreeSlot(t *testing.T) {
	p := DefaultParams(100000)
	p.Operations = 40
	p.ScanFraction = 0.0 // all inserts
	p.Threads = 2
	w := New(p)
	cfg := system.Default()
	cfg.Model = core.Atomic
	cfg = w.SystemConfig(cfg)
	s := system.New(cfg)
	for _, th := range w.Threads(s) {
		for _, in := range drainThread(t, th, 100000) {
			if in.Kind != cpu.InstrStore {
				continue
			}
			pos := w.Position(w.Layout.DecodeKey(in.Data) - 1)
			if pos < p.Records {
				t.Fatalf("insert overwrote initial record at %d", pos)
			}
			if mem.LineOf(in.Addr).Addr() != in.Addr {
				t.Fatal("insert store not line aligned")
			}
		}
	}
}
