package ycsb

// Workload snapshot serialization. A generated workload — the op
// sequence plus every scan's Precomputed match cache — is fully
// determined by its Params, but generating it at paper scale costs
// real time per process. Snapshot/FromSnapshot give the content-
// addressed snapshot store (internal/snapshot) a byte form, so shards
// and fleet workers sharing a filesystem generate each database at
// most once suite-wide.
//
// The wire form is gob over mirror structs with exported fields
// (Workload's op list and match caches are unexported by design — the
// mirrors are the one sanctioned window into them), prefixed by a wire
// version string so an incompatible change to the structs decodes as
// an explicit error — the caller then regenerates — instead of a
// silently wrong workload.

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"reflect"

	"bulkpim/internal/mem"
	"bulkpim/internal/pimdb"
)

// wireVersion guards the gob struct shapes below. Bump it whenever
// they (or the semantics of the fields they mirror) change.
const wireVersion = "ycsb-wire-v1"

type wireMatch struct {
	Key uint64
	Pos int
}

type wireOp struct {
	Kind  uint8
	Base  uint64
	Count uint64
	Field int
	Key   uint64
	Thr   int
	// Matches is the scan's Precomputed match cache; nil for inserts.
	Matches map[mem.ScopeID][]wireMatch
}

type wireWorkload struct {
	Version  string
	P        Params
	Layout   pimdb.Layout
	Scopes   int
	PermA    uint64
	PermC    uint64
	Inserted int
	Ops      []wireOp
}

// Snapshot serializes the workload, generated ops and match caches
// included. Call it after Precompute so the snapshot carries the
// frozen, shareable form and loading skips both generation and
// precomputation.
func (w *Workload) Snapshot() ([]byte, error) {
	ww := wireWorkload{
		Version: wireVersion, P: w.P, Layout: w.Layout, Scopes: w.Scopes,
		PermA: w.permA, PermC: w.permC, Inserted: w.inserted,
		Ops: make([]wireOp, len(w.ops)),
	}
	for i, op := range w.ops {
		wo := wireOp{Kind: uint8(op.kind), Base: op.base, Count: op.count,
			Field: op.field, Key: op.key, Thr: op.thr}
		if op.matches != nil {
			wo.Matches = make(map[mem.ScopeID][]wireMatch, len(op.matches))
			for scope, ms := range op.matches {
				wms := make([]wireMatch, len(ms))
				for j, m := range ms {
					wms[j] = wireMatch{Key: m.key, Pos: m.pos}
				}
				wo.Matches[scope] = wms
			}
		}
		ww.Ops[i] = wo
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(ww); err != nil {
		return nil, fmt.Errorf("ycsb: snapshot: %w", err)
	}
	return buf.Bytes(), nil
}

// FromSnapshot reconstructs a workload serialized by Snapshot and
// verifies it was built for p — a snapshot store keyed by a stale or
// colliding identity must never silently substitute another database.
// The returned workload is re-frozen (Precompute) and therefore safe
// to share read-only across parallel model variants, exactly like a
// freshly generated one. Any mismatch — wire version, params — is an
// error; the caller falls back to generation.
func FromSnapshot(data []byte, p Params) (*Workload, error) {
	var ww wireWorkload
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&ww); err != nil {
		return nil, fmt.Errorf("ycsb: snapshot decode: %w", err)
	}
	if ww.Version != wireVersion {
		return nil, fmt.Errorf("ycsb: snapshot wire version %q, want %q", ww.Version, wireVersion)
	}
	if !reflect.DeepEqual(ww.P, p) {
		return nil, fmt.Errorf("ycsb: snapshot params %+v do not match requested %+v", ww.P, p)
	}
	w := &Workload{
		P: ww.P, Layout: ww.Layout, Scopes: ww.Scopes,
		permA: ww.PermA, permC: ww.PermC, inserted: ww.Inserted,
		ops: make([]*opSpec, len(ww.Ops)),
	}
	for i, wo := range ww.Ops {
		op := &opSpec{kind: opKind(wo.Kind), base: wo.Base, count: wo.Count,
			field: wo.Field, key: wo.Key, thr: wo.Thr}
		if wo.Matches != nil {
			op.matches = make(map[mem.ScopeID][]match, len(wo.Matches))
			for scope, wms := range wo.Matches {
				ms := make([]match, len(wms))
				for j, wm := range wms {
					ms[j] = match{key: wm.Key, pos: wm.Pos}
				}
				op.matches[scope] = ms
			}
		}
		w.ops[i] = op
	}
	// Gob drops empty maps to nil; re-freeze so every scan's cache is
	// materialized and the workload is read-only under concurrency.
	w.Precompute()
	return w, nil
}
