package ycsb

import (
	"fmt"

	"bulkpim/internal/mem"
	"bulkpim/internal/pimdb"
	"bulkpim/internal/sim"
	"bulkpim/internal/system"
)

// Params configures the workload (paper Table III).
type Params struct {
	Records    int // database size; scope count derives from it
	Operations int // paper: 1000
	// ScanFraction of operations are scans, the rest inserts (0.95/0.05).
	ScanFraction float64
	// MaxScanRecords: scan lengths are uniform in [1, MaxScanRecords].
	MaxScanRecords int
	// ExtractField: scans read one text field of each found record.
	Fields     int
	FieldBytes int
	ZipfTheta  float64
	Threads    int // paper: 4 (8 for Fig. 13)
	Seed       uint64
	// Verify compares every read against the oracle (functional runs).
	Verify bool
}

// DefaultParams returns Table III with a given record count.
func DefaultParams(records int) Params {
	return Params{
		Records:        records,
		Operations:     1000,
		ScanFraction:   0.95,
		MaxScanRecords: 100,
		Fields:         5,
		FieldBytes:     10,
		ZipfTheta:      0.99,
		Threads:        4,
		Seed:           1,
	}
}

type opKind uint8

const (
	opScan opKind = iota
	opInsert
)

type opSpec struct {
	kind  opKind
	base  uint64 // scan: first key
	count uint64 // scan: number of keys
	field int    // scan: field to extract
	key   uint64 // insert
	thr   int    // insert: executing thread

	// matches caches scope -> matched (key, localPos) pairs.
	matches map[mem.ScopeID][]match
}

type match struct {
	key uint64
	pos int // position within the scope (array*rows + row)
}

// Workload is one generated YCSB run, shared by all models so every
// configuration measures the identical operation sequence ("For all scope
// counts and all models, the same sequence of scans and insertions was
// measured", §VI-B).
type Workload struct {
	P      Params
	Layout pimdb.Layout
	Scopes int
	ops    []*opSpec

	// Key -> position permutation: records are randomly distributed so
	// scan results spread evenly across scopes (§VI-B).
	permA, permC uint64

	inserted int // next insert slot (appended after initial records)
}

// ScopeCount returns the scope count a workload with these params
// occupies. It depends only on the record count, layout and thread
// count — not the operation sequence — so plan and report passes can
// derive a sweep's x axis without generating any workload.
func ScopeCount(p Params) int {
	rps := pimdb.DefaultLayout().RecordsPerScope()
	scopes := (p.Records + rps - 1) / rps
	if scopes < p.Threads {
		scopes = p.Threads // at least one scope per thread
	}
	return scopes
}

// New generates the operation sequence for p.
func New(p Params) *Workload {
	if p.Records <= 0 || p.Operations <= 0 || p.Threads <= 0 {
		panic("ycsb: bad params")
	}
	w := &Workload{P: p, Layout: pimdb.DefaultLayout()}
	w.Scopes = ScopeCount(p)
	// A fixed multiplicative permutation pos = (key*a + c) mod N, bijective
	// because gcd(a, N) = 1. a is pre-reduced mod N so key*a never
	// overflows (records < 2^31, so the product stays below 2^62).
	n := uint64(p.Records)
	w.permA = (0x9E3779B97F4A7C15 % n) | 1
	for gcd(w.permA, n) != 1 {
		w.permA += 2
	}
	w.permC = 0xD1B54A32D192ED03 % n

	rng := sim.NewRand(p.Seed)
	zipf := NewZipf(maxU64(1, n-uint64(p.MaxScanRecords)), p.ZipfTheta)
	nextInsert := n
	for i := 0; i < p.Operations; i++ {
		if rng.Float64() < p.ScanFraction {
			count := uint64(rng.Intn(p.MaxScanRecords)) + 1
			base := zipf.Next(rng)
			w.ops = append(w.ops, &opSpec{
				kind: opScan, base: base, count: count,
				field: rng.Intn(p.Fields),
			})
		} else {
			w.ops = append(w.ops, &opSpec{
				kind: opInsert, key: nextInsert, thr: i % p.Threads,
			})
			nextInsert++
		}
	}
	return w
}

func gcd(a, b uint64) uint64 {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

func maxU64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}

// Position maps a key to its global record position. Initial keys are
// permuted across the database; inserted keys append.
func (w *Workload) Position(key uint64) int {
	n := uint64(w.P.Records)
	if key < n {
		return int((key*w.permA + w.permC) % n)
	}
	return w.P.Records + int(key-n)
}

// FieldByte is the deterministic content generator for record fields: the
// oracle for functional verification.
func FieldByte(key uint64, field, i int) byte {
	x := key*0x9E3779B97F4A7C15 + uint64(field)*0xBF58476D1CE4E5B9 + uint64(i)*0x94D049BB133111EB
	x ^= x >> 31
	return byte(x)
}

// recordFields builds the field payloads of a record.
func (w *Workload) recordFields(key uint64) [][]byte {
	fields := make([][]byte, w.P.Fields)
	for f := range fields {
		fields[f] = make([]byte, w.P.FieldBytes)
		for i := range fields[f] {
			fields[f][i] = FieldByte(key, f, i)
		}
	}
	return fields
}

// InitBacking writes the initial database image (functional runs). Keys
// are stored +1: the all-zero image of an unoccupied row must never match
// a scan.
func (w *Workload) InitBacking(bk *mem.Backing, scopes *mem.ScopeMap) {
	for key := uint64(0); key < uint64(w.P.Records); key++ {
		pos := w.Position(key)
		scope := w.Layout.ScopeOfRecord(pos)
		base := scopes.ScopeBase(scope)
		w.Layout.WriteRecord(bk, base, pos%w.Layout.RecordsPerScope(), key+1, w.recordFields(key))
	}
}

// Run builds a system for cfg, initializes the database when functional,
// and executes the workload.
func Run(w *Workload, cfg system.Config) (system.Result, error) {
	cfg = w.SystemConfig(cfg)
	s := system.New(cfg)
	if cfg.Functional {
		w.InitBacking(s.Backing, s.Scopes)
	}
	return s.Run(w.Threads(s))
}

// Precompute materializes every scan op's lazily-built match cache.
// The cache is otherwise filled during the first run that touches it,
// which would race when one workload is shared by concurrent runs;
// after Precompute the workload is read-only and safe to share across
// parallel model variants. Idempotent.
func (w *Workload) Precompute() {
	for _, op := range w.ops {
		if op.kind == opScan {
			w.matchesInScope(op, 0)
		}
	}
}

// matchesInScope returns (cached) matches of a scan op inside one scope.
func (w *Workload) matchesInScope(op *opSpec, scope mem.ScopeID) []match {
	if op.matches == nil {
		op.matches = make(map[mem.ScopeID][]match)
		for k := op.base; k < op.base+op.count; k++ {
			pos := w.Position(k)
			s := w.Layout.ScopeOfRecord(pos)
			op.matches[s] = append(op.matches[s], match{key: k, pos: pos % w.Layout.RecordsPerScope()})
		}
	}
	return op.matches[scope]
}

// expectedResultLine builds the oracle bit-vector line for data array a of
// a scope under a scan op.
func (w *Workload) expectedResultLine(op *opSpec, scope mem.ScopeID, array int) []byte {
	line := make([]byte, mem.LineSize)
	for _, m := range w.matchesInScope(op, scope) {
		a, r := w.Layout.Slot(m.pos)
		if a == array {
			pimdb.SetResultBit(line, r, true)
		}
	}
	return line
}

// Validate sanity-checks workload structure (used by tests).
func (w *Workload) Validate() error {
	scans, inserts := 0, 0
	for _, op := range w.ops {
		switch op.kind {
		case opScan:
			scans++
			if op.count == 0 || op.count > uint64(w.P.MaxScanRecords) {
				return fmt.Errorf("scan count %d out of range", op.count)
			}
		case opInsert:
			inserts++
		}
	}
	if scans+inserts != w.P.Operations {
		return fmt.Errorf("op count mismatch")
	}
	return nil
}

// Ops returns (scans, inserts) counts.
func (w *Workload) Ops() (scans, inserts int) {
	for _, op := range w.ops {
		if op.kind == opScan {
			scans++
		} else {
			inserts++
		}
	}
	return
}

// SystemConfig returns the system configuration for this workload under a
// model: Default() with the scope count the database needs.
func (w *Workload) SystemConfig(base system.Config) system.Config {
	base.ScopeCount = w.Scopes
	base.Functional = w.P.Verify
	return base
}
