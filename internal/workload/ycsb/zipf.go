// Package ycsb implements the paper's YCSB short-range-scan workload
// (Table III): 95% scans / 5% inserts over a PIMDB-resident key-value
// table, scan base records zipfian-distributed, scan lengths uniform in
// [1,100], scopes partitioned evenly across worker threads (§VI-B).
package ycsb

import (
	"math"
	"sync"

	"bulkpim/internal/sim"
)

// Zipf is the standard YCSB zipfian generator (Gray et al.): item 0 is the
// most popular, with skew theta (YCSB default 0.99).
type Zipf struct {
	items      uint64
	theta      float64
	alpha      float64
	zetan      float64
	zeta2theta float64
	eta        float64
}

// zetaCache memoizes the expensive zeta(n) sums across workload builds
// (the harness builds the same record counts for every model).
var zetaCache sync.Map // key: [2]float64{n, theta} -> float64

func zeta(n uint64, theta float64) float64 {
	key := [2]float64{float64(n), theta}
	if v, ok := zetaCache.Load(key); ok {
		return v.(float64)
	}
	sum := 0.0
	for i := uint64(1); i <= n; i++ {
		sum += 1 / math.Pow(float64(i), theta)
	}
	zetaCache.Store(key, sum)
	return sum
}

// NewZipf builds a generator over [0, items).
func NewZipf(items uint64, theta float64) *Zipf {
	if items == 0 {
		panic("ycsb: zipf over zero items")
	}
	z := &Zipf{items: items, theta: theta}
	z.zetan = zeta(items, theta)
	z.zeta2theta = zeta(2, theta)
	z.alpha = 1 / (1 - theta)
	z.eta = (1 - math.Pow(2/float64(items), 1-theta)) / (1 - z.zeta2theta/z.zetan)
	return z
}

// Next draws the next zipfian value using r.
func (z *Zipf) Next(r *sim.Rand) uint64 {
	u := r.Float64()
	uz := u * z.zetan
	if uz < 1 {
		return 0
	}
	if uz < 1+math.Pow(0.5, z.theta) {
		return 1
	}
	v := uint64(float64(z.items) * math.Pow(z.eta*u-z.eta+1, z.alpha))
	if v >= z.items {
		v = z.items - 1
	}
	return v
}
