package ycsb

import (
	"testing"

	"bulkpim/internal/core"
	"bulkpim/internal/mem"
	"bulkpim/internal/sim"
	"bulkpim/internal/system"
)

func TestZipfRangeAndSkew(t *testing.T) {
	z := NewZipf(1000, 0.99)
	r := sim.NewRand(5)
	counts := make([]int, 1000)
	for i := 0; i < 50000; i++ {
		v := z.Next(r)
		if v >= 1000 {
			t.Fatalf("zipf out of range: %d", v)
		}
		counts[v]++
	}
	if counts[0] <= counts[500]*2 {
		t.Fatalf("no skew: item0=%d item500=%d", counts[0], counts[500])
	}
}

func TestZipfDeterministic(t *testing.T) {
	z1, z2 := NewZipf(5000, 0.99), NewZipf(5000, 0.99)
	r1, r2 := sim.NewRand(9), sim.NewRand(9)
	for i := 0; i < 1000; i++ {
		if z1.Next(r1) != z2.Next(r2) {
			t.Fatal("zipf nondeterministic")
		}
	}
}

func TestWorkloadGeneration(t *testing.T) {
	p := DefaultParams(100000)
	p.Operations = 400
	w := New(p)
	if err := w.Validate(); err != nil {
		t.Fatal(err)
	}
	scans, inserts := w.Ops()
	if scans+inserts != 400 {
		t.Fatal("op count")
	}
	// 95/5 split within tolerance.
	if inserts < 5 || inserts > 60 {
		t.Fatalf("inserts = %d, expected ~20", inserts)
	}
	// 100000 records / 32256 per scope -> 4 scopes.
	if w.Scopes != 4 {
		t.Fatalf("scopes = %d, want 4", w.Scopes)
	}
}

func TestPositionIsBijective(t *testing.T) {
	p := DefaultParams(10000)
	w := New(p)
	seen := make(map[int]bool, p.Records)
	for k := uint64(0); k < uint64(p.Records); k++ {
		pos := w.Position(k)
		if pos < 0 || pos >= p.Records {
			t.Fatalf("position %d out of range", pos)
		}
		if seen[pos] {
			t.Fatalf("collision at %d", pos)
		}
		seen[pos] = true
	}
}

func TestMatchesCoverScanRange(t *testing.T) {
	p := DefaultParams(100000)
	p.Operations = 50
	w := New(p)
	for _, op := range w.ops {
		if op.kind != opScan {
			continue
		}
		total := 0
		for s := 0; s < w.Scopes; s++ {
			total += len(w.matchesInScope(op, mem.ScopeID(s)))
		}
		if total != int(op.count) {
			t.Fatalf("scan [%d,+%d): %d matches, want %d", op.base, op.count, total, op.count)
		}
	}
}

// smallParams keeps functional runs fast: a couple of scopes, few ops.
func smallParams(ops int) Params {
	p := DefaultParams(2000)
	p.Operations = ops
	p.Threads = 2
	p.Verify = true
	p.Seed = 3
	return p
}

// The four proposed consistency models must execute the workload with zero
// verification failures: every scan reads exactly the oracle's result
// bit-vectors and field bytes, including after inserts.
func TestFunctionalCorrectnessProposedModels(t *testing.T) {
	if testing.Short() {
		t.Skip("functional PIM execution is slow")
	}
	w := New(smallParams(8))
	for _, model := range core.ProposedModels() {
		cfg := system.Default()
		cfg.Model = model
		cfg.Cores = 2
		res, err := Run(w, cfg)
		if err != nil {
			t.Fatalf("%v: %v", model, err)
		}
		if res.Violations != 0 {
			t.Errorf("%v: %d verification failures, want 0", model, res.Violations)
		}
		if res.Stats["pim.ops_executed"] == 0 {
			t.Errorf("%v: no PIM ops executed", model)
		}
	}
}

// The naive baseline must exhibit stale reads (its scans hit cached result
// lines from previous scans).
func TestFunctionalNaiveViolates(t *testing.T) {
	if testing.Short() {
		t.Skip("functional PIM execution is slow")
	}
	w := New(smallParams(6))
	cfg := system.Default()
	cfg.Model = core.Naive
	cfg.Cores = 2
	res, err := Run(w, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Violations == 0 {
		t.Error("naive baseline produced no violations; coherence must be broken without flushes")
	}
}

// SW-Flush keeps data MOSTLY coherent (the software flushes what it
// cached) but cannot guarantee ordering: a result read can overtake a PIM
// op in the reorder network. The paper's point (§I) is exactly that this
// window exists; it must be far rarer than the naive baseline's wholesale
// staleness, but it need not be zero.
func TestFunctionalSWFlushNarrowerThanNaive(t *testing.T) {
	if testing.Short() {
		t.Skip("functional PIM execution is slow")
	}
	w := New(smallParams(6))
	runModel := func(m core.Model) uint64 {
		cfg := system.Default()
		cfg.Model = m
		cfg.Cores = 2
		res, err := Run(w, cfg)
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		return res.Violations
	}
	naive := runModel(core.Naive)
	swflush := runModel(core.SWFlush)
	if naive == 0 {
		t.Fatal("naive baseline produced no violations")
	}
	if swflush*5 > naive {
		t.Errorf("swflush violations %d not well below naive %d", swflush, naive)
	}
}

// Timing-only smoke run at a larger scale for every variant.
func TestTimingRunAllModels(t *testing.T) {
	p := DefaultParams(200000)
	p.Operations = 6
	p.Threads = 4
	p.Verify = false
	w := New(p)
	var base sim.Tick
	for _, model := range core.AllVariants() {
		cfg := system.Default()
		cfg.Model = model
		res, err := Run(w, cfg)
		if err != nil {
			t.Fatalf("%v: %v", model, err)
		}
		if res.Cycles == 0 {
			t.Fatalf("%v: zero cycles", model)
		}
		if model == core.Naive {
			base = res.Cycles
		}
		if res.Stats["cpu.pim_issued"] == 0 {
			t.Fatalf("%v: no PIM ops issued", model)
		}
	}
	if base == 0 {
		t.Fatal("baseline missing")
	}
}
