package tpch

import (
	"testing"

	"bulkpim/internal/core"
	"bulkpim/internal/mem"
	"bulkpim/internal/pimdb"
	"bulkpim/internal/system"
)

// TestTableIV checks the query inventory against the paper's Table IV.
func TestTableIV(t *testing.T) {
	want := map[string]struct {
		scopes int
		full   bool
	}{
		"q1": {1832, true}, "q2": {66, false}, "q3": {2336, false},
		"q4": {2290, false}, "q5": {508, false}, "q6": {1832, true},
		"q7": {1882, false}, "q8": {566, false}, "q10": {2290, false},
		"q11": {4, false}, "q12": {1832, false}, "q14": {1832, false},
		"q15": {1832, false}, "q16": {62, false}, "q17": {62, false},
		"q19": {1894, false}, "q20": {2294, false}, "q21": {1832, false},
		"q22": {46, true},
	}
	qs := Queries()
	if len(qs) != 19 {
		t.Fatalf("%d queries, want 19 (q9, q13, q18 have no PIM section)", len(qs))
	}
	for _, q := range qs {
		w, ok := want[q.Name]
		if !ok {
			t.Fatalf("unexpected query %s", q.Name)
		}
		if q.Scopes != w.scopes || q.Full != w.full {
			t.Errorf("%s: scopes=%d full=%v, want %d/%v", q.Name, q.Scopes, q.Full, w.scopes, w.full)
		}
		if q.Runs != 10 {
			t.Errorf("%s: runs=%d, want 10", q.Name, q.Runs)
		}
		if len(q.Terms) == 0 {
			t.Errorf("%s: no predicate terms", q.Name)
		}
		if q.OpsPerScope() < 2 {
			t.Errorf("%s: implausible ops/scope", q.Name)
		}
	}
	// The paper singles out q2, q12, q19 as having more and longer PIM ops
	// per scope than other filter-only queries (§VII).
	q12, _ := QueryByName("q12")
	q14, _ := QueryByName("q14")
	q19, _ := QueryByName("q19")
	if q12.OpsPerScope() <= q14.OpsPerScope() || q19.OpsPerScope() <= q12.OpsPerScope() {
		t.Error("q19 > q12 > q14 ops/scope expected")
	}
}

func TestQueryByName(t *testing.T) {
	if _, ok := QueryByName("q6"); !ok {
		t.Fatal("q6 missing")
	}
	if _, ok := QueryByName("q9"); ok {
		t.Fatal("q9 must not exist (no PIM section)")
	}
}

// Functional check: the compiled PIM filter of a query produces exactly
// the oracle's match bits.
func TestCompiledFilterMatchesOracle(t *testing.T) {
	if testing.Short() {
		t.Skip("functional PIM execution is slow")
	}
	layout := pimdb.DefaultLayout()
	bk := mem.NewBacking()
	base := mem.DefaultPIMBase
	scope := mem.ScopeID(0)
	InitScope(bk, layout, base, scope)
	for _, name := range []string{"q6", "q12", "q19"} {
		q, _ := QueryByName(name)
		for _, op := range q.Compile(layout, base, true) {
			op.Apply(bk, 1)
		}
		line := make([]byte, mem.LineSize)
		matches := 0
		for a := 0; a < layout.DataArrays; a++ {
			bk.ReadLine(layout.ResultLine(base, a), line)
			for r := 0; r < layout.RecordsPerArray(); r++ {
				pos := a*layout.RecordsPerArray() + r
				want := q.Eval(scope, pos)
				if pimdb.ResultBit(line, r) != want {
					t.Fatalf("%s: record %d match=%v want %v", name, pos, pimdb.ResultBit(line, r), want)
				}
				if want {
					matches++
				}
			}
		}
		if matches == 0 || matches == layout.RecordsPerScope() {
			t.Errorf("%s: degenerate selectivity (%d matches)", name, matches)
		}
	}
}

// End-to-end functional run of a small query under every proposed model.
func TestFunctionalQueryAllModels(t *testing.T) {
	if testing.Short() {
		t.Skip("functional PIM execution is slow")
	}
	q, _ := QueryByName("q11") // 4 scopes: smallest
	w := NewWorkload(q, 2, 1.0, true)
	w.Runs = 2
	for _, model := range core.ProposedModels() {
		cfg := system.Default()
		cfg.Model = model
		cfg.Cores = 2
		res, err := Run(w, cfg)
		if err != nil {
			t.Fatalf("%v: %v", model, err)
		}
		if res.Violations != 0 {
			t.Errorf("%v: %d violations", model, res.Violations)
		}
		wantOps := float64(w.Scopes * q.OpsPerScope() * w.Runs)
		if got := res.Stats["pim.ops_executed"]; got != wantOps {
			t.Errorf("%v: %v PIM ops executed, want %v", model, got, wantOps)
		}
	}
}

// Timing smoke: every model completes a scaled q6 and full queries read
// less than filter queries.
func TestTimingRunsAndFullQueryReadsLess(t *testing.T) {
	cfg := system.Default()
	q6, _ := QueryByName("q6")   // full
	q14, _ := QueryByName("q14") // filter, same scope count
	run := func(q QuerySpec, model core.Model) system.Result {
		w := NewWorkload(q, 4, 0.02, false) // ~36 scopes, 1 run... scale
		w.Runs = 1
		c := cfg
		c.Model = model
		res, err := Run(w, c)
		if err != nil {
			t.Fatalf("%s/%v: %v", q.Name, model, err)
		}
		return res
	}
	for _, model := range core.AllVariants() {
		run(q14, model)
	}
	full := run(q6, core.Scope)
	filter := run(q14, core.Scope)
	if full.Stats["cpu.loads"] >= filter.Stats["cpu.loads"] {
		t.Errorf("full-query loads %v should be below filter loads %v",
			full.Stats["cpu.loads"], filter.Stats["cpu.loads"])
	}
}
