package tpch

import (
	"reflect"
	"testing"
)

// TestSnapshotRoundtrip: a restored workload equals the prepared one;
// mismatched construction inputs and garbage are explicit errors.
func TestSnapshotRoundtrip(t *testing.T) {
	q, ok := QueryByName("q6")
	if !ok {
		t.Fatal("q6 missing")
	}
	w := NewWorkload(q, 4, 0.02, false)
	data, err := w.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	got, err := FromSnapshot(data, q, 4, 0.02, false)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, w) {
		t.Fatalf("restored workload differs:\n%+v\nvs\n%+v", got, w)
	}

	if _, err := FromSnapshot(data, q, 8, 0.02, false); err == nil {
		t.Fatal("snapshot accepted under foreign thread count")
	}
	other, _ := QueryByName("q1")
	if _, err := FromSnapshot(data, other, 4, 0.02, false); err == nil {
		t.Fatal("snapshot accepted under foreign query")
	}
	if _, err := FromSnapshot([]byte("not gob"), q, 4, 0.02, false); err == nil {
		t.Fatal("garbage accepted as snapshot")
	}
}
