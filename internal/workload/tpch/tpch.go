// Package tpch implements the paper's TPC-H workload (§VI-B, Table IV):
// the PIM section of each query — filtering the involved relations with
// bulk-bitwise compare programs, or executing the whole query in PIM when a
// single relation is involved — followed by reading the results. Queries
// 9, 13 and 18 have no PIM section and are not evaluated, as in the paper.
//
// TPC-H data requires dbgen; per the substitution policy (DESIGN.md) the
// relations are synthetic: field values are deterministic pseudo-random
// integers over per-column domains, and each query's predicate structure
// (number of terms, compared widths, conjunction/disjunction shape)
// follows the TPC-H specification's WHERE clauses. Run-time behaviour
// depends on scope counts (Table IV, used verbatim), PIM ops per scope, op
// lengths, and result-read volume/pattern — all preserved.
package tpch

import (
	"bulkpim/internal/mem"
	"bulkpim/internal/pim"
	"bulkpim/internal/pimdb"
)

// Term is one predicate term of a query's PIM filter.
type Term struct {
	Field int
	Width int // compared bits (the field's full stored width)
	Pred  pim.Predicate
	Const uint64
	// Or combines this term with OR instead of AND (IN-lists,
	// disjunctions). Terms fold left.
	Or bool
}

// QuerySpec describes one query's PIM section.
type QuerySpec struct {
	Name   string
	Scopes int  // Table IV
	Full   bool // full-query section: aggregation in PIM, tiny result read
	Terms  []Term
	// AggMicroOps models the in-PIM aggregation length of full queries
	// (bit-serial multiply-accumulate over matched records).
	AggMicroOps int
	Runs        int // paper: each query ran ten times consecutively
}

// OpsPerScope returns how many PIM ops one execution issues per scope:
// one compare per term, one combine per extra term, one gather, plus the
// aggregate for full queries.
func (q QuerySpec) OpsPerScope() int {
	n := len(q.Terms) + (len(q.Terms) - 1) + 1
	if q.Full {
		n++
	}
	return n
}

// Synthetic column roles. Each field has a fixed domain and compare width;
// every predicate on a field compares the full stored width, so the
// bit-serial program and the oracle agree exactly.
const (
	fDate1 = 0 // 32-bit, uniform (ship/order dates)
	fDate2 = 1 // 32-bit, uniform (commit/receipt dates)
	fQty   = 2 // 16-bit, uniform [0, 51) (quantities, discounts, sizes)
	fFlag  = 3 // 16-bit, uniform [0, 25) (segments, nations, modes, brands)
	fKey   = 4 // 24-bit, uniform (part/supplier key prefixes, LIKE ranges)
)

// widthOfField returns the stored/compared width of a field.
func widthOfField(f int) int {
	switch f {
	case fDate1, fDate2:
		return 32
	case fQty, fFlag:
		return 16
	default:
		return 24
	}
}

// Queries returns the 19 evaluated queries with Table IV's scope counts
// and section kinds.
func Queries() []QuerySpec {
	andT := func(f int, p pim.Predicate, k uint64) Term {
		return Term{Field: f, Width: widthOfField(f), Pred: p, Const: k}
	}
	orT := func(f int, p pim.Predicate, k uint64) Term {
		return Term{Field: f, Width: widthOfField(f), Pred: p, Const: k, Or: true}
	}
	return []QuerySpec{
		{Name: "q1", Scopes: 1832, Full: true, Runs: 10, AggMicroOps: 6000,
			Terms: []Term{andT(fDate1, pim.PredLE, 0xC0000000)}},
		{Name: "q2", Scopes: 66, Runs: 10,
			Terms: []Term{andT(fFlag, pim.PredEQ, 15), andT(fKey, pim.PredGE, 0x200000), andT(fKey, pim.PredLT, 0x900000)}},
		{Name: "q3", Scopes: 2336, Runs: 10,
			Terms: []Term{andT(fFlag, pim.PredEQ, 3), andT(fDate1, pim.PredLT, 0x80000000)}},
		{Name: "q4", Scopes: 2290, Runs: 10,
			Terms: []Term{andT(fDate1, pim.PredGE, 0x40000000), andT(fDate1, pim.PredLT, 0x60000000)}},
		{Name: "q5", Scopes: 508, Runs: 10,
			Terms: []Term{andT(fFlag, pim.PredEQ, 2), andT(fDate1, pim.PredGE, 0x40000000), andT(fDate1, pim.PredLT, 0x80000000)}},
		{Name: "q6", Scopes: 1832, Full: true, Runs: 10, AggMicroOps: 3000,
			Terms: []Term{
				andT(fDate1, pim.PredGE, 0x40000000), andT(fDate1, pim.PredLT, 0x60000000),
				andT(fQty, pim.PredGE, 5), andT(fQty, pim.PredLE, 7),
				andT(fFlag, pim.PredLT, 24)}},
		{Name: "q7", Scopes: 1882, Runs: 10,
			Terms: []Term{andT(fFlag, pim.PredEQ, 4), orT(fFlag, pim.PredEQ, 9),
				andT(fDate1, pim.PredGE, 0x40000000), andT(fDate1, pim.PredLE, 0x80000000)}},
		{Name: "q8", Scopes: 566, Runs: 10,
			Terms: []Term{andT(fFlag, pim.PredEQ, 1), andT(fDate1, pim.PredGE, 0x40000000),
				andT(fDate1, pim.PredLE, 0x60000000), andT(fKey, pim.PredLT, 0x800000)}},
		{Name: "q10", Scopes: 2290, Runs: 10,
			Terms: []Term{andT(fDate1, pim.PredGE, 0x48000000), andT(fDate1, pim.PredLT, 0x58000000),
				andT(fFlag, pim.PredEQ, 1)}},
		{Name: "q11", Scopes: 4, Runs: 10,
			Terms: []Term{andT(fFlag, pim.PredEQ, 7)}},
		{Name: "q12", Scopes: 1832, Runs: 10,
			Terms: []Term{andT(fFlag, pim.PredEQ, 5), orT(fFlag, pim.PredEQ, 6),
				andT(fDate1, pim.PredGE, 0x48000000), andT(fDate1, pim.PredLT, 0x58000000),
				andT(fDate2, pim.PredLT, 0x80000000), andT(fDate2, pim.PredGE, 0x20000000)}},
		{Name: "q14", Scopes: 1832, Runs: 10,
			Terms: []Term{andT(fDate1, pim.PredGE, 0x46000000), andT(fDate1, pim.PredLT, 0x4C000000)}},
		{Name: "q15", Scopes: 1832, Runs: 10,
			Terms: []Term{andT(fDate1, pim.PredGE, 0x46000000), andT(fDate1, pim.PredLT, 0x49000000)}},
		{Name: "q16", Scopes: 62, Runs: 10,
			Terms: []Term{andT(fFlag, pim.PredNE, 4), andT(fKey, pim.PredLT, 0x800000),
				orT(fQty, pim.PredEQ, 3), orT(fQty, pim.PredEQ, 9), orT(fQty, pim.PredEQ, 14),
				orT(fQty, pim.PredEQ, 19), orT(fQty, pim.PredEQ, 23), orT(fQty, pim.PredEQ, 36),
				orT(fQty, pim.PredEQ, 45), orT(fQty, pim.PredEQ, 49)}},
		{Name: "q17", Scopes: 62, Runs: 10,
			Terms: []Term{andT(fFlag, pim.PredEQ, 11), andT(fQty, pim.PredEQ, 23)}},
		{Name: "q19", Scopes: 1894, Runs: 10,
			Terms: []Term{
				andT(fFlag, pim.PredEQ, 1), andT(fQty, pim.PredGE, 1), andT(fQty, pim.PredLE, 11),
				orT(fFlag, pim.PredEQ, 2), andT(fQty, pim.PredGE, 10), andT(fQty, pim.PredLE, 20),
				orT(fFlag, pim.PredEQ, 3), andT(fQty, pim.PredGE, 20), andT(fQty, pim.PredLE, 30),
				andT(fKey, pim.PredGE, 0x100000), andT(fKey, pim.PredLE, 0xF00000)}},
		{Name: "q20", Scopes: 2294, Runs: 10,
			Terms: []Term{andT(fKey, pim.PredGE, 0x100000), andT(fKey, pim.PredLT, 0x600000),
				andT(fDate1, pim.PredGE, 0x46000000)}},
		{Name: "q21", Scopes: 1832, Runs: 10,
			Terms: []Term{andT(fFlag, pim.PredEQ, 6), andT(fDate2, pim.PredGT, 0x80000000)}},
		{Name: "q22", Scopes: 46, Full: true, Runs: 10, AggMicroOps: 2000,
			Terms: []Term{andT(fFlag, pim.PredEQ, 13), orT(fFlag, pim.PredEQ, 21),
				orT(fFlag, pim.PredEQ, 23), orT(fFlag, pim.PredEQ, 11),
				orT(fFlag, pim.PredEQ, 20), orT(fFlag, pim.PredEQ, 18), orT(fFlag, pim.PredEQ, 17),
				andT(fQty, pim.PredGT, 30)}},
	}
}

// QueryByName finds a query spec.
func QueryByName(name string) (QuerySpec, bool) {
	for _, q := range Queries() {
		if q.Name == name {
			return q, true
		}
	}
	return QuerySpec{}, false
}

// FieldValue is the raw synthetic generator for field f of the record at
// (scope, pos).
func FieldValue(scope mem.ScopeID, pos, f int) uint64 {
	x := uint64(scope)*0x9E3779B97F4A7C15 + uint64(pos)*0xBF58476D1CE4E5B9 + uint64(f)*0x94D049BB133111EB
	x ^= x >> 29
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 32
	return x
}

// storedValue maps the raw generator into the field's domain. It doubles
// as the verification oracle's view of the data.
func storedValue(scope mem.ScopeID, pos, f int) uint64 {
	h := FieldValue(scope, pos, f)
	switch f {
	case fDate1, fDate2:
		return h & 0xFFFFFFFF
	case fQty:
		return h % 51
	case fFlag:
		return h % 25
	default:
		return h & 0xFFFFFF
	}
}

// InitScope writes synthetic records for one scope (functional runs).
func InitScope(bk *mem.Backing, layout pimdb.Layout, scopeBase mem.Addr, scope mem.ScopeID) {
	rows := layout.RecordsPerScope()
	for pos := 0; pos < rows; pos++ {
		line := layout.EncodeRecord(uint64(pos)+1, nil)
		for f := 0; f < layout.Fields; f++ {
			layout.EncodeFieldBE(line, f, widthOfField(f), storedValue(scope, pos, f))
		}
		bk.WriteLine(layout.RecordLine(scopeBase, pos), line)
	}
}

// Eval evaluates the query's predicate on a record (the oracle): terms
// fold left, OR terms join with OR, the rest with AND.
func (q QuerySpec) Eval(scope mem.ScopeID, pos int) bool {
	result := false
	for i, t := range q.Terms {
		term := t.Pred.Eval(storedValue(scope, pos, t.Field), t.Const)
		switch {
		case i == 0:
			result = term
		case t.Or:
			result = result || term
		default:
			result = result && term
		}
	}
	return result
}

// Compile builds the per-scope PIM op sequence of the query: one compare
// op per term, a combine per extra term, the gather, and the aggregate for
// full-query sections — the fine-grained sequence §IV-A's scope buffer
// exploits.
func (q QuerySpec) Compile(layout pimdb.Layout, scopeBase mem.Addr, functional bool) []*mem.PIMProgram {
	var ops []*mem.PIMProgram
	for i, t := range q.Terms {
		dst := 0
		if i > 0 {
			dst = 1
		}
		spec := pimdb.CompareSpec{Field: t.Field, Pred: t.Pred, WidthBits: t.Width, Const: t.Const, Dst: dst}
		ops = append(ops, layout.CompileCompare(scopeBase, spec, functional))
		if i > 0 {
			op := pim.OpAND
			name := "and"
			if t.Or {
				op = pim.OpOR
				name = "or"
			}
			ops = append(ops, layout.CompileCombine(scopeBase, pimdb.CombineOp{Op: op, OpName: name, A: 0, B: 1, To: 0}, functional))
		}
	}
	ops = append(ops, layout.CompileGather(scopeBase, 0, functional))
	if q.Full {
		ops = append(ops, layout.CompileAggregate(scopeBase, 0, fDate2, q.AggMicroOps, functional))
	}
	return ops
}
