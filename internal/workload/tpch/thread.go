package tpch

import (
	"bulkpim/internal/core"
	"bulkpim/internal/cpu"
	"bulkpim/internal/mem"
	"bulkpim/internal/pimdb"
	"bulkpim/internal/system"
)

// Workload is one query prepared for execution.
type Workload struct {
	Q       QuerySpec
	Layout  pimdb.Layout
	Scopes  int // possibly scaled down from Table IV
	Runs    int
	Threads int
	Verify  bool
}

// scaledScopes and scaledRuns derive a workload's scope and run counts
// from the query spec and scale — shared by NewWorkload and the
// snapshot verification in FromSnapshot, so the two cannot drift.
func scaledScopes(q QuerySpec, nThreads int, scale float64) int {
	scopes := int(float64(q.Scopes) * scale)
	if scopes < nThreads {
		scopes = nThreads
	}
	return scopes
}

func scaledRuns(q QuerySpec, scale float64) int {
	runs := int(float64(q.Runs)*scale + 0.5)
	if runs < 1 {
		runs = 1
	}
	return runs
}

// NewWorkload prepares query q for nThreads workers. scale (0 < scale <= 1)
// shrinks the scope count and run count for quick runs; 1.0 is paper scale.
func NewWorkload(q QuerySpec, nThreads int, scale float64, verify bool) *Workload {
	if scale <= 0 || scale > 1 {
		panic("tpch: scale must be in (0,1]")
	}
	return &Workload{
		Q: q, Layout: pimdb.DefaultLayout(), Scopes: scaledScopes(q, nThreads, scale),
		Runs: scaledRuns(q, scale), Threads: nThreads, Verify: verify,
	}
}

// SystemConfig sizes the system for the workload.
func (w *Workload) SystemConfig(base system.Config) system.Config {
	base.ScopeCount = w.Scopes
	base.Functional = w.Verify
	return base
}

// InitBacking writes the synthetic relation (functional runs only; writes
// every record of every scope).
func (w *Workload) InitBacking(bk *mem.Backing, scopes *mem.ScopeMap) {
	for s := 0; s < w.Scopes; s++ {
		InitScope(bk, w.Layout, scopes.ScopeBase(mem.ScopeID(s)), mem.ScopeID(s))
	}
}

// BuildThreads returns the worker threads for one run on sys.
func (w *Workload) BuildThreads(sys *system.System) []cpu.Thread {
	bar := cpu.NewBarrier(w.Threads)
	out := make([]cpu.Thread, w.Threads)
	for t := 0; t < w.Threads; t++ {
		th := &thread{w: w, sys: sys, id: t, bar: bar}
		for s := 0; s < w.Scopes; s++ {
			if s%w.Threads == t {
				th.owned = append(th.owned, mem.ScopeID(s))
			}
		}
		if sys.Cfg.Model == core.SWFlush {
			th.touched = make(map[mem.ScopeID][]mem.LineAddr)
			th.touchedSet = make(map[mem.LineAddr]bool)
		}
		out[t] = th
	}
	return out
}

// Run executes the query workload on a fresh system built from cfg.
func Run(w *Workload, cfg system.Config) (system.Result, error) {
	cfg = w.SystemConfig(cfg)
	s := system.New(cfg)
	if cfg.Functional {
		w.InitBacking(s.Backing, s.Scopes)
	}
	return s.Run(w.BuildThreads(s))
}

type thread struct {
	w     *Workload
	sys   *system.System
	id    int
	owned []mem.ScopeID
	bar   *cpu.Barrier

	run     int
	pending []cpu.Instr
	pos     int

	touched    map[mem.ScopeID][]mem.LineAddr
	touchedSet map[mem.LineAddr]bool
}

// Next implements cpu.Thread.
func (th *thread) Next() (cpu.Instr, bool) {
	for th.pos >= len(th.pending) {
		if th.run >= th.w.Runs {
			return cpu.Instr{}, false
		}
		th.pending = th.pending[:0]
		th.pos = 0
		th.emitRun()
		th.run++
	}
	in := th.pending[th.pos]
	th.pos++
	return in, true
}

func (th *thread) emit(in cpu.Instr) { th.pending = append(th.pending, in) }

func (th *thread) touch(scope mem.ScopeID, line mem.LineAddr) {
	if th.touched == nil || th.touchedSet[line] {
		return
	}
	th.touchedSet[line] = true
	th.touched[scope] = append(th.touched[scope], line)
}

func (th *thread) emitRun() {
	w := th.w
	model := th.sys.Cfg.Model
	functional := th.sys.Cfg.Functional

	// SW-Flush software coherence before re-running the PIM section.
	if th.touched != nil {
		for _, s := range th.owned {
			if lines := th.touched[s]; len(lines) > 0 {
				th.emit(cpu.Instr{Kind: cpu.InstrFlush, Lines: lines})
				for _, l := range lines {
					delete(th.touchedSet, l)
				}
				th.touched[s] = nil
			}
		}
	}

	// PIM section: the query's op sequence, duplicated per scope.
	var shared []*mem.PIMProgram
	if !functional {
		shared = w.Q.Compile(w.Layout, 0, false)
	}
	for _, s := range th.owned {
		progs := shared
		if functional {
			progs = w.Q.Compile(w.Layout, th.sys.Scopes.ScopeBase(s), true)
		}
		for _, p := range progs {
			th.emit(cpu.Instr{Kind: cpu.InstrPIMOp, Scope: s, Prog: p, Label: p.Name})
		}
	}

	// Read phase: "only the PIM computation result is read, resulting in
	// a regular read pattern" (§VI-B). Filter sections read the match
	// bit-vectors; full-query sections read only the aggregates.
	for _, s := range th.owned {
		scope := s
		base := th.sys.Scopes.ScopeBase(scope)
		if model.NeedsScopeFence() {
			th.emit(cpu.Instr{Kind: cpu.InstrScopeFence, Scope: scope})
		}
		var burst cpu.Instr
		if w.Q.Full {
			agg := w.Layout.AggLine(base)
			burst = cpu.Instr{Kind: cpu.InstrLoadBurst,
				Burst: []cpu.BurstRange{{Start: agg.Addr(), Bytes: mem.LineSize}}}
			th.touch(scope, agg)
		} else {
			start, bytes := w.Layout.ResultRegion(base)
			burst = cpu.Instr{Kind: cpu.InstrLoadBurst,
				Burst: []cpu.BurstRange{{Start: start, Bytes: bytes}}}
			if w.Verify {
				burst.OnData = th.resultVerifier(scope, start)
			}
			if th.touched != nil {
				for l := mem.LineOf(start); l < mem.LineOf(start+mem.Addr(bytes)); l += mem.LineSize {
					th.touch(scope, l)
				}
			}
		}
		th.emit(burst)
	}
	th.emit(cpu.Instr{Kind: cpu.InstrBarrier, Barrier: th.bar})
}

func (th *thread) resultVerifier(scope mem.ScopeID, resStart mem.Addr) func(mem.LineAddr, []byte) {
	w := th.w
	return func(line mem.LineAddr, data []byte) {
		array := int(line.Addr()-resStart) / mem.LineSize
		if array < 0 || array >= w.Layout.DataArrays {
			return
		}
		for r := 0; r < w.Layout.RecordsPerArray(); r++ {
			pos := array*w.Layout.RecordsPerArray() + r
			want := w.Q.Eval(scope, pos)
			if pimdb.ResultBit(data, r) != want {
				th.sys.Violations.Inc()
				return // one violation per line is enough signal
			}
		}
	}
}
