package tpch

// Workload snapshot serialization for the content-addressed snapshot
// store (internal/snapshot). A TPC-H workload is cheap to construct
// next to YCSB's, but the snapshot path treats every workload kind
// uniformly: the "zero workload generations on a warm run" invariant
// the harness gates in CI holds suite-wide, not just for the expensive
// databases.

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"reflect"
)

// wireVersion guards the gob shape of Workload (and the QuerySpec /
// Term structs it embeds). Bump on any incompatible change.
const wireVersion = "tpch-wire-v1"

// wireWorkload wraps the workload with the wire version.
type wireWorkload struct {
	Version string
	W       Workload
}

// Snapshot serializes the prepared workload.
func (w *Workload) Snapshot() ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(wireWorkload{Version: wireVersion, W: *w}); err != nil {
		return nil, fmt.Errorf("tpch: snapshot: %w", err)
	}
	return buf.Bytes(), nil
}

// FromSnapshot reconstructs a workload serialized by Snapshot and
// verifies it was built from the same inputs — a stale or mislabeled
// snapshot regenerates instead of silently running a different query
// section. Verification compares the stored fields against the
// requested inputs (and the scaled scope/run counts NewWorkload
// derives) without reconstructing the workload.
func FromSnapshot(data []byte, q QuerySpec, nThreads int, scale float64, verify bool) (*Workload, error) {
	var ww wireWorkload
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&ww); err != nil {
		return nil, fmt.Errorf("tpch: snapshot decode: %w", err)
	}
	if ww.Version != wireVersion {
		return nil, fmt.Errorf("tpch: snapshot wire version %q, want %q", ww.Version, wireVersion)
	}
	w := &ww.W
	if !reflect.DeepEqual(w.Q, q) || w.Threads != nThreads || w.Verify != verify ||
		w.Scopes != scaledScopes(q, nThreads, scale) || w.Runs != scaledRuns(q, scale) {
		return nil, fmt.Errorf("tpch: snapshot %s does not match requested workload", ww.W.Q.Name)
	}
	return w, nil
}
