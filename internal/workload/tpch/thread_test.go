package tpch

import (
	"testing"

	"bulkpim/internal/core"
	"bulkpim/internal/cpu"
	"bulkpim/internal/system"
)

func drain(t *testing.T, th cpu.Thread, limit int) []cpu.Instr {
	t.Helper()
	var out []cpu.Instr
	for i := 0; i < limit; i++ {
		in, ok := th.Next()
		if !ok {
			return out
		}
		out = append(out, in)
	}
	t.Fatalf("thread did not terminate within %d instructions", limit)
	return nil
}

func TestThreadStructureFilterQuery(t *testing.T) {
	q, _ := QueryByName("q12")
	w := NewWorkload(q, 2, 1.0, false)
	w.Scopes = 8 // shrink for the test
	w.Runs = 3
	cfg := w.SystemConfig(system.Default())
	cfg.Model = core.Store
	s := system.New(cfg)
	threads := w.BuildThreads(s)
	instrs := drain(t, threads[0], 100000)
	var pims, bursts, barriers int
	for _, in := range instrs {
		switch in.Kind {
		case cpu.InstrPIMOp:
			pims++
		case cpu.InstrLoadBurst:
			bursts++
		case cpu.InstrBarrier:
			barriers++
		}
	}
	// Thread 0 owns 4 of 8 scopes; q12 has 12 ops/scope; 3 runs.
	if pims != 3*4*q.OpsPerScope() {
		t.Errorf("pim instrs = %d, want %d", pims, 3*4*q.OpsPerScope())
	}
	if bursts != 3*4 {
		t.Errorf("bursts = %d, want %d (one result region per scope per run)", bursts, 3*4)
	}
	if barriers != 3 {
		t.Errorf("barriers = %d, want 3", barriers)
	}
}

func TestFullQueryReadsOnlyAggregates(t *testing.T) {
	q, _ := QueryByName("q6")
	w := NewWorkload(q, 1, 1.0, false)
	w.Scopes = 2
	w.Runs = 1
	cfg := w.SystemConfig(system.Default())
	cfg.Model = core.Atomic
	s := system.New(cfg)
	instrs := drain(t, w.BuildThreads(s)[0], 100000)
	for _, in := range instrs {
		if in.Kind != cpu.InstrLoadBurst {
			continue
		}
		total := 0
		for _, r := range in.Burst {
			total += r.Bytes
		}
		if total > 64 {
			t.Fatalf("full-query burst reads %d bytes; must read only the aggregate line", total)
		}
	}
}

func TestScaledWorkloadBounds(t *testing.T) {
	q, _ := QueryByName("q3") // 2336 scopes
	w := NewWorkload(q, 4, 0.01, false)
	if w.Scopes < 4 || w.Scopes > 24 {
		t.Fatalf("scaled scopes = %d", w.Scopes)
	}
	if w.Runs < 1 {
		t.Fatal("runs must be at least 1")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("scale > 1 must panic")
		}
	}()
	NewWorkload(q, 4, 1.5, false)
}
