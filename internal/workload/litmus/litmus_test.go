package litmus

import (
	"testing"

	"bulkpim/internal/core"
	"bulkpim/internal/sim"
)

// The SW-Flush baseline must exhibit the Fig. 1 violation for some
// adversary timing: a stale read of A after observing the PIM-written B,
// and a cycle in the happens-before relation.
func TestFig1SWFlushVulnerable(t *testing.T) {
	outs, err := SweepFig1(core.SWFlush, DefaultSweep())
	if err != nil {
		t.Fatal(err)
	}
	completed := 0
	for _, o := range outs {
		if o.Completed {
			completed++
		}
	}
	if completed == 0 {
		t.Fatal("checker never completed under swflush")
	}
	stale, cycle := Vulnerable(outs)
	if !stale {
		t.Error("swflush: no adversary timing produced a stale read; Fig. 1 not reproduced")
	}
	if !cycle {
		t.Error("swflush: no happens-before cycle detected")
	}
}

// The four proposed models must be invulnerable at EVERY adversary timing.
func TestFig1ProposedModelsSafe(t *testing.T) {
	for _, model := range core.ProposedModels() {
		outs, err := SweepFig1(model, DefaultSweep())
		if err != nil {
			t.Fatalf("%v: %v", model, err)
		}
		for _, o := range outs {
			if !o.Completed {
				t.Errorf("%v delay=%d: checker never observed the PIM value", model, o.AdversaryDelay)
				continue
			}
			if o.StaleRead {
				t.Errorf("%v delay=%d: STALE READ (A=%d after B=%d)", model, o.AdversaryDelay, o.ValueA, o.ValueB)
			}
			if o.Cycle != nil {
				t.Errorf("%v delay=%d: happens-before cycle: %v", model, o.AdversaryDelay, o.Cycle)
			}
		}
	}
}

// The naive baseline breaks differently: the writer's stores are never
// flushed, so the PIM op computes on stale memory and/or the checker polls
// the writer's dirty copy forever.
func TestFig1NaiveBroken(t *testing.T) {
	outs, err := SweepFig1(core.Naive, []sim.Tick{0, 400, 800, 1200})
	if err != nil {
		t.Fatal(err)
	}
	broken := false
	for _, o := range outs {
		if !o.Completed || o.StaleRead || o.Cycle != nil {
			broken = true
		}
	}
	if !broken {
		t.Error("naive baseline behaved correctly in Fig. 1; expected breakage")
	}
}
