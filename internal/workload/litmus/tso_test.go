package litmus

import "testing"

// TSO allows the store-buffering relaxed outcome: without fences, some
// interleaving must show both threads reading the pre-store values (loads
// bypass the store buffer).
func TestSBRelaxedOutcomeObservable(t *testing.T) {
	bothZero, err := SweepStoreBuffering(false, 20)
	if err != nil {
		t.Fatal(err)
	}
	if bothZero == 0 {
		t.Error("store-buffering relaxed outcome never observed; TSO store buffers missing?")
	}
}

// With mfences between store and load, the relaxed outcome is forbidden.
func TestSBFencedForbidden(t *testing.T) {
	bothZero, err := SweepStoreBuffering(true, 20)
	if err != nil {
		t.Fatal(err)
	}
	if bothZero != 0 {
		t.Errorf("fenced store-buffering produced the forbidden outcome %d times", bothZero)
	}
}

// Plain message passing must never fail under TSO (no store-store or
// load-load reordering).
func TestMPPlainNeverViolates(t *testing.T) {
	completed := 0
	for seed := uint64(1); seed <= 20; seed++ {
		o, err := RunMPPlain(seed)
		if err != nil {
			t.Fatal(err)
		}
		if o.Completed {
			completed++
		}
		if o.Violation {
			t.Fatalf("seed %d: TSO MP violation (flag new, data old)", seed)
		}
	}
	if completed == 0 {
		t.Fatal("reader never saw the flag")
	}
}
