// Package litmus reproduces the paper's §I / Fig. 1 scenario as an
// executable litmus test: a thread writes A and B, makes them visible to
// the PIM memory, and issues a PIM op that rewrites both; an adversarial
// agent (standing in for "another thread or a prefetcher") re-fetches A
// into the cache inside the window between the flushes and the PIM op.
// A checker thread then polls B until it observes the PIM-written value
// and finally reads A.
//
// Under the SW-Flush baseline the checker can observe new-B followed by
// old-A — a stale cache hit that closes a happens-before cycle (the
// "cyclic ordering without a well-defined happen-before relation"). Under
// the four proposed models the scan-and-flush is atomic with the PIM op,
// so the outcome is impossible at every adversary timing.
package litmus

import (
	"fmt"

	"bulkpim/internal/core"
	"bulkpim/internal/cpu"
	"bulkpim/internal/mem"
	"bulkpim/internal/sim"
	"bulkpim/internal/system"
)

// Outcome of one Fig. 1 run.
type Outcome struct {
	Model          core.Model
	AdversaryDelay sim.Tick
	// Completed: the checker eventually observed the PIM-written B.
	Completed bool
	// StaleRead: the checker observed new B and then old A — the Fig. 1
	// violation.
	StaleRead bool
	// Cycle is the happens-before cycle found in the execution, if any.
	Cycle *core.Cycle
	// ValueA/ValueB are the checker's final observations.
	ValueA, ValueB byte
}

func (o Outcome) String() string {
	return fmt.Sprintf("model=%s delay=%d completed=%v stale=%v cycle=%v",
		o.Model, o.AdversaryDelay, o.Completed, o.StaleRead, o.Cycle != nil)
}

const (
	initVal  = 0
	storeVal = 1 // A0 / B0
	pimVal   = 2 // A1 / B1
)

// RunFig1 executes the scenario under model with the adversary's load of A
// issued after adversaryDelay cycles.
func RunFig1(model core.Model, adversaryDelay sim.Tick) (Outcome, error) {
	cfg := system.Default()
	cfg.Model = model
	cfg.Cores = 3
	cfg.ScopeCount = 2
	cfg.Functional = true
	cfg.TrackHB = true
	cfg.LLCWays = 4 // keep conflict-eviction sets small
	s := system.New(cfg)

	scope := mem.ScopeID(0)
	base := s.Scopes.ScopeBase(scope)
	addrA := base + 0x1000
	addrB := base + 0x2000
	lineA, lineB := mem.LineOf(addrA), mem.LineOf(addrB)

	hb := s.HB
	prog := &mem.PIMProgram{
		Name:     "write_A1_B1",
		MicroOps: 64,
		Apply: func(bk *mem.Backing, w uint64) {
			bk.SetByte(addrA, pimVal)
			bk.SetWriter(lineA, w)
			bk.SetByte(addrB, pimVal)
			bk.SetWriter(lineB, w)
			hb.RecordWrite(w, lineA)
			hb.RecordWrite(w, lineB)
		},
	}

	// Writer thread: Fig. 1's code.
	var wInstrs []cpu.Instr
	wInstrs = append(wInstrs,
		cpu.Instr{Kind: cpu.InstrStore, Addr: addrA, Data: []byte{storeVal}, Label: "W(A)=A0"},
		cpu.Instr{Kind: cpu.InstrFenceFull},
		cpu.Instr{Kind: cpu.InstrStore, Addr: addrB, Data: []byte{storeVal}, Label: "W(B)=B0"},
		cpu.Instr{Kind: cpu.InstrFenceFull},
	)
	if model == core.SWFlush {
		wInstrs = append(wInstrs,
			cpu.Instr{Kind: cpu.InstrFlush, Lines: []mem.LineAddr{lineA, lineB}},
			cpu.Instr{Kind: cpu.InstrFenceFull},
		)
	}
	if model.NeedsScopeFence() {
		wInstrs = append(wInstrs, cpu.Instr{Kind: cpu.InstrScopeFence, Scope: scope})
	}
	wInstrs = append(wInstrs, cpu.Instr{Kind: cpu.InstrPIMOp, Scope: scope, Prog: prog, Label: "PIMop"})
	writer := &cpu.SliceThread{Instrs: wInstrs}

	// Adversary: a timed prefetch of A.
	adversary := &cpu.SliceThread{Instrs: []cpu.Instr{
		{Kind: cpu.InstrCompute, Cycles: adversaryDelay},
		{Kind: cpu.InstrLoad, Addr: addrA, Label: "prefetch(A)"},
	}}

	out := Outcome{Model: model, AdversaryDelay: adversaryDelay}
	checker := newChecker(s, scope, addrA, addrB, &out)

	if _, err := s.Run([]cpu.Thread{writer, adversary, checker}); err != nil {
		return out, err
	}
	out.Cycle = hb.FindCycle()
	return out, nil
}

// newChecker builds the polling thread: read B until it returns the PIM
// value (evicting B between polls so each read refetches), then read A.
func newChecker(s *system.System, scope mem.ScopeID, addrA, addrB mem.Addr, out *Outcome) cpu.Thread {
	lineB := mem.LineOf(addrB)
	offB := int(addrB - lineB.Addr())
	offA := int(addrA - mem.LineOf(addrA).Addr())

	// Conflict lines: same LLC set as B, outside the PIM region. The LLC
	// set stride is LLCSets lines; multiples also share the (smaller,
	// power-of-two) L1 set.
	stride := uint64(s.Cfg.LLCSets) * mem.LineSize
	setOff := uint64(lineB) % stride
	var evict []cpu.BurstRange
	for k := 0; k < s.Cfg.LLCWays+1; k++ {
		evict = append(evict, cpu.BurstRange{
			Start: mem.Addr(uint64(k)*stride + setOff), Bytes: 8})
	}

	const maxPolls = 400
	state := 0 // 0: poll B, 1: evict, 2: read A, 3: done
	polls := 0
	var sawB byte
	return cpu.FuncThread(func() (cpu.Instr, bool) {
		switch state {
		case 0:
			state = 1
			return cpu.Instr{Kind: cpu.InstrLoad, Addr: addrB, Label: "R(B)",
				OnData: func(_ mem.LineAddr, d []byte) {
					sawB = d[offB]
					if sawB == pimVal {
						state = 2
					}
				}}, true
		case 1:
			polls++
			if polls > maxPolls {
				return cpu.Instr{}, false // give up: Completed stays false
			}
			state = 0
			return cpu.Instr{Kind: cpu.InstrLoadBurst, Burst: evict}, true
		case 2:
			state = 3
			out.Completed = true
			out.ValueB = sawB
			return cpu.Instr{Kind: cpu.InstrLoad, Addr: addrA, Label: "R(A)",
				OnData: func(_ mem.LineAddr, d []byte) {
					out.ValueA = d[offA]
					if out.ValueA != pimVal {
						out.StaleRead = true
					}
				}}, true
		default:
			return cpu.Instr{}, false
		}
	})
}

// SweepFig1 runs the scenario across adversary timings and returns every
// outcome. A model is vulnerable if ANY timing produces a stale read or a
// happens-before cycle.
func SweepFig1(model core.Model, delays []sim.Tick) ([]Outcome, error) {
	var outs []Outcome
	for _, d := range delays {
		o, err := RunFig1(model, d)
		if err != nil {
			return outs, err
		}
		outs = append(outs, o)
	}
	return outs, nil
}

// DefaultSweep covers the flush-to-PIM-execution window.
func DefaultSweep() []sim.Tick {
	var out []sim.Tick
	for d := sim.Tick(0); d <= 4000; d += 200 {
		out = append(out, d)
	}
	return out
}

// Vulnerable summarizes a sweep: any stale read or cycle.
func Vulnerable(outs []Outcome) (stale, cycle bool) {
	for _, o := range outs {
		if o.StaleRead {
			stale = true
		}
		if o.Cycle != nil {
			cycle = true
		}
	}
	return
}
