package litmus

import (
	"bulkpim/internal/core"
	"bulkpim/internal/cpu"
	"bulkpim/internal/mem"
	"bulkpim/internal/system"
)

// Additional litmus shapes beyond Fig. 1: message passing through a PIM
// op, and cross-scope PIM-op ordering with and without the dedicated PIM
// fence of [21]. Together with Fig. 1 they exercise every ordering rule of
// Table I observably.

// MPOutcome reports a message-passing run: thread 0 performs a PIM op on
// scope S (the "data") and then sets a flag with a plain store; thread 1
// spins on the flag and reads the PIM op's output.
type MPOutcome struct {
	Model     core.Model
	Completed bool
	// StaleData: the flag was observed but the PIM output was not — the
	// PIM op reordered after the flag store.
	StaleData bool
}

// RunMessagePassing executes the MP shape. Under the atomic model the
// PIM-op -> store order is guaranteed, so StaleData must never occur.
// Under scope/scope-relaxed the reorder IS allowed unless software adds
// the dedicated fences — run with fence=true to restore the guarantee.
func RunMessagePassing(model core.Model, fence bool) (MPOutcome, error) {
	cfg := system.Default()
	cfg.Model = model
	cfg.Cores = 2
	cfg.ScopeCount = 2
	cfg.Functional = true
	s := system.New(cfg)

	scope := mem.ScopeID(0)
	data := s.Scopes.ScopeBase(scope) + 0x1000
	flag := mem.Addr(0x4000) // non-PIM memory

	prog := &mem.PIMProgram{
		Name: "produce", MicroOps: 32,
		Apply: func(bk *mem.Backing, w uint64) {
			bk.SetByte(data, pimVal)
			bk.SetWriter(mem.LineOf(data), w)
		},
	}

	var wInstrs []cpu.Instr
	wInstrs = append(wInstrs, cpu.Instr{Kind: cpu.InstrPIMOp, Scope: scope, Prog: prog, Label: "PIM(data)"})
	if fence {
		if model.NeedsScopeFence() {
			wInstrs = append(wInstrs, cpu.Instr{Kind: cpu.InstrScopeFence, Scope: scope})
		}
		if model.NeedsPIMFence() {
			wInstrs = append(wInstrs, cpu.Instr{Kind: cpu.InstrFencePIM})
		}
		wInstrs = append(wInstrs, cpu.Instr{Kind: cpu.InstrFenceFull})
	}
	wInstrs = append(wInstrs, cpu.Instr{Kind: cpu.InstrStore, Addr: flag, Data: []byte{1}, Label: "W(flag)"})
	writer := &cpu.SliceThread{Instrs: wInstrs}

	out := MPOutcome{Model: model}
	// Reader: spin on flag (with same-line refetches forced by eviction),
	// then read data.
	lineFlag := mem.LineOf(flag)
	stride := uint64(cfg.LLCSets) * mem.LineSize
	setOff := uint64(lineFlag) % stride
	var evict []cpu.BurstRange
	for k := 0; k < cfg.LLCWays+1; k++ {
		evict = append(evict, cpu.BurstRange{Start: mem.Addr(uint64(k+1)*stride + setOff), Bytes: 8})
	}
	state := 0
	polls := 0
	var flagSeen byte
	reader := cpu.FuncThread(func() (cpu.Instr, bool) {
		switch state {
		case 0:
			state = 1
			return cpu.Instr{Kind: cpu.InstrLoad, Addr: flag,
				OnData: func(_ mem.LineAddr, d []byte) {
					flagSeen = d[int(flag)%mem.LineSize]
					if flagSeen == 1 {
						state = 2
					}
				}}, true
		case 1:
			polls++
			if polls > 400 {
				return cpu.Instr{}, false
			}
			state = 0
			return cpu.Instr{Kind: cpu.InstrLoadBurst, Burst: evict}, true
		case 2:
			state = 3
			out.Completed = true
			return cpu.Instr{Kind: cpu.InstrLoad, Addr: data,
				OnData: func(_ mem.LineAddr, d []byte) {
					if d[int(data)%mem.LineSize] != pimVal {
						out.StaleData = true
					}
				}}, true
		default:
			return cpu.Instr{}, false
		}
	})

	if _, err := s.Run([]cpu.Thread{writer, reader}); err != nil {
		return out, err
	}
	return out, nil
}

// CrossScopeOutcome reports the PIM-PIM cross-scope ordering shape:
// thread 0 issues PIM(S0) then PIM(S1); thread 1 polls S1's output and
// then reads S0's. If S0's output is missing after S1's appeared, the two
// PIM ops reordered.
type CrossScopeOutcome struct {
	Model     core.Model
	Fence     bool
	Completed bool
	Reordered bool
}

// RunCrossScopePIM executes the shape, optionally with the dedicated PIM
// fence between the two ops. The scope model allows the reorder without
// the fence (Table I) and must forbid it with the fence; the atomic and
// store models forbid it always.
func RunCrossScopePIM(model core.Model, fence bool, jitterSeed uint64) (CrossScopeOutcome, error) {
	cfg := system.Default()
	cfg.Model = model
	cfg.Cores = 2
	cfg.ScopeCount = 2
	cfg.Functional = true
	cfg.Seed = jitterSeed
	// Aggressive network jitter makes the reorder observable when allowed.
	cfg.CoreLLCJitter = 64
	s := system.New(cfg)

	s0, s1 := mem.ScopeID(0), mem.ScopeID(1)
	out0 := s.Scopes.ScopeBase(s0) + 0x1000
	out1 := s.Scopes.ScopeBase(s1) + 0x1000

	mkProg := func(addr mem.Addr) *mem.PIMProgram {
		return &mem.PIMProgram{Name: "mark", MicroOps: 8,
			Apply: func(bk *mem.Backing, w uint64) {
				bk.SetByte(addr, pimVal)
				bk.SetWriter(mem.LineOf(addr), w)
			}}
	}
	var wInstrs []cpu.Instr
	wInstrs = append(wInstrs, cpu.Instr{Kind: cpu.InstrPIMOp, Scope: s0, Prog: mkProg(out0), Label: "PIM(S0)"})
	if fence {
		wInstrs = append(wInstrs, cpu.Instr{Kind: cpu.InstrFencePIM})
	}
	wInstrs = append(wInstrs, cpu.Instr{Kind: cpu.InstrPIMOp, Scope: s1, Prog: mkProg(out1), Label: "PIM(S1)"})
	writer := &cpu.SliceThread{Instrs: wInstrs}

	out := CrossScopeOutcome{Model: model, Fence: fence}
	state := 0
	polls := 0
	reader := cpu.FuncThread(func() (cpu.Instr, bool) {
		switch state {
		case 0: // poll S1's output (uncached each time: it misses until written)
			state = 1
			return cpu.Instr{Kind: cpu.InstrLoad, Addr: out1,
				OnData: func(_ mem.LineAddr, d []byte) {
					if d[int(out1)%mem.LineSize] == pimVal {
						state = 2
					}
				}}, true
		case 1:
			polls++
			if polls > 400 {
				return cpu.Instr{}, false
			}
			state = 0
			return cpu.Instr{Kind: cpu.InstrCompute, Cycles: 200}, true
		case 2:
			state = 3
			out.Completed = true
			return cpu.Instr{Kind: cpu.InstrLoad, Addr: out0,
				OnData: func(_ mem.LineAddr, d []byte) {
					if d[int(out0)%mem.LineSize] != pimVal {
						out.Reordered = true
					}
				}}, true
		default:
			return cpu.Instr{}, false
		}
	})
	if _, err := s.Run([]cpu.Thread{writer, reader}); err != nil {
		return out, err
	}
	return out, nil
}

// SweepCrossScope tries several jitter seeds; returns true if any run
// observed the reorder.
func SweepCrossScope(model core.Model, fence bool, seeds int) (observed bool, completed int, err error) {
	for i := 0; i < seeds; i++ {
		o, e := RunCrossScopePIM(model, fence, uint64(i*7+1))
		if e != nil {
			return observed, completed, e
		}
		if o.Completed {
			completed++
		}
		if o.Reordered {
			observed = true
		}
	}
	return observed, completed, nil
}

// Polling note: the S1 poll relies on the proposed models' scan-and-flush
// invalidating the polled line when PIM(S1) passes the LLC, so a later
// poll refetches post-PIM data (stale in-flight fills bypass the cache).
// The eviction trick Fig. 1 needs is therefore unnecessary here.
