package litmus

import (
	"testing"

	"bulkpim/internal/core"
)

// Message passing: under the atomic and store models the PIM op is
// ordered before the later flag store, so a reader that saw the flag must
// see the PIM output.
func TestMPStrictModelsSafe(t *testing.T) {
	for _, m := range []core.Model{core.Atomic, core.Store} {
		o, err := RunMessagePassing(m, false)
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		if !o.Completed {
			t.Fatalf("%v: reader never saw the flag", m)
		}
		if o.StaleData {
			t.Errorf("%v: PIM op reordered after the flag store", m)
		}
	}
}

// With the dedicated fences inserted, every proposed model guarantees the
// MP outcome.
func TestMPWithFencesAllModelsSafe(t *testing.T) {
	for _, m := range core.ProposedModels() {
		o, err := RunMessagePassing(m, true)
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		if !o.Completed {
			t.Fatalf("%v: reader never saw the flag", m)
		}
		if o.StaleData {
			t.Errorf("%v: stale data despite fences", m)
		}
	}
}

// Cross-scope PIM-PIM ordering: the atomic and store models keep program
// order between PIM ops of different scopes; the scope model restores it
// with the dedicated PIM fence (Table I).
func TestCrossScopeOrderingEnforced(t *testing.T) {
	cases := []struct {
		m     core.Model
		fence bool
	}{
		{core.Atomic, false},
		{core.Store, false},
		{core.Scope, true},
		{core.ScopeRelaxed, true},
	}
	for _, c := range cases {
		observed, completed, err := SweepCrossScope(c.m, c.fence, 6)
		if err != nil {
			t.Fatalf("%v: %v", c.m, err)
		}
		if completed == 0 {
			t.Fatalf("%v fence=%v: no run completed", c.m, c.fence)
		}
		if observed {
			t.Errorf("%v fence=%v: cross-scope PIM reorder observed; model forbids it", c.m, c.fence)
		}
	}
}

// The scope model WITHOUT the fence allows the reorder; the run must
// still complete (no hang), whether or not the reorder manifests.
func TestCrossScopeScopeModelUnfencedCompletes(t *testing.T) {
	_, completed, err := SweepCrossScope(core.Scope, false, 6)
	if err != nil {
		t.Fatal(err)
	}
	if completed == 0 {
		t.Fatal("no unfenced run completed")
	}
}
