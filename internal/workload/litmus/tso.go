package litmus

import (
	"bulkpim/internal/core"
	"bulkpim/internal/cpu"
	"bulkpim/internal/mem"
	"bulkpim/internal/system"
)

// Classic (non-PIM) litmus tests validating the simulated host's x86-TSO
// behaviour — the base the paper's models "extend without violating"
// (§III). Store-buffering's relaxed outcome must be observable (TSO allows
// it); message-passing's must not (TSO forbids store-store / load-load
// reordering).

// SBOutcome is one store-buffering run: two threads each store to their
// own flag and read the other's.
type SBOutcome struct {
	// BothZero: both threads read the other's pre-store value — forbidden
	// under SC, allowed under TSO.
	BothZero bool
	// WithFences: run had mfences between the store and load.
	WithFences bool
}

// RunStoreBuffering executes the SB shape once with the given seed.
func RunStoreBuffering(fences bool, seed uint64) (SBOutcome, error) {
	cfg := system.Default()
	cfg.Model = core.Atomic // irrelevant: no PIM ops
	cfg.Cores = 2
	cfg.ScopeCount = 2
	cfg.Functional = true
	cfg.Seed = seed
	s := system.New(cfg)

	addrX := mem.Addr(0x2000)
	addrY := mem.Addr(0x6000)
	var r0, r1 byte = 0xFF, 0xFF

	mk := func(mine, other mem.Addr, out *byte) *cpu.SliceThread {
		instrs := []cpu.Instr{
			{Kind: cpu.InstrStore, Addr: mine, Data: []byte{1}},
		}
		if fences {
			instrs = append(instrs, cpu.Instr{Kind: cpu.InstrFenceFull})
		}
		instrs = append(instrs, cpu.Instr{
			Kind: cpu.InstrLoad, Addr: other,
			OnData: func(_ mem.LineAddr, d []byte) { *out = d[int(other)%mem.LineSize] },
		})
		return &cpu.SliceThread{Instrs: instrs}
	}
	if _, err := s.Run([]cpu.Thread{mk(addrX, addrY, &r0), mk(addrY, addrX, &r1)}); err != nil {
		return SBOutcome{}, err
	}
	return SBOutcome{BothZero: r0 == 0 && r1 == 0, WithFences: fences}, nil
}

// SweepStoreBuffering runs SB across seeds and reports how often the
// relaxed outcome appeared.
func SweepStoreBuffering(fences bool, seeds int) (bothZero int, err error) {
	for i := 0; i < seeds; i++ {
		o, e := RunStoreBuffering(fences, uint64(i+1))
		if e != nil {
			return bothZero, e
		}
		if o.BothZero {
			bothZero++
		}
	}
	return bothZero, nil
}

// MPPlainOutcome is a plain (store/store vs load/load) message-passing
// run.
type MPPlainOutcome struct {
	Completed bool
	// Violation: the reader observed the flag but stale data — forbidden
	// under TSO.
	Violation bool
}

// RunMPPlain executes plain MP: T0 stores data then flag; T1 spins on
// flag then reads data. Under TSO the outcome flag=new/data=old is
// forbidden.
func RunMPPlain(seed uint64) (MPPlainOutcome, error) {
	cfg := system.Default()
	cfg.Model = core.Atomic
	cfg.Cores = 2
	cfg.ScopeCount = 2
	cfg.Functional = true
	cfg.Seed = seed
	s := system.New(cfg)

	data := mem.Addr(0x2000)
	flag := mem.Addr(0x6000)

	writer := &cpu.SliceThread{Instrs: []cpu.Instr{
		{Kind: cpu.InstrStore, Addr: data, Data: []byte{1}},
		{Kind: cpu.InstrStore, Addr: flag, Data: []byte{1}},
	}}

	out := MPPlainOutcome{}
	state := 0
	polls := 0
	reader := cpu.FuncThread(func() (cpu.Instr, bool) {
		switch state {
		case 0:
			state = 1
			return cpu.Instr{Kind: cpu.InstrLoad, Addr: flag,
				OnData: func(_ mem.LineAddr, d []byte) {
					if d[int(flag)%mem.LineSize] == 1 {
						state = 2
					}
				}}, true
		case 1:
			polls++
			if polls > 500 {
				return cpu.Instr{}, false
			}
			state = 0
			return cpu.Instr{Kind: cpu.InstrCompute, Cycles: 30}, true
		case 2:
			state = 3
			out.Completed = true
			return cpu.Instr{Kind: cpu.InstrLoad, Addr: data,
				OnData: func(_ mem.LineAddr, d []byte) {
					if d[int(data)%mem.LineSize] != 1 {
						out.Violation = true
					}
				}}, true
		default:
			return cpu.Instr{}, false
		}
	})
	if _, err := s.Run([]cpu.Thread{writer, reader}); err != nil {
		return out, err
	}
	return out, nil
}
