package runner

import "hash/fnv"

// ShardOf assigns a job key to one of n shards by FNV-1a hash of the
// key — a pure function of the key string, stable across processes,
// machines and Go versions. Independently planned shards of the same
// suite therefore partition its job set exactly: every key belongs to
// exactly one shard index at a given n, regardless of plan order or
// which experiments contributed it. n <= 1 maps every key to shard 0.
func ShardOf(key string, n int) int {
	if n <= 1 {
		return 0
	}
	h := fnv.New64a()
	h.Write([]byte(key))
	return int(h.Sum64() % uint64(n))
}
