package runner

import "sync"

// Flight deduplicates identical in-flight grid points across the
// batches sharing it. Concurrent experiments overlap on grid points
// (the Naive baseline sweep appears in several figures, and the
// suite's most expensive simulation is planned under several keys —
// fig9-ycsb, the ablation baseline, the sizing defaults); a persistent
// cache only serves points that *finished*, so when every experiment
// starts at once the overlapping points all miss and are computed
// once per experiment. With a Flight set on each batch's Options, the
// first job to arrive at a fingerprint — the content address of the
// simulation, regardless of which key planned it — computes it and
// every concurrent or later twin reuses the result — suite-wide, even
// with no persistent cache configured.
//
// Completed calls are kept for the Flight's lifetime (one RunAll
// suite): results are small, and keeping them makes the Flight an
// in-memory memo for later batches of the same suite.
type Flight[T any] struct {
	mu    sync.Mutex
	calls map[string]*call[T]
}

type call[T any] struct {
	done chan struct{}
	key  string
	v    T
	err  error
}

// NewFlight returns an empty in-flight dedup table.
func NewFlight[T any]() *Flight[T] {
	return &Flight[T]{calls: map[string]*call[T]{}}
}

// Do executes fn under id, unless an earlier Do with the same id is in
// flight or finished — then it waits for (or reuses) that call's
// outcome instead. key is the caller's planned key; primaryKey is the
// key of the caller that ran fn, so followers can tell same-key twins
// (whose result the primary already persisted) from aliased keys that
// need their own write-back. primary reports whether this caller ran
// fn. A
// follower blocks only while the primary runs; the primary always
// closes the call, so followers cannot leak. A follower called from a
// pool worker holds that worker while it waits — acceptable because
// overlapping identities are few and the alternative (recomputing) is
// strictly worse — and its JobResult.Wall measures the wait, which
// Summarize therefore excludes from compute accounting. Errors
// propagate to every caller of the id: the twins describe the same
// computation, so a failure is theirs too.
func (f *Flight[T]) Do(id, key string, fn func() (T, error)) (v T, err error, primaryKey string, primary bool) {
	f.mu.Lock()
	if c, ok := f.calls[id]; ok {
		f.mu.Unlock()
		<-c.done
		return c.v, c.err, c.key, false
	}
	c := &call[T]{done: make(chan struct{}), key: key}
	f.calls[id] = c
	f.mu.Unlock()
	defer close(c.done)
	c.v, c.err = fn()
	return c.v, c.err, key, true
}
