// Package runner executes independent simulation points on a worker
// pool. The paper's evaluation is a large grid of independent runs
// (model variants x record counts x queries x ablations); each point
// owns a private single-threaded sim.Kernel, so the grid is
// embarrassingly parallel. RunJobs preserves the sequential contract:
// results come back ordered by submission index, so any consumer that
// folds them into figures or tables produces byte-identical output at
// every parallelism level.
package runner

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"bulkpim/internal/resultcache"
	"bulkpim/internal/sim"
	"bulkpim/internal/system"
)

// Job is one unit of work. Run builds whatever state the point needs —
// for simulation jobs, a fresh System — and returns its value. Anything
// the closure shares with sibling jobs (a generated workload, a query
// spec) must be read-only while the batch runs.
type Job[T any] struct {
	// Key stably identifies the point (e.g. "ycsb/records=100000/
	// model=scope"); errors are reported against it.
	Key string
	// Fingerprint content-addresses the point: a digest of everything
	// that determines its result (final config + workload identity).
	// With Options.Lookup/Store set, a non-empty Fingerprint makes the
	// job memoizable; empty means always execute.
	Fingerprint string
	Run         func() (T, error)
}

// JobResult pairs a job's outcome with its submission index. A failed
// or panicking job is captured in Err without disturbing its siblings.
type JobResult[T any] struct {
	Index int
	Key   string
	Value T
	Err   error
	// Cached marks a value served from Options.Lookup or from an
	// in-flight twin (Options.Flight) instead of executed here. Cached
	// and computed values are interchangeable: the simulations are
	// deterministic, so consumers produce byte-identical output either
	// way.
	Cached bool
	// Wall is the job's own wall-clock time (the batch's elapsed time
	// is bounded by the slowest chain, not this sum).
	Wall time.Duration
}

// Options configures a RunJobs batch.
type Options[T any] struct {
	// Parallelism caps concurrent workers; <= 0 means GOMAXPROCS.
	// Results are identical at every value. Ignored when Pool is set.
	Parallelism int
	// Pool, when non-nil, schedules this batch on a shared worker pool
	// instead of a private one, bounding concurrency across every batch
	// sharing the pool (suite-wide scheduling).
	Pool *Pool
	// OnResult, when non-nil, is invoked serially as jobs complete (in
	// completion order, which varies under parallelism). done counts
	// finished jobs including this one.
	OnResult func(done, total int, r JobResult[T])
	// Lookup, when non-nil, is consulted before executing any job with
	// a non-empty Fingerprint; a hit skips execution. Store, when
	// non-nil, receives every successful computed result for write-back.
	// Both must be safe for concurrent use.
	Lookup func(key, fingerprint string) (T, bool)
	Store  func(key, fingerprint string, v T)
	// Flight, when non-nil and shared across batches, deduplicates
	// identical in-flight points by fingerprint — the content address —
	// so a fingerprinted job whose twin is already running (or
	// finished) in any sharing batch reuses that outcome instead of
	// recomputing it, even when the twin was planned under a different
	// key. Followers' results are written back through Store under
	// their own keys (same-key twins skip the redundant write-back).
	Flight *Flight[T]
}

func (o Options[T]) parallelism() int {
	if o.Parallelism > 0 {
		return o.Parallelism
	}
	return runtime.GOMAXPROCS(0)
}

// RunJobs executes jobs on a worker pool — a private one, or the
// shared Options.Pool — and returns one JobResult per job, re-ordered
// by submission index: the same sequence a sequential loop would
// produce. One failed point does not abort the batch. With cache hooks
// set, each fingerprinted job is looked up before executing and its
// computed result written back after.
func RunJobs[T any](jobs []Job[T], opts Options[T]) []JobResult[T] {
	results := make([]JobResult[T], len(jobs))
	if len(jobs) == 0 {
		return results
	}
	var (
		mu   sync.Mutex // serializes OnResult
		done int
	)
	exec := func(i int) {
		start := time.Now()
		r := JobResult[T]{Index: i, Key: jobs[i].Key}
		compute := func() (T, error) {
			v, err := runOne(jobs[i])
			if err == nil && opts.Store != nil && jobs[i].Fingerprint != "" {
				opts.Store(jobs[i].Key, jobs[i].Fingerprint, v)
			}
			return v, err
		}
		if v, ok := cacheLookup(jobs[i], opts); ok {
			r.Value, r.Cached = v, true
		} else if opts.Flight != nil && jobs[i].Fingerprint != "" {
			var primary bool
			var primaryKey string
			r.Value, r.Err, primaryKey, primary = opts.Flight.Do(jobs[i].Fingerprint, jobs[i].Key, compute)
			r.Cached = !primary && r.Err == nil
			// A follower's key may differ from the primary's — equal
			// fingerprints content-address one simulation planned under
			// several keys — so its result is written back under the
			// requesting key too: every planned identity gets a cache
			// entry and a warm re-run stays fully hit. Same-key twins
			// skip the write-back: the primary already stored that line.
			if r.Cached && opts.Store != nil && jobs[i].Key != primaryKey {
				opts.Store(jobs[i].Key, jobs[i].Fingerprint, r.Value)
			}
		} else {
			r.Value, r.Err = compute()
		}
		r.Wall = time.Since(start)
		results[i] = r
		if opts.OnResult != nil {
			mu.Lock()
			done++
			opts.OnResult(done, len(jobs), results[i])
			mu.Unlock()
		}
	}

	if opts.Pool != nil {
		var batch sync.WaitGroup
		batch.Add(len(jobs))
		for i := range jobs {
			i := i
			opts.Pool.Submit(func() { defer batch.Done(); exec(i) })
		}
		batch.Wait()
		return results
	}

	workers := opts.parallelism()
	if workers > len(jobs) {
		workers = len(jobs)
	}
	var wg sync.WaitGroup
	idx := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				exec(i)
			}
		}()
	}
	for i := range jobs {
		idx <- i
	}
	close(idx)
	wg.Wait()
	return results
}

// cacheLookup consults the batch's cache hook for a fingerprinted job.
func cacheLookup[T any](j Job[T], opts Options[T]) (v T, ok bool) {
	if opts.Lookup == nil || j.Fingerprint == "" {
		return v, false
	}
	return opts.Lookup(j.Key, j.Fingerprint)
}

// runOne invokes a job, converting a panic into a per-job error so a
// crashing point cannot take the whole sweep down.
func runOne[T any](j Job[T]) (v T, err error) {
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("panic: %v", p)
		}
	}()
	if j.Run == nil {
		return v, fmt.Errorf("nil Run")
	}
	return j.Run()
}

// SimJob is the concrete job shape of the experiment harness: one grid
// point, described by a stable key, a base machine configuration, an
// optional Config mutator (model selection, ablation switches), and an
// Execute that builds a fresh System for the final config and runs the
// workload the closure shares read-only with its siblings. Extra
// carries workload identity the Config cannot see — operation counts,
// seeds, query scale — and is folded into the cache fingerprint;
// omitting it for a sweep whose workload varies outside the Config
// would let differently-shaped runs alias in the result cache.
type SimJob struct {
	Key     string
	Base    system.Config
	Mutate  func(*system.Config)
	Execute func(system.Config) (system.Result, error)
	Extra   string
}

// Fingerprint content-addresses the point: a digest of the final
// (mutated) Config plus the Extra workload identity. Mutate must be a
// pure field-setter — it is applied to a fresh copy of Base here and
// again at run time. TraceWriter is excluded: tracing is observational
// and its sink is not part of the simulated machine.
func (j SimJob) FingerprintID() string {
	cfg := j.finalConfig()
	cfg.TraceWriter = nil
	return resultcache.Fingerprint(cfg, j.Extra)
}

func (j SimJob) finalConfig() system.Config {
	cfg := j.Base
	if j.Mutate != nil {
		j.Mutate(&cfg)
	}
	return cfg
}

// Job lowers the spec into a runnable job. The Base config is copied
// per run, so Mutate never leaks across points.
func (j SimJob) Job() Job[system.Result] {
	return Job[system.Result]{Key: j.Key, Fingerprint: j.FingerprintID(),
		Run: func() (system.Result, error) {
			cfg := j.finalConfig()
			if j.Execute == nil {
				return system.Result{}, fmt.Errorf("nil Execute")
			}
			return j.Execute(cfg)
		}}
}

// SimJobs lowers a batch of specs.
func SimJobs(specs []SimJob) []Job[system.Result] {
	jobs := make([]Job[system.Result], len(specs))
	for i, s := range specs {
		jobs[i] = s.Job()
	}
	return jobs
}

// Summary is a batch's wall-clock / sim-cycle accounting.
type Summary struct {
	Jobs   int
	Failed int
	// Cached counts results served from the result cache instead of
	// executed.
	Cached int
	// Wall sums per-job wall time over executed (non-cached) jobs: the
	// compute the batch consumed, not its elapsed time. Cached results
	// are excluded — a cache hit costs nothing, and a Flight follower's
	// wall is time spent waiting on its primary, not compute.
	Wall time.Duration
	// Cycles sums simulated cycles over the successful jobs.
	Cycles sim.Tick
}

// Summarize folds a batch of simulation results into its accounting.
func Summarize(rs []JobResult[system.Result]) Summary {
	s := Summary{Jobs: len(rs)}
	for _, r := range rs {
		if r.Cached {
			s.Cached++
		} else {
			s.Wall += r.Wall
		}
		if r.Err != nil {
			s.Failed++
			continue
		}
		s.Cycles += r.Value.Cycles
	}
	return s
}

func (s Summary) String() string {
	return fmt.Sprintf("%d jobs (%d failed, %d cached), %d sim cycles, %s total job wall time",
		s.Jobs, s.Failed, s.Cached, s.Cycles, s.Wall.Round(time.Millisecond))
}
