// Package runner executes independent simulation points on a worker
// pool. The paper's evaluation is a large grid of independent runs
// (model variants x record counts x queries x ablations); each point
// owns a private single-threaded sim.Kernel, so the grid is
// embarrassingly parallel. RunJobs preserves the sequential contract:
// results come back ordered by submission index, so any consumer that
// folds them into figures or tables produces byte-identical output at
// every parallelism level.
package runner

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"bulkpim/internal/sim"
	"bulkpim/internal/system"
)

// Job is one unit of work. Run builds whatever state the point needs —
// for simulation jobs, a fresh System — and returns its value. Anything
// the closure shares with sibling jobs (a generated workload, a query
// spec) must be read-only while the batch runs.
type Job[T any] struct {
	// Key stably identifies the point (e.g. "ycsb/records=100000/
	// model=scope"); errors are reported against it.
	Key string
	Run func() (T, error)
}

// JobResult pairs a job's outcome with its submission index. A failed
// or panicking job is captured in Err without disturbing its siblings.
type JobResult[T any] struct {
	Index int
	Key   string
	Value T
	Err   error
	// Wall is the job's own wall-clock time (the batch's elapsed time
	// is bounded by the slowest chain, not this sum).
	Wall time.Duration
}

// Options configures a RunJobs batch.
type Options[T any] struct {
	// Parallelism caps concurrent workers; <= 0 means GOMAXPROCS.
	// Results are identical at every value.
	Parallelism int
	// OnResult, when non-nil, is invoked serially as jobs complete (in
	// completion order, which varies under parallelism). done counts
	// finished jobs including this one.
	OnResult func(done, total int, r JobResult[T])
}

func (o Options[T]) parallelism() int {
	if o.Parallelism > 0 {
		return o.Parallelism
	}
	return runtime.GOMAXPROCS(0)
}

// RunJobs executes jobs on a worker pool and returns one JobResult per
// job, re-ordered by submission index — the same sequence a sequential
// loop would produce. One failed point does not abort the batch.
func RunJobs[T any](jobs []Job[T], opts Options[T]) []JobResult[T] {
	results := make([]JobResult[T], len(jobs))
	if len(jobs) == 0 {
		return results
	}
	workers := opts.parallelism()
	if workers > len(jobs) {
		workers = len(jobs)
	}
	var (
		wg   sync.WaitGroup
		mu   sync.Mutex // serializes OnResult
		done int
		idx  = make(chan int)
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				start := time.Now()
				v, err := runOne(jobs[i])
				results[i] = JobResult[T]{
					Index: i, Key: jobs[i].Key, Value: v, Err: err,
					Wall: time.Since(start),
				}
				if opts.OnResult != nil {
					mu.Lock()
					done++
					opts.OnResult(done, len(jobs), results[i])
					mu.Unlock()
				}
			}
		}()
	}
	for i := range jobs {
		idx <- i
	}
	close(idx)
	wg.Wait()
	return results
}

// runOne invokes a job, converting a panic into a per-job error so a
// crashing point cannot take the whole sweep down.
func runOne[T any](j Job[T]) (v T, err error) {
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("panic: %v", p)
		}
	}()
	if j.Run == nil {
		return v, fmt.Errorf("nil Run")
	}
	return j.Run()
}

// SimJob is the concrete job shape of the experiment harness: one grid
// point, described by a stable key, a base machine configuration, an
// optional Config mutator (model selection, ablation switches), and an
// Execute that builds a fresh System for the final config and runs the
// workload the closure shares read-only with its siblings.
type SimJob struct {
	Key     string
	Base    system.Config
	Mutate  func(*system.Config)
	Execute func(system.Config) (system.Result, error)
}

// Job lowers the spec into a runnable job. The Base config is copied
// per run, so Mutate never leaks across points.
func (j SimJob) Job() Job[system.Result] {
	return Job[system.Result]{Key: j.Key, Run: func() (system.Result, error) {
		cfg := j.Base
		if j.Mutate != nil {
			j.Mutate(&cfg)
		}
		if j.Execute == nil {
			return system.Result{}, fmt.Errorf("nil Execute")
		}
		return j.Execute(cfg)
	}}
}

// SimJobs lowers a batch of specs.
func SimJobs(specs []SimJob) []Job[system.Result] {
	jobs := make([]Job[system.Result], len(specs))
	for i, s := range specs {
		jobs[i] = s.Job()
	}
	return jobs
}

// Summary is a batch's wall-clock / sim-cycle accounting.
type Summary struct {
	Jobs   int
	Failed int
	// Wall sums per-job wall time: the compute the batch consumed, not
	// its elapsed time.
	Wall time.Duration
	// Cycles sums simulated cycles over the successful jobs.
	Cycles sim.Tick
}

// Summarize folds a batch of simulation results into its accounting.
func Summarize(rs []JobResult[system.Result]) Summary {
	s := Summary{Jobs: len(rs)}
	for _, r := range rs {
		s.Wall += r.Wall
		if r.Err != nil {
			s.Failed++
			continue
		}
		s.Cycles += r.Value.Cycles
	}
	return s
}

func (s Summary) String() string {
	return fmt.Sprintf("%d jobs (%d failed), %d sim cycles, %s total job wall time",
		s.Jobs, s.Failed, s.Cycles, s.Wall.Round(time.Millisecond))
}
