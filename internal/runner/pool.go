package runner

import (
	"runtime"
	"sync"
)

// Pool is a shared worker pool. Where RunJobs normally spins up a
// private pool per batch, several concurrent batches — e.g. every
// experiment of an "-exp all" suite — can instead submit to one Pool,
// so total simulation concurrency is bounded once, suite-wide, and the
// whole run is limited by its slowest single point rather than the sum
// of per-batch tails. Each RunJobs call still demultiplexes its own
// results by submission index, so reports stay byte-identical at any
// pool width.
type Pool struct {
	tasks chan func()
	wg    sync.WaitGroup
}

// NewPool starts a pool of `parallelism` workers (<= 0 means
// GOMAXPROCS). Close it to release them.
func NewPool(parallelism int) *Pool {
	if parallelism <= 0 {
		parallelism = runtime.GOMAXPROCS(0)
	}
	p := &Pool{tasks: make(chan func())}
	for i := 0; i < parallelism; i++ {
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			for f := range p.tasks {
				f()
			}
		}()
	}
	return p
}

// Submit hands one task to the pool, blocking until a worker accepts
// it. Tasks must not themselves Submit (a batch submitted from inside
// a worker could deadlock waiting for the worker it occupies).
func (p *Pool) Submit(f func()) { p.tasks <- f }

// Close stops accepting tasks and waits for in-flight ones to finish.
func (p *Pool) Close() {
	close(p.tasks)
	p.wg.Wait()
}
