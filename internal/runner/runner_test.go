package runner

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"bulkpim/internal/system"
)

func intJobs(n int, fail map[int]bool) []Job[int] {
	jobs := make([]Job[int], n)
	for i := 0; i < n; i++ {
		i := i
		jobs[i] = Job[int]{Key: fmt.Sprintf("job-%d", i), Run: func() (int, error) {
			if fail[i] {
				return 0, fmt.Errorf("boom %d", i)
			}
			return i * 10, nil
		}}
	}
	return jobs
}

// Results must come back ordered by submission index at every
// parallelism level.
func TestRunJobsSubmissionOrder(t *testing.T) {
	for _, par := range []int{1, 2, 8, 0} {
		rs := RunJobs(intJobs(37, nil), Options[int]{Parallelism: par})
		if len(rs) != 37 {
			t.Fatalf("par=%d: got %d results", par, len(rs))
		}
		for i, r := range rs {
			if r.Index != i || r.Value != i*10 || r.Err != nil {
				t.Fatalf("par=%d: result %d = %+v", par, i, r)
			}
			if r.Key != fmt.Sprintf("job-%d", i) {
				t.Fatalf("par=%d: result %d key %q", par, i, r.Key)
			}
		}
	}
}

// A mid-batch failure is reported against its job key; siblings keep
// their results.
func TestRunJobsErrorCapture(t *testing.T) {
	rs := RunJobs(intJobs(9, map[int]bool{4: true}), Options[int]{Parallelism: 3})
	for i, r := range rs {
		if i == 4 {
			if r.Err == nil || !strings.Contains(r.Err.Error(), "boom 4") {
				t.Fatalf("job 4 error = %v", r.Err)
			}
			if r.Key != "job-4" {
				t.Fatalf("job 4 key = %q", r.Key)
			}
			continue
		}
		if r.Err != nil || r.Value != i*10 {
			t.Fatalf("sibling %d lost: %+v", i, r)
		}
	}
}

// A panicking job becomes a per-job error instead of crashing the pool.
func TestRunJobsPanicCapture(t *testing.T) {
	jobs := intJobs(4, nil)
	jobs[2].Run = func() (int, error) { panic("kaboom") }
	rs := RunJobs(jobs, Options[int]{Parallelism: 4})
	if rs[2].Err == nil || !strings.Contains(rs[2].Err.Error(), "kaboom") {
		t.Fatalf("panic not captured: %v", rs[2].Err)
	}
	for _, i := range []int{0, 1, 3} {
		if rs[i].Err != nil {
			t.Fatalf("sibling %d: %v", i, rs[i].Err)
		}
	}
}

// OnResult is serialized and sees a monotonically increasing done count
// reaching the total.
func TestRunJobsProgress(t *testing.T) {
	var calls int32
	last := 0
	rs := RunJobs(intJobs(16, nil), Options[int]{
		Parallelism: 4,
		OnResult: func(done, total int, r JobResult[int]) {
			atomic.AddInt32(&calls, 1)
			if total != 16 || done != last+1 {
				t.Errorf("done=%d total=%d last=%d", done, total, last)
			}
			last = done
		},
	})
	if len(rs) != 16 || calls != 16 {
		t.Fatalf("results=%d calls=%d", len(rs), calls)
	}
}

// Parallelism 1 runs jobs strictly in submission order.
func TestRunJobsSequentialOrder(t *testing.T) {
	var order []int
	jobs := make([]Job[int], 8)
	for i := range jobs {
		i := i
		jobs[i] = Job[int]{Key: fmt.Sprintf("j%d", i), Run: func() (int, error) {
			order = append(order, i)
			return i, nil
		}}
	}
	RunJobs(jobs, Options[int]{Parallelism: 1})
	for i, v := range order {
		if v != i {
			t.Fatalf("execution order %v", order)
		}
	}
}

func TestRunJobsEmpty(t *testing.T) {
	if rs := RunJobs(nil, Options[int]{}); len(rs) != 0 {
		t.Fatalf("got %d results", len(rs))
	}
}

// SimJob copies Base per run so Mutate never leaks across points, and
// applies the mutator before Execute.
func TestSimJobMutateIsolated(t *testing.T) {
	base := system.Default()
	base.Cores = 4
	var seen []int
	specs := []SimJob{
		{Key: "a", Base: base,
			Mutate: func(c *system.Config) { c.Cores = 16 },
			Execute: func(c system.Config) (system.Result, error) {
				seen = append(seen, c.Cores)
				return system.Result{}, nil
			}},
		{Key: "b", Base: base,
			Execute: func(c system.Config) (system.Result, error) {
				seen = append(seen, c.Cores)
				return system.Result{}, nil
			}},
	}
	rs := RunJobs(SimJobs(specs), Options[system.Result]{Parallelism: 1})
	for _, r := range rs {
		if r.Err != nil {
			t.Fatal(r.Err)
		}
	}
	if len(seen) != 2 || seen[0] != 16 || seen[1] != 4 {
		t.Fatalf("configs seen: %v", seen)
	}
	if base.Cores != 4 {
		t.Fatalf("base mutated: %d", base.Cores)
	}
}

// Summarize counts failures and sums cycles over successes only.
func TestSummarize(t *testing.T) {
	rs := []JobResult[system.Result]{
		{Value: system.Result{Cycles: 100}, Wall: 3 * time.Second},
		{Err: fmt.Errorf("x"), Value: system.Result{Cycles: 999}, Wall: time.Second},
		// Cached: a Flight follower's wall is wait, not compute —
		// excluded from Summary.Wall.
		{Value: system.Result{Cycles: 50}, Cached: true, Wall: time.Minute},
	}
	s := Summarize(rs)
	if s.Jobs != 3 || s.Failed != 1 || s.Cached != 1 || s.Cycles != 150 {
		t.Fatalf("summary %+v", s)
	}
	if s.Wall != 4*time.Second {
		t.Fatalf("cached wall not excluded: %v", s.Wall)
	}
	if !strings.Contains(s.String(), "3 jobs (1 failed, 1 cached)") {
		t.Fatalf("summary string %q", s.String())
	}
}

// Cache hooks: a fingerprinted job consults Lookup before executing
// and writes back through Store; a hit skips execution entirely and is
// flagged Cached. Jobs without a fingerprint never touch the cache.
func TestRunJobsCacheHooks(t *testing.T) {
	var mu sync.Mutex
	store := map[string]int{}
	var executions int32
	mkJobs := func() []Job[int] {
		jobs := intJobs(6, nil)
		for i := range jobs {
			i := i
			if i != 5 { // job 5 stays unfingerprinted (uncacheable)
				jobs[i].Fingerprint = fmt.Sprintf("fp-%d", i)
			}
			inner := jobs[i].Run
			jobs[i].Run = func() (int, error) {
				atomic.AddInt32(&executions, 1)
				return inner()
			}
		}
		return jobs
	}
	opts := Options[int]{
		Parallelism: 3,
		Lookup: func(key, fp string) (int, bool) {
			mu.Lock()
			defer mu.Unlock()
			v, ok := store[key+fp]
			return v, ok
		},
		Store: func(key, fp string, v int) {
			mu.Lock()
			defer mu.Unlock()
			store[key+fp] = v
		},
	}
	cold := RunJobs(mkJobs(), opts)
	for i, r := range cold {
		if r.Cached || r.Err != nil || r.Value != i*10 {
			t.Fatalf("cold result %d: %+v", i, r)
		}
	}
	if executions != 6 || len(store) != 5 {
		t.Fatalf("cold: executions=%d stored=%d", executions, len(store))
	}
	warm := RunJobs(mkJobs(), opts)
	for i, r := range warm {
		if r.Err != nil || r.Value != i*10 {
			t.Fatalf("warm result %d: %+v", i, r)
		}
		wantCached := i != 5
		if r.Cached != wantCached {
			t.Fatalf("warm result %d cached=%v, want %v", i, r.Cached, wantCached)
		}
	}
	if executions != 7 { // only the unfingerprinted job re-ran
		t.Fatalf("warm: executions=%d", executions)
	}
}

// A failed job must not be written back.
func TestRunJobsCacheSkipsFailures(t *testing.T) {
	stored := 0
	RunJobs([]Job[int]{{Key: "k", Fingerprint: "fp", Run: func() (int, error) {
		return 0, fmt.Errorf("boom")
	}}}, Options[int]{
		Lookup: func(string, string) (int, bool) { return 0, false },
		Store:  func(string, string, int) { stored++ },
	})
	if stored != 0 {
		t.Fatalf("failed job written back %d times", stored)
	}
}

// A shared Pool bounds concurrency across batches submitted from
// different goroutines, and each batch still demultiplexes its own
// results in submission order.
func TestPoolSharedScheduling(t *testing.T) {
	const width = 3
	pool := NewPool(width)
	defer pool.Close()

	var inflight, peak int32
	slowJobs := func(n, base int) []Job[int] {
		jobs := make([]Job[int], n)
		for i := range jobs {
			i := i
			jobs[i] = Job[int]{Key: fmt.Sprintf("b%d-j%d", base, i), Run: func() (int, error) {
				cur := atomic.AddInt32(&inflight, 1)
				for {
					p := atomic.LoadInt32(&peak)
					if cur <= p || atomic.CompareAndSwapInt32(&peak, p, cur) {
						break
					}
				}
				defer atomic.AddInt32(&inflight, -1)
				return base + i, nil
			}}
		}
		return jobs
	}

	var wg sync.WaitGroup
	batches := make([][]JobResult[int], 4)
	for b := 0; b < 4; b++ {
		b := b
		wg.Add(1)
		go func() {
			defer wg.Done()
			batches[b] = RunJobs(slowJobs(10, b*100), Options[int]{Pool: pool})
		}()
	}
	wg.Wait()

	if got := atomic.LoadInt32(&peak); got > width {
		t.Fatalf("peak concurrency %d exceeds pool width %d", got, width)
	}
	for b, rs := range batches {
		if len(rs) != 10 {
			t.Fatalf("batch %d: %d results", b, len(rs))
		}
		for i, r := range rs {
			if r.Err != nil || r.Value != b*100+i || r.Index != i {
				t.Fatalf("batch %d result %d: %+v", b, i, r)
			}
		}
	}
}

// SimJob fingerprints must be stable, sensitive to config mutation and
// Extra workload identity, and computed without leaking the mutation
// into Base.
func TestSimJobFingerprint(t *testing.T) {
	base := system.Default()
	j := SimJob{Key: "k", Base: base, Extra: "ops=8",
		Mutate:  func(c *system.Config) { c.Cores = 16 },
		Execute: func(c system.Config) (system.Result, error) { return system.Result{}, nil }}
	fp1, fp2 := j.FingerprintID(), j.FingerprintID()
	if fp1 == "" || fp1 != fp2 {
		t.Fatalf("fingerprint unstable: %q vs %q", fp1, fp2)
	}
	if base.Cores != system.Default().Cores {
		t.Fatal("FingerprintID mutated Base")
	}
	j2 := j
	j2.Mutate = func(c *system.Config) { c.Cores = 8 }
	if j2.FingerprintID() == fp1 {
		t.Fatal("config mutation not reflected in fingerprint")
	}
	j3 := j
	j3.Extra = "ops=16"
	if j3.FingerprintID() == fp1 {
		t.Fatal("Extra not reflected in fingerprint")
	}
	if SimJobs([]SimJob{j})[0].Fingerprint != fp1 {
		t.Fatal("lowering dropped the fingerprint")
	}
}

// A Flight shared across concurrent batches computes each fingerprint
// exactly once: the first arrival runs, twins wait and reuse the
// outcome (flagged Cached), and a primary's error propagates to its
// twins.
func TestFlightDedupAcrossBatches(t *testing.T) {
	pool := NewPool(4)
	defer pool.Close()
	flight := NewFlight[int]()
	var executions int32
	mkBatch := func(fail bool) []Job[int] {
		jobs := make([]Job[int], 4)
		for i := range jobs {
			i := i
			jobs[i] = Job[int]{
				Key:         fmt.Sprintf("shared-%d", i),
				Fingerprint: fmt.Sprintf("fp-%d", i),
				Run: func() (int, error) {
					atomic.AddInt32(&executions, 1)
					if fail && i == 3 {
						return 0, fmt.Errorf("boom shared-3")
					}
					return i * 7, nil
				},
			}
		}
		return jobs
	}
	opts := Options[int]{Pool: pool, Flight: flight}
	var wg sync.WaitGroup
	batches := make([][]JobResult[int], 3)
	for b := range batches {
		b := b
		wg.Add(1)
		go func() {
			defer wg.Done()
			batches[b] = RunJobs(mkBatch(true), opts)
		}()
	}
	wg.Wait()
	if got := atomic.LoadInt32(&executions); got != 4 {
		t.Fatalf("%d executions for 12 jobs over 4 identities", got)
	}
	cached := 0
	for _, rs := range batches {
		for i, r := range rs {
			if i == 3 {
				if r.Err == nil || !strings.Contains(r.Err.Error(), "boom shared-3") {
					t.Fatalf("twin of failed primary: %+v", r)
				}
				continue
			}
			if r.Err != nil || r.Value != i*7 {
				t.Fatalf("batch result %d: %+v", i, r)
			}
			if r.Cached {
				cached++
			}
		}
	}
	if cached != 6 { // 9 successful results over 3 identities: 3 primaries, 6 twins
		t.Fatalf("cached twins = %d, want 6", cached)
	}

	// A later batch on the same flight reuses the memo without waiting.
	late := RunJobs(mkBatch(false), Options[int]{Flight: flight})
	if atomic.LoadInt32(&executions) != 4 {
		t.Fatal("late batch recomputed")
	}
	for i, r := range late[:3] {
		if !r.Cached || r.Value != i*7 {
			t.Fatalf("late result %d: %+v", i, r)
		}
	}
}

// Flight dedups by fingerprint — the content address — not by key:
// jobs planned under different keys with equal fingerprints execute
// once, every follower reuses the primary's value, and each follower's
// result is written back under its own key so a persistent cache gains
// an entry per requesting key (the warm re-run stays fully hit).
func TestFlightFingerprintDedupAcrossKeys(t *testing.T) {
	flight := NewFlight[int]()
	var executions int32
	var mu sync.Mutex
	stored := map[string]int{}
	jobs := make([]Job[int], 4)
	for i := range jobs {
		jobs[i] = Job[int]{
			Key:         fmt.Sprintf("alias-%d", i),
			Fingerprint: "fp-same",
			Run: func() (int, error) {
				atomic.AddInt32(&executions, 1)
				return 42, nil
			},
		}
	}
	rs := RunJobs(jobs, Options[int]{
		Parallelism: 4,
		Flight:      flight,
		Store: func(key, fp string, v int) {
			mu.Lock()
			defer mu.Unlock()
			stored[key+"\x00"+fp] = v
		},
	})
	if got := atomic.LoadInt32(&executions); got != 1 {
		t.Fatalf("%d executions for 4 aliased keys of one fingerprint, want 1", got)
	}
	primaries := 0
	for i, r := range rs {
		if r.Err != nil || r.Value != 42 {
			t.Fatalf("result %d: %+v", i, r)
		}
		if !r.Cached {
			primaries++
		}
	}
	if primaries != 1 {
		t.Fatalf("%d primaries, want 1", primaries)
	}
	if len(stored) != 4 {
		t.Fatalf("stored %d cache entries, want one per requesting key (4): %v", len(stored), stored)
	}
	for i := 0; i < 4; i++ {
		if v := stored[fmt.Sprintf("alias-%d\x00fp-same", i)]; v != 42 {
			t.Fatalf("alias-%d stored %d, want 42", i, v)
		}
	}
}

// Same-key twins (the Naive baseline planned under one key by several
// experiments) must not duplicate the primary's cache line: the
// primary's Store covers them, while aliased keys still get their own.
func TestFlightSameKeyTwinStoresOnce(t *testing.T) {
	flight := NewFlight[int]()
	var mu sync.Mutex
	stores := map[string]int{}
	mk := func(key string) []Job[int] {
		return []Job[int]{{
			Key:         key,
			Fingerprint: "fp-shared",
			Run:         func() (int, error) { return 7, nil },
		}}
	}
	opts := Options[int]{Flight: flight, Store: func(key, fp string, v int) {
		mu.Lock()
		defer mu.Unlock()
		stores[key]++
	}}
	RunJobs(mk("naive"), opts) // primary: stores under its key
	RunJobs(mk("naive"), opts) // same-key twin: skips the redundant store
	RunJobs(mk("alias"), opts) // aliased key: stores under its own key
	if len(stores) != 2 || stores["naive"] != 1 || stores["alias"] != 1 {
		t.Fatalf("stores = %v, want exactly one per distinct key", stores)
	}
}

// A failed flight identity must not be written back for followers
// either.
func TestFlightFollowerSkipsFailedWriteBack(t *testing.T) {
	flight := NewFlight[int]()
	stored := 0
	var mu sync.Mutex
	jobs := make([]Job[int], 3)
	for i := range jobs {
		jobs[i] = Job[int]{
			Key:         fmt.Sprintf("k-%d", i),
			Fingerprint: "fp-fail",
			Run:         func() (int, error) { return 0, fmt.Errorf("boom") },
		}
	}
	rs := RunJobs(jobs, Options[int]{
		Parallelism: 3,
		Flight:      flight,
		Lookup:      func(string, string) (int, bool) { return 0, false },
		Store: func(string, string, int) {
			mu.Lock()
			defer mu.Unlock()
			stored++
		},
	})
	for i, r := range rs {
		if r.Err == nil || r.Cached {
			t.Fatalf("result %d: %+v", i, r)
		}
	}
	if stored != 0 {
		t.Fatalf("failed identity written back %d times", stored)
	}
}
