package runner

import (
	"fmt"
	"strings"
	"sync/atomic"
	"testing"

	"bulkpim/internal/system"
)

func intJobs(n int, fail map[int]bool) []Job[int] {
	jobs := make([]Job[int], n)
	for i := 0; i < n; i++ {
		i := i
		jobs[i] = Job[int]{Key: fmt.Sprintf("job-%d", i), Run: func() (int, error) {
			if fail[i] {
				return 0, fmt.Errorf("boom %d", i)
			}
			return i * 10, nil
		}}
	}
	return jobs
}

// Results must come back ordered by submission index at every
// parallelism level.
func TestRunJobsSubmissionOrder(t *testing.T) {
	for _, par := range []int{1, 2, 8, 0} {
		rs := RunJobs(intJobs(37, nil), Options[int]{Parallelism: par})
		if len(rs) != 37 {
			t.Fatalf("par=%d: got %d results", par, len(rs))
		}
		for i, r := range rs {
			if r.Index != i || r.Value != i*10 || r.Err != nil {
				t.Fatalf("par=%d: result %d = %+v", par, i, r)
			}
			if r.Key != fmt.Sprintf("job-%d", i) {
				t.Fatalf("par=%d: result %d key %q", par, i, r.Key)
			}
		}
	}
}

// A mid-batch failure is reported against its job key; siblings keep
// their results.
func TestRunJobsErrorCapture(t *testing.T) {
	rs := RunJobs(intJobs(9, map[int]bool{4: true}), Options[int]{Parallelism: 3})
	for i, r := range rs {
		if i == 4 {
			if r.Err == nil || !strings.Contains(r.Err.Error(), "boom 4") {
				t.Fatalf("job 4 error = %v", r.Err)
			}
			if r.Key != "job-4" {
				t.Fatalf("job 4 key = %q", r.Key)
			}
			continue
		}
		if r.Err != nil || r.Value != i*10 {
			t.Fatalf("sibling %d lost: %+v", i, r)
		}
	}
}

// A panicking job becomes a per-job error instead of crashing the pool.
func TestRunJobsPanicCapture(t *testing.T) {
	jobs := intJobs(4, nil)
	jobs[2].Run = func() (int, error) { panic("kaboom") }
	rs := RunJobs(jobs, Options[int]{Parallelism: 4})
	if rs[2].Err == nil || !strings.Contains(rs[2].Err.Error(), "kaboom") {
		t.Fatalf("panic not captured: %v", rs[2].Err)
	}
	for _, i := range []int{0, 1, 3} {
		if rs[i].Err != nil {
			t.Fatalf("sibling %d: %v", i, rs[i].Err)
		}
	}
}

// OnResult is serialized and sees a monotonically increasing done count
// reaching the total.
func TestRunJobsProgress(t *testing.T) {
	var calls int32
	last := 0
	rs := RunJobs(intJobs(16, nil), Options[int]{
		Parallelism: 4,
		OnResult: func(done, total int, r JobResult[int]) {
			atomic.AddInt32(&calls, 1)
			if total != 16 || done != last+1 {
				t.Errorf("done=%d total=%d last=%d", done, total, last)
			}
			last = done
		},
	})
	if len(rs) != 16 || calls != 16 {
		t.Fatalf("results=%d calls=%d", len(rs), calls)
	}
}

// Parallelism 1 runs jobs strictly in submission order.
func TestRunJobsSequentialOrder(t *testing.T) {
	var order []int
	jobs := make([]Job[int], 8)
	for i := range jobs {
		i := i
		jobs[i] = Job[int]{Key: fmt.Sprintf("j%d", i), Run: func() (int, error) {
			order = append(order, i)
			return i, nil
		}}
	}
	RunJobs(jobs, Options[int]{Parallelism: 1})
	for i, v := range order {
		if v != i {
			t.Fatalf("execution order %v", order)
		}
	}
}

func TestRunJobsEmpty(t *testing.T) {
	if rs := RunJobs(nil, Options[int]{}); len(rs) != 0 {
		t.Fatalf("got %d results", len(rs))
	}
}

// SimJob copies Base per run so Mutate never leaks across points, and
// applies the mutator before Execute.
func TestSimJobMutateIsolated(t *testing.T) {
	base := system.Default()
	base.Cores = 4
	var seen []int
	specs := []SimJob{
		{Key: "a", Base: base,
			Mutate: func(c *system.Config) { c.Cores = 16 },
			Execute: func(c system.Config) (system.Result, error) {
				seen = append(seen, c.Cores)
				return system.Result{}, nil
			}},
		{Key: "b", Base: base,
			Execute: func(c system.Config) (system.Result, error) {
				seen = append(seen, c.Cores)
				return system.Result{}, nil
			}},
	}
	rs := RunJobs(SimJobs(specs), Options[system.Result]{Parallelism: 1})
	for _, r := range rs {
		if r.Err != nil {
			t.Fatal(r.Err)
		}
	}
	if len(seen) != 2 || seen[0] != 16 || seen[1] != 4 {
		t.Fatalf("configs seen: %v", seen)
	}
	if base.Cores != 4 {
		t.Fatalf("base mutated: %d", base.Cores)
	}
}

// Summarize counts failures and sums cycles over successes only.
func TestSummarize(t *testing.T) {
	rs := []JobResult[system.Result]{
		{Value: system.Result{Cycles: 100}},
		{Err: fmt.Errorf("x"), Value: system.Result{Cycles: 999}},
		{Value: system.Result{Cycles: 50}},
	}
	s := Summarize(rs)
	if s.Jobs != 3 || s.Failed != 1 || s.Cycles != 150 {
		t.Fatalf("summary %+v", s)
	}
	if !strings.Contains(s.String(), "3 jobs (1 failed)") {
		t.Fatalf("summary string %q", s.String())
	}
}
