package memctrl

import "bulkpim/internal/mem"

// The retained reference scheduler: the pre-index implementation that
// re-derives readiness with a linear conflict scan over the whole pending
// queue on every pass — O(n²) in queue depth. It is kept as the executable
// specification of the §V-A ordering rules: the differential property
// tests pin the indexed scheduler to it over randomized request streams,
// and BenchmarkScheduleRef measures the cost the indexes remove.

// useReferenceScheduler switches this controller to the linear-scan
// reference scheduler. Must be called before the first Enqueue; the two
// schedulers issue identical streams, but their bookkeeping is disjoint.
func (c *Controller) useReferenceScheduler() {
	c.refSched = true
}

// earlierConflictRef reports whether a queued, unfinished operation that
// e must wait for exists, by scanning the whole queue — the original
// O(n) conflict check the dependency indexes replace.
func (c *Controller) earlierConflictRef(e *entry) bool {
	if e.req.Kind == mem.ReqPIMOp {
		// A PIM op waits for every earlier same-scope operation, of any
		// kind, still in the queue.
		for o := c.qHead; o != nil; o = o.qNext {
			if o.seq < e.seq && o.req.Scope == e.req.Scope {
				return true
			}
		}
		return false
	}
	// Loads/stores/writebacks wait for (a) earlier same-scope PIM ops not
	// yet completed by the PIM module, (b) earlier same-line accesses.
	if e.req.Scope != mem.NoScope {
		for _, r := range c.pimBySeq[e.req.Scope] {
			if r.seq < e.seq {
				return true
			}
		}
	}
	for o := c.qHead; o != nil; o = o.qNext {
		if o.seq < e.seq && o.req.Line == e.req.Line {
			return true
		}
	}
	return false
}

// refSchedulePass is one pass of the reference scheduler: snapshot the
// queue, re-check every waiting entry against the linear scan, issue the
// conflict-free ones in arrival order. Runs under schedule()'s
// re-entrancy guard.
func (c *Controller) refSchedulePass() {
	now := c.k.Now()
	freed := false
	snapshot := make([]*entry, 0, c.queueLen)
	for e := c.qHead; e != nil; e = e.qNext {
		snapshot = append(snapshot, e)
	}
	for _, e := range snapshot {
		if e.state != stWaiting {
			continue
		}
		if c.earlierConflictRef(e) {
			continue
		}
		isPIM := e.req.Kind == mem.ReqPIMOp // e is recycled on PIM issue
		if c.issue(e, now) && isPIM {
			freed = true
		}
	}
	if freed && c.OnSpace != nil {
		c.OnSpace()
	}
}
