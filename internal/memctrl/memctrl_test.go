package memctrl

import (
	"testing"

	"bulkpim/internal/mem"
	"bulkpim/internal/pim"
	"bulkpim/internal/sim"
)

func setup() (*sim.Kernel, *mem.Backing, *pim.Module, *Controller) {
	k := sim.NewKernel()
	b := mem.NewBacking()
	m := pim.NewModule(k, b)
	m.FixedOpLatency = 500
	m.CyclesPerMicroOp = 0
	c := New(k, m, b)
	return k, b, m, c
}

func load(line mem.LineAddr, scope mem.ScopeID) *mem.Request {
	return &mem.Request{Kind: mem.ReqLoad, Line: line, Scope: scope}
}

func pimop(scope mem.ScopeID) *mem.Request {
	return &mem.Request{Kind: mem.ReqPIMOp, Scope: scope,
		PIM: &mem.PIMCommand{Scope: scope, Program: &mem.PIMProgram{}}}
}

func TestLoadReadsBacking(t *testing.T) {
	k, b, _, c := setup()
	b.WriteWord(64, 1234)
	req := load(64, mem.NoScope)
	var doneAt sim.Tick
	req.OnDone = func(*mem.Request, any) { doneAt = k.Now() }
	if !c.Enqueue(req) {
		t.Fatal("enqueue failed")
	}
	if _, err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if doneAt != c.DRAMLatency {
		t.Fatalf("load done at %d, want %d", doneAt, c.DRAMLatency)
	}
	if req.Data == nil || b.ReadWord(64) != 1234 {
		t.Fatal("load data missing")
	}
}

func TestWritebackWritesBacking(t *testing.T) {
	k, b, _, c := setup()
	data := make([]byte, mem.LineSize)
	data[0] = 0xAA
	req := &mem.Request{Kind: mem.ReqWriteback, Line: 128, Data: data, Writer: 5}
	b.TrackWriters = true
	c.Enqueue(req)
	if _, err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if b.ByteAt(128) != 0xAA {
		t.Fatal("writeback not applied")
	}
	if b.WriterOf(128) != 5 {
		t.Fatal("writer not recorded")
	}
}

func TestPartialStore(t *testing.T) {
	k, b, _, c := setup()
	b.Write(64, []byte{1, 2, 3, 4, 5, 6, 7, 8})
	req := &mem.Request{Kind: mem.ReqStore, Line: 64, Data: []byte{0xFF, 0xEE}, Off: 2, Size: 2}
	c.Enqueue(req)
	if _, err := k.Run(); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 8)
	b.Read(64, got)
	want := []byte{1, 2, 0xFF, 0xEE, 5, 6, 7, 8}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("partial store: got %v, want %v", got, want)
		}
	}
}

func TestPIMOpGetsACKOnAccept(t *testing.T) {
	k, _, _, c := setup()
	var ackAt sim.Tick = 999999
	c.SendACK = func(r *mem.Request) { ackAt = k.Now() }
	c.Enqueue(pimop(1))
	if ackAt != 0 {
		t.Fatalf("ACK at %d, want immediately on accept", ackAt)
	}
	if _, err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

// A load to a scope must wait for an earlier-arrived PIM op to that scope
// to finish executing in the PIM module (data dependence, §V-A).
func TestLoadWaitsForEarlierSameScopePIM(t *testing.T) {
	k, _, m, c := setup()
	scopeLine := mem.LineAddr(mem.DefaultPIMBase)
	p := pimop(2)
	var pimDone sim.Tick
	m.OnComplete = func(r *mem.Request) { pimDone = k.Now(); c.pimCompleted(r) }
	// note: New() wired OnComplete to pimCompleted; rewire preserving it.
	c.Enqueue(p)
	ld := load(scopeLine, 2)
	var loadDone sim.Tick
	ld.OnDone = func(*mem.Request, any) { loadDone = k.Now() }
	c.Enqueue(ld)
	if _, err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if pimDone == 0 || loadDone == 0 {
		t.Fatal("ops did not complete")
	}
	if loadDone < pimDone+c.DRAMLatency {
		t.Fatalf("load done %d, pim done %d: load overtook the PIM op", loadDone, pimDone)
	}
}

// A load to a DIFFERENT scope proceeds in parallel with a PIM op.
func TestLoadToOtherScopeBypassesPIM(t *testing.T) {
	k, _, _, c := setup()
	c.Enqueue(pimop(2))
	ld := load(64, 3)
	var loadDone sim.Tick
	ld.OnDone = func(*mem.Request, any) { loadDone = k.Now() }
	c.Enqueue(ld)
	if _, err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if loadDone != c.DRAMLatency {
		t.Fatalf("other-scope load done at %d, want %d", loadDone, c.DRAMLatency)
	}
}

// A PIM op waits for every earlier same-scope operation (here a writeback
// that must land in the array before the op executes).
func TestPIMWaitsForEarlierSameScopeWrite(t *testing.T) {
	k, b, m, c := setup()
	m.Functional = true
	line := mem.LineAddr(mem.DefaultPIMBase)
	data := make([]byte, mem.LineSize)
	data[0] = 7
	wb := &mem.Request{Kind: mem.ReqWriteback, Line: line, Scope: 2, Data: data}
	var observed byte = 0xFF
	p := pimop(2)
	p.PIM.Program.Apply = func(bk *mem.Backing, w uint64) { observed = bk.ByteAt(mem.Addr(line)) }
	c.Enqueue(wb)
	c.Enqueue(p)
	if _, err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if observed != 7 {
		t.Fatalf("PIM op saw %d; the writeback must complete first", observed)
	}
	_ = b
}

// Same-line accesses execute in arrival order.
func TestSameLineOrdering(t *testing.T) {
	k, b, _, c := setup()
	line := mem.LineAddr(64)
	st := &mem.Request{Kind: mem.ReqWriteback, Line: line, Data: func() []byte {
		d := make([]byte, mem.LineSize)
		d[0] = 42
		return d
	}()}
	ld := load(line, mem.NoScope)
	var got byte
	ld.OnDone = func(*mem.Request, any) { got = ld.Data[0] }
	c.Enqueue(st)
	c.Enqueue(ld)
	if _, err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if got != 42 {
		t.Fatalf("load got %d, want 42 (must not pass earlier same-line write)", got)
	}
	_ = b
}

func TestQueueFullRejects(t *testing.T) {
	k, _, _, c := setup()
	c.QueueSize = 2
	if !c.Enqueue(load(0, mem.NoScope)) || !c.Enqueue(load(64, mem.NoScope)) {
		t.Fatal("first two should fit")
	}
	if c.Enqueue(load(128, mem.NoScope)) {
		t.Fatal("third must be rejected")
	}
	if c.Rejected.Value() != 1 {
		t.Fatal("rejected counter wrong")
	}
	spaces := 0
	c.OnSpace = func() { spaces++ }
	if _, err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if spaces == 0 {
		t.Fatal("OnSpace never fired")
	}
}

// Bank parallelism: two loads to different banks overlap; two to the same
// bank serialize on the bank busy window.
func TestBankParallelism(t *testing.T) {
	k, _, _, c := setup()
	var t1, t2, t3 sim.Tick
	a := load(0, mem.NoScope)                                // bank 0
	b := load(64, mem.NoScope)                               // bank 1
	s := load(mem.LineAddr(uint64(c.Banks)*64), mem.NoScope) // bank 0 again
	a.OnDone = func(*mem.Request, any) { t1 = k.Now() }
	b.OnDone = func(*mem.Request, any) { t2 = k.Now() }
	s.OnDone = func(*mem.Request, any) { t3 = k.Now() }
	c.Enqueue(a)
	c.Enqueue(b)
	c.Enqueue(s)
	if _, err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if t1 != c.DRAMLatency || t2 != c.DRAMLatency {
		t.Fatalf("different banks should overlap: %d %d", t1, t2)
	}
	if t3 != c.BankBusy+c.DRAMLatency {
		t.Fatalf("same bank load at %d, want %d", t3, c.BankBusy+c.DRAMLatency)
	}
}

// PIM ops stuck in a full PIM buffer occupy MC queue slots (back-pressure).
func TestBackpressurePropagates(t *testing.T) {
	k, _, m, c := setup()
	m.BufferSize = 1
	m.FixedOpLatency = 10000
	c.QueueSize = 4
	// One op executes, one sits in the module buffer, the rest pile up in
	// the MC queue.
	for i := 0; i < 6; i++ {
		c.Enqueue(pimop(1))
	}
	if c.QueueLen() != 4 {
		t.Fatalf("MC queue length %d, want 4 (full)", c.QueueLen())
	}
	if c.PIMForwarded.Value() != 2 {
		t.Fatalf("forwarded %d PIM ops before run, want 2 (1 executing + 1 buffered)", c.PIMForwarded.Value())
	}
	if _, err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if c.PIMForwarded.Value() != 6 {
		t.Fatalf("forwarded %d PIM ops, want all 6 eventually", c.PIMForwarded.Value())
	}
	if m.OpsExecuted.Value() != 6 {
		t.Fatalf("executed %d, want 6", m.OpsExecuted.Value())
	}
}

// An out-of-order module completion (possible only with a foreign module
// implementation — the bundled module serializes per scope) must clear
// exactly the op that finished: younger memops stay gated on the older
// op still outstanding, instead of being released by a blind head pop.
func TestPimCompletedOutOfOrder(t *testing.T) {
	k, _, m, c := setup()
	var completed []*mem.Request
	m.OnComplete = func(r *mem.Request) { completed = append(completed, r) } // intercept
	a, b := pimop(2), pimop(2)
	c.Enqueue(a)
	c.Enqueue(b)
	ld := load(mem.LineAddr(mem.DefaultPIMBase), 2)
	loadDone := false
	ld.OnDone = func(*mem.Request, any) { loadDone = true }
	c.Enqueue(ld)
	if _, err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if len(completed) != 2 || completed[0] != a || completed[1] != b {
		t.Fatalf("module completed %d ops, want [a b]", len(completed))
	}
	if loadDone {
		t.Fatal("load completed while both PIM ops are uncleared")
	}
	// Complete b first — out of arrival order.
	c.pimCompleted(b)
	if _, err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if loadDone {
		t.Fatal("load must stay gated on the older outstanding PIM op")
	}
	c.pimCompleted(a)
	if _, err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if !loadDone {
		t.Fatal("load never completed after both PIM ops cleared")
	}
}

// A completion for a request the controller never forwarded is a
// protocol violation and must not silently pop someone else's
// dependence.
func TestPimCompletedUnknownPanics(t *testing.T) {
	_, _, m, c := setup()
	m.OnComplete = func(r *mem.Request) {} // intercept
	c.Enqueue(pimop(2))
	defer func() {
		if recover() == nil {
			t.Fatal("pimCompleted for an unknown request must panic")
		}
	}()
	c.pimCompleted(pimop(2)) // same scope, but never enqueued
}

// No deadlock with the smallest possible buffers.
func TestNoDeadlockTinyBuffers(t *testing.T) {
	k, _, m, c := setup()
	m.BufferSize = 1
	c.QueueSize = 1
	k.EventLimit = 100000
	completed := 0
	var queue []*mem.Request
	for i := 0; i < 20; i++ {
		if i%2 == 0 {
			queue = append(queue, pimop(mem.ScopeID(i%3)))
		} else {
			r := load(mem.LineAddr(uint64(i)*64), mem.NoScope)
			r.OnDone = func(*mem.Request, any) { completed++ }
			queue = append(queue, r)
		}
	}
	idx, pumping := 0, false
	pump := func() {
		if pumping {
			return
		}
		pumping = true
		for idx < len(queue) && c.Enqueue(queue[idx]) {
			idx++
		}
		pumping = false
	}
	c.OnSpace = pump
	pump()
	if _, err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if completed != 10 {
		t.Fatalf("completed %d loads, want 10", completed)
	}
	if c.QueueLen() != 0 {
		t.Fatal("queue not drained")
	}
}
