package memctrl

import (
	"fmt"
	"math/rand"
	"testing"

	"bulkpim/internal/mem"
	"bulkpim/internal/pim"
	"bulkpim/internal/sim"
)

// The differential suite pins the indexed scheduler to the retained
// reference scan (earlierConflictRef) in two ways:
//
//   - TestScheduleIndexMatchesRef drives identical randomized request
//     streams — mixed kinds, colliding lines, multiple scopes and
//     modules, re-entrant completions that enqueue follow-up work —
//     through an indexed and a reference controller and requires the
//     observable outcomes (every completion tick, every counter, the
//     final clock and event count) to match exactly.
//   - TestScheduleIndexInvariant hooks the top of every indexed
//     scheduling pass and asserts that ready-heap membership equals
//     ¬earlierConflictRef for every queued entry.

// streamSpec describes one request of a randomized stream.
type streamSpec struct {
	kind  mem.ReqKind
	scope mem.ScopeID // NoScope for plain memory traffic
	line  mem.LineAddr
	chain *streamSpec // follow-up enqueued from Done (never chains further)
}

// randStream builds a conflict-heavy random request stream: few lines
// (heavy same-line collisions), few scopes, a PIM-op fraction, and some
// requests whose completion enqueues a follow-up (re-entrant Enqueue
// from inside Done callbacks).
func randStream(rng *rand.Rand, n int) []streamSpec {
	const scopes = 3
	specs := make([]streamSpec, n)
	var mk func(allowChain bool) streamSpec
	mk = func(allowChain bool) streamSpec {
		s := streamSpec{}
		r := rng.Intn(10)
		switch {
		case r < 3: // PIM op
			sc := mem.ScopeID(rng.Intn(scopes))
			s.kind = mem.ReqPIMOp
			s.scope = sc
			s.line = mem.LineOf(mem.DefaultPIMBase + mem.Addr(uint64(sc)*mem.DefaultScopeSize))
		case r < 8: // scoped load/store into a small colliding line pool
			sc := mem.ScopeID(rng.Intn(scopes))
			s.scope = sc
			s.line = mem.LineOf(mem.DefaultPIMBase +
				mem.Addr(uint64(sc)*mem.DefaultScopeSize+uint64(rng.Intn(4))*mem.LineSize))
			if rng.Intn(2) == 0 {
				s.kind = mem.ReqLoad
			} else {
				s.kind = mem.ReqWriteback
			}
		default: // plain (NoScope) traffic on its own colliding pool
			s.kind = mem.ReqLoad
			s.scope = mem.NoScope
			s.line = mem.LineAddr(uint64(rng.Intn(6)) * mem.LineSize)
		}
		if allowChain && s.kind != mem.ReqPIMOp && rng.Intn(4) == 0 {
			follow := mk(false)
			s.chain = &follow
		}
		return s
	}
	for i := range specs {
		specs[i] = mk(true)
	}
	return specs
}

// outcome is everything observable about one run of a stream.
type outcome struct {
	doneAt    []sim.Tick // per stream index (chained follow-ups offset by len)
	finalTick sim.Tick
	fired     uint64
	accepted, rejected, loads, writes, forwarded,
	opsExecuted uint64
}

func (o outcome) String() string {
	return fmt.Sprintf("final=%d fired=%d acc=%d rej=%d loads=%d writes=%d fwd=%d ops=%d done=%v",
		o.finalTick, o.fired, o.accepted, o.rejected, o.loads, o.writes, o.forwarded, o.opsExecuted, o.doneAt)
}

// runStream executes a stream on a fresh controller (reference or
// indexed, one or two PIM modules) and records the outcome. Requests are
// pumped through the bounded queue with OnSpace credits; Done callbacks
// of chained requests enqueue their follow-up through the same pump.
func runStream(t *testing.T, specs []streamSpec, ref bool, modules int, hook func(*Controller)) outcome {
	t.Helper()
	k := sim.NewKernel()
	k.EventLimit = 5_000_000
	b := mem.NewBacking()
	m := pim.NewModule(k, b)
	m.FixedOpLatency = 17
	m.CyclesPerMicroOp = 0
	m.BufferSize = 2
	c := New(k, m, b)
	for i := 1; i < modules; i++ {
		m2 := pim.NewModule(k, b)
		m2.FixedOpLatency = 29
		m2.CyclesPerMicroOp = 0
		m2.BufferSize = 2
		c.AddPIMModule(m2)
	}
	if ref {
		c.useReferenceScheduler()
	}
	c.QueueSize = 6
	if hook != nil {
		hook(c)
	}

	const never = ^sim.Tick(0)
	out := outcome{doneAt: make([]sim.Tick, 2*len(specs))}
	for i := range out.doneAt {
		out.doneAt[i] = never
	}
	var pending []*mem.Request
	build := func(s streamSpec, idx int) *mem.Request {
		req := &mem.Request{Kind: s.kind, Line: s.line, Scope: s.scope}
		if s.kind == mem.ReqPIMOp {
			req.PIM = &mem.PIMCommand{Scope: s.scope, Program: &mem.PIMProgram{MicroOps: 1}}
		}
		if s.kind == mem.ReqWriteback {
			req.Data = make([]byte, mem.LineSize)
			req.Data[0] = byte(idx)
		}
		return req
	}
	qi, pumping := 0, false
	var pump func()
	pump = func() {
		if pumping {
			return
		}
		pumping = true
		for qi < len(pending) && c.Enqueue(pending[qi]) {
			qi++
		}
		pumping = false
	}
	for i, s := range specs {
		i, s := i, s
		req := build(s, i)
		req.OnDone = func(*mem.Request, any) {
			out.doneAt[i] = k.Now()
			if s.chain != nil {
				fi := len(specs) + i
				follow := build(*s.chain, fi)
				follow.OnDone = func(*mem.Request, any) { out.doneAt[fi] = k.Now() }
				pending = append(pending, follow)
				pump()
			}
		}
		pending = append(pending, req)
	}
	c.OnSpace = pump
	pump()
	if _, err := k.Run(); err != nil {
		t.Fatalf("kernel: %v", err)
	}
	if qi != len(pending) {
		t.Fatalf("only %d/%d requests admitted", qi, len(pending))
	}
	out.finalTick = k.Now()
	out.fired = k.Fired()
	out.accepted = c.Accepted.Value()
	out.rejected = c.Rejected.Value()
	out.loads = c.LoadsServed.Value()
	out.writes = c.WritesServed.Value()
	out.forwarded = c.PIMForwarded.Value()
	for _, mod := range c.PIMs {
		out.opsExecuted += mod.OpsExecuted.Value()
	}
	return out
}

func equalOutcomes(a, b outcome) bool {
	if a.finalTick != b.finalTick || a.fired != b.fired ||
		a.accepted != b.accepted || a.rejected != b.rejected ||
		a.loads != b.loads || a.writes != b.writes ||
		a.forwarded != b.forwarded || a.opsExecuted != b.opsExecuted {
		return false
	}
	for i := range a.doneAt {
		if a.doneAt[i] != b.doneAt[i] {
			return false
		}
	}
	return true
}

// TestScheduleIndexMatchesRef: the indexed scheduler and the reference
// scan must produce identical executions for random request streams.
func TestScheduleIndexMatchesRef(t *testing.T) {
	for seed := int64(0); seed < 150; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 10 + rng.Intn(50)
		specs := randStream(rng, n)
		modules := 1 + int(seed%2)
		refOut := runStream(t, specs, true, modules, nil)
		idxOut := runStream(t, specs, false, modules, nil)
		if !equalOutcomes(refOut, idxOut) {
			t.Fatalf("seed %d (modules=%d): indexed diverged from reference\nref: %v\nidx: %v",
				seed, modules, refOut, idxOut)
		}
	}
}

// TestScheduleIndexInvariant: at the top of every indexed scheduling
// pass, ready-heap membership must equal the reference conflict scan's
// verdict for every queued entry, and the heap must hold exactly the
// ready entries.
func TestScheduleIndexInvariant(t *testing.T) {
	for seed := int64(0); seed < 60; seed++ {
		rng := rand.New(rand.NewSource(1000 + seed))
		specs := randStream(rng, 10+rng.Intn(40))
		passes := 0
		hook := func(c *Controller) {
			c.onPass = func() {
				passes++
				readyCount := 0
				for e := c.qHead; e != nil; e = e.qNext {
					if e.state == stIssued {
						continue
					}
					want := !c.earlierConflictRef(e)
					got := e.state == stReady
					if want != got {
						t.Fatalf("seed %d: entry seq=%d %s: indexed ready=%v, reference says %v",
							seed, e.seq, e.req, got, want)
					}
					if got {
						readyCount++
					}
				}
				if len(c.ready) != readyCount {
					t.Fatalf("seed %d: heap holds %d entries, %d queued entries are ready",
						seed, len(c.ready), readyCount)
				}
			}
		}
		runStream(t, specs, false, 1, hook)
		if passes == 0 {
			t.Fatalf("seed %d: invariant hook never ran", seed)
		}
	}
}
