package memctrl

import (
	"testing"

	"bulkpim/internal/mem"
	"bulkpim/internal/pim"
	"bulkpim/internal/sim"
)

// BenchmarkSchedule / BenchmarkScheduleRef drain the same deep,
// conflict-heavy request stream through the indexed scheduler and the
// retained linear-scan reference. The stream keeps the admission queue
// pinned at QueueSize — many requests colliding on a small line pool,
// with periodic PIM ops gating whole scopes — so the reference pays its
// O(queue²) conflict re-scan on every pass while the indexed scheduler
// touches only ready work. bench.yml gates the pair's speedup at >= 3x
// via cmd/benchjson.

const (
	benchReqs      = 1536
	benchQueueSize = 192
	benchScopes    = 4
	benchLines     = 6 // lines per scope; ~64 requests collide per line
)

// benchStream builds the deterministic request stream: within each scope
// a PIM op every 16 requests (gating the scope), the rest loads and
// writebacks over benchLines colliding lines, plus unscoped traffic.
func benchStream() []*mem.Request {
	reqs := make([]*mem.Request, 0, benchReqs)
	rng := uint64(0x9E3779B97F4A7C15)
	next := func(n int) int {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		return int(rng % uint64(n))
	}
	for i := 0; i < benchReqs; i++ {
		switch {
		case i%16 == 7: // PIM op
			sc := mem.ScopeID(next(benchScopes))
			reqs = append(reqs, &mem.Request{
				Kind:  mem.ReqPIMOp,
				Scope: sc,
				Line:  mem.LineOf(mem.DefaultPIMBase + mem.Addr(uint64(sc)*mem.DefaultScopeSize)),
				PIM:   &mem.PIMCommand{Scope: sc, Program: &mem.PIMProgram{MicroOps: 1}},
			})
		case i%5 == 0: // unscoped traffic on its own colliding pool
			reqs = append(reqs, &mem.Request{
				Kind: mem.ReqLoad,
				Line: mem.LineAddr(uint64(next(benchLines)) * mem.LineSize),
			})
		default: // scoped loads/writebacks on few lines
			sc := mem.ScopeID(next(benchScopes))
			kind := mem.ReqLoad
			if i%3 == 0 {
				kind = mem.ReqWriteback
			}
			reqs = append(reqs, &mem.Request{
				Kind:  kind,
				Scope: sc,
				Line: mem.LineOf(mem.DefaultPIMBase +
					mem.Addr(uint64(sc)*mem.DefaultScopeSize+uint64(next(benchLines))*mem.LineSize)),
			})
		}
	}
	return reqs
}

func runScheduleBench(b *testing.B, ref bool) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		k := sim.NewKernel()
		bk := mem.NewBacking()
		m := pim.NewModule(k, bk)
		m.FixedOpLatency = 300
		m.CyclesPerMicroOp = 0
		m.BufferSize = 16
		c := New(k, m, bk)
		if ref {
			c.useReferenceScheduler()
		}
		c.QueueSize = benchQueueSize
		reqs := benchStream()
		qi, pumping := 0, false
		pump := func() {
			if pumping {
				return
			}
			pumping = true
			for qi < len(reqs) && c.Enqueue(reqs[qi]) {
				qi++
			}
			pumping = false
		}
		c.OnSpace = pump
		b.StartTimer()
		pump()
		if _, err := k.Run(); err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		if qi != len(reqs) || c.QueueLen() != 0 {
			b.Fatalf("stream not drained: admitted %d/%d, queue %d", qi, len(reqs), c.QueueLen())
		}
		b.StartTimer()
	}
	b.ReportMetric(float64(benchReqs)*float64(b.N)/b.Elapsed().Seconds(), "reqs/sec")
}

func BenchmarkSchedule(b *testing.B)    { runScheduleBench(b, false) }
func BenchmarkScheduleRef(b *testing.B) { runScheduleBench(b, true) }
