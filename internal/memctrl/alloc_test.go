package memctrl

import (
	"testing"

	"bulkpim/internal/mem"
	"bulkpim/internal/pim"
	"bulkpim/internal/sim"
)

// TestScheduleSteadyStateAllocFree pins the controller's steady-state
// request path at zero allocations: once the entry free list, request
// pool, wheel buckets and DRAM pages are warm, admitting and draining a
// conflict-heavy load/writeback stream must not allocate. PIM ops are
// excluded — their command payloads are deliberately unpooled.
func TestScheduleSteadyStateAllocFree(t *testing.T) {
	k := sim.NewKernel()
	bk := mem.NewBacking()
	m := pim.NewModule(k, bk)
	c := New(k, m, bk)
	c.QueueSize = 32
	pool := c.Pool

	const n = 256
	qi := 0
	pumping := false
	pump := func() {
		if pumping {
			return
		}
		pumping = true
		for qi < n {
			r := pool.Get()
			r.Kind = mem.ReqLoad
			r.Scope = mem.ScopeID(qi % 4)
			if qi%3 == 0 {
				r.Kind = mem.ReqWriteback
			}
			r.Line = mem.LineOf(mem.DefaultPIMBase +
				mem.Addr(uint64(qi%4)*mem.DefaultScopeSize+uint64(qi%8)*mem.LineSize))
			if !c.Enqueue(r) {
				pool.Put(r)
				break
			}
			qi++
		}
		pumping = false
	}
	c.OnSpace = pump
	drain := func() {
		qi = 0
		pump()
		if _, err := k.Run(); err != nil {
			t.Fatal(err)
		}
		if qi != n || c.QueueLen() != 0 {
			t.Fatalf("stream not drained: admitted %d/%d, queue %d", qi, n, c.QueueLen())
		}
	}
	// Warm every pool and first-touch structure. Several rounds are needed:
	// each lands on a different phase of the kernel's timing wheel, and a
	// bucket only reaches its steady-state capacity the first time a round
	// passes over it.
	for i := 0; i < 8; i++ {
		drain()
	}
	if avg := testing.AllocsPerRun(5, drain); avg != 0 {
		t.Errorf("steady-state scheduling allocates %.2f allocs/run, want 0", avg)
	}
}
