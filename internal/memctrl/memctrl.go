// Package memctrl models the host memory controller of §V-A: a bounded
// request queue that may reorder operations for performance "but does not
// violate data dependencies between operations" — same-line accesses
// execute in arrival order, operations to a scope never pass an
// earlier-arrived PIM op to that scope, and a PIM op waits for every
// earlier-arrived same-scope operation. This per-scope ordering is what
// makes a PIM op "safe" once it reaches the controller, and it is where
// the ACK of the atomic/store/scope models is generated (Fig. 6).
package memctrl

import (
	"bulkpim/internal/mem"
	"bulkpim/internal/pim"
	"bulkpim/internal/sim"
	"bulkpim/internal/stats"
	"bulkpim/internal/trace"
)

// Controller is the memory controller plus its DRAM timing model.
type Controller struct {
	k *sim.Kernel

	// QueueSize bounds the admission queue; Enqueue fails when full.
	QueueSize int
	// DRAMLatency is the access latency of one line (CPU cycles).
	DRAMLatency sim.Tick
	// Banks and BankBusy model bank-level parallelism: a bank serves one
	// access per BankBusy cycles.
	Banks    int
	BankBusy sim.Tick

	// PIMs are the attached PIM memory modules; scopes are distributed
	// round-robin across them ("different PIM modules ... connect to the
	// same host", §II-A). The paper's configuration has one.
	PIMs    []*pim.Module
	Backing *mem.Backing

	// SendACK, when set, is invoked as soon as a PIM op is accepted into
	// the queue — the point at which its order is guaranteed (§V-A) — so
	// the host can release gated operations (Fig. 6a step 3 / 6b step 4).
	SendACK func(req *mem.Request)
	// OnSpace callbacks fire when a queue slot frees (LLC egress retries).
	OnSpace func()

	seq     uint64
	entries []*entry
	// bankFree[i] is the time bank i next accepts an access.
	bankFree []sim.Tick

	// scheduling guards against re-entrant scheduler runs (completion
	// callbacks can call back into the controller).
	scheduling bool
	rerun      bool

	// outstanding per-scope PIM ops: sequence numbers from acceptance
	// until PIM-module completion.
	pimBySeq map[mem.ScopeID][]uint64

	// Tracer, when enabled for CatMC, logs admissions and completions.
	Tracer *trace.Tracer

	// Stats.
	QueueLenOnArrival stats.Mean
	Accepted          stats.Counter
	Rejected          stats.Counter
	LoadsServed       stats.Counter
	WritesServed      stats.Counter
	PIMForwarded      stats.Counter
}

type entryState uint8

const (
	stWaiting entryState = iota
	stIssued
)

type entry struct {
	req   *mem.Request
	seq   uint64
	state entryState
}

// New builds a controller over the given PIM module and backing memory.
func New(k *sim.Kernel, module *pim.Module, backing *mem.Backing) *Controller {
	c := &Controller{
		k:           k,
		QueueSize:   32,
		DRAMLatency: 220,
		Banks:       8,
		BankBusy:    40,
		Backing:     backing,
		pimBySeq:    make(map[mem.ScopeID][]uint64),
	}
	c.bankFree = make([]sim.Tick, c.Banks)
	c.AddPIMModule(module)
	return c
}

// AddPIMModule attaches another PIM module; scope s routes to module
// s mod N.
func (c *Controller) AddPIMModule(m *pim.Module) {
	m.OnComplete = c.pimCompleted
	m.OnSpace = func() { c.schedule() }
	c.PIMs = append(c.PIMs, m)
}

// moduleFor returns the module owning a scope.
func (c *Controller) moduleFor(s mem.ScopeID) *pim.Module {
	return c.PIMs[int(uint64(s)%uint64(len(c.PIMs)))]
}

// QueueLen returns the number of queued (unfinished) entries.
func (c *Controller) QueueLen() int { return len(c.entries) }

// Enqueue admits a request, or reports false when the queue is full. The
// caller (LLC egress) must retry after OnSpace.
func (c *Controller) Enqueue(req *mem.Request) bool {
	if len(c.entries) >= c.QueueSize {
		c.Rejected.Inc()
		return false
	}
	c.QueueLenOnArrival.Observe(float64(len(c.entries)))
	c.Accepted.Inc()
	if c.Tracer.Enabled(trace.CatMC) {
		c.Tracer.Emit(trace.CatMC, "mc", "accept %s qlen=%d", req, len(c.entries))
	}
	c.seq++
	e := &entry{req: req, seq: c.seq}
	c.entries = append(c.entries, e)
	if req.Kind == mem.ReqPIMOp {
		c.pimBySeq[req.Scope] = append(c.pimBySeq[req.Scope], e.seq)
		if c.SendACK != nil {
			c.SendACK(req)
		}
	}
	c.schedule()
	return true
}

// earlierConflict reports whether a queued, unfinished operation that e
// must wait for exists.
func (c *Controller) earlierConflict(e *entry) bool {
	if e.req.Kind == mem.ReqPIMOp {
		// A PIM op waits for every earlier same-scope operation, of any
		// kind, still in the queue.
		for _, o := range c.entries {
			if o.seq < e.seq && o.req.Scope == e.req.Scope {
				return true
			}
		}
		return false
	}
	// Loads/stores/writebacks wait for (a) earlier same-scope PIM ops not
	// yet completed by the PIM module, (b) earlier same-line accesses.
	if e.req.Scope != mem.NoScope {
		for _, s := range c.pimBySeq[e.req.Scope] {
			if s < e.seq {
				return true
			}
		}
	}
	for _, o := range c.entries {
		if o.seq < e.seq && o.req.Line == e.req.Line {
			return true
		}
	}
	return false
}

// schedule issues every runnable entry.
func (c *Controller) schedule() {
	if c.scheduling {
		c.rerun = true
		return
	}
	c.scheduling = true
	defer func() {
		c.scheduling = false
		if c.rerun {
			c.rerun = false
			c.schedule()
		}
	}()
	now := c.k.Now()
	freed := false
	snapshot := make([]*entry, len(c.entries))
	copy(snapshot, c.entries)
	for _, e := range snapshot {
		if e.state != stWaiting {
			continue
		}
		if c.earlierConflict(e) {
			continue
		}
		switch e.req.Kind {
		case mem.ReqPIMOp:
			// The owning module serializes per scope internally.
			if c.moduleFor(e.req.Scope).TryEnqueue(e.req) {
				c.PIMForwarded.Inc()
				e.state = stIssued
				c.remove(e)
				freed = true
			}
		default:
			bank := int(e.req.Line.Index()) % c.Banks
			start := now
			if c.bankFree[bank] > start {
				continue // bank busy; retry when something completes
			}
			c.bankFree[bank] = start + c.BankBusy
			e.state = stIssued
			ee := e
			c.k.Schedule(c.DRAMLatency, func() { c.finishDRAM(ee) })
			// Re-arm the bank after its busy window.
			c.k.Schedule(c.BankBusy, func() { c.schedule() })
		}
	}
	if freed && c.OnSpace != nil {
		c.OnSpace()
	}
}

func (c *Controller) remove(e *entry) {
	for i, o := range c.entries {
		if o == e {
			c.entries = append(c.entries[:i], c.entries[i+1:]...)
			return
		}
	}
}

func (c *Controller) finishDRAM(e *entry) {
	req := e.req
	switch req.Kind {
	case mem.ReqLoad:
		c.LoadsServed.Inc()
		if req.Data == nil {
			req.Data = make([]byte, mem.LineSize)
		}
		c.Backing.ReadLine(req.Line, req.Data)
		req.Writer = c.Backing.WriterOf(req.Line)
	case mem.ReqStore, mem.ReqWriteback:
		c.WritesServed.Inc()
		if req.Data != nil {
			off, size := req.Off, req.Size
			if size == 0 {
				off, size = 0, mem.LineSize
			}
			c.Backing.Write(req.Line.Addr()+mem.Addr(off), req.Data[:size])
			c.Backing.SetWriter(req.Line, req.Writer)
		}
	default:
		// Flushes and fences do not reach DRAM.
	}
	c.remove(e)
	done := req.Done
	if done != nil {
		done()
	}
	c.schedule()
	if c.OnSpace != nil {
		c.OnSpace()
	}
}

// pimCompleted clears the per-scope dependence when the PIM module finishes
// executing an op.
func (c *Controller) pimCompleted(req *mem.Request) {
	seqs := c.pimBySeq[req.Scope]
	if len(seqs) > 0 {
		c.pimBySeq[req.Scope] = seqs[1:]
		if len(c.pimBySeq[req.Scope]) == 0 {
			delete(c.pimBySeq, req.Scope)
		}
	}
	if req.Done != nil {
		req.Done()
	}
	c.schedule()
}
