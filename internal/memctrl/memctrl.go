// Package memctrl models the host memory controller of §V-A: a bounded
// request queue that may reorder operations for performance "but does not
// violate data dependencies between operations" — same-line accesses
// execute in arrival order, operations to a scope never pass an
// earlier-arrived PIM op to that scope, and a PIM op waits for every
// earlier-arrived same-scope operation. This per-scope ordering is what
// makes a PIM op "safe" once it reaches the controller, and it is where
// the ACK of the atomic/store/scope models is generated (Fig. 6).
//
// Scheduling is index-driven: instead of re-scanning the pending queue for
// conflicts on every pass (O(n²) in queue depth — the profile's top cost
// after the PR 6 kernel work), every entry sits on an intrusive per-line
// chain and per-scope chain in arrival order, so readiness is an O(1)
// head check, and a seq-ordered ready heap is maintained incrementally on
// Enqueue / unlink / pimCompleted. The retained reference scan
// (earlierConflictRef, refsched.go) pins the semantics: the differential
// property tests assert that the indexed scheduler issues exactly what
// the linear scan would, over randomized request streams.
package memctrl

import (
	"fmt"

	"bulkpim/internal/mem"
	"bulkpim/internal/pim"
	"bulkpim/internal/sim"
	"bulkpim/internal/stats"
	"bulkpim/internal/trace"
)

// Controller is the memory controller plus its DRAM timing model.
type Controller struct {
	k *sim.Kernel

	// QueueSize bounds the admission queue; Enqueue fails when full.
	QueueSize int
	// DRAMLatency is the access latency of one line (CPU cycles).
	DRAMLatency sim.Tick
	// Banks and BankBusy model bank-level parallelism: a bank serves one
	// access per BankBusy cycles.
	Banks    int
	BankBusy sim.Tick

	// PIMs are the attached PIM memory modules; scopes are distributed
	// round-robin across them ("different PIM modules ... connect to the
	// same host", §II-A). The paper's configuration has one.
	PIMs    []*pim.Module
	Backing *mem.Backing

	// Pool recycles requests and line buffers. New creates a private pool;
	// the system overrides it so every component shares one. finishDRAM
	// fills load data from it, and the controller — as the completion
	// invoker — releases requests that carry no completion callback
	// (writebacks) once they retire.
	Pool *mem.RequestPool

	// SendACK, when set, is invoked as soon as a PIM op is accepted into
	// the queue — the point at which its order is guaranteed (§V-A) — so
	// the host can release gated operations (Fig. 6a step 3 / 6b step 4).
	SendACK func(req *mem.Request)
	// OnSpace callbacks fire when a queue slot frees (LLC egress retries).
	OnSpace func()

	seq uint64

	// Queued (unfinished) entries as an intrusive doubly-linked list in
	// arrival order. Issued DRAM accesses stay on the list until they
	// finish (they still block younger same-line accesses); PIM ops
	// leave when forwarded to their module.
	qHead, qTail *entry
	queueLen     int

	// Dependency indexes: the youngest queued entry per line and per
	// scope. Together with the per-entry linePrev/scopePrev links they
	// answer "does an earlier conflicting entry exist" in O(1) — an
	// entry is its line's (or scope's) oldest exactly when its prev
	// pointer is nil.
	lineTail  map[mem.LineAddr]*entry
	scopeTail map[mem.ScopeID]*entry

	// ready holds conflict-free waiting entries as a min-heap on seq, so
	// a scheduling pass visits only issuable work, in arrival order.
	// held is the pass-local overflow for entries that are conflict-free
	// but resource-blocked (busy bank, full PIM buffer); it is reused
	// across passes.
	ready entryHeap
	held  []*entry

	// bankFree[i] is the time bank i next accepts an access.
	bankFree []sim.Tick

	// scheduling guards against re-entrant scheduler runs (completion
	// callbacks can call back into the controller).
	scheduling bool
	rerun      bool

	// refSched switches the controller to the retained linear-scan
	// reference scheduler (refsched.go); used by the differential tests
	// and BenchmarkScheduleRef.
	refSched bool

	// onPass, when set (tests), runs at the top of every indexed
	// scheduling pass — the point where the ready heap must agree with
	// the reference conflict scan.
	onPass func()

	// outstanding per-scope PIM ops, in acceptance order, from
	// acceptance until PIM-module completion.
	pimBySeq map[mem.ScopeID][]pimRef

	// entryFree recycles retired entries; finishFn and schedFn are the
	// once-built event callbacks (ctx = *entry / nil), so steady-state
	// scheduling allocates neither entries nor closures.
	entryFree []*entry
	finishFn  func(any)
	schedFn   func(any)

	// Tracer, when enabled for CatMC, logs admissions and completions.
	Tracer *trace.Tracer

	// Stats.
	QueueLenOnArrival stats.Mean
	Accepted          stats.Counter
	Rejected          stats.Counter
	LoadsServed       stats.Counter
	WritesServed      stats.Counter
	PIMForwarded      stats.Counter
}

// pimRef identifies one outstanding PIM op: its acceptance sequence
// number (what younger same-scope memops wait on) and the request itself
// (what pimCompleted matches completions against).
type pimRef struct {
	seq uint64
	req *mem.Request
}

type entryState uint8

const (
	// stWaiting: queued with an unresolved earlier conflict.
	stWaiting entryState = iota
	// stReady: conflict-free, on the ready heap (or held within a pass).
	stReady
	// stIssued: DRAM access in flight; still blocks younger same-line
	// accesses until finishDRAM unlinks it.
	stIssued
)

type entry struct {
	req   *mem.Request
	seq   uint64
	state entryState

	// Intrusive chains, all in arrival (seq) order: the global queue,
	// the same-line chain, and the same-scope chain.
	qPrev, qNext         *entry
	linePrev, lineNext   *entry
	scopePrev, scopeNext *entry
}

// New builds a controller over the given PIM module and backing memory.
func New(k *sim.Kernel, module *pim.Module, backing *mem.Backing) *Controller {
	c := &Controller{
		k:           k,
		QueueSize:   32,
		DRAMLatency: 220,
		Banks:       8,
		BankBusy:    40,
		Backing:     backing,
		Pool:        mem.NewRequestPool(),
		lineTail:    make(map[mem.LineAddr]*entry),
		scopeTail:   make(map[mem.ScopeID]*entry),
		pimBySeq:    make(map[mem.ScopeID][]pimRef),
	}
	c.bankFree = make([]sim.Tick, c.Banks)
	c.finishFn = func(ctx any) { c.finishDRAM(ctx.(*entry)) }
	c.schedFn = func(any) { c.schedule() }
	c.AddPIMModule(module)
	return c
}

// getEntry pops a recycled entry or allocates one.
func (c *Controller) getEntry(req *mem.Request, seq uint64) *entry {
	if n := len(c.entryFree); n > 0 {
		e := c.entryFree[n-1]
		c.entryFree = c.entryFree[:n-1]
		e.req, e.seq, e.state = req, seq, stWaiting
		return e
	}
	return &entry{req: req, seq: seq}
}

// putEntry recycles a retired (unlinked) entry.
func (c *Controller) putEntry(e *entry) {
	e.req = nil
	c.entryFree = append(c.entryFree, e)
}

// AddPIMModule attaches another PIM module; scope s routes to module
// s mod N.
func (c *Controller) AddPIMModule(m *pim.Module) {
	m.OnComplete = c.pimCompleted
	m.OnSpace = func() { c.schedule() }
	c.PIMs = append(c.PIMs, m)
}

// moduleFor returns the module owning a scope.
func (c *Controller) moduleFor(s mem.ScopeID) *pim.Module {
	return c.PIMs[int(uint64(s)%uint64(len(c.PIMs)))]
}

// QueueLen returns the number of queued (unfinished) entries.
func (c *Controller) QueueLen() int { return c.queueLen }

// Enqueue admits a request, or reports false when the queue is full. The
// caller (LLC egress) must retry after OnSpace.
func (c *Controller) Enqueue(req *mem.Request) bool {
	if c.queueLen >= c.QueueSize {
		c.Rejected.Inc()
		return false
	}
	c.QueueLenOnArrival.Observe(float64(c.queueLen))
	c.Accepted.Inc()
	if c.Tracer.Enabled(trace.CatMC) {
		c.Tracer.Emit(trace.CatMC, "mc", "accept %s qlen=%d", req, c.queueLen)
	}
	c.seq++
	e := c.getEntry(req, c.seq)
	c.link(e)
	if req.Kind == mem.ReqPIMOp {
		c.pimBySeq[req.Scope] = append(c.pimBySeq[req.Scope], pimRef{seq: e.seq, req: req})
	}
	c.markReady(e)
	if req.Kind == mem.ReqPIMOp && c.SendACK != nil {
		c.SendACK(req)
	}
	c.schedule()
	return true
}

// link appends e to the queue and to its line and scope chains. New
// arrivals are always the youngest, so every insert is a tail append.
func (c *Controller) link(e *entry) {
	if c.qTail != nil {
		c.qTail.qNext = e
		e.qPrev = c.qTail
	} else {
		c.qHead = e
	}
	c.qTail = e
	c.queueLen++

	if t := c.lineTail[e.req.Line]; t != nil {
		t.lineNext = e
		e.linePrev = t
	}
	c.lineTail[e.req.Line] = e

	if t := c.scopeTail[e.req.Scope]; t != nil {
		t.scopeNext = e
		e.scopePrev = t
	}
	c.scopeTail[e.req.Scope] = e
}

// unlink removes a finished entry (PIM op forwarded, DRAM access done)
// from the queue and both dependency chains, promoting any chain
// successor that the removal unblocks. O(1).
func (c *Controller) unlink(e *entry) {
	if e.qPrev != nil {
		e.qPrev.qNext = e.qNext
	} else {
		c.qHead = e.qNext
	}
	if e.qNext != nil {
		e.qNext.qPrev = e.qPrev
	} else {
		c.qTail = e.qPrev
	}
	c.queueLen--

	lineSucc, wasLineHead := e.lineNext, e.linePrev == nil
	if e.linePrev != nil {
		e.linePrev.lineNext = e.lineNext
	}
	if e.lineNext != nil {
		e.lineNext.linePrev = e.linePrev
	} else if e.linePrev != nil {
		c.lineTail[e.req.Line] = e.linePrev
	} else {
		delete(c.lineTail, e.req.Line)
	}

	scopeSucc, wasScopeHead := e.scopeNext, e.scopePrev == nil
	if e.scopePrev != nil {
		e.scopePrev.scopeNext = e.scopeNext
	}
	if e.scopeNext != nil {
		e.scopeNext.scopePrev = e.scopePrev
	} else if e.scopePrev != nil {
		c.scopeTail[e.req.Scope] = e.scopePrev
	} else {
		delete(c.scopeTail, e.req.Scope)
	}

	e.qPrev, e.qNext = nil, nil
	e.linePrev, e.lineNext = nil, nil
	e.scopePrev, e.scopeNext = nil, nil

	// A new line head may be a newly-unblocked memop; a new scope head
	// may be a newly-unblocked PIM op. (Memops do not depend on the
	// scope chain — their PIM dependence goes through pimBySeq — so a
	// memop scope successor needs no promotion here.)
	if wasLineHead && lineSucc != nil {
		c.markReady(lineSucc)
	}
	if wasScopeHead && scopeSucc != nil && scopeSucc.req.Kind == mem.ReqPIMOp {
		c.markReady(scopeSucc)
	}
}

// conflictFree reports whether e has no earlier queued or outstanding
// operation it must wait for — the O(1) indexed equivalent of
// earlierConflictRef.
func (c *Controller) conflictFree(e *entry) bool {
	if e.req.Kind == mem.ReqPIMOp {
		// A PIM op waits for every earlier same-scope operation, of any
		// kind, still in the queue: it must be its scope chain's oldest.
		return e.scopePrev == nil
	}
	// Loads/stores/writebacks wait for (a) earlier same-line accesses:
	// the entry must be its line chain's oldest; (b) earlier same-scope
	// PIM ops not yet completed by the PIM module: pimBySeq is in
	// acceptance order, so the head check covers the whole list.
	if e.linePrev != nil {
		return false
	}
	if e.req.Scope != mem.NoScope {
		if refs := c.pimBySeq[e.req.Scope]; len(refs) > 0 && refs[0].seq < e.seq {
			return false
		}
	}
	return true
}

// markReady promotes a waiting, conflict-free entry onto the ready heap.
// Safe to call speculatively: it re-checks state and readiness.
func (c *Controller) markReady(e *entry) {
	if c.refSched || e.state != stWaiting || !c.conflictFree(e) {
		return
	}
	e.state = stReady
	c.ready.push(e)
}

// issue dispatches a conflict-free entry: PIM ops forward to their
// module (and leave the queue), memory ops claim a bank and start their
// DRAM access. Reports false when the entry stays queued on a busy
// resource (full PIM buffer, busy bank).
func (c *Controller) issue(e *entry, now sim.Tick) bool {
	switch e.req.Kind {
	case mem.ReqPIMOp:
		// The owning module serializes per scope internally.
		if !c.moduleFor(e.req.Scope).TryEnqueue(e.req) {
			return false
		}
		c.PIMForwarded.Inc()
		c.unlink(e)
		c.putEntry(e)
		return true
	default:
		bank := int(e.req.Line.Index()) % c.Banks
		if c.bankFree[bank] > now {
			return false // bank busy; retry when something completes
		}
		c.bankFree[bank] = now + c.BankBusy
		e.state = stIssued
		c.k.ScheduleCtx(c.DRAMLatency, c.finishFn, e)
		// Re-arm the bank after its busy window.
		c.k.ScheduleCtx(c.BankBusy, c.schedFn, nil)
		return true
	}
}

// schedule issues every runnable entry, in arrival order.
func (c *Controller) schedule() {
	if c.scheduling {
		c.rerun = true
		return
	}
	c.scheduling = true
	defer func() {
		c.scheduling = false
		if c.rerun {
			c.rerun = false
			c.schedule()
		}
	}()
	if c.refSched {
		c.refSchedulePass()
		return
	}
	if c.onPass != nil {
		c.onPass()
	}
	now := c.k.Now()
	freed := false
	held := c.held[:0]
	// Drain the ready heap in seq order. Issuing an entry can unblock
	// chain successors — always younger, so they surface later in this
	// same pass, exactly where the reference scan would reach them.
	for len(c.ready) > 0 {
		e := c.ready.pop()
		isPIM := e.req.Kind == mem.ReqPIMOp // e is recycled on PIM issue
		if c.issue(e, now) {
			if isPIM {
				freed = true
			}
		} else {
			held = append(held, e) // conflict-free but resource-blocked
		}
	}
	for _, e := range held {
		c.ready.push(e)
	}
	c.held = held[:0]
	if freed && c.OnSpace != nil {
		c.OnSpace()
	}
}

func (c *Controller) finishDRAM(e *entry) {
	req := e.req
	switch req.Kind {
	case mem.ReqLoad:
		c.LoadsServed.Inc()
		if req.Data == nil {
			req.Data = c.Pool.GetLine()
			req.DataPooled = true
		}
		c.Backing.ReadLine(req.Line, req.Data)
		req.Writer = c.Backing.WriterOf(req.Line)
	case mem.ReqStore, mem.ReqWriteback:
		c.WritesServed.Inc()
		if req.Data != nil {
			off, size := req.Off, req.Size
			if size == 0 {
				off, size = 0, mem.LineSize
			}
			c.Backing.Write(req.Line.Addr()+mem.Addr(off), req.Data[:size])
			c.Backing.SetWriter(req.Line, req.Writer)
		}
	default:
		// Flushes and fences do not reach DRAM.
	}
	c.unlink(e)
	c.putEntry(e)
	if req.OnDone == nil {
		// Nobody is waiting on this request (writebacks): the controller
		// invoked the (empty) completion, so it releases the request.
		c.Pool.Put(req)
	} else {
		req.Complete()
	}
	c.schedule()
	if c.OnSpace != nil {
		c.OnSpace()
	}
}

// pimCompleted clears the per-scope dependence when the PIM module finishes
// executing an op. The completion must name an outstanding op of its
// scope: a completion the controller never forwarded is a protocol
// violation and panics. Modules serialize per scope, so completions
// normally arrive in acceptance order; an out-of-order completion (e.g.
// from a foreign module implementation) clears exactly the op that
// finished, leaving younger memops gated on the ops still outstanding.
func (c *Controller) pimCompleted(req *mem.Request) {
	refs := c.pimBySeq[req.Scope]
	idx := -1
	for i, r := range refs {
		if r.req == req {
			idx = i
			break
		}
	}
	if idx < 0 {
		panic(fmt.Sprintf("memctrl: PIM completion for unknown request %v (scope %d has %d outstanding)",
			req, req.Scope, len(refs)))
	}
	headCleared := idx == 0
	refs = append(refs[:idx], refs[idx+1:]...)
	if len(refs) == 0 {
		delete(c.pimBySeq, req.Scope)
	} else {
		c.pimBySeq[req.Scope] = refs
	}
	if headCleared && !c.refSched {
		// The oldest outstanding PIM seq moved up: memops accepted
		// before the new head are no longer PIM-gated. They live on the
		// scope chain in seq order, so walk it up to the new head.
		var stop uint64
		if len(refs) > 0 {
			stop = refs[0].seq
		}
		for en := c.scopeHead(req.Scope); en != nil && (stop == 0 || en.seq < stop); en = en.scopeNext {
			c.markReady(en)
		}
	}
	req.Complete()
	c.schedule()
}

// scopeHead returns the oldest queued entry of a scope, or nil.
func (c *Controller) scopeHead(s mem.ScopeID) *entry {
	t := c.scopeTail[s]
	if t == nil {
		return nil
	}
	for t.scopePrev != nil {
		t = t.scopePrev
	}
	return t
}

// entryHeap is a binary min-heap of entries keyed by seq (arrival
// order). Sequence numbers are unique, so the pop order is total.
type entryHeap []*entry

func (h *entryHeap) push(e *entry) {
	*h = append(*h, e)
	s := *h
	for i := len(s) - 1; i > 0; {
		p := (i - 1) / 2
		if s[p].seq <= s[i].seq {
			break
		}
		s[p], s[i] = s[i], s[p]
		i = p
	}
}

func (h *entryHeap) pop() *entry {
	s := *h
	top := s[0]
	last := len(s) - 1
	s[0] = s[last]
	s[last] = nil
	s = s[:last]
	*h = s
	for i := 0; ; {
		l, r := 2*i+1, 2*i+2
		m := i
		if l < len(s) && s[l].seq < s[m].seq {
			m = l
		}
		if r < len(s) && s[r].seq < s[m].seq {
			m = r
		}
		if m == i {
			break
		}
		s[i], s[m] = s[m], s[i]
		i = m
	}
	return top
}
