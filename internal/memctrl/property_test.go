package memctrl

import (
	"testing"
	"testing/quick"

	"bulkpim/internal/mem"
	"bulkpim/internal/pim"
	"bulkpim/internal/sim"
)

// Property: for any admission sequence, (a) same-line operations complete
// in arrival order, (b) a load to a scope never completes before an
// earlier-arrived PIM op to that scope finishes executing, and (c)
// everything completes (no deadlock).
func TestControllerOrderingProperty(t *testing.T) {
	type spec struct {
		Pim   bool
		Scope uint8
		Line  uint8
	}
	prop := func(specs []spec) bool {
		if len(specs) > 40 {
			specs = specs[:40]
		}
		k := sim.NewKernel()
		k.EventLimit = 2_000_000
		b := mem.NewBacking()
		m := pim.NewModule(k, b)
		m.FixedOpLatency = 13
		m.CyclesPerMicroOp = 0
		c := New(k, m, b)
		c.QueueSize = 8

		type done struct {
			idx  int
			at   sim.Tick
			spec spec
		}
		var dones []done
		pimDone := map[int]sim.Tick{}

		var queue []*mem.Request
		idxOf := map[*mem.Request]int{}
		for i, sp := range specs {
			scope := mem.ScopeID(sp.Scope % 3)
			var req *mem.Request
			if sp.Pim {
				req = &mem.Request{Kind: mem.ReqPIMOp, Scope: scope,
					PIM: &mem.PIMCommand{Scope: scope, Program: &mem.PIMProgram{}}}
				i := i
				req.OnDone = func(*mem.Request, any) { pimDone[i] = k.Now() }
			} else {
				line := mem.LineAddr(mem.DefaultPIMBase) + mem.LineAddr(uint64(sp.Line%16)*mem.LineSize)
				// Map the line into one of the 3 scopes by offset.
				line += mem.LineAddr(uint64(scope) * mem.DefaultScopeSize)
				req = &mem.Request{Kind: mem.ReqLoad, Line: line, Scope: scope}
				i := i
				sp := sp
				req.OnDone = func(*mem.Request, any) { dones = append(dones, done{i, k.Now(), sp}) }
			}
			idxOf[req] = i
			queue = append(queue, req)
		}
		// Pump with credits.
		qi, pumping := 0, false
		var pump func()
		pump = func() {
			if pumping {
				return
			}
			pumping = true
			for qi < len(queue) && c.Enqueue(queue[qi]) {
				qi++
			}
			pumping = false
		}
		c.OnSpace = pump
		pump()
		if _, err := k.Run(); err != nil {
			return false
		}
		if qi != len(queue) {
			return false // not everything admitted
		}
		// (c) all loads completed.
		loads := 0
		for _, sp := range specs {
			if !sp.Pim {
				loads++
			}
		}
		if len(dones) != loads {
			return false
		}
		// (b) loads complete after earlier same-scope PIM executions.
		for _, d := range dones {
			for j, sp := range specs {
				if j < d.idx && sp.Pim && sp.Scope%3 == d.spec.Scope%3 {
					if at, ok := pimDone[j]; !ok || d.at < at {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}
