package system

import (
	"testing"

	"bulkpim/internal/core"
	"bulkpim/internal/cpu"
	"bulkpim/internal/mem"
	"bulkpim/internal/sim"
)

func smallCfg(model core.Model) Config {
	cfg := Default()
	cfg.Model = model
	cfg.Cores = 2
	cfg.ScopeCount = 4
	cfg.Functional = true
	return cfg
}

// incProgram builds a PIM program that increments the byte at addr.
func incProgram(addr mem.Addr) *mem.PIMProgram {
	return &mem.PIMProgram{
		Name:     "inc",
		MicroOps: 8,
		Apply: func(b *mem.Backing, w uint64) {
			b.SetByte(addr, b.ByteAt(addr)+1)
			b.SetWriter(mem.LineOf(addr), w)
		},
	}
}

func TestStoreFenceLoadRoundTrip(t *testing.T) {
	for _, model := range core.AllVariants() {
		s := New(smallCfg(model))
		addr := mem.Addr(0x1000)
		var got byte = 0xFF
		th := &cpu.SliceThread{Instrs: []cpu.Instr{
			{Kind: cpu.InstrStore, Addr: addr, Data: []byte{0x5A}},
			{Kind: cpu.InstrFenceFull},
			{Kind: cpu.InstrLoad, Addr: addr, OnData: func(_ mem.LineAddr, d []byte) { got = d[0] }},
		}}
		res, err := s.Run([]cpu.Thread{th})
		if err != nil {
			t.Fatalf("%v: %v", model, err)
		}
		if got != 0x5A {
			t.Errorf("%v: load got %#x, want 0x5A", model, got)
		}
		if res.Cycles == 0 {
			t.Errorf("%v: zero run time", model)
		}
	}
}

// Store -> PIM op -> load to the same scope: the four proposed models must
// make the load observe the PIM op's output computed over the store
// (the scope-relaxed model with an explicit scope-fence).
func TestPIMOpOrderedWithSameScopeAccesses(t *testing.T) {
	for _, model := range core.ProposedModels() {
		s := New(smallCfg(model))
		scope := mem.ScopeID(1)
		addr := s.Scopes.ScopeBase(scope) + 128
		var got byte = 0xFF
		instrs := []cpu.Instr{
			{Kind: cpu.InstrStore, Addr: addr, Data: []byte{0x10}},
		}
		if model.NeedsScopeFence() {
			// Scope-relaxed: without fences the PIM op may legally reorder
			// with the same-scope store and load; fence on both sides.
			instrs = append(instrs, cpu.Instr{Kind: cpu.InstrScopeFence, Scope: scope})
		}
		instrs = append(instrs, cpu.Instr{Kind: cpu.InstrPIMOp, Scope: scope, Prog: incProgram(addr)})
		if model.NeedsScopeFence() {
			instrs = append(instrs, cpu.Instr{Kind: cpu.InstrScopeFence, Scope: scope})
		}
		instrs = append(instrs, cpu.Instr{
			Kind: cpu.InstrLoad, Addr: addr,
			OnData: func(_ mem.LineAddr, d []byte) { got = d[int(addr)%mem.LineSize] },
		})
		if _, err := s.Run([]cpu.Thread{&cpu.SliceThread{Instrs: instrs}}); err != nil {
			t.Fatalf("%v: %v", model, err)
		}
		if got != 0x11 {
			t.Errorf("%v: load got %#x, want 0x11 (store visible to PIM, PIM visible to load)", model, got)
		}
	}
}

// The naive baseline leaves the dirty store in the cache: the PIM op reads
// stale memory and the later load hits the pre-PIM cached value.
func TestNaiveBaselineObservesStaleData(t *testing.T) {
	s := New(smallCfg(core.Naive))
	scope := mem.ScopeID(1)
	addr := s.Scopes.ScopeBase(scope) + 128
	var got byte = 0xFF
	th := &cpu.SliceThread{Instrs: []cpu.Instr{
		{Kind: cpu.InstrStore, Addr: addr, Data: []byte{0x10}},
		{Kind: cpu.InstrPIMOp, Scope: scope, Prog: incProgram(addr)},
		{Kind: cpu.InstrCompute, Cycles: 5000}, // let the PIM op execute
		{Kind: cpu.InstrLoad, Addr: addr, OnData: func(_ mem.LineAddr, d []byte) { got = d[int(addr)%mem.LineSize] }},
	}}
	if _, err := s.Run([]cpu.Thread{th}); err != nil {
		t.Fatal(err)
	}
	if got == 0x11 {
		t.Error("naive baseline accidentally coherent; expected stale read")
	}
}

// Atomic model stalls the core until the ACK; scope-relaxed does not.
func TestAtomicStallsRelaxedDoesNot(t *testing.T) {
	elapsed := func(model core.Model) sim.Tick {
		s := New(smallCfg(model))
		th := &cpu.SliceThread{Instrs: []cpu.Instr{
			{Kind: cpu.InstrPIMOp, Scope: 1, Prog: &mem.PIMProgram{Name: "nop", MicroOps: 100}},
		}}
		res, err := s.Run([]cpu.Thread{th})
		if err != nil {
			t.Fatalf("%v: %v", model, err)
		}
		return res.Cycles
	}
	atomic := elapsed(core.Atomic)
	relaxed := elapsed(core.ScopeRelaxed)
	if atomic <= relaxed {
		t.Errorf("atomic retire %d should exceed scope-relaxed %d (ACK round trip)", atomic, relaxed)
	}
	// The ACK path is core->LLC->MC and back: at least 2 link latencies.
	if atomic < 20 {
		t.Errorf("atomic retire %d suspiciously fast", atomic)
	}
}

// Store model: a load to a different scope may complete while the PIM op
// awaits its ACK; a load to the same scope must wait.
func TestStoreModelLoadBypass(t *testing.T) {
	cfg := smallCfg(core.Store)
	// Slow the PIM path so the ACK is late.
	cfg.PIMFixedLatency = 2000
	s := New(cfg)
	scope := mem.ScopeID(1)
	other := s.Scopes.ScopeBase(2) + 64
	same := s.Scopes.ScopeBase(1) + 64
	var tOther, tSame, tAck sim.Tick

	// Observe ACK time via a second thread is overkill; instead record
	// the completion times and require other < same.
	th := &cpu.SliceThread{Instrs: []cpu.Instr{
		{Kind: cpu.InstrPIMOp, Scope: scope, Prog: &mem.PIMProgram{Name: "nop", MicroOps: 50}},
		{Kind: cpu.InstrLoad, Addr: other, OnData: func(_ mem.LineAddr, _ []byte) { tOther = s.K.Now() }},
		{Kind: cpu.InstrLoad, Addr: same, OnData: func(_ mem.LineAddr, _ []byte) { tSame = s.K.Now() }},
	}}
	if _, err := s.Run([]cpu.Thread{th}); err != nil {
		t.Fatal(err)
	}
	_ = tAck
	if tOther == 0 || tSame == 0 {
		t.Fatal("loads did not complete")
	}
	if tSame <= tOther {
		t.Errorf("same-scope load at %d should trail other-scope load at %d", tSame, tOther)
	}
}

// Scope model: PIM ops to different scopes issue concurrently; ops to one
// scope serialize on ACKs.
func TestScopeModelInterleavesScopes(t *testing.T) {
	cfg := smallCfg(core.Scope)
	s := New(cfg)
	var instrs []cpu.Instr
	for i := 0; i < 8; i++ {
		instrs = append(instrs, cpu.Instr{
			Kind: cpu.InstrPIMOp, Scope: mem.ScopeID(i % 4),
			Prog: &mem.PIMProgram{Name: "nop", MicroOps: 20},
		})
	}
	instrs = append(instrs, cpu.Instr{Kind: cpu.InstrFencePIM})
	res, err := s.Run([]cpu.Thread{&cpu.SliceThread{Instrs: instrs}})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Stats["pim.ops_executed"]; got != 8 {
		t.Fatalf("executed %v PIM ops, want 8", got)
	}
	// With 4 scopes live the module should have seen scope diversity.
	if res.Stats["pim.unique_scopes_mean"] <= 0 && res.Stats["pim.buffer_len_mean"] > 0 {
		t.Error("no scope diversity recorded")
	}
}

func TestBurstReadsAndVerifies(t *testing.T) {
	s := New(smallCfg(core.Atomic))
	base := s.Scopes.ScopeBase(0)
	for i := 0; i < 256; i++ {
		s.Backing.SetByte(base+mem.Addr(i), byte(i))
	}
	seen := map[mem.LineAddr][]byte{}
	th := &cpu.SliceThread{Instrs: []cpu.Instr{
		{Kind: cpu.InstrLoadBurst, Burst: []cpu.BurstRange{{Start: base, Bytes: 256}},
			OnData: func(l mem.LineAddr, d []byte) {
				cp := make([]byte, len(d))
				copy(cp, d)
				seen[l] = cp
			}},
	}}
	if _, err := s.Run([]cpu.Thread{th}); err != nil {
		t.Fatal(err)
	}
	if len(seen) != 4 {
		t.Fatalf("burst touched %d lines, want 4", len(seen))
	}
	for l, d := range seen {
		for i, b := range d {
			want := byte(int(l.Addr()-base) + i)
			if b != want {
				t.Fatalf("line %#x byte %d = %#x, want %#x", uint64(l), i, b, want)
			}
		}
	}
}

func TestBarrierSynchronizesThreads(t *testing.T) {
	s := New(smallCfg(core.Atomic))
	bar := cpu.NewBarrier(2)
	var order []int
	mk := func(id int, work sim.Tick) cpu.Thread {
		return &cpu.SliceThread{Instrs: []cpu.Instr{
			{Kind: cpu.InstrCompute, Cycles: work},
			{Kind: cpu.InstrBarrier, Barrier: bar},
			{Kind: cpu.InstrCompute, Cycles: 1,
				OnData: nil},
		}}
	}
	_ = order
	t0 := mk(0, 10)
	t1 := mk(1, 500)
	res, err := s.Run([]cpu.Thread{t0, t1})
	if err != nil {
		t.Fatal(err)
	}
	// Both threads must finish after the slow one's compute.
	if res.Cycles < 500 {
		t.Fatalf("run ended at %d, want >= 500 (barrier)", res.Cycles)
	}
	for _, c := range s.Cores[:2] {
		if c.FinishedAt < 500 {
			t.Fatalf("core %d finished at %d before the barrier released", c.ID, c.FinishedAt)
		}
	}
}

// Cross-thread coherence through the PIM region: thread 0 inserts a
// record (stores), thread 1 scans (PIM) after a barrier, then reads.
func TestCrossThreadInsertThenPIMScan(t *testing.T) {
	for _, model := range core.ProposedModels() {
		s := New(smallCfg(model))
		scope := mem.ScopeID(2)
		rec := s.Scopes.ScopeBase(scope) + 4096
		bar := cpu.NewBarrier(2)
		var got byte
		// The PIM program copies the record byte to a result address.
		result := s.Scopes.ScopeBase(scope) + 8192
		prog := &mem.PIMProgram{
			Name: "copy", MicroOps: 16,
			Apply: func(b *mem.Backing, w uint64) {
				b.SetByte(result, b.ByteAt(rec))
				b.SetWriter(mem.LineOf(result), w)
			},
		}
		writer := &cpu.SliceThread{Instrs: []cpu.Instr{
			{Kind: cpu.InstrStore, Addr: rec, Data: []byte{0x7E}},
			{Kind: cpu.InstrFenceFull},
			{Kind: cpu.InstrBarrier, Barrier: bar},
		}}
		scanInstrs := []cpu.Instr{
			{Kind: cpu.InstrBarrier, Barrier: bar},
			{Kind: cpu.InstrPIMOp, Scope: scope, Prog: prog},
		}
		if model.NeedsScopeFence() {
			scanInstrs = append(scanInstrs, cpu.Instr{Kind: cpu.InstrScopeFence, Scope: scope})
		}
		scanInstrs = append(scanInstrs, cpu.Instr{
			Kind: cpu.InstrLoad, Addr: result,
			OnData: func(_ mem.LineAddr, d []byte) { got = d[int(result)%mem.LineSize] },
		})
		scanner := &cpu.SliceThread{Instrs: scanInstrs}
		if _, err := s.Run([]cpu.Thread{writer, scanner}); err != nil {
			t.Fatalf("%v: %v", model, err)
		}
		if got != 0x7E {
			t.Errorf("%v: scan result %#x, want 0x7E (insert must be flushed before the PIM op)", model, got)
		}
	}
}

// Many PIM ops from several threads with small buffers: no deadlock, all
// execute (failure-injection style stress).
func TestStressTinyBuffersAllModels(t *testing.T) {
	for _, model := range core.AllVariants() {
		cfg := smallCfg(model)
		cfg.PIMBufferSize = 1
		cfg.MCQueue = 2
		cfg.PIMCredits = 4
		s := New(cfg)
		s.K.EventLimit = 3_000_000
		mkThread := func(seed int) cpu.Thread {
			var instrs []cpu.Instr
			for i := 0; i < 25; i++ {
				scope := mem.ScopeID((seed + i) % 4)
				instrs = append(instrs, cpu.Instr{
					Kind: cpu.InstrPIMOp, Scope: scope,
					Prog: &mem.PIMProgram{Name: "nop", MicroOps: 5},
				})
				if i%5 == 0 {
					addr := s.Scopes.ScopeBase(scope) + mem.Addr(64*i)
					instrs = append(instrs, cpu.Instr{Kind: cpu.InstrStore, Addr: addr, Data: []byte{byte(i)}})
					instrs = append(instrs, cpu.Instr{Kind: cpu.InstrLoad, Addr: addr})
				}
			}
			if model.NeedsScopeFence() {
				for sc := 0; sc < 4; sc++ {
					instrs = append(instrs, cpu.Instr{Kind: cpu.InstrScopeFence, Scope: mem.ScopeID(sc)})
				}
			}
			instrs = append(instrs, cpu.Instr{Kind: cpu.InstrFenceFull})
			return &cpu.SliceThread{Instrs: instrs}
		}
		res, err := s.Run([]cpu.Thread{mkThread(0), mkThread(1)})
		if err != nil {
			t.Fatalf("%v: %v", model, err)
		}
		if got := res.Stats["pim.ops_executed"]; got != 50 {
			t.Fatalf("%v: executed %v PIM ops, want 50", model, got)
		}
	}
}

func TestRunDeterministic(t *testing.T) {
	run := func() sim.Tick {
		s := New(smallCfg(core.Scope))
		var instrs []cpu.Instr
		for i := 0; i < 30; i++ {
			instrs = append(instrs, cpu.Instr{Kind: cpu.InstrPIMOp, Scope: mem.ScopeID(i % 4),
				Prog: &mem.PIMProgram{MicroOps: 10}})
			instrs = append(instrs, cpu.Instr{Kind: cpu.InstrLoad,
				Addr: s.Scopes.ScopeBase(mem.ScopeID(i%4)) + mem.Addr(i*64)})
		}
		instrs = append(instrs, cpu.Instr{Kind: cpu.InstrFenceFull})
		res, err := s.Run([]cpu.Thread{&cpu.SliceThread{Instrs: instrs}})
		if err != nil {
			t.Fatal(err)
		}
		return res.Cycles
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("nondeterministic: %d vs %d", a, b)
	}
}
