package system

import (
	"runtime"
	"testing"

	"bulkpim/internal/core"
	"bulkpim/internal/cpu"
	"bulkpim/internal/mem"
)

// The transaction-path benchmark drives the full core -> L1 -> LLC ->
// memory-controller pipeline with a miss-heavy load/store stream: small
// caches and a working set that never fits, so every op walks the whole
// hierarchy (fill, eviction, writeback). BenchmarkTransactionPath runs the
// pooled steady state; the Unpooled variant disables the shared request
// pool, so benchjson's allocs/op ratio measures exactly what pooling
// removes — bench.yml gates the reduction at >= 50%.

func txCfg(noPooling bool) Config {
	cfg := Default()
	cfg.Model = core.Atomic
	cfg.Cores = 1
	cfg.L1Sets, cfg.L1Ways = 4, 2
	cfg.LLCSets, cfg.LLCWays = 16, 2
	cfg.NoPooling = noPooling
	return cfg
}

// txThread issues n cacheable loads/stores striding over 256 lines —
// 8x the LLC's 32-line capacity, so the stream misses at every level.
func txThread(n int) cpu.Thread {
	payload := []byte{0xA5}
	i := 0
	return cpu.FuncThread(func() (cpu.Instr, bool) {
		if i >= n {
			return cpu.Instr{}, false
		}
		i++
		addr := mem.Addr(uint64(i%256) * mem.LineSize)
		if i%3 == 0 {
			return cpu.Instr{Kind: cpu.InstrStore, Addr: addr, Data: payload}, true
		}
		return cpu.Instr{Kind: cpu.InstrLoad, Addr: addr}, true
	})
}

func benchTxPath(b *testing.B, noPooling bool) {
	s := New(txCfg(noPooling))
	th := txThread(b.N)
	b.ReportAllocs()
	b.ResetTimer()
	if _, err := s.Run([]cpu.Thread{th}); err != nil {
		b.Fatal(err)
	}
}

func BenchmarkTransactionPath(b *testing.B)         { benchTxPath(b, false) }
func BenchmarkTransactionPathUnpooled(b *testing.B) { benchTxPath(b, true) }

// countTxAllocs runs n transaction-path ops on a fresh pooled system and
// returns the process-wide heap allocation count of the run.
func countTxAllocs(t *testing.T, n int) uint64 {
	t.Helper()
	s := New(txCfg(false))
	th := txThread(n)
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	if _, err := s.Run([]cpu.Thread{th}); err != nil {
		t.Fatal(err)
	}
	runtime.ReadMemStats(&after)
	return after.Mallocs - before.Mallocs
}

// TestTransactionPathSteadyStateAllocFree pins the pooled request path at
// zero steady-state allocations per op. A single run mixes one-time
// warm-up allocations (DRAM pages, map growth, wheel buckets) with the
// per-op cost, so the pin differences two run lengths: the warm-up
// cancels and what remains is the marginal allocations of 8000 extra ops.
func TestTransactionPathSteadyStateAllocFree(t *testing.T) {
	short := countTxAllocs(t, 2_000)
	long := countTxAllocs(t, 10_000)
	perOp := float64(long) - float64(short)
	if perOp < 0 {
		perOp = 0
	}
	perOp /= 8_000
	if perOp > 0.01 {
		t.Errorf("steady-state transaction path allocates %.4f allocs/op, want 0", perOp)
	}
}
