package system

import (
	"fmt"
	"strings"

	"bulkpim/internal/cache"
	"bulkpim/internal/core"
	"bulkpim/internal/cpu"
	"bulkpim/internal/mem"
	"bulkpim/internal/memctrl"
	"bulkpim/internal/noc"
	"bulkpim/internal/pim"
	"bulkpim/internal/sim"
	"bulkpim/internal/stats"
	"bulkpim/internal/trace"
)

// System is one assembled machine.
type System struct {
	Cfg Config

	K       *sim.Kernel
	Backing *mem.Backing
	Scopes  *mem.ScopeMap
	Geom    pim.Geometry

	Cores []*cpu.Core
	L1s   []*cache.L1
	LLC   *cache.LLC
	MC    *memctrl.Controller
	// PIM is the first module; PIMs lists all attached modules.
	PIM  *pim.Module
	PIMs []*pim.Module

	HB         *core.Recorder
	Tracer     *trace.Tracer
	Violations stats.Counter

	running int
}

// New builds and wires a system for cfg.
func New(cfg Config) *System {
	k := sim.NewKernel()
	k.EventLimit = 0
	rng := sim.NewRand(cfg.Seed)
	// One request/line-buffer pool shared by every component, so requests
	// recycled at one tile are reused by the next (NoPooling reverts every
	// Get/Put to plain allocation for baseline measurements).
	pool := mem.NewRequestPool()
	pool.Disabled = cfg.NoPooling
	backing := mem.NewBacking()
	backing.TrackWriters = cfg.Functional || cfg.TrackHB
	scopes := mem.NewScopeMap(cfg.PIMBase, cfg.ScopeSize, cfg.ScopeCount)
	geom := pim.DefaultGeometry()
	geom.Validate(cfg.ScopeSize)

	nModules := cfg.PIMModules
	if nModules < 1 {
		nModules = 1
	}
	modules := make([]*pim.Module, nModules)
	for i := range modules {
		m := pim.NewModule(k, backing)
		m.BufferSize = cfg.PIMBufferSize
		m.CyclesPerMicroOp = cfg.PIMCyclesPerMicroOp
		m.FixedOpLatency = cfg.PIMFixedLatency
		m.ZeroLatency = cfg.PIMZeroLatency
		m.Functional = cfg.Functional
		modules[i] = m
	}
	module := modules[0]

	mc := memctrl.New(k, module, backing)
	for _, m := range modules[1:] {
		mc.AddPIMModule(m)
	}
	mc.Pool = pool
	mc.QueueSize = cfg.MCQueue
	mc.DRAMLatency = cfg.DRAMLatency
	mc.Banks = cfg.Banks
	mc.BankBusy = cfg.BankBusy
	mc.SendACK = nil // wired below

	llc := cache.NewLLC(k, cfg.Model, cfg.LLCSets, cfg.LLCWays, cfg.LLCHitLatency, scopes)
	llc.Pool = pool
	llc.ScanPerSet = cfg.ScanPerSet
	llc.ScanPerLine = cfg.ScanPerLine
	llc.SetScopeBufferGeometry(cfg.LLCScopeBufSets, cfg.LLCScopeBufWays)
	if cfg.NoScopeBuffer {
		llc.DisableScopeBuffer()
	}
	if cfg.NoSBV {
		llc.DisableSBV()
	}

	s := &System{
		Cfg: cfg, K: k, Backing: backing, Scopes: scopes, Geom: geom,
		LLC: llc, MC: mc, PIM: module, PIMs: modules,
	}
	if cfg.TraceCategories != "" {
		mask, err := trace.ParseCategories(cfg.TraceCategories)
		if err != nil {
			panic(err)
		}
		s.Tracer = trace.New(k.Now, cfg.TraceWriter, mask, 4096)
		llc.Tracer = s.Tracer
		mc.Tracer = s.Tracer
		for _, m := range modules {
			m.Tracer = s.Tracer
		}
	}
	if cfg.TrackHB {
		s.HB = core.NewRecorder(cfg.Model)
	}

	l1s := make([]*cache.L1, cfg.Cores)
	down := make([]*noc.Link, cfg.Cores)
	ackLinks := make([]*noc.Link, cfg.Cores)
	for i := 0; i < cfg.Cores; i++ {
		l1s[i] = cache.NewL1(k, i, cfg.L1Sets, cfg.L1Ways, cfg.L1HitLatency)
		l1s[i].Pool = pool
		if cfg.Model.ScopeStructuresInAllCaches() {
			l1s[i].EnableScopeStructures(cfg.L1ScopeBufSets, cfg.L1ScopeBufWays)
		}
		up := noc.NewLink(k, fmt.Sprintf("up%d", i), cfg.CoreLLCLatency, cfg.CoreLLCJitter, 1, rng.Fork())
		l1s[i].Connect(llc, up)
		down[i] = noc.NewLink(k, fmt.Sprintf("down%d", i), cfg.CoreLLCLatency, cfg.CoreLLCJitter, 1, rng.Fork())
		ackLinks[i] = noc.NewLink(k, fmt.Sprintf("ack%d", i), cfg.CoreLLCLatency, 0, 1, rng.Fork())
	}
	mcLink := noc.NewLink(k, "llc-mc", cfg.LLCMCLatency, 0, 1, rng.Fork())
	mcResp := noc.NewLink(k, "mc-llc", cfg.LLCMCLatency, 0, 1, rng.Fork())
	llc.Connect(l1s, down, mc, mcLink, mcResp)
	s.L1s = l1s

	cores := make([]*cpu.Core, cfg.Cores)
	for i := 0; i < cfg.Cores; i++ {
		c := cpu.NewCore(k, i, cfg.Model)
		c.Pool = pool
		c.L1 = l1s[i]
		c.LLC = llc
		c.Reply = down[i]
		c.Scopes = scopes
		c.HB = s.HB
		c.L1HitLatency = cfg.L1HitLatency
		c.MLP = cfg.MLP
		c.StoreBufferCap = cfg.StoreBufCap
		c.PIMCredits = cfg.PIMCredits
		c.Tracer = s.Tracer
		c.Direct = noc.NewLink(k, fmt.Sprintf("direct%d", i), cfg.CoreLLCLatency, cfg.CoreLLCJitter, 1, rng.Fork())
		cores[i] = c
	}
	s.Cores = cores

	// ACK delivery callbacks are hoisted per core so each ACK sends without
	// allocating a closure.
	ackFns := make([]func(any), cfg.Cores)
	for i := 0; i < cfg.Cores; i++ {
		c := cores[i]
		ackFns[i] = func(x any) { c.OnPIMAck(x.(*mem.Request)) }
	}
	mc.SendACK = func(req *mem.Request) {
		if req.Core < 0 || req.Core >= len(cores) {
			return
		}
		ackLinks[req.Core].SendOrderedCtx(ackFns[req.Core], req)
	}
	return s
}

// Result summarizes one run.
type Result struct {
	Cycles  sim.Tick
	Seconds float64
	// DrainCycles is when the event queue fully drained (>= Cycles).
	DrainCycles sim.Tick
	Violations  uint64
	Stats       map[string]float64
}

// Run executes one thread per core (len(threads) <= cores) and returns
// when all threads retire and the machine quiesces. Run time is the
// latest thread retirement, matching the benchmark-client view.
func (s *System) Run(threads []cpu.Thread) (Result, error) {
	if len(threads) > len(s.Cores) {
		return Result{}, fmt.Errorf("system: %d threads > %d cores", len(threads), len(s.Cores))
	}
	var finished sim.Tick
	remaining := len(threads)
	for i, t := range threads {
		c := s.Cores[i]
		c.OnDone = func(id int) {
			remaining--
			if s.Cores[id].FinishedAt > finished {
				finished = s.Cores[id].FinishedAt
			}
		}
		c.Start(t)
	}
	drained, err := s.K.Run()
	if err != nil {
		return Result{}, err
	}
	if remaining != 0 {
		var diag strings.Builder
		for i := 0; i < len(threads); i++ {
			if !s.Cores[i].Done() {
				fmt.Fprintf(&diag, "\n  %s", s.Cores[i].DebugState())
			}
		}
		buffered, inflight := 0, 0
		for _, m := range s.PIMs {
			buffered += m.BufferLen()
			inflight += m.InFlight()
		}
		fmt.Fprintf(&diag, "\n  llc egress=%d; mc queue=%d; pim buffered=%d inflight=%d",
			s.LLC.EgressBacklog(), s.MC.QueueLen(), buffered, inflight)
		return Result{}, fmt.Errorf("system: deadlock, %d threads never finished (events drained at %d)%s", remaining, drained, diag.String())
	}
	return Result{
		Cycles:      finished,
		Seconds:     s.Cfg.Seconds(finished),
		DrainCycles: drained,
		Violations:  s.Violations.Value(),
		Stats:       s.collectStats(),
	}, nil
}

// aggMean folds per-module (sum, count) pairs into one mean.
func aggMean(ms []*pim.Module, f func(*pim.Module) (float64, uint64)) float64 {
	var sum float64
	var count uint64
	for _, m := range ms {
		s, c := f(m)
		sum += s
		count += c
	}
	if count == 0 {
		return 0
	}
	return sum / float64(count)
}

func aggCount(ms []*pim.Module, f func(*pim.Module) uint64) float64 {
	var n uint64
	for _, m := range ms {
		n += f(m)
	}
	return float64(n)
}

func aggMax(ms []*pim.Module, f func(*pim.Module) float64) float64 {
	var mx float64
	for _, m := range ms {
		if v := f(m); v > mx {
			mx = v
		}
	}
	return mx
}

func (s *System) collectStats() map[string]float64 {
	m := map[string]float64{
		"llc.scan_latency_mean":  s.LLC.ScanLatency.Value(),
		"llc.scan_count":         float64(s.LLC.Scans.Value()),
		"llc.sb_hit_rate":        s.LLC.SBHitRate.Value(),
		"llc.sbv_skip_ratio":     s.LLC.SkipRatio.Value(),
		"llc.lines_flushed":      float64(s.LLC.LinesFlushed.Value()),
		"llc.hits":               float64(s.LLC.Hits.Value()),
		"llc.misses":             float64(s.LLC.Misses.Value()),
		"llc.writebacks":         float64(s.LLC.Writebacks.Value()),
		"pim.buffer_len_mean":    aggMean(s.PIMs, func(m *pim.Module) (float64, uint64) { return m.BufLenOnArrival.Sum(), m.BufLenOnArrival.Count() }),
		"pim.unique_scopes_mean": aggMean(s.PIMs, func(m *pim.Module) (float64, uint64) { return m.UniqueScopesOnArr.Sum(), m.UniqueScopesOnArr.Count() }),
		"pim.ops_executed":       aggCount(s.PIMs, func(m *pim.Module) uint64 { return m.OpsExecuted.Value() }),
		"pim.exec_cycles_mean":   aggMean(s.PIMs, func(m *pim.Module) (float64, uint64) { return m.ExecCycles.Sum(), m.ExecCycles.Count() }),
		"pim.peak_buffer":        aggMax(s.PIMs, func(m *pim.Module) float64 { return float64(m.PeakBuffer) }),
		"mc.loads":               float64(s.MC.LoadsServed.Value()),
		"mc.writes":              float64(s.MC.WritesServed.Value()),
		"mc.pim_forwarded":       float64(s.MC.PIMForwarded.Value()),
		"mc.queue_len_mean":      s.MC.QueueLenOnArrival.Value(),
	}
	var instrs, loads, pims, stalls float64
	for _, c := range s.Cores {
		instrs += float64(c.Instrs.Value())
		loads += float64(c.LoadsIssued.Value())
		pims += float64(c.PIMIssued.Value())
		stalls += float64(c.Stalls.Value())
	}
	m["cpu.instrs"] = instrs
	m["cpu.loads"] = loads
	m["cpu.pim_issued"] = pims
	m["cpu.stalls"] = stalls
	m["violations"] = float64(s.Violations.Value())
	return m
}
