package system

import (
	"testing"

	"bulkpim/internal/core"
	"bulkpim/internal/cpu"
	"bulkpim/internal/mem"
	"bulkpim/internal/sim"
)

// Two PIM modules double the cross-scope execution bandwidth when ops to
// different scopes contend: adjacent scopes route to different modules.
func TestMultiModuleParallelism(t *testing.T) {
	run := func(modules int) sim.Tick {
		cfg := smallCfg(core.Naive)
		cfg.PIMModules = modules
		cfg.PIMFixedLatency = 5000
		cfg.PIMCyclesPerMicroOp = 0
		s := New(cfg)
		// Ops to scopes 0 and 1 per round; with one module both still run
		// in parallel (per-scope parallelism); the difference appears when
		// module-level serialization binds — force it by making many
		// ops to many scopes with a tiny per-module buffer.
		cfg2 := cfg
		_ = cfg2
		var instrs []cpu.Instr
		for i := 0; i < 16; i++ {
			instrs = append(instrs, cpu.Instr{Kind: cpu.InstrPIMOp,
				Scope: mem.ScopeID(i % 4), Prog: &mem.PIMProgram{MicroOps: 0}})
		}
		instrs = append(instrs, cpu.Instr{Kind: cpu.InstrFencePIM})
		res, err := s.Run([]cpu.Thread{&cpu.SliceThread{Instrs: instrs}})
		if err != nil {
			t.Fatal(err)
		}
		if got := res.Stats["pim.ops_executed"]; got != 16 {
			t.Fatalf("modules=%d: executed %v, want 16", modules, got)
		}
		return res.DrainCycles
	}
	one := run(1)
	two := run(2)
	// Same scope set and per-scope parallelism: run time must not regress
	// with more modules.
	if two > one {
		t.Fatalf("2 modules (%d cycles) slower than 1 (%d)", two, one)
	}
}

// Functional correctness is module-count independent: a scope's programs
// always execute on its owning module in order.
func TestMultiModuleFunctionalRouting(t *testing.T) {
	cfg := smallCfg(core.Atomic)
	cfg.PIMModules = 3
	s := New(cfg)
	var order []int
	var instrs []cpu.Instr
	for i := 0; i < 9; i++ {
		i := i
		instrs = append(instrs, cpu.Instr{Kind: cpu.InstrPIMOp,
			Scope: mem.ScopeID(i % 3),
			Prog: &mem.PIMProgram{MicroOps: 2, Apply: func(b *mem.Backing, w uint64) {
				order = append(order, i)
			}}})
	}
	if _, err := s.Run([]cpu.Thread{&cpu.SliceThread{Instrs: instrs}}); err != nil {
		t.Fatal(err)
	}
	if len(order) != 9 {
		t.Fatalf("executed %d ops, want 9", len(order))
	}
	// Per scope (i mod 3), execution order must follow issue order.
	last := map[int]int{}
	for _, i := range order {
		if prev, ok := last[i%3]; ok && i < prev {
			t.Fatalf("scope %d ops reordered: %v", i%3, order)
		}
		last[i%3] = i
	}
	// Stats aggregate across modules.
	if s.PIMs[0] == nil || len(s.PIMs) != 3 {
		t.Fatal("modules not attached")
	}
}
