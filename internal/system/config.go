// Package system assembles the full simulated machine of Table II: cores,
// private L1s, a shared inclusive LLC with the scope buffer and SBV, the
// reordering on-chip network, the memory controller, and the bulk-bitwise
// PIM module — wired for one of the seven run modes (three baselines, four
// consistency models).
package system

import (
	"io"

	"bulkpim/internal/core"
	"bulkpim/internal/mem"
	"bulkpim/internal/sim"
)

// Config captures the architecture and system configuration (paper
// Table II) plus the ablation knobs of §VII.
type Config struct {
	Model core.Model

	// Cores and frequency.
	Cores       int
	ClockGHz    float64
	MLP         int
	StoreBufCap int
	PIMCredits  int

	// L1: private, 16KB, 64B lines, 4-way.
	L1Sets, L1Ways int
	L1HitLatency   sim.Tick
	// L1 scope buffer (scope-relaxed only): 16 sets, 1 way.
	L1ScopeBufSets, L1ScopeBufWays int

	// LLC: shared, 2MB, 64B lines, 16-way (8MB for Fig. 12).
	LLCSets, LLCWays int
	LLCHitLatency    sim.Tick
	ScanPerSet       sim.Tick
	ScanPerLine      sim.Tick
	// LLC scope buffer: 64 sets, 4-way.
	LLCScopeBufSets, LLCScopeBufWays int

	// NoC.
	CoreLLCLatency sim.Tick
	CoreLLCJitter  sim.Tick
	LLCMCLatency   sim.Tick

	// Memory controller / DRAM.
	MCQueue     int
	DRAMLatency sim.Tick
	Banks       int
	BankBusy    sim.Tick

	// PIM module (spec as in [25]).
	// PIMModules attaches N modules, scopes distributed round-robin
	// (extension; the paper evaluates 1).
	PIMModules          int
	PIMBufferSize       int // 0 = unbounded (Fig. 11a)
	PIMCyclesPerMicroOp sim.Tick
	PIMFixedLatency     sim.Tick
	PIMZeroLatency      bool // Fig. 11b

	// PIM memory: scope geometry.
	ScopeCount int
	ScopeSize  uint64
	PIMBase    mem.Addr

	// Ablations: run without the scope buffer (every PIM op scans) or
	// without the SBV (scans check every set) to quantify §IV's hardware.
	NoScopeBuffer bool
	NoSBV         bool

	// NoPooling disables the shared request/line-buffer pool (every Get
	// allocates, every Put discards). Perf baseline only: results are
	// identical either way.
	NoPooling bool

	// Functional executes PIM programs and verifies data; TrackHB records
	// the happens-before relation (litmus-scale runs only).
	Functional bool
	TrackHB    bool

	// TraceWriter + TraceCategories enable debug tracing ("cpu,cache,mc,
	// pim,noc" or "all"); see internal/trace.
	TraceWriter     io.Writer
	TraceCategories string

	Seed uint64
}

// Default returns the paper's Table II configuration: 6 x86 OoO cores at
// 3.6GHz, 16KB/4-way L1s, 2MB/16-way shared LLC, MESI, 32GB DDR4-2400
// main memory, one PIMDB-style PIM module with 2MB huge-page scopes.
func Default() Config {
	return Config{
		Model:       core.Atomic,
		Cores:       6,
		ClockGHz:    3.6,
		MLP:         8,
		StoreBufCap: 32,
		PIMCredits:  48,

		L1Sets: 64, L1Ways: 4, // 16KB
		L1HitLatency:   3,
		L1ScopeBufSets: 16, L1ScopeBufWays: 1,

		LLCSets: 2048, LLCWays: 16, // 2MB
		LLCHitLatency:   18,
		ScanPerSet:      1,
		ScanPerLine:     2,
		LLCScopeBufSets: 64, LLCScopeBufWays: 4,

		CoreLLCLatency: 8,
		CoreLLCJitter:  4,
		LLCMCLatency:   6,

		MCQueue:     32,
		DRAMLatency: 220, // ~60ns at 3.6GHz (DDR4-2400 class)
		Banks:       8,
		BankBusy:    40,

		PIMModules:          1,
		PIMBufferSize:       128,
		PIMCyclesPerMicroOp: 360, // ~100ns per array micro-op (memristive)
		PIMFixedLatency:     720,

		ScopeCount: 64,
		ScopeSize:  mem.DefaultScopeSize,
		PIMBase:    mem.DefaultPIMBase,

		Seed: 42,
	}
}

// Seconds converts cycles to wall-clock seconds at the configured clock.
func (c Config) Seconds(ticks sim.Tick) float64 {
	return float64(ticks) / (c.ClockGHz * 1e9)
}
