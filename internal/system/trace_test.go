package system

import (
	"strings"
	"testing"

	"bulkpim/internal/core"
	"bulkpim/internal/cpu"
	"bulkpim/internal/mem"
)

// Tracing captures the life of a PIM op across cpu -> cache -> mc -> pim.
func TestTraceCapturesPIMOpLifecycle(t *testing.T) {
	cfg := smallCfg(core.Atomic)
	var sb strings.Builder
	cfg.TraceWriter = &sb
	cfg.TraceCategories = "all"
	s := New(cfg)
	th := &cpu.SliceThread{Instrs: []cpu.Instr{
		{Kind: cpu.InstrPIMOp, Scope: 1, Prog: &mem.PIMProgram{Name: "traced-op", MicroOps: 4}, Label: "op"},
		{Kind: cpu.InstrLoad, Addr: s.Scopes.ScopeBase(1) + 64},
	}}
	if _, err := s.Run([]cpu.Thread{th}); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"issue", "pimop", "accept", "start scope=1", "complete scope=1", "pim-ack"} {
		if !strings.Contains(out, want) {
			t.Errorf("trace missing %q:\n%s", want, out)
		}
	}
	if s.Tracer.Count() == 0 {
		t.Fatal("tracer recorded nothing")
	}
	if len(s.Tracer.Recent()) == 0 {
		t.Fatal("ring empty")
	}
}

// Tracing disabled must leave the tracer nil and cost nothing.
func TestTraceDisabledByDefault(t *testing.T) {
	s := New(smallCfg(core.Atomic))
	if s.Tracer != nil {
		t.Fatal("tracer attached without configuration")
	}
}
