package system

// Core behaviour tests that need a wired machine: TSO semantics, store
// buffer mechanics, flush instructions, fences, uncacheable accesses, and
// the per-model PIM gates.

import (
	"testing"

	"bulkpim/internal/core"
	"bulkpim/internal/cpu"
	"bulkpim/internal/mem"
	"bulkpim/internal/sim"
)

// Store-to-load forwarding: a load right after a store to the same word
// returns the store's data before it drains.
func TestTSOStoreToLoadForwarding(t *testing.T) {
	s := New(smallCfg(core.Atomic))
	addr := mem.Addr(0x2000)
	var got byte
	var loadDone sim.Tick
	th := &cpu.SliceThread{Instrs: []cpu.Instr{
		{Kind: cpu.InstrStore, Addr: addr, Data: []byte{0x42, 0x43, 0x44, 0x45, 0x46, 0x47, 0x48, 0x49}},
		{Kind: cpu.InstrLoad, Addr: addr, OnData: func(_ mem.LineAddr, d []byte) {
			got = d[0]
			loadDone = s.K.Now()
		}},
	}}
	if _, err := s.Run([]cpu.Thread{th}); err != nil {
		t.Fatal(err)
	}
	if got != 0x42 {
		t.Fatalf("forwarded %#x, want 0x42", got)
	}
	// Forwarding must not wait for a memory round trip (~250+ cycles).
	if loadDone > 50 {
		t.Fatalf("load done at %d: not forwarded from the store buffer", loadDone)
	}
}

// TSO store-load bypassing: a load to a DIFFERENT line completes while an
// earlier store is still draining (its line missing in cache).
func TestTSOLoadBypassesPendingStore(t *testing.T) {
	s := New(smallCfg(core.Atomic))
	var storeVisible, loadDone sim.Tick
	th := &cpu.SliceThread{Instrs: []cpu.Instr{
		{Kind: cpu.InstrStore, Addr: 0x2000, Data: []byte{1}},
		{Kind: cpu.InstrLoad, Addr: 0x8000, OnData: func(_ mem.LineAddr, _ []byte) { loadDone = s.K.Now() }},
		{Kind: cpu.InstrFenceFull},
	}}
	if _, err := s.Run([]cpu.Thread{th}); err != nil {
		t.Fatal(err)
	}
	_ = storeVisible
	if loadDone == 0 {
		t.Fatal("load never completed")
	}
}

// The store buffer stalls the core when full, and drains in order.
func TestStoreBufferCapacityStall(t *testing.T) {
	cfg := smallCfg(core.Atomic)
	cfg.StoreBufCap = 2
	s := New(cfg)
	var instrs []cpu.Instr
	for i := 0; i < 10; i++ {
		instrs = append(instrs, cpu.Instr{
			Kind: cpu.InstrStore, Addr: mem.Addr(0x2000 + i*mem.LineSize), Data: []byte{byte(i)}})
	}
	instrs = append(instrs, cpu.Instr{Kind: cpu.InstrFenceFull})
	if _, err := s.Run([]cpu.Thread{&cpu.SliceThread{Instrs: instrs}}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		line := mem.LineOf(mem.Addr(0x2000 + i*mem.LineSize))
		data, _, ok := s.L1s[0].TryLoad(line)
		if !ok || data[0] != byte(i) {
			t.Fatalf("store %d lost", i)
		}
	}
}

// A full fence publishes all buffered stores before the next instruction.
func TestFenceDrainsStores(t *testing.T) {
	s := New(smallCfg(core.Atomic))
	addr := mem.Addr(0x3000)
	var after sim.Tick
	th := &cpu.SliceThread{Instrs: []cpu.Instr{
		{Kind: cpu.InstrStore, Addr: addr, Data: []byte{7}},
		{Kind: cpu.InstrFenceFull},
		{Kind: cpu.InstrCompute, Cycles: 1, OnData: nil},
	}}
	th.Instrs[2].OnData = nil
	if _, err := s.Run([]cpu.Thread{th}); err != nil {
		t.Fatal(err)
	}
	_ = after
	// After the run the store must be globally visible (L1 owns it dirty,
	// but backing is written on eviction; check through a second system
	// read via the cache path instead).
	data, _, ok := s.L1s[0].TryLoad(mem.LineOf(addr))
	if !ok || data[int(addr)%mem.LineSize] != 7 {
		t.Fatal("store not in L1 after fence")
	}
}

// SW-Flush's flush instruction writes dirty data back to memory and
// invalidates every level.
func TestFlushInstr(t *testing.T) {
	s := New(smallCfg(core.SWFlush))
	addr := mem.Addr(0x2040)
	line := mem.LineOf(addr)
	th := &cpu.SliceThread{Instrs: []cpu.Instr{
		{Kind: cpu.InstrStore, Addr: addr, Data: []byte{0x99}},
		{Kind: cpu.InstrFenceFull},
		{Kind: cpu.InstrFlush, Lines: []mem.LineAddr{line}},
	}}
	if _, err := s.Run([]cpu.Thread{th}); err != nil {
		t.Fatal(err)
	}
	if s.Backing.ByteAt(addr) != 0x99 {
		t.Fatal("flush did not write back")
	}
	if s.L1s[0].HasLine(line) || s.LLC.HasLine(line) {
		t.Fatal("flush left the line cached")
	}
}

// Uncacheable stores reach memory without allocating cache lines.
func TestUncacheableStore(t *testing.T) {
	s := New(smallCfg(core.Uncacheable))
	addr := s.Scopes.ScopeBase(1) + 0x100
	th := &cpu.SliceThread{Instrs: []cpu.Instr{
		{Kind: cpu.InstrStore, Addr: addr, Data: []byte{0xEE}},
		{Kind: cpu.InstrFenceFull},
	}}
	if _, err := s.Run([]cpu.Thread{th}); err != nil {
		t.Fatal(err)
	}
	if s.Backing.ByteAt(addr) != 0xEE {
		t.Fatal("uncacheable store lost")
	}
	if s.L1s[0].HasLine(mem.LineOf(addr)) || s.LLC.HasLine(mem.LineOf(addr)) {
		t.Fatal("uncacheable store allocated a line")
	}
}

// PIM flow-control credits bound the op flood and never deadlock.
func TestPIMCreditThrottle(t *testing.T) {
	cfg := smallCfg(core.Naive)
	cfg.PIMCredits = 2
	s := New(cfg)
	var instrs []cpu.Instr
	for i := 0; i < 30; i++ {
		instrs = append(instrs, cpu.Instr{Kind: cpu.InstrPIMOp, Scope: mem.ScopeID(i % 4),
			Prog: &mem.PIMProgram{MicroOps: 3}})
	}
	res, err := s.Run([]cpu.Thread{&cpu.SliceThread{Instrs: instrs}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats["pim.ops_executed"] != 30 {
		t.Fatalf("executed %v, want 30", res.Stats["pim.ops_executed"])
	}
	if res.Stats["cpu.stalls"] == 0 {
		t.Fatal("credit throttle never engaged")
	}
}

// Scope model: a PIM op must not pass an earlier buffered store to its
// own scope (the entry point holds it until the store drains).
func TestScopeModelPIMWaitsForSameScopeStore(t *testing.T) {
	s := New(smallCfg(core.Scope))
	scope := mem.ScopeID(1)
	addr := s.Scopes.ScopeBase(scope) + 64
	var seen byte = 0xFF
	prog := &mem.PIMProgram{Name: "read", MicroOps: 4,
		Apply: func(b *mem.Backing, w uint64) { seen = b.ByteAt(addr) }}
	th := &cpu.SliceThread{Instrs: []cpu.Instr{
		{Kind: cpu.InstrStore, Addr: addr, Data: []byte{0x31}},
		{Kind: cpu.InstrPIMOp, Scope: scope, Prog: prog},
		{Kind: cpu.InstrFenceFull},
	}}
	if _, err := s.Run([]cpu.Thread{th}); err != nil {
		t.Fatal(err)
	}
	if seen != 0x31 {
		t.Fatalf("PIM op saw %#x; the same-scope store must be visible first", seen)
	}
}

// Scope-relaxed: a PIM op may pass an earlier same-scope store when no
// fence orders them (the paper's allowed reordering).
func TestScopeRelaxedPIMMayPassStore(t *testing.T) {
	s := New(smallCfg(core.ScopeRelaxed))
	scope := mem.ScopeID(1)
	addr := s.Scopes.ScopeBase(scope) + 64
	var seen byte = 0xFF
	prog := &mem.PIMProgram{Name: "read", MicroOps: 4,
		Apply: func(b *mem.Backing, w uint64) { seen = b.ByteAt(addr) }}
	th := &cpu.SliceThread{Instrs: []cpu.Instr{
		{Kind: cpu.InstrStore, Addr: addr, Data: []byte{0x31}},
		{Kind: cpu.InstrPIMOp, Scope: scope, Prog: prog},
		{Kind: cpu.InstrFenceFull},
		{Kind: cpu.InstrScopeFence, Scope: scope},
	}}
	if _, err := s.Run([]cpu.Thread{th}); err != nil {
		t.Fatal(err)
	}
	// The store misses in L1 and takes a ~250-cycle fill; the PIM op fires
	// at commit. The op must see the PRE-store memory: the reorder the
	// model explicitly allows.
	if seen == 0x31 {
		t.Log("note: PIM op saw the store; allowed but unexpected with these latencies")
	}
}

// Determinism across every model with a mixed workload.
func TestDeterminismAllModels(t *testing.T) {
	for _, m := range core.AllVariants() {
		run := func() sim.Tick {
			s := New(smallCfg(m))
			var instrs []cpu.Instr
			for i := 0; i < 20; i++ {
				scope := mem.ScopeID(i % 4)
				instrs = append(instrs,
					cpu.Instr{Kind: cpu.InstrPIMOp, Scope: scope, Prog: &mem.PIMProgram{MicroOps: 5}},
					cpu.Instr{Kind: cpu.InstrStore, Addr: s.Scopes.ScopeBase(scope) + mem.Addr(i*64), Data: []byte{byte(i)}},
					cpu.Instr{Kind: cpu.InstrLoad, Addr: s.Scopes.ScopeBase(scope) + mem.Addr(i*64)},
				)
			}
			if m.NeedsScopeFence() {
				for sc := 0; sc < 4; sc++ {
					instrs = append(instrs, cpu.Instr{Kind: cpu.InstrScopeFence, Scope: mem.ScopeID(sc)})
				}
			}
			instrs = append(instrs, cpu.Instr{Kind: cpu.InstrFenceFull})
			res, err := s.Run([]cpu.Thread{&cpu.SliceThread{Instrs: instrs}})
			if err != nil {
				t.Fatalf("%v: %v", m, err)
			}
			return res.Cycles
		}
		if a, b := run(), run(); a != b {
			t.Errorf("%v nondeterministic: %d vs %d", m, a, b)
		}
	}
}
