package coord

import (
	"bytes"
	"encoding/json"
	"errors"
	"io"
	"testing"
)

// The wire protocol ingests bytes from subprocess pipes (possibly an
// ssh hop away), so the decoders must reject arbitrary garbage with an
// error — never a panic, never an accepted frame of an unknown type.

func FuzzProtoRequest(f *testing.F) {
	f.Add([]byte(`{"type":"job","key":"fig1/base","fp":"abc123"}` + "\n"))
	f.Add([]byte(`{"type":"job","key":"k","fp":"f","spec":{"exp":"fig3","scale":"smoke","seed":7,"overrides":"{\"Cores\":2}"}}` + "\n"))
	f.Add([]byte(`{"type":"bye"}` + "\n"))
	f.Add([]byte(`{"type":"hello","distinct":3}` + "\n"))
	f.Add([]byte(`{"type":"job"`))
	f.Add([]byte("\x00\xff{"))
	f.Add([]byte(`{"type":"job","spec":{"exp":1e999}}`))
	f.Add([]byte(`[]{"type":"bye"}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		dec := json.NewDecoder(bytes.NewReader(data))
		// Drain the stream like Serve does: frames until EOF or the
		// first malformed/unknown frame. Each iteration consumes input
		// or stops, so the loop is bounded by len(data).
		for {
			req, err := readRequest(dec)
			if err != nil {
				if !errors.Is(err, io.EOF) && err.Error() == "" {
					t.Fatalf("empty error for malformed frame")
				}
				return
			}
			if req.Type != "job" && req.Type != "bye" {
				t.Fatalf("accepted unknown frame type %q", req.Type)
			}
		}
	})
}

func FuzzProtoResponse(f *testing.F) {
	f.Add([]byte(`{"type":"result","key":"k","fp":"f","result":{"cycles":12,"seconds":0.5,"stats":{"x":1}}}` + "\n"))
	f.Add([]byte(`{"type":"result","key":"k","fp":"f","error":"boom"}` + "\n"))
	f.Add([]byte(`{"type":"hello","distinct":-1}` + "\n"))
	f.Add([]byte(`{"type":"result","result":{"stats":`))
	f.Add([]byte(`nullnull`))
	f.Fuzz(func(t *testing.T, data []byte) {
		dec := json.NewDecoder(bytes.NewReader(data))
		for {
			resp, err := readResponse(dec)
			if err != nil {
				if !errors.Is(err, io.EOF) && err.Error() == "" {
					t.Fatalf("empty error for malformed frame")
				}
				return
			}
			if resp.Type != "result" {
				t.Fatalf("accepted unknown frame type %q", resp.Type)
			}
		}
	})
}
