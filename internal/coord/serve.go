package coord

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"

	"bulkpim/internal/system"
)

// ServeOptions configures the worker half of the protocol.
type ServeOptions struct {
	// Distinct is the worker's planned distinct-job count, announced in
	// the hello handshake for skew detection.
	Distinct int
	// Execute resolves and runs the job planned under fingerprint. An
	// error becomes a job-level failure on the wire; the worker keeps
	// serving.
	Execute func(key, fingerprint string) (system.Result, error)
	// ExecuteSpec handles dynamic jobs — frames carrying a JobSpec. A
	// worker that leaves it nil reports such frames as job-level errors
	// (it cannot plan for them); the serve fleet sets it and announces
	// Distinct = DynamicDistinct.
	ExecuteSpec func(spec JobSpec, key, fingerprint string) (system.Result, error)
	// FailAfter > 0 is a crash-injection test hook: the worker serves
	// exactly FailAfter jobs, then dies via Fail when the next job
	// arrives — without replying, so that job is genuinely lost in
	// flight and the coordinator must retry it elsewhere.
	FailAfter int
	// Fail is what "dying" means; nil exits the process with status 3.
	Fail func()
	// Log receives progress lines; nil discards them. Serve never
	// writes anything but protocol frames to out, so logs are safe to
	// point at stderr.
	Log func(format string, args ...any)
}

func (o ServeOptions) log(format string, args ...any) {
	if o.Log != nil {
		o.Log(format, args...)
	}
}

// Serve runs the worker protocol loop: hello, then execute jobs as
// they arrive until a bye frame or stdin EOF. A malformed frame is an
// error (the coordinator and worker have desynchronized; continuing
// would execute wrong work); a failing job is not (its error travels
// back in the result frame).
func Serve(in io.Reader, out io.Writer, o ServeOptions) error {
	enc := json.NewEncoder(out)
	if err := enc.Encode(helloMsg{Type: "hello", Distinct: o.Distinct}); err != nil {
		return fmt.Errorf("coord worker: hello: %w", err)
	}
	dec := json.NewDecoder(in)
	served := 0
	for {
		req, err := readRequest(dec)
		if err != nil {
			if errors.Is(err, io.EOF) {
				return nil
			}
			return fmt.Errorf("coord worker: read: %w", err)
		}
		if req.Type == "bye" {
			o.log("worker: served %d jobs, bye", served)
			return nil
		}
		if o.FailAfter > 0 && served >= o.FailAfter {
			o.log("worker: -fail-after %d reached, crashing", o.FailAfter)
			if o.Fail != nil {
				o.Fail()
				// Reachable only with an injected Fail (tests): report
				// the abandoned job instead of silently returning.
				return fmt.Errorf("coord worker: crashed by -fail-after %d", o.FailAfter)
			}
			os.Exit(3)
		}
		resp := response{Type: "result", Key: req.Key, Fingerprint: req.Fingerprint}
		var v system.Result
		switch {
		case req.Spec != nil && o.ExecuteSpec != nil:
			v, err = o.ExecuteSpec(*req.Spec, req.Key, req.Fingerprint)
		case req.Spec != nil:
			err = errors.New("worker does not support dynamic jobs")
		default:
			v, err = o.Execute(req.Key, req.Fingerprint)
		}
		if err != nil {
			resp.Error = err.Error()
			o.log("worker: %s failed: %v", req.Key, err)
		} else {
			resp.Result = v
		}
		if err := enc.Encode(resp); err != nil {
			return fmt.Errorf("coord worker: write result %s: %w", req.Key, err)
		}
		served++
	}
}
