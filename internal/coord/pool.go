package coord

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"
)

// Pool is the persistent, elastic counterpart of Run: where Run
// dispatches one fixed task list to a fleet and returns, a Pool
// outlives any batch — tasks are submitted one at a time as they
// arrive (a serving daemon's cache misses), workers join and leave the
// live pool, and every settled task is delivered through its own
// callback. The fault model is Run's: a job-level error (*JobError)
// retries the task on other workers with the reporting worker
// excluded; any other error loses the worker, requeues its task and
// removes it from the fleet.
//
// Two mechanisms bound failure handling. Each task carries a dispatch
// budget (MaxAttempts): when crashed or erroring workers have consumed
// it, the task settles as permanently failed instead of bouncing
// around the fleet forever. Each worker carries an adaptive backoff:
// consecutive job errors on one worker — the signature of a flaky
// remote host rather than a bad job — put it to sleep for
// BaseBackoff·2^(streak-1), capped at MaxBackoff, so healthy workers
// absorb the load while the flaky one cools off; one success resets
// its streak.
//
// A task that every current worker is excluded from settles as failed
// only while the fleet is non-empty; with no workers at all it stays
// queued, waiting for a join (the elastic case: a daemon replacing a
// lost worker). Close fails everything still queued.
type Pool struct {
	o PoolOptions

	mu      sync.Mutex
	cond    *sync.Cond
	queue   []*poolTask
	workers map[int]*poolWorker
	nextID  int
	closed  bool
	lost    int
	retried int
	wg      sync.WaitGroup
}

// PoolOptions configures a worker pool.
type PoolOptions struct {
	// Launch starts worker id; it is invoked by AddWorker, outside the
	// pool lock (subprocess startup is slow).
	Launch func(id int) (Worker, error)
	// MaxAttempts is the per-task dispatch budget; <= 0 means 3.
	MaxAttempts int
	// BaseBackoff is a worker's sleep after its first consecutive job
	// error, doubling per additional error up to MaxBackoff. Zero values
	// default to 100ms and 5s.
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	// OnWorkerLost, when non-nil, observes each worker death (launch
	// failures are reported by AddWorker instead). It is called outside
	// the pool lock, so it may call AddWorker to replace the loss.
	OnWorkerLost func(id int, err error)
	// Log receives progress lines; nil discards them.
	Log func(format string, args ...any)
}

func (o PoolOptions) log(format string, args ...any) {
	if o.Log != nil {
		o.Log(format, args...)
	}
}

func (o PoolOptions) maxAttempts() int {
	if o.MaxAttempts > 0 {
		return o.MaxAttempts
	}
	return 3
}

func (o PoolOptions) backoff(streak int) time.Duration {
	base, max := o.BaseBackoff, o.MaxBackoff
	if base <= 0 {
		base = 100 * time.Millisecond
	}
	if max <= 0 {
		max = 5 * time.Second
	}
	d := base
	for i := 1; i < streak && d < max; i++ {
		d *= 2
	}
	if d > max {
		d = max
	}
	return d
}

// poolTask is one queued-or-running submission.
type poolTask struct {
	t        Task
	excluded map[int]bool
	attempts int
	lastErr  error
	done     func(Outcome)
}

// poolWorker is one fleet member's live state and counters.
type poolWorker struct {
	id      int
	w       Worker
	state   string // "idle", "busy", "backoff", "leaving"
	leaving bool
	done    int
	failed  int
	streak  int
	busy    time.Duration
}

// WorkerStats is one worker's health/latency/throughput snapshot.
type WorkerStats struct {
	ID    int    `json:"id"`
	State string `json:"state"`
	// Done counts tasks this worker settled successfully; Failed the
	// job-level errors it reported; FailStreak its current consecutive
	// failures (drives the backoff).
	Done       int `json:"done"`
	Failed     int `json:"failed"`
	FailStreak int `json:"fail_streak,omitempty"`
	// BusyNs is total wall time spent executing tasks; AvgNs is
	// BusyNs / (Done + Failed) — the worker's mean task latency.
	BusyNs int64 `json:"busy_ns"`
	AvgNs  int64 `json:"avg_ns,omitempty"`
}

// PoolStats is the pool's aggregate snapshot.
type PoolStats struct {
	// Queued counts tasks waiting for a worker (not those executing);
	// Lost the workers that died mid-run; Retried the re-dispatches
	// after worker crashes or job errors.
	Queued  int           `json:"queued"`
	Lost    int           `json:"lost"`
	Retried int           `json:"retried"`
	Workers []WorkerStats `json:"workers"`
}

// NewPool builds an empty pool; add workers with AddWorker.
func NewPool(o PoolOptions) *Pool {
	if o.Launch == nil {
		panic("coord.NewPool: nil Launch")
	}
	p := &Pool{o: o, workers: map[int]*poolWorker{}}
	p.cond = sync.NewCond(&p.mu)
	return p
}

// AddWorker launches and registers one worker, returning its id. Ids
// are never reused, so a task's exclusion set cannot leak onto a
// replacement worker.
func (p *Pool) AddWorker() (int, error) {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return -1, errors.New("pool closed")
	}
	id := p.nextID
	p.nextID++
	p.mu.Unlock()

	w, err := p.o.Launch(id)
	if err != nil {
		return -1, fmt.Errorf("worker %d: launch: %w", id, err)
	}
	pw := &poolWorker{id: id, w: w, state: "idle"}
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		w.Close()
		return -1, errors.New("pool closed")
	}
	p.workers[id] = pw
	p.wg.Add(1)
	p.cond.Broadcast()
	p.mu.Unlock()
	go p.loop(pw)
	p.o.log("pool: worker %d joined", id)
	return id, nil
}

// RemoveWorker marks worker id as leaving: it finishes its current
// task (if any), is dismissed cleanly, and takes no further work.
func (p *Pool) RemoveWorker(id int) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	pw, ok := p.workers[id]
	if !ok {
		return fmt.Errorf("no worker %d", id)
	}
	pw.leaving = true
	p.cond.Broadcast()
	return nil
}

// Submit enqueues one task; done is invoked exactly once with its
// outcome (success, or permanent failure after the retry budget or
// fleet exclusion), never under the pool lock.
func (p *Pool) Submit(t Task, done func(Outcome)) error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return errors.New("pool closed")
	}
	p.queue = append(p.queue, &poolTask{t: t, excluded: map[int]bool{}, done: done})
	p.cond.Broadcast()
	p.mu.Unlock()
	return nil
}

// Stats snapshots the pool, workers sorted by id.
func (p *Pool) Stats() PoolStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	s := PoolStats{Queued: len(p.queue), Lost: p.lost, Retried: p.retried,
		Workers: make([]WorkerStats, 0, len(p.workers))}
	for _, pw := range p.workers {
		ws := WorkerStats{ID: pw.id, State: pw.state, Done: pw.done, Failed: pw.failed,
			FailStreak: pw.streak, BusyNs: pw.busy.Nanoseconds()}
		if n := pw.done + pw.failed; n > 0 {
			ws.AvgNs = ws.BusyNs / int64(n)
		}
		s.Workers = append(s.Workers, ws)
	}
	sort.Slice(s.Workers, func(i, j int) bool { return s.Workers[i].ID < s.Workers[j].ID })
	return s
}

// Close fails every queued task, dismisses the fleet and waits for the
// worker loops (and their subprocesses) to exit. In-flight tasks still
// deliver their outcomes before Close returns.
func (p *Pool) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		p.wg.Wait()
		return
	}
	p.closed = true
	dropped := p.queue
	p.queue = nil
	p.cond.Broadcast()
	p.mu.Unlock()
	for _, t := range dropped {
		t.done(Outcome{Task: t.t, Err: errors.New("pool closed"), Worker: -1, Attempts: t.attempts})
	}
	p.wg.Wait()
}

// take blocks until a task worker pw may run is available; nil means
// the worker should exit (pool closed or worker leaving).
func (p *Pool) take(pw *poolWorker) *poolTask {
	p.mu.Lock()
	defer p.mu.Unlock()
	for {
		if p.closed || pw.leaving {
			pw.state = "leaving"
			return nil
		}
		for i, t := range p.queue {
			if !t.excluded[pw.id] {
				p.queue = append(p.queue[:i], p.queue[i+1:]...)
				t.attempts++
				if t.attempts > 1 {
					p.retried++
				}
				pw.state = "busy"
				return t
			}
		}
		pw.state = "idle"
		p.cond.Wait()
	}
}

// requeueLocked puts t back for the rest of the fleet after worker
// `worker` failed it — or settles it as permanently failed when its
// retry budget is gone or every current worker (of a non-empty fleet)
// is excluded. Callers hold mu; the returned task, when non-nil, must
// have its done invoked after releasing it.
func (p *Pool) requeueLocked(t *poolTask, worker int, err error) (failed *poolTask) {
	t.excluded[worker] = true
	t.lastErr = err
	if t.attempts >= p.o.maxAttempts() {
		return t
	}
	if len(p.workers) > 0 {
		eligible := false
		for id, pw := range p.workers {
			if !t.excluded[id] && !pw.leaving {
				eligible = true
				break
			}
		}
		if !eligible {
			return t
		}
	}
	// An empty fleet keeps the task queued: the pool is elastic, a
	// replacement worker may join (OnWorkerLost typically adds one).
	p.queue = append(p.queue, t)
	p.cond.Broadcast()
	return nil
}

// failOutcome renders a permanently failed task's outcome.
func failOutcome(t *poolTask) Outcome {
	err := t.lastErr
	if err == nil {
		err = errors.New("no live worker")
	}
	return Outcome{Task: t.t,
		Err:    fmt.Errorf("failed after %d attempt(s): %w", t.attempts, err),
		Worker: -1, Attempts: t.attempts}
}

// loop is one worker's lifetime: take, run, deliver, until dismissal
// or death.
func (p *Pool) loop(pw *poolWorker) {
	defer p.wg.Done()
	for {
		t := p.take(pw)
		if t == nil {
			break
		}
		start := time.Now()
		v, err := pw.w.Run(t.t)
		el := time.Since(start)
		var jerr *JobError
		switch {
		case err == nil:
			p.mu.Lock()
			pw.done++
			pw.busy += el
			pw.streak = 0
			pw.state = "idle"
			p.mu.Unlock()
			t.done(Outcome{Task: t.t, Value: v, Worker: pw.id, Attempts: t.attempts})
		case errors.As(err, &jerr):
			p.mu.Lock()
			pw.failed++
			pw.busy += el
			pw.streak++
			d := p.o.backoff(pw.streak)
			pw.state = "backoff"
			failed := p.requeueLocked(t, pw.id, err)
			p.mu.Unlock()
			p.o.log("pool: worker %d: job %s failed (%v), backing off %s", pw.id, t.t.Key, err, d)
			if failed != nil {
				failed.done(failOutcome(failed))
			}
			// The backoff is the worker sleeping, not the task waiting:
			// the requeued task is already available to the rest of the
			// fleet while this worker cools off.
			time.Sleep(d)
			p.mu.Lock()
			if pw.state == "backoff" {
				pw.state = "idle"
			}
			p.mu.Unlock()
		default:
			p.mu.Lock()
			delete(p.workers, pw.id)
			p.lost++
			failed := p.requeueLocked(t, pw.id, err)
			p.mu.Unlock()
			pw.w.Close()
			p.o.log("pool: worker %d lost (%v), requeueing %s", pw.id, err, t.t.Key)
			if failed != nil {
				failed.done(failOutcome(failed))
			}
			if p.o.OnWorkerLost != nil {
				p.o.OnWorkerLost(pw.id, err)
			}
			return
		}
	}
	pw.w.Close()
	p.mu.Lock()
	delete(p.workers, pw.id)
	p.mu.Unlock()
	p.o.log("pool: worker %d left", pw.id)
}
