package coord

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os/exec"

	"bulkpim/internal/system"
)

// ProcWorker is a Worker backed by a subprocess speaking the protocol
// on its stdin/stdout — normally `pimbench work`, possibly wrapped in
// a launcher like ssh. Its stderr is the worker's log channel and
// never carries protocol frames.
type ProcWorker struct {
	id     int
	cmd    *exec.Cmd
	stdin  io.WriteCloser
	enc    *json.Encoder
	dec    *json.Decoder
	broken bool
}

// StartProc launches argv, wires the protocol pipes, and blocks until
// the worker's hello (a worker that dies at startup surfaces as a
// decode error here, not a hang). stderr receives the worker's log;
// nil discards it.
func StartProc(id int, argv []string, stderr io.Writer) (*ProcWorker, Hello, error) {
	if len(argv) == 0 {
		return nil, Hello{}, errors.New("empty worker argv")
	}
	cmd := exec.Command(argv[0], argv[1:]...)
	if stderr == nil {
		stderr = io.Discard
	}
	cmd.Stderr = stderr
	stdin, err := cmd.StdinPipe()
	if err != nil {
		return nil, Hello{}, fmt.Errorf("worker %d: %w", id, err)
	}
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return nil, Hello{}, fmt.Errorf("worker %d: %w", id, err)
	}
	if err := cmd.Start(); err != nil {
		return nil, Hello{}, fmt.Errorf("worker %d: %w", id, err)
	}
	w := &ProcWorker{id: id, cmd: cmd, stdin: stdin,
		enc: json.NewEncoder(stdin), dec: json.NewDecoder(stdout)}
	var h helloMsg
	if err := w.dec.Decode(&h); err != nil || h.Type != "hello" {
		w.broken = true
		w.Close()
		return nil, Hello{}, fmt.Errorf("worker %d: no hello (%v)", id, err)
	}
	return w, Hello{Distinct: h.Distinct}, nil
}

// Run sends one job and blocks for its result. A result frame carrying
// an error becomes a *JobError (the worker stays usable); a transport
// failure or protocol violation marks the worker broken and is
// returned as a worker-lost error.
func (w *ProcWorker) Run(t Task) (system.Result, error) {
	if err := w.enc.Encode(request{Type: "job", Key: t.Key, Fingerprint: t.Fingerprint, Spec: t.Spec}); err != nil {
		w.broken = true
		return system.Result{}, fmt.Errorf("worker %d: send: %w", w.id, err)
	}
	resp, err := readResponse(w.dec)
	if err != nil {
		w.broken = true
		return system.Result{}, fmt.Errorf("worker %d: recv: %w", w.id, err)
	}
	if resp.Fingerprint != t.Fingerprint {
		w.broken = true
		return system.Result{}, fmt.Errorf("worker %d: protocol violation: result frame for fingerprint %q, want %q",
			w.id, resp.Fingerprint, t.Fingerprint)
	}
	if resp.Error != "" {
		return system.Result{}, &JobError{Msg: resp.Error}
	}
	return resp.Result, nil
}

// Close dismisses the worker (bye + stdin close) and reaps the
// process. A broken worker is killed instead; its exit status was
// already reported by the failing Run, so Close returns nil for it.
func (w *ProcWorker) Close() error {
	if !w.broken {
		// Best effort: a worker that already exited has a closed pipe.
		_ = w.enc.Encode(request{Type: "bye"})
	}
	w.stdin.Close()
	if w.broken && w.cmd.Process != nil {
		_ = w.cmd.Process.Kill()
	}
	err := w.cmd.Wait()
	if w.broken {
		return nil
	}
	return err
}
