// Package coord is the fault-tolerant local coordinator of a
// distributed pimbench run: it dispatches a planned suite's distinct
// jobs — dynamic work-stealing, one job at a time per worker — to a
// fleet of worker subprocesses speaking a line-delimited JSON protocol
// over stdin/stdout, retries jobs from crashed or erroring workers on
// surviving ones (the failed worker excluded per job), streams every
// finished result to the caller as it lands, and renders a live
// jobs-done/ETA footer.
//
// The wire protocol (one JSON value per line, worker side implemented
// by Serve):
//
//	worker -> coordinator  {"type":"hello","distinct":N}
//	coordinator -> worker  {"type":"job","key":K,"fp":F}
//	worker -> coordinator  {"type":"result","key":K,"fp":F,"result":{...},"error":""}
//	coordinator -> worker  {"type":"bye"}        (or stdin EOF)
//
// Both sides plan the same suite independently (planning is
// deterministic), so a job travels as its identity — key plus
// fingerprint — and the worker resolves the fingerprint to the job
// closure it planned locally; results travel back as the same
// system.Result JSON the result cache persists. The hello handshake
// carries the worker's distinct-job count so a version- or flag-skewed
// worker fails fast instead of computing wrong points.
package coord

import "bulkpim/internal/system"

// helloMsg is the worker's startup handshake.
type helloMsg struct {
	Type     string `json:"type"` // "hello"
	Distinct int    `json:"distinct"`
}

// request is a coordinator-to-worker message.
type request struct {
	Type        string `json:"type"` // "job" or "bye"
	Key         string `json:"key,omitempty"`
	Fingerprint string `json:"fp,omitempty"`
}

// response is a worker-to-coordinator job outcome. Error carries a
// job-level failure; the worker itself stays available.
type response struct {
	Type        string        `json:"type"` // "result"
	Key         string        `json:"key"`
	Fingerprint string        `json:"fp"`
	Result      system.Result `json:"result"`
	Error       string        `json:"error,omitempty"`
}

// Hello is the decoded startup handshake StartProc returns: how many
// distinct jobs the worker planned.
type Hello struct{ Distinct int }
