// Package coord is the fault-tolerant local coordinator of a
// distributed pimbench run: it dispatches a planned suite's distinct
// jobs — dynamic work-stealing, one job at a time per worker — to a
// fleet of worker subprocesses speaking a line-delimited JSON protocol
// over stdin/stdout, retries jobs from crashed or erroring workers on
// surviving ones (the failed worker excluded per job), streams every
// finished result to the caller as it lands, and renders a live
// jobs-done/ETA footer.
//
// The wire protocol (one JSON value per line, worker side implemented
// by Serve):
//
//	worker -> coordinator  {"type":"hello","distinct":N}
//	coordinator -> worker  {"type":"job","key":K,"fp":F}
//	worker -> coordinator  {"type":"result","key":K,"fp":F,"result":{...},"error":""}
//	coordinator -> worker  {"type":"bye"}        (or stdin EOF)
//
// Both sides plan the same suite independently (planning is
// deterministic), so a job travels as its identity — key plus
// fingerprint — and the worker resolves the fingerprint to the job
// closure it planned locally; results travel back as the same
// system.Result JSON the result cache persists. The hello handshake
// carries the worker's distinct-job count so a version- or flag-skewed
// worker fails fast instead of computing wrong points.
//
// Dynamic mode (the `pimbench serve` fleet) extends the job frame with
// a spec — {"type":"job","key":K,"fp":F,"spec":{"exp":E,...}} — so a
// worker launched with no suite flags can plan on demand: it announces
// distinct = DynamicDistinct in its hello and derives each job's plan
// from the spec it rides in with.
package coord

import (
	"encoding/json"
	"fmt"

	"bulkpim/internal/system"
)

// DynamicDistinct is the hello distinct-count a dynamic-mode worker
// announces: it plans per job spec, so it has no startup plan to skew.
const DynamicDistinct = -1

// JobSpec is a dynamic job's full identity: the request parameters a
// serve-fleet worker needs to re-derive the plan a fingerprint belongs
// to. Overrides carries the request's raw config-override JSON (empty
// for none) so the worker reproduces the exact mutated Config.
type JobSpec struct {
	Exp       string `json:"exp"`
	Scale     string `json:"scale"`
	Seed      uint64 `json:"seed,omitempty"`
	Overrides string `json:"overrides,omitempty"`
}

// helloMsg is the worker's startup handshake.
type helloMsg struct {
	Type     string `json:"type"` // "hello"
	Distinct int    `json:"distinct"`
}

// request is a coordinator-to-worker message.
type request struct {
	Type        string   `json:"type"` // "job" or "bye"
	Key         string   `json:"key,omitempty"`
	Fingerprint string   `json:"fp,omitempty"`
	Spec        *JobSpec `json:"spec,omitempty"`
}

// readRequest decodes and validates the next coordinator-to-worker
// frame. io.EOF passes through untouched (it is the coordinator
// hanging up, not a protocol error); any other decode failure or an
// unknown frame type is an error.
func readRequest(dec *json.Decoder) (request, error) {
	var req request
	if err := dec.Decode(&req); err != nil {
		return req, err
	}
	switch req.Type {
	case "job", "bye":
		return req, nil
	default:
		return req, fmt.Errorf("unknown request type %q", req.Type)
	}
}

// readResponse decodes and validates the next worker-to-coordinator
// frame; anything but a well-formed result frame is an error.
func readResponse(dec *json.Decoder) (response, error) {
	var resp response
	if err := dec.Decode(&resp); err != nil {
		return resp, err
	}
	if resp.Type != "result" {
		return resp, fmt.Errorf("unknown response type %q", resp.Type)
	}
	return resp, nil
}

// response is a worker-to-coordinator job outcome. Error carries a
// job-level failure; the worker itself stays available.
type response struct {
	Type        string        `json:"type"` // "result"
	Key         string        `json:"key"`
	Fingerprint string        `json:"fp"`
	Result      system.Result `json:"result"`
	Error       string        `json:"error,omitempty"`
}

// Hello is the decoded startup handshake StartProc returns: how many
// distinct jobs the worker planned.
type Hello struct{ Distinct int }
