package coord

import (
	"errors"
	"fmt"
	"io"
	"runtime"
	"strings"
	"sync"
	"time"

	"bulkpim/internal/system"
)

// Task is one distinct unit of work: a planned suite's fingerprint
// group, represented by its canonical key. The caller guarantees
// fingerprints are unique across the task list (they content-address
// the simulations). Spec, when non-nil, makes the task dynamic: it
// rides to the worker so a spec-capable fleet (pimbench serve) can
// plan for it on demand.
type Task struct {
	Key         string
	Fingerprint string
	Spec        *JobSpec
}

// JobError is a job-level failure reported by a healthy worker: the
// job's simulation returned an error, the worker itself keeps serving.
// The coordinator retries the job on other workers with the reporting
// worker excluded. Any other error from Worker.Run means the worker is
// lost (crashed, pipe broken) and is removed from the fleet.
type JobError struct{ Msg string }

func (e *JobError) Error() string { return e.Msg }

// Worker executes one task at a time. Implementations: ProcWorker
// (a pimbench work subprocess); tests inject in-memory fakes.
type Worker interface {
	// Run executes the task, blocking until its outcome. A *JobError
	// return means the job failed on a healthy worker; any other error
	// means the worker is lost.
	Run(t Task) (system.Result, error)
	Close() error
}

// Outcome is one settled task, delivered to Options.OnResult as it
// lands (so a mid-run kill loses at most in-flight jobs).
type Outcome struct {
	Task  Task
	Value system.Result
	// Err is non-nil when the task failed permanently: its last
	// job-level error once every live worker was excluded, or "no live
	// worker" when the whole fleet died first.
	Err error
	// Worker is the worker that settled the task (-1 when no worker
	// could).
	Worker int
	// Attempts counts dispatches, including the settling one.
	Attempts int
}

// Options configures a coordinated run.
type Options struct {
	// Workers is the fleet size; <= 0 means GOMAXPROCS, and the fleet
	// is never larger than the task list.
	Workers int
	// Launch starts worker id. A launch error loses the worker (the
	// run proceeds on the rest of the fleet).
	Launch func(id int) (Worker, error)
	// OnResult, when non-nil, observes each settled task serially, in
	// settlement order; done counts settled tasks including this one.
	OnResult func(done, total int, o Outcome)
	// Progress, when non-nil, receives the live jobs-done/ETA footer
	// (carriage-return rewritten; a final newline on completion).
	Progress io.Writer
	// Log receives progress lines; nil discards them.
	Log func(format string, args ...any)
}

func (o Options) log(format string, args ...any) {
	if o.Log != nil {
		o.Log(format, args...)
	}
}

// Summary is a coordinated run's accounting.
type Summary struct {
	// Tasks is the task count; Done the successfully computed tasks;
	// Failed the permanently failed ones (Done + Failed == Tasks).
	Tasks, Done, Failed int
	// Retried counts re-dispatches after a worker crash or job error.
	Retried int
	// WorkersLost counts workers that failed to launch or died mid-run.
	WorkersLost int
}

func (s Summary) String() string {
	return fmt.Sprintf("%d/%d jobs done (%d failed, %d retried, %d workers lost)",
		s.Done, s.Tasks, s.Failed, s.Retried, s.WorkersLost)
}

// Run dispatches tasks to a fleet of workers with dynamic
// work-stealing: each worker pulls the next task it is not excluded
// from as soon as it goes idle, so fast workers absorb slow ones'
// backlog and a crashed worker's share redistributes itself. A task
// whose worker dies or errors is requeued with that worker excluded;
// once every live worker is excluded for it (or the whole fleet is
// gone) it settles as permanently failed without aborting the rest.
// Run returns once every task has settled, with a joined error naming
// each permanently failed task and failed launch; a completed suite
// returns nil even if workers were lost along the way.
func Run(tasks []Task, o Options) (Summary, error) {
	sum := Summary{Tasks: len(tasks)}
	if len(tasks) == 0 {
		return sum, nil
	}
	workers := o.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(tasks) {
		workers = len(tasks)
	}

	q := newQueue(tasks, workers)
	d := &delivery{o: o, q: q, total: len(tasks), workers: workers, start: time.Now()}

	var launchMu sync.Mutex
	var launchErrs []error
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			w, err := o.Launch(i)
			if err != nil {
				o.log("worker %d: launch failed: %v", i, err)
				launchMu.Lock()
				launchErrs = append(launchErrs, fmt.Errorf("worker %d: launch: %w", i, err))
				launchMu.Unlock()
				d.deliverFailed(q.workerLost(i))
				return
			}
			defer w.Close()
			for {
				p := q.take(i)
				if p == nil {
					return
				}
				v, err := w.Run(p.t)
				var jerr *JobError
				switch {
				case err == nil:
					q.settle()
					d.deliver(Outcome{Task: p.t, Value: v, Worker: i, Attempts: p.attempts})
				case errors.As(err, &jerr):
					o.log("worker %d: job %s failed (%v), retrying on another worker", i, p.t.Key, err)
					d.deliverFailed(q.exclude(p, i, err))
				default:
					o.log("worker %d lost (%v), requeueing %s", i, err, p.t.Key)
					d.deliverFailed(q.exclude(p, i, err))
					d.deliverFailed(q.workerLost(i))
					return
				}
			}
		}(i)
	}
	wg.Wait()

	sum.Done = d.done - d.failedCount
	sum.Failed = d.failedCount
	sum.Retried = q.retriedCount()
	sum.WorkersLost = workers - q.liveWorkers()
	d.finish(sum)

	errs := launchErrs
	for _, f := range d.failures {
		errs = append(errs, fmt.Errorf("%s: %w", f.Task.Key, f.Err))
	}
	return sum, errors.Join(errs...)
}

// pending is one not-yet-settled task: its exclusion set (workers that
// crashed under it or reported it failed) and dispatch accounting.
type pending struct {
	t        Task
	excluded map[int]bool
	attempts int
	lastErr  error
}

// queue is the shared work-stealing queue. Every transition
// (take/settle/exclude/workerLost) broadcasts, so idle workers
// re-evaluate runnability and completion promptly.
type queue struct {
	mu      sync.Mutex
	cond    *sync.Cond
	pending []*pending
	live    map[int]bool
	settled int
	total   int
	retried int
}

func newQueue(tasks []Task, workers int) *queue {
	q := &queue{total: len(tasks), live: make(map[int]bool, workers)}
	q.cond = sync.NewCond(&q.mu)
	for i := 0; i < workers; i++ {
		q.live[i] = true
	}
	q.pending = make([]*pending, len(tasks))
	for i, t := range tasks {
		q.pending[i] = &pending{t: t, excluded: map[int]bool{}}
	}
	return q
}

// take blocks until a task worker i may run is available and claims
// it; nil means every task has settled and the worker should exit.
func (q *queue) take(i int) *pending {
	q.mu.Lock()
	defer q.mu.Unlock()
	for {
		if q.settled == q.total {
			return nil
		}
		for idx, p := range q.pending {
			if !p.excluded[i] {
				q.pending = append(q.pending[:idx], q.pending[idx+1:]...)
				p.attempts++
				if p.attempts > 1 {
					q.retried++
				}
				return p
			}
		}
		q.cond.Wait()
	}
}

// settle marks one in-flight task finished.
func (q *queue) settle() {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.settled++
	q.cond.Broadcast()
}

// exclude records that worker i cannot settle p (it crashed under it
// or reported a job error) and requeues p for the rest of the fleet —
// or settles it as permanently failed when no live worker remains
// eligible. The returned slice holds p iff it settled failed.
func (q *queue) exclude(p *pending, i int, err error) []*pending {
	q.mu.Lock()
	defer q.mu.Unlock()
	p.excluded[i] = true
	p.lastErr = err
	var failed []*pending
	if q.unrunnable(p) {
		q.settled++
		failed = append(failed, p)
	} else {
		q.pending = append(q.pending, p)
	}
	q.cond.Broadcast()
	return failed
}

// workerLost removes worker i from the fleet and settles as failed
// every queued task the remaining fleet is excluded from (with an
// empty fleet, all of them).
func (q *queue) workerLost(i int) []*pending {
	q.mu.Lock()
	defer q.mu.Unlock()
	delete(q.live, i)
	var failed []*pending
	keep := q.pending[:0]
	for _, p := range q.pending {
		if q.unrunnable(p) {
			q.settled++
			failed = append(failed, p)
		} else {
			keep = append(keep, p)
		}
	}
	q.pending = keep
	q.cond.Broadcast()
	return failed
}

// unrunnable reports whether no live worker may run p. Callers hold mu.
func (q *queue) unrunnable(p *pending) bool {
	for id := range q.live {
		if !p.excluded[id] {
			return false
		}
	}
	return true
}

func (q *queue) liveWorkers() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.live)
}

func (q *queue) retriedCount() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.retried
}

// delivery serializes OnResult and renders the progress footer.
// Lock order: delivery.mu before queue.mu (the footer snapshots queue
// counters); queue methods never call back into delivery.
type delivery struct {
	mu          sync.Mutex
	o           Options
	q           *queue
	total       int
	workers     int
	start       time.Time
	done        int
	failedCount int
	failures    []Outcome
	lastLen     int
}

func (d *delivery) deliver(o Outcome) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.done++
	if o.Err != nil {
		d.failedCount++
		d.failures = append(d.failures, o)
	}
	if d.o.OnResult != nil {
		d.o.OnResult(d.done, d.total, o)
	}
	d.footer()
}

// deliverFailed settles queue-reported permanent failures (zero or
// more) as failed outcomes.
func (d *delivery) deliverFailed(ps []*pending) {
	for _, p := range ps {
		err := p.lastErr
		if err == nil {
			err = errors.New("no live worker")
		}
		d.deliver(Outcome{Task: p.t, Err: fmt.Errorf("failed on every live worker: %w", err),
			Worker: -1, Attempts: p.attempts})
	}
}

// footer rewrites the live progress line in place. Callers hold d.mu.
func (d *delivery) footer() {
	if d.o.Progress == nil {
		return
	}
	eta := "--"
	if d.done > 0 && d.done < d.total {
		per := time.Since(d.start) / time.Duration(d.done)
		eta = (per * time.Duration(d.total-d.done)).Round(time.Second).String()
	}
	line := fmt.Sprintf("coord: %d/%d jobs (%d failed, %d retried), %d/%d workers, ETA %s",
		d.done, d.total, d.failedCount, d.q.retriedCount(), d.q.liveWorkers(), d.workers, eta)
	pad := ""
	if n := d.lastLen - len(line); n > 0 {
		pad = strings.Repeat(" ", n)
	}
	d.lastLen = len(line)
	fmt.Fprintf(d.o.Progress, "\r%s%s", line, pad)
}

// finish terminates the footer with the run's final accounting.
func (d *delivery) finish(s Summary) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.o.Progress == nil {
		return
	}
	line := "coord: " + s.String() + " in " + time.Since(d.start).Round(time.Millisecond).String()
	pad := ""
	if n := d.lastLen - len(line); n > 0 {
		pad = strings.Repeat(" ", n)
	}
	fmt.Fprintf(d.o.Progress, "\r%s%s\n", line, pad)
}
