package coord

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"strings"
	"sync"
	"testing"
	"time"

	"bulkpim/internal/system"
)

// tally counts executions per fingerprint across a fleet of fake
// workers.
type tally struct {
	mu    sync.Mutex
	count map[string]int
}

func newTally() *tally { return &tally{count: map[string]int{}} }

func (c *tally) add(fp string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.count[fp]++
}

// fakeWorker runs tasks in memory with seeded random delays. dieAfter
// >= 0 makes Run return a worker-lost error (without executing) on the
// (dieAfter+1)th call; jobErrs lists fingerprints it reports as failed
// jobs.
type fakeWorker struct {
	id       int
	rng      *rand.Rand
	rngMu    sync.Mutex
	tally    *tally
	dieAfter int
	runs     int
	jobErrs  map[string]bool
	closed   bool
}

func (w *fakeWorker) Run(t Task) (system.Result, error) {
	w.rngMu.Lock()
	d := time.Duration(w.rng.Intn(200)) * time.Microsecond
	w.rngMu.Unlock()
	time.Sleep(d)
	if w.dieAfter >= 0 && w.runs >= w.dieAfter {
		return system.Result{}, fmt.Errorf("worker %d: simulated crash", w.id)
	}
	w.runs++
	if w.jobErrs[t.Fingerprint] {
		return system.Result{}, &JobError{Msg: "simulated job failure"}
	}
	w.tally.add(t.Fingerprint)
	return system.Result{Cycles: 1}, nil
}

func (w *fakeWorker) Close() error {
	w.closed = true
	return nil
}

func mkTasks(n int) []Task {
	tasks := make([]Task, n)
	for i := range tasks {
		tasks[i] = Task{Key: fmt.Sprintf("key-%d", i), Fingerprint: fmt.Sprintf("fp-%d", i)}
	}
	return tasks
}

// TestRunExactlyOnce is the assignment property: under randomized
// worker timing (seeded) and any fleet size, a healthy run delivers
// each distinct fingerprint to exactly one execution, settles every
// task, and reports a monotonically increasing done count.
func TestRunExactlyOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 7, 16} {
		for seed := int64(1); seed <= 3; seed++ {
			tasks := mkTasks(100)
			tl := newTally()
			last := 0
			var deliveries int
			sum, err := Run(tasks, Options{
				Workers: workers,
				Launch: func(id int) (Worker, error) {
					return &fakeWorker{id: id, rng: rand.New(rand.NewSource(seed + int64(id))),
						tally: tl, dieAfter: -1}, nil
				},
				OnResult: func(done, total int, o Outcome) {
					deliveries++
					if total != 100 || done != last+1 {
						t.Errorf("w=%d seed=%d: done=%d total=%d last=%d", workers, seed, done, total, last)
					}
					last = done
					if o.Err != nil {
						t.Errorf("w=%d seed=%d: %s failed: %v", workers, seed, o.Task.Key, o.Err)
					}
				},
			})
			if err != nil {
				t.Fatalf("w=%d seed=%d: %v", workers, seed, err)
			}
			if sum.Done != 100 || sum.Failed != 0 || sum.Retried != 0 || sum.WorkersLost != 0 {
				t.Fatalf("w=%d seed=%d: summary %+v", workers, seed, sum)
			}
			if deliveries != 100 {
				t.Fatalf("w=%d seed=%d: %d deliveries", workers, seed, deliveries)
			}
			for _, task := range tasks {
				if got := tl.count[task.Fingerprint]; got != 1 {
					t.Fatalf("w=%d seed=%d: fingerprint %s executed %d times, want exactly 1",
						workers, seed, task.Fingerprint, got)
				}
			}
		}
	}
}

// TestRunRetriesCrashedWorkersJobs: a worker that dies mid-run loses
// its in-flight job to a surviving worker; the suite still completes
// with every fingerprint executed exactly once by the survivors.
func TestRunRetriesCrashedWorkersJobs(t *testing.T) {
	tasks := mkTasks(60)
	tl := newTally()
	sum, err := Run(tasks, Options{
		Workers: 3,
		Launch: func(id int) (Worker, error) {
			die := -1
			if id == 1 {
				die = 5 // crash when the 6th job arrives, losing it in flight
			}
			return &fakeWorker{id: id, rng: rand.New(rand.NewSource(int64(id) + 42)),
				tally: tl, dieAfter: die}, nil
		},
	})
	if err != nil {
		t.Fatalf("suite must survive one worker death: %v", err)
	}
	if sum.Done != 60 || sum.Failed != 0 {
		t.Fatalf("summary %+v", sum)
	}
	if sum.WorkersLost != 1 {
		t.Fatalf("workers lost = %d, want 1", sum.WorkersLost)
	}
	if sum.Retried < 1 {
		t.Fatalf("the crashed worker's in-flight job was not retried: %+v", sum)
	}
	for _, task := range tasks {
		if got := tl.count[task.Fingerprint]; got != 1 {
			t.Fatalf("fingerprint %s executed %d times, want exactly 1", task.Fingerprint, got)
		}
	}
}

// TestRunRetriesJobErrorElsewhere: a job-level failure on one worker
// is retried on another (the failing worker excluded), and the suite
// completes without losing the worker.
func TestRunRetriesJobErrorElsewhere(t *testing.T) {
	tasks := mkTasks(20)
	tl := newTally()
	sum, err := Run(tasks, Options{
		Workers: 2,
		Launch: func(id int) (Worker, error) {
			w := &fakeWorker{id: id, rng: rand.New(rand.NewSource(int64(id) + 7)),
				tally: tl, dieAfter: -1}
			if id == 0 {
				w.jobErrs = map[string]bool{"fp-13": true}
			}
			return w, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Done != 20 || sum.Failed != 0 || sum.WorkersLost != 0 {
		t.Fatalf("summary %+v", sum)
	}
	if got := tl.count["fp-13"]; got != 1 {
		t.Fatalf("fp-13 executed %d times, want 1 (on the non-failing worker)", got)
	}
}

// TestRunPermanentFailure: a job that fails on every worker settles as
// permanently failed — reported against its key — without taking the
// rest of the suite down.
func TestRunPermanentFailure(t *testing.T) {
	tasks := mkTasks(10)
	tl := newTally()
	var failedKeys []string
	sum, err := Run(tasks, Options{
		Workers: 3,
		Launch: func(id int) (Worker, error) {
			return &fakeWorker{id: id, rng: rand.New(rand.NewSource(int64(id) + 3)), tally: tl,
				dieAfter: -1, jobErrs: map[string]bool{"fp-4": true}}, nil
		},
		OnResult: func(done, total int, o Outcome) {
			if o.Err != nil {
				failedKeys = append(failedKeys, o.Task.Key)
			}
		},
	})
	if err == nil || !strings.Contains(err.Error(), "key-4") {
		t.Fatalf("error must name the failed task: %v", err)
	}
	if sum.Done != 9 || sum.Failed != 1 {
		t.Fatalf("summary %+v", sum)
	}
	if len(failedKeys) != 1 || failedKeys[0] != "key-4" {
		t.Fatalf("failed outcomes %v", failedKeys)
	}
	if tl.count["fp-4"] != 0 {
		t.Fatalf("permanently failing job recorded an execution")
	}
}

// TestRunAllWorkersLost: when the whole fleet dies, remaining tasks
// settle as failed and Run returns instead of hanging.
func TestRunAllWorkersLost(t *testing.T) {
	tasks := mkTasks(30)
	tl := newTally()
	sum, err := Run(tasks, Options{
		Workers: 2,
		Launch: func(id int) (Worker, error) {
			return &fakeWorker{id: id, rng: rand.New(rand.NewSource(int64(id))),
				tally: tl, dieAfter: 2}, nil
		},
	})
	if err == nil {
		t.Fatal("a fleet-wide loss must be an error")
	}
	if sum.WorkersLost != 2 {
		t.Fatalf("workers lost = %d, want 2", sum.WorkersLost)
	}
	if sum.Done != 4 || sum.Done+sum.Failed != 30 {
		t.Fatalf("every task must settle: %+v", sum)
	}
}

// TestRunLaunchFailure: a worker that cannot launch is a lost worker,
// not a fatal error — the rest of the fleet absorbs its share.
func TestRunLaunchFailure(t *testing.T) {
	tasks := mkTasks(25)
	tl := newTally()
	sum, err := Run(tasks, Options{
		Workers: 3,
		Launch: func(id int) (Worker, error) {
			if id == 2 {
				return nil, errors.New("ssh: connection refused")
			}
			return &fakeWorker{id: id, rng: rand.New(rand.NewSource(int64(id))),
				tally: tl, dieAfter: -1}, nil
		},
	})
	if err == nil || !strings.Contains(err.Error(), "connection refused") {
		t.Fatalf("launch failure must be reported: %v", err)
	}
	if sum.Done != 25 || sum.Failed != 0 || sum.WorkersLost != 1 {
		t.Fatalf("summary %+v", sum)
	}
}

// TestRunProgressFooter: the live footer carries jobs-done/ETA and
// terminates with the final accounting on its own line.
func TestRunProgressFooter(t *testing.T) {
	var progress bytes.Buffer
	tl := newTally()
	if _, err := Run(mkTasks(12), Options{
		Workers:  2,
		Progress: &progress,
		Launch: func(id int) (Worker, error) {
			return &fakeWorker{id: id, rng: rand.New(rand.NewSource(int64(id))),
				tally: tl, dieAfter: -1}, nil
		},
	}); err != nil {
		t.Fatal(err)
	}
	out := progress.String()
	if !strings.Contains(out, "coord: ") || !strings.Contains(out, "ETA") {
		t.Fatalf("footer missing: %q", out)
	}
	if !strings.Contains(out, "12/12 jobs done (0 failed, 0 retried, 0 workers lost)") {
		t.Fatalf("final accounting missing: %q", out)
	}
	if !strings.HasSuffix(out, "\n") {
		t.Fatalf("footer not terminated with a newline: %q", out)
	}
}

// TestRunEmpty: an empty task list completes immediately without
// launching anything.
func TestRunEmpty(t *testing.T) {
	sum, err := Run(nil, Options{Workers: 4, Launch: func(id int) (Worker, error) {
		t.Fatal("launched a worker for zero tasks")
		return nil, nil
	}})
	if err != nil || sum.Tasks != 0 {
		t.Fatalf("%+v, %v", sum, err)
	}
}

// serveConn drives Serve over in-memory pipes, mimicking the
// coordinator side of the protocol.
type serveConn struct {
	t    *testing.T
	enc  *json.Encoder
	dec  *json.Decoder
	done chan error
}

func startServe(t *testing.T, o ServeOptions) *serveConn {
	t.Helper()
	reqR, reqW := io.Pipe()
	respR, respW := io.Pipe()
	c := &serveConn{t: t, enc: json.NewEncoder(reqW), dec: json.NewDecoder(respR), done: make(chan error, 1)}
	go func() {
		c.done <- Serve(reqR, respW, o)
		respW.Close()
	}()
	var h helloMsg
	if err := c.dec.Decode(&h); err != nil || h.Type != "hello" {
		t.Fatalf("no hello: %+v, %v", h, err)
	}
	if h.Distinct != o.Distinct {
		t.Fatalf("hello distinct = %d, want %d", h.Distinct, o.Distinct)
	}
	return c
}

func (c *serveConn) job(key, fp string) response {
	c.t.Helper()
	if err := c.enc.Encode(request{Type: "job", Key: key, Fingerprint: fp}); err != nil {
		c.t.Fatal(err)
	}
	var resp response
	if err := c.dec.Decode(&resp); err != nil {
		c.t.Fatal(err)
	}
	return resp
}

// TestServeProtocol: hello handshake, job execution, job-level errors
// in result frames, and a clean bye.
func TestServeProtocol(t *testing.T) {
	c := startServe(t, ServeOptions{
		Distinct: 7,
		Execute: func(key, fp string) (system.Result, error) {
			if fp == "bad" {
				return system.Result{}, errors.New("sim exploded")
			}
			return system.Result{Cycles: 99}, nil
		},
	})
	resp := c.job("k1", "f1")
	if resp.Type != "result" || resp.Key != "k1" || resp.Fingerprint != "f1" ||
		resp.Error != "" || resp.Result.Cycles != 99 {
		t.Fatalf("result frame %+v", resp)
	}
	resp = c.job("k2", "bad")
	if resp.Error != "sim exploded" {
		t.Fatalf("job error not in result frame: %+v", resp)
	}
	// A job error must not kill the worker.
	if resp = c.job("k3", "f3"); resp.Result.Cycles != 99 {
		t.Fatalf("worker dead after job error: %+v", resp)
	}
	if err := c.enc.Encode(request{Type: "bye"}); err != nil {
		t.Fatal(err)
	}
	if err := <-c.done; err != nil {
		t.Fatalf("bye: %v", err)
	}
}

// TestServeFailAfter: the crash-injection hook serves exactly N jobs,
// then dies on the next request without replying.
func TestServeFailAfter(t *testing.T) {
	failed := make(chan struct{})
	c := startServe(t, ServeOptions{
		Distinct: 3,
		Execute: func(key, fp string) (system.Result, error) {
			return system.Result{Cycles: 1}, nil
		},
		FailAfter: 2,
		Fail:      func() { close(failed) },
	})
	c.job("k1", "f1")
	c.job("k2", "f2")
	if err := c.enc.Encode(request{Type: "job", Key: "k3", Fingerprint: "f3"}); err != nil {
		t.Fatal(err)
	}
	select {
	case <-failed:
	case <-time.After(5 * time.Second):
		t.Fatal("Fail hook not invoked on the job after -fail-after")
	}
	if err := <-c.done; err == nil || !strings.Contains(err.Error(), "fail-after") {
		t.Fatalf("crashed Serve error = %v", err)
	}
	// The in-flight job got no reply: the response stream ends.
	var resp response
	if err := c.dec.Decode(&resp); !errors.Is(err, io.EOF) {
		t.Fatalf("expected EOF after crash, got %+v, %v", resp, err)
	}
}

// TestServeEOF: stdin EOF (coordinator gone) is a clean exit.
func TestServeEOF(t *testing.T) {
	var out bytes.Buffer
	if err := Serve(strings.NewReader(""), &out, ServeOptions{Distinct: 1,
		Execute: func(string, string) (system.Result, error) { return system.Result{}, nil },
	}); err != nil {
		t.Fatalf("EOF must be clean: %v", err)
	}
}

// TestServeUnknownType: a desynchronized stream is fatal for the
// worker (continuing could execute wrong work).
func TestServeUnknownType(t *testing.T) {
	var out bytes.Buffer
	err := Serve(strings.NewReader(`{"type":"frobnicate"}`+"\n"), &out, ServeOptions{
		Execute: func(string, string) (system.Result, error) { return system.Result{}, nil },
	})
	if err == nil || !strings.Contains(err.Error(), "unknown request type") {
		t.Fatalf("err = %v", err)
	}
}
