package coord

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"
	"time"
)

// submitAll pushes every task into the pool and returns a channel that
// yields the settled outcomes.
func submitAll(t *testing.T, p *Pool, tasks []Task) chan Outcome {
	t.Helper()
	out := make(chan Outcome, len(tasks))
	for _, task := range tasks {
		if err := p.Submit(task, func(o Outcome) { out <- o }); err != nil {
			t.Fatal(err)
		}
	}
	return out
}

// drain collects n outcomes or fails on timeout.
func drain(t *testing.T, out chan Outcome, n int) []Outcome {
	t.Helper()
	got := make([]Outcome, 0, n)
	deadline := time.After(30 * time.Second)
	for len(got) < n {
		select {
		case o := <-out:
			got = append(got, o)
		case <-deadline:
			t.Fatalf("only %d/%d outcomes settled", len(got), n)
		}
	}
	return got
}

// TestPoolExactlyOnce: a healthy elastic fleet settles every submitted
// task successfully with each fingerprint executed exactly once.
func TestPoolExactlyOnce(t *testing.T) {
	for _, workers := range []int{1, 3, 8} {
		tl := newTally()
		p := NewPool(PoolOptions{Launch: func(id int) (Worker, error) {
			return &fakeWorker{id: id, rng: rand.New(rand.NewSource(int64(id) + 1)),
				tally: tl, dieAfter: -1}, nil
		}})
		for i := 0; i < workers; i++ {
			if _, err := p.AddWorker(); err != nil {
				t.Fatal(err)
			}
		}
		tasks := mkTasks(50)
		outcomes := drain(t, submitAll(t, p, tasks), 50)
		for _, o := range outcomes {
			if o.Err != nil {
				t.Fatalf("w=%d: %s failed: %v", workers, o.Task.Key, o.Err)
			}
		}
		for _, task := range tasks {
			if got := tl.count[task.Fingerprint]; got != 1 {
				t.Fatalf("w=%d: fingerprint %s executed %d times, want 1", workers, task.Fingerprint, got)
			}
		}
		s := p.Stats()
		if len(s.Workers) != workers || s.Lost != 0 || s.Queued != 0 {
			t.Fatalf("stats %+v", s)
		}
		var done int
		for _, ws := range s.Workers {
			done += ws.Done
			if ws.Done > 0 && ws.BusyNs <= 0 {
				t.Fatalf("worker %d busy for 0ns over %d tasks", ws.ID, ws.Done)
			}
		}
		if done != 50 {
			t.Fatalf("w=%d: per-worker done sums to %d, want 50", workers, done)
		}
		p.Close()
	}
}

// TestPoolWorkerLostRetriesAndReplaces: a worker dying mid-task loses
// only that dispatch — the task retries on a survivor — and
// OnWorkerLost lets the owner join a replacement into the live pool.
func TestPoolWorkerLostRetriesAndReplaces(t *testing.T) {
	tl := newTally()
	var p *Pool
	lost := make(chan int, 1)
	p = NewPool(PoolOptions{
		Launch: func(id int) (Worker, error) {
			die := -1
			if id == 1 {
				die = 2 // crash when the 3rd task arrives, losing it in flight
			}
			return &fakeWorker{id: id, rng: rand.New(rand.NewSource(int64(id) + 9)),
				tally: tl, dieAfter: die}, nil
		},
		OnWorkerLost: func(id int, err error) {
			if _, aerr := p.AddWorker(); aerr != nil {
				t.Errorf("replacing worker %d: %v", id, aerr)
			}
			lost <- id
		},
	})
	for i := 0; i < 2; i++ {
		if _, err := p.AddWorker(); err != nil {
			t.Fatal(err)
		}
	}
	tasks := mkTasks(40)
	outcomes := drain(t, submitAll(t, p, tasks), 40)
	for _, o := range outcomes {
		if o.Err != nil {
			t.Fatalf("%s failed: %v", o.Task.Key, o.Err)
		}
	}
	select {
	case id := <-lost:
		if id != 1 {
			t.Fatalf("lost worker %d, want 1", id)
		}
	default:
		t.Fatal("OnWorkerLost never fired")
	}
	for _, task := range tasks {
		if got := tl.count[task.Fingerprint]; got != 1 {
			t.Fatalf("fingerprint %s executed %d times, want 1", task.Fingerprint, got)
		}
	}
	s := p.Stats()
	if s.Lost != 1 || s.Retried < 1 {
		t.Fatalf("stats %+v", s)
	}
	// Replacement ids never reuse a dead worker's: 0 and the fresh 2.
	if len(s.Workers) != 2 || s.Workers[0].ID != 0 || s.Workers[1].ID != 2 {
		t.Fatalf("fleet after replacement: %+v", s.Workers)
	}
	p.Close()
}

// TestPoolRetryBudget: a task erroring on every dispatch settles as
// permanently failed once MaxAttempts is spent, and the budget is
// visible in the outcome's Attempts.
func TestPoolRetryBudget(t *testing.T) {
	tl := newTally()
	p := NewPool(PoolOptions{
		MaxAttempts: 3,
		BaseBackoff: time.Millisecond,
		MaxBackoff:  2 * time.Millisecond,
		Launch: func(id int) (Worker, error) {
			return &fakeWorker{id: id, rng: rand.New(rand.NewSource(int64(id))), tally: tl,
				dieAfter: -1, jobErrs: map[string]bool{"fp-0": true}}, nil
		},
	})
	for i := 0; i < 4; i++ { // more workers than budget
		if _, err := p.AddWorker(); err != nil {
			t.Fatal(err)
		}
	}
	o := drain(t, submitAll(t, p, mkTasks(1)), 1)[0]
	if o.Err == nil || !strings.Contains(o.Err.Error(), "failed after 3 attempt(s)") {
		t.Fatalf("outcome %+v", o)
	}
	if o.Attempts != 3 {
		t.Fatalf("attempts = %d, want 3", o.Attempts)
	}
	if tl.count["fp-0"] != 0 {
		t.Fatal("failing job recorded an execution")
	}
	p.Close()
}

// TestPoolFleetExclusion: with fewer workers than the budget, a task
// every live worker has failed settles without waiting for a join.
func TestPoolFleetExclusion(t *testing.T) {
	tl := newTally()
	p := NewPool(PoolOptions{
		MaxAttempts: 10,
		BaseBackoff: time.Millisecond,
		Launch: func(id int) (Worker, error) {
			return &fakeWorker{id: id, rng: rand.New(rand.NewSource(int64(id))), tally: tl,
				dieAfter: -1, jobErrs: map[string]bool{"fp-0": true}}, nil
		},
	})
	for i := 0; i < 2; i++ {
		if _, err := p.AddWorker(); err != nil {
			t.Fatal(err)
		}
	}
	o := drain(t, submitAll(t, p, mkTasks(1)), 1)[0]
	if o.Err == nil || o.Attempts != 2 {
		t.Fatalf("outcome %+v", o)
	}
	p.Close()
}

// TestPoolWaitsForFirstWorker: tasks submitted to an empty pool wait —
// the elastic case — and run once a worker joins.
func TestPoolWaitsForFirstWorker(t *testing.T) {
	tl := newTally()
	p := NewPool(PoolOptions{Launch: func(id int) (Worker, error) {
		return &fakeWorker{id: id, rng: rand.New(rand.NewSource(5)), tally: tl, dieAfter: -1}, nil
	}})
	out := submitAll(t, p, mkTasks(5))
	select {
	case o := <-out:
		t.Fatalf("settled with no workers: %+v", o)
	case <-time.After(50 * time.Millisecond):
	}
	if _, err := p.AddWorker(); err != nil {
		t.Fatal(err)
	}
	for _, o := range drain(t, out, 5) {
		if o.Err != nil {
			t.Fatalf("%s failed: %v", o.Task.Key, o.Err)
		}
	}
	p.Close()
}

// closeSignal wraps a Worker to close a channel when the pool
// dismisses it.
type closeSignal struct {
	Worker
	closed chan struct{}
}

func (w *closeSignal) Close() error {
	defer close(w.closed)
	return w.Worker.Close()
}

// TestPoolRemoveWorker: a dismissed worker leaves cleanly (Close
// called, fleet shrinks) while the remainder keeps serving.
func TestPoolRemoveWorker(t *testing.T) {
	tl := newTally()
	var mu sync.Mutex
	workers := map[int]*closeSignal{}
	p := NewPool(PoolOptions{Launch: func(id int) (Worker, error) {
		w := &closeSignal{closed: make(chan struct{}),
			Worker: &fakeWorker{id: id, rng: rand.New(rand.NewSource(int64(id))), tally: tl, dieAfter: -1}}
		mu.Lock()
		workers[id] = w
		mu.Unlock()
		return w, nil
	}})
	id0, err := p.AddWorker()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.AddWorker(); err != nil {
		t.Fatal(err)
	}
	if err := p.RemoveWorker(id0); err != nil {
		t.Fatal(err)
	}
	// The leaving worker's loop exits asynchronously; wait for it.
	mu.Lock()
	closed := workers[id0].closed
	mu.Unlock()
	select {
	case <-closed:
	case <-time.After(5 * time.Second):
		t.Fatal("removed worker never closed")
	}
	for _, o := range drain(t, submitAll(t, p, mkTasks(10)), 10) {
		if o.Err != nil {
			t.Fatalf("%s failed after removal: %v", o.Task.Key, o.Err)
		}
	}
	if err := p.RemoveWorker(99); err == nil {
		t.Fatal("removing an unknown worker must error")
	}
	p.Close()
}

// TestPoolCloseFailsQueued: Close settles still-queued tasks as failed
// and rejects new submissions.
func TestPoolCloseFailsQueued(t *testing.T) {
	p := NewPool(PoolOptions{Launch: func(id int) (Worker, error) {
		return nil, errors.New("unused")
	}})
	out := submitAll(t, p, mkTasks(3)) // no workers: stays queued
	p.Close()
	for _, o := range drain(t, out, 3) {
		if o.Err == nil || !strings.Contains(o.Err.Error(), "pool closed") {
			t.Fatalf("outcome %+v", o)
		}
	}
	if err := p.Submit(Task{Key: "k", Fingerprint: "f"}, func(Outcome) {}); err == nil {
		t.Fatal("Submit after Close must error")
	}
	if _, err := p.AddWorker(); err == nil {
		t.Fatal("AddWorker after Close must error")
	}
}

// TestPoolBackoffSchedule: the per-worker backoff grows exponentially
// with the failure streak and is capped at MaxBackoff.
func TestPoolBackoffSchedule(t *testing.T) {
	o := PoolOptions{BaseBackoff: 100 * time.Millisecond, MaxBackoff: time.Second}
	want := []time.Duration{100 * time.Millisecond, 200 * time.Millisecond,
		400 * time.Millisecond, 800 * time.Millisecond, time.Second, time.Second}
	for i, w := range want {
		if got := o.backoff(i + 1); got != w {
			t.Fatalf("backoff(streak=%d) = %v, want %v", i+1, got, w)
		}
	}
	if d := (PoolOptions{}).backoff(1); d != 100*time.Millisecond {
		t.Fatalf("default base backoff = %v", d)
	}
}

// pollWorkerState waits for worker id to report state want.
func pollWorkerState(t *testing.T, p *Pool, id int, want string) WorkerStats {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		for _, ws := range p.Stats().Workers {
			if ws.ID == id && ws.State == want {
				return ws
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("worker %d never reached state %q (stats %+v)", id, want, p.Stats().Workers)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestPoolBackoffAfterJobError: a job error puts the worker into a
// visible backoff cooldown with its failure streak recorded, and the
// next success resets the streak.
func TestPoolBackoffAfterJobError(t *testing.T) {
	tl := newTally()
	p := NewPool(PoolOptions{
		BaseBackoff: 150 * time.Millisecond,
		MaxBackoff:  150 * time.Millisecond,
		Launch: func(id int) (Worker, error) {
			return &fakeWorker{id: id, rng: rand.New(rand.NewSource(3)), tally: tl,
				dieAfter: -1, jobErrs: map[string]bool{"fp-0": true}}, nil
		},
	})
	if _, err := p.AddWorker(); err != nil {
		t.Fatal(err)
	}
	// The lone worker fails fp-0: with every live worker excluded the
	// task settles failed, and the worker cools off.
	o := drain(t, submitAll(t, p, []Task{{Key: "key-0", Fingerprint: "fp-0"}}), 1)[0]
	if o.Err == nil || o.Attempts != 1 {
		t.Fatalf("outcome %+v", o)
	}
	ws := pollWorkerState(t, p, 0, "backoff")
	if ws.Failed != 1 || ws.FailStreak != 1 {
		t.Fatalf("cooling worker stats %+v", ws)
	}
	// After the cooldown it serves again; a success resets the streak.
	for _, o := range drain(t, submitAll(t, p, []Task{{Key: "key-1", Fingerprint: "fp-1"}}), 1) {
		if o.Err != nil {
			t.Fatalf("post-cooldown task failed: %v", o.Err)
		}
	}
	ws = pollWorkerState(t, p, 0, "idle")
	if ws.FailStreak != 0 || ws.Done != 1 {
		t.Fatalf("recovered worker stats %+v", ws)
	}
	p.Close()
}

// TestPoolLaunchFailure: AddWorker surfaces launch errors without
// registering anything.
func TestPoolLaunchFailure(t *testing.T) {
	p := NewPool(PoolOptions{Launch: func(id int) (Worker, error) {
		return nil, fmt.Errorf("ssh: connection refused")
	}})
	if _, err := p.AddWorker(); err == nil || !strings.Contains(err.Error(), "connection refused") {
		t.Fatalf("err = %v", err)
	}
	if n := len(p.Stats().Workers); n != 0 {
		t.Fatalf("%d workers registered after failed launch", n)
	}
	p.Close()
}
