package cache

import (
	"testing"

	"bulkpim/internal/core"
	"bulkpim/internal/mem"
	"bulkpim/internal/sim"
)

// Randomized mixes of loads, stores, PIM scans, flushes and fences must
// preserve the coherence invariants at every step and never lose data
// that reached its visibility point.
func TestCoherenceInvariantsWithPIMScans(t *testing.T) {
	r := newRig(t, core.Atomic, 3)
	rng := sim.NewRand(777)
	scopeOf := func(s int) mem.ScopeID { return mem.ScopeID(s % 4) }
	for step := 0; step < 500; step++ {
		switch rng.Intn(10) {
		case 0, 1: // PIM op with scan
			r.llc.Receive(pimReq(scopeOf(rng.Intn(4))))
			if _, err := r.k.Run(); err != nil {
				t.Fatal(err)
			}
		case 2: // flush a random scope line
			scope := scopeOf(rng.Intn(4))
			line := mem.LineOf(r.scopes.ScopeBase(scope) + mem.Addr(rng.Intn(64)*mem.LineSize))
			req := &mem.Request{Kind: mem.ReqFlush, Line: line, Core: 0}
			r.llc.Receive(req)
			if _, err := r.k.Run(); err != nil {
				t.Fatal(err)
			}
		case 3, 4, 5: // store into a scope
			scope := scopeOf(rng.Intn(4))
			line := mem.LineOf(r.scopes.ScopeBase(scope) + mem.Addr(rng.Intn(64)*mem.LineSize))
			r.storeVia(t, rng.Intn(3), line, rng.Intn(mem.LineSize), byte(step), uint64(step+1))
		default: // load
			scope := scopeOf(rng.Intn(4))
			line := mem.LineOf(r.scopes.ScopeBase(scope) + mem.Addr(rng.Intn(64)*mem.LineSize))
			r.loadVia(t, rng.Intn(3), line)
		}
		if addr, bad := r.llc.CheckSWMR(); bad {
			t.Fatalf("step %d: SWMR violated at %#x", step, uint64(addr))
		}
		if addr, bad := r.llc.CheckInclusive(); bad {
			t.Fatalf("step %d: inclusivity violated at %#x", step, uint64(addr))
		}
	}
}

// After a PIM op's scan, no line of the scope remains in any cache and
// the scope buffer claims exactly that.
func TestScanPostconditionProperty(t *testing.T) {
	r := newRig(t, core.Store, 2)
	rng := sim.NewRand(31)
	for round := 0; round < 30; round++ {
		scope := mem.ScopeID(rng.Intn(4))
		// Populate some lines of the scope.
		for i := 0; i < 5; i++ {
			line := mem.LineOf(r.scopes.ScopeBase(scope) + mem.Addr(rng.Intn(32)*mem.LineSize))
			if rng.Intn(2) == 0 {
				r.storeVia(t, rng.Intn(2), line, 0, byte(round), uint64(round*10+i+1))
			} else {
				r.loadVia(t, rng.Intn(2), line)
			}
		}
		r.llc.Receive(pimReq(scope))
		if _, err := r.k.Run(); err != nil {
			t.Fatal(err)
		}
		// Postcondition: nothing of the scope cached anywhere.
		base := r.scopes.ScopeBase(scope)
		for idx := 0; idx < 64; idx++ {
			line := mem.LineOf(base + mem.Addr(idx*mem.LineSize))
			if r.llc.HasLine(line) {
				t.Fatalf("round %d: scope %d line %#x survived the scan in LLC", round, scope, uint64(line))
			}
			for _, l1 := range r.l1s {
				if l1.HasLine(line) {
					t.Fatalf("round %d: scope %d line %#x survived in an L1", round, scope, uint64(line))
				}
			}
		}
	}
}

// Dirty data written before a scan must reach backing memory before the
// PIM op executes, for any random population (the atomicity guarantee).
func TestScanWritebackOrderingProperty(t *testing.T) {
	for seed := uint64(1); seed <= 10; seed++ {
		r := newRig(t, core.Atomic, 2)
		rng := sim.NewRand(seed)
		scope := mem.ScopeID(1)
		base := r.scopes.ScopeBase(scope)
		want := map[mem.Addr]byte{}
		for i := 0; i < 8; i++ {
			line := mem.LineOf(base + mem.Addr(rng.Intn(48)*mem.LineSize))
			v := byte(rng.Intn(255) + 1)
			r.storeVia(t, rng.Intn(2), line, 0, v, uint64(i+1))
			want[line.Addr()] = v
		}
		var mismatch int
		req := pimReq(scope)
		req.PIM.Program.Apply = func(b *mem.Backing, w uint64) {
			for a, v := range want {
				if b.ByteAt(a) != v {
					mismatch++
				}
			}
		}
		r.llc.Receive(req)
		if _, err := r.k.Run(); err != nil {
			t.Fatal(err)
		}
		if mismatch != 0 {
			t.Fatalf("seed %d: PIM op observed %d stale lines", seed, mismatch)
		}
	}
}

// The LLC egress keeps per-scope FIFO order into the MC even under
// credit pressure.
func TestEgressOrderUnderPressure(t *testing.T) {
	r := newRig(t, core.Atomic, 1)
	r.mc.QueueSize = 2
	scope := mem.ScopeID(1)
	var order []string
	for i := 0; i < 6; i++ {
		req := pimReq(scope)
		name := string(rune('a' + i))
		req.PIM.Program.Name = name
		req.PIM.Program.Apply = func(b *mem.Backing, w uint64) { order = append(order, name) }
		r.llc.Receive(req)
	}
	if _, err := r.k.Run(); err != nil {
		t.Fatal(err)
	}
	if len(order) != 6 {
		t.Fatalf("executed %d ops, want 6", len(order))
	}
	for i, n := range order {
		if n != string(rune('a'+i)) {
			t.Fatalf("same-scope PIM ops reordered: %v", order)
		}
	}
}
