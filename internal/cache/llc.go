package cache

import (
	"bulkpim/internal/core"
	"bulkpim/internal/mem"
	"bulkpim/internal/memctrl"
	"bulkpim/internal/noc"
	"bulkpim/internal/sim"
	"bulkpim/internal/stats"
	"bulkpim/internal/trace"
)

// LLC is the shared, inclusive last-level cache with the MESI directory
// and the paper's coherence hardware: the scope buffer and SBV (§IV). PIM
// ops scan-and-flush their scope here before being forwarded to the memory
// controller, which is what makes the flush atomic with the op.
type LLC struct {
	k     *sim.Kernel
	Model core.Model

	arr        setAssoc
	HitLatency sim.Tick
	// ScanPerSet / ScanPerLine drive scan cost: cycles per checked set and
	// per flushed line.
	ScanPerSet  sim.Tick
	ScanPerLine sim.Tick

	SB     *core.ScopeBuffer
	SBV    *core.SBV
	Scopes *mem.ScopeMap

	// Pool supplies requests, fills and line buffers. NewLLC creates a
	// private pool; the system builder overrides it so the whole machine
	// shares one.
	Pool *mem.RequestPool

	l1s  []*L1
	down []*noc.Link // per-core response links

	mc     *memctrl.Controller
	mcLink *noc.Link // LLC -> MC, FIFO (hardware memory channel)
	mcResp *noc.Link // MC -> LLC fills

	egress     []*mem.Request
	egHead     int
	inflightMC int
	pumping    bool

	queue         []llcWork
	qHead         int
	busyUntil     sim.Tick
	wakeScheduled bool

	mshr     map[mem.LineAddr]*llcMiss
	missFree []*llcMiss
	fillFree []*fillMsg

	// recallBuf is the scratch an owner L1's dirty payload is recalled
	// into; every RecallLine result is consumed before the next call.
	recallBuf [mem.LineSize]byte

	// victims is scanFlush's reusable per-set eviction list.
	victims []*Line

	// Hoisted callbacks (built once in NewLLC) so the steady-state
	// request path schedules and sends without allocating closures.
	wakeFn      func(any)
	fetchDoneFn func(*mem.Request, any)
	fillRecvFn  func(any)
	mcDeliverFn func(any)

	// Tracer, when enabled for CatCache, logs request handling and scans.
	Tracer *trace.Tracer

	// Stats feeding Fig. 9 / 10c / 10d.
	ScanLatency  stats.Mean  // per PIM op, scope-buffer hits count as 0
	SBHitRate    stats.Ratio // scope buffer hit rate
	SkipRatio    stats.Mean  // SBV skipped-set ratio per actual scan
	Scans        stats.Counter
	LinesFlushed stats.Counter
	Hits, Misses stats.Counter
	Writebacks   stats.Counter
	QueuePeak    int
}

// llcWork is one queued unit of LLC occupancy: a request to handle or a
// returned memory fetch to install (fill). A struct instead of a closure
// keeps the pipeline queue allocation-free.
type llcWork struct {
	req  *mem.Request
	fill bool
}

type llcMiss struct {
	stale   bool
	issued  bool
	waiters []*mem.Request
}

// fillMsg is a pooled L1-fill message: grant/deliverFill stage one,
// deliverFillMsg unpacks it at the core tile and releases it. data, when
// non-nil, is a pooled line owned by the message.
type fillMsg struct {
	l       *LLC
	addr    mem.LineAddr
	state   MESI
	data    []byte
	writer  uint64
	pim     bool
	scope   mem.ScopeID
	noCache bool
	coreID  int
}

// deliverFillMsg runs at the receiving core tile: hand the payload to the
// L1 and recycle the message and its buffer.
func deliverFillMsg(x any) {
	m := x.(*fillMsg)
	m.l.l1s[m.coreID].Fill(m.addr, m.state, m.data, m.writer, m.pim, m.scope, m.noCache)
	if m.data != nil {
		m.l.Pool.PutLine(m.data)
		m.data = nil
	}
	m.l.putFill(m)
}

// NewLLC builds the shared cache. Wire it with Connect before use.
func NewLLC(k *sim.Kernel, model core.Model, sets, ways int, hitLatency sim.Tick, scopes *mem.ScopeMap) *LLC {
	l := &LLC{
		k:           k,
		Model:       model,
		arr:         newSetAssoc(sets, ways),
		HitLatency:  hitLatency,
		ScanPerSet:  1,
		ScanPerLine: 2,
		Scopes:      scopes,
		Pool:        mem.NewRequestPool(),
		mshr:        make(map[mem.LineAddr]*llcMiss),
	}
	if model.FlushesLLCOnPIMOp() {
		l.SB = core.NewScopeBuffer(64, 4)
		l.SBV = core.NewSBV(sets)
	}
	l.wakeFn = func(any) {
		l.wakeScheduled = false
		l.process()
	}
	l.fillRecvFn = func(x any) { l.enqueueFill(x.(*mem.Request)) }
	l.fetchDoneFn = func(r *mem.Request, _ any) { l.mcResp.SendCtx(l.fillRecvFn, r) }
	l.mcDeliverFn = func(x any) {
		l.inflightMC--
		if !l.mc.Enqueue(x.(*mem.Request)) {
			panic("cache: MC rejected a credited request")
		}
	}
	return l
}

// Connect wires the LLC to its L1s, per-core response links, the memory
// controller and the links to/from it.
func (l *LLC) Connect(l1s []*L1, down []*noc.Link, mc *memctrl.Controller, mcLink, mcResp *noc.Link) {
	l.l1s = l1s
	l.down = down
	l.mc = mc
	l.mcLink = mcLink
	l.mcResp = mcResp
	mc.OnSpace = func() { l.pump() }
}

// SetScopeBufferGeometry overrides the default 64x4 scope buffer.
func (l *LLC) SetScopeBufferGeometry(sets, ways int) {
	if l.SB != nil {
		l.SB = core.NewScopeBuffer(sets, ways)
	}
}

// DisableScopeBuffer removes the scope buffer: every PIM op scans
// (ablation of §IV-A).
func (l *LLC) DisableScopeBuffer() { l.SB = nil }

// DisableSBV removes the scope bit-vector: scans check every set
// (ablation of §IV-B).
func (l *LLC) DisableSBV() { l.SBV = nil }

func (l *LLC) getMiss() *llcMiss {
	if n := len(l.missFree); n > 0 {
		e := l.missFree[n-1]
		l.missFree = l.missFree[:n-1]
		return e
	}
	return &llcMiss{}
}

func (l *LLC) putMiss(e *llcMiss) {
	for i := range e.waiters {
		e.waiters[i] = nil
	}
	e.waiters = e.waiters[:0]
	e.stale, e.issued = false, false
	l.missFree = append(l.missFree, e)
}

func (l *LLC) getFill() *fillMsg {
	if n := len(l.fillFree); n > 0 {
		m := l.fillFree[n-1]
		l.fillFree = l.fillFree[:n-1]
		return m
	}
	return &fillMsg{l: l}
}

func (l *LLC) putFill(m *fillMsg) {
	*m = fillMsg{l: l}
	l.fillFree = append(l.fillFree, m)
}

// Receive is the entry point for requests arriving over the network.
func (l *LLC) Receive(req *mem.Request) {
	l.enqueue(llcWork{req: req})
}

// enqueueFill queues a returned memory fetch for installation.
func (l *LLC) enqueueFill(fetch *mem.Request) {
	l.enqueue(llcWork{req: fetch, fill: true})
}

func (l *LLC) enqueue(w llcWork) {
	l.queue = append(l.queue, w)
	if n := len(l.queue) - l.qHead; n > l.QueuePeak {
		l.QueuePeak = n
	}
	l.process()
}

func (l *LLC) process() {
	now := l.k.Now()
	if now < l.busyUntil {
		l.wake()
		return
	}
	if l.qHead == len(l.queue) {
		return
	}
	w := l.queue[l.qHead]
	l.queue[l.qHead] = llcWork{}
	l.qHead++
	if l.qHead == len(l.queue) {
		// Drained: rewind so the backing array is reused forever.
		l.queue = l.queue[:0]
		l.qHead = 0
	}
	var cost sim.Tick
	if w.fill {
		cost = l.fillArrived(w.req)
		// The fetch request's round trip is over; the LLC issued it, so
		// the LLC releases it (and its pooled data) here.
		l.Pool.Put(w.req)
	} else {
		cost = l.handle(w.req)
	}
	l.busyUntil = l.k.Now() + cost
	if l.qHead < len(l.queue) {
		l.wake()
	}
}

func (l *LLC) wake() {
	if l.wakeScheduled {
		return
	}
	l.wakeScheduled = true
	l.k.ScheduleAtCtx(l.busyUntil, l.wakeFn, nil)
}

// handle services one request and returns the cycles it occupies the LLC.
func (l *LLC) handle(req *mem.Request) sim.Tick {
	if l.Tracer.Enabled(trace.CatCache) {
		l.Tracer.Emit(trace.CatCache, "llc", "%s", req)
	}
	switch {
	case req.Uncacheable:
		return l.handleUncacheable(req)
	case req.Kind == mem.ReqPIMOp:
		return l.handlePIMOp(req)
	case req.Kind == mem.ReqScopeFence:
		return l.handleScopeFence(req)
	case req.Kind == mem.ReqFlush:
		return l.handleFlush(req)
	case req.Kind == mem.ReqLoad:
		return l.handleMiss(req)
	default:
		// Stores reach the LLC only uncacheable; writebacks arrive via
		// WritebackFromL1. Anything else is a programming error.
		panic("cache: unexpected request at LLC: " + req.Kind.String())
	}
}

// handleUncacheable passes the request straight to the memory controller.
// Completion flows through the request's own OnDone: the issuing core's
// first stage sends the finished request back over its response link, the
// same hop the old closure wrapper made here.
func (l *LLC) handleUncacheable(req *mem.Request) sim.Tick {
	l.egressPush(req)
	return 1 // pass-through occupancy
}

// handleMiss services an L1 GetS/GetM.
func (l *LLC) handleMiss(req *mem.Request) sim.Tick {
	ln := l.arr.Lookup(req.Line)
	if ln.Valid() {
		l.Hits.Inc()
		cost := l.HitLatency
		if ln.Owner >= 0 && ln.Owner != req.Core {
			writer, dirty, present := l.l1s[ln.Owner].RecallLine(req.Line, req.Excl, l.recallBuf[:])
			if present {
				if dirty {
					setLineData(l.Pool, ln, l.recallBuf[:])
					ln.Writer = writer
					ln.Dirty = true
				}
				if !req.Excl {
					ln.Sharers |= 1 << uint(ln.Owner)
				}
			}
			ln.Owner = -1
			cost += 8 // owner round trip
		}
		l.grant(ln, req)
		l.Pool.Put(req)
		return cost
	}
	l.Misses.Inc()
	e := l.mshr[req.Line]
	if e == nil {
		e = l.getMiss()
		l.mshr[req.Line] = e
	}
	e.waiters = append(e.waiters, req)
	if !e.issued {
		e.issued = true
		l.issueMemoryFetch(req.Line, req.Scope)
	}
	return l.HitLatency
}

func (l *LLC) issueMemoryFetch(line mem.LineAddr, scope mem.ScopeID) {
	fetch := l.Pool.Get()
	fetch.Kind, fetch.Line, fetch.Scope = mem.ReqLoad, line, scope
	fetch.Core = -1
	fetch.OnDone = l.fetchDoneFn
	l.egressPush(fetch)
}

// fillArrived installs a memory fill and serves the waiters. The caller
// releases fetch afterwards.
func (l *LLC) fillArrived(fetch *mem.Request) sim.Tick {
	e := l.mshr[fetch.Line]
	if e == nil {
		return l.HitLatency
	}
	if e.stale {
		// The scope was scanned-and-flushed while this miss was
		// outstanding: installing would resurrect a pre-PIM copy after
		// the flush that must be atomic with the PIM op. Loads get their
		// (legitimately pre-PIM, ordered-before) data without caching;
		// store misses are replayed so they fetch post-PIM data.
		e.stale = false
		keep := e.waiters[:0]
		for _, w := range e.waiters {
			if w.Excl {
				keep = append(keep, w)
			} else {
				l.deliverFill(w, Shared, fetch.Data, fetch.Writer, true)
				l.Pool.Put(w)
			}
		}
		for i := len(keep); i < len(e.waiters); i++ {
			e.waiters[i] = nil
		}
		e.waiters = keep
		if len(e.waiters) > 0 {
			l.issueMemoryFetch(fetch.Line, fetch.Scope)
			return l.HitLatency
		}
		delete(l.mshr, fetch.Line)
		l.putMiss(e)
		return l.HitLatency
	}
	delete(l.mshr, fetch.Line)
	v := l.arr.Peek(fetch.Line)
	if v.Valid() {
		// The line reappeared (e.g. installed by a racing writeback path);
		// reuse the slot.
		l.dropLine(v)
	} else {
		v = l.arr.Victim(fetch.Line)
		if v.Valid() {
			l.evictVictim(v)
		}
	}
	l.arr.Install(v, fetch.Line, Shared)
	setLineData(l.Pool, v, fetch.Data)
	v.Writer = fetch.Writer
	scope := l.Scopes.ScopeOf(fetch.Line.Addr())
	v.Scope = scope
	v.PIMEnabled = scope != mem.NoScope
	if v.PIMEnabled {
		if l.SBV != nil {
			l.SBV.OnInsert(l.arr.SetOf(fetch.Line))
		}
		if l.SB != nil {
			l.SB.Invalidate(scope)
		}
	}
	n := len(e.waiters)
	for _, w := range e.waiters {
		l.grant(v, w)
		l.Pool.Put(w)
	}
	l.putMiss(e)
	return l.HitLatency + sim.Tick(n)
}

// grant gives the requesting L1 its copy per MESI and replies with a fill.
// The caller owns (and afterwards releases) req.
func (l *LLC) grant(ln *Line, req *mem.Request) {
	var state MESI
	if req.Excl {
		// Invalidate all other holders.
		for i := range l.l1s {
			if i == req.Core {
				continue
			}
			if ln.Sharers&(1<<uint(i)) != 0 || ln.Owner == i {
				writer, dirty, present := l.l1s[i].RecallLine(ln.Addr, true, l.recallBuf[:])
				if present && dirty {
					setLineData(l.Pool, ln, l.recallBuf[:])
					ln.Writer = writer
					ln.Dirty = true
				}
			}
		}
		ln.Sharers = 0
		ln.Owner = req.Core
		state = Exclusive
	} else if ln.Sharers == 0 && ln.Owner < 0 {
		ln.Owner = req.Core
		state = Exclusive
	} else {
		ln.Sharers |= 1 << uint(req.Core)
		state = Shared
	}
	m := l.getFill()
	m.addr, m.state = ln.Addr, state
	if ln.Data != nil {
		m.data = l.Pool.CloneLine(ln.Data)
	}
	m.writer = ln.Writer
	m.pim, m.scope = ln.PIMEnabled, ln.Scope
	m.coreID = req.Core
	l.down[m.coreID].SendCtx(deliverFillMsg, m)
}

// deliverFill sends a bypass (no-cache) fill for a stale miss.
func (l *LLC) deliverFill(req *mem.Request, state MESI, data []byte, writer uint64, noCache bool) {
	m := l.getFill()
	m.addr, m.state = req.Line, state
	if data != nil {
		m.data = l.Pool.CloneLine(data)
	}
	m.writer = writer
	m.pim, m.scope = req.Scope != mem.NoScope, req.Scope
	m.noCache = noCache
	m.coreID = req.Core
	l.down[m.coreID].SendCtx(deliverFillMsg, m)
}

// evictVictim enforces inclusivity: recall every L1 copy, write back dirty
// data, clear SBV.
func (l *LLC) evictVictim(v *Line) {
	for i := range l.l1s {
		if v.Sharers&(1<<uint(i)) != 0 || v.Owner == i {
			writer, dirty, present := l.l1s[i].RecallLine(v.Addr, true, l.recallBuf[:])
			if present && dirty {
				setLineData(l.Pool, v, l.recallBuf[:])
				v.Writer = writer
				v.Dirty = true
			}
		}
	}
	if v.Dirty {
		l.writebackToMemory(v)
	}
	if v.PIMEnabled && l.SBV != nil {
		l.SBV.OnEvict(l.arr.SetOf(v.Addr))
	}
	l.dropLine(v)
}

// dropLine invalidates a slot, returning its payload buffer to the pool.
func (l *LLC) dropLine(v *Line) {
	if v.Data != nil {
		l.Pool.PutLine(v.Data)
		v.Data = nil
	}
	l.arr.Invalidate(v)
}

func (l *LLC) writebackToMemory(v *Line) {
	l.Writebacks.Inc()
	r := l.Pool.Get()
	r.Kind, r.Line, r.Scope = mem.ReqWriteback, v.Addr, v.Scope
	r.Writer, r.Core = v.Writer, -1
	if v.Data != nil {
		r.Data = l.Pool.CloneLine(v.Data)
		r.DataPooled = true
	}
	l.egressPush(r)
}

// WritebackFromL1 merges a dirty L1 eviction. State changes are atomic;
// the link occupancy is charged by the caller's event timing.
func (l *LLC) WritebackFromL1(coreID int, line mem.LineAddr, data []byte, writer uint64) {
	ln := l.arr.Peek(line)
	if !ln.Valid() {
		// Raced with an LLC eviction whose recall already captured the
		// data; nothing to do.
		return
	}
	setLineData(l.Pool, ln, data)
	ln.Writer = writer
	ln.Dirty = true
	if ln.Owner == coreID {
		ln.Owner = -1
	}
	ln.Sharers &^= 1 << uint(coreID)
}

// handleFlush implements the SW-Flush baseline's cache-line flush.
func (l *LLC) handleFlush(req *mem.Request) sim.Tick {
	cost := l.HitLatency
	ln := l.arr.Peek(req.Line)
	if ln.Valid() {
		l.evictVictim(ln) // recalls L1 copies, writes back if dirty
		cost += l.ScanPerLine
	}
	l.ackRequester(req)
	return cost
}

// ackRequester completes a request that terminates at the LLC (flush,
// scope-fence) by sending it back over the issuing core's response link;
// the completion callback — and the release — run at the core tile. A
// request nobody waits on is released here.
func (l *LLC) ackRequester(req *mem.Request) {
	if req.OnDone != nil {
		l.down[req.Core].SendCtx(completeReq, req)
	} else {
		l.Pool.Put(req)
	}
}

// handlePIMOp implements Fig. 4: scope buffer lookup, scan-and-flush on a
// miss, then forwarding to the memory controller. Baseline models forward
// without any coherence action.
func (l *LLC) handlePIMOp(req *mem.Request) sim.Tick {
	if !l.Model.FlushesLLCOnPIMOp() {
		l.egressPush(req)
		return 1
	}
	l.markStaleMisses(req.Scope)
	if l.SB != nil && l.SB.Lookup(req.Scope) {
		l.SBHitRate.Hit()
		l.ScanLatency.Observe(0)
		l.egressPush(req)
		return l.HitLatency
	}
	l.SBHitRate.Miss()
	cost := l.scanFlush(req.Scope)
	l.ScanLatency.Observe(float64(cost))
	if l.SB != nil {
		l.SB.Insert(req.Scope)
	}
	l.egressPush(req)
	return l.HitLatency + cost
}

// handleScopeFence scans-and-flushes like a PIM op but terminates here,
// acknowledging the issuing core (§V-E).
func (l *LLC) handleScopeFence(req *mem.Request) sim.Tick {
	cost := sim.Tick(0)
	l.markStaleMisses(req.Scope)
	if l.SB != nil && l.SB.Lookup(req.Scope) {
		l.SBHitRate.Hit()
	} else {
		if l.SB != nil {
			l.SBHitRate.Miss()
		}
		cost = l.scanFlush(req.Scope)
		if l.SB != nil {
			l.SB.Insert(req.Scope)
		}
	}
	l.ackRequester(req)
	return l.HitLatency + cost
}

// scanFlush walks the sets the SBV marks, flushing every line of the scope
// (recalling L1 copies first), and returns the scan cost.
func (l *LLC) scanFlush(scope mem.ScopeID) sim.Tick {
	l.Scans.Inc()
	scanned, flushed := 0, 0
	for s := 0; s < l.arr.sets; s++ {
		if l.SBV != nil && !l.SBV.Test(s) {
			continue
		}
		scanned++
		l.victims = l.victims[:0]
		set := l.arr.set(s)
		for i := range set {
			if set[i].valid && set[i].Scope == scope {
				l.victims = append(l.victims, &set[i])
			}
		}
		for _, ln := range l.victims {
			flushed++
			l.evictVictim(ln)
		}
	}
	l.LinesFlushed.Add(uint64(flushed))
	l.SkipRatio.Observe(1 - float64(scanned)/float64(l.arr.sets))
	if l.Tracer.Enabled(trace.CatCache) {
		l.Tracer.Emit(trace.CatCache, "llc", "scan scope=%d sets=%d flushed=%d", scope, scanned, flushed)
	}
	return l.ScanPerSet*sim.Tick(scanned) + l.ScanPerLine*sim.Tick(flushed)
}

// markStaleMisses flags outstanding misses of the scope so their fills do
// not resurrect flushed lines (see fillArrived).
func (l *LLC) markStaleMisses(scope mem.ScopeID) {
	for line, e := range l.mshr {
		if l.Scopes.ScopeOf(line.Addr()) == scope {
			e.stale = true
		}
	}
}

// egressPush appends a request to the FIFO toward the memory controller
// and pumps it. Credits against the MC queue guarantee delivery order and
// acceptance (the LLC is the controller's only producer).
func (l *LLC) egressPush(req *mem.Request) {
	l.egress = append(l.egress, req)
	l.pump()
}

func (l *LLC) pump() {
	if l.pumping {
		return
	}
	l.pumping = true
	for l.egHead < len(l.egress) && l.mc.QueueLen()+l.inflightMC < l.mc.QueueSize {
		req := l.egress[l.egHead]
		l.egress[l.egHead] = nil
		l.egHead++
		l.inflightMC++
		l.mcLink.SendOrderedCtx(l.mcDeliverFn, req)
	}
	if l.egHead == len(l.egress) {
		l.egress = l.egress[:0]
		l.egHead = 0
	}
	l.pumping = false
}

// EgressBacklog reports requests waiting for MC space (congestion signal).
func (l *LLC) EgressBacklog() int { return len(l.egress) - l.egHead }

// HasLine reports LLC presence of a line (tests).
func (l *LLC) HasLine(line mem.LineAddr) bool { return l.arr.Peek(line).Valid() }

// LineCount reports valid lines (tests).
func (l *LLC) LineCount() int { return l.arr.CountValid() }

// L1s exposes the connected L1 caches (system wiring, tests).
func (l *LLC) L1s() []*L1 { return l.l1s }

// CheckInclusive verifies every valid L1 line is present in the LLC
// (property tests). It returns the first violating line address.
func (l *LLC) CheckInclusive() (mem.LineAddr, bool) {
	for _, l1 := range l.l1s {
		for i := range l1.arr.lines {
			ln := &l1.arr.lines[i]
			if ln.valid && !l.arr.Peek(ln.Addr).Valid() {
				return ln.Addr, true
			}
		}
	}
	return 0, false
}

// CheckSWMR verifies the single-writer/multiple-reader invariant across
// L1s: a line modified in one L1 appears in no other L1.
func (l *LLC) CheckSWMR() (mem.LineAddr, bool) {
	type holder struct{ m, any int }
	seen := make(map[mem.LineAddr]*holder)
	for _, l1 := range l.l1s {
		for i := range l1.arr.lines {
			ln := &l1.arr.lines[i]
			if !ln.valid {
				continue
			}
			h := seen[ln.Addr]
			if h == nil {
				h = &holder{}
				seen[ln.Addr] = h
			}
			h.any++
			if ln.State == Modified || ln.State == Exclusive {
				h.m++
			}
		}
	}
	for addr, h := range seen {
		if h.m > 0 && h.any > 1 {
			return addr, true
		}
	}
	return 0, false
}
