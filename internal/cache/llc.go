package cache

import (
	"bulkpim/internal/core"
	"bulkpim/internal/mem"
	"bulkpim/internal/memctrl"
	"bulkpim/internal/noc"
	"bulkpim/internal/sim"
	"bulkpim/internal/stats"
	"bulkpim/internal/trace"
)

// LLC is the shared, inclusive last-level cache with the MESI directory
// and the paper's coherence hardware: the scope buffer and SBV (§IV). PIM
// ops scan-and-flush their scope here before being forwarded to the memory
// controller, which is what makes the flush atomic with the op.
type LLC struct {
	k     *sim.Kernel
	Model core.Model

	arr        setAssoc
	HitLatency sim.Tick
	// ScanPerSet / ScanPerLine drive scan cost: cycles per checked set and
	// per flushed line.
	ScanPerSet  sim.Tick
	ScanPerLine sim.Tick

	SB     *core.ScopeBuffer
	SBV    *core.SBV
	Scopes *mem.ScopeMap

	l1s  []*L1
	down []*noc.Link // per-core response links

	mc     *memctrl.Controller
	mcLink *noc.Link // LLC -> MC, FIFO (hardware memory channel)
	mcResp *noc.Link // MC -> LLC fills

	egress     []*mem.Request
	inflightMC int
	pumping    bool

	queue         []func() sim.Tick
	busyUntil     sim.Tick
	wakeScheduled bool

	mshr map[mem.LineAddr]*llcMiss

	// Tracer, when enabled for CatCache, logs request handling and scans.
	Tracer *trace.Tracer

	// Stats feeding Fig. 9 / 10c / 10d.
	ScanLatency  stats.Mean  // per PIM op, scope-buffer hits count as 0
	SBHitRate    stats.Ratio // scope buffer hit rate
	SkipRatio    stats.Mean  // SBV skipped-set ratio per actual scan
	Scans        stats.Counter
	LinesFlushed stats.Counter
	Hits, Misses stats.Counter
	Writebacks   stats.Counter
	QueuePeak    int
}

type llcMiss struct {
	stale   bool
	issued  bool
	waiters []*mem.Request
}

// NewLLC builds the shared cache. Wire it with Connect before use.
func NewLLC(k *sim.Kernel, model core.Model, sets, ways int, hitLatency sim.Tick, scopes *mem.ScopeMap) *LLC {
	l := &LLC{
		k:           k,
		Model:       model,
		arr:         newSetAssoc(sets, ways),
		HitLatency:  hitLatency,
		ScanPerSet:  1,
		ScanPerLine: 2,
		Scopes:      scopes,
		mshr:        make(map[mem.LineAddr]*llcMiss),
	}
	if model.FlushesLLCOnPIMOp() {
		l.SB = core.NewScopeBuffer(64, 4)
		l.SBV = core.NewSBV(sets)
	}
	return l
}

// Connect wires the LLC to its L1s, per-core response links, the memory
// controller and the links to/from it.
func (l *LLC) Connect(l1s []*L1, down []*noc.Link, mc *memctrl.Controller, mcLink, mcResp *noc.Link) {
	l.l1s = l1s
	l.down = down
	l.mc = mc
	l.mcLink = mcLink
	l.mcResp = mcResp
	mc.OnSpace = func() { l.pump() }
}

// SetScopeBufferGeometry overrides the default 64x4 scope buffer.
func (l *LLC) SetScopeBufferGeometry(sets, ways int) {
	if l.SB != nil {
		l.SB = core.NewScopeBuffer(sets, ways)
	}
}

// DisableScopeBuffer removes the scope buffer: every PIM op scans
// (ablation of §IV-A).
func (l *LLC) DisableScopeBuffer() { l.SB = nil }

// DisableSBV removes the scope bit-vector: scans check every set
// (ablation of §IV-B).
func (l *LLC) DisableSBV() { l.SBV = nil }

// Receive is the entry point for requests arriving over the network.
func (l *LLC) Receive(req *mem.Request) {
	l.enqueue(func() sim.Tick { return l.handle(req) })
}

func (l *LLC) enqueue(work func() sim.Tick) {
	l.queue = append(l.queue, work)
	if len(l.queue) > l.QueuePeak {
		l.QueuePeak = len(l.queue)
	}
	l.process()
}

func (l *LLC) process() {
	now := l.k.Now()
	if now < l.busyUntil {
		l.wake()
		return
	}
	if len(l.queue) == 0 {
		return
	}
	work := l.queue[0]
	l.queue = l.queue[1:]
	cost := work()
	l.busyUntil = l.k.Now() + cost
	if len(l.queue) > 0 {
		l.wake()
	}
}

func (l *LLC) wake() {
	if l.wakeScheduled {
		return
	}
	l.wakeScheduled = true
	l.k.ScheduleAt(l.busyUntil, func() {
		l.wakeScheduled = false
		l.process()
	})
}

// handle services one request and returns the cycles it occupies the LLC.
func (l *LLC) handle(req *mem.Request) sim.Tick {
	if l.Tracer.Enabled(trace.CatCache) {
		l.Tracer.Emit(trace.CatCache, "llc", "%s", req)
	}
	switch {
	case req.Uncacheable:
		return l.handleUncacheable(req)
	case req.Kind == mem.ReqPIMOp:
		return l.handlePIMOp(req)
	case req.Kind == mem.ReqScopeFence:
		return l.handleScopeFence(req)
	case req.Kind == mem.ReqFlush:
		return l.handleFlush(req)
	case req.Kind == mem.ReqLoad:
		return l.handleMiss(req)
	default:
		// Stores reach the LLC only uncacheable; writebacks arrive via
		// WritebackFromL1. Anything else is a programming error.
		panic("cache: unexpected request at LLC: " + req.Kind.String())
	}
}

func (l *LLC) handleUncacheable(req *mem.Request) sim.Tick {
	finish := req.Done
	req.Done = func() {
		if finish != nil {
			l.replyToCore(req.Core, finish)
		}
	}
	l.egressPush(req)
	return 1 // pass-through occupancy
}

// replyToCore delivers a completion callback over the core's response link.
func (l *LLC) replyToCore(coreID int, fn func()) {
	l.down[coreID].Send(fn)
}

// handleMiss services an L1 GetS/GetM.
func (l *LLC) handleMiss(req *mem.Request) sim.Tick {
	ln := l.arr.Lookup(req.Line)
	if ln.Valid() {
		l.Hits.Inc()
		cost := l.HitLatency
		if ln.Owner >= 0 && ln.Owner != req.Core {
			data, writer, dirty, present := l.l1s[ln.Owner].RecallLine(req.Line, req.Excl)
			if present {
				if dirty {
					ln.Data = cloneData(data)
					ln.Writer = writer
					ln.Dirty = true
				}
				if !req.Excl {
					ln.Sharers |= 1 << uint(ln.Owner)
				}
			}
			ln.Owner = -1
			cost += 8 // owner round trip
		}
		l.grant(ln, req)
		return cost
	}
	l.Misses.Inc()
	e := l.mshr[req.Line]
	if e == nil {
		e = &llcMiss{}
		l.mshr[req.Line] = e
	}
	e.waiters = append(e.waiters, req)
	if !e.issued {
		e.issued = true
		l.issueMemoryFetch(req.Line, req.Scope)
	}
	return l.HitLatency
}

func (l *LLC) issueMemoryFetch(line mem.LineAddr, scope mem.ScopeID) {
	fetch := &mem.Request{Kind: mem.ReqLoad, Line: line, Scope: scope, Core: -1}
	fetch.Done = func() {
		l.mcResp.Send(func() {
			l.enqueue(func() sim.Tick { return l.fillArrived(fetch) })
		})
	}
	l.egressPush(fetch)
}

// fillArrived installs a memory fill and serves the waiters.
func (l *LLC) fillArrived(fetch *mem.Request) sim.Tick {
	e := l.mshr[fetch.Line]
	if e == nil {
		return l.HitLatency
	}
	if e.stale {
		// The scope was scanned-and-flushed while this miss was
		// outstanding: installing would resurrect a pre-PIM copy after
		// the flush that must be atomic with the PIM op. Loads get their
		// (legitimately pre-PIM, ordered-before) data without caching;
		// store misses are replayed so they fetch post-PIM data.
		e.stale = false
		var replay []*mem.Request
		waiters := e.waiters
		e.waiters = nil
		for _, w := range waiters {
			if w.Excl {
				replay = append(replay, w)
			} else {
				l.deliverFill(w, Shared, fetch.Data, fetch.Writer, true)
			}
		}
		if len(replay) > 0 {
			e.waiters = replay
			l.issueMemoryFetch(fetch.Line, fetch.Scope)
			return l.HitLatency
		}
		delete(l.mshr, fetch.Line)
		return l.HitLatency
	}
	delete(l.mshr, fetch.Line)
	v := l.arr.Peek(fetch.Line)
	if v.Valid() {
		// The line reappeared (e.g. installed by a racing writeback path);
		// reuse the slot.
		l.arr.Invalidate(v)
	} else {
		v = l.arr.Victim(fetch.Line)
		if v.Valid() {
			l.evictVictim(v)
		}
	}
	l.arr.Install(v, fetch.Line, Shared)
	v.Data = cloneData(fetch.Data)
	v.Writer = fetch.Writer
	scope := l.Scopes.ScopeOf(fetch.Line.Addr())
	v.Scope = scope
	v.PIMEnabled = scope != mem.NoScope
	if v.PIMEnabled {
		if l.SBV != nil {
			l.SBV.OnInsert(l.arr.SetOf(fetch.Line))
		}
		if l.SB != nil {
			l.SB.Invalidate(scope)
		}
	}
	waiters := e.waiters
	for _, w := range waiters {
		l.grant(v, w)
	}
	return l.HitLatency + sim.Tick(len(waiters))
}

// grant gives the requesting L1 its copy per MESI and replies with a fill.
func (l *LLC) grant(ln *Line, req *mem.Request) {
	var state MESI
	if req.Excl {
		// Invalidate all other holders.
		for i := range l.l1s {
			if i == req.Core {
				continue
			}
			if ln.Sharers&(1<<uint(i)) != 0 || ln.Owner == i {
				data, writer, dirty, present := l.l1s[i].RecallLine(ln.Addr, true)
				if present && dirty {
					ln.Data = cloneData(data)
					ln.Writer = writer
					ln.Dirty = true
				}
			}
		}
		ln.Sharers = 0
		ln.Owner = req.Core
		state = Exclusive
	} else if ln.Sharers == 0 && ln.Owner < 0 {
		ln.Owner = req.Core
		state = Exclusive
	} else {
		ln.Sharers |= 1 << uint(req.Core)
		state = Shared
	}
	data := cloneData(ln.Data)
	writer := ln.Writer
	pim := ln.PIMEnabled
	scope := ln.Scope
	addr := ln.Addr
	coreID := req.Core
	l.replyToCore(coreID, func() {
		l.l1s[coreID].Fill(addr, state, data, writer, pim, scope, false)
	})
}

// deliverFill sends a bypass (no-cache) fill for a stale miss.
func (l *LLC) deliverFill(req *mem.Request, state MESI, data []byte, writer uint64, noCache bool) {
	dataCopy := cloneData(data)
	coreID := req.Core
	addr := req.Line
	scope := req.Scope
	l.replyToCore(coreID, func() {
		l.l1s[coreID].Fill(addr, state, dataCopy, writer, scope != mem.NoScope, scope, noCache)
	})
}

// evictVictim enforces inclusivity: recall every L1 copy, write back dirty
// data, clear SBV.
func (l *LLC) evictVictim(v *Line) {
	for i := range l.l1s {
		if v.Sharers&(1<<uint(i)) != 0 || v.Owner == i {
			data, writer, dirty, present := l.l1s[i].RecallLine(v.Addr, true)
			if present && dirty {
				v.Data = cloneData(data)
				v.Writer = writer
				v.Dirty = true
			}
		}
	}
	if v.Dirty {
		l.writebackToMemory(v)
	}
	if v.PIMEnabled && l.SBV != nil {
		l.SBV.OnEvict(l.arr.SetOf(v.Addr))
	}
	l.arr.Invalidate(v)
}

func (l *LLC) writebackToMemory(v *Line) {
	l.Writebacks.Inc()
	l.egressPush(&mem.Request{
		Kind: mem.ReqWriteback, Line: v.Addr, Scope: v.Scope,
		Data: cloneData(v.Data), Writer: v.Writer, Core: -1,
	})
}

// WritebackFromL1 merges a dirty L1 eviction. State changes are atomic;
// the link occupancy is charged by the caller's event timing.
func (l *LLC) WritebackFromL1(coreID int, line mem.LineAddr, data []byte, writer uint64) {
	ln := l.arr.Peek(line)
	if !ln.Valid() {
		// Raced with an LLC eviction whose recall already captured the
		// data; nothing to do.
		return
	}
	ln.Data = cloneData(data)
	ln.Writer = writer
	ln.Dirty = true
	if ln.Owner == coreID {
		ln.Owner = -1
	}
	ln.Sharers &^= 1 << uint(coreID)
}

// handleFlush implements the SW-Flush baseline's cache-line flush.
func (l *LLC) handleFlush(req *mem.Request) sim.Tick {
	cost := l.HitLatency
	ln := l.arr.Peek(req.Line)
	if ln.Valid() {
		l.evictVictim(ln) // recalls L1 copies, writes back if dirty
		cost += l.ScanPerLine
	}
	if req.Done != nil {
		l.replyToCore(req.Core, req.Done)
	}
	return cost
}

// handlePIMOp implements Fig. 4: scope buffer lookup, scan-and-flush on a
// miss, then forwarding to the memory controller. Baseline models forward
// without any coherence action.
func (l *LLC) handlePIMOp(req *mem.Request) sim.Tick {
	if !l.Model.FlushesLLCOnPIMOp() {
		l.egressPush(req)
		return 1
	}
	l.markStaleMisses(req.Scope)
	if l.SB != nil && l.SB.Lookup(req.Scope) {
		l.SBHitRate.Hit()
		l.ScanLatency.Observe(0)
		l.egressPush(req)
		return l.HitLatency
	}
	l.SBHitRate.Miss()
	cost := l.scanFlush(req.Scope)
	l.ScanLatency.Observe(float64(cost))
	if l.SB != nil {
		l.SB.Insert(req.Scope)
	}
	l.egressPush(req)
	return l.HitLatency + cost
}

// handleScopeFence scans-and-flushes like a PIM op but terminates here,
// acknowledging the issuing core (§V-E).
func (l *LLC) handleScopeFence(req *mem.Request) sim.Tick {
	cost := sim.Tick(0)
	l.markStaleMisses(req.Scope)
	if l.SB != nil && l.SB.Lookup(req.Scope) {
		l.SBHitRate.Hit()
	} else {
		if l.SB != nil {
			l.SBHitRate.Miss()
		}
		cost = l.scanFlush(req.Scope)
		if l.SB != nil {
			l.SB.Insert(req.Scope)
		}
	}
	if req.Done != nil {
		l.replyToCore(req.Core, req.Done)
	}
	return l.HitLatency + cost
}

// scanFlush walks the sets the SBV marks, flushing every line of the scope
// (recalling L1 copies first), and returns the scan cost.
func (l *LLC) scanFlush(scope mem.ScopeID) sim.Tick {
	l.Scans.Inc()
	scanned, flushed := 0, 0
	for s := 0; s < l.arr.sets; s++ {
		if l.SBV != nil && !l.SBV.Test(s) {
			continue
		}
		scanned++
		var victims []*Line
		l.arr.ForEachInSet(s, func(ln *Line) {
			if ln.Scope == scope {
				victims = append(victims, ln)
			}
		})
		for _, ln := range victims {
			flushed++
			l.evictVictim(ln)
		}
	}
	l.LinesFlushed.Add(uint64(flushed))
	l.SkipRatio.Observe(1 - float64(scanned)/float64(l.arr.sets))
	if l.Tracer.Enabled(trace.CatCache) {
		l.Tracer.Emit(trace.CatCache, "llc", "scan scope=%d sets=%d flushed=%d", scope, scanned, flushed)
	}
	return l.ScanPerSet*sim.Tick(scanned) + l.ScanPerLine*sim.Tick(flushed)
}

// markStaleMisses flags outstanding misses of the scope so their fills do
// not resurrect flushed lines (see fillArrived).
func (l *LLC) markStaleMisses(scope mem.ScopeID) {
	for line, e := range l.mshr {
		if l.Scopes.ScopeOf(line.Addr()) == scope {
			e.stale = true
		}
	}
}

// egressPush appends a request to the FIFO toward the memory controller
// and pumps it. Credits against the MC queue guarantee delivery order and
// acceptance (the LLC is the controller's only producer).
func (l *LLC) egressPush(req *mem.Request) {
	l.egress = append(l.egress, req)
	l.pump()
}

func (l *LLC) pump() {
	if l.pumping {
		return
	}
	l.pumping = true
	for len(l.egress) > 0 && l.mc.QueueLen()+l.inflightMC < l.mc.QueueSize {
		req := l.egress[0]
		l.egress = l.egress[1:]
		l.inflightMC++
		l.mcLink.SendOrdered(func() {
			l.inflightMC--
			if !l.mc.Enqueue(req) {
				panic("cache: MC rejected a credited request")
			}
		})
	}
	l.pumping = false
}

// EgressBacklog reports requests waiting for MC space (congestion signal).
func (l *LLC) EgressBacklog() int { return len(l.egress) }

// HasLine reports LLC presence of a line (tests).
func (l *LLC) HasLine(line mem.LineAddr) bool { return l.arr.Peek(line).Valid() }

// LineCount reports valid lines (tests).
func (l *LLC) LineCount() int { return l.arr.CountValid() }

// L1s exposes the connected L1 caches (system wiring, tests).
func (l *LLC) L1s() []*L1 { return l.l1s }

// CheckInclusive verifies every valid L1 line is present in the LLC
// (property tests). It returns the first violating line address.
func (l *LLC) CheckInclusive() (mem.LineAddr, bool) {
	for _, l1 := range l.l1s {
		for i := range l1.arr.lines {
			ln := &l1.arr.lines[i]
			if ln.valid && !l.arr.Peek(ln.Addr).Valid() {
				return ln.Addr, true
			}
		}
	}
	return 0, false
}

// CheckSWMR verifies the single-writer/multiple-reader invariant across
// L1s: a line modified in one L1 appears in no other L1.
func (l *LLC) CheckSWMR() (mem.LineAddr, bool) {
	type holder struct{ m, any int }
	seen := make(map[mem.LineAddr]*holder)
	for _, l1 := range l.l1s {
		for i := range l1.arr.lines {
			ln := &l1.arr.lines[i]
			if !ln.valid {
				continue
			}
			h := seen[ln.Addr]
			if h == nil {
				h = &holder{}
				seen[ln.Addr] = h
			}
			h.any++
			if ln.State == Modified || ln.State == Exclusive {
				h.m++
			}
		}
	}
	for addr, h := range seen {
		if h.m > 0 && h.any > 1 {
			return addr, true
		}
	}
	return 0, false
}
