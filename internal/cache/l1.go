package cache

import (
	"bulkpim/internal/core"
	"bulkpim/internal/mem"
	"bulkpim/internal/noc"
	"bulkpim/internal/sim"
	"bulkpim/internal/stats"
)

// L1 is a private first-level cache. Under the scope-relaxed model it also
// carries a scope buffer and SBV so scope-fences can scan it (§V-E); PIM
// ops pass through it unflushed on their way to the LLC.
type L1 struct {
	k      *sim.Kernel
	CoreID int

	arr        setAssoc
	HitLatency sim.Tick

	llc *LLC
	up  *noc.Link // requests toward the LLC

	// Pool supplies requests and line buffers. NewL1 creates a private
	// pool; the system builder overrides it so the whole machine shares
	// one.
	Pool *mem.RequestPool

	// SB/SBV are non-nil only for the scope-relaxed model.
	SB  *core.ScopeBuffer
	SBV *core.SBV

	mshr     map[mem.LineAddr]*l1Miss
	missFree []*l1Miss

	// deliverW/deliverX are reusable snapshots for waiter delivery:
	// waiters detach from the MSHR entry before running so a re-entrant
	// join lands on fresh state, without allocating per fill.
	deliverW []FillWaiter
	deliverX []ExclWaiter

	// victims is ScanFlushScope's reusable per-set eviction list.
	victims []*Line

	// Hoisted event/link callbacks (built once in NewL1) so the miss and
	// PIM-forward paths schedule without allocating closures.
	recvFn func(any)
	fwdFn  func(any)

	Hits, Misses stats.Counter
	Writebacks   stats.Counter
}

type l1Miss struct {
	excl    bool
	stale   bool // scope flushed while miss outstanding: do not install
	waiters []FillWaiter
	// exclWaiters are store completions that need a writable fill.
	exclWaiters []ExclWaiter
}

// NewL1 builds a private cache of sets x ways bound to kernel k. The
// upstream link and LLC are wired by the system builder via Connect.
func NewL1(k *sim.Kernel, coreID, sets, ways int, hitLatency sim.Tick) *L1 {
	c := &L1{
		k:          k,
		CoreID:     coreID,
		arr:        newSetAssoc(sets, ways),
		HitLatency: hitLatency,
		Pool:       mem.NewRequestPool(),
		mshr:       make(map[mem.LineAddr]*l1Miss),
	}
	c.recvFn = func(x any) { c.llc.Receive(x.(*mem.Request)) }
	c.fwdFn = func(x any) { c.up.SendOrderedCtx(c.recvFn, x) }
	return c
}

// Connect wires the L1 to its LLC and upstream link.
func (c *L1) Connect(llc *LLC, up *noc.Link) {
	c.llc = llc
	c.up = up
}

// EnableScopeStructures attaches a scope buffer and SBV (scope-relaxed).
func (c *L1) EnableScopeStructures(sbSets, sbWays int) {
	c.SB = core.NewScopeBuffer(sbSets, sbWays)
	c.SBV = core.NewSBV(c.arr.sets)
}

func (c *L1) getMiss(excl bool) *l1Miss {
	if n := len(c.missFree); n > 0 {
		e := c.missFree[n-1]
		c.missFree = c.missFree[:n-1]
		e.excl = excl
		return e
	}
	return &l1Miss{excl: excl}
}

func (c *L1) putMiss(e *l1Miss) {
	for i := range e.waiters {
		e.waiters[i] = FillWaiter{}
	}
	for i := range e.exclWaiters {
		e.exclWaiters[i] = ExclWaiter{}
	}
	e.waiters = e.waiters[:0]
	e.exclWaiters = e.exclWaiters[:0]
	e.excl, e.stale = false, false
	c.missFree = append(c.missFree, e)
}

// TryLoad returns the line's data and writer on a hit. The returned slice
// is the cache's own pooled buffer: callers consume it synchronously.
func (c *L1) TryLoad(l mem.LineAddr) (data []byte, writer uint64, ok bool) {
	if ln := c.arr.Lookup(l); ln.Valid() {
		c.Hits.Inc()
		return ln.Data, ln.Writer, true
	}
	return nil, 0, false
}

// TryStore writes bytes into the line if the cache holds write permission
// (E or M), transitioning it to M.
func (c *L1) TryStore(l mem.LineAddr, off int, data []byte, writer uint64) bool {
	ln := c.arr.Lookup(l)
	if !ln.Valid() || (ln.State != Exclusive && ln.State != Modified) {
		return false
	}
	c.Hits.Inc()
	if ln.Data == nil {
		ln.Data = c.Pool.GetLine()
	}
	copy(ln.Data[off:off+len(data)], data)
	ln.State = Modified
	ln.Writer = writer
	return true
}

// HasLine reports presence (tests, adversarial prefetcher).
func (c *L1) HasLine(l mem.LineAddr) bool { return c.arr.Peek(l).Valid() }

// RequestLine issues (or joins) a miss. done receives the line data when
// the fill arrives; for exclusive requests the line is installed writable
// before exclDone runs. Joining an outstanding miss consumes (releases)
// req — it never leaves the core tile.
func (c *L1) RequestLine(req *mem.Request, done FillWaiter, exclDone ExclWaiter) {
	c.Misses.Inc()
	l := req.Line
	if e, ok := c.mshr[l]; ok {
		if done.Fn != nil {
			e.waiters = append(e.waiters, done)
		}
		if exclDone.Fn != nil {
			e.exclWaiters = append(e.exclWaiters, exclDone)
			// Upgrade needed; the fill logic reissues as exclusive.
		}
		c.Pool.Put(req)
		return
	}
	e := c.getMiss(req.Excl)
	if done.Fn != nil {
		e.waiters = append(e.waiters, done)
	}
	if exclDone.Fn != nil {
		e.exclWaiters = append(e.exclWaiters, exclDone)
	}
	c.mshr[l] = e
	c.sendMiss(req)
}

func (c *L1) sendMiss(req *mem.Request) {
	c.up.SendCtx(c.recvFn, req)
}

// ForwardPIM routes a PIM op (or scope-fence) through this cache level
// toward the LLC without flushing it (scope-relaxed, §V-E). PIM ops and
// scope-fences keep FIFO order on this path — the network must not let an
// op overtake a fence it follows (§V-E's "not allowed to reorder around
// the scope-fence in any path").
func (c *L1) ForwardPIM(req *mem.Request) {
	c.k.ScheduleCtx(c.HitLatency, c.fwdFn, req)
}

// Fill delivers a line from the LLC. state is Shared or Exclusive;
// noCache fills (scope flushed while the miss was outstanding) are handed
// to waiters without installing. data is the sender's buffer and is only
// read during the call.
func (c *L1) Fill(l mem.LineAddr, state MESI, data []byte, writer uint64, pimEnabled bool, scope mem.ScopeID, noCache bool) {
	e := c.mshr[l]
	if e == nil {
		// Unsolicited fill (possible after local stale handling); drop.
		return
	}
	if e.stale {
		noCache = true
		e.stale = false
	}
	if !noCache {
		c.install(l, state, data, writer, pimEnabled, scope)
	}
	c.deliverW = append(c.deliverW[:0], e.waiters...)
	for i := range e.waiters {
		e.waiters[i] = FillWaiter{}
	}
	e.waiters = e.waiters[:0]
	for _, w := range c.deliverW {
		w.Fn(w.Ctx, l, data, writer)
	}
	// Exclusive waiters need a writable installed line.
	if len(e.exclWaiters) > 0 {
		ln := c.arr.Peek(l)
		if ln.Valid() && (ln.State == Exclusive || ln.State == Modified) {
			c.deliverX = append(c.deliverX[:0], e.exclWaiters...)
			delete(c.mshr, l)
			c.putMiss(e)
			for _, w := range c.deliverX {
				w.Fn(w.Ctx)
			}
			return
		}
		// Fill was shared or bypassed: reissue exclusively.
		e.excl = true
		r := c.Pool.Get()
		r.Kind, r.Line, r.Scope, r.Core = mem.ReqLoad, l, scope, c.CoreID
		r.Excl, r.PIMEnabled = true, pimEnabled
		c.sendMiss(r)
		return
	}
	delete(c.mshr, l)
	c.putMiss(e)
}

func (c *L1) install(l mem.LineAddr, state MESI, data []byte, writer uint64, pimEnabled bool, scope mem.ScopeID) {
	if ln := c.arr.Peek(l); ln.Valid() {
		// Upgrade in place (e.g. S -> E on a GetM fill).
		ln.State = state
		setLineData(c.Pool, ln, data)
		ln.Writer = writer
		return
	}
	v := c.arr.Victim(l)
	if v.Valid() {
		c.evict(v)
	}
	c.arr.Install(v, l, state)
	setLineData(c.Pool, v, data)
	v.Writer = writer
	v.PIMEnabled = pimEnabled
	v.Scope = scope
	if pimEnabled {
		if c.SBV != nil {
			c.SBV.OnInsert(c.arr.SetOf(l))
		}
		if c.SB != nil {
			c.SB.Invalidate(scope)
		}
	}
}

func (c *L1) evict(v *Line) {
	if v.State == Modified {
		c.Writebacks.Inc()
		c.llc.WritebackFromL1(c.CoreID, v.Addr, v.Data, v.Writer)
	}
	if v.PIMEnabled && c.SBV != nil {
		c.SBV.OnEvict(c.arr.SetOf(v.Addr))
	}
	c.dropLine(v)
}

// dropLine invalidates a slot, returning its payload buffer to the pool.
func (c *L1) dropLine(v *Line) {
	if v.Data != nil {
		c.Pool.PutLine(v.Data)
		v.Data = nil
	}
	c.arr.Invalidate(v)
}

// RecallLine is the LLC-initiated downgrade/invalidate. When it reports
// dirty, the line's payload has been copied into dst (len >= LineSize) —
// the caller owns dst, so no buffer changes hands. Invalidation updates
// the SBV.
func (c *L1) RecallLine(l mem.LineAddr, invalidate bool, dst []byte) (writer uint64, dirty, present bool) {
	ln := c.arr.Peek(l)
	if !ln.Valid() {
		return 0, false, false
	}
	dirty = ln.State == Modified && ln.Data != nil
	writer = ln.Writer
	if dirty {
		copy(dst[:mem.LineSize], ln.Data)
	}
	if invalidate {
		if ln.PIMEnabled && c.SBV != nil {
			c.SBV.OnEvict(c.arr.SetOf(l))
		}
		c.dropLine(ln)
	} else if ln.State == Modified || ln.State == Exclusive {
		ln.State = Shared
	}
	return writer, dirty, true
}

// ScanFlushScope scans this cache for lines of the scope, writing dirty
// ones back to the LLC and invalidating all of them. It returns the cost
// drivers (sets checked, lines flushed) and marks outstanding misses to
// the scope stale. Used by scope-fences at every level (§V-E).
func (c *L1) ScanFlushScope(scope mem.ScopeID) (setsScanned, flushed int) {
	if c.SB != nil && c.SB.Lookup(scope) {
		c.markStale(scope)
		return 0, 0
	}
	for s := 0; s < c.arr.sets; s++ {
		if c.SBV != nil && !c.SBV.Test(s) {
			continue
		}
		setsScanned++
		c.victims = c.victims[:0]
		set := c.arr.set(s)
		for i := range set {
			if set[i].valid && set[i].Scope == scope && set[i].PIMEnabled {
				c.victims = append(c.victims, &set[i])
			}
		}
		for _, ln := range c.victims {
			flushed++
			c.evict(ln)
		}
	}
	if c.SB != nil {
		c.SB.Insert(scope)
	}
	c.markStale(scope)
	return setsScanned, flushed
}

func (c *L1) markStale(scope mem.ScopeID) {
	for l, e := range c.mshr {
		if c.llc != nil && c.llc.Scopes != nil && c.llc.Scopes.ScopeOf(l.Addr()) == scope {
			e.stale = true
		}
	}
}

// LineCount reports valid lines (tests).
func (c *L1) LineCount() int { return c.arr.CountValid() }

// MSHRLen reports outstanding misses (deadlock diagnostics).
func (c *L1) MSHRLen() int { return len(c.mshr) }
