package cache

import (
	"testing"

	"bulkpim/internal/core"
	"bulkpim/internal/mem"
	"bulkpim/internal/memctrl"
	"bulkpim/internal/noc"
	"bulkpim/internal/pim"
	"bulkpim/internal/sim"
)

// rig wires cores' L1s, an LLC, MC and PIM module with short links.
type rig struct {
	k      *sim.Kernel
	b      *mem.Backing
	scopes *mem.ScopeMap
	l1s    []*L1
	llc    *LLC
	mc     *memctrl.Controller
	mod    *pim.Module
}

func newRig(t *testing.T, model core.Model, cores int) *rig {
	t.Helper()
	k := sim.NewKernel()
	k.EventLimit = 5_000_000
	b := mem.NewBacking()
	b.TrackWriters = true
	scopes := mem.NewScopeMap(mem.DefaultPIMBase, mem.DefaultScopeSize, 16)
	mod := pim.NewModule(k, b)
	mod.Functional = true
	mc := memctrl.New(k, mod, b)
	llc := NewLLC(k, model, 16, 2, 18, scopes)
	rng := sim.NewRand(7)
	l1s := make([]*L1, cores)
	down := make([]*noc.Link, cores)
	for i := range l1s {
		l1s[i] = NewL1(k, i, 4, 2, 3)
		if model.ScopeStructuresInAllCaches() {
			l1s[i].EnableScopeStructures(16, 1)
		}
		up := noc.NewLink(k, "up", 8, 0, 1, rng.Fork())
		l1s[i].Connect(llc, up)
		down[i] = noc.NewLink(k, "down", 8, 0, 1, rng.Fork())
	}
	mcLink := noc.NewLink(k, "mc", 6, 0, 1, rng.Fork())
	mcResp := noc.NewLink(k, "mcr", 6, 0, 1, rng.Fork())
	llc.Connect(l1s, down, mc, mcLink, mcResp)
	return &rig{k: k, b: b, scopes: scopes, l1s: l1s, llc: llc, mc: mc, mod: mod}
}

// loadVia fetches a line through core i's L1, returning the observed data.
func (r *rig) loadVia(t *testing.T, i int, line mem.LineAddr) []byte {
	t.Helper()
	if data, _, ok := r.l1s[i].TryLoad(line); ok {
		out := make([]byte, mem.LineSize)
		copy(out, data)
		return out
	}
	var got []byte
	req := &mem.Request{Kind: mem.ReqLoad, Line: line, Scope: r.scopes.ScopeOf(line.Addr()), Core: i}
	r.l1s[i].RequestLine(req, FillWaiter{Fn: func(_ any, _ mem.LineAddr, data []byte, _ uint64) {
		got = make([]byte, mem.LineSize)
		copy(got, data)
	}}, ExclWaiter{})
	if _, err := r.k.Run(); err != nil {
		t.Fatal(err)
	}
	if got == nil {
		t.Fatal("load never completed")
	}
	return got
}

// storeVia writes one byte through core i's L1 (fetching exclusivity).
func (r *rig) storeVia(t *testing.T, i int, line mem.LineAddr, off int, val byte, writer uint64) {
	t.Helper()
	if r.l1s[i].TryStore(line, off, []byte{val}, writer) {
		return
	}
	done := false
	req := &mem.Request{Kind: mem.ReqLoad, Line: line, Scope: r.scopes.ScopeOf(line.Addr()), Core: i, Excl: true}
	r.l1s[i].RequestLine(req, FillWaiter{}, ExclWaiter{Fn: func(any) {
		if !r.l1s[i].TryStore(line, off, []byte{val}, writer) {
			t.Error("store failed after exclusive fill")
		}
		done = true
	}})
	if _, err := r.k.Run(); err != nil {
		t.Fatal(err)
	}
	if !done {
		t.Fatal("store never completed")
	}
}

func TestL1MissFillsAndHits(t *testing.T) {
	r := newRig(t, core.Atomic, 1)
	r.b.SetByte(100, 0x42)
	line := mem.LineOf(100)
	data := r.loadVia(t, 0, line)
	if data[100-64] != 0x42 {
		t.Fatalf("loaded %#x, want 0x42", data[100-64])
	}
	if _, _, ok := r.l1s[0].TryLoad(line); !ok {
		t.Fatal("second access should hit L1")
	}
	if !r.llc.HasLine(line) {
		t.Fatal("LLC must hold the line (inclusive)")
	}
	if r.l1s[0].Misses.Value() == 0 || r.llc.Misses.Value() == 0 {
		t.Fatal("miss counters not bumped")
	}
}

func TestStoreUpgradeAndWritebackChain(t *testing.T) {
	r := newRig(t, core.Atomic, 2)
	line := mem.LineAddr(0)
	// Core 0 loads (gets E), core 1 loads (downgrade to S at both).
	r.loadVia(t, 0, line)
	r.loadVia(t, 1, line)
	// Core 0 stores: must invalidate core 1's copy.
	r.storeVia(t, 0, line, 0, 0x55, 9)
	if r.l1s[1].HasLine(line) {
		t.Fatal("core 1 copy must be invalidated by core 0's store")
	}
	// Core 1 loads again: data must come from core 0's dirty copy.
	data := r.loadVia(t, 1, line)
	if data[0] != 0x55 {
		t.Fatalf("core 1 read %#x, want 0x55 from dirty owner", data[0])
	}
	if addr, bad := r.llc.CheckSWMR(); bad {
		t.Fatalf("SWMR violated at %#x", uint64(addr))
	}
}

func TestInclusiveBackInvalidation(t *testing.T) {
	r := newRig(t, core.Atomic, 1)
	// LLC: 16 sets x 2 ways. Fill 3 lines mapping to the same LLC set
	// (stride sets*64): the third fill evicts one and must back-invalidate
	// the L1 copy.
	stride := uint64(16 * mem.LineSize)
	lines := []mem.LineAddr{0, mem.LineAddr(stride), mem.LineAddr(2 * stride)}
	for _, ln := range lines {
		r.loadVia(t, 0, ln)
	}
	present := 0
	for _, ln := range lines {
		if r.l1s[0].HasLine(ln) {
			present++
		}
	}
	if present != 2 {
		t.Fatalf("L1 holds %d of the conflicting lines, want 2 after back-invalidation", present)
	}
	if addr, bad := r.llc.CheckInclusive(); bad {
		t.Fatalf("inclusivity violated at %#x", uint64(addr))
	}
}

func TestDirtyEvictionReachesMemory(t *testing.T) {
	r := newRig(t, core.Atomic, 1)
	line := mem.LineAddr(0)
	r.storeVia(t, 0, line, 0, 0x77, 3)
	// Evict through LLC set conflicts.
	stride := uint64(16 * mem.LineSize)
	r.loadVia(t, 0, mem.LineAddr(stride))
	r.loadVia(t, 0, mem.LineAddr(2*stride))
	if _, err := r.k.Run(); err != nil {
		t.Fatal(err)
	}
	if r.b.ByteAt(0) != 0x77 {
		t.Fatalf("memory byte = %#x, want 0x77 after dirty eviction", r.b.ByteAt(0))
	}
	if r.b.WriterOf(line) != 3 {
		t.Fatal("writer id lost on writeback")
	}
}

// pimReq builds a PIM op request for the rig's scope s.
func pimReq(s mem.ScopeID) *mem.Request {
	return &mem.Request{Kind: mem.ReqPIMOp, Scope: s, Core: 0,
		PIM: &mem.PIMCommand{Scope: s, Program: &mem.PIMProgram{Name: "nop"}}}
}

func TestPIMOpScanFlushesScopeAndWritesBackFirst(t *testing.T) {
	r := newRig(t, core.Atomic, 1)
	scope := mem.ScopeID(2)
	base := r.scopes.ScopeBase(scope)
	line := mem.LineOf(base)
	// Dirty a line of the scope in the L1.
	r.storeVia(t, 0, line, 0, 0xAB, 5)
	// The PIM op must flush it; the op's functional Apply observes memory
	// AFTER the writeback (egress FIFO + MC same-scope ordering).
	var seen byte = 0xFF
	req := pimReq(scope)
	req.PIM.Program.Apply = func(b *mem.Backing, w uint64) { seen = b.ByteAt(base) }
	r.llc.Receive(req)
	if _, err := r.k.Run(); err != nil {
		t.Fatal(err)
	}
	if seen != 0xAB {
		t.Fatalf("PIM op saw %#x, want 0xAB (flush must precede the op)", seen)
	}
	if r.l1s[0].HasLine(line) || r.llc.HasLine(line) {
		t.Fatal("scope line must be flushed from all levels")
	}
	if r.llc.Scans.Value() != 1 {
		t.Fatalf("scans = %d, want 1", r.llc.Scans.Value())
	}
}

func TestScopeBufferHitSkipsSecondScan(t *testing.T) {
	r := newRig(t, core.Atomic, 1)
	scope := mem.ScopeID(2)
	line := mem.LineOf(r.scopes.ScopeBase(scope))
	r.loadVia(t, 0, line)
	r.llc.Receive(pimReq(scope))
	r.llc.Receive(pimReq(scope))
	if _, err := r.k.Run(); err != nil {
		t.Fatal(err)
	}
	if r.llc.Scans.Value() != 1 {
		t.Fatalf("scans = %d, want 1 (second op hits scope buffer)", r.llc.Scans.Value())
	}
	if r.llc.SBHitRate.Hits() != 1 || r.llc.SBHitRate.Total() != 2 {
		t.Fatalf("scope buffer hit rate %d/%d, want 1/2", r.llc.SBHitRate.Hits(), r.llc.SBHitRate.Total())
	}
	// Mean scan latency counts the hit as zero (Fig. 10c definition).
	if r.llc.ScanLatency.Count() != 2 {
		t.Fatal("scan latency must be sampled per PIM op")
	}
}

func TestLineInsertErasesScopeBufferEntry(t *testing.T) {
	r := newRig(t, core.Atomic, 1)
	scope := mem.ScopeID(2)
	line := mem.LineOf(r.scopes.ScopeBase(scope))
	r.llc.Receive(pimReq(scope)) // scan (empty), inserts scope into SB
	if _, err := r.k.Run(); err != nil {
		t.Fatal(err)
	}
	r.loadVia(t, 0, line) // inserting a scope line must erase the SB entry
	r.llc.Receive(pimReq(scope))
	if _, err := r.k.Run(); err != nil {
		t.Fatal(err)
	}
	if r.llc.Scans.Value() != 2 {
		t.Fatalf("scans = %d, want 2 (insert must invalidate scope buffer)", r.llc.Scans.Value())
	}
}

func TestSBVSkipsUntouchedSets(t *testing.T) {
	r := newRig(t, core.Atomic, 1)
	scope := mem.ScopeID(2)
	line := mem.LineOf(r.scopes.ScopeBase(scope))
	r.loadVia(t, 0, line) // one PIM line in one set
	r.llc.Receive(pimReq(scope))
	if _, err := r.k.Run(); err != nil {
		t.Fatal(err)
	}
	if r.llc.SkipRatio.Count() != 1 {
		t.Fatal("skip ratio not sampled")
	}
	want := 1 - 1.0/16
	if got := r.llc.SkipRatio.Value(); got != want {
		t.Fatalf("skip ratio = %v, want %v", got, want)
	}
}

func TestSWFlushLineFlush(t *testing.T) {
	r := newRig(t, core.SWFlush, 1)
	line := mem.LineAddr(0)
	r.storeVia(t, 0, line, 0, 0x99, 4)
	done := false
	req := &mem.Request{Kind: mem.ReqFlush, Line: line, Core: 0, OnDone: func(*mem.Request, any) { done = true }}
	r.llc.Receive(req)
	if _, err := r.k.Run(); err != nil {
		t.Fatal(err)
	}
	if !done {
		t.Fatal("flush not acknowledged")
	}
	if r.l1s[0].HasLine(line) || r.llc.HasLine(line) {
		t.Fatal("flushed line still cached")
	}
	if r.b.ByteAt(0) != 0x99 {
		t.Fatal("flush lost dirty data")
	}
}

func TestBaselinePIMOpDoesNotFlush(t *testing.T) {
	r := newRig(t, core.Naive, 1)
	scope := mem.ScopeID(2)
	line := mem.LineOf(r.scopes.ScopeBase(scope))
	r.storeVia(t, 0, line, 0, 0x21, 6)
	var seen byte = 0xFF
	req := pimReq(scope)
	req.PIM.Program.Apply = func(b *mem.Backing, w uint64) { seen = b.ByteAt(mem.Addr(line)) }
	r.llc.Receive(req)
	if _, err := r.k.Run(); err != nil {
		t.Fatal(err)
	}
	if seen == 0x21 {
		t.Fatal("naive baseline must NOT flush the dirty line (stale PIM input expected)")
	}
	if !r.l1s[0].HasLine(line) {
		t.Fatal("naive baseline must leave the cache untouched")
	}
}

// A load miss outstanding when a PIM op scans must not install a pre-PIM
// line afterwards (the stale-fill bypass).
func TestStaleMissBypassesCache(t *testing.T) {
	r := newRig(t, core.Atomic, 1)
	scope := mem.ScopeID(2)
	base := r.scopes.ScopeBase(scope)
	line := mem.LineOf(base)
	r.b.SetByte(base, 0x01) // pre-PIM value

	var got []byte
	req := &mem.Request{Kind: mem.ReqLoad, Line: line, Scope: scope, Core: 0}
	r.l1s[0].RequestLine(req, FillWaiter{Fn: func(_ any, _ mem.LineAddr, data []byte, _ uint64) {
		got = cloneData(data)
	}}, ExclWaiter{})
	// PIM op that rewrites the byte, racing with the outstanding miss:
	// delivered after the GetS registers at the LLC but before the DRAM
	// fill returns.
	p := pimReq(scope)
	p.PIM.Program.Apply = func(b *mem.Backing, w uint64) { b.SetByte(base, 0x02) }
	r.k.Schedule(40, func() { r.llc.Receive(p) })
	if _, err := r.k.Run(); err != nil {
		t.Fatal(err)
	}
	if got == nil {
		t.Fatal("load never completed")
	}
	if r.l1s[0].HasLine(line) || r.llc.HasLine(line) {
		t.Fatal("stale fill must not be cached at any level")
	}
	// A fresh load now observes the post-PIM value from memory.
	data := r.loadVia(t, 0, line)
	if data[0] != 0x02 {
		t.Fatalf("post-PIM load got %#x, want 0x02", data[0])
	}
}

// A store (exclusive) miss outstanding during a scan must be replayed so it
// lands on post-PIM data.
func TestStaleExclusiveMissReplays(t *testing.T) {
	r := newRig(t, core.Atomic, 1)
	scope := mem.ScopeID(2)
	base := r.scopes.ScopeBase(scope)
	line := mem.LineOf(base)
	r.b.SetByte(base+1, 0x0A)

	stored := false
	req := &mem.Request{Kind: mem.ReqLoad, Line: line, Scope: scope, Core: 0, Excl: true}
	r.l1s[0].RequestLine(req, FillWaiter{}, ExclWaiter{Fn: func(any) {
		if !r.l1s[0].TryStore(line, 0, []byte{0xEE}, 8) {
			t.Error("store failed after replayed exclusive fill")
		}
		stored = true
	}})
	p := pimReq(scope)
	p.PIM.Program.Apply = func(b *mem.Backing, w uint64) { b.SetByte(base+1, 0x0B) }
	r.k.Schedule(40, func() { r.llc.Receive(p) })
	if _, err := r.k.Run(); err != nil {
		t.Fatal(err)
	}
	if !stored {
		t.Fatal("store never completed")
	}
	// The line in L1 must contain the post-PIM byte at offset 1 plus the
	// store's byte at offset 0.
	data, _, ok := r.l1s[0].TryLoad(line)
	if !ok {
		t.Fatal("line must be cached after replay")
	}
	if data[0] != 0xEE || data[1] != 0x0B {
		t.Fatalf("line = %#x %#x, want 0xEE 0x0B (store on post-PIM data)", data[0], data[1])
	}
}

func TestScopeFenceFlushesAllLevels(t *testing.T) {
	r := newRig(t, core.ScopeRelaxed, 1)
	scope := mem.ScopeID(2)
	base := r.scopes.ScopeBase(scope)
	line := mem.LineOf(base)
	r.storeVia(t, 0, line, 0, 0x31, 7)

	// L1 scan first (as the fence passes the level), then LLC fence.
	sets, flushed := r.l1s[0].ScanFlushScope(scope)
	if flushed != 1 || sets == 0 {
		t.Fatalf("L1 scan: sets=%d flushed=%d, want 1 flushed", sets, flushed)
	}
	done := false
	fence := &mem.Request{Kind: mem.ReqScopeFence, Scope: scope, Core: 0, OnDone: func(*mem.Request, any) { done = true }}
	r.llc.Receive(fence)
	if _, err := r.k.Run(); err != nil {
		t.Fatal(err)
	}
	if !done {
		t.Fatal("scope fence not acknowledged")
	}
	if r.l1s[0].HasLine(line) || r.llc.HasLine(line) {
		t.Fatal("fence left scope lines cached")
	}
	if r.b.ByteAt(base) != 0x31 {
		t.Fatal("fence lost dirty data")
	}
}

func TestUncacheablePassThrough(t *testing.T) {
	r := newRig(t, core.Uncacheable, 1)
	r.b.SetByte(200, 0x66)
	line := mem.LineOf(200)
	var got []byte
	req := &mem.Request{Kind: mem.ReqLoad, Line: line, Core: 0, Uncacheable: true}
	req.OnDone = func(r *mem.Request, _ any) { got = cloneData(r.Data) }
	r.llc.Receive(req)
	if _, err := r.k.Run(); err != nil {
		t.Fatal(err)
	}
	if got == nil || got[200-192] != 0x66 {
		t.Fatal("uncacheable load wrong")
	}
	if r.llc.HasLine(line) || r.l1s[0].HasLine(line) {
		t.Fatal("uncacheable access must not allocate")
	}
}

// Randomized coherence workload: SWMR and inclusivity hold throughout.
func TestCoherenceInvariantsRandom(t *testing.T) {
	r := newRig(t, core.Atomic, 3)
	rng := sim.NewRand(123)
	for step := 0; step < 400; step++ {
		coreID := rng.Intn(3)
		line := mem.LineAddr(uint64(rng.Intn(64)) * mem.LineSize)
		if rng.Intn(2) == 0 {
			r.loadVia(t, coreID, line)
		} else {
			r.storeVia(t, coreID, line, rng.Intn(mem.LineSize), byte(step), uint64(step+1))
		}
		if addr, bad := r.llc.CheckSWMR(); bad {
			t.Fatalf("step %d: SWMR violated at %#x", step, uint64(addr))
		}
		if addr, bad := r.llc.CheckInclusive(); bad {
			t.Fatalf("step %d: inclusivity violated at %#x", step, uint64(addr))
		}
	}
}

// Stores must be read back correctly through arbitrary sharing patterns.
func TestDataIntegrityAcrossSharing(t *testing.T) {
	r := newRig(t, core.Atomic, 3)
	rng := sim.NewRand(321)
	shadow := make(map[mem.Addr]byte)
	for step := 0; step < 600; step++ {
		coreID := rng.Intn(3)
		line := mem.LineAddr(uint64(rng.Intn(32)) * mem.LineSize)
		off := rng.Intn(mem.LineSize)
		if rng.Intn(2) == 0 {
			v := byte(rng.Intn(256))
			r.storeVia(t, coreID, line, off, v, uint64(step+1))
			shadow[line.Addr()+mem.Addr(off)] = v
		} else {
			data := r.loadVia(t, coreID, line)
			want, okW := shadow[line.Addr()+mem.Addr(off)]
			if okW && data[off] != want {
				t.Fatalf("step %d: read %#x, want %#x", step, data[off], want)
			}
		}
	}
}
