// Package cache implements the host cache hierarchy of §V-A: private L1s
// and a shared, inclusive last-level cache with a MESI directory, extended
// with the paper's coherence hardware — per-cache scope buffer and scope
// bit-vector — and the scan-and-flush operation PIM ops and scope-fences
// perform on their way to memory (§IV).
//
// Protocol design note: coherence state transitions execute atomically
// inside event handlers (no transient states); message latencies are
// charged on the request/response paths. This keeps the protocol
// race-free by construction while preserving the timing behaviour the
// paper's evaluation depends on (hit/miss latencies, scan cost, back
// pressure). One race the paper leaves implicit is handled explicitly:
// a miss outstanding to a scope when a PIM op scans the LLC would install
// a pre-PIM line after the flush; such fills are delivered bypass-cache
// (loads) or replayed (stores). See DESIGN.md.
package cache

import (
	"bulkpim/internal/mem"
)

// MESI is the coherence state of a cached line.
type MESI uint8

const (
	Invalid MESI = iota
	Shared
	Exclusive
	Modified
)

func (s MESI) String() string {
	switch s {
	case Invalid:
		return "I"
	case Shared:
		return "S"
	case Exclusive:
		return "E"
	case Modified:
		return "M"
	default:
		return "?"
	}
}

// Line is one cache line with its coherence and directory metadata.
type Line struct {
	Addr  mem.LineAddr
	State MESI
	// Dirty marks LLC contents newer than memory (merged L1 writebacks).
	Dirty bool
	// PIMEnabled marks lines of PIM-enabled scopes (drives the SBV).
	PIMEnabled bool
	Scope      mem.ScopeID
	// Data is the 64-byte payload; Writer the happens-before event of the
	// write that produced it.
	Data   []byte
	Writer uint64
	// Directory state (LLC only): Sharers is a bitmask of cores holding S
	// copies; Owner is the core holding E/M, or -1.
	Sharers uint64
	Owner   int

	used  uint64
	valid bool
}

// setAssoc is an N-way set-associative array with LRU replacement.
type setAssoc struct {
	sets, ways int
	lines      []Line
	clock      uint64
}

func newSetAssoc(sets, ways int) setAssoc {
	if sets <= 0 || ways <= 0 || sets&(sets-1) != 0 {
		panic("cache: geometry must be positive with power-of-two sets")
	}
	lines := make([]Line, sets*ways)
	for i := range lines {
		lines[i].Owner = -1
	}
	return setAssoc{sets: sets, ways: ways, lines: lines}
}

// SetOf maps a line address to its set index.
func (c *setAssoc) SetOf(l mem.LineAddr) int {
	return int(l.Index() & uint64(c.sets-1))
}

func (c *setAssoc) set(idx int) []Line {
	return c.lines[idx*c.ways : (idx+1)*c.ways]
}

// Lookup returns the line if present, refreshing LRU.
func (c *setAssoc) Lookup(l mem.LineAddr) *Line {
	c.clock++
	for i, ln := range c.set(c.SetOf(l)) {
		if ln.valid && ln.Addr == l {
			p := &c.set(c.SetOf(l))[i]
			p.used = c.clock
			return p
		}
	}
	return nil
}

// Peek returns the line without touching LRU.
func (c *setAssoc) Peek(l mem.LineAddr) *Line {
	for i, ln := range c.set(c.SetOf(l)) {
		if ln.valid && ln.Addr == l {
			return &c.set(c.SetOf(l))[i]
		}
	}
	return nil
}

// Victim returns the slot to fill for line l: an invalid way if one
// exists, else the LRU way (whose previous contents the caller must evict).
func (c *setAssoc) Victim(l mem.LineAddr) *Line {
	set := c.set(c.SetOf(l))
	victim := &set[0]
	for i := range set {
		if !set[i].valid {
			return &set[i]
		}
		if set[i].used < victim.used {
			victim = &set[i]
		}
	}
	return victim
}

// Install places a line into slot v (which the caller has vacated).
func (c *setAssoc) Install(v *Line, l mem.LineAddr, state MESI) {
	c.clock++
	*v = Line{Addr: l, State: state, Owner: -1, used: c.clock, valid: true}
}

// ForEachInSet visits valid lines of one set.
func (c *setAssoc) ForEachInSet(idx int, fn func(*Line)) {
	set := c.set(idx)
	for i := range set {
		if set[i].valid {
			fn(&set[i])
		}
	}
}

// Invalidate clears a line slot.
func (c *setAssoc) Invalidate(ln *Line) {
	ln.valid = false
	ln.State = Invalid
	ln.Data = nil
	ln.Sharers = 0
	ln.Owner = -1
	ln.Dirty = false
}

// Valid reports whether the slot holds a line.
func (ln *Line) Valid() bool { return ln != nil && ln.valid }

// CountValid returns the number of valid lines (tests).
func (c *setAssoc) CountValid() int {
	n := 0
	for i := range c.lines {
		if c.lines[i].valid {
			n++
		}
	}
	return n
}

// Sets returns the set count.
func (c *setAssoc) Sets() int { return c.sets }

// Ways returns the way count.
func (c *setAssoc) Ways() int { return c.ways }

// cloneData copies line payloads defensively (tests; the hot paths use
// pooled buffers via setLineData / RequestPool.CloneLine instead).
func cloneData(d []byte) []byte {
	if d == nil {
		return nil
	}
	out := make([]byte, len(d))
	copy(out, d)
	return out
}

// setLineData copies src into ln's payload, reusing the line's pooled
// buffer in place (allocating one from the pool only on first use). A nil
// src releases the buffer. Every Line.Data in the hierarchy is pool-owned;
// the component invalidating a slot returns its buffer.
func setLineData(p *mem.RequestPool, ln *Line, src []byte) {
	if src == nil {
		if ln.Data != nil {
			p.PutLine(ln.Data)
			ln.Data = nil
		}
		return
	}
	if ln.Data == nil {
		ln.Data = p.GetLine()
	}
	copy(ln.Data[:mem.LineSize], src)
}

// FillWaiter is a closure-free L1 fill continuation: Fn(Ctx, line, data,
// writer) runs when the miss's data arrives. Issuers pass a package-level
// function plus their own state as Ctx, so joining a miss allocates
// nothing.
type FillWaiter struct {
	Fn  func(ctx any, line mem.LineAddr, data []byte, writer uint64)
	Ctx any
}

// ExclWaiter is the closure-free continuation for store misses: Fn(Ctx)
// runs once the line is installed writable.
type ExclWaiter struct {
	Fn  func(ctx any)
	Ctx any
}

// completeReq adapts Request.Complete to the (fn, ctx) link-delivery shape:
// the LLC replies to flushes and fences by sending the request itself back
// over the core's response link.
func completeReq(x any) { x.(*mem.Request).Complete() }
