package noc

import (
	"testing"

	"bulkpim/internal/sim"
)

func TestBacklogGrowsAndDrains(t *testing.T) {
	k := sim.NewKernel()
	l := NewLink(k, "t", 5, 0, 10, sim.NewRand(1))
	if l.Backlog() != 0 {
		t.Fatal("fresh link has backlog")
	}
	for i := 0; i < 4; i++ {
		l.Send(func() {})
	}
	if got := l.Backlog(); got != 40 {
		t.Fatalf("backlog = %d, want 40 (4 msgs x 10 cycles)", got)
	}
	if _, err := k.RunUntil(25); err != nil {
		t.Fatal(err)
	}
	if got := l.Backlog(); got != 15 {
		t.Fatalf("backlog after 25 cycles = %d, want 15", got)
	}
	// Past the serialization horizon the backlog is zero.
	if _, err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if _, err := k.RunUntil(40); err != nil {
		t.Fatal(err)
	}
	if l.Backlog() != 0 {
		t.Fatalf("backlog at t=40 is %d, want 0", l.Backlog())
	}
	if l.BusyCycles != 40 {
		t.Fatalf("busy cycles = %d, want 40", l.BusyCycles)
	}
}

func TestMixedOrderedAndJittered(t *testing.T) {
	k := sim.NewKernel()
	l := NewLink(k, "t", 4, 16, 1, sim.NewRand(9))
	var got []string
	// Ordered messages must stay ordered relative to each other even when
	// interleaved with jittered sends.
	for i := 0; i < 20; i++ {
		if i%2 == 0 {
			i := i
			l.SendOrdered(func() { got = append(got, "o") })
			_ = i
		} else {
			l.Send(func() { got = append(got, "j") })
		}
	}
	if _, err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 20 {
		t.Fatalf("delivered %d, want 20", len(got))
	}
}
