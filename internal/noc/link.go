// Package noc models the host's on-chip interconnect. The paper's host
// assumption (3) is a memory subsystem that "can reorder operations passing
// through it, e.g. by a multi-path network-on-chip, virtual channels, or
// non-FIFO buffers" (§V-A); Link captures exactly that: messages experience
// a base latency, queueing when the link is saturated, and a deterministic
// per-message jitter that lets later messages overtake earlier ones, the
// reordering that makes PIM-op ordering enforcement necessary.
package noc

import (
	"bulkpim/internal/sim"
)

// Link is a point-to-point channel with bandwidth of one message per
// CyclesPerMsg cycles, fixed Latency, and jitter in [0, Jitter].
type Link struct {
	Name string

	k *sim.Kernel

	// Latency is the base traversal time in cycles.
	Latency sim.Tick
	// Jitter is the maximum extra delay; each message independently draws
	// from [0, Jitter]. Jitter > 0 permits reordering between messages.
	Jitter sim.Tick
	// CyclesPerMsg is the serialization time per message (bandwidth limit).
	CyclesPerMsg sim.Tick

	rng      *sim.Rand
	nextFree sim.Tick

	// Delivered counts messages sent on the link.
	Delivered uint64
	// BusyCycles accumulates serialization time, for utilization reports.
	BusyCycles sim.Tick
}

// NewLink builds a link bound to kernel k.
func NewLink(k *sim.Kernel, name string, latency, jitter, cyclesPerMsg sim.Tick, rng *sim.Rand) *Link {
	if cyclesPerMsg == 0 {
		cyclesPerMsg = 1
	}
	return &Link{Name: name, k: k, Latency: latency, Jitter: jitter, CyclesPerMsg: cyclesPerMsg, rng: rng}
}

// callPlain adapts a no-argument closure to the (fn, ctx) delivery shape;
// see sim.ScheduleCtx.
func callPlain(ctx any) { ctx.(func())() }

// Send schedules fn to run at the destination after link traversal. The
// returned tick is the delivery time. Messages serialize at the sender
// (bandwidth), then fly with latency+jitter, so two back-to-back messages
// can arrive out of order when the second draws a smaller jitter.
func (l *Link) Send(fn func()) sim.Tick {
	return l.SendCtx(callPlain, fn)
}

// SendCtx is Send without the closure: fn(ctx) runs at the destination.
// Timing (serialization, latency, jitter draw) is identical to Send, so the
// two are interchangeable without perturbing deterministic runs.
func (l *Link) SendCtx(fn func(any), ctx any) sim.Tick {
	now := l.k.Now()
	start := now
	if l.nextFree > start {
		start = l.nextFree
	}
	l.nextFree = start + l.CyclesPerMsg
	l.BusyCycles += l.CyclesPerMsg
	delay := start - now + l.Latency
	if l.Jitter > 0 {
		delay += sim.Tick(l.rng.Uint64n(uint64(l.Jitter) + 1))
	}
	at := now + delay
	l.k.ScheduleAtCtx(at, fn, ctx)
	l.Delivered++
	return at
}

// Backlog reports how far ahead of now the link's serialization point is:
// a congestion signal senders use as flow control.
func (l *Link) Backlog() sim.Tick {
	if l.nextFree > l.k.Now() {
		return l.nextFree - l.k.Now()
	}
	return 0
}

// SendOrdered delivers fn with the link's latency but no jitter and no
// overtaking relative to other SendOrdered calls: delivery time is
// monotonically nondecreasing. Used for paths that hardware keeps FIFO
// (e.g. ACK wires).
func (l *Link) SendOrdered(fn func()) sim.Tick {
	return l.SendOrderedCtx(callPlain, fn)
}

// SendOrderedCtx is SendOrdered without the closure: fn(ctx) runs at the
// destination, FIFO relative to other ordered sends.
func (l *Link) SendOrderedCtx(fn func(any), ctx any) sim.Tick {
	now := l.k.Now()
	start := now
	if l.nextFree > start {
		start = l.nextFree
	}
	l.nextFree = start + l.CyclesPerMsg
	l.BusyCycles += l.CyclesPerMsg
	at := start + l.Latency
	l.k.ScheduleAtCtx(at, fn, ctx)
	l.Delivered++
	return at
}
