package noc

import (
	"testing"

	"bulkpim/internal/sim"
)

func TestLinkLatency(t *testing.T) {
	k := sim.NewKernel()
	l := NewLink(k, "t", 10, 0, 1, sim.NewRand(1))
	var at sim.Tick
	l.Send(func() { at = k.Now() })
	if _, err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if at != 10 {
		t.Fatalf("delivered at %d, want 10", at)
	}
}

func TestLinkBandwidthSerializes(t *testing.T) {
	k := sim.NewKernel()
	l := NewLink(k, "t", 5, 0, 4, sim.NewRand(1))
	var times []sim.Tick
	for i := 0; i < 3; i++ {
		l.Send(func() { times = append(times, k.Now()) })
	}
	if _, err := k.Run(); err != nil {
		t.Fatal(err)
	}
	// starts at 0,4,8; each +5 latency
	want := []sim.Tick{5, 9, 13}
	for i := range want {
		if times[i] != want[i] {
			t.Fatalf("times %v, want %v", times, want)
		}
	}
	if l.Delivered != 3 {
		t.Fatal("delivered count wrong")
	}
}

func TestLinkJitterCanReorder(t *testing.T) {
	// With jitter, some pair of back-to-back messages must eventually be
	// delivered out of order.
	reordered := false
	for seed := uint64(1); seed < 50 && !reordered; seed++ {
		k := sim.NewKernel()
		l := NewLink(k, "t", 4, 8, 1, sim.NewRand(seed))
		var order []int
		for i := 0; i < 10; i++ {
			i := i
			l.Send(func() { order = append(order, i) })
		}
		if _, err := k.Run(); err != nil {
			t.Fatal(err)
		}
		for i := 1; i < len(order); i++ {
			if order[i] < order[i-1] {
				reordered = true
			}
		}
	}
	if !reordered {
		t.Fatal("jittered link never reordered messages")
	}
}

func TestSendOrderedNeverReorders(t *testing.T) {
	k := sim.NewKernel()
	l := NewLink(k, "t", 4, 8, 1, sim.NewRand(3))
	var order []int
	for i := 0; i < 100; i++ {
		i := i
		l.SendOrdered(func() { order = append(order, i) })
	}
	if _, err := k.Run(); err != nil {
		t.Fatal(err)
	}
	for i := range order {
		if order[i] != i {
			t.Fatalf("ordered link reordered: %v", order[:i+1])
		}
	}
}

func TestLinkDeterministic(t *testing.T) {
	run := func() []sim.Tick {
		k := sim.NewKernel()
		l := NewLink(k, "t", 4, 8, 2, sim.NewRand(99))
		var times []sim.Tick
		for i := 0; i < 20; i++ {
			l.Send(func() { times = append(times, k.Now()) })
		}
		if _, err := k.Run(); err != nil {
			t.Fatal(err)
		}
		return times
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("link nondeterministic across identical runs")
		}
	}
}
