package report

import (
	"math"
	"strings"
	"testing"
)

func TestTableRendering(t *testing.T) {
	tab := &Table{Title: "T", Header: []string{"a", "bb"}}
	tab.AddRow("x", "1")
	tab.AddRow("longer", "2")
	out := tab.String()
	if !strings.Contains(out, "T\n") || !strings.Contains(out, "longer") {
		t.Fatalf("bad render:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title, header, separator, 2 rows
		t.Fatalf("expected 5 lines, got %d:\n%s", len(lines), out)
	}
	// Columns aligned: header and rows share the first column width.
	if !strings.HasPrefix(lines[3], "x     ") {
		t.Errorf("column not padded: %q", lines[3])
	}
}

func TestF(t *testing.T) {
	cases := map[float64]string{
		0:       "0",
		1234:    "1234",
		12.345:  "12.35",
		0.12345: "0.1235",
	}
	for v, want := range cases {
		if got := F(v); got != want {
			t.Errorf("F(%v) = %q, want %q", v, got, want)
		}
	}
}

func TestSeries(t *testing.T) {
	s := NewSeries("fig", "x", "y", []string{"a", "b"})
	s.AddPoint(1, map[string]float64{"a": 10, "b": 20})
	s.AddPoint(2, map[string]float64{"a": 11, "b": 21})
	if len(s.X) != 2 || s.Y["b"][1] != 21 {
		t.Fatal("points lost")
	}
	out := s.String()
	for _, w := range []string{"fig", "x", "a", "b", "21"} {
		if !strings.Contains(out, w) {
			t.Errorf("series output missing %q:\n%s", w, out)
		}
	}
}

func TestCSV(t *testing.T) {
	s := NewSeries("fig", "x", "y", []string{"a", "b,c"})
	s.AddPoint(1, map[string]float64{"a": 10, "b,c": 20})
	csv := s.CSV()
	if !strings.HasPrefix(csv, "x,a,\"b,c\"\n1,10,20\n") {
		t.Fatalf("series csv = %q", csv)
	}
	tab := &Table{Header: []string{"h1", "h2"}}
	tab.AddRow("v\"q", "2")
	if !strings.Contains(tab.CSV(), `"v""q"`) {
		t.Fatalf("table csv escaping: %q", tab.CSV())
	}
}

func TestGeoMean(t *testing.T) {
	if g := GeoMean(nil); g != 1 {
		t.Errorf("empty geomean = %v", g)
	}
	if g := GeoMean([]float64{2, 8}); math.Abs(g-4) > 1e-12 {
		t.Errorf("geomean(2,8) = %v", g)
	}
	if g := GeoMean([]float64{1, 0}); g != 0 {
		t.Errorf("geomean with zero = %v", g)
	}
}

func TestSortedKeys(t *testing.T) {
	keys := SortedKeys(map[string]float64{"b": 1, "a": 2, "c": 3})
	if keys[0] != "a" || keys[2] != "c" {
		t.Fatalf("keys = %v", keys)
	}
}
