// Package report renders experiment results as aligned text tables and
// simple ASCII series, the form the benchmark harness prints every figure
// and table of the paper in.
package report

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Table is a titled grid with a header row.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// AddRow appends formatted cells.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range t.Rows {
		line(r)
	}
	return b.String()
}

// F formats a float compactly.
func F(v float64) string {
	switch {
	case v == 0:
		return "0"
	case math.Abs(v) >= 1000:
		return fmt.Sprintf("%.0f", v)
	case math.Abs(v) >= 10:
		return fmt.Sprintf("%.2f", v)
	default:
		return fmt.Sprintf("%.4f", v)
	}
}

// Series is one figure: X values against one Y value per named variant.
type Series struct {
	Name   string
	XLabel string
	YLabel string
	// Variants in display order.
	Variants []string
	X        []float64
	// Y[variant][i] pairs with X[i].
	Y map[string][]float64
}

// NewSeries allocates a series for the given variants.
func NewSeries(name, xlabel, ylabel string, variants []string) *Series {
	y := make(map[string][]float64, len(variants))
	return &Series{Name: name, XLabel: xlabel, YLabel: ylabel, Variants: variants, Y: y}
}

// AddPoint appends one X with each variant's value.
func (s *Series) AddPoint(x float64, values map[string]float64) {
	s.X = append(s.X, x)
	for _, v := range s.Variants {
		s.Y[v] = append(s.Y[v], values[v])
	}
}

// Table converts the series to a printable table.
func (s *Series) Table() *Table {
	t := &Table{Title: fmt.Sprintf("%s — %s vs %s", s.Name, s.YLabel, s.XLabel)}
	t.Header = append([]string{s.XLabel}, s.Variants...)
	for i, x := range s.X {
		row := []string{F(x)}
		for _, v := range s.Variants {
			row = append(row, F(s.Y[v][i]))
		}
		t.AddRow(row...)
	}
	return t
}

// String renders the series as its table.
func (s *Series) String() string { return s.Table().String() }

// CSV renders the series as comma-separated values with a header row,
// ready for external plotting.
func (s *Series) CSV() string {
	var b strings.Builder
	b.WriteString(csvEscape(s.XLabel))
	for _, v := range s.Variants {
		b.WriteByte(',')
		b.WriteString(csvEscape(v))
	}
	b.WriteByte('\n')
	for i, x := range s.X {
		fmt.Fprintf(&b, "%g", x)
		for _, v := range s.Variants {
			fmt.Fprintf(&b, ",%g", s.Y[v][i])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// CSV renders the table as comma-separated values.
func (t *Table) CSV() string {
	var b strings.Builder
	for i, h := range t.Header {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(csvEscape(h))
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		for i, c := range row {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(csvEscape(c))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func csvEscape(s string) string {
	if strings.ContainsAny(s, ",\"\n") {
		return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
	}
	return s
}

// GeoMean returns the geometric mean of vs (1.0 for empty).
func GeoMean(vs []float64) float64 {
	if len(vs) == 0 {
		return 1
	}
	sum := 0.0
	for _, v := range vs {
		if v <= 0 {
			return 0
		}
		sum += math.Log(v)
	}
	return math.Exp(sum / float64(len(vs)))
}

// SortedKeys returns map keys sorted (stable printing).
func SortedKeys(m map[string]float64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
