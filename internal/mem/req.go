package mem

import "fmt"

// ReqKind enumerates the memory operation classes that travel through the
// memory subsystem. PIM operations are "a new class of memory operations
// alongside standard memory operations" (paper §I).
type ReqKind uint8

const (
	// ReqLoad is a read of one cache line (carrying word offsets for the
	// consuming core).
	ReqLoad ReqKind = iota
	// ReqStore is a write of up to one cache line.
	ReqStore
	// ReqWriteback carries a dirty line from a cache to memory.
	ReqWriteback
	// ReqFlush requests writeback+invalidate of a single line (software
	// flush instruction, used by the SW-Flush baseline).
	ReqFlush
	// ReqPIMOp is a bulk-bitwise PIM operation addressed to a scope.
	ReqPIMOp
	// ReqScopeFence is the scope-relaxed model's per-scope fence: it scans
	// and flushes its scope at every cache level on the way to the LLC
	// (paper §V-E).
	ReqScopeFence
)

func (k ReqKind) String() string {
	switch k {
	case ReqLoad:
		return "load"
	case ReqStore:
		return "store"
	case ReqWriteback:
		return "writeback"
	case ReqFlush:
		return "flush"
	case ReqPIMOp:
		return "pimop"
	case ReqScopeFence:
		return "scopefence"
	default:
		return fmt.Sprintf("reqkind(%d)", uint8(k))
	}
}

// PIMCommand is the payload of a ReqPIMOp: which program to run on which
// scope. The host hardware only understands the scope (the "scope
// abstraction", paper §III); Program is opaque to it and interpreted by the
// PIM module.
type PIMCommand struct {
	Scope   ScopeID
	Program *PIMProgram
}

// PIMProgram describes one bulk-bitwise PIM operation: a sequence of
// row-parallel micro-operations executed inside the scope's crossbar
// arrays. MicroOps drives the latency model; Apply, when non-nil, performs
// the functional update on backing memory (functional mode).
type PIMProgram struct {
	// Name labels the op for traces and stats (e.g. "cmp_ge:key").
	Name string
	// MicroOps is the number of basic array operations the op expands to;
	// execution latency = MicroOps * Config.PIMCyclesPerMicroOp.
	MicroOps int
	// Apply performs the functional memory update; writer is the
	// happens-before event ID recorded on every line the op modifies. It
	// may be nil in timing-only runs.
	Apply func(m *Backing, writer uint64)
}

// Request is one memory-subsystem transaction. Requests are created by
// cores (or by caches, for writebacks) and flow core -> L1 -> LLC -> memory
// controller; OnDone is invoked when the component that completes the
// request has finished (data returned, write ordered, PIM op accepted by
// the MC...).
type Request struct {
	ID    uint64
	Kind  ReqKind
	Line  LineAddr
	Scope ScopeID // NoScope for non-PIM addresses
	Core  int     // issuing core, for ACK routing and stats

	// PIM carries the command for ReqPIMOp / ReqScopeFence.
	PIM *PIMCommand

	// Data carries the line contents: store data on the way down,
	// load fill on the way up, writeback payload. For partial-line stores
	// (uncacheable word writes) Off/Size select the written bytes.
	Data []byte
	// Off and Size describe the accessed bytes within the line (loads and
	// partial stores). Size 0 means the full line.
	Off, Size int

	// Excl marks a load miss that needs write permission (GetM).
	Excl bool

	// Uncacheable requests bypass all caches (Fig. 3 baseline).
	Uncacheable bool

	// PIMEnabled marks requests whose page belongs to a PIM-enabled scope;
	// caches use it to maintain the SBV (paper §IV-B).
	PIMEnabled bool

	// OnDone, Ctx and Arg form the closure-free completion scheme: the
	// completing component calls Complete, which invokes OnDone(r, Ctx)
	// exactly once. There is no double-completion guard — every path that
	// completes a request does so on exactly one branch, and under pooling
	// a second completion would fire on a recycled request, which the
	// pool's double-Put panic surfaces immediately in tests. Ctx is the
	// issuer's per-request state (e.g. a *Core or burst tracker); Arg is a
	// small scalar rider (token, flag word) so issuers don't allocate a
	// context just to carry an integer.
	//
	// Pool lifecycle: a request obtained from a RequestPool is owned by
	// whichever component currently holds it; ownership transfers with the
	// request. The component that invokes the completion path releases the
	// request back to the pool — either directly (Put after a nil-OnDone
	// writeback finishes) or by convention inside the OnDone callback chain
	// (the issuer's completion code releases it once no stage needs it).
	// After release the pointer must not be touched; Data is returned to
	// the line pool iff DataPooled is set.
	OnDone func(r *Request, ctx any)
	Ctx    any
	Arg    uint64

	// DataPooled marks Data as owned by the system's line pool: releasing
	// the request (or explicitly its data) returns the buffer for reuse.
	DataPooled bool

	// pooled tracks whether the request currently lives in a RequestPool
	// free list, to panic on double-Put instead of corrupting the pool.
	// fromPool marks requests born from a pool's arena: Put is a no-op on
	// foreign requests (tests and one-shot paths build Requests directly),
	// so release points can run unconditionally.
	pooled, fromPool bool

	// Writer is the happens-before event id of the store/PIM op that
	// produced the observed data (loads only, functional mode).
	Writer uint64
}

// Complete invokes the request's completion callback, if any. Calling it a
// second time on the same in-flight request is a protocol violation (see
// OnDone).
func (r *Request) Complete() {
	if r.OnDone != nil {
		r.OnDone(r, r.Ctx)
	}
}

func (r *Request) String() string {
	return fmt.Sprintf("req{%d %s line=%#x scope=%d core=%d}", r.ID, r.Kind, uint64(r.Line), r.Scope, r.Core)
}
