package mem

import "testing"

func TestRequestPoolReuse(t *testing.T) {
	p := NewRequestPool()
	r := p.Get()
	r.Kind = ReqStore
	r.Line = 0x1234
	r.OnDone = func(*Request, any) {}
	r.Ctx = 7
	p.Put(r)
	if got := p.Get(); got != r {
		t.Fatalf("pool did not recycle the released request (got %p, want %p)", got, r)
	} else if got.Kind != ReqLoad || got.Line != 0 || got.OnDone != nil || got.Ctx != nil {
		t.Fatalf("recycled request not zeroed: %+v", got)
	}
	if p.Gets != 2 || p.Puts != 1 {
		t.Fatalf("Gets/Puts = %d/%d, want 2/1", p.Gets, p.Puts)
	}
}

func TestRequestPoolDoublePutPanics(t *testing.T) {
	p := NewRequestPool()
	r := p.Get()
	p.Put(r)
	defer func() {
		if recover() == nil {
			t.Fatal("double Put did not panic")
		}
	}()
	p.Put(r)
}

func TestRequestPoolReleasesPooledData(t *testing.T) {
	p := NewRequestPool()
	r := p.Get()
	r.Data = p.GetLine()
	r.DataPooled = true
	before := p.FreeLines()
	p.Put(r)
	if got := p.FreeLines(); got != before+1 {
		t.Fatalf("FreeLines = %d after Put, want %d (pooled Data not released)", got, before+1)
	}
}

func TestLinePoolZeroesAndReuses(t *testing.T) {
	p := NewRequestPool()
	b := p.GetLine()
	if len(b) != LineSize {
		t.Fatalf("GetLine len = %d, want %d", len(b), LineSize)
	}
	for i := range b {
		b[i] = 0xAB
	}
	p.PutLine(b)
	c := p.GetLine()
	if &c[0] != &b[0] {
		t.Fatal("line pool did not recycle the released buffer")
	}
	for i, v := range c {
		if v != 0 {
			t.Fatalf("recycled line not zeroed at %d: %#x", i, v)
		}
	}
	src := []byte{1, 2, 3}
	cl := p.CloneLine(src)
	if cl[0] != 1 || cl[1] != 2 || cl[2] != 3 || cl[3] != 0 {
		t.Fatalf("CloneLine = %v", cl[:4])
	}
}

func TestDisabledPoolAllocates(t *testing.T) {
	p := &RequestPool{Disabled: true}
	a, b := p.Get(), p.Get()
	if a == b {
		t.Fatal("disabled pool returned the same request twice")
	}
	p.Put(a) // no-op; a second Put must not panic when disabled
	p.Put(a)
}

// TestRequestPoolAllocationFree pins the tentpole property at the pool
// layer: a warmed Get/Put cycle (request + line buffer) performs zero heap
// allocations.
func TestRequestPoolAllocationFree(t *testing.T) {
	p := NewRequestPool()
	warm := make([]*Request, poolBlock/2)
	for i := range warm {
		warm[i] = p.Get()
		warm[i].Data = p.GetLine()
		warm[i].DataPooled = true
	}
	for _, r := range warm {
		p.Put(r)
	}
	if avg := testing.AllocsPerRun(1000, func() {
		r := p.Get()
		r.Data = p.GetLine()
		r.DataPooled = true
		r.Kind = ReqLoad
		p.Put(r)
	}); avg != 0 {
		t.Fatalf("warm Get/Put allocates %.1f objects per cycle, want 0", avg)
	}
}
