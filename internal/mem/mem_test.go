package mem

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestLineOf(t *testing.T) {
	cases := []struct {
		a    Addr
		want LineAddr
	}{
		{0, 0}, {1, 0}, {63, 0}, {64, 64}, {65, 64}, {1000, 960},
	}
	for _, c := range cases {
		if got := LineOf(c.a); got != c.want {
			t.Errorf("LineOf(%d) = %d, want %d", c.a, got, c.want)
		}
	}
	if LineAddr(128).Index() != 2 {
		t.Error("Index of line 128 should be 2")
	}
}

func TestScopeMap(t *testing.T) {
	m := NewScopeMap(DefaultPIMBase, DefaultScopeSize, 8)
	if m.ScopeOf(0) != NoScope {
		t.Error("low address should be NoScope")
	}
	if m.ScopeOf(DefaultPIMBase-1) != NoScope {
		t.Error("address below base should be NoScope")
	}
	if got := m.ScopeOf(DefaultPIMBase); got != 0 {
		t.Errorf("base address scope = %d, want 0", got)
	}
	if got := m.ScopeOf(DefaultPIMBase + DefaultScopeSize - 1); got != 0 {
		t.Errorf("end of scope 0 = %d, want 0", got)
	}
	if got := m.ScopeOf(DefaultPIMBase + DefaultScopeSize); got != 1 {
		t.Errorf("start of scope 1 = %d, want 1", got)
	}
	if got := m.ScopeOf(DefaultPIMBase + 8*DefaultScopeSize); got != NoScope {
		t.Errorf("past last scope = %d, want NoScope", got)
	}
	if m.ScopeBase(3) != DefaultPIMBase+3*DefaultScopeSize {
		t.Error("ScopeBase(3) wrong")
	}
	if m.End() != DefaultPIMBase+8*DefaultScopeSize {
		t.Error("End wrong")
	}
}

func TestScopeMapRoundTripProperty(t *testing.T) {
	m := NewScopeMap(DefaultPIMBase, DefaultScopeSize, 1024)
	prop := func(s uint16, off uint32) bool {
		scope := ScopeID(uint64(s) % 1024)
		a := m.ScopeBase(scope) + Addr(uint64(off)%DefaultScopeSize)
		return m.ScopeOf(a) == scope
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestScopeMapValidation(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		fn()
	}
	mustPanic("non-pow2 size", func() { NewScopeMap(0, 3<<20, 4) })
	mustPanic("unaligned base", func() { NewScopeMap(Addr(123), DefaultScopeSize, 4) })
}

func TestBackingReadWrite(t *testing.T) {
	b := NewBacking()
	got := make([]byte, 16)
	b.Read(100, got)
	for _, x := range got {
		if x != 0 {
			t.Fatal("unallocated memory should read zero")
		}
	}
	data := []byte("hello, bulkpim!!")
	b.Write(100, data)
	b.Read(100, got)
	if !bytes.Equal(got, data) {
		t.Fatalf("got %q, want %q", got, data)
	}
}

func TestBackingCrossPage(t *testing.T) {
	b := NewBacking()
	a := Addr(backPageSize - 5)
	data := []byte("0123456789")
	b.Write(a, data)
	got := make([]byte, len(data))
	b.Read(a, got)
	if !bytes.Equal(got, data) {
		t.Fatalf("cross-page: got %q want %q", got, data)
	}
	if b.PagesAllocated() != 2 {
		t.Fatalf("pages = %d, want 2", b.PagesAllocated())
	}
}

func TestBackingWords(t *testing.T) {
	b := NewBacking()
	b.WriteWord(64, 0xdeadbeefcafef00d)
	if got := b.ReadWord(64); got != 0xdeadbeefcafef00d {
		t.Fatalf("word = %#x", got)
	}
	b.SetByte(200, 0xab)
	if b.ByteAt(200) != 0xab {
		t.Fatal("byte round trip failed")
	}
}

func TestBackingLine(t *testing.T) {
	b := NewBacking()
	line := make([]byte, LineSize)
	for i := range line {
		line[i] = byte(i)
	}
	b.WriteLine(128, line)
	got := make([]byte, LineSize)
	b.ReadLine(128, got)
	if !bytes.Equal(got, line) {
		t.Fatal("line round trip failed")
	}
}

func TestBackingWriterTracking(t *testing.T) {
	b := NewBacking()
	b.SetWriter(64, 7)
	if b.WriterOf(64) != 0 {
		t.Fatal("tracking disabled should be no-op")
	}
	b.TrackWriters = true
	b.SetWriter(64, 7)
	if b.WriterOf(64) != 7 {
		t.Fatal("writer not recorded")
	}
	b.SetWriterRange(60, 10, 9) // spans lines 0 and 64
	if b.WriterOf(0) != 9 || b.WriterOf(64) != 9 {
		t.Fatal("writer range not recorded")
	}
}

// The writers map is lazy: timing-only runs never allocate it, and either
// SetWriter entry point materializes it on first tracked write.
func TestBackingWritersMapLazy(t *testing.T) {
	b := NewBacking()
	b.SetWriter(64, 7)
	b.SetWriterRange(0, 128, 8)
	if b.writers != nil {
		t.Fatal("untracked writes allocated the writers map")
	}
	b.TrackWriters = true
	b.SetWriterRange(0, 64, 3)
	if b.WriterOf(0) != 3 {
		t.Fatal("lazy map lost a tracked range write")
	}
	c := NewBacking()
	c.TrackWriters = true
	c.SetWriter(64, 5)
	if c.WriterOf(64) != 5 {
		t.Fatal("lazy map lost a tracked write")
	}
}

// Property: write-then-read round trips arbitrary buffers at arbitrary
// addresses.
func TestBackingRoundTripProperty(t *testing.T) {
	prop := func(addr uint32, data []byte) bool {
		if len(data) > 10000 {
			data = data[:10000]
		}
		b := NewBacking()
		b.Write(Addr(addr), data)
		got := make([]byte, len(data))
		b.Read(Addr(addr), got)
		return bytes.Equal(got, data)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
