package mem

import "fmt"

// poolBlock is how many Requests (and line buffers) a pool materializes per
// arena growth. Like sim's event arena, allocating in blocks keeps the
// steady state allocation-free and amortizes growth to one allocation per
// block instead of one per request.
const poolBlock = 128

// RequestPool recycles Requests and 64-byte line buffers so the steady-state
// transaction path performs no heap allocations. It is arena-backed: Get
// pops a free-list entry, refilling from a freshly allocated block only when
// the free list is empty, so a warmed pool never allocates.
//
// Ownership follows the request (see Request.OnDone): the component that
// invokes a request's completion releases it with Put. Put zeroes the
// request, returns Data to the line pool when DataPooled is set, and panics
// on double-Put — a released pointer must never be touched again.
//
// The pool is not safe for concurrent use; like the sim kernel it belongs
// to exactly one single-threaded simulated system.
type RequestPool struct {
	// Disabled turns Get/GetLine into plain allocations and Put/PutLine
	// into no-ops. The unpooled transaction-path benchmark baseline runs
	// this way; it also gives a one-line escape hatch when hunting a
	// suspected lifecycle bug.
	Disabled bool

	free  []*Request
	lines [][]byte

	// Gets and Puts count pool traffic for stats and leak diagnosis.
	Gets, Puts uint64
}

// NewRequestPool returns an empty pool; storage materializes on demand.
func NewRequestPool() *RequestPool { return &RequestPool{} }

// Get returns a zeroed Request owned by the caller.
func (p *RequestPool) Get() *Request {
	if p.Disabled {
		return &Request{}
	}
	p.Gets++
	n := len(p.free)
	if n == 0 {
		block := make([]Request, poolBlock)
		for i := range block {
			block[i].pooled = true
			block[i].fromPool = true
			p.free = append(p.free, &block[i])
		}
		n = poolBlock
	}
	r := p.free[n-1]
	p.free = p.free[:n-1]
	r.pooled = false
	return r
}

// Put releases r back to the pool. Foreign requests — ones built with a
// plain &Request{} rather than Get — are left untouched, so release points
// can run unconditionally. For pool-born requests the Data buffer is
// returned to the line pool iff DataPooled is set, and every other field is
// cleared so the next Get starts from a zero request and no callback or
// context outlives its transaction.
func (p *RequestPool) Put(r *Request) {
	if p.Disabled || !r.fromPool {
		return
	}
	if r.pooled {
		panic(fmt.Sprintf("mem: double Put of pooled request %s", r))
	}
	if r.DataPooled {
		p.PutLine(r.Data)
	}
	*r = Request{pooled: true, fromPool: true}
	p.Puts++
	p.free = append(p.free, r)
}

// GetLine returns a zeroed LineSize buffer owned by the caller.
func (p *RequestPool) GetLine() []byte {
	if p.Disabled {
		return make([]byte, LineSize)
	}
	n := len(p.lines)
	if n == 0 {
		block := make([]byte, poolBlock*LineSize)
		for i := 0; i < poolBlock; i++ {
			p.lines = append(p.lines, block[i*LineSize:(i+1)*LineSize:(i+1)*LineSize])
		}
		n = poolBlock
	}
	b := p.lines[n-1]
	p.lines = p.lines[:n-1]
	clear(b)
	return b
}

// PutLine releases a buffer obtained from GetLine. Putting nil or a
// foreign-sized slice is a no-op/invalid respectively; callers only ever
// hand back what GetLine produced.
func (p *RequestPool) PutLine(b []byte) {
	if p.Disabled || b == nil {
		return
	}
	p.lines = append(p.lines, b[:LineSize])
}

// CloneLine returns a pooled copy of src (the pooling replacement for the
// caches' old cloneData/make-per-fill).
func (p *RequestPool) CloneLine(src []byte) []byte {
	b := p.GetLine()
	copy(b, src)
	return b
}

// FreeRequests reports the current free-list depth (tests use it to pin
// reuse).
func (p *RequestPool) FreeRequests() int { return len(p.free) }

// FreeLines reports the line free-list depth.
func (p *RequestPool) FreeLines() int { return len(p.lines) }
