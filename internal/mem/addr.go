// Package mem defines the memory model shared by every component of the
// bulkpim system: physical addresses, cache-line geometry, PIM scopes
// (fixed, non-overlapping address ranges that bound a PIM operation, paper
// §III), memory request types, and a sparse backing store that holds the
// functional contents of main memory.
package mem

// Line geometry. The paper's system uses 64-byte blocks at every level
// (Table II).
const (
	LineSize  = 64
	LineShift = 6
)

// Addr is a physical byte address.
type Addr uint64

// LineAddr is an address aligned down to its cache line.
type LineAddr uint64

// LineOf returns the cache line containing a.
func LineOf(a Addr) LineAddr { return LineAddr(a &^ (LineSize - 1)) }

// LineIndex returns the line number (address / 64).
func (l LineAddr) Index() uint64 { return uint64(l) >> LineShift }

// Addr returns the first byte address of the line.
func (l LineAddr) Addr() Addr { return Addr(l) }

// WordSize is the granularity of scalar CPU loads/stores (8 bytes).
const WordSize = 8
