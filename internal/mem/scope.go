package mem

// ScopeID identifies one PIM scope. Scopes partition the PIM memory region
// into fixed, equal-sized, non-overlapping address ranges (paper §III: "the
// PIM memory is partitioned into a fixed set of scopes, each with a fixed
// address range"). NoScope marks addresses outside the PIM region.
type ScopeID int32

// NoScope is returned for addresses that do not belong to any PIM scope.
const NoScope ScopeID = -1

// ScopeMap translates addresses to scopes. The PIM region is a single
// contiguous range of ScopeCount scopes of ScopeSize bytes starting at
// Base; this mirrors PIMDB's 2MB-huge-page scopes identified by address
// ([25], paper §III).
type ScopeMap struct {
	Base       Addr   // first byte of the PIM region; multiple of ScopeSize
	ScopeSize  uint64 // bytes per scope (power of two)
	ScopeCount int    // number of scopes
	shift      uint
}

// DefaultScopeSize is the paper's scope granularity: a 2MB huge page.
const DefaultScopeSize = 2 << 20

// DefaultPIMBase places the PIM region at 4GB, leaving the low addresses
// for regular (non-PIM) memory.
const DefaultPIMBase Addr = 4 << 30

// NewScopeMap builds a scope map. scopeSize must be a power of two and
// base must be scope-aligned.
func NewScopeMap(base Addr, scopeSize uint64, count int) *ScopeMap {
	if scopeSize == 0 || scopeSize&(scopeSize-1) != 0 {
		panic("mem: scope size must be a power of two")
	}
	if uint64(base)%scopeSize != 0 {
		panic("mem: PIM base must be scope aligned")
	}
	shift := uint(0)
	for s := scopeSize; s > 1; s >>= 1 {
		shift++
	}
	return &ScopeMap{Base: base, ScopeSize: scopeSize, ScopeCount: count, shift: shift}
}

// ScopeOf returns the scope containing a, or NoScope.
func (m *ScopeMap) ScopeOf(a Addr) ScopeID {
	if m == nil || a < m.Base {
		return NoScope
	}
	idx := uint64(a-m.Base) >> m.shift
	if idx >= uint64(m.ScopeCount) {
		return NoScope
	}
	return ScopeID(idx)
}

// ScopeBase returns the first address of scope s.
func (m *ScopeMap) ScopeBase(s ScopeID) Addr {
	return m.Base + Addr(uint64(s)<<m.shift)
}

// InPIM reports whether a falls inside the PIM region.
func (m *ScopeMap) InPIM(a Addr) bool { return m.ScopeOf(a) != NoScope }

// End returns the first address past the PIM region.
func (m *ScopeMap) End() Addr {
	return m.Base + Addr(uint64(m.ScopeCount)*m.ScopeSize)
}
