package mem

// Backing is the functional content of main memory. It is sparse: 4KB pages
// are allocated on first write, and reads of untouched memory return zeros.
// This lets the simulator address paper-scale data sets (hundreds of 2MB
// scopes) while only materializing the bytes a run actually touches.
//
// Backing also tracks, per line, the happens-before event ID of the last
// writer (store drain, writeback, or PIM op). Caches propagate the writer ID
// alongside line data so the consistency checker can build reads-from edges
// (paper Fig. 1's cycle is detected this way).
type Backing struct {
	pages   map[uint64]*backPage
	writers map[LineAddr]uint64
	// TrackWriters enables reads-from bookkeeping (functional mode).
	TrackWriters bool
}

const backPageSize = 4096

type backPage [backPageSize]byte

// NewBacking returns an empty sparse memory. The writers map is allocated
// lazily on the first tracked write: timing-only runs (TrackWriters false)
// never touch it.
func NewBacking() *Backing {
	return &Backing{pages: make(map[uint64]*backPage)}
}

func (b *Backing) page(a Addr, create bool) (*backPage, uint64) {
	idx := uint64(a) / backPageSize
	p := b.pages[idx]
	if p == nil && create {
		p = new(backPage)
		b.pages[idx] = p
	}
	return p, uint64(a) % backPageSize
}

// Read copies n bytes at a into dst (zeros for unallocated memory).
// Reads may cross page boundaries.
func (b *Backing) Read(a Addr, dst []byte) {
	for len(dst) > 0 {
		p, off := b.page(a, false)
		n := backPageSize - int(off)
		if n > len(dst) {
			n = len(dst)
		}
		if p == nil {
			for i := 0; i < n; i++ {
				dst[i] = 0
			}
		} else {
			copy(dst[:n], p[off:int(off)+n])
		}
		dst = dst[n:]
		a += Addr(n)
	}
}

// Write copies src to memory at a, allocating pages as needed.
func (b *Backing) Write(a Addr, src []byte) {
	for len(src) > 0 {
		p, off := b.page(a, true)
		n := backPageSize - int(off)
		if n > len(src) {
			n = len(src)
		}
		copy(p[off:int(off)+n], src[:n])
		src = src[n:]
		a += Addr(n)
	}
}

// ReadLine copies the 64-byte line l into dst (len(dst) >= LineSize).
func (b *Backing) ReadLine(l LineAddr, dst []byte) { b.Read(l.Addr(), dst[:LineSize]) }

// WriteLine stores the 64-byte line l.
func (b *Backing) WriteLine(l LineAddr, src []byte) { b.Write(l.Addr(), src[:LineSize]) }

// ReadWord returns the 8-byte little-endian word at a (must be word-aligned
// in practice, but any address works).
func (b *Backing) ReadWord(a Addr) uint64 {
	var buf [8]byte
	b.Read(a, buf[:])
	return le64(buf[:])
}

// WriteWord stores a little-endian word at a.
func (b *Backing) WriteWord(a Addr, v uint64) {
	var buf [8]byte
	putLE64(buf[:], v)
	b.Write(a, buf[:])
}

// ByteAt returns the byte at a.
func (b *Backing) ByteAt(a Addr) byte {
	p, off := b.page(a, false)
	if p == nil {
		return 0
	}
	return p[off]
}

// SetByte stores one byte at a.
func (b *Backing) SetByte(a Addr, v byte) {
	p, off := b.page(a, true)
	p[off] = v
}

// SetWriter records ev as the last writer of line l (no-op unless
// TrackWriters).
func (b *Backing) SetWriter(l LineAddr, ev uint64) {
	if b.TrackWriters {
		if b.writers == nil {
			b.writers = make(map[LineAddr]uint64)
		}
		b.writers[l] = ev
	}
}

// SetWriterRange records ev as the writer of every line overlapping
// [a, a+n).
func (b *Backing) SetWriterRange(a Addr, n uint64, ev uint64) {
	if !b.TrackWriters || n == 0 {
		return
	}
	if b.writers == nil {
		b.writers = make(map[LineAddr]uint64)
	}
	first := LineOf(a)
	last := LineOf(a + Addr(n) - 1)
	for l := first; l <= last; l += LineSize {
		b.writers[l] = ev
	}
}

// WriterOf returns the last writer event of line l (0 if unknown).
func (b *Backing) WriterOf(l LineAddr) uint64 { return b.writers[l] }

// PagesAllocated reports how many 4KB pages have been materialized.
func (b *Backing) PagesAllocated() int { return len(b.pages) }

func le64(p []byte) uint64 {
	return uint64(p[0]) | uint64(p[1])<<8 | uint64(p[2])<<16 | uint64(p[3])<<24 |
		uint64(p[4])<<32 | uint64(p[5])<<40 | uint64(p[6])<<48 | uint64(p[7])<<56
}

func putLE64(p []byte, v uint64) {
	p[0] = byte(v)
	p[1] = byte(v >> 8)
	p[2] = byte(v >> 16)
	p[3] = byte(v >> 24)
	p[4] = byte(v >> 32)
	p[5] = byte(v >> 40)
	p[6] = byte(v >> 48)
	p[7] = byte(v >> 56)
}
