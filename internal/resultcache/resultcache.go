// Package resultcache is a persistent, content-addressed store of
// finished simulation results. The paper's evaluation is a grid of
// independent, deterministic points, so a point's outcome is fully
// determined by its identity: the stable job key (which grid point),
// a fingerprint of everything that feeds the simulation (final machine
// Config plus workload parameters), and the cache schema/code version.
// Memoizing finished points makes re-running a sweep — after an
// interrupt, a flag tweak, or across harness invocations — cost only
// the points that actually changed.
//
// Persistence is a JSON-lines file (one entry per line, appended as
// results finish). Loading is corruption-tolerant: a truncated or
// garbled line — the normal residue of an interrupted run — is counted
// and skipped, never fatal. Entries written under a different
// SchemaVersion are invalidated on load. Later lines win, so a re-run
// that overwrites a key simply appends.
package resultcache

import (
	"bufio"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"bulkpim/internal/system"
)

// SchemaVersion keys every entry. Bump it whenever the simulator's
// semantics, the Result schema, or the fingerprint inputs change in a
// way that invalidates previously computed points; old entries are
// then skipped (and counted) at load instead of serving stale results.
const SchemaVersion = "bulkpim-resultcache-v1"

// FileName is the JSON-lines store inside the cache directory.
const FileName = "results.jsonl"

// entry is one persisted result line.
type entry struct {
	Version     string        `json:"v"`
	Key         string        `json:"key"`
	Fingerprint string        `json:"fp"`
	Result      system.Result `json:"result"`
}

// Stats is the cache's accounting. Hits/Misses count Lookup calls;
// Stores counts successful write-backs; Invalidated counts loaded
// entries skipped for a version mismatch; Corrupt counts unparsable
// lines skipped at load; StoreErrors counts failed write-backs
// (unmarshalable results, I/O errors).
type Stats struct {
	Hits        int
	Misses      int
	Stores      int
	Invalidated int
	Corrupt     int
	StoreErrors int
}

// HitRate returns hits / lookups, or 0 with no lookups.
func (s Stats) HitRate() float64 {
	if s.Hits+s.Misses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Hits+s.Misses)
}

func (s Stats) String() string {
	return fmt.Sprintf("%d hits, %d misses (%.1f%% hit rate), %d stored, %d invalidated, %d corrupt lines, %d store errors",
		s.Hits, s.Misses, 100*s.HitRate(), s.Stores, s.Invalidated, s.Corrupt, s.StoreErrors)
}

// Cache is an on-disk result store, safe for concurrent use by every
// worker of a shared pool.
type Cache struct {
	mu      sync.Mutex
	path    string
	file    *os.File
	entries map[string]system.Result // composite key -> result
	byFP    map[string]system.Result // fingerprint -> result
	stats   Stats
}

// composite joins the lookup identity. Fingerprints are fixed-width
// hex, so the separator cannot collide.
func composite(key, fingerprint string) string { return key + "\x00" + fingerprint }

// Open loads (or creates) the cache under dir. Unparsable lines and
// entries from other schema versions are counted and skipped.
func Open(dir string) (*Cache, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("resultcache: %w", err)
	}
	c := &Cache{
		path:    filepath.Join(dir, FileName),
		entries: make(map[string]system.Result),
		byFP:    make(map[string]system.Result),
	}
	if err := c.load(); err != nil {
		return nil, err
	}
	f, err := os.OpenFile(c.path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("resultcache: %w", err)
	}
	c.file = f
	return c, nil
}

// load replays the JSON-lines file into the in-memory index. Later
// lines override earlier ones, so interrupted-then-resumed runs
// converge on the freshest result per point.
func (c *Cache) load() error {
	f, err := os.Open(c.path)
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("resultcache: %w", err)
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 8*1024*1024)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var e entry
		if err := json.Unmarshal(line, &e); err != nil || e.Key == "" {
			c.stats.Corrupt++
			continue
		}
		if e.Version != SchemaVersion {
			c.stats.Invalidated++
			continue
		}
		c.entries[composite(e.Key, e.Fingerprint)] = e.Result
		c.byFP[e.Fingerprint] = e.Result
	}
	if err := sc.Err(); err != nil {
		// An unreadable tail (e.g. an over-long corrupt line) degrades
		// to a partial cache, it does not abort the run.
		c.stats.Corrupt++
	}
	return nil
}

// Len returns the number of loaded + stored entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Lookup consults the cache; a hit returns the memoized result.
func (c *Cache) Lookup(key, fingerprint string) (system.Result, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	r, ok := c.entries[composite(key, fingerprint)]
	if ok {
		c.stats.Hits++
	} else {
		c.stats.Misses++
	}
	return r, ok
}

// LookupFingerprint consults the cache by fingerprint alone — the
// content address, without a grid-point key. Results are fully
// determined by their fingerprint (that is the cache's premise), so
// any key's entry answers; the serving API uses this for direct
// GET /v1/results/{fingerprint} reads.
func (c *Cache) LookupFingerprint(fingerprint string) (system.Result, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	r, ok := c.byFP[fingerprint]
	if ok {
		c.stats.Hits++
	} else {
		c.stats.Misses++
	}
	return r, ok
}

// Store writes a finished result back: into the index and appended to
// the JSON-lines file. Failures (unmarshalable results, I/O errors)
// are counted in Stats and returned, but callers may ignore them — a
// missed write-back only costs a future recompute.
func (c *Cache) Store(key, fingerprint string, r system.Result) error {
	line, err := json.Marshal(entry{
		Version: SchemaVersion, Key: key, Fingerprint: fingerprint, Result: r,
	})
	c.mu.Lock()
	defer c.mu.Unlock()
	if err != nil {
		c.stats.StoreErrors++
		return fmt.Errorf("resultcache: marshal %s: %w", key, err)
	}
	if c.file != nil {
		if _, err := c.file.Write(append(line, '\n')); err != nil {
			c.stats.StoreErrors++
			return fmt.Errorf("resultcache: write %s: %w", key, err)
		}
	}
	c.entries[composite(key, fingerprint)] = r
	c.byFP[fingerprint] = r
	c.stats.Stores++
	return nil
}

// Stats returns a snapshot of the accounting.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// Path returns the backing file's path.
func (c *Cache) Path() string { return c.path }

// Close flushes and closes the backing file. The cache stays readable
// (in-memory) but further Stores only update the index.
func (c *Cache) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.file == nil {
		return nil
	}
	err := c.file.Close()
	c.file = nil
	return err
}

// Fingerprint hashes an arbitrary set of values — a final machine
// Config, workload parameters — into a stable hex digest via their
// canonical JSON forms (Go's encoder sorts map keys and emits
// shortest-roundtrip floats, so equal values always hash equally). A
// value that cannot be marshaled contributes its error text, keeping
// the digest deterministic rather than failing the run.
func Fingerprint(vs ...any) string {
	h := sha256.New()
	for _, v := range vs {
		b, err := json.Marshal(v)
		if err != nil {
			b = []byte("unmarshalable:" + err.Error())
		}
		h.Write(b)
		h.Write([]byte{0})
	}
	return hex.EncodeToString(h.Sum(nil))[:32]
}
