package resultcache

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
)

// The distributed pipeline ships per-shard cache files back to a
// coordinator, which merges them into one store and then runs the
// report pass entirely from cache hits. Unlike Open's load — which is
// deliberately tolerant, because a truncated line is the normal
// residue of an interrupted run — merging is a deliberate act on
// supposedly-complete files, so Validate and Merge are strict: a
// corrupt line, a foreign schema version, or two shards disagreeing on
// the result of the same (key, fingerprint) identity is an error that
// names the file and line, never a silent drop.

// Strict-read failure modes, matchable with errors.Is.
var (
	// ErrCorrupt marks an unparsable or incomplete entry line.
	ErrCorrupt = errors.New("corrupt entry")
	// ErrSchemaVersion marks an entry written under a different
	// SchemaVersion than this binary's.
	ErrSchemaVersion = errors.New("schema version mismatch")
	// ErrResultConflict marks two entries that share a (key,
	// fingerprint) identity but carry different results — impossible
	// for shards of one deterministic suite, so it signals mismatched
	// runs or corrupted data.
	ErrResultConflict = errors.New("conflicting results for one (key, fingerprint)")
)

// FileStats summarizes one validated cache file.
type FileStats struct {
	Path    string
	Entries int // non-empty entry lines
	Unique  int // distinct (key, fingerprint) identities
}

func (s FileStats) String() string {
	return fmt.Sprintf("%s: %d entries, %d unique points", s.Path, s.Entries, s.Unique)
}

// MergeStats summarizes a merge.
type MergeStats struct {
	Files      int
	Entries    int // entry lines read across all sources
	Unique     int // distinct (key, fingerprint) identities written
	Duplicates int // identical re-occurrences dropped (overlapping shards, re-runs)
}

func (s MergeStats) String() string {
	return fmt.Sprintf("%d files, %d entries -> %d unique points (%d duplicates dropped)",
		s.Files, s.Entries, s.Unique, s.Duplicates)
}

// resolve accepts either a cache directory or a direct path to its
// JSON-lines file.
func resolve(path string) string {
	if fi, err := os.Stat(path); err == nil && fi.IsDir() {
		return filepath.Join(path, FileName)
	}
	return path
}

// strictEntry pairs a parsed entry with its re-marshaled result bytes
// (canonical JSON: struct fields in order, map keys sorted), used to
// detect result conflicts across files.
type strictEntry struct {
	entry
	line   int
	result []byte
}

// readStrict parses every line of one cache file, failing loudly —
// with the file and line number — on anything Open's tolerant load
// would skip.
func readStrict(path string) ([]strictEntry, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("resultcache: %w", err)
	}
	defer f.Close()
	var out []strictEntry
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 8*1024*1024)
	for n := 1; sc.Scan(); n++ {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var e entry
		if err := json.Unmarshal(line, &e); err != nil {
			return nil, fmt.Errorf("resultcache: %s:%d: %w: %v", path, n, ErrCorrupt, err)
		}
		if e.Key == "" {
			return nil, fmt.Errorf("resultcache: %s:%d: %w: entry without a key", path, n, ErrCorrupt)
		}
		if e.Version != SchemaVersion {
			return nil, fmt.Errorf("resultcache: %s:%d: %w: file has %q, this binary uses %q",
				path, n, ErrSchemaVersion, e.Version, SchemaVersion)
		}
		res, err := json.Marshal(e.Result)
		if err != nil {
			return nil, fmt.Errorf("resultcache: %s:%d: %w: %v", path, n, ErrCorrupt, err)
		}
		out = append(out, strictEntry{entry: e, line: n, result: res})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("resultcache: %s: %w: %v", path, ErrCorrupt, err)
	}
	return out, nil
}

// Validate strictly checks one cache file (a directory resolves to its
// results.jsonl): every line must parse, carry the current
// SchemaVersion, and agree with its twins on any repeated (key,
// fingerprint) identity. It returns the file's accounting.
func Validate(path string) (FileStats, error) {
	path = resolve(path)
	entries, err := readStrict(path)
	if err != nil {
		return FileStats{Path: path}, err
	}
	seen := map[string][]byte{}
	for _, e := range entries {
		id := composite(e.Key, e.Fingerprint)
		if prev, ok := seen[id]; ok {
			if !bytes.Equal(prev, e.result) {
				return FileStats{Path: path}, fmt.Errorf("resultcache: %s:%d: %w: key %q",
					path, e.line, ErrResultConflict, e.Key)
			}
			continue
		}
		seen[id] = e.result
	}
	return FileStats{Path: path, Entries: len(entries), Unique: len(seen)}, nil
}

// Merge validates every source cache (directories resolve to their
// results.jsonl) and writes their union to dstDir/results.jsonl,
// replacing any existing file there. Entries are written in source
// order with exact duplicates dropped, so the output is deterministic
// for a given source list. Two sources disagreeing on a (key,
// fingerprint) identity's result abort the merge with
// ErrResultConflict — the simulations are deterministic, so shards of
// one suite can never disagree; a conflict means the shards ran
// different code or the data is damaged. All sources are read before
// anything is written, so dstDir may itself be one of the sources.
func Merge(dstDir string, srcs ...string) (MergeStats, error) {
	var stats MergeStats
	if len(srcs) == 0 {
		return stats, fmt.Errorf("resultcache: merge needs at least one source")
	}
	seen := map[string][]byte{}
	var merged []strictEntry
	for _, src := range srcs {
		path := resolve(src)
		entries, err := readStrict(path)
		if err != nil {
			return stats, err
		}
		stats.Files++
		stats.Entries += len(entries)
		for _, e := range entries {
			id := composite(e.Key, e.Fingerprint)
			if prev, ok := seen[id]; ok {
				if !bytes.Equal(prev, e.result) {
					return stats, fmt.Errorf("resultcache: %s:%d: %w: key %q",
						path, e.line, ErrResultConflict, e.Key)
				}
				stats.Duplicates++
				continue
			}
			seen[id] = e.result
			merged = append(merged, e)
		}
	}
	stats.Unique = len(merged)

	if err := os.MkdirAll(dstDir, 0o755); err != nil {
		return stats, fmt.Errorf("resultcache: %w", err)
	}
	dst := filepath.Join(dstDir, FileName)
	tmp, err := os.CreateTemp(dstDir, FileName+".merge-*")
	if err != nil {
		return stats, fmt.Errorf("resultcache: %w", err)
	}
	defer os.Remove(tmp.Name())
	w := bufio.NewWriter(tmp)
	for _, e := range merged {
		line, err := json.Marshal(e.entry)
		if err != nil {
			tmp.Close()
			return stats, fmt.Errorf("resultcache: marshal %s: %w", e.Key, err)
		}
		w.Write(line)
		w.WriteByte('\n')
	}
	if err := w.Flush(); err != nil {
		tmp.Close()
		return stats, fmt.Errorf("resultcache: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return stats, fmt.Errorf("resultcache: %w", err)
	}
	if err := os.Rename(tmp.Name(), dst); err != nil {
		return stats, fmt.Errorf("resultcache: %w", err)
	}
	return stats, nil
}
