package resultcache

// Tests for the strict merge/validate half of the cache: shards of a
// distributed run ship results.jsonl files back to a coordinator,
// whose merge must concatenate them deterministically, drop exact
// duplicates, and reject — loudly, with file and line — everything the
// tolerant load path would silently skip.

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"bulkpim/internal/sim"
	"bulkpim/internal/system"
)

// fillCache stores the given key -> cycles points under dir.
func fillCache(t *testing.T, dir string, points map[string]int) {
	t.Helper()
	c, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for key, cycles := range points {
		r := system.Result{Cycles: sim.Tick(cycles), Stats: map[string]float64{"s": float64(cycles)}}
		if err := c.Store(key, "fp-"+key, r); err != nil {
			t.Fatal(err)
		}
	}
}

func TestMergeUnionAndDedup(t *testing.T) {
	d0, d1, dst := t.TempDir(), t.TempDir(), t.TempDir()
	fillCache(t, d0, map[string]int{"a": 1, "b": 2, "shared": 7})
	fillCache(t, d1, map[string]int{"c": 3, "shared": 7})

	stats, err := Merge(dst, d0, d1)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Files != 2 || stats.Entries != 5 || stats.Unique != 4 || stats.Duplicates != 1 {
		t.Fatalf("merge stats %+v", stats)
	}

	merged, err := Open(dst)
	if err != nil {
		t.Fatal(err)
	}
	defer merged.Close()
	if merged.Len() != 4 {
		t.Fatalf("merged cache has %d entries, want 4", merged.Len())
	}
	for key, cycles := range map[string]int{"a": 1, "b": 2, "c": 3, "shared": 7} {
		r, ok := merged.Lookup(key, "fp-"+key)
		if !ok || int(r.Cycles) != cycles {
			t.Fatalf("merged lookup %s = %+v, %v", key, r, ok)
		}
	}
}

func TestMergeDeterministicOutput(t *testing.T) {
	d0, d1 := t.TempDir(), t.TempDir()
	fillCache(t, d0, map[string]int{"a": 1, "b": 2})
	fillCache(t, d1, map[string]int{"c": 3})

	read := func(dst string) string {
		if _, err := Merge(dst, d0, d1); err != nil {
			t.Fatal(err)
		}
		b, err := os.ReadFile(filepath.Join(dst, FileName))
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}
	if read(t.TempDir()) != read(t.TempDir()) {
		t.Fatal("two merges of the same sources differ")
	}
}

func TestMergeRejectsResultConflict(t *testing.T) {
	d0, d1 := t.TempDir(), t.TempDir()
	fillCache(t, d0, map[string]int{"shared": 7})
	fillCache(t, d1, map[string]int{"shared": 8}) // same (key, fp), different result

	if _, err := Merge(t.TempDir(), d0, d1); !errors.Is(err, ErrResultConflict) {
		t.Fatalf("merge of conflicting caches: err = %v, want ErrResultConflict", err)
	}
}

func TestValidateAndMergeRejectSchemaVersion(t *testing.T) {
	dir := t.TempDir()
	fillCache(t, dir, map[string]int{"a": 1})
	// Append an entry under a foreign schema version — the tolerant
	// load path would just count it invalidated; validate/merge must
	// name it.
	f, err := os.OpenFile(filepath.Join(dir, FileName), os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString(`{"v":"bulkpim-resultcache-v0","key":"old","fp":"x","result":{}}` + "\n")
	f.Close()

	if _, err := Validate(dir); !errors.Is(err, ErrSchemaVersion) {
		t.Fatalf("validate: err = %v, want ErrSchemaVersion", err)
	}
	if _, err := Merge(t.TempDir(), dir); !errors.Is(err, ErrSchemaVersion) {
		t.Fatalf("merge: err = %v, want ErrSchemaVersion", err)
	}
}

func TestValidateRejectsCorruptLine(t *testing.T) {
	dir := t.TempDir()
	fillCache(t, dir, map[string]int{"a": 1})
	f, err := os.OpenFile(filepath.Join(dir, FileName), os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString(`{"v":"truncated`)
	f.Close()

	if _, err := Validate(dir); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("validate: err = %v, want ErrCorrupt", err)
	}
}

func TestValidateOK(t *testing.T) {
	dir := t.TempDir()
	fillCache(t, dir, map[string]int{"a": 1, "b": 2})
	// Both the directory and the file path spellings must resolve.
	for _, path := range []string{dir, filepath.Join(dir, FileName)} {
		stats, err := Validate(path)
		if err != nil {
			t.Fatal(err)
		}
		if stats.Entries != 2 || stats.Unique != 2 {
			t.Fatalf("validate(%s) stats %+v", path, stats)
		}
	}
}

func TestMergeIntoSourceDir(t *testing.T) {
	// The destination may be one of the sources: everything is read
	// before anything is written.
	d0, d1 := t.TempDir(), t.TempDir()
	fillCache(t, d0, map[string]int{"a": 1})
	fillCache(t, d1, map[string]int{"b": 2})
	if _, err := Merge(d0, d0, d1); err != nil {
		t.Fatal(err)
	}
	merged, err := Open(d0)
	if err != nil {
		t.Fatal(err)
	}
	defer merged.Close()
	if merged.Len() != 2 {
		t.Fatalf("in-place merge has %d entries, want 2", merged.Len())
	}
}

func TestMergeNoSources(t *testing.T) {
	if _, err := Merge(t.TempDir()); err == nil {
		t.Fatal("merge with no sources accepted")
	}
}
