package resultcache

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"bulkpim/internal/sim"
	"bulkpim/internal/system"
)

func TestCacheRoundtripAndPersistence(t *testing.T) {
	dir := t.TempDir()
	c, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	r := system.Result{Cycles: 1234, Seconds: 1234 / 3.6e9, DrainCycles: 1300,
		Stats: map[string]float64{"a": 0.1, "b": 2}}
	if _, ok := c.Lookup("k1", "fp1"); ok {
		t.Fatal("unexpected hit on empty cache")
	}
	if err := c.Store("k1", "fp1", r); err != nil {
		t.Fatal(err)
	}
	got, ok := c.Lookup("k1", "fp1")
	if !ok || got.Cycles != r.Cycles || got.Stats["a"] != 0.1 {
		t.Fatalf("lookup = %+v, %v", got, ok)
	}
	if _, ok := c.Lookup("k1", "other-fp"); ok {
		t.Fatal("hit with wrong fingerprint")
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: the entry must survive the process boundary, bit-exact.
	c2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if c2.Len() != 1 {
		t.Fatalf("reloaded %d entries", c2.Len())
	}
	got, ok = c2.Lookup("k1", "fp1")
	if !ok || got.Cycles != r.Cycles || got.Seconds != r.Seconds ||
		got.DrainCycles != r.DrainCycles || got.Stats["b"] != 2 {
		t.Fatalf("reloaded lookup = %+v, %v", got, ok)
	}
	st := c2.Stats()
	if st.Hits != 1 || st.Misses != 0 || st.Corrupt != 0 || st.Invalidated != 0 {
		t.Fatalf("stats %+v", st)
	}
}

// A truncated or garbled line — the residue of an interrupted run —
// must be skipped and counted, never fatal, and must not take valid
// neighbours down with it.
func TestCacheCorruptionTolerated(t *testing.T) {
	dir := t.TempDir()
	c, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := c.Store(fmt.Sprintf("k%d", i), "fp", system.Result{Cycles: sim.Tick(i)}); err != nil {
			t.Fatal(err)
		}
	}
	c.Close()

	// Truncate the file mid-way through the last line and append garbage.
	path := filepath.Join(dir, FileName)
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	truncated := b[:len(b)-10] // cuts into the k2 line
	truncated = append(truncated, []byte("\nnot json at all\n{\"half\": \n")...)
	if err := os.WriteFile(path, truncated, 0o644); err != nil {
		t.Fatal(err)
	}

	c2, err := Open(dir)
	if err != nil {
		t.Fatalf("corrupt cache file must not be fatal: %v", err)
	}
	defer c2.Close()
	if _, ok := c2.Lookup("k0", "fp"); !ok {
		t.Fatal("valid entry lost to a corrupt neighbour")
	}
	if _, ok := c2.Lookup("k1", "fp"); !ok {
		t.Fatal("valid entry lost to a corrupt neighbour")
	}
	if _, ok := c2.Lookup("k2", "fp"); ok {
		t.Fatal("truncated entry must miss")
	}
	if st := c2.Stats(); st.Corrupt == 0 {
		t.Fatalf("corrupt lines not counted: %+v", st)
	}
}

// Entries written under another schema version are invalidated at
// load: counted, skipped, and recomputed rather than served stale.
func TestCacheVersionInvalidation(t *testing.T) {
	dir := t.TempDir()
	line, _ := json.Marshal(entry{
		Version: "bulkpim-resultcache-v0", Key: "old", Fingerprint: "fp",
		Result: system.Result{Cycles: 42},
	})
	if err := os.WriteFile(filepath.Join(dir, FileName), append(line, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	c, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, ok := c.Lookup("old", "fp"); ok {
		t.Fatal("stale-version entry served")
	}
	if st := c.Stats(); st.Invalidated != 1 {
		t.Fatalf("invalidated not counted: %+v", st)
	}
}

// Later lines win: a re-run that overwrites a point's result appends,
// and the reload sees the freshest value.
func TestCacheLastWriteWins(t *testing.T) {
	dir := t.TempDir()
	c, _ := Open(dir)
	c.Store("k", "fp", system.Result{Cycles: 1})
	c.Store("k", "fp", system.Result{Cycles: 2})
	c.Close()
	c2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if r, ok := c2.Lookup("k", "fp"); !ok || r.Cycles != 2 {
		t.Fatalf("lookup = %+v, %v", r, ok)
	}
}

// The cache is shared by every worker of the suite pool; concurrent
// stores and lookups must be safe (exercised under -race in CI).
func TestCacheConcurrentAccess(t *testing.T) {
	c, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				key := fmt.Sprintf("k%d", i%10)
				c.Store(key, "fp", system.Result{Cycles: sim.Tick(i)})
				c.Lookup(key, "fp")
			}
		}(g)
	}
	wg.Wait()
	if c.Len() != 10 {
		t.Fatalf("len = %d", c.Len())
	}
}

func TestStatsString(t *testing.T) {
	s := Stats{Hits: 9, Misses: 1, Stores: 1, Invalidated: 2, Corrupt: 3}
	if s.HitRate() != 0.9 {
		t.Fatalf("hit rate %v", s.HitRate())
	}
	for _, want := range []string{"9 hits", "1 misses", "90.0% hit rate", "2 invalidated", "3 corrupt"} {
		if !strings.Contains(s.String(), want) {
			t.Fatalf("stats string %q missing %q", s.String(), want)
		}
	}
}

// Fingerprint must be stable for equal values and sensitive to any
// config or workload-parameter change.
func TestFingerprint(t *testing.T) {
	cfg := system.Default()
	a := Fingerprint(cfg, "ycsb ops=8 seed=1")
	b := Fingerprint(cfg, "ycsb ops=8 seed=1")
	if a != b {
		t.Fatalf("fingerprint unstable: %s vs %s", a, b)
	}
	cfg2 := cfg
	cfg2.LLCSets = 8192
	if Fingerprint(cfg2, "ycsb ops=8 seed=1") == a {
		t.Fatal("config change did not change fingerprint")
	}
	if Fingerprint(cfg, "ycsb ops=16 seed=1") == a {
		t.Fatal("workload change did not change fingerprint")
	}
	if len(a) != 32 {
		t.Fatalf("fingerprint length %d", len(a))
	}
}

func TestCacheLookupFingerprint(t *testing.T) {
	dir := t.TempDir()
	c, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := c.LookupFingerprint("fpA"); ok {
		t.Fatal("unexpected fingerprint hit on empty cache")
	}
	r := system.Result{Cycles: 77, Stats: map[string]float64{"x": 1}}
	// Two keys aliasing one fingerprint (overlapping grids): either
	// entry answers a by-fingerprint read.
	if err := c.Store("fig7/point", "fpA", r); err != nil {
		t.Fatal(err)
	}
	if err := c.Store("fig9/point", "fpA", r); err != nil {
		t.Fatal(err)
	}
	got, ok := c.LookupFingerprint("fpA")
	if !ok || got.Cycles != 77 || got.Stats["x"] != 1 {
		t.Fatalf("LookupFingerprint = %+v, %v", got, ok)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}

	// The by-fingerprint index must be rebuilt on load.
	c2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if got, ok := c2.LookupFingerprint("fpA"); !ok || got.Cycles != 77 {
		t.Fatalf("reloaded LookupFingerprint = %+v, %v", got, ok)
	}
	if _, ok := c2.LookupFingerprint("fpB"); ok {
		t.Fatal("hit on unknown fingerprint")
	}
}
