package trace

import (
	"strings"
	"testing"

	"bulkpim/internal/sim"
)

func TestParseCategories(t *testing.T) {
	mask, err := ParseCategories("cpu,pim")
	if err != nil {
		t.Fatal(err)
	}
	if mask&(1<<CatCPU) == 0 || mask&(1<<CatPIM) == 0 || mask&(1<<CatCache) != 0 {
		t.Fatalf("mask = %b", mask)
	}
	all, err := ParseCategories("all")
	if err != nil || all&(1<<CatNoC) == 0 || all&(1<<CatMC) == 0 {
		t.Fatal("all mask wrong")
	}
	if _, err := ParseCategories("bogus"); err == nil {
		t.Fatal("expected error")
	}
	empty, err := ParseCategories("  ")
	if err != nil || empty != 0 {
		t.Fatal("empty categories should disable")
	}
}

func TestNilTracerIsFree(t *testing.T) {
	var tr *Tracer
	if tr.Enabled(CatCPU) {
		t.Fatal("nil tracer enabled")
	}
	if tr.Count() != 0 || tr.Recent() != nil {
		t.Fatal("nil tracer has state")
	}
}

func TestEmitAndDump(t *testing.T) {
	k := sim.NewKernel()
	var sb strings.Builder
	mask, _ := ParseCategories("cpu")
	tr := New(k.Now, &sb, mask, 8)
	tr.Emit(CatCPU, "core0", "hello %d", 42)
	tr.Emit(CatCache, "llc", "filtered out")
	if tr.Count() != 1 {
		t.Fatalf("count = %d, want 1 (cache filtered)", tr.Count())
	}
	out := sb.String()
	if !strings.Contains(out, "hello 42") || !strings.Contains(out, "core0") {
		t.Fatalf("writer output %q", out)
	}
	if strings.Contains(out, "filtered") {
		t.Fatal("disabled category leaked")
	}
}

func TestRingWraps(t *testing.T) {
	k := sim.NewKernel()
	mask, _ := ParseCategories("all")
	tr := New(k.Now, nil, mask, 4)
	for i := 0; i < 10; i++ {
		tr.Emit(CatCPU, "c", "msg%d", i)
	}
	recent := tr.Recent()
	if len(recent) != 4 {
		t.Fatalf("ring len = %d, want 4", len(recent))
	}
	if !strings.Contains(recent[0].Msg, "msg6") || !strings.Contains(recent[3].Msg, "msg9") {
		t.Fatalf("ring order wrong: %v", recent)
	}
	var sb strings.Builder
	tr.Dump(&sb)
	if !strings.Contains(sb.String(), "msg9") {
		t.Fatal("dump missing entries")
	}
}

func TestCategoryStrings(t *testing.T) {
	for _, c := range []Category{CatCPU, CatCache, CatMC, CatPIM, CatNoC} {
		if c.String() == "?" {
			t.Fatalf("category %d has no name", c)
		}
	}
}
