// Package trace is the simulator's debug tracing facility (the analogue
// of gem5's debug flags): components emit categorized, timestamped records
// to a Tracer, which filters by category and writes formatted lines.
// Tracing is optional and zero-cost when disabled.
package trace

import (
	"fmt"
	"io"
	"strings"
	"sync"

	"bulkpim/internal/sim"
)

// Category tags one subsystem's events.
type Category uint8

const (
	CatCPU Category = iota
	CatCache
	CatMC
	CatPIM
	CatNoC
	numCategories
)

func (c Category) String() string {
	switch c {
	case CatCPU:
		return "cpu"
	case CatCache:
		return "cache"
	case CatMC:
		return "mc"
	case CatPIM:
		return "pim"
	case CatNoC:
		return "noc"
	default:
		return "?"
	}
}

// ParseCategories converts a comma list ("cpu,pim" or "all") to a mask.
func ParseCategories(s string) (uint8, error) {
	if strings.TrimSpace(s) == "" {
		return 0, nil
	}
	var mask uint8
	for _, part := range strings.Split(s, ",") {
		switch strings.TrimSpace(strings.ToLower(part)) {
		case "all":
			return 1<<numCategories - 1, nil
		case "cpu":
			mask |= 1 << CatCPU
		case "cache":
			mask |= 1 << CatCache
		case "mc":
			mask |= 1 << CatMC
		case "pim":
			mask |= 1 << CatPIM
		case "noc":
			mask |= 1 << CatNoC
		default:
			return 0, fmt.Errorf("trace: unknown category %q", part)
		}
	}
	return mask, nil
}

// Tracer collects records. The zero value is disabled; use New.
type Tracer struct {
	mu   sync.Mutex
	w    io.Writer
	mask uint8
	now  func() sim.Tick

	// Ring keeps the most recent records for post-mortem dumps when no
	// writer is attached.
	ring     []Record
	ringCap  int
	ringNext int
	count    uint64
}

// Record is one trace entry.
type Record struct {
	At   sim.Tick
	Cat  Category
	Unit string
	Msg  string
}

func (r Record) String() string {
	return fmt.Sprintf("%12d %-5s %-8s %s", r.At, r.Cat, r.Unit, r.Msg)
}

// New builds a tracer bound to a clock. w may be nil (ring buffer only).
func New(now func() sim.Tick, w io.Writer, mask uint8, ringCap int) *Tracer {
	if ringCap <= 0 {
		ringCap = 1024
	}
	return &Tracer{w: w, mask: mask, now: now, ring: make([]Record, 0, ringCap), ringCap: ringCap}
}

// Enabled reports whether cat is traced (callers should guard expensive
// formatting with it).
func (t *Tracer) Enabled(cat Category) bool {
	return t != nil && t.mask&(1<<cat) != 0
}

// Emit records one event.
func (t *Tracer) Emit(cat Category, unit, format string, args ...interface{}) {
	if !t.Enabled(cat) {
		return
	}
	rec := Record{At: t.now(), Cat: cat, Unit: unit, Msg: fmt.Sprintf(format, args...)}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.count++
	if len(t.ring) < t.ringCap {
		t.ring = append(t.ring, rec)
	} else {
		t.ring[t.ringNext] = rec
		t.ringNext = (t.ringNext + 1) % t.ringCap
	}
	if t.w != nil {
		fmt.Fprintln(t.w, rec)
	}
}

// Count returns the number of records emitted.
func (t *Tracer) Count() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.count
}

// Recent returns the ring contents, oldest first.
func (t *Tracer) Recent() []Record {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Record, 0, len(t.ring))
	out = append(out, t.ring[t.ringNext:]...)
	out = append(out, t.ring[:t.ringNext]...)
	return out
}

// Dump writes the ring to w, oldest first.
func (t *Tracer) Dump(w io.Writer) {
	for _, r := range t.Recent() {
		fmt.Fprintln(w, r)
	}
}
