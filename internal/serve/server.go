// Package serve is the HTTP/JSON face of an always-on pimbench
// daemon: clients POST experiment × scale × config-override requests,
// poll them by job id, and read settled results directly by
// fingerprint. The daemon in front of the content-addressed result
// cache is a results CDN — most traffic is repeated queries over the
// paper's finite fingerprint space, and those return instantly from
// the cache.
//
// Request lifecycle: a job request resolves (via the planning hooks
// the owner wires in) to its deduplicated grid points. Points already
// in the result cache settle immediately; the rest join the in-flight
// table, which extends runner.Flight's single-suite dedup across every
// concurrent request fleet-wide — one execution per distinct
// fingerprint no matter how many clients ask — and are dispatched to
// the worker pool. A settling execution writes back under its
// canonical key and every alias attached while it flew, then wakes all
// waiting jobs.
//
// Like internal/coord, this package is bulkpim-agnostic: planning,
// cache and execution arrive as Backend hooks, so tests drive the full
// HTTP surface with fakes.
package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"

	"bulkpim/internal/coord"
	"bulkpim/internal/system"
)

// MaxRequestBody bounds a job-request document; config overrides are
// small JSON objects, so anything larger is garbage.
const MaxRequestBody = 1 << 20

// JobRequest is the POST /v1/jobs submission: which experiment, at
// what scale and seed, under what config overrides. Overrides is the
// raw JSON override object (strictly validated downstream against the
// machine Config) and rides to workers verbatim so fingerprints agree
// fleet-wide.
type JobRequest struct {
	Experiment string          `json:"experiment"`
	Scale      string          `json:"scale"`
	Seed       uint64          `json:"seed,omitempty"`
	Overrides  json.RawMessage `json:"overrides,omitempty"`
}

// ParseJobRequest strictly decodes a job request: unknown fields,
// trailing data, type mismatches and missing required fields are
// errors — malformed input must never reach the planner.
func ParseJobRequest(r io.Reader) (JobRequest, error) {
	var req JobRequest
	dec := json.NewDecoder(io.LimitReader(r, MaxRequestBody))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		return JobRequest{}, fmt.Errorf("job request: %w", err)
	}
	if err := dec.Decode(new(json.RawMessage)); !errors.Is(err, io.EOF) {
		return JobRequest{}, errors.New("job request: trailing data after JSON object")
	}
	if req.Experiment == "" {
		return JobRequest{}, errors.New("job request: experiment is required")
	}
	if req.Scale == "" {
		return JobRequest{}, errors.New("job request: scale is required")
	}
	return req, nil
}

// Point is one deduplicated grid point of a resolved request: the
// canonical key, the content-addressing fingerprint, and any alias
// keys (overlapping grids) the same execution also answers.
type Point struct {
	Key         string
	Fingerprint string
	Aliases     []string
}

// ExperimentInfo is one registry entry in the GET /v1/experiments
// catalog: the experiment's canonical name, the bundled aliases that
// resolve to it, and the artifacts it renders.
type ExperimentInfo struct {
	Name      string   `json:"name"`
	Bundles   []string `json:"bundles,omitempty"`
	Artifacts []string `json:"artifacts"`
}

// ArtifactSpec is one renderable artifact of a resolved request: its
// owning experiment, its name, and the exact job-key set it needs —
// the per-artifact contract the streaming report path counts down.
type ArtifactSpec struct {
	Experiment string
	Name       string
	Keys       []string
}

// JobArtifact is a job's per-artifact settlement progress on the wire:
// how many of the artifact's keys the job has settled successfully,
// and whether every key is in — at which point the artifact is
// renderable from results alone.
type JobArtifact struct {
	Experiment string `json:"experiment"`
	Name       string `json:"name"`
	Keys       int    `json:"keys"`
	Settled    int    `json:"settled"`
	Ready      bool   `json:"ready"`
}

// ArtifactStatus is the GET /v1/artifacts/{name} payload: one
// artifact's readiness against the result cache, with its rendered
// output once every key it needs has settled.
type ArtifactStatus struct {
	Artifact   string   `json:"artifact"`
	Experiment string   `json:"experiment"`
	Scale      string   `json:"scale"`
	Seed       uint64   `json:"seed,omitempty"`
	Keys       int      `json:"keys"`
	Settled    int      `json:"settled"`
	Ready      bool     `json:"ready"`
	Output     string   `json:"output,omitempty"`
	Missing    []string `json:"missing,omitempty"`
}

// ErrUnknownArtifact marks an artifact-status request for a name no
// registry spec declares; the handler maps it to 404.
var ErrUnknownArtifact = errors.New("unknown artifact")

// Backend is everything the HTTP surface delegates: planning, the
// result cache, execution, and fleet management. Hooks run outside the
// server's lock except Lookup — a cheap in-memory cache read invoked
// while a submission settles its points — which therefore must not
// call back into the server.
type Backend struct {
	// Resolve plans a request into its deduplicated points; an error is
	// a client error (unknown experiment, bad scale, invalid override).
	Resolve func(req JobRequest) ([]Point, error)
	// Lookup and LookupFP consult the result cache; Store writes a
	// settled execution back under one key.
	Lookup   func(key, fingerprint string) (system.Result, bool)
	LookupFP func(fingerprint string) (system.Result, bool)
	Store    func(key, fingerprint string, r system.Result)
	// Exec runs one missing point asynchronously and calls done exactly
	// once with its outcome. The server guarantees at most one live
	// Exec per fingerprint fleet-wide.
	Exec func(req JobRequest, p Point, done func(system.Result, error))
	// Experiments lists the registry catalog for GET /v1/experiments;
	// nil answers 501.
	Experiments func() []ExperimentInfo
	// Artifacts resolves a request's renderable artifacts and their key
	// sets; job documents then report per-artifact settlement progress.
	// Optional: a nil hook (or an error) just omits artifact progress.
	Artifacts func(req JobRequest) ([]ArtifactSpec, error)
	// ArtifactStatus answers GET /v1/artifacts/{name} against the
	// result cache: readiness, missing keys, and the rendered output
	// once complete. Wrap ErrUnknownArtifact for unknown names; nil
	// answers 501.
	ArtifactStatus func(name string, req JobRequest) (ArtifactStatus, error)
	// Fleet snapshots the worker pool for /v1/healthz and /v1/stats.
	Fleet func() coord.PoolStats
	// AddWorker and RemoveWorker serve POST /v1/workers elasticity.
	AddWorker    func() (int, error)
	RemoveWorker func(id int) error
	// Shutdown, when non-nil, is triggered (once, asynchronously) by
	// POST /v1/shutdown after the response is written.
	Shutdown func()
}

// pointState is one point's settlement within a job.
type pointState struct {
	p      Point
	done   bool
	cached bool
	result system.Result
	err    string
}

// job is one submitted request and its settlement progress.
type job struct {
	id        string
	req       JobRequest
	points    []*pointState
	pending   int
	artifacts []ArtifactSpec
}

// flight is one in-flight execution: the keys to write back when it
// lands (canonical + every alias attached while it flew, across all
// requests) and the job points waiting on it.
type flight struct {
	keys    map[string]bool
	waiters []*waiter
}

type waiter struct {
	j  *job
	ps *pointState
}

// Counters is the serving-layer accounting exposed by /v1/stats.
type Counters struct {
	// Requests counts accepted job submissions; BadRequests rejected
	// ones. Points splits into CacheHits (settled from the result cache
	// at submit), Coalesced (attached to an execution another request
	// already had in flight) and Executed (new executions dispatched).
	// ExecFailed counts executions that settled with an error;
	// ResultReads counts GET /v1/results hits+misses.
	Requests    int `json:"requests"`
	BadRequests int `json:"bad_requests"`
	Points      int `json:"points"`
	CacheHits   int `json:"cache_hits"`
	Coalesced   int `json:"coalesced"`
	Executed    int `json:"executed"`
	ExecFailed  int `json:"exec_failed"`
	ResultReads int `json:"result_reads"`
}

// Server is the HTTP handler. Construct with NewServer and mount it on
// any http.Server.
type Server struct {
	b   Backend
	mux *http.ServeMux

	mu       sync.Mutex
	jobs     map[string]*job
	nextJob  int
	inflight map[string]*flight
	counters Counters
	start    time.Time
	shutdown sync.Once
}

// NewServer wires the API routes around a backend.
func NewServer(b Backend) *Server {
	s := &Server{b: b, jobs: map[string]*job{}, inflight: map[string]*flight{}, start: time.Now()}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	s.mux.HandleFunc("GET /v1/results/{fp}", s.handleResult)
	s.mux.HandleFunc("GET /v1/experiments", s.handleExperiments)
	s.mux.HandleFunc("GET /v1/artifacts/{name}", s.handleArtifact)
	s.mux.HandleFunc("GET /v1/healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	s.mux.HandleFunc("POST /v1/workers", s.handleWorkers)
	s.mux.HandleFunc("POST /v1/shutdown", s.handleShutdown)
	return s
}

func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// JobStatus is a job's wire representation. Results maps every settled
// key (canonical and alias) to its result; Errors maps failed points'
// canonical keys to their error text.
type JobStatus struct {
	ID         string                   `json:"id"`
	Experiment string                   `json:"experiment"`
	Scale      string                   `json:"scale"`
	Seed       uint64                   `json:"seed,omitempty"`
	Status     string                   `json:"status"` // "pending", "done", "failed"
	Points     int                      `json:"points"`
	Done       int                      `json:"done"`
	Cached     int                      `json:"cached"`
	Failed     int                      `json:"failed"`
	Results    map[string]system.Result `json:"results,omitempty"`
	Errors     map[string]string        `json:"errors,omitempty"`
	Artifacts  []JobArtifact            `json:"artifacts,omitempty"`
}

// statusLocked renders j; callers hold s.mu.
func (s *Server) statusLocked(j *job) JobStatus {
	st := JobStatus{ID: j.id, Experiment: j.req.Experiment, Scale: j.req.Scale,
		Seed: j.req.Seed, Points: len(j.points)}
	for _, ps := range j.points {
		if !ps.done {
			continue
		}
		if ps.cached {
			st.Cached++
		}
		if ps.err != "" {
			st.Failed++
			if st.Errors == nil {
				st.Errors = map[string]string{}
			}
			st.Errors[ps.p.Key] = ps.err
			continue
		}
		st.Done++
		if st.Results == nil {
			st.Results = map[string]system.Result{}
		}
		st.Results[ps.p.Key] = ps.result
		for _, alias := range ps.p.Aliases {
			st.Results[alias] = ps.result
		}
	}
	switch {
	case j.pending > 0:
		st.Status = "pending"
	case st.Failed > 0:
		st.Status = "failed"
	default:
		st.Status = "done"
	}
	if len(j.artifacts) > 0 {
		// Per-artifact countdown over the job's successfully settled keys
		// (canonical and alias alike — an artifact listens on whatever
		// grid names its keys carry).
		settled := map[string]bool{}
		for _, ps := range j.points {
			if !ps.done || ps.err != "" {
				continue
			}
			settled[ps.p.Key] = true
			for _, alias := range ps.p.Aliases {
				settled[alias] = true
			}
		}
		for _, a := range j.artifacts {
			ja := JobArtifact{Experiment: a.Experiment, Name: a.Name, Keys: len(a.Keys)}
			for _, k := range a.Keys {
				if settled[k] {
					ja.Settled++
				}
			}
			ja.Ready = ja.Settled == ja.Keys
			st.Artifacts = append(st.Artifacts, ja)
		}
	}
	return st
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}

// launch is one Exec dispatch deferred until the server lock is
// released.
type launch struct {
	req JobRequest
	p   Point
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	req, err := ParseJobRequest(r.Body)
	if err != nil {
		s.mu.Lock()
		s.counters.BadRequests++
		s.mu.Unlock()
		writeError(w, http.StatusBadRequest, err)
		return
	}
	points, err := s.b.Resolve(req)
	if err != nil {
		s.mu.Lock()
		s.counters.BadRequests++
		s.mu.Unlock()
		writeError(w, http.StatusBadRequest, err)
		return
	}

	var artifacts []ArtifactSpec
	if s.b.Artifacts != nil {
		// Artifact progress is advisory; a resolution error degrades the
		// job document to point counts only rather than failing the job.
		artifacts, _ = s.b.Artifacts(req)
	}

	s.mu.Lock()
	s.counters.Requests++
	s.counters.Points += len(points)
	s.nextJob++
	j := &job{id: fmt.Sprintf("j%d", s.nextJob), req: req, artifacts: artifacts}
	s.jobs[j.id] = j
	var launches []launch
	for _, p := range points {
		ps := &pointState{p: p}
		j.points = append(j.points, ps)
		if v, ok := s.b.Lookup(p.Key, p.Fingerprint); ok {
			ps.done, ps.cached, ps.result = true, true, v
			s.counters.CacheHits++
			continue
		}
		j.pending++
		if fl, ok := s.inflight[p.Fingerprint]; ok {
			// Coalesce: attach this request's keys and wait for the
			// execution already in flight.
			fl.keys[p.Key] = true
			for _, alias := range p.Aliases {
				fl.keys[alias] = true
			}
			fl.waiters = append(fl.waiters, &waiter{j: j, ps: ps})
			s.counters.Coalesced++
			continue
		}
		fl := &flight{keys: map[string]bool{p.Key: true}, waiters: []*waiter{{j: j, ps: ps}}}
		for _, alias := range p.Aliases {
			fl.keys[alias] = true
		}
		s.inflight[p.Fingerprint] = fl
		s.counters.Executed++
		launches = append(launches, launch{req: req, p: p})
	}
	st := s.statusLocked(j)
	s.mu.Unlock()

	for _, l := range launches {
		fp := l.p.Fingerprint
		s.b.Exec(l.req, l.p, func(v system.Result, err error) { s.settle(fp, v, err) })
	}
	writeJSON(w, http.StatusOK, st)
}

// settle lands one execution: write-back under every attached key,
// then wake all waiting jobs.
func (s *Server) settle(fp string, v system.Result, err error) {
	s.mu.Lock()
	fl, ok := s.inflight[fp]
	if !ok {
		s.mu.Unlock()
		return
	}
	delete(s.inflight, fp)
	if err != nil {
		s.counters.ExecFailed++
	}
	var keys []string
	if err == nil {
		for k := range fl.keys {
			keys = append(keys, k)
		}
		sort.Strings(keys)
	}
	for _, wt := range fl.waiters {
		wt.ps.done = true
		wt.j.pending--
		if err != nil {
			wt.ps.err = err.Error()
		} else {
			wt.ps.result = v
		}
	}
	s.mu.Unlock()
	// Write-back outside the lock: the store may do disk I/O.
	if s.b.Store != nil {
		for _, k := range keys {
			s.b.Store(k, fp, v)
		}
	}
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	j, ok := s.jobs[r.PathValue("id")]
	var st JobStatus
	if ok {
		st = s.statusLocked(j)
	}
	s.mu.Unlock()
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("no job %q", r.PathValue("id")))
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	fp := r.PathValue("fp")
	s.mu.Lock()
	s.counters.ResultReads++
	s.mu.Unlock()
	v, ok := s.b.LookupFP(fp)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("no result for fingerprint %q", fp))
		return
	}
	writeJSON(w, http.StatusOK, v)
}

func (s *Server) handleExperiments(w http.ResponseWriter, r *http.Request) {
	if s.b.Experiments == nil {
		writeError(w, http.StatusNotImplemented, errors.New("experiment catalog not wired"))
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"experiments": s.b.Experiments()})
}

// handleArtifact answers GET /v1/artifacts/{name}?scale=...&seed=...
// — one artifact's readiness against the result cache, rendered output
// included once every key it needs has settled. The experiment is
// implied by the artifact name; scale is required because key sets are
// scale-dependent.
func (s *Server) handleArtifact(w http.ResponseWriter, r *http.Request) {
	if s.b.ArtifactStatus == nil {
		writeError(w, http.StatusNotImplemented, errors.New("artifact status not wired"))
		return
	}
	q := r.URL.Query()
	req := JobRequest{Scale: q.Get("scale")}
	if req.Scale == "" {
		writeError(w, http.StatusBadRequest, errors.New("artifact request: scale query parameter is required"))
		return
	}
	if seed := q.Get("seed"); seed != "" {
		v, err := strconv.ParseUint(seed, 10, 64)
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("artifact request: seed: %w", err))
			return
		}
		req.Seed = v
	}
	if ov := q.Get("overrides"); ov != "" {
		req.Overrides = json.RawMessage(ov)
	}
	st, err := s.b.ArtifactStatus(r.PathValue("name"), req)
	if err != nil {
		code := http.StatusBadRequest
		if errors.Is(err, ErrUnknownArtifact) {
			code = http.StatusNotFound
		}
		writeError(w, code, err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	resp := map[string]any{"status": "ok"}
	if s.b.Fleet != nil {
		resp["workers"] = len(s.b.Fleet().Workers)
	}
	writeJSON(w, http.StatusOK, resp)
}

// StatsReport is the /v1/stats payload.
type StatsReport struct {
	Counters
	UptimeSeconds float64          `json:"uptime_seconds"`
	Jobs          int              `json:"jobs"`
	Inflight      int              `json:"inflight"`
	Fleet         *coord.PoolStats `json:"fleet,omitempty"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	rep := StatsReport{Counters: s.counters, Jobs: len(s.jobs), Inflight: len(s.inflight),
		UptimeSeconds: time.Since(s.start).Seconds()}
	s.mu.Unlock()
	if s.b.Fleet != nil {
		fl := s.b.Fleet()
		rep.Fleet = &fl
	}
	writeJSON(w, http.StatusOK, rep)
}

// workersRequest mutates the fleet: {"add":N} joins N workers,
// {"remove":ID} dismisses one.
type workersRequest struct {
	Add    int  `json:"add,omitempty"`
	Remove *int `json:"remove,omitempty"`
}

func (s *Server) handleWorkers(w http.ResponseWriter, r *http.Request) {
	var req workersRequest
	dec := json.NewDecoder(io.LimitReader(r.Body, MaxRequestBody))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("workers request: %w", err))
		return
	}
	switch {
	case req.Add > 0 && req.Remove == nil && s.b.AddWorker != nil:
		ids := make([]int, 0, req.Add)
		for i := 0; i < req.Add; i++ {
			id, err := s.b.AddWorker()
			if err != nil {
				writeError(w, http.StatusInternalServerError, err)
				return
			}
			ids = append(ids, id)
		}
		writeJSON(w, http.StatusOK, map[string]any{"added": ids})
	case req.Remove != nil && req.Add == 0 && s.b.RemoveWorker != nil:
		if err := s.b.RemoveWorker(*req.Remove); err != nil {
			writeError(w, http.StatusNotFound, err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{"removed": *req.Remove})
	default:
		writeError(w, http.StatusBadRequest,
			errors.New(`workers request: exactly one of {"add":N} or {"remove":ID}`))
	}
}

func (s *Server) handleShutdown(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "shutting down"})
	if s.b.Shutdown != nil {
		s.shutdown.Do(func() { go s.b.Shutdown() })
	}
}
