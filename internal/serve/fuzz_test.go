package serve

import (
	"bytes"
	"testing"
)

// The job-request parser ingests arbitrary client bytes; it must
// reject garbage with an error — never panic, never accept a request
// missing its identity.
func FuzzParseJobRequest(f *testing.F) {
	f.Add([]byte(`{"experiment":"fig7","scale":"smoke"}`))
	f.Add([]byte(`{"experiment":"all","scale":"full","seed":18446744073709551615}`))
	f.Add([]byte(`{"experiment":"fig3","scale":"quick","overrides":{"Cores":4,"MCQueue":16}}`))
	f.Add([]byte(`{"experiment":"fig3","scale":"quick","overrides":[1,2,3]}`))
	f.Add([]byte(`{"experiment":1e999,"scale":"smoke"}`))
	f.Add([]byte(`{"experiment":"fig7","scale":"smoke"}{"x":1}`))
	f.Add([]byte(`{"exp`))
	f.Add([]byte("\xff\xfe{}"))
	f.Add([]byte(`null`))
	f.Fuzz(func(t *testing.T, data []byte) {
		req, err := ParseJobRequest(bytes.NewReader(data))
		if err != nil {
			if err.Error() == "" {
				t.Fatal("empty error for malformed request")
			}
			return
		}
		if req.Experiment == "" || req.Scale == "" {
			t.Fatalf("accepted request without identity: %+v", req)
		}
	})
}
