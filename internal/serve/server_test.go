package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"bulkpim/internal/coord"
	"bulkpim/internal/system"
)

// fakeBackend is an in-memory Backend: a grid of points per
// experiment, a map cache, and an execution log. Executions complete
// only when the test releases them, so in-flight coalescing is
// deterministic to probe.
type fakeBackend struct {
	mu       sync.Mutex
	grids    map[string][]Point
	cache    map[string]system.Result // composite key\x00fp
	execs    []string                 // fingerprints dispatched, in order
	execDone map[string]func(system.Result, error)
	hold     bool // true: executions wait for release()
	failFPs  map[string]bool
}

func newFakeBackend() *fakeBackend {
	return &fakeBackend{grids: map[string][]Point{}, cache: map[string]system.Result{},
		execDone: map[string]func(system.Result, error){}}
}

func (b *fakeBackend) backend() Backend {
	return Backend{
		Resolve: func(req JobRequest) ([]Point, error) {
			b.mu.Lock()
			defer b.mu.Unlock()
			g, ok := b.grids[req.Experiment]
			if !ok {
				return nil, fmt.Errorf("unknown experiment %q", req.Experiment)
			}
			return g, nil
		},
		Lookup: func(key, fp string) (system.Result, bool) {
			b.mu.Lock()
			defer b.mu.Unlock()
			r, ok := b.cache[key+"\x00"+fp]
			return r, ok
		},
		LookupFP: func(fp string) (system.Result, bool) {
			b.mu.Lock()
			defer b.mu.Unlock()
			for k, r := range b.cache {
				if strings.HasSuffix(k, "\x00"+fp) {
					return r, true
				}
			}
			return system.Result{}, false
		},
		Store: func(key, fp string, r system.Result) {
			b.mu.Lock()
			defer b.mu.Unlock()
			b.cache[key+"\x00"+fp] = r
		},
		Exec: func(req JobRequest, p Point, done func(system.Result, error)) {
			b.mu.Lock()
			b.execs = append(b.execs, p.Fingerprint)
			hold := b.hold
			fail := b.failFPs[p.Fingerprint]
			if hold {
				b.execDone[p.Fingerprint] = done
			}
			b.mu.Unlock()
			if hold {
				return
			}
			if fail {
				done(system.Result{}, errors.New("sim exploded"))
				return
			}
			done(system.Result{Cycles: 42, Stats: map[string]float64{"fp:" + p.Fingerprint: 1}}, nil)
		},
	}
}

// release completes a held execution.
func (b *fakeBackend) release(fp string, r system.Result, err error) {
	b.mu.Lock()
	done := b.execDone[fp]
	delete(b.execDone, fp)
	b.mu.Unlock()
	if done == nil {
		panic("release of non-held execution " + fp)
	}
	done(r, err)
}

func (b *fakeBackend) execCount(fp string) int {
	b.mu.Lock()
	defer b.mu.Unlock()
	n := 0
	for _, e := range b.execs {
		if e == fp {
			n++
		}
	}
	return n
}

func postJob(t *testing.T, ts *httptest.Server, body string) JobStatus {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var e map[string]string
		_ = json.NewDecoder(resp.Body).Decode(&e)
		t.Fatalf("POST /v1/jobs: %d (%v)", resp.StatusCode, e)
	}
	var st JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

func getJob(t *testing.T, ts *httptest.Server, id string) JobStatus {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

func waitSettled(t *testing.T, ts *httptest.Server, id string) JobStatus {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		st := getJob(t, ts, id)
		if st.Status != "pending" {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s never settled: %+v", id, st)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestSubmitCacheHit: a fully cached request settles done in the
// submission response itself, with every point counted as cached.
func TestSubmitCacheHit(t *testing.T) {
	b := newFakeBackend()
	b.grids["fig1"] = []Point{
		{Key: "fig1/a", Fingerprint: "fpa"},
		{Key: "fig1/b", Fingerprint: "fpb", Aliases: []string{"fig2/b"}},
	}
	b.cache["fig1/a\x00fpa"] = system.Result{Cycles: 1}
	b.cache["fig1/b\x00fpb"] = system.Result{Cycles: 2}
	ts := httptest.NewServer(NewServer(b.backend()))
	defer ts.Close()

	st := postJob(t, ts, `{"experiment":"fig1","scale":"smoke"}`)
	if st.Status != "done" || st.Cached != 2 || st.Done != 2 || st.Failed != 0 {
		t.Fatalf("status %+v", st)
	}
	if st.Results["fig1/b"].Cycles != 2 || st.Results["fig2/b"].Cycles != 2 {
		t.Fatalf("alias results %+v", st.Results)
	}
	if len(b.execs) != 0 {
		t.Fatalf("cache hits executed: %v", b.execs)
	}
}

// TestSubmitMissExecutesAndStores: a miss dispatches exactly one
// execution per point, polls pending until it lands, then serves done
// with the result written back under canonical and alias keys.
func TestSubmitMissExecutesAndStores(t *testing.T) {
	b := newFakeBackend()
	b.grids["fig3"] = []Point{{Key: "fig3/x", Fingerprint: "fpx", Aliases: []string{"fig4/x"}}}
	ts := httptest.NewServer(NewServer(b.backend()))
	defer ts.Close()

	st := postJob(t, ts, `{"experiment":"fig3","scale":"smoke"}`)
	st = waitSettled(t, ts, st.ID)
	if st.Status != "done" || st.Done != 1 || st.Cached != 0 {
		t.Fatalf("status %+v", st)
	}
	if b.execCount("fpx") != 1 {
		t.Fatalf("fpx executed %d times", b.execCount("fpx"))
	}
	b.mu.Lock()
	_, canon := b.cache["fig3/x\x00fpx"]
	_, alias := b.cache["fig4/x\x00fpx"]
	b.mu.Unlock()
	if !canon || !alias {
		t.Fatalf("write-back missing: canon=%v alias=%v", canon, alias)
	}
	// A repeat submission is now a pure cache hit.
	st = postJob(t, ts, `{"experiment":"fig3","scale":"smoke"}`)
	if st.Status != "done" || st.Cached != 1 {
		t.Fatalf("warm status %+v", st)
	}
}

// TestInflightCoalescing: two requests overlapping on a fingerprint
// while it is executing share the single execution, and the late
// request's distinct keys are written back too.
func TestInflightCoalescing(t *testing.T) {
	b := newFakeBackend()
	b.hold = true
	b.grids["figA"] = []Point{{Key: "figA/p", Fingerprint: "fp1"}}
	b.grids["figB"] = []Point{{Key: "figB/p", Fingerprint: "fp1"}} // same point, other grid
	ts := httptest.NewServer(NewServer(b.backend()))
	defer ts.Close()

	stA := postJob(t, ts, `{"experiment":"figA","scale":"smoke"}`)
	stB := postJob(t, ts, `{"experiment":"figB","scale":"smoke"}`)
	if stA.Status != "pending" || stB.Status != "pending" {
		t.Fatalf("pre-release statuses %q, %q", stA.Status, stB.Status)
	}
	if b.execCount("fp1") != 1 {
		t.Fatalf("fp1 dispatched %d times, want 1 (coalesced)", b.execCount("fp1"))
	}
	b.release("fp1", system.Result{Cycles: 9}, nil)
	if st := waitSettled(t, ts, stA.ID); st.Results["figA/p"].Cycles != 9 {
		t.Fatalf("A settled %+v", st)
	}
	if st := waitSettled(t, ts, stB.ID); st.Results["figB/p"].Cycles != 9 {
		t.Fatalf("B settled %+v", st)
	}
	b.mu.Lock()
	_, okA := b.cache["figA/p\x00fp1"]
	_, okB := b.cache["figB/p\x00fp1"]
	b.mu.Unlock()
	if !okA || !okB {
		t.Fatalf("write-back keys: A=%v B=%v", okA, okB)
	}
	// Stats must show the coalesce.
	var rep StatsReport
	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		t.Fatal(err)
	}
	if rep.Executed != 1 || rep.Coalesced != 1 || rep.Requests != 2 {
		t.Fatalf("stats %+v", rep.Counters)
	}
}

// TestExecFailure: a failing execution settles the job as failed with
// the error against the point's canonical key, and nothing is written
// back.
func TestExecFailure(t *testing.T) {
	b := newFakeBackend()
	b.failFPs = map[string]bool{"fpbad": true}
	b.grids["fig"] = []Point{
		{Key: "fig/good", Fingerprint: "fpgood"},
		{Key: "fig/bad", Fingerprint: "fpbad"},
	}
	ts := httptest.NewServer(NewServer(b.backend()))
	defer ts.Close()

	st := waitSettled(t, ts, postJob(t, ts, `{"experiment":"fig","scale":"smoke"}`).ID)
	if st.Status != "failed" || st.Failed != 1 || st.Done != 1 {
		t.Fatalf("status %+v", st)
	}
	if st.Errors["fig/bad"] != "sim exploded" {
		t.Fatalf("errors %+v", st.Errors)
	}
	b.mu.Lock()
	_, stored := b.cache["fig/bad\x00fpbad"]
	b.mu.Unlock()
	if stored {
		t.Fatal("failed execution written back")
	}
}

// TestResultByFingerprint: direct cache reads hit and miss cleanly.
func TestResultByFingerprint(t *testing.T) {
	b := newFakeBackend()
	b.cache["k\x00fpz"] = system.Result{Cycles: 5}
	ts := httptest.NewServer(NewServer(b.backend()))
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/v1/results/fpz")
	if err != nil {
		t.Fatal(err)
	}
	var r system.Result
	if err := json.NewDecoder(resp.Body).Decode(&r); err != nil || r.Cycles != 5 {
		t.Fatalf("result %+v, %v", r, err)
	}
	resp.Body.Close()
	if resp, err = http.Get(ts.URL + "/v1/results/nope"); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("missing fingerprint: %d", resp.StatusCode)
	}
}

// TestBadRequests: malformed submissions are 400s with clean errors
// and counted, unknown jobs are 404s.
func TestBadRequests(t *testing.T) {
	b := newFakeBackend()
	ts := httptest.NewServer(NewServer(b.backend()))
	defer ts.Close()

	for _, body := range []string{
		``, `{`, `[]`, `{"experiment":"fig"}`, `{"scale":"smoke"}`,
		`{"experiment":"fig","scale":"smoke","bogus":1}`,
		`{"experiment":"fig","scale":"smoke"}{"again":true}`,
		`{"experiment":"unknown-exp","scale":"smoke"}`,
	} {
		resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("body %q: status %d, want 400", body, resp.StatusCode)
		}
	}
	resp, err := http.Get(ts.URL + "/v1/jobs/j999")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job: %d", resp.StatusCode)
	}
}

// TestHealthzStatsWorkersShutdown: the operational endpoints reflect
// the fleet hooks.
func TestHealthzStatsWorkersShutdown(t *testing.T) {
	b := newFakeBackend()
	be := b.backend()
	var fleetMu sync.Mutex
	fleet := []coord.WorkerStats{{ID: 0, State: "idle"}}
	be.Fleet = func() coord.PoolStats {
		fleetMu.Lock()
		defer fleetMu.Unlock()
		return coord.PoolStats{Workers: append([]coord.WorkerStats(nil), fleet...), Lost: 1}
	}
	be.AddWorker = func() (int, error) {
		fleetMu.Lock()
		defer fleetMu.Unlock()
		id := len(fleet)
		fleet = append(fleet, coord.WorkerStats{ID: id, State: "idle"})
		return id, nil
	}
	be.RemoveWorker = func(id int) error {
		if id != 0 {
			return fmt.Errorf("no worker %d", id)
		}
		return nil
	}
	down := make(chan struct{})
	be.Shutdown = func() { close(down) }
	ts := httptest.NewServer(NewServer(be))
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var hz map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&hz); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if hz["status"] != "ok" || hz["workers"] != float64(1) {
		t.Fatalf("healthz %+v", hz)
	}

	post := func(path, body string) (*http.Response, []byte) {
		t.Helper()
		resp, err := http.Post(ts.URL+path, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		_, _ = buf.ReadFrom(resp.Body)
		return resp, buf.Bytes()
	}
	if resp, body := post("/v1/workers", `{"add":2}`); resp.StatusCode != 200 {
		t.Fatalf("add workers: %d %s", resp.StatusCode, body)
	} else {
		var added struct {
			Added []int `json:"added"`
		}
		if err := json.Unmarshal(body, &added); err != nil || len(added.Added) != 2 ||
			added.Added[0] != 1 || added.Added[1] != 2 {
			t.Fatalf("add workers body %s (%v)", body, err)
		}
	}
	if resp, _ := post("/v1/workers", `{"remove":0}`); resp.StatusCode != 200 {
		t.Fatalf("remove worker: %d", resp.StatusCode)
	}
	if resp, _ := post("/v1/workers", `{"remove":9}`); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("remove unknown worker: %d", resp.StatusCode)
	}
	if resp, _ := post("/v1/workers", `{"add":1,"remove":0}`); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("ambiguous workers request: %d", resp.StatusCode)
	}
	if resp, _ := post("/v1/workers", `{"launch":"x"}`); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown workers field: %d", resp.StatusCode)
	}

	resp, err = http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var rep StatsReport
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if rep.Fleet == nil || rep.Fleet.Lost != 1 || len(rep.Fleet.Workers) != 3 {
		t.Fatalf("stats fleet %+v", rep.Fleet)
	}

	if resp, _ := post("/v1/shutdown", ``); resp.StatusCode != 200 {
		t.Fatalf("shutdown: %d", resp.StatusCode)
	}
	select {
	case <-down:
	case <-time.After(5 * time.Second):
		t.Fatal("shutdown hook never fired")
	}
}

// TestParseJobRequest pins the parser's strictness directly.
func TestParseJobRequest(t *testing.T) {
	req, err := ParseJobRequest(strings.NewReader(
		`{"experiment":"fig7","scale":"quick","seed":9,"overrides":{"Cores":2}}`))
	if err != nil {
		t.Fatal(err)
	}
	if req.Experiment != "fig7" || req.Scale != "quick" || req.Seed != 9 ||
		string(req.Overrides) != `{"Cores":2}` {
		t.Fatalf("parsed %+v", req)
	}
	for _, bad := range []string{
		``, `null`, `42`, `"fig7"`, `{"experiment":"fig7"}`, `{"scale":"smoke"}`,
		`{"experiment":"fig7","scale":"smoke","seed":-1}`,
		`{"experiment":"fig7","scale":"smoke","extra":{}}`,
		`{"experiment":"fig7","scale":"smoke"} trailing`,
	} {
		if _, err := ParseJobRequest(strings.NewReader(bad)); err == nil {
			t.Fatalf("accepted %q", bad)
		}
	}
}

// TestExperimentCatalogEndpoint: GET /v1/experiments serves the
// backend's catalog hook verbatim, and answers 501 when the hook is
// not wired — a coordinator-only backend stays a valid Backend.
func TestExperimentCatalogEndpoint(t *testing.T) {
	b := newFakeBackend()
	bare := httptest.NewServer(NewServer(b.backend()))
	defer bare.Close()
	resp, err := http.Get(bare.URL + "/v1/experiments")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotImplemented {
		t.Fatalf("unwired catalog: status %d, want 501", resp.StatusCode)
	}

	be := b.backend()
	be.Experiments = func() []ExperimentInfo {
		return []ExperimentInfo{{Name: "fig7", Bundles: []string{"fig10"}, Artifacts: []string{"fig7", "fig10"}}}
	}
	ts := httptest.NewServer(NewServer(be))
	defer ts.Close()
	resp, err = http.Get(ts.URL + "/v1/experiments")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var payload struct {
		Experiments []ExperimentInfo `json:"experiments"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&payload); err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/experiments: status %d, err %v", resp.StatusCode, err)
	}
	if len(payload.Experiments) != 1 || payload.Experiments[0].Name != "fig7" ||
		len(payload.Experiments[0].Artifacts) != 2 {
		t.Fatalf("catalog payload %+v", payload.Experiments)
	}
}

// TestArtifactEndpointStatusCodes: /v1/artifacts/{name} maps hook
// outcomes to HTTP — 501 unwired, 400 without the required scale or
// with a junk seed, 404 on ErrUnknownArtifact, 200 with the hook's
// status otherwise — and forwards scale/seed into the hook's request.
func TestArtifactEndpointStatusCodes(t *testing.T) {
	b := newFakeBackend()
	bare := httptest.NewServer(NewServer(b.backend()))
	defer bare.Close()
	resp, err := http.Get(bare.URL + "/v1/artifacts/fig1?scale=smoke")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotImplemented {
		t.Fatalf("unwired artifact status: %d, want 501", resp.StatusCode)
	}

	var gotName string
	var gotReq JobRequest
	be := b.backend()
	be.ArtifactStatus = func(name string, req JobRequest) (ArtifactStatus, error) {
		gotName, gotReq = name, req
		if name == "nosuch" {
			return ArtifactStatus{}, fmt.Errorf("%w %q", ErrUnknownArtifact, name)
		}
		return ArtifactStatus{Artifact: name, Experiment: "fig1", Scale: req.Scale,
			Keys: 3, Settled: 1, Missing: []string{"k2", "k3"}}, nil
	}
	ts := httptest.NewServer(NewServer(be))
	defer ts.Close()
	status := func(path string) int {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if code := status("/v1/artifacts/fig1"); code != http.StatusBadRequest {
		t.Fatalf("missing scale: %d, want 400", code)
	}
	if code := status("/v1/artifacts/fig1?scale=smoke&seed=banana"); code != http.StatusBadRequest {
		t.Fatalf("junk seed: %d, want 400", code)
	}
	if code := status("/v1/artifacts/nosuch?scale=smoke"); code != http.StatusNotFound {
		t.Fatalf("unknown artifact: %d, want 404", code)
	}

	resp, err = http.Get(ts.URL + "/v1/artifacts/fig1?scale=smoke&seed=7")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st ArtifactStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("artifact status: %d, err %v", resp.StatusCode, err)
	}
	if gotName != "fig1" || gotReq.Scale != "smoke" || gotReq.Seed != 7 {
		t.Fatalf("hook saw name=%q req=%+v", gotName, gotReq)
	}
	if st.Keys != 3 || st.Settled != 1 || len(st.Missing) != 2 || st.Ready {
		t.Fatalf("status payload %+v", st)
	}
}

// TestJobArtifactProgress: a job document's artifact countdown tracks
// point settlement live — alias keys count, failed points do not, and
// Ready flips only when the last needed key lands.
func TestJobArtifactProgress(t *testing.T) {
	b := newFakeBackend()
	b.hold = true
	b.grids["fig1"] = []Point{
		{Key: "fig1/a", Fingerprint: "fpa"},
		{Key: "fig1/b", Fingerprint: "fpb", Aliases: []string{"fig2/b"}},
		{Key: "fig1/c", Fingerprint: "fpc"},
	}
	be := b.backend()
	be.Artifacts = func(req JobRequest) ([]ArtifactSpec, error) {
		return []ArtifactSpec{
			{Experiment: "fig1", Name: "fig1", Keys: []string{"fig1/a", "fig2/b"}}, // alias key
			{Experiment: "fig1", Name: "figX", Keys: []string{"fig1/c"}},
		}, nil
	}
	ts := httptest.NewServer(NewServer(be))
	defer ts.Close()

	st := postJob(t, ts, `{"experiment":"fig1","scale":"smoke"}`)
	if len(st.Artifacts) != 2 || st.Artifacts[0].Settled != 0 || st.Artifacts[0].Ready {
		t.Fatalf("fresh job artifacts %+v", st.Artifacts)
	}

	b.release("fpa", system.Result{Cycles: 1}, nil)
	st = getJob(t, ts, st.ID)
	if st.Artifacts[0].Settled != 1 || st.Artifacts[0].Ready {
		t.Fatalf("after fpa: %+v", st.Artifacts)
	}

	// fig1/b settles; the artifact listens on the alias name fig2/b and
	// must still count it.
	b.release("fpb", system.Result{Cycles: 2}, nil)
	st = getJob(t, ts, st.ID)
	if st.Artifacts[0].Settled != 2 || !st.Artifacts[0].Ready {
		t.Fatalf("alias key not counted: %+v", st.Artifacts)
	}
	if st.Artifacts[1].Settled != 0 {
		t.Fatalf("figX settled early: %+v", st.Artifacts)
	}

	// fig1/c fails: its artifact never reaches Ready on this job.
	b.release("fpc", system.Result{}, errors.New("sim exploded"))
	st = waitSettled(t, ts, st.ID)
	if st.Artifacts[1].Settled != 0 || st.Artifacts[1].Ready {
		t.Fatalf("failed point counted as settled: %+v", st.Artifacts)
	}
	if st.Status != "failed" {
		t.Fatalf("job status %q", st.Status)
	}
}
