package snapshot

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

func open(t *testing.T, dir string) *Store {
	t.Helper()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestRoundtrip: a saved payload loads back byte-identical, under the
// same id, across store handles (the shared-filesystem fleet case).
func TestRoundtrip(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir)
	id := ID("ycsb:records=100000")
	payload := []byte("the generated workload bytes \x00\x01\x02")
	if err := s.Save(id, "ycsb:records=100000", payload); err != nil {
		t.Fatal(err)
	}
	got, ok := s.Load(id)
	if !ok || !bytes.Equal(got, payload) {
		t.Fatalf("Load = %q, %v; want stored payload", got, ok)
	}

	// A second handle over the same directory — another process of the
	// fleet — sees the published snapshot.
	s2 := open(t, dir)
	if got, ok := s2.Load(id); !ok || !bytes.Equal(got, payload) {
		t.Fatalf("second handle Load = %q, %v", got, ok)
	}
	if st := s2.Stats(); st.Hits != 1 || st.Misses != 0 {
		t.Fatalf("stats = %+v, want 1 hit", st)
	}

	if _, ok := s.Load(ID("something else")); ok {
		t.Fatal("absent id loaded")
	}
	st := s.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Stores != 1 || st.Corrupt != 0 {
		t.Fatalf("stats = %+v", st)
	}
	if st.HitRate() != 0.5 {
		t.Fatalf("hit rate = %v, want 0.5", st.HitRate())
	}
}

// TestIDStable: the content address is a pure function of the identity
// string, fixed-width, and distinct identities do not collide.
func TestIDStable(t *testing.T) {
	a, b := ID("ycsb:records=100000"), ID("ycsb:records=100000")
	if a != b || len(a) != 32 {
		t.Fatalf("ID not stable/32-hex: %q vs %q", a, b)
	}
	if ID("ycsb:records=200000") == a {
		t.Fatal("distinct identities collide")
	}
}

// TestCorruptionTruncation: every byte-level truncation of a valid
// snapshot file must load as a counted miss, never an error or a wrong
// payload — the residue of a writer killed mid-publish (or bit rot)
// degrades to regeneration.
func TestCorruptionTruncation(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir)
	id := ID("w")
	payload := []byte("0123456789abcdef0123456789abcdef")
	if err := s.Save(id, "w", payload); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, id+suffix)
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut < len(full); cut += 7 {
		if err := os.WriteFile(path, full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		fresh := open(t, dir)
		if got, ok := fresh.Load(id); ok {
			t.Fatalf("truncated-at-%d file loaded: %q", cut, got)
		}
		if st := fresh.Stats(); st.Corrupt != 1 || st.Misses != 1 {
			t.Fatalf("truncated-at-%d stats = %+v, want 1 corrupt miss", cut, st)
		}
	}

	// Flipped payload byte: header parses, hash must catch it.
	bad := append([]byte(nil), full...)
	bad[len(bad)-1] ^= 0xFF
	if err := os.WriteFile(path, bad, 0o644); err != nil {
		t.Fatal(err)
	}
	fresh := open(t, dir)
	if _, ok := fresh.Load(id); ok {
		t.Fatal("bit-flipped payload loaded")
	}
	if st := fresh.Stats(); st.Corrupt != 1 {
		t.Fatalf("bit-flip stats = %+v", st)
	}

	// Trailing junk after the payload: writer/header disagreement.
	if err := os.WriteFile(path, append(append([]byte(nil), full...), 'x'), 0o644); err != nil {
		t.Fatal(err)
	}
	fresh = open(t, dir)
	if _, ok := fresh.Load(id); ok {
		t.Fatal("file with trailing junk loaded")
	}

	// A save over the corrupt file repairs it.
	if err := fresh.Save(id, "w", payload); err != nil {
		t.Fatal(err)
	}
	if got, ok := fresh.Load(id); !ok || !bytes.Equal(got, payload) {
		t.Fatal("re-save did not repair the corrupt snapshot")
	}
}

// TestHeaderLengthBomb: a garbled header whose Len field claims far
// more payload than the file holds must degrade to a counted corrupt
// miss — never a huge allocation or a makeslice panic.
func TestHeaderLengthBomb(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir)
	id := ID("w")
	if err := s.Save(id, "w", []byte("payload")); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, id+suffix)
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, bad := range []string{`"len":9000000000000000000`, `"len":-7`} {
		rewritten := []byte(strings.Replace(string(full), `"len":7`, bad, 1))
		if bytes.Equal(rewritten, full) {
			t.Fatalf("len field not found to rewrite as %s", bad)
		}
		if err := os.WriteFile(path, rewritten, 0o644); err != nil {
			t.Fatal(err)
		}
		fresh := open(t, dir)
		if _, ok := fresh.Load(id); ok {
			t.Fatalf("length-bombed (%s) snapshot loaded", bad)
		}
		if st := fresh.Stats(); st.Corrupt != 1 || st.Misses != 1 {
			t.Fatalf("length bomb (%s) stats = %+v, want 1 corrupt miss", bad, st)
		}
	}
}

// TestContains: the header-only presence check distinguishes present,
// absent, foreign-version and header-corrupt snapshots without
// touching the hit/miss accounting.
func TestContains(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir)
	id := ID("w")
	if s.Contains(id) {
		t.Fatal("empty store contains id")
	}
	if err := s.Save(id, "w", []byte("payload")); err != nil {
		t.Fatal(err)
	}
	if !s.Contains(id) {
		t.Fatal("saved snapshot not contained")
	}
	// A corrupt payload still "contains": Contains trades payload
	// verification for cheapness; the later Load catches it.
	path := filepath.Join(dir, id+suffix)
	if err := os.WriteFile(path, []byte("garbled header"), 0o644); err != nil {
		t.Fatal(err)
	}
	if s.Contains(id) {
		t.Fatal("garbled header reported as contained")
	}
	if st := s.Stats(); st.Hits+st.Misses != 0 {
		t.Fatalf("Contains touched the hit/miss accounting: %+v", st)
	}
}

// TestVersionInvalidation: a snapshot written under a foreign
// FormatVersion is a counted invalidated miss, distinct from
// corruption.
func TestVersionInvalidation(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir)
	id := ID("w")
	if err := s.Save(id, "w", []byte("payload")); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, id+suffix)
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	rewritten := bytes.Replace(full, []byte(FormatVersion), []byte("bulkpim-snapshot-v0"), 1)
	if bytes.Equal(rewritten, full) {
		t.Fatal("version string not found in header")
	}
	if err := os.WriteFile(path, rewritten, 0o644); err != nil {
		t.Fatal(err)
	}
	fresh := open(t, dir)
	if _, ok := fresh.Load(id); ok {
		t.Fatal("foreign-version snapshot loaded")
	}
	if st := fresh.Stats(); st.Invalidated != 1 || st.Corrupt != 0 || st.Misses != 1 {
		t.Fatalf("stats = %+v, want 1 invalidated miss", st)
	}
}

// TestWrongIDRejected: a file renamed to another id's slot must not
// serve the foreign payload — and since such a file can never be
// served, even an age-bounded GC must reap it as broken.
func TestWrongIDRejected(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir)
	if err := s.Save(ID("a"), "a", []byte("payload-a")); err != nil {
		t.Fatal(err)
	}
	if err := os.Rename(filepath.Join(dir, ID("a")+suffix), filepath.Join(dir, ID("b")+suffix)); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Load(ID("b")); ok {
		t.Fatal("renamed snapshot served under wrong id")
	}
	if s.Contains(ID("b")) {
		t.Fatal("renamed snapshot reported as contained")
	}
	removed, _, err := s.GC(time.Hour, time.Now())
	if err != nil || removed != 1 {
		t.Fatalf("age-bounded GC removed %d files, %v; want the misnamed file", removed, err)
	}
}

// TestConcurrentWriters: many goroutines saving and loading the same
// ids concurrently (the fleet race: several workers generating the
// same database at once) must never observe a torn or wrong payload.
// Run under -race in CI.
func TestConcurrentWriters(t *testing.T) {
	dir := t.TempDir()
	const ids, iters, writers = 4, 20, 8
	payload := func(i int) []byte {
		return bytes.Repeat([]byte(fmt.Sprintf("workload-%d:", i)), 100)
	}
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			s := open(t, dir)
			for n := 0; n < iters; n++ {
				i := (w + n) % ids
				id := ID(fmt.Sprintf("db-%d", i))
				if err := s.Save(id, fmt.Sprintf("db-%d", i), payload(i)); err != nil {
					t.Errorf("save: %v", err)
					return
				}
				if got, ok := s.Load(id); ok && !bytes.Equal(got, payload(i)) {
					t.Errorf("torn read for db-%d", i)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	s := open(t, dir)
	for i := 0; i < ids; i++ {
		if got, ok := s.Load(ID(fmt.Sprintf("db-%d", i))); !ok || !bytes.Equal(got, payload(i)) {
			t.Fatalf("db-%d missing or wrong after concurrent writes", i)
		}
	}
	// No temp residue left behind by healthy writers.
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if isTempName(e.Name()) {
			t.Fatalf("temp file left behind: %s", e.Name())
		}
	}
}

// TestListAndGC: List reports labels and flags broken files; GC
// removes aged and broken snapshots (and writer-crash temp residue)
// while keeping fresh healthy ones.
func TestListAndGC(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir)
	if err := s.Save(ID("a"), "label-a", []byte("aaa")); err != nil {
		t.Fatal(err)
	}
	if err := s.Save(ID("b"), "label-b", []byte("bbb")); err != nil {
		t.Fatal(err)
	}
	// Corrupt b, plant an orphaned temp file and a foreign file.
	if err := os.WriteFile(filepath.Join(dir, ID("b")+suffix), []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "."+ID("c")+".tmp-123"), []byte("orphan"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "README"), []byte("not ours"), 0o644); err != nil {
		t.Fatal(err)
	}

	infos, err := s.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 2 {
		t.Fatalf("List = %d entries, want 2 (foreign/temp files excluded): %+v", len(infos), infos)
	}
	byID := map[string]Info{}
	for _, in := range infos {
		byID[in.ID] = in
	}
	if in := byID[ID("a")]; in.Label != "label-a" || in.Err != nil || in.Size == 0 {
		t.Fatalf("healthy entry = %+v", in)
	}
	if in := byID[ID("b")]; in.Err == nil {
		t.Fatalf("corrupt entry not flagged: %+v", in)
	}

	// Age-bounded GC: nothing is old, so only broken files (corrupt b)
	// go; the orphan temp is young, so it stays.
	now := time.Now()
	removed, freed, err := s.GC(time.Hour, now)
	if err != nil || removed != 1 || freed == 0 {
		t.Fatalf("GC(1h) = %d removed, %d freed, %v; want the corrupt file only", removed, freed, err)
	}
	if _, ok := s.Load(ID("a")); !ok {
		t.Fatal("GC removed a fresh healthy snapshot")
	}

	// Full GC (maxAge 0): everything of ours goes, foreign files stay.
	removed, _, err = s.GC(0, now)
	if err != nil || removed != 2 { // snapshot a + orphan temp
		t.Fatalf("GC(0) = %d removed, %v; want 2", removed, err)
	}
	if _, ok := s.Load(ID("a")); ok {
		t.Fatal("snapshot survived full GC")
	}
	if _, err := os.Stat(filepath.Join(dir, "README")); err != nil {
		t.Fatal("GC deleted a foreign file")
	}
}

// TestHeaderIsOneJSONLine: the on-disk format promise other tooling
// (and future versions) rely on — first line parses standalone as the
// JSON header.
func TestHeaderIsOneJSONLine(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir)
	id := ID("w")
	if err := s.Save(id, "w", []byte("multi\nline\npayload")); err != nil {
		t.Fatal(err)
	}
	full, err := os.ReadFile(filepath.Join(dir, id+suffix))
	if err != nil {
		t.Fatal(err)
	}
	first, _, _ := strings.Cut(string(full), "\n")
	var hdr header
	if err := json.Unmarshal([]byte(first), &hdr); err != nil {
		t.Fatalf("first line is not standalone JSON: %v", err)
	}
	if hdr.Version != FormatVersion || hdr.ID != id || hdr.Label != "w" {
		t.Fatalf("header = %+v", hdr)
	}
}
