// Package snapshot is a content-addressed, on-disk store of generated
// workload snapshots. The paper's evaluation shares a handful of
// databases across dozens of grid points: every YCSB record count is
// one database measured under many models and config ablations, and a
// distributed run's workers each regenerate (and Precompute) the
// databases behind the jobs they happen to execute. Snapshotting the
// generated workload under its content address — the same workload
// identity the result cache folds into job fingerprints — turns that
// O(workers x databases) regeneration cost into O(databases): the
// first generator publishes, everyone else loads.
//
// Each snapshot is one file, <id>.snap, where id is derived from the
// workload identity string (ID). The file is a JSON header line —
// store version, id, human-readable label, payload length and SHA-256 —
// followed by the raw payload bytes. Loading verifies all of it;
// anything that does not check out (truncation, bit rot, a foreign
// store version) is counted and treated as a miss, never an error —
// exactly the corruption tolerance of internal/resultcache. Writers
// publish via write-to-temp-then-rename, so concurrent generators of
// the same database race benignly: the last rename wins and every
// reader only ever observes complete files.
package snapshot

import (
	"bufio"
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"
)

// FormatVersion keys every snapshot file. Bump it whenever the header
// or payload framing changes incompatibly; foreign-version files are
// then counted as invalidated misses (and regenerated over) instead of
// being misread.
const FormatVersion = "bulkpim-snapshot-v1"

// suffix is the snapshot file extension inside the store directory.
const suffix = ".snap"

// header is the JSON first line of a snapshot file. SHA256 and Len
// cover the payload that follows the newline.
type header struct {
	Version string `json:"v"`
	ID      string `json:"id"`
	Label   string `json:"label"`
	Len     int64  `json:"len"`
	SHA256  string `json:"sha256"`
}

// Stats is the store's accounting. Hits/Misses count Load calls;
// Stores counts successful publishes; Invalidated counts loads that
// found a foreign FormatVersion; Corrupt counts loads that failed the
// integrity check (truncation, hash mismatch, garbled header);
// StoreErrors counts failed publishes.
type Stats struct {
	Hits        int
	Misses      int
	Stores      int
	Invalidated int
	Corrupt     int
	StoreErrors int
}

// HitRate returns hits / loads, or 0 with no loads.
func (s Stats) HitRate() float64 {
	if s.Hits+s.Misses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Hits+s.Misses)
}

func (s Stats) String() string {
	return fmt.Sprintf("%d hits, %d misses (%.1f%% hit rate), %d stored, %d invalidated, %d corrupt, %d store errors",
		s.Hits, s.Misses, 100*s.HitRate(), s.Stores, s.Invalidated, s.Corrupt, s.StoreErrors)
}

// Store is an on-disk snapshot store, safe for concurrent use — by the
// goroutines of one process and, through the atomic publish protocol,
// by a fleet of worker processes sharing the directory.
type Store struct {
	dir string

	mu    sync.Mutex
	stats Stats
}

// Open prepares the store under dir, creating it when absent.
func Open(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("snapshot: %w", err)
	}
	return &Store{dir: dir}, nil
}

// Dir returns the store directory — the path workers of a shared-
// filesystem fleet are pointed at.
func (s *Store) Dir() string { return s.dir }

// ID derives the content address of a workload identity string (the
// same identity SimJob.Extra folds into result-cache fingerprints).
func ID(identity string) string {
	sum := sha256.Sum256([]byte(identity))
	return hex.EncodeToString(sum[:])[:32]
}

func (s *Store) path(id string) string { return filepath.Join(s.dir, id+suffix) }

func (s *Store) count(f func(*Stats)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	f(&s.stats)
}

// Load returns the payload stored under id, verifying the header and
// the payload hash. Every failure mode — absent, truncated, garbled,
// foreign version — is a counted miss.
func (s *Store) Load(id string) ([]byte, bool) {
	payload, hdr, err := readFile(s.path(id))
	switch {
	case err == nil && hdr.Version != FormatVersion:
		s.count(func(st *Stats) { st.Invalidated++; st.Misses++ })
		return nil, false
	case err == nil && hdr.ID != id:
		// A renamed or mis-copied file must not serve a foreign workload.
		s.count(func(st *Stats) { st.Corrupt++; st.Misses++ })
		return nil, false
	case err == nil:
		s.count(func(st *Stats) { st.Hits++ })
		return payload, true
	case os.IsNotExist(err):
		s.count(func(st *Stats) { st.Misses++ })
		return nil, false
	default:
		s.count(func(st *Stats) { st.Corrupt++; st.Misses++ })
		return nil, false
	}
}

// readFile reads and verifies one snapshot file. Version checking is
// left to the caller (a foreign version is invalidation, not
// corruption); everything structural — header shape, payload length,
// hash — is verified here.
func readFile(path string) ([]byte, header, error) {
	var hdr header
	f, err := os.Open(path)
	if err != nil {
		return nil, hdr, err
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return nil, hdr, err
	}
	br := bufio.NewReader(f)
	line, err := br.ReadBytes('\n')
	if err != nil {
		return nil, hdr, fmt.Errorf("snapshot %s: header: %w", path, err)
	}
	if err := json.Unmarshal(line, &hdr); err != nil {
		return nil, hdr, fmt.Errorf("snapshot %s: header: %w", path, err)
	}
	// Len is untrusted until it survives this bound: a garbled header
	// must degrade to a counted miss, not drive a huge allocation.
	if hdr.Len < 0 || hdr.Len > fi.Size() {
		return nil, hdr, fmt.Errorf("snapshot %s: implausible payload length %d in a %d-byte file", path, hdr.Len, fi.Size())
	}
	payload := make([]byte, hdr.Len)
	if _, err := io.ReadFull(br, payload); err != nil {
		return nil, hdr, fmt.Errorf("snapshot %s: payload: %w", path, err)
	}
	// Trailing bytes mean the writer and header disagree — refuse.
	if _, err := br.ReadByte(); err != io.EOF {
		return nil, hdr, fmt.Errorf("snapshot %s: trailing bytes after payload", path)
	}
	sum := sha256.Sum256(payload)
	if hex.EncodeToString(sum[:]) != hdr.SHA256 {
		return nil, hdr, fmt.Errorf("snapshot %s: payload hash mismatch", path)
	}
	return payload, hdr, nil
}

// Save publishes a payload under id. label is the human-readable
// workload identity for List. The write is atomic — temp file in the
// store directory, fsync-free rename — so concurrent writers (several
// fleet workers generating the same database at once) and concurrent
// readers are safe: readers see either nothing or a complete file.
func (s *Store) Save(id, label string, payload []byte) error {
	err := s.save(id, label, payload)
	if err != nil {
		s.count(func(st *Stats) { st.StoreErrors++ })
		return err
	}
	s.count(func(st *Stats) { st.Stores++ })
	return nil
}

func (s *Store) save(id, label string, payload []byte) error {
	sum := sha256.Sum256(payload)
	line, err := json.Marshal(header{
		Version: FormatVersion, ID: id, Label: label,
		Len: int64(len(payload)), SHA256: hex.EncodeToString(sum[:]),
	})
	if err != nil {
		return fmt.Errorf("snapshot: marshal header %s: %w", id, err)
	}
	tmp, err := os.CreateTemp(s.dir, "."+id+".tmp-*")
	if err != nil {
		return fmt.Errorf("snapshot: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	_, werr := tmp.Write(append(line, '\n'))
	if werr == nil {
		_, werr = tmp.Write(payload)
	}
	if cerr := tmp.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		return fmt.Errorf("snapshot: write %s: %w", id, werr)
	}
	if err := os.Rename(tmp.Name(), s.path(id)); err != nil {
		return fmt.Errorf("snapshot: publish %s: %w", id, err)
	}
	return nil
}

// readHeader parses just the header line of a snapshot file — the
// cheap half of verification (no payload read or hash), enough for
// presence checks and listings. Full-scale payloads are multi-GB gobs,
// so anything that does not need the bytes must not touch them.
func readHeader(path string) (header, error) {
	var hdr header
	f, err := os.Open(path)
	if err != nil {
		return hdr, err
	}
	defer f.Close()
	line, err := bufio.NewReader(io.LimitReader(f, 1<<16)).ReadBytes('\n')
	if err != nil {
		return hdr, fmt.Errorf("snapshot %s: header: %w", path, err)
	}
	if err := json.Unmarshal(line, &hdr); err != nil {
		return hdr, fmt.Errorf("snapshot %s: header: %w", path, err)
	}
	return hdr, nil
}

// Contains reports whether a plausible snapshot for id is present:
// the header must parse under the current version and id. The payload
// is not read or hashed — a later Load that finds it corrupt degrades
// to regeneration — so Contains is cheap enough to poll before
// deciding whether an expensive generation is needed at all, and it
// does not touch the hit/miss accounting.
func (s *Store) Contains(id string) bool {
	hdr, err := readHeader(s.path(id))
	return err == nil && hdr.Version == FormatVersion && hdr.ID == id
}

// DecodeFailed re-books a Load whose payload the caller could not
// decode into a workload (wire-version skew, a mislabeled file): the
// optimistic hit becomes a corrupt miss, so the stats — and the CI
// gates grepping the hit rate — reflect workloads actually served, not
// bytes merely read.
func (s *Store) DecodeFailed() {
	s.count(func(st *Stats) {
		st.Hits--
		st.Misses++
		st.Corrupt++
	})
}

// Stats returns a snapshot of the accounting.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// Info describes one stored snapshot for inspection (pimbench
// snapshot -ls).
type Info struct {
	ID      string
	Label   string
	Size    int64 // whole file, header included
	ModTime time.Time
	// Err is non-nil for a file that fails verification — listed so GC
	// and operators can see residue instead of it hiding.
	Err error
}

// List returns every snapshot in the store, sorted by label then id so
// output is stable for tests and diffs. Only headers are verified —
// listing must stay cheap on stores of multi-GB payloads (payload
// integrity is Load's and GC's job).
func (s *Store) List() ([]Info, error) {
	ents, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, fmt.Errorf("snapshot: %w", err)
	}
	var out []Info
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || filepath.Ext(name) != suffix {
			continue
		}
		info := Info{ID: name[:len(name)-len(suffix)]}
		if fi, err := e.Info(); err == nil {
			info.Size, info.ModTime = fi.Size(), fi.ModTime()
		}
		hdr, err := readHeader(filepath.Join(s.dir, name))
		switch {
		case err != nil:
			info.Err = err
		case hdr.Version != FormatVersion:
			info.Err = fmt.Errorf("snapshot: foreign version %q", hdr.Version)
		case hdr.ID != info.ID:
			info.Err = fmt.Errorf("snapshot: file named %s holds id %s", info.ID, hdr.ID)
		default:
			info.Label = hdr.Label
		}
		out = append(out, info)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Label != out[j].Label {
			return out[i].Label < out[j].Label
		}
		return out[i].ID < out[j].ID
	})
	return out, nil
}

// GC removes snapshots older than maxAge (0 removes everything) plus
// every file that fails verification — corrupt residue and foreign
// versions can never hit, so they are always garbage. Temp files from
// writers that died mid-publish are removed on the same age rule.
// It returns the number of files removed and the bytes freed.
func (s *Store) GC(maxAge time.Duration, now time.Time) (removed int, freed int64, err error) {
	ents, rerr := os.ReadDir(s.dir)
	if rerr != nil {
		return 0, 0, fmt.Errorf("snapshot: %w", rerr)
	}
	for _, e := range ents {
		if e.IsDir() {
			continue
		}
		path := filepath.Join(s.dir, e.Name())
		fi, ferr := e.Info()
		if ferr != nil {
			continue
		}
		old := maxAge <= 0 || now.Sub(fi.ModTime()) > maxAge
		broken := false
		if name := e.Name(); filepath.Ext(name) == suffix {
			_, hdr, verr := readFile(path)
			broken = verr != nil || hdr.Version != FormatVersion ||
				hdr.ID != name[:len(name)-len(suffix)] // misnamed: Load can never serve it
		} else if !isTempName(name) {
			continue // foreign file: not ours to delete
		}
		if !old && !broken {
			continue
		}
		if rmErr := os.Remove(path); rmErr != nil {
			err = rmErr
			continue
		}
		removed++
		freed += fi.Size()
	}
	return removed, freed, err
}

// isTempName reports whether name matches the CreateTemp pattern Save
// uses, so GC can reap orphans of crashed writers.
func isTempName(name string) bool {
	return len(name) > 1 && name[0] == '.' && bytes.Contains([]byte(name), []byte(".tmp-"))
}
