package pimdb

import (
	"fmt"

	"bulkpim/internal/mem"
	"bulkpim/internal/pim"
)

// Bulk-bitwise PIM instruction sets are fine-grained (AND, OR, compare
// steps; §IV-A), so one database operation compiles to SEVERAL PIM ops per
// scope — the temporal locality the scope buffer exploits. The compilers
// below return the op sequence for one scope; the same sequence must be
// issued to every scope holding data ("If data in multiple scopes require
// the same processing, the required PIM ops should be duplicated for each
// scope", §III).

// GatherMicroOpsPerArray is the cost of packing one data array's match
// column into its result row (inter-array column-to-row move).
const GatherMicroOpsPerArray = 2

// CompileRangeScan builds the PIM ops that scan one scope for records with
// key in [lo, hi]: a >=lo compare, a <=hi compare, and an AND+gather that
// packs per-record match bits into the result rows.
func (l Layout) CompileRangeScan(scopeBase mem.Addr, lo, hi uint64, functional bool) []*mem.PIMProgram {
	geGather := func(b *mem.Backing, writer uint64) {
		l.forEachDataArray(b, scopeBase, writer, func(img *pim.ArrayImage) {
			img.CmpConst(pim.PredGE, 0, l.KeyBits, lo, l.MatchCols[0], l.TmpGT, l.TmpEQ)
		})
	}
	leApply := func(b *mem.Backing, writer uint64) {
		l.forEachDataArray(b, scopeBase, writer, func(img *pim.ArrayImage) {
			img.CmpConst(pim.PredLE, 0, l.KeyBits, hi, l.MatchCols[1], l.TmpGT, l.TmpEQ)
		})
	}
	andApply := func(b *mem.Backing, writer uint64) {
		l.forEachDataArray(b, scopeBase, writer, func(img *pim.ArrayImage) {
			img.ColOp(pim.OpAND, l.MatchCols[2], l.MatchCols[0], l.MatchCols[1])
		})
	}
	gather := l.gatherApply(scopeBase, 2)

	ops := []*mem.PIMProgram{
		{Name: "cmp_ge(key)", MicroOps: pim.CmpMicroOps(pim.PredGE, l.KeyBits, lo)},
		{Name: "cmp_le(key)", MicroOps: pim.CmpMicroOps(pim.PredLE, l.KeyBits, hi)},
		{Name: "and", MicroOps: 1},
		{Name: "gather", MicroOps: GatherMicroOpsPerArray * l.DataArrays},
	}
	if functional {
		ops[0].Apply = geGather
		ops[1].Apply = leApply
		ops[2].Apply = andApply
		ops[3].Apply = gather
	}
	return ops
}

// CompareSpec is one predicate term of a filter (TPC-H WHERE clauses).
type CompareSpec struct {
	Field int
	Pred  pim.Predicate
	// WidthBits of the compared prefix of the field (dates 32, quantities
	// 16, flags 8 ...).
	WidthBits int
	Const     uint64
	// Dst selects the match column (0..3) receiving the term result.
	Dst int
}

// CompileCompare builds the PIM op for one predicate term on every record
// of a scope.
func (l Layout) CompileCompare(scopeBase mem.Addr, spec CompareSpec, functional bool) *mem.PIMProgram {
	if spec.WidthBits <= 0 || spec.WidthBits > 64 {
		panic(fmt.Sprintf("pimdb: compare width %d", spec.WidthBits))
	}
	op := &mem.PIMProgram{
		Name:     fmt.Sprintf("cmp(f%d%s%d)", spec.Field, spec.Pred, spec.Const),
		MicroOps: pim.CmpMicroOps(spec.Pred, spec.WidthBits, spec.Const),
	}
	if functional {
		col := l.FieldCol(spec.Field)
		op.Apply = func(b *mem.Backing, writer uint64) {
			l.forEachDataArray(b, scopeBase, writer, func(img *pim.ArrayImage) {
				img.CmpConst(spec.Pred, col, spec.WidthBits, spec.Const, l.MatchCols[spec.Dst], l.TmpGT, l.TmpEQ)
			})
		}
	}
	return op
}

// CombineOp merges match columns.
type CombineOp struct {
	Op       pim.BoolOp
	OpName   string
	A, B, To int // match column indices
}

// CompileCombine builds one column-combine PIM op (AND/OR of two terms).
func (l Layout) CompileCombine(scopeBase mem.Addr, c CombineOp, functional bool) *mem.PIMProgram {
	op := &mem.PIMProgram{
		Name:     fmt.Sprintf("combine(%s m%d m%d->m%d)", c.OpName, c.A, c.B, c.To),
		MicroOps: 1,
	}
	if functional {
		op.Apply = func(b *mem.Backing, writer uint64) {
			l.forEachDataArray(b, scopeBase, writer, func(img *pim.ArrayImage) {
				img.ColOp(c.Op, l.MatchCols[c.To], l.MatchCols[c.A], l.MatchCols[c.B])
			})
		}
	}
	return op
}

// CompileGather packs match column src into the result rows.
func (l Layout) CompileGather(scopeBase mem.Addr, src int, functional bool) *mem.PIMProgram {
	op := &mem.PIMProgram{
		Name:     "gather",
		MicroOps: GatherMicroOpsPerArray * l.DataArrays,
	}
	if functional {
		op.Apply = l.gatherApply(scopeBase, src)
	}
	return op
}

// CompileAggregate models the in-PIM aggregation of full-query sections
// (TPC-H q1/q6/q22, [25]): a long bit-serial multiply-accumulate over the
// matched records. Functionally it sums the 32-bit prefix of field
// `field` over records whose match bit (column src) is set, writing the
// total to the scope's aggregate line.
func (l Layout) CompileAggregate(scopeBase mem.Addr, src, field, microOps int, functional bool) *mem.PIMProgram {
	op := &mem.PIMProgram{Name: "aggregate", MicroOps: microOps}
	if functional {
		col := l.FieldCol(field)
		op.Apply = func(b *mem.Backing, writer uint64) {
			var sum uint64
			for a := 0; a < l.DataArrays; a++ {
				img := pim.LoadArray(b, scopeBase, l.Geom, a)
				for r := 0; r < l.Geom.Rows; r++ {
					if img.Bit(r, l.MatchCols[src]) {
						sum += img.FieldBE(r, col, 32)
					}
				}
			}
			line := l.AggLine(scopeBase)
			b.WriteWord(line.Addr(), sum)
			b.SetWriter(line, writer)
		}
	}
	return op
}

// CompileCount builds the in-PIM COUNT aggregate: a per-array popcount of
// the match column reduced across arrays, with the scope total written to
// the aggregate line.
func (l Layout) CompileCount(scopeBase mem.Addr, src int, functional bool) *mem.PIMProgram {
	micro := l.DataArrays * (2*9*8 + 8) // log2(512)=9 reduction levels + accumulate
	op := &mem.PIMProgram{Name: "count", MicroOps: micro}
	if functional {
		op.Apply = func(b *mem.Backing, writer uint64) {
			var total uint64
			for a := 0; a < l.DataArrays; a++ {
				img := pim.LoadArray(b, scopeBase, l.Geom, a)
				n, _ := img.PopCountColumn(l.MatchCols[src], l.Geom.Rows)
				total += uint64(n)
			}
			line := l.AggLine(scopeBase)
			b.WriteWord(line.Addr(), total)
			b.SetWriter(line, writer)
		}
	}
	return op
}

// gatherApply moves match column src of every data array into the result
// array rows. The packed bit plane of a match column is exactly the
// result row's bit pattern, so each array's 512 match bits move as eight
// word stores instead of 512 single-bit copies.
func (l Layout) gatherApply(scopeBase mem.Addr, src int) func(*mem.Backing, uint64) {
	return func(b *mem.Backing, writer uint64) {
		res := pim.LoadArray(b, scopeBase, l.Geom, l.ResultArray)
		plane := make([]uint64, res.PlaneWords())
		for a := 0; a < l.DataArrays; a++ {
			img := pim.LoadArray(b, scopeBase, l.Geom, a)
			img.LoadPlane(l.MatchCols[src], plane)
			res.SetRowBits(a, plane, l.Geom.Rows)
		}
		res.Store(b, writer)
	}
}

func (l Layout) forEachDataArray(b *mem.Backing, scopeBase mem.Addr, writer uint64, fn func(*pim.ArrayImage)) {
	for a := 0; a < l.DataArrays; a++ {
		img := pim.LoadArray(b, scopeBase, l.Geom, a)
		fn(img)
		img.Store(b, writer)
	}
}

// TotalMicroOps sums a program sequence's micro-ops (latency estimation).
func TotalMicroOps(ops []*mem.PIMProgram) int {
	n := 0
	for _, op := range ops {
		n += op.MicroOps
	}
	return n
}
