// Package pimdb implements the PIMDB-style database organization the
// paper's workloads run on ([25], §VI-B): records stored one per crossbar
// row inside 2MB huge-page scopes, filters executed as bit-serial
// column-parallel compare programs, and per-array result bit-vectors
// gathered into host-readable result rows with a regular, non-continuous
// address pattern (the property §IV-B's SBV exploits).
package pimdb

import (
	"fmt"

	"bulkpim/internal/mem"
	"bulkpim/internal/pim"
)

// Layout maps records, fields, scratch columns and result rows onto the
// crossbar geometry of one scope.
//
// Geometry (per 2MB scope): 64 arrays x 512 rows x 512 columns; one row is
// one 64-byte cache line. Arrays 0..62 hold records, one per row (the
// paper's Fig. 2 organization: bitwise column ops combine columns of every
// record in parallel). Array 63 is the result array: its row a holds the
// packed match bit-vector of data array a — 512 bits, one line — so a
// scope's scan result is 63 consecutive lines at a fixed in-scope offset.
// Because scopes are 2MB aligned, result lines of every scope map to the
// same few LLC sets (the clustering of §IV-B).
//
// Record row layout (512 bits):
//
//	cols   0..63   key, big-endian bit-serial
//	cols  64..463  five 10-byte fields (byte-aligned at bytes 8..57)
//	cols 464..511  scratch: compare temporaries and match columns
//	               ("intermediate values" the paper notes PIM ops
//	               implicitly change, §II-A)
type Layout struct {
	Geom pim.Geometry

	DataArrays  int // arrays holding records (the last one is results)
	ResultArray int

	KeyBits    int
	Fields     int
	FieldBytes int

	// Scratch columns.
	TmpGT, TmpEQ int
	// MatchCols are result columns for predicate terms.
	MatchCols [4]int
}

// DefaultLayout returns the layout described above.
func DefaultLayout() Layout {
	g := pim.DefaultGeometry()
	return Layout{
		Geom:        g,
		DataArrays:  g.Arrays - 1,
		ResultArray: g.Arrays - 1,
		KeyBits:     64,
		Fields:      5,
		FieldBytes:  10,
		TmpGT:       464,
		TmpEQ:       465,
		MatchCols:   [4]int{466, 467, 468, 469},
	}
}

// RecordsPerArray returns rows per data array.
func (l Layout) RecordsPerArray() int { return l.Geom.Rows }

// RecordsPerScope returns the record capacity of one scope (~32K, paper
// Table II).
func (l Layout) RecordsPerScope() int { return l.DataArrays * l.Geom.Rows }

// ScopeOfRecord maps a global record position to its scope.
func (l Layout) ScopeOfRecord(pos int) mem.ScopeID {
	return mem.ScopeID(pos / l.RecordsPerScope())
}

// Slot returns the (array, row) of a record position within its scope.
func (l Layout) Slot(pos int) (array, row int) {
	in := pos % l.RecordsPerScope()
	return in / l.Geom.Rows, in % l.Geom.Rows
}

// RecordLine returns the cache line of a record position, given the scope
// base address.
func (l Layout) RecordLine(scopeBase mem.Addr, pos int) mem.LineAddr {
	array, row := l.Slot(pos)
	return l.Geom.LineOf(scopeBase, array, row)
}

// ResultLine returns the line holding data array a's match bit-vector.
func (l Layout) ResultLine(scopeBase mem.Addr, a int) mem.LineAddr {
	return l.Geom.LineOf(scopeBase, l.ResultArray, a)
}

// ResultRegion returns the contiguous result area of a scope (all data
// arrays' bit-vectors: DataArrays consecutive lines).
func (l Layout) ResultRegion(scopeBase mem.Addr) (mem.Addr, int) {
	return l.ResultLine(scopeBase, 0).Addr(), l.DataArrays * mem.LineSize
}

// AggLine returns the line used for aggregate outputs (full-query TPC-H
// sections): a row of the result array past the bit-vectors.
func (l Layout) AggLine(scopeBase mem.Addr) mem.LineAddr {
	return l.Geom.LineOf(scopeBase, l.ResultArray, l.DataArrays)
}

// FieldByteOff returns the byte offset of field f inside a record line.
func (l Layout) FieldByteOff(f int) int {
	if f < 0 || f >= l.Fields {
		panic(fmt.Sprintf("pimdb: field %d out of range", f))
	}
	return 8 + f*l.FieldBytes
}

// FieldCol returns the first bit column of field f.
func (l Layout) FieldCol(f int) int { return l.FieldByteOff(f) * 8 }

// EncodeRecord builds the 64-byte line image of a record: key bits in
// big-endian bit-serial order, fields as plain bytes.
func (l Layout) EncodeRecord(key uint64, fields [][]byte) []byte {
	line := make([]byte, mem.LineSize)
	for b := 0; b < l.KeyBits; b++ {
		if key&(1<<uint(l.KeyBits-1-b)) != 0 {
			line[b/8] |= 1 << uint(b%8)
		}
	}
	for f, data := range fields {
		off := l.FieldByteOff(f)
		copy(line[off:off+l.FieldBytes], data)
	}
	return line
}

// EncodeFieldBE writes a numeric value into field f of a record line image
// using the engine's big-endian bit-column convention (the first bit
// column of the field is the most significant bit), so CmpConst and
// FieldBE on the field see v. Text fields can use plain bytes; numeric
// fields that PIM programs compare must use this encoding.
func (l Layout) EncodeFieldBE(line []byte, f, widthBits int, v uint64) {
	base := l.FieldCol(f)
	for b := 0; b < widthBits; b++ {
		col := base + b
		bit := v&(1<<uint(widthBits-1-b)) != 0
		if bit {
			line[col/8] |= 1 << uint(col%8)
		} else {
			line[col/8] &^= 1 << uint(col%8)
		}
	}
}

// DecodeFieldBE reads back a numeric field written by EncodeFieldBE.
func (l Layout) DecodeFieldBE(line []byte, f, widthBits int) uint64 {
	base := l.FieldCol(f)
	var v uint64
	for b := 0; b < widthBits; b++ {
		col := base + b
		v <<= 1
		if line[col/8]&(1<<uint(col%8)) != 0 {
			v |= 1
		}
	}
	return v
}

// DecodeKey extracts the key from a record line image.
func (l Layout) DecodeKey(line []byte) uint64 {
	var key uint64
	for b := 0; b < l.KeyBits; b++ {
		key <<= 1
		if line[b/8]&(1<<uint(b%8)) != 0 {
			key |= 1
		}
	}
	return key
}

// WriteRecord stores a record image directly into backing memory
// (database initialization).
func (l Layout) WriteRecord(bk *mem.Backing, scopeBase mem.Addr, pos int, key uint64, fields [][]byte) {
	line := l.EncodeRecord(key, fields)
	bk.WriteLine(l.RecordLine(scopeBase, pos), line)
}

// ResultBit reads match bit `row` of data array a from a result line image.
func ResultBit(line []byte, row int) bool {
	return line[row/8]&(1<<uint(row%8)) != 0
}

// SetResultBit sets a match bit in a result line image (oracle builders).
func SetResultBit(line []byte, row int, v bool) {
	if v {
		line[row/8] |= 1 << uint(row%8)
	} else {
		line[row/8] &^= 1 << uint(row%8)
	}
}
