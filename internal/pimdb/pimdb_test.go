package pimdb

import (
	"testing"
	"testing/quick"

	"bulkpim/internal/mem"
	"bulkpim/internal/pim"
)

func TestLayoutGeometry(t *testing.T) {
	l := DefaultLayout()
	if l.RecordsPerScope() != 63*512 {
		t.Fatalf("records/scope = %d, want %d", l.RecordsPerScope(), 63*512)
	}
	if l.ScopeOfRecord(0) != 0 || l.ScopeOfRecord(l.RecordsPerScope()) != 1 {
		t.Fatal("scope mapping wrong")
	}
	a, r := l.Slot(l.Geom.Rows + 3)
	if a != 1 || r != 3 {
		t.Fatalf("slot = (%d,%d), want (1,3)", a, r)
	}
	// Field areas must not collide with the key or scratch columns.
	for f := 0; f < l.Fields; f++ {
		off := l.FieldByteOff(f)
		if off < 8 || off+l.FieldBytes > l.TmpGT/8 {
			t.Fatalf("field %d bytes [%d,%d) collide", f, off, off+l.FieldBytes)
		}
	}
}

func TestResultRegionIsContiguousAndScopeAligned(t *testing.T) {
	l := DefaultLayout()
	base := mem.DefaultPIMBase
	start, size := l.ResultRegion(base)
	if size != 63*mem.LineSize {
		t.Fatalf("result size = %d", size)
	}
	for a := 0; a < l.DataArrays; a++ {
		want := mem.LineOf(start + mem.Addr(a*mem.LineSize))
		if l.ResultLine(base, a) != want {
			t.Fatal("result lines not contiguous")
		}
	}
	// The same in-scope offset for every scope: LLC set clustering (§IV-B).
	base2 := base + mem.DefaultScopeSize
	if l.ResultLine(base2, 0).Index()-l.ResultLine(base, 0).Index() != mem.DefaultScopeSize/mem.LineSize {
		t.Fatal("result offset differs across scopes")
	}
	// With 2048 LLC sets, result lines of all scopes fall into few sets.
	sets := map[uint64]bool{}
	for scope := 0; scope < 8; scope++ {
		b := base + mem.Addr(scope)*mem.DefaultScopeSize
		for a := 0; a < l.DataArrays; a++ {
			sets[l.ResultLine(b, a).Index()&2047] = true
		}
	}
	if len(sets) != 63 {
		t.Fatalf("result lines of 8 scopes hit %d sets, want 63 (same sets every scope)", len(sets))
	}
}

func TestEncodeDecodeRecord(t *testing.T) {
	l := DefaultLayout()
	fields := make([][]byte, l.Fields)
	for f := range fields {
		fields[f] = make([]byte, l.FieldBytes)
		for i := range fields[f] {
			fields[f][i] = byte('a' + f + i)
		}
	}
	line := l.EncodeRecord(0xDEADBEEF12345678, fields)
	if got := l.DecodeKey(line); got != 0xDEADBEEF12345678 {
		t.Fatalf("key round trip: %#x", got)
	}
	for f := range fields {
		off := l.FieldByteOff(f)
		for i := range fields[f] {
			if line[off+i] != fields[f][i] {
				t.Fatalf("field %d byte %d wrong", f, i)
			}
		}
	}
}

func TestEncodeKeyMatchesEngineFieldBE(t *testing.T) {
	l := DefaultLayout()
	prop := func(key uint64) bool {
		b := mem.NewBacking()
		line := l.EncodeRecord(key, nil)
		b.WriteLine(l.Geom.LineOf(0, 0, 5), line)
		img := pim.LoadArray(b, 0, l.Geom, 0)
		return img.FieldBE(5, 0, 64) == key
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Functional range scan over one scope equals the brute-force oracle.
func TestRangeScanMatchesOracle(t *testing.T) {
	l := DefaultLayout()
	b := mem.NewBacking()
	base := mem.DefaultPIMBase
	// Write 2000 records with pseudo-random keys.
	n := 2000
	keys := make([]uint64, n)
	st := uint64(12345)
	for i := 0; i < n; i++ {
		st = st*6364136223846793005 + 1442695040888963407
		keys[i] = st % 100000
		l.WriteRecord(b, base, i, keys[i], nil)
	}
	lo, hi := uint64(20000), uint64(40000)
	for _, op := range l.CompileRangeScan(base, lo, hi, true) {
		op.Apply(b, 7)
	}
	// Check the packed result bits.
	line := make([]byte, mem.LineSize)
	for i := 0; i < n; i++ {
		a, r := l.Slot(i)
		b.ReadLine(l.ResultLine(base, a), line)
		want := keys[i] >= lo && keys[i] <= hi
		if ResultBit(line, r) != want {
			t.Fatalf("record %d (key %d): match=%v, want %v", i, keys[i], ResultBit(line, r), want)
		}
	}
	// Rows beyond n must not match (keys are zero; 0 < lo).
	a, r := l.Slot(n)
	b.ReadLine(l.ResultLine(base, a), line)
	if ResultBit(line, r) {
		t.Fatal("empty row matched")
	}
}

// Property: compare + combine programs equal direct evaluation on a small
// array population.
func TestFilterProgramsMatchOracle(t *testing.T) {
	l := DefaultLayout()
	preds := []pim.Predicate{pim.PredEQ, pim.PredLT, pim.PredGE}
	prop := func(vals [32]uint16, k1, k2 uint16, p1, p2 uint8) bool {
		b := mem.NewBacking()
		base := mem.DefaultPIMBase
		for i, v := range vals {
			line := l.EncodeRecord(uint64(i), nil)
			l.EncodeFieldBE(line, 0, 16, uint64(v))
			b.WriteLine(l.RecordLine(base, i), line)
		}
		pr1 := preds[int(p1)%len(preds)]
		pr2 := preds[int(p2)%len(preds)]
		ops := []*mem.PIMProgram{
			l.CompileCompare(base, CompareSpec{Field: 0, Pred: pr1, WidthBits: 16, Const: uint64(k1), Dst: 0}, true),
			l.CompileCompare(base, CompareSpec{Field: 0, Pred: pr2, WidthBits: 16, Const: uint64(k2), Dst: 1}, true),
			l.CompileCombine(base, CombineOp{Op: pim.OpOR, OpName: "or", A: 0, B: 1, To: 2}, true),
			l.CompileGather(base, 2, true),
		}
		for _, op := range ops {
			op.Apply(b, 3)
		}
		line := make([]byte, mem.LineSize)
		b.ReadLine(l.ResultLine(base, 0), line)
		for i, v := range vals {
			want := pr1.Eval(uint64(v), uint64(k1)) || pr2.Eval(uint64(v), uint64(k2))
			if ResultBit(line, i) != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestAggregateSumsMatchedRecords(t *testing.T) {
	l := DefaultLayout()
	b := mem.NewBacking()
	base := mem.DefaultPIMBase
	var want uint64
	for i := 0; i < 100; i++ {
		line := l.EncodeRecord(uint64(i), nil)
		l.EncodeFieldBE(line, 0, 32, uint64(i))
		b.WriteLine(l.RecordLine(base, i), line)
	}
	// Match even keys via compare program on the key.
	ops := l.CompileRangeScan(base, 0, 49, true)
	for _, op := range ops {
		op.Apply(b, 1)
	}
	for i := 0; i < 50; i++ {
		want += uint64(i)
	}
	agg := l.CompileAggregate(base, 2, 0, 4000, true)
	agg.Apply(b, 2)
	if got := b.ReadWord(l.AggLine(base).Addr()); got != want {
		t.Fatalf("aggregate = %d, want %d", got, want)
	}
	if agg.MicroOps != 4000 {
		t.Fatal("aggregate micro-ops not honored")
	}
}

func TestCompileCountMatchesOracle(t *testing.T) {
	l := DefaultLayout()
	b := mem.NewBacking()
	base := mem.DefaultPIMBase
	n := 700
	for i := 0; i < n; i++ {
		l.WriteRecord(b, base, i, uint64(i)+1, nil)
	}
	// Match keys 1..200 (records 0..199).
	for _, op := range l.CompileRangeScan(base, 1, 200, true) {
		op.Apply(b, 9)
	}
	count := l.CompileCount(base, 2, true)
	count.Apply(b, 10)
	if got := b.ReadWord(l.AggLine(base).Addr()); got != 200 {
		t.Fatalf("count = %d, want 200", got)
	}
	if count.MicroOps <= 0 {
		t.Fatal("count op has no cost")
	}
}

func TestMicroOpAccounting(t *testing.T) {
	l := DefaultLayout()
	ops := l.CompileRangeScan(mem.DefaultPIMBase, 10, 20, false)
	if len(ops) != 4 {
		t.Fatalf("scan compiles to %d ops, want 4 (fine-grained ISA)", len(ops))
	}
	for _, op := range ops {
		if op.MicroOps <= 0 {
			t.Fatalf("op %s has no cost", op.Name)
		}
		if op.Apply != nil {
			t.Fatal("timing-only compile must not attach Apply")
		}
	}
	if TotalMicroOps(ops) < l.KeyBits*2 {
		t.Fatal("scan cost implausibly low")
	}
}
