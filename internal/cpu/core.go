package cpu

import (
	"fmt"

	"bulkpim/internal/cache"
	"bulkpim/internal/core"
	"bulkpim/internal/mem"
	"bulkpim/internal/noc"
	"bulkpim/internal/sim"
	"bulkpim/internal/stats"
	"bulkpim/internal/trace"
)

// Core executes one thread's instruction stream under a consistency model.
// Loads and stores follow x86-TSO (store buffer with forwarding, loads may
// bypass pending stores to other lines); PIM ops follow the model's issuing
// process of §V.
//
// Execution states: a running core issues one instruction per step. An
// instruction that cannot proceed yet either parks as a *retry* (the gate
// is re-evaluated on the next wake: gated loads, full store buffer, PIM
// credit exhaustion) or leaves the core *waiting* for a specific completion
// callback (load fills, ACK of an atomic PIM op, barriers). Spurious wakes
// never advance the stream: they only re-evaluate parked instructions.
//
// The steady-state memory path is allocation-free: requests come from Pool,
// completions are package-level functions carried on the request
// (OnDone/Ctx/Arg), per-burst trackers and store data buffers are recycled,
// and every recurring event callback is hoisted and scheduled via the
// kernel's (fn, ctx) form.
type Core struct {
	k  *sim.Kernel
	ID int

	Model  core.Model
	L1     *cache.L1
	LLC    *cache.LLC
	Direct *noc.Link // core -> LLC path for PIM ops, flushes, uncacheable
	// Reply is the LLC -> core response link (the same link the LLC uses
	// for fills); requests that complete at the memory controller hop back
	// over it before their core-side completion runs.
	Reply  *noc.Link
	Scopes *mem.ScopeMap

	// Pool supplies requests and store-data buffers. NewCore creates a
	// private pool; the system builder overrides it with the shared one.
	Pool *mem.RequestPool

	// HB, when non-nil and enabled, records the happens-before relation.
	HB *core.Recorder
	// Tracer, when enabled for CatCPU, logs instruction issue and ACKs.
	Tracer *trace.Tracer

	// Timing knobs.
	IssueCost      sim.Tick // per-instruction issue cost
	L1HitLatency   sim.Tick
	WordExtra      sim.Tick // per extra word touched within a hit line
	MLP            int      // outstanding burst misses
	StoreBufferCap int
	// PIMCredits bounds un-ACKed PIM ops in the memory subsystem (NoC
	// flow control; ordering models impose stricter gates on top).
	PIMCredits int

	thread Thread
	done   bool
	OnDone func(coreID int)

	state      runState
	pending    Instr
	wakeQueued bool
	// awaitSeq matches completion callbacks to the await they belong to;
	// a stale callback (e.g. a scheduled burst poll firing after the burst
	// finished) must never resume a later wait.
	awaitSeq uint64

	// Scalar-load completion state. The core awaits each load, so at most
	// one scalar load is outstanding and its continuation state lives here
	// instead of in a per-request closure.
	ldIn   Instr
	ldEv   core.EventID
	ldLine mem.LineAddr
	ldTok  uint64

	// Flush completion state (one flush instruction outstanding at most).
	flushRemaining int
	flushTok       uint64

	// Store buffer (TSO FIFO; PIM ops ride it under the store model).
	sb        []sbEntry
	sbWaiting bool
	draining  bool

	// burstFree recycles burst trackers.
	burstFree []*burstState

	// Scope-model per-scope PIM queues (non-FIFO entry point, §V-D).
	pimQueues map[mem.ScopeID][]*pimEntry

	// Tracking.
	outLoads     int
	pimUnacked   map[mem.ScopeID]int // sent, ACK pending (atomic/scope)
	pimCreditUse int                 // flow-control credits in use
	fencePending map[mem.ScopeID]int // outstanding scope fences
	pimFenceWait bool
	ackToken     uint64

	reqID uint64

	lastInstr InstrKind

	// Hoisted event callbacks and completion functions, built once in
	// NewCore.
	stepFn       func(any)
	wakeFn       func(any)
	drainFn      func(any)
	fwdPIMFn     func(any)
	directFn     func(any)
	uncLoadDone  func(*mem.Request, any) // stage 1: hop back over Reply
	uncLoadFin   func(any)               // stage 2: core-side completion
	uncBurstDone func(*mem.Request, any)
	uncBurstFin  func(any)
	uncStoreDone func(*mem.Request, any)
	uncStoreFin  func(any)
	flushDoneFn  func(*mem.Request, any)
	fenceDoneFn  func(*mem.Request, any)

	// Stats.
	Instrs      stats.Counter
	LoadsIssued stats.Counter
	PIMIssued   stats.Counter
	Stalls      stats.Counter

	FinishedAt sim.Tick
}

type runState uint8

const (
	stRunning runState = iota
	stRetry            // pending instruction re-evaluated on wake
	stWaiting          // a completion callback will resume the core
)

type sbEntry struct {
	line mem.LineAddr
	off  int
	// data is a pool-owned buffer (released when the entry retires).
	data   []byte
	scope  mem.ScopeID
	writer core.EventID
	// pim marks a PIM op travelling through the FIFO entry point (store
	// model).
	pim      *pimEntry
	issued   bool // pim/uncached store sent, waiting completion
	uncached bool
}

type pimEntry struct {
	req *mem.Request
	ev  core.EventID
}

// NewCore builds a core; wire the caches/links before Start.
func NewCore(k *sim.Kernel, id int, model core.Model) *Core {
	c := &Core{
		k:              k,
		ID:             id,
		Model:          model,
		IssueCost:      1,
		L1HitLatency:   3,
		WordExtra:      1,
		MLP:            8,
		StoreBufferCap: 32,
		PIMCredits:     48,
		Pool:           mem.NewRequestPool(),
		pimQueues:      make(map[mem.ScopeID][]*pimEntry),
		pimUnacked:     make(map[mem.ScopeID]int),
		fencePending:   make(map[mem.ScopeID]int),
	}
	c.stepFn = func(any) { c.step() }
	c.wakeFn = func(any) {
		c.wakeQueued = false
		if c.state != stRetry {
			return
		}
		c.state = stRunning
		in := c.pending
		c.exec(in)
	}
	c.drainFn = func(any) {
		c.draining = false
		c.drainStep()
	}
	c.fwdPIMFn = func(x any) { c.L1.ForwardPIM(x.(*mem.Request)) }
	c.directFn = func(x any) { c.LLC.Receive(x.(*mem.Request)) }
	c.uncLoadFin = func(x any) {
		r := x.(*mem.Request)
		c.outLoads--
		if c.hbOn() {
			c.HB.RecordRead(c.ldEv, c.ldLine, r.Writer)
		}
		c.deliverLoad(c.ldIn, c.ldLine, r.Data)
		c.Pool.Put(r)
		c.resume(c.ldTok, 0)
	}
	c.uncLoadDone = func(r *mem.Request, _ any) { c.Reply.SendCtx(c.uncLoadFin, r) }
	c.uncBurstFin = func(x any) {
		r := x.(*mem.Request)
		bs := r.Ctx.(*burstState)
		bs.inflight--
		if r.Arg != 0 { // first word of the line
			c.deliverLoad(bs.in, r.Line, r.Data)
		}
		c.Pool.Put(r)
		c.burstStep(bs)
	}
	c.uncBurstDone = func(r *mem.Request, _ any) { c.Reply.SendCtx(c.uncBurstFin, r) }
	c.uncStoreFin = func(x any) {
		c.Pool.Put(x.(*mem.Request))
		c.popStore()
	}
	c.uncStoreDone = func(r *mem.Request, _ any) { c.Reply.SendCtx(c.uncStoreFin, r) }
	c.flushDoneFn = func(r *mem.Request, _ any) {
		c.Pool.Put(r)
		c.flushRemaining--
		if c.flushRemaining == 0 {
			c.resume(c.flushTok, 0)
		}
	}
	c.fenceDoneFn = func(r *mem.Request, _ any) {
		s := r.Scope
		c.Pool.Put(r)
		c.fencePending[s]--
		if c.fencePending[s] == 0 {
			delete(c.fencePending, s)
		}
		c.wake()
	}
	return c
}

// Start begins executing t.
func (c *Core) Start(t Thread) {
	c.thread = t
	c.k.ScheduleCtx(0, c.stepFn, nil)
}

// Done reports thread completion.
func (c *Core) Done() bool { return c.done }

// wake re-evaluates a parked (retry) instruction. Wakes while running or
// waiting are ignored: completions resume explicitly.
func (c *Core) wake() {
	if c.done || c.state != stRetry || c.wakeQueued {
		return
	}
	c.wakeQueued = true
	c.k.ScheduleCtx(0, c.wakeFn, nil)
}

// resume continues the stream after the completion callback matching
// token (issued by await). Stale or duplicate callbacks are ignored.
func (c *Core) resume(token uint64, after sim.Tick) {
	if c.done || c.state != stWaiting || token != c.awaitSeq {
		return
	}
	c.state = stRunning
	c.next(after)
}

// park re-tries in on the next wake.
func (c *Core) park(in Instr) {
	c.Stalls.Inc()
	c.state = stRetry
	c.pending = in
}

// await leaves the core waiting for an explicit resume and returns the
// token the resuming callback must present.
func (c *Core) await() uint64 {
	c.state = stWaiting
	c.awaitSeq++
	return c.awaitSeq
}

// step issues one instruction.
func (c *Core) step() {
	if c.done || c.state != stRunning {
		return
	}
	instr, ok := c.thread.Next()
	if !ok {
		c.retire()
		return
	}
	c.Instrs.Inc()
	c.lastInstr = instr.Kind
	if c.Tracer.Enabled(trace.CatCPU) {
		c.Tracer.Emit(trace.CatCPU, fmt.Sprintf("core%d", c.ID), "issue kind=%d addr=%#x scope=%d %s",
			instr.Kind, uint64(instr.Addr), instr.Scope, instr.Label)
	}
	c.exec(instr)
}

func (c *Core) retire() {
	c.done = true
	c.FinishedAt = c.k.Now()
	if c.OnDone != nil {
		c.OnDone(c.ID)
	}
}

func (c *Core) next(after sim.Tick) {
	c.k.ScheduleCtx(after+c.IssueCost, c.stepFn, nil)
}

func (c *Core) exec(in Instr) {
	switch in.Kind {
	case InstrCompute:
		c.next(in.Cycles)
	case InstrStore:
		c.execStore(in)
	case InstrLoad:
		c.execLoad(in)
	case InstrLoadBurst:
		c.execBurst(in)
	case InstrPIMOp:
		c.execPIM(in)
	case InstrFlush:
		c.execFlush(in)
	case InstrFenceFull:
		c.execFenceFull(in)
	case InstrFencePIM:
		c.execFencePIM(in)
	case InstrScopeFence:
		c.execScopeFence(in)
	case InstrBarrier:
		tok := c.await()
		in.Barrier.Arrive(func() { c.resume(tok, 0) })
	default:
		panic("cpu: unknown instruction")
	}
}

func (c *Core) scopeOf(a mem.Addr) mem.ScopeID { return c.Scopes.ScopeOf(a) }

func (c *Core) newReq(kind mem.ReqKind, line mem.LineAddr, scope mem.ScopeID) *mem.Request {
	c.reqID++
	r := c.Pool.Get()
	r.ID = c.reqID<<8 | uint64(c.ID)
	r.Kind, r.Line, r.Scope = kind, line, scope
	r.Core = c.ID
	r.PIMEnabled = scope != mem.NoScope
	return r
}

// ---- stores ----

func (c *Core) execStore(in Instr) {
	if len(c.sb) >= c.StoreBufferCap {
		c.sbWaiting = true
		c.park(in)
		return
	}
	scope := c.scopeOf(in.Addr)
	line := mem.LineOf(in.Addr)
	var ev core.EventID
	if c.hbOn() {
		ev = c.HB.RecordOp(c.ID, core.OpRef{Class: core.OpStore, Scope: scope, Line: line}, in.Label)
	}
	data := c.Pool.GetLine()[:len(in.Data)]
	copy(data, in.Data)
	c.sb = append(c.sb, sbEntry{
		line: line, off: int(in.Addr - line.Addr()), data: data,
		scope: scope, writer: ev,
		uncached: c.Model == core.Uncacheable && scope != mem.NoScope,
	})
	c.kickDrain()
	c.next(0)
}

func (c *Core) kickDrain() {
	if c.draining || len(c.sb) == 0 {
		return
	}
	c.draining = true
	c.k.ScheduleCtx(1, c.drainFn, nil)
}

// exclFillDone is the exclusive-fill continuation for the store-buffer
// head: drainStep froze the head (issued=true), so the entry to retire is
// always sb[0].
func exclFillDone(ctx any) {
	c := ctx.(*Core)
	e := &c.sb[0]
	if !c.L1.TryStore(e.line, e.off, e.data, uint64(e.writer)) {
		panic("cpu: store failed after exclusive fill")
	}
	if c.hbOn() {
		c.HB.RecordWrite(e.writer, e.line)
	}
	c.popStore()
}

// drainStep retires the store buffer head (TSO: stores leave in order; a
// held head holds everything behind it).
func (c *Core) drainStep() {
	if len(c.sb) == 0 {
		c.drainProgressed()
		return
	}
	e := &c.sb[0]
	if e.issued {
		return // completion resumes the drain
	}
	if e.pim != nil {
		// Store-model PIM op at the entry point head (Fig. 6b): send and
		// hold everything behind it until the ACK.
		e.issued = true
		c.pimCreditUse++
		c.sendDirect(e.pim.req)
		return
	}
	// Scope model: a store to a scope with an in-flight PIM op is held
	// (same-scope order), holding later stores per TSO.
	if c.Model == core.Scope && e.scope != mem.NoScope && c.pimPendingTo(e.scope) > 0 {
		return // ACK resumes via kickDrain
	}
	if e.uncached {
		e.issued = true
		req := c.newReq(mem.ReqStore, e.line, e.scope)
		req.Uncacheable = true
		req.Data = e.data
		req.Off, req.Size = e.off, len(e.data)
		req.Writer = uint64(e.writer)
		req.OnDone = c.uncStoreDone
		c.sendDirect(req)
		return
	}
	if c.L1.TryStore(e.line, e.off, e.data, uint64(e.writer)) {
		if c.hbOn() {
			c.HB.RecordWrite(e.writer, e.line)
		}
		c.popStore()
		return
	}
	// Need write permission.
	e.issued = true
	req := c.newReq(mem.ReqLoad, e.line, e.scope)
	req.Excl = true
	c.L1.RequestLine(req, cache.FillWaiter{}, cache.ExclWaiter{Fn: exclFillDone, Ctx: c})
}

// popStore retires the store-buffer head, releasing its data buffer. The
// buffer is shifted out in place so the backing array never reallocates.
func (c *Core) popStore() {
	head := c.sb[0]
	scope := head.scope
	if head.data != nil {
		c.Pool.PutLine(head.data)
	}
	n := copy(c.sb, c.sb[1:])
	c.sb[n] = sbEntry{}
	c.sb = c.sb[:n]
	c.drainProgressed()
	c.tryLaunchScopePIM(scope)
	c.kickDrain()
}

func (c *Core) drainProgressed() {
	if c.sbWaiting && len(c.sb) < c.StoreBufferCap {
		c.sbWaiting = false
	}
	c.wake()
}

// sbForward searches the store buffer for the newest store covering the
// read (TSO store-to-load forwarding).
func (c *Core) sbForward(a mem.Addr, size int) ([]byte, core.EventID, bool) {
	line := mem.LineOf(a)
	off := int(a - line.Addr())
	for i := len(c.sb) - 1; i >= 0; i-- {
		e := &c.sb[i]
		if e.pim != nil || e.line != line {
			continue
		}
		if off >= e.off && off+size <= e.off+len(e.data) {
			return e.data[off-e.off : off-e.off+size], e.writer, true
		}
	}
	return nil, 0, false
}

// sbHasLine reports a pending store to the line (loads must not pass it
// when forwarding cannot satisfy them).
func (c *Core) sbHasLine(line mem.LineAddr) bool {
	for i := range c.sb {
		if c.sb[i].pim == nil && c.sb[i].line == line {
			return true
		}
	}
	return false
}

// ---- loads ----

// loadGated reports whether the model holds back a load to scope.
func (c *Core) loadGated(scope mem.ScopeID) bool {
	if scope == mem.NoScope {
		return false
	}
	switch c.Model {
	case core.Store, core.Scope:
		// Loads to the scope of a pending PIM op wait for its ACK (§V-C/D).
		return c.pimPendingTo(scope) > 0
	case core.ScopeRelaxed:
		return c.fencePending[scope] > 0
	default:
		return false
	}
}

// pimPendingTo counts PIM ops to scope that are buffered or un-ACKed.
func (c *Core) pimPendingTo(scope mem.ScopeID) int {
	n := c.pimUnacked[scope]
	for i := range c.sb {
		if c.sb[i].pim != nil && c.sb[i].scope == scope {
			n++
		}
	}
	n += len(c.pimQueues[scope])
	return n
}

func (c *Core) totalPIMPending() int {
	n := c.pimCreditUse
	for i := range c.sb {
		if c.sb[i].pim != nil && !c.sb[i].issued {
			n++
		}
	}
	for _, q := range c.pimQueues {
		n += len(q)
	}
	return n
}

// loadFillDone is the cached-load fill continuation; the core awaits each
// scalar load, so its state (ldIn/ldEv/ldTok) lives on the Core.
func loadFillDone(ctx any, line mem.LineAddr, data []byte, writer uint64) {
	c := ctx.(*Core)
	c.outLoads--
	if c.hbOn() {
		c.HB.RecordRead(c.ldEv, line, writer)
	}
	c.deliverLoad(c.ldIn, line, data)
	c.resume(c.ldTok, 0)
}

func (c *Core) execLoad(in Instr) {
	size := in.Size
	if size <= 0 {
		size = mem.WordSize
	}
	scope := c.scopeOf(in.Addr)
	line := mem.LineOf(in.Addr)
	if c.loadGated(scope) {
		c.park(in)
		return
	}
	var ev core.EventID
	if c.hbOn() {
		ev = c.HB.RecordOp(c.ID, core.OpRef{Class: core.OpLoad, Scope: scope, Line: line}, in.Label)
	}
	c.LoadsIssued.Inc()
	// TSO store-to-load forwarding.
	if data, writer, ok := c.sbForward(in.Addr, size); ok {
		if c.hbOn() {
			c.HB.RecordRead(ev, line, writer)
		}
		c.deliverLoad(in, line, data)
		c.next(1)
		return
	}
	if c.sbHasLine(line) {
		// Partial overlap with a pending store: wait for the drain.
		c.park(in)
		c.kickDrain()
		return
	}
	if c.Model == core.Uncacheable && scope != mem.NoScope {
		req := c.newReq(mem.ReqLoad, line, scope)
		req.Uncacheable = true
		req.Off, req.Size = int(in.Addr-line.Addr()), size
		c.outLoads++
		c.ldIn, c.ldEv, c.ldLine = in, ev, line
		c.ldTok = c.await()
		req.OnDone = c.uncLoadDone
		c.sendDirect(req)
		return
	}
	if data, writer, ok := c.L1.TryLoad(line); ok {
		if c.hbOn() {
			c.HB.RecordRead(ev, line, writer)
		}
		c.deliverLoad(in, line, data)
		c.next(c.L1HitLatency)
		return
	}
	req := c.newReq(mem.ReqLoad, line, scope)
	c.outLoads++
	c.ldIn, c.ldEv, c.ldLine = in, ev, line
	c.ldTok = c.await()
	c.L1.RequestLine(req, cache.FillWaiter{Fn: loadFillDone, Ctx: c}, cache.ExclWaiter{})
}

func (c *Core) deliverLoad(in Instr, line mem.LineAddr, data []byte) {
	if in.OnData != nil {
		in.OnData(line, data)
	}
}

// ---- bursts ----

type burstState struct {
	c        *Core
	in       Instr
	lines    []mem.LineAddr
	words    []int
	idx      int
	inflight int
	// polls counts scheduled retryBurst callbacks still in flight; the
	// tracker is recycled only when none remain, so a stale poll can
	// never poke a reused tracker.
	polls int
	token uint64
	done  bool
}

func (c *Core) getBurst(in Instr) *burstState {
	if n := len(c.burstFree); n > 0 {
		bs := c.burstFree[n-1]
		c.burstFree = c.burstFree[:n-1]
		bs.in = in
		return bs
	}
	return &burstState{c: c, in: in}
}

func (c *Core) maybeFreeBurst(bs *burstState) {
	if bs.done && bs.inflight == 0 && bs.polls == 0 {
		bs.in = Instr{}
		bs.lines = bs.lines[:0]
		bs.words = bs.words[:0]
		bs.idx, bs.token = 0, 0
		bs.done = false
		c.burstFree = append(c.burstFree, bs)
	}
}

// burstPoll is the retryBurst continuation.
func burstPoll(x any) {
	bs := x.(*burstState)
	bs.polls--
	bs.c.burstStep(bs)
}

// burstFillDone is the cached fill continuation of one burst line.
func burstFillDone(ctx any, line mem.LineAddr, data []byte, _ uint64) {
	bs := ctx.(*burstState)
	bs.inflight--
	bs.c.deliverLoad(bs.in, line, data)
	bs.c.burstStep(bs)
}

func (c *Core) execBurst(in Instr) {
	// Bursts read PIM results and records; drain the store buffer first so
	// reads never race the thread's own pending stores.
	if len(c.sb) > 0 {
		c.park(in)
		c.kickDrain()
		return
	}
	bs := c.getBurst(in)
	for _, r := range in.Burst {
		if r.Bytes <= 0 {
			continue
		}
		first := mem.LineOf(r.Start)
		last := mem.LineOf(r.Start + mem.Addr(r.Bytes) - 1)
		for l := first; ; l += mem.LineSize {
			lo := max64(uint64(l.Addr()), uint64(r.Start))
			hi := min64(uint64(l.Addr())+mem.LineSize, uint64(r.Start)+uint64(r.Bytes))
			words := int(hi-lo+mem.WordSize-1) / mem.WordSize
			bs.lines = append(bs.lines, l)
			bs.words = append(bs.words, words)
			if l == last {
				break
			}
		}
	}
	if len(bs.lines) == 0 {
		bs.done = true
		c.maybeFreeBurst(bs)
		c.next(0)
		return
	}
	bs.token = c.await()
	c.burstStep(bs)
}

func (c *Core) burstStep(bs *burstState) {
	if bs.done {
		c.maybeFreeBurst(bs) // stale poll/completion after the burst ended
		return
	}
	for bs.idx < len(bs.lines) {
		line := bs.lines[bs.idx]
		words := bs.words[bs.idx]
		scope := c.scopeOf(line.Addr())
		if c.loadGated(scope) {
			c.retryBurst(bs, 4) // poll: ACK/fence completion clears the gate
			return
		}
		if bs.inflight >= c.MLP {
			return // a completion continues the burst
		}
		bs.idx++
		c.LoadsIssued.Inc()
		extra := c.WordExtra * sim.Tick(words-1)
		if c.Model == core.Uncacheable && scope != mem.NoScope {
			// Every word is a separate memory transaction.
			for w := 0; w < words; w++ {
				bs.inflight++
				req := c.newReq(mem.ReqLoad, line, scope)
				req.Uncacheable = true
				req.Off, req.Size = w*mem.WordSize, mem.WordSize
				if w == 0 {
					req.Arg = 1 // deliver data once per line
				}
				req.OnDone = c.uncBurstDone
				req.Ctx = bs
				c.sendDirect(req)
			}
			if bs.inflight >= c.MLP {
				return
			}
			continue
		}
		if data, _, ok := c.L1.TryLoad(line); ok {
			c.deliverLoad(bs.in, line, data)
			c.retryBurst(bs, c.L1HitLatency+extra)
			return
		}
		bs.inflight++
		req := c.newReq(mem.ReqLoad, line, scope)
		c.L1.RequestLine(req, cache.FillWaiter{Fn: burstFillDone, Ctx: bs}, cache.ExclWaiter{})
	}
	if bs.inflight == 0 {
		bs.done = true
		tok := bs.token
		c.maybeFreeBurst(bs)
		c.resume(tok, 0) // burst complete
	}
}

func (c *Core) retryBurst(bs *burstState, after sim.Tick) {
	bs.polls++
	c.k.ScheduleCtx(after, burstPoll, bs)
}

// ---- PIM ops ----

// buildPIMReq constructs a PIM-op request. PIM requests are deliberately
// NOT pooled: the ACK path compares request identity (see OnPIMAck) and
// the request outlives its controller-side completion until the module
// finishes, so recycling would alias in-flight ops.
func (c *Core) buildPIMReq(in Instr) *pimEntry {
	c.reqID++
	req := &mem.Request{
		ID: c.reqID<<8 | uint64(c.ID), Kind: mem.ReqPIMOp,
		Line: mem.LineOf(c.Scopes.ScopeBase(in.Scope)), Scope: in.Scope,
		Core: c.ID, PIMEnabled: in.Scope != mem.NoScope,
	}
	req.PIM = &mem.PIMCommand{Scope: in.Scope, Program: in.Prog}
	var ev core.EventID
	if c.hbOn() {
		ev = c.HB.RecordOp(c.ID, core.OpRef{Class: core.OpPIM, Scope: in.Scope}, in.Label)
	}
	req.Writer = uint64(ev)
	return &pimEntry{req: req, ev: ev}
}

func (c *Core) execPIM(in Instr) {
	// Flow control: bound un-ACKed PIM ops in the memory subsystem.
	if c.totalPIMPending() >= c.PIMCredits {
		c.park(in)
		return
	}
	switch c.Model {
	case core.Atomic:
		// Fig. 6a: a fence around the op, then stall until the ACK.
		if len(c.sb) > 0 || c.outLoads > 0 {
			c.park(in)
			c.kickDrain()
			return
		}
		e := c.buildPIMReq(in)
		c.PIMIssued.Inc()
		c.pimUnacked[in.Scope]++
		c.pimCreditUse++
		c.ackToken = c.await() // the ACK resumes the core
		c.sendDirect(e.req)
	case core.Store:
		// Fig. 6b: commit immediately; the op rides the FIFO entry point.
		if len(c.sb) >= c.StoreBufferCap {
			c.sbWaiting = true
			c.park(in)
			return
		}
		e := c.buildPIMReq(in)
		c.PIMIssued.Inc()
		c.sb = append(c.sb, sbEntry{scope: in.Scope, pim: e})
		c.kickDrain()
		c.next(1)
	case core.Scope:
		// §V-D: non-FIFO entry point; ops queue per scope.
		e := c.buildPIMReq(in)
		c.PIMIssued.Inc()
		if c.pimUnacked[in.Scope] > 0 || len(c.pimQueues[in.Scope]) > 0 || c.sbHasScopeStore(in.Scope) {
			c.pimQueues[in.Scope] = append(c.pimQueues[in.Scope], e)
		} else {
			c.pimUnacked[in.Scope]++
			c.pimCreditUse++
			c.sendDirect(e.req)
		}
		c.next(1)
	case core.ScopeRelaxed:
		// Fig. 6c: issue at commit, through all cache levels.
		if c.fencePending[in.Scope] > 0 {
			c.park(in)
			return
		}
		e := c.buildPIMReq(in)
		c.PIMIssued.Inc()
		c.pimCreditUse++
		c.L1.ForwardPIM(e.req)
		c.next(1)
	default:
		// Baselines: fire and forget toward the memory controller.
		e := c.buildPIMReq(in)
		c.PIMIssued.Inc()
		c.pimCreditUse++
		c.sendDirect(e.req)
		c.next(1)
	}
}

// sbHasScopeStore reports a buffered store to the scope (a scope-model PIM
// op must not pass it).
func (c *Core) sbHasScopeStore(scope mem.ScopeID) bool {
	for i := range c.sb {
		if c.sb[i].pim == nil && c.sb[i].scope == scope {
			return true
		}
	}
	return false
}

// tryLaunchScopePIM sends the next queued scope-model PIM op for scope if
// its gates cleared.
func (c *Core) tryLaunchScopePIM(scope mem.ScopeID) {
	if c.Model != core.Scope {
		return
	}
	q := c.pimQueues[scope]
	if len(q) == 0 || c.pimUnacked[scope] > 0 || c.sbHasScopeStore(scope) {
		return
	}
	e := q[0]
	c.pimQueues[scope] = q[1:]
	if len(c.pimQueues[scope]) == 0 {
		delete(c.pimQueues, scope)
	}
	c.pimUnacked[scope]++
	c.pimCreditUse++
	c.sendDirect(e.req)
}

// sendDirect routes a request over the core's direct link to the LLC.
func (c *Core) sendDirect(req *mem.Request) {
	c.Direct.SendCtx(c.directFn, req)
}

// OnPIMAck handles the memory controller's ACK wire (always delivered; the
// ordering models use it as a gate, the rest as flow-control credit).
func (c *Core) OnPIMAck(req *mem.Request) {
	if c.Tracer.Enabled(trace.CatCPU) {
		c.Tracer.Emit(trace.CatCPU, fmt.Sprintf("core%d", c.ID), "pim-ack scope=%d", req.Scope)
	}
	c.pimCreditUse--
	switch c.Model {
	case core.Atomic:
		c.pimUnacked[req.Scope]--
		c.resume(c.ackToken, 0) // the stalled PIM instruction completes
	case core.Store:
		// The FIFO head was this PIM op; retire it and resume the drain.
		if len(c.sb) > 0 && c.sb[0].pim != nil && c.sb[0].pim.req == req {
			n := copy(c.sb, c.sb[1:])
			c.sb[n] = sbEntry{}
			c.sb = c.sb[:n]
		}
		c.drainProgressed()
		c.kickDrain()
	case core.Scope:
		c.pimUnacked[req.Scope]--
		if c.pimUnacked[req.Scope] == 0 {
			delete(c.pimUnacked, req.Scope)
		}
		c.tryLaunchScopePIM(req.Scope)
		c.kickDrain() // held same-scope stores may proceed
		c.wake()
	default:
		c.wake()
	}
	if c.pimFenceWait && c.totalPIMPending() == 0 {
		c.pimFenceWait = false
		c.wake()
	}
}

// ---- flushes and fences ----

func (c *Core) execFlush(in Instr) {
	if len(in.Lines) == 0 {
		c.next(0)
		return
	}
	c.flushRemaining = len(in.Lines)
	c.flushTok = c.await()
	for _, line := range in.Lines {
		req := c.newReq(mem.ReqFlush, line, c.scopeOf(line.Addr()))
		req.OnDone = c.flushDoneFn
		c.sendDirect(req)
	}
}

func (c *Core) execFenceFull(in Instr) {
	if len(c.sb) > 0 || c.outLoads > 0 || c.ackTracked() > 0 {
		c.park(in)
		c.kickDrain()
		return
	}
	if c.hbOn() {
		c.HB.RecordOp(c.ID, core.OpRef{Class: core.OpFenceFull, Scope: mem.NoScope}, "fence")
	}
	c.next(1)
}

// ackTracked counts un-ACKed PIM ops for models whose fences wait on them.
func (c *Core) ackTracked() int {
	if !c.Model.RequiresACK() {
		return 0
	}
	n := 0
	for _, v := range c.pimUnacked {
		n += v
	}
	for _, q := range c.pimQueues {
		n += len(q)
	}
	return n
}

func (c *Core) execFencePIM(in Instr) {
	if c.totalPIMPending() > 0 {
		c.pimFenceWait = true
		c.park(in)
		return
	}
	if c.hbOn() {
		c.HB.RecordOp(c.ID, core.OpRef{Class: core.OpFencePIM, Scope: mem.NoScope}, "pimfence")
	}
	c.next(1)
}

func (c *Core) execScopeFence(in Instr) {
	// Buffered stores precede the fence in program order; drain them so
	// the fence's scan sees (and flushes) their lines.
	if len(c.sb) > 0 {
		c.park(in)
		c.kickDrain()
		return
	}
	if c.hbOn() {
		c.HB.RecordOp(c.ID, core.OpRef{Class: core.OpFenceScope, Scope: in.Scope}, in.Label)
	}
	// §V-E: the fence scans every cache level on its path.
	sets, flushed := c.L1.ScanFlushScope(in.Scope)
	cost := sim.Tick(sets) + 2*sim.Tick(flushed)
	c.fencePending[in.Scope]++
	req := c.newReq(mem.ReqScopeFence, mem.LineOf(c.Scopes.ScopeBase(in.Scope)), in.Scope)
	req.OnDone = c.fenceDoneFn
	c.k.ScheduleCtx(cost, c.fwdPIMFn, req)
	// The fence does not block the core; same-scope operations wait for
	// its completion (conservative implementation of the path rule).
	c.next(1)
}

func (c *Core) hbOn() bool { return c.HB != nil && c.HB.Enabled }

// DebugState summarizes the core for deadlock diagnostics.
func (c *Core) DebugState() string {
	state := "running"
	switch c.state {
	case stRetry:
		state = fmt.Sprintf("retry(%v)", c.pending.Kind)
	case stWaiting:
		state = "waiting"
	}
	return fmt.Sprintf("core%d done=%v state=%s last=%d sb=%d outLoads=%d credits=%d unacked=%v queues=%d draining=%v sbWaiting=%v l1mshr=%d",
		c.ID, c.done, state, c.lastInstr, len(c.sb), c.outLoads, c.pimCreditUse, c.pimUnacked, len(c.pimQueues), c.draining, c.sbWaiting, c.L1.MSHRLen())
}

func max64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}

func min64(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}
