// Package cpu models the host cores of §V-A: commit-order instruction
// streams over an x86-TSO store buffer, bounded memory-level parallelism
// for loads, and — the heart of the paper — the per-consistency-model
// issuing process for PIM operations (Fig. 6a-d): full stall with ACK
// (atomic), store-buffer FIFO with ACK (store), non-FIFO per-scope gating
// (scope), and fire-at-commit with scope-fences (scope-relaxed).
package cpu

import (
	"bulkpim/internal/mem"
	"bulkpim/internal/sim"
)

// InstrKind enumerates the operations a workload thread can issue.
type InstrKind uint8

const (
	// InstrCompute spins the core for Cycles.
	InstrCompute InstrKind = iota
	// InstrLoad reads Size bytes at Addr (blocking).
	InstrLoad
	// InstrLoadBurst reads the word ranges in Burst with MLP overlapping.
	InstrLoadBurst
	// InstrStore writes Data at Addr through the store buffer.
	InstrStore
	// InstrPIMOp issues a bulk-bitwise PIM operation on Scope.
	InstrPIMOp
	// InstrFlush issues cache-line flushes for Lines and waits for all
	// (the SW-Flush baseline's software coherence).
	InstrFlush
	// InstrFenceFull is a MemFence: drains the store buffer, outstanding
	// loads, flushes, and (where the model tracks them) PIM ACKs.
	InstrFenceFull
	// InstrFencePIM is the dedicated PIM fence of [21]: orders PIM ops
	// across scopes (scope / scope-relaxed models).
	InstrFencePIM
	// InstrScopeFence orders operations of one scope (scope-relaxed).
	InstrScopeFence
	// InstrBarrier synchronizes threads (runtime synchronization, not a
	// memory operation).
	InstrBarrier
)

// BurstRange is a contiguous word-granularity read.
type BurstRange struct {
	Start mem.Addr
	Bytes int
}

// Instr is one instruction delivered by a Thread.
type Instr struct {
	Kind   InstrKind
	Cycles sim.Tick // InstrCompute

	Addr mem.Addr // InstrLoad / InstrStore
	Size int      // bytes for InstrLoad (default 8)
	Data []byte   // InstrStore payload

	Burst []BurstRange // InstrLoadBurst

	Lines []mem.LineAddr // InstrFlush

	Scope mem.ScopeID     // InstrPIMOp / InstrScopeFence
	Prog  *mem.PIMProgram // InstrPIMOp

	Barrier *Barrier // InstrBarrier

	// OnData, when set, receives the bytes of each completed line read
	// (functional verification against the workload oracle).
	OnData func(line mem.LineAddr, data []byte)

	// Label annotates the op in happens-before traces.
	Label string
}

// Thread produces the instruction stream of one hardware thread. Next is
// called once per issued instruction; returning ok=false retires the
// thread.
type Thread interface {
	Next() (Instr, bool)
}

// FuncThread adapts a closure to Thread.
type FuncThread func() (Instr, bool)

// Next implements Thread.
func (f FuncThread) Next() (Instr, bool) { return f() }

// SliceThread replays a fixed instruction sequence (litmus tests).
type SliceThread struct {
	Instrs []Instr
	pos    int
}

// Next implements Thread.
func (s *SliceThread) Next() (Instr, bool) {
	if s.pos >= len(s.Instrs) {
		return Instr{}, false
	}
	i := s.Instrs[s.pos]
	s.pos++
	return i, true
}

// Barrier is a reusable (cyclic) thread barrier. It is runtime
// synchronization — the simulated equivalent of pthread_barrier — not a
// memory operation.
type Barrier struct {
	n       int
	arrived int
	resume  []func()
}

// NewBarrier builds a barrier for n participants.
func NewBarrier(n int) *Barrier {
	if n <= 0 {
		panic("cpu: barrier needs participants")
	}
	return &Barrier{n: n}
}

// Arrive registers a participant; when the last one arrives every resume
// callback runs and the barrier resets for reuse.
func (b *Barrier) Arrive(resume func()) {
	b.arrived++
	b.resume = append(b.resume, resume)
	if b.arrived == b.n {
		callbacks := b.resume
		b.arrived = 0
		b.resume = nil
		for _, fn := range callbacks {
			fn()
		}
	}
}

// Waiting reports how many participants are blocked.
func (b *Barrier) Waiting() int { return b.arrived }
