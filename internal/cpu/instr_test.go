package cpu

import "testing"

func TestSliceThread(t *testing.T) {
	th := &SliceThread{Instrs: []Instr{
		{Kind: InstrCompute, Cycles: 1},
		{Kind: InstrFenceFull},
	}}
	a, ok := th.Next()
	if !ok || a.Kind != InstrCompute {
		t.Fatal("first instr wrong")
	}
	b, ok := th.Next()
	if !ok || b.Kind != InstrFenceFull {
		t.Fatal("second instr wrong")
	}
	if _, ok := th.Next(); ok {
		t.Fatal("exhausted thread must report done")
	}
}

func TestFuncThread(t *testing.T) {
	n := 0
	th := FuncThread(func() (Instr, bool) {
		n++
		if n > 2 {
			return Instr{}, false
		}
		return Instr{Kind: InstrCompute}, true
	})
	count := 0
	for {
		if _, ok := th.Next(); !ok {
			break
		}
		count++
	}
	if count != 2 {
		t.Fatalf("count = %d, want 2", count)
	}
}

func TestBarrierReleasesAtN(t *testing.T) {
	b := NewBarrier(3)
	released := 0
	b.Arrive(func() { released++ })
	b.Arrive(func() { released++ })
	if released != 0 {
		t.Fatal("barrier released early")
	}
	b.Arrive(func() { released++ })
	if released != 3 {
		t.Fatalf("released %d, want 3", released)
	}
	// Cyclic reuse.
	b.Arrive(func() { released++ })
	if b.Waiting() != 1 {
		t.Fatalf("waiting = %d, want 1", b.Waiting())
	}
	b.Arrive(func() { released++ })
	b.Arrive(func() { released++ })
	if released != 6 {
		t.Fatalf("released %d, want 6 after reuse", released)
	}
}

func TestBarrierValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for zero participants")
		}
	}()
	NewBarrier(0)
}
