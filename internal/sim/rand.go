package sim

// Rand is a small, fast, deterministic PRNG (SplitMix64 core with an
// xorshift* output stage). The simulator cannot depend on math/rand global
// state: every component that needs randomness owns a seeded Rand so runs
// are reproducible regardless of package initialization order.
type Rand struct {
	state uint64
}

// NewRand returns a PRNG seeded with seed. A zero seed is remapped so the
// generator never gets stuck.
func NewRand(seed uint64) *Rand {
	r := &Rand{state: seed}
	if r.state == 0 {
		r.state = 0x9e3779b97f4a7c15
	}
	return r
}

// Uint64 returns the next 64 random bits (SplitMix64).
func (r *Rand) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Uint64n returns a uniform uint64 in [0, n). It panics if n == 0.
func (r *Rand) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("sim: Uint64n with zero n")
	}
	return r.Uint64() % n
}

// Float64 returns a uniform float64 in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / float64(1<<53)
}

// Fork derives an independent generator; the child stream does not overlap
// with the parent's in practice (distinct SplitMix64 seed).
func (r *Rand) Fork() *Rand {
	return NewRand(r.Uint64())
}
