// Package sim provides a deterministic discrete-event simulation kernel.
//
// It is the substrate every timed component of the bulkpim system is built
// on: caches, the on-chip network, the memory controller, the PIM module and
// the CPU cores all schedule work as events on a single Kernel. The kernel
// is single-threaded and fully deterministic: two runs with the same seed
// and the same schedule order produce identical event interleavings.
package sim

import "fmt"

// Tick is simulated time, measured in CPU clock cycles.
type Tick uint64

// event is a scheduled callback. Events with equal time fire in schedule
// order (FIFO by sequence number), which keeps runs deterministic.
type event struct {
	when Tick
	seq  uint64
	fn   func()
}

// Kernel is a discrete-event scheduler. The zero value is not usable; use
// NewKernel.
//
// Internally the pending set lives in a pooled, index-stable event arena:
// Schedule writes into a reused arena slot and pushes a 4-byte index, so a
// running kernel performs no per-event allocations (the profile showed the
// old []event binary heap charging the GC for every scheduled event). Two
// structures index the arena:
//
//   - a 4-ary min-heap of arena indices ordered by (time, sequence) holds
//     events for future ticks. A 4-ary heap halves the tree depth of a
//     binary heap and keeps the hot sift loops within one cache line of
//     indices per level, which profiles measurably faster for the
//     fine-grained delays the cache/NoC/memctrl components use;
//   - a FIFO of same-tick events. On entering a tick every event scheduled
//     for it is drained from the heap (in (time, seq) order) into the FIFO,
//     and zero-delay events scheduled while the tick executes append in
//     O(1). Sequence numbers only grow, so appended events sort after
//     everything drained and FIFO order IS (time, seq) order — the
//     same-tick cascades the CPU cores and caches generate bypass the heap
//     entirely.
//
// Determinism semantics are unchanged: events fire in (time, then schedule
// sequence) order, exactly as the original binary-heap kernel.
type Kernel struct {
	now     Tick
	seq     uint64
	stopped bool

	arena []event  // index-stable pooled storage for pending events
	free  []uint32 // recycled arena slots
	heap  []uint32 // 4-ary min-heap of arena indices, future ticks
	fifo  []uint32 // events of the current tick, in sequence order
	fhead int      // next unfired fifo entry

	// EventLimit, when non-zero, aborts Run with ErrEventLimit after that
	// many events have fired. It is a watchdog against scheduling bugs
	// (livelock / runaway retry loops).
	EventLimit uint64
	fired      uint64
}

// ErrEventLimit is returned by Run when Kernel.EventLimit is exceeded.
var ErrEventLimit = fmt.Errorf("sim: event limit exceeded")

// NewKernel returns an empty kernel at time zero.
func NewKernel() *Kernel {
	return &Kernel{
		arena: make([]event, 0, 1024),
		heap:  make([]uint32, 0, 1024),
		fifo:  make([]uint32, 0, 64),
	}
}

// Now returns the current simulated time.
func (k *Kernel) Now() Tick { return k.now }

// Fired returns the number of events executed so far.
func (k *Kernel) Fired() uint64 { return k.fired }

// Schedule runs fn after delay cycles (delay 0 means "later this cycle",
// after already-queued events for the current tick).
func (k *Kernel) Schedule(delay Tick, fn func()) {
	k.ScheduleAt(k.now+delay, fn)
}

// ScheduleAt runs fn at absolute time when. Scheduling in the past is a
// programming error and panics.
func (k *Kernel) ScheduleAt(when Tick, fn func()) {
	if when < k.now {
		panic(fmt.Sprintf("sim: schedule at %d before now %d", when, k.now))
	}
	k.seq++
	idx := k.alloc()
	k.arena[idx] = event{when: when, seq: k.seq, fn: fn}
	if when == k.now {
		// Same-tick fast path. The invariant making this correct: the heap
		// never holds an event for the current tick (entering a tick drains
		// them all, and past times panic above), so this event — whose
		// sequence number exceeds every pending one — belongs at the FIFO
		// tail.
		k.fifo = append(k.fifo, idx)
		return
	}
	k.push(idx)
}

// alloc returns a free arena slot, recycling fired events' slots before
// growing the arena.
func (k *Kernel) alloc() uint32 {
	if n := len(k.free); n > 0 {
		idx := k.free[n-1]
		k.free = k.free[:n-1]
		return idx
	}
	k.arena = append(k.arena, event{})
	return uint32(len(k.arena) - 1)
}

// Stop makes Run return after the current event completes.
func (k *Kernel) Stop() { k.stopped = true }

// Run executes events until the queue drains, Stop is called, or the event
// limit is hit. It returns the time of the last executed event.
func (k *Kernel) Run() (Tick, error) {
	k.stopped = false
	for !k.stopped {
		if k.fhead >= len(k.fifo) {
			k.fifo = k.fifo[:0]
			k.fhead = 0
			if len(k.heap) == 0 {
				break
			}
			k.enterTick()
		}
		if err := k.fire(); err != nil {
			return k.now, err
		}
	}
	return k.now, nil
}

// RunUntil executes events with time <= deadline, then advances the clock
// to the deadline (time passes even when the queue drains early).
func (k *Kernel) RunUntil(deadline Tick) (Tick, error) {
	k.stopped = false
	for !k.stopped {
		if k.fhead >= len(k.fifo) {
			k.fifo = k.fifo[:0]
			k.fhead = 0
			if len(k.heap) == 0 {
				break
			}
			if k.arena[k.heap[0]].when > deadline {
				k.now = deadline
				return k.now, nil
			}
			k.enterTick()
		}
		if k.arena[k.fifo[k.fhead]].when > deadline {
			// Only reachable when a stopped run left same-tick events
			// pending and the deadline is before their tick. Push them back
			// to the heap: the clock moves to the earlier deadline, so
			// later scheduling may legally interleave ahead of them.
			for k.fhead < len(k.fifo) {
				k.push(k.fifo[k.fhead])
				k.fhead++
			}
			k.fifo = k.fifo[:0]
			k.fhead = 0
			k.now = deadline
			return k.now, nil
		}
		if err := k.fire(); err != nil {
			return k.now, err
		}
	}
	if !k.stopped && k.now < deadline {
		k.now = deadline
	}
	return k.now, nil
}

// enterTick advances the clock to the earliest pending tick and drains
// every event scheduled for it — already in (time, seq) order by heap pop
// order — into the same-tick FIFO.
func (k *Kernel) enterTick() {
	t := k.arena[k.heap[0]].when
	k.now = t
	for len(k.heap) > 0 && k.arena[k.heap[0]].when == t {
		k.fifo = append(k.fifo, k.pop())
	}
}

// fire executes the FIFO head, releasing its arena slot first so nested
// scheduling can recycle it.
func (k *Kernel) fire() error {
	idx := k.fifo[k.fhead]
	k.fhead++
	ev := &k.arena[idx]
	fn := ev.fn
	k.now = ev.when
	ev.fn = nil // release the closure for the GC
	k.free = append(k.free, idx)
	k.fired++
	if k.EventLimit != 0 && k.fired > k.EventLimit {
		return ErrEventLimit
	}
	fn()
	return nil
}

// Pending reports the number of queued events.
func (k *Kernel) Pending() int { return len(k.heap) + len(k.fifo) - k.fhead }

// less orders arena indices by (time, sequence).
func (k *Kernel) less(a, b uint32) bool {
	ea, eb := &k.arena[a], &k.arena[b]
	if ea.when != eb.when {
		return ea.when < eb.when
	}
	return ea.seq < eb.seq
}

func (k *Kernel) push(idx uint32) {
	k.heap = append(k.heap, idx)
	i := len(k.heap) - 1
	for i > 0 {
		parent := (i - 1) / 4
		if !k.less(k.heap[i], k.heap[parent]) {
			break
		}
		k.heap[i], k.heap[parent] = k.heap[parent], k.heap[i]
		i = parent
	}
}

func (k *Kernel) pop() uint32 {
	top := k.heap[0]
	last := len(k.heap) - 1
	k.heap[0] = k.heap[last]
	k.heap = k.heap[:last]
	i := 0
	for {
		first := 4*i + 1
		if first >= last {
			break
		}
		end := first + 4
		if end > last {
			end = last
		}
		smallest := i
		for c := first; c < end; c++ {
			if k.less(k.heap[c], k.heap[smallest]) {
				smallest = c
			}
		}
		if smallest == i {
			break
		}
		k.heap[i], k.heap[smallest] = k.heap[smallest], k.heap[i]
		i = smallest
	}
	return top
}
