// Package sim provides a deterministic discrete-event simulation kernel.
//
// It is the substrate every timed component of the bulkpim system is built
// on: caches, the on-chip network, the memory controller, the PIM module and
// the CPU cores all schedule work as events on a single Kernel. The kernel
// is single-threaded and fully deterministic: two runs with the same seed
// and the same schedule order produce identical event interleavings.
package sim

import (
	"fmt"
	"math/bits"
)

// Tick is simulated time, measured in CPU clock cycles.
type Tick uint64

// fifoEntry is a callback plus its context, 24 bytes. Carrying the context
// separately lets components schedule package-level functions with a
// pointer argument instead of allocating a fresh closure per event — the
// profile showed per-request closures as a top GC producer.
type fifoEntry struct {
	fn  func(any)
	ctx any
}

// event is a far-future (beyond the wheel horizon) scheduled callback held
// in the overflow heap. Events with equal time fire in schedule order
// (FIFO by sequence number), which keeps runs deterministic.
type event struct {
	when Tick
	seq  uint64
	fn   func(any)
	ctx  any
}

const (
	// wheelBits sizes the timing wheel. Component delays (cache hits, NoC
	// hops, DRAM timings) are overwhelmingly < 1024 ticks, so nearly every
	// event lands in a bucket and never touches the heap.
	wheelBits = 10
	wheelSize = 1 << wheelBits
	wheelMask = wheelSize - 1
)

// Kernel is a discrete-event scheduler. The zero value is not usable; use
// NewKernel.
//
// The pending set is split three ways, cheapest structure first:
//
//   - a FIFO of current-tick entries. Zero-delay events scheduled while the
//     tick executes append in O(1), and firing is a bump of an index — the
//     same-tick cascades the CPU cores and caches generate bypass every
//     ordered structure.
//   - a timing wheel of wheelSize per-tick buckets with an occupancy
//     bitmap. Scheduling within the horizon is an append to
//     wheel[when%wheelSize]; entering a tick splices the whole bucket onto
//     the FIFO in one copy (the old kernel paid one heap pop — sift-down
//     and (time,seq) comparisons included — per same-tick event, ~7% flat
//     in the profile). Finding the next non-empty tick is a bitmap scan,
//     a handful of word tests for the usual near-future event.
//   - a 4-ary min-heap over a pooled, index-stable arena for the rare
//     events scheduled >= wheelSize ticks ahead (refresh timers, watchdog
//     deadlines). Heap events never migrate: entering their tick drains
//     them straight to the FIFO.
//
// Determinism semantics are unchanged from the original binary-heap
// kernel: events fire in (time, then schedule sequence) order. Bucket
// appends preserve schedule order, and a heap event always precedes bucket
// events of the same tick because it was necessarily scheduled earlier
// (when it was queued the tick was >= wheelSize away; bucket entries for
// that tick were queued later, once the tick was inside the horizon).
type Kernel struct {
	now     Tick
	seq     uint64
	stopped bool

	wheel      [wheelSize][]fifoEntry // per-tick buckets, horizon wheelSize
	occ        [wheelSize / 64]uint64 // occupancy bitmap over buckets
	wheelCount int

	arena []event  // index-stable pooled storage for far-future events
	free  []uint32 // recycled arena slots
	heap  []uint32 // 4-ary min-heap of arena indices

	fifo     []fifoEntry // events of the current tick, in sequence order
	fhead    int         // next unfired fifo entry
	fifoTick Tick        // tick the fifo entries belong to

	// EventLimit, when non-zero, aborts Run with ErrEventLimit after that
	// many events have fired. It is a watchdog against scheduling bugs
	// (livelock / runaway retry loops).
	EventLimit uint64
	fired      uint64
}

// ErrEventLimit is returned by Run when Kernel.EventLimit is exceeded.
var ErrEventLimit = fmt.Errorf("sim: event limit exceeded")

// NewKernel returns an empty kernel at time zero.
func NewKernel() *Kernel {
	k := &Kernel{
		arena: make([]event, 0, 64),
		heap:  make([]uint32, 0, 64),
		fifo:  make([]fifoEntry, 0, 64),
	}
	// Seed every bucket with capacity from one contiguous backing array so
	// a bucket's first events don't each pay a small allocation; a bucket
	// that outgrows its seed capacity reallocates once and keeps the larger
	// array across wheel rotations.
	backing := make([]fifoEntry, wheelSize*bucketSeedCap)
	for i := range k.wheel {
		k.wheel[i] = backing[i*bucketSeedCap : i*bucketSeedCap : (i+1)*bucketSeedCap]
	}
	return k
}

// bucketSeedCap is the initial per-bucket capacity carved from the shared
// backing array in NewKernel.
const bucketSeedCap = 4

// Now returns the current simulated time.
func (k *Kernel) Now() Tick { return k.now }

// Fired returns the number of events executed so far.
func (k *Kernel) Fired() uint64 { return k.fired }

// callPlain adapts a no-argument closure to the (fn, ctx) event shape: the
// closure itself rides in the ctx slot. Func values are pointer-shaped, so
// the conversion to any does not allocate.
func callPlain(ctx any) { ctx.(func())() }

// Schedule runs fn after delay cycles (delay 0 means "later this cycle",
// after already-queued events for the current tick).
func (k *Kernel) Schedule(delay Tick, fn func()) {
	k.ScheduleAtCtx(k.now+delay, callPlain, fn)
}

// ScheduleAt runs fn at absolute time when. Scheduling in the past is a
// programming error and panics.
func (k *Kernel) ScheduleAt(when Tick, fn func()) {
	k.ScheduleAtCtx(when, callPlain, fn)
}

// ScheduleCtx runs fn(ctx) after delay cycles. Passing a long-lived fn (a
// package-level function or a field initialized once) with a per-event ctx
// schedules without allocating, where Schedule with a capturing closure
// would allocate the closure.
func (k *Kernel) ScheduleCtx(delay Tick, fn func(any), ctx any) {
	k.ScheduleAtCtx(k.now+delay, fn, ctx)
}

// ScheduleAtCtx runs fn(ctx) at absolute time when. Scheduling in the past
// is a programming error and panics.
func (k *Kernel) ScheduleAtCtx(when Tick, fn func(any), ctx any) {
	if when < k.now {
		panic(fmt.Sprintf("sim: schedule at %d before now %d", when, k.now))
	}
	if when == k.now {
		// Same-tick fast path. The invariant making this correct: neither
		// the wheel nor the heap ever holds an event for the current tick
		// (entering a tick drains both, and past times panic above), so
		// this event belongs at the FIFO tail.
		k.fifo = append(k.fifo, fifoEntry{fn: fn, ctx: ctx})
		k.fifoTick = k.now
		return
	}
	if when-k.now < wheelSize {
		b := uint32(when) & wheelMask
		k.wheel[b] = append(k.wheel[b], fifoEntry{fn: fn, ctx: ctx})
		k.occ[b>>6] |= 1 << (b & 63)
		k.wheelCount++
		return
	}
	k.seq++
	idx := k.alloc()
	k.arena[idx] = event{when: when, seq: k.seq, fn: fn, ctx: ctx}
	k.push(idx)
}

// alloc returns a free arena slot, recycling fired events' slots before
// growing the arena.
func (k *Kernel) alloc() uint32 {
	if n := len(k.free); n > 0 {
		idx := k.free[n-1]
		k.free = k.free[:n-1]
		return idx
	}
	k.arena = append(k.arena, event{})
	return uint32(len(k.arena) - 1)
}

// Stop makes Run return after the current event completes.
func (k *Kernel) Stop() { k.stopped = true }

// nextPending returns the earliest pending tick across wheel and heap.
func (k *Kernel) nextPending() (Tick, bool) {
	t, ok := k.nextWheelTick()
	if len(k.heap) > 0 {
		if ht := k.arena[k.heap[0]].when; !ok || ht < t {
			return ht, true
		}
	}
	return t, ok
}

// nextWheelTick scans the occupancy bitmap circularly from the bucket
// after now for the first non-empty bucket and reconstructs its tick.
func (k *Kernel) nextWheelTick() (Tick, bool) {
	if k.wheelCount == 0 {
		return 0, false
	}
	start := uint32(k.now+1) & wheelMask
	w := int(start >> 6)
	if rem := k.occ[w] &^ (1<<(start&63) - 1); rem != 0 {
		return k.bucketTick(uint32(w<<6 + bits.TrailingZeros64(rem))), true
	}
	// Wrap through the remaining words; revisiting word w last picks up
	// bits below start (the farthest-future buckets).
	for i := 1; i <= len(k.occ); i++ {
		idx := (w + i) & (len(k.occ) - 1)
		if k.occ[idx] != 0 {
			return k.bucketTick(uint32(idx<<6 + bits.TrailingZeros64(k.occ[idx]))), true
		}
	}
	panic("sim: wheel count positive but occupancy bitmap empty")
}

// bucketTick maps a bucket index to its absolute tick: the unique time
// congruent to b mod wheelSize in (now, now+wheelSize].
func (k *Kernel) bucketTick(b uint32) Tick {
	t := k.now&^Tick(wheelMask) | Tick(b)
	if t <= k.now {
		t += wheelSize
	}
	return t
}

// Run executes events until the queue drains, Stop is called, or the event
// limit is hit. It returns the time of the last executed event.
func (k *Kernel) Run() (Tick, error) {
	k.stopped = false
	for !k.stopped {
		if k.fhead >= len(k.fifo) {
			k.fifo = k.fifo[:0]
			k.fhead = 0
			t, ok := k.nextPending()
			if !ok {
				break
			}
			k.enterTick(t)
		}
		if err := k.fire(); err != nil {
			return k.now, err
		}
	}
	return k.now, nil
}

// RunUntil executes events with time <= deadline, then advances the clock
// to the deadline (time passes even when the queue drains early).
func (k *Kernel) RunUntil(deadline Tick) (Tick, error) {
	k.stopped = false
	for !k.stopped {
		if k.fhead >= len(k.fifo) {
			k.fifo = k.fifo[:0]
			k.fhead = 0
			t, ok := k.nextPending()
			if !ok {
				break
			}
			if t > deadline {
				k.now = deadline
				return k.now, nil
			}
			k.enterTick(t)
		}
		if k.fifoTick > deadline {
			// Only reachable when a stopped run left same-tick events
			// pending and the deadline is before their tick. Push them back
			// to the heap: the clock moves to the earlier deadline, so
			// later scheduling may legally interleave ahead of them. Fresh
			// sequence numbers are order-preserving: the heap holds no
			// events for fifoTick (entering the tick drained them), and any
			// event subsequently scheduled for fifoTick is younger still.
			for k.fhead < len(k.fifo) {
				e := &k.fifo[k.fhead]
				k.seq++
				idx := k.alloc()
				k.arena[idx] = event{when: k.fifoTick, seq: k.seq, fn: e.fn, ctx: e.ctx}
				e.fn, e.ctx = nil, nil
				k.push(idx)
				k.fhead++
			}
			k.fifo = k.fifo[:0]
			k.fhead = 0
			k.now = deadline
			return k.now, nil
		}
		if err := k.fire(); err != nil {
			return k.now, err
		}
	}
	if !k.stopped && k.now < deadline {
		k.now = deadline
	}
	return k.now, nil
}

// enterTick advances the clock to tick t and splices everything scheduled
// for it onto the same-tick FIFO: first the far-future heap events (in
// (time, seq) order by pop order — all older than any bucket entry for t),
// then the wheel bucket in one batched copy.
func (k *Kernel) enterTick(t Tick) {
	k.now = t
	k.fifoTick = t
	for len(k.heap) > 0 && k.arena[k.heap[0]].when == t {
		idx := k.pop()
		ev := &k.arena[idx]
		k.fifo = append(k.fifo, fifoEntry{fn: ev.fn, ctx: ev.ctx})
		ev.fn, ev.ctx = nil, nil
		k.free = append(k.free, idx)
	}
	b := uint32(t) & wheelMask
	if bkt := k.wheel[b]; len(bkt) > 0 {
		k.fifo = append(k.fifo, bkt...)
		for i := range bkt {
			bkt[i] = fifoEntry{} // release callback + ctx for the GC
		}
		k.wheel[b] = bkt[:0]
		k.occ[b>>6] &^= 1 << (b & 63)
		k.wheelCount -= len(bkt)
	}
}

// fire executes the FIFO head, clearing its slot first so the callback and
// context don't outlive the event.
func (k *Kernel) fire() error {
	e := &k.fifo[k.fhead]
	fn, ctx := e.fn, e.ctx
	e.fn, e.ctx = nil, nil
	k.fhead++
	k.fired++
	if k.EventLimit != 0 && k.fired > k.EventLimit {
		return ErrEventLimit
	}
	fn(ctx)
	return nil
}

// Pending reports the number of queued events.
func (k *Kernel) Pending() int {
	return len(k.heap) + k.wheelCount + len(k.fifo) - k.fhead
}

// less orders arena indices by (time, sequence).
func (k *Kernel) less(a, b uint32) bool {
	ea, eb := &k.arena[a], &k.arena[b]
	if ea.when != eb.when {
		return ea.when < eb.when
	}
	return ea.seq < eb.seq
}

func (k *Kernel) push(idx uint32) {
	k.heap = append(k.heap, idx)
	i := len(k.heap) - 1
	for i > 0 {
		parent := (i - 1) / 4
		if !k.less(k.heap[i], k.heap[parent]) {
			break
		}
		k.heap[i], k.heap[parent] = k.heap[parent], k.heap[i]
		i = parent
	}
}

func (k *Kernel) pop() uint32 {
	top := k.heap[0]
	last := len(k.heap) - 1
	k.heap[0] = k.heap[last]
	k.heap = k.heap[:last]
	i := 0
	for {
		first := 4*i + 1
		if first >= last {
			break
		}
		end := first + 4
		if end > last {
			end = last
		}
		smallest := i
		for c := first; c < end; c++ {
			if k.less(k.heap[c], k.heap[smallest]) {
				smallest = c
			}
		}
		if smallest == i {
			break
		}
		k.heap[i], k.heap[smallest] = k.heap[smallest], k.heap[i]
		i = smallest
	}
	return top
}
