// Package sim provides a deterministic discrete-event simulation kernel.
//
// It is the substrate every timed component of the bulkpim system is built
// on: caches, the on-chip network, the memory controller, the PIM module and
// the CPU cores all schedule work as events on a single Kernel. The kernel
// is single-threaded and fully deterministic: two runs with the same seed
// and the same schedule order produce identical event interleavings.
package sim

import "fmt"

// Tick is simulated time, measured in CPU clock cycles.
type Tick uint64

// Event is a scheduled callback. Events with equal time fire in schedule
// order (FIFO by sequence number), which keeps runs deterministic.
type event struct {
	when Tick
	seq  uint64
	fn   func()
}

// Kernel is a discrete-event scheduler. The zero value is not usable; use
// NewKernel.
type Kernel struct {
	now     Tick
	seq     uint64
	heap    []event
	stopped bool

	// EventLimit, when non-zero, aborts Run with ErrEventLimit after that
	// many events have fired. It is a watchdog against scheduling bugs
	// (livelock / runaway retry loops).
	EventLimit uint64
	fired      uint64
}

// ErrEventLimit is returned by Run when Kernel.EventLimit is exceeded.
var ErrEventLimit = fmt.Errorf("sim: event limit exceeded")

// NewKernel returns an empty kernel at time zero.
func NewKernel() *Kernel {
	return &Kernel{heap: make([]event, 0, 1024)}
}

// Now returns the current simulated time.
func (k *Kernel) Now() Tick { return k.now }

// Fired returns the number of events executed so far.
func (k *Kernel) Fired() uint64 { return k.fired }

// Schedule runs fn after delay cycles (delay 0 means "later this cycle",
// after already-queued events for the current tick).
func (k *Kernel) Schedule(delay Tick, fn func()) {
	k.ScheduleAt(k.now+delay, fn)
}

// ScheduleAt runs fn at absolute time when. Scheduling in the past is a
// programming error and panics.
func (k *Kernel) ScheduleAt(when Tick, fn func()) {
	if when < k.now {
		panic(fmt.Sprintf("sim: schedule at %d before now %d", when, k.now))
	}
	k.seq++
	k.push(event{when: when, seq: k.seq, fn: fn})
}

// Stop makes Run return after the current event completes.
func (k *Kernel) Stop() { k.stopped = true }

// Run executes events until the queue drains, Stop is called, or the event
// limit is hit. It returns the time of the last executed event.
func (k *Kernel) Run() (Tick, error) {
	k.stopped = false
	for len(k.heap) > 0 && !k.stopped {
		ev := k.pop()
		k.now = ev.when
		k.fired++
		if k.EventLimit != 0 && k.fired > k.EventLimit {
			return k.now, ErrEventLimit
		}
		ev.fn()
	}
	return k.now, nil
}

// RunUntil executes events with time <= deadline, then advances the clock
// to the deadline (time passes even when the queue drains early).
func (k *Kernel) RunUntil(deadline Tick) (Tick, error) {
	k.stopped = false
	for len(k.heap) > 0 && !k.stopped {
		if k.heap[0].when > deadline {
			k.now = deadline
			return k.now, nil
		}
		ev := k.pop()
		k.now = ev.when
		k.fired++
		if k.EventLimit != 0 && k.fired > k.EventLimit {
			return k.now, ErrEventLimit
		}
		ev.fn()
	}
	if !k.stopped && k.now < deadline {
		k.now = deadline
	}
	return k.now, nil
}

// Pending reports the number of queued events.
func (k *Kernel) Pending() int { return len(k.heap) }

// less orders events by (time, sequence).
func (a event) less(b event) bool {
	if a.when != b.when {
		return a.when < b.when
	}
	return a.seq < b.seq
}

func (k *Kernel) push(ev event) {
	k.heap = append(k.heap, ev)
	i := len(k.heap) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !k.heap[i].less(k.heap[parent]) {
			break
		}
		k.heap[i], k.heap[parent] = k.heap[parent], k.heap[i]
		i = parent
	}
}

func (k *Kernel) pop() event {
	top := k.heap[0]
	last := len(k.heap) - 1
	k.heap[0] = k.heap[last]
	k.heap = k.heap[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < last && k.heap[l].less(k.heap[smallest]) {
			smallest = l
		}
		if r < last && k.heap[r].less(k.heap[smallest]) {
			smallest = r
		}
		if smallest == i {
			break
		}
		k.heap[i], k.heap[smallest] = k.heap[smallest], k.heap[i]
		i = smallest
	}
	return top
}
