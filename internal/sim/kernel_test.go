package sim

import (
	"testing"
	"testing/quick"
)

func TestKernelFiresInTimeOrder(t *testing.T) {
	k := NewKernel()
	var got []Tick
	k.Schedule(30, func() { got = append(got, 30) })
	k.Schedule(10, func() { got = append(got, 10) })
	k.Schedule(20, func() { got = append(got, 20) })
	end, err := k.Run()
	if err != nil {
		t.Fatal(err)
	}
	if end != 30 {
		t.Fatalf("end = %d, want 30", end)
	}
	want := []Tick{10, 20, 30}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order %v, want %v", got, want)
		}
	}
}

func TestKernelFIFOWithinTick(t *testing.T) {
	k := NewKernel()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		k.Schedule(5, func() { got = append(got, i) })
	}
	if _, err := k.Run(); err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if got[i] != i {
			t.Fatalf("same-tick order %v not FIFO", got)
		}
	}
}

func TestKernelNestedScheduling(t *testing.T) {
	k := NewKernel()
	var trace []Tick
	k.Schedule(1, func() {
		trace = append(trace, k.Now())
		k.Schedule(4, func() { trace = append(trace, k.Now()) })
		k.Schedule(0, func() { trace = append(trace, k.Now()) })
	})
	if _, err := k.Run(); err != nil {
		t.Fatal(err)
	}
	want := []Tick{1, 1, 5}
	for i := range want {
		if trace[i] != want[i] {
			t.Fatalf("trace %v, want %v", trace, want)
		}
	}
}

func TestKernelZeroDelayRunsAfterQueuedSameTick(t *testing.T) {
	k := NewKernel()
	var got []string
	k.Schedule(2, func() { got = append(got, "a") })
	k.Schedule(2, func() {
		got = append(got, "b")
		k.Schedule(0, func() { got = append(got, "d") })
	})
	k.Schedule(2, func() { got = append(got, "c") })
	if _, err := k.Run(); err != nil {
		t.Fatal(err)
	}
	want := "abcd"
	var s string
	for _, g := range got {
		s += g
	}
	if s != want {
		t.Fatalf("order %q, want %q", s, want)
	}
}

func TestSchedulePastPanics(t *testing.T) {
	k := NewKernel()
	k.Schedule(10, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		k.ScheduleAt(5, func() {})
	})
	if _, err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestEventLimit(t *testing.T) {
	k := NewKernel()
	k.EventLimit = 100
	var tick func()
	tick = func() { k.Schedule(1, tick) }
	k.Schedule(1, tick)
	if _, err := k.Run(); err != ErrEventLimit {
		t.Fatalf("err = %v, want ErrEventLimit", err)
	}
}

func TestRunUntil(t *testing.T) {
	k := NewKernel()
	fired := 0
	for i := Tick(1); i <= 10; i++ {
		k.Schedule(i*10, func() { fired++ })
	}
	if _, err := k.RunUntil(50); err != nil {
		t.Fatal(err)
	}
	if fired != 5 {
		t.Fatalf("fired = %d, want 5", fired)
	}
	if k.Now() != 50 {
		t.Fatalf("now = %d, want 50", k.Now())
	}
	if _, err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if fired != 10 {
		t.Fatalf("fired = %d, want 10", fired)
	}
}

func TestStop(t *testing.T) {
	k := NewKernel()
	fired := 0
	k.Schedule(1, func() { fired++; k.Stop() })
	k.Schedule(2, func() { fired++ })
	if _, err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if fired != 1 {
		t.Fatalf("fired = %d, want 1 (stopped)", fired)
	}
	if k.Pending() != 1 {
		t.Fatalf("pending = %d, want 1", k.Pending())
	}
}

// Property: for any set of delays, events fire in nondecreasing time order
// and ties fire in schedule order.
func TestKernelOrderProperty(t *testing.T) {
	prop := func(delays []uint16) bool {
		if len(delays) == 0 {
			return true
		}
		k := NewKernel()
		type fire struct {
			at  Tick
			seq int
		}
		var fires []fire
		for i, d := range delays {
			i, d := i, d
			k.Schedule(Tick(d%512), func() { fires = append(fires, fire{k.Now(), i}) })
		}
		if _, err := k.Run(); err != nil {
			return false
		}
		seen := make(map[Tick][]int)
		var last Tick
		for _, f := range fires {
			if f.at < last {
				return false
			}
			last = f.at
			seen[f.at] = append(seen[f.at], f.seq)
		}
		for _, seqs := range seen {
			for i := 1; i < len(seqs); i++ {
				if seqs[i] < seqs[i-1] {
					return false
				}
			}
		}
		return len(fires) == len(delays)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestRandDeterministic(t *testing.T) {
	a, b := NewRand(42), NewRand(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
	if NewRand(1).Uint64() == NewRand(2).Uint64() {
		t.Fatal("different seeds produced same first value")
	}
}

func TestRandRanges(t *testing.T) {
	r := NewRand(7)
	for i := 0; i < 10000; i++ {
		if v := r.Intn(17); v < 0 || v >= 17 {
			t.Fatalf("Intn out of range: %d", v)
		}
		if f := r.Float64(); f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %g", f)
		}
		if v := r.Uint64n(3); v >= 3 {
			t.Fatalf("Uint64n out of range: %d", v)
		}
	}
}

func TestRandForkIndependent(t *testing.T) {
	r := NewRand(9)
	f := r.Fork()
	if f.Uint64() == r.Uint64() {
		t.Fatal("fork mirrors parent")
	}
}
