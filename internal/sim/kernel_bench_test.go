package sim

import "testing"

// BenchmarkKernel measures steady-state scheduler throughput on a mix
// modeled after the simulation's real event population: a few thousand
// events in flight, most delays short, frequent same-tick cascades. The
// events/sec metric feeds BENCH_sim_throughput.json.
func BenchmarkKernel(b *testing.B) {
	const inflight = 4096
	k := NewKernel()
	rng := NewRand(1)
	remaining := b.N
	var tick func()
	tick = func() {
		if remaining <= 0 {
			return
		}
		remaining--
		delay := rng.Uint64n(16)
		if rng.Uint64n(4) == 0 {
			delay = 0 // same-tick cascade, the FIFO fast path
		}
		k.Schedule(Tick(delay), tick)
	}
	for i := 0; i < inflight && remaining > 0; i++ {
		remaining--
		k.Schedule(Tick(rng.Uint64n(16)), tick)
	}
	b.ResetTimer()
	if _, err := k.Run(); err != nil {
		b.Fatal(err)
	}
	b.StopTimer()
	b.ReportMetric(float64(k.Fired())/b.Elapsed().Seconds(), "events/sec")
}
