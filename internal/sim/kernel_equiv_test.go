package sim

import "testing"

// referenceScheduler is the original (time, sequence) semantics expressed
// in the most obviously-correct way: an unordered pending list popped by
// linear min-scan. The arena/4-ary-heap/FIFO kernel must replay any random
// schedule in exactly this order.
type referenceScheduler struct {
	now     Tick
	seq     uint64
	pending []refEvent
}

type refEvent struct {
	when Tick
	seq  uint64
	fn   func()
}

func (s *referenceScheduler) schedule(delay Tick, fn func()) {
	s.seq++
	s.pending = append(s.pending, refEvent{when: s.now + delay, seq: s.seq, fn: fn})
}

func (s *referenceScheduler) run() {
	for len(s.pending) > 0 {
		min := 0
		for i := 1; i < len(s.pending); i++ {
			e, m := s.pending[i], s.pending[min]
			if e.when < m.when || (e.when == m.when && e.seq < m.seq) {
				min = i
			}
		}
		ev := s.pending[min]
		s.pending[min] = s.pending[len(s.pending)-1]
		s.pending = s.pending[:len(s.pending)-1]
		s.now = ev.when
		ev.fn()
	}
}

// TestKernelEquivalence replays a large random schedule — including nested
// zero-delay cascades and same-tick collisions — through the kernel and
// through the reference scheduler, asserting identical firing order.
func TestKernelEquivalence(t *testing.T) {
	for _, seed := range []uint64{1, 7, 42, 1 << 40} {
		const initial = 2000
		const maxChildren = 2

		// The workload is defined purely by the seed: event i fires and,
		// while its budget lasts, schedules children with pseudo-random
		// small delays (biased toward 0 and tick collisions). Running it
		// on either scheduler yields a firing-order trace of event ids.
		run := func(schedule func(Tick, func()), now func() Tick, run func()) []int {
			rng := NewRand(seed)
			var order []int
			next := 0
			budget := 10000
			var spawn func() func()
			spawn = func() func() {
				id := next
				next++
				return func() {
					order = append(order, id)
					if budget <= 0 {
						return
					}
					n := int(rng.Uint64n(maxChildren + 1))
					for i := 0; i < n && budget > 0; i++ {
						budget--
						schedule(Tick(rng.Uint64n(8)), spawn())
					}
				}
			}
			for i := 0; i < initial; i++ {
				schedule(Tick(rng.Uint64n(64)), spawn())
			}
			run()
			return order
		}

		k := NewKernel()
		got := run(k.Schedule, k.Now, func() {
			if _, err := k.Run(); err != nil {
				t.Fatal(err)
			}
		})
		ref := &referenceScheduler{}
		want := run(ref.schedule, func() Tick { return ref.now }, ref.run)

		if len(got) != len(want) {
			t.Fatalf("seed %d: fired %d events, reference fired %d", seed, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("seed %d: firing order diverges at event %d: kernel %d, reference %d",
					seed, i, got[i], want[i])
			}
		}
	}
}

// TestKernelEquivalenceRunUntil checks the windowed variant against the
// reference order: firing the same schedule in deadline slices must not
// reorder anything.
func TestKernelEquivalenceRunUntil(t *testing.T) {
	rng := NewRand(99)
	k := NewKernel()
	ref := &referenceScheduler{}
	var got, want []int
	for i := 0; i < 3000; i++ {
		i := i
		d := Tick(rng.Uint64n(200))
		k.Schedule(d, func() { got = append(got, i) })
		ref.schedule(d, func() { want = append(want, i) })
	}
	for deadline := Tick(0); deadline < 220; deadline += 13 {
		if _, err := k.RunUntil(deadline); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := k.Run(); err != nil {
		t.Fatal(err)
	}
	ref.run()
	if len(got) != len(want) {
		t.Fatalf("fired %d events, reference fired %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("firing order diverges at %d: kernel %d, reference %d", i, got[i], want[i])
		}
	}
}

// TestKernelEquivalenceWideDelays exercises the wheel/heap boundary: delays
// straddle the wheel horizon (some < wheelSize, some several horizons out)
// with deliberate tick collisions between near (bucket) and far (heap)
// schedules, where the far event must fire first because it was scheduled
// first. The reference scheduler has no horizon, so any boundary bug in
// bucket/heap ordering diverges the trace.
func TestKernelEquivalenceWideDelays(t *testing.T) {
	for _, seed := range []uint64{3, 1 << 33} {
		run := func(schedule func(Tick, func()), run func()) []int {
			rng := NewRand(seed)
			var order []int
			next := 0
			budget := 6000
			var spawn func() func()
			spawn = func() func() {
				id := next
				next++
				return func() {
					order = append(order, id)
					if budget <= 0 {
						return
					}
					n := int(rng.Uint64n(3))
					for i := 0; i < n && budget > 0; i++ {
						budget--
						var d Tick
						switch rng.Uint64n(4) {
						case 0:
							d = Tick(rng.Uint64n(8)) // same-tick / FIFO path
						case 1:
							d = Tick(rng.Uint64n(wheelSize)) // wheel
						case 2:
							d = wheelSize + Tick(rng.Uint64n(wheelSize)) // just past horizon
						default:
							d = Tick(rng.Uint64n(4 * wheelSize)) // collisions across the boundary
						}
						schedule(d, spawn())
					}
				}
			}
			for i := 0; i < 500; i++ {
				schedule(Tick(rng.Uint64n(3*wheelSize)), spawn())
			}
			run()
			return order
		}

		k := NewKernel()
		got := run(k.Schedule, func() {
			if _, err := k.Run(); err != nil {
				t.Fatal(err)
			}
		})
		ref := &referenceScheduler{}
		want := run(ref.schedule, ref.run)

		if len(got) != len(want) {
			t.Fatalf("seed %d: fired %d events, reference fired %d", seed, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("seed %d: firing order diverges at event %d: kernel %d, reference %d",
					seed, i, got[i], want[i])
			}
		}
	}
}

// TestScheduleAllocationFree pins the arena pooling: once warm, a
// schedule/fire cycle performs zero heap allocations (the event closure
// here is hoisted, exactly like the components' hot paths reuse bound
// methods).
func TestScheduleAllocationFree(t *testing.T) {
	k := NewKernel()
	fn := func() {}
	for i := 0; i < 2048; i++ {
		k.Schedule(Tick(i%97), fn)
	}
	if _, err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if avg := testing.AllocsPerRun(1000, func() {
		k.Schedule(1, fn)
		k.Schedule(1, fn)
		k.Schedule(3, fn)
		if _, err := k.Run(); err != nil {
			t.Fatal(err)
		}
	}); avg != 0 {
		t.Fatalf("Schedule/Run allocates %.1f objects per cycle, want 0", avg)
	}
}

// TestScheduleCtxAllocationFree pins the closure-free scheduling shape the
// components use: a package-level (or hoisted) func(any) plus a pointer
// context schedules and fires with zero heap allocations.
func TestScheduleCtxAllocationFree(t *testing.T) {
	k := NewKernel()
	type payload struct{ hits int }
	p := &payload{}
	fn := func(ctx any) { ctx.(*payload).hits++ }
	for i := 0; i < 2048; i++ {
		k.ScheduleCtx(Tick(i%97), fn, p)
	}
	if _, err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if avg := testing.AllocsPerRun(1000, func() {
		k.ScheduleCtx(1, fn, p)
		k.ScheduleCtx(2, fn, p)
		if _, err := k.Run(); err != nil {
			t.Fatal(err)
		}
	}); avg != 0 {
		t.Fatalf("ScheduleCtx/Run allocates %.1f objects per cycle, want 0", avg)
	}
}
