package core

import (
	"testing"
	"testing/quick"

	"bulkpim/internal/mem"
)

// Property: an execution generated from a legal sequentially consistent
// interleaving (every read observes the latest write in one global order)
// must never be flagged cyclic, under any model — the checker may only
// reject genuinely impossible executions.
func TestSCExecutionsNeverFlagged(t *testing.T) {
	type step struct {
		Thread uint8
		Line   uint8
		Write  bool
	}
	models := AllVariants()
	prop := func(steps []step, modelPick uint8) bool {
		if len(steps) > 60 {
			steps = steps[:60]
		}
		model := models[int(modelPick)%len(models)]
		r := NewRecorder(model)
		lastWriter := map[mem.LineAddr]EventID{}
		for _, s := range steps {
			th := int(s.Thread % 4)
			line := mem.LineAddr(uint64(s.Line%8) * mem.LineSize)
			scope := mem.ScopeID(int64(s.Line % 2))
			if s.Write {
				ev := r.RecordOp(th, OpRef{Class: OpStore, Scope: scope, Line: line}, "w")
				r.RecordWrite(ev, line)
				lastWriter[line] = ev
			} else {
				ev := r.RecordOp(th, OpRef{Class: OpLoad, Scope: scope, Line: line}, "r")
				r.RecordRead(ev, line, lastWriter[line])
			}
		}
		return r.FindCycle() == nil
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: reading values in the opposite order of two fence-separated
// writes is always flagged (the classic MP violation), regardless of
// which threads observe it.
func TestMPViolationAlwaysFlagged(t *testing.T) {
	prop := func(writerThread, readerThread uint8) bool {
		wt := int(writerThread % 3)
		rt := int(readerThread%3) + 3 // distinct thread
		r := NewRecorder(Atomic)
		lineD := mem.LineAddr(0x1000)
		lineF := mem.LineAddr(0x2000)
		wd := r.RecordOp(wt, OpRef{Class: OpStore, Line: lineD}, "W(data)")
		r.RecordOp(wt, OpRef{Class: OpFenceFull}, "fence")
		wf := r.RecordOp(wt, OpRef{Class: OpStore, Line: lineF}, "W(flag)")
		r.RecordWrite(wd, lineD)
		r.RecordWrite(wf, lineF)
		// Reader: sees flag (new), then data (initial) — forbidden.
		rf := r.RecordOp(rt, OpRef{Class: OpLoad, Line: lineF}, "R(flag)=new")
		r.RecordRead(rf, lineF, wf)
		rd := r.RecordOp(rt, OpRef{Class: OpLoad, Line: lineD}, "R(data)=init")
		r.RecordRead(rd, lineD, 0)
		return r.FindCycle() != nil
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// PIM-specific: under the scope model, a same-scope load observed before
// an earlier PIM op is a violation; the identical shape across scopes is
// legal.
func TestScopeModelSameVsCrossScopeFlagging(t *testing.T) {
	build := func(sameScope bool) *Recorder {
		r := NewRecorder(Scope)
		pimScope := mem.ScopeID(0)
		loadScope := mem.ScopeID(1)
		if sameScope {
			loadScope = pimScope
		}
		lineP := mem.LineAddr(0x100000)
		lineL := mem.LineAddr(0x200000)
		pim := r.RecordOp(0, OpRef{Class: OpPIM, Scope: pimScope}, "PIM")
		st := r.RecordOp(0, OpRef{Class: OpStore, Scope: loadScope, Line: lineL}, "W")
		r.RecordWrite(st, lineL)
		r.RecordWrite(pim, lineP)
		// Observer: sees the store, then reads the PIM line pre-PIM.
		o1 := r.RecordOp(1, OpRef{Class: OpLoad, Scope: loadScope, Line: lineL}, "R(W)")
		r.RecordRead(o1, lineL, st)
		o2 := r.RecordOp(1, OpRef{Class: OpLoad, Scope: pimScope, Line: lineP}, "R(pre-PIM)")
		r.RecordRead(o2, lineP, 0)
		return r
	}
	if build(true).FindCycle() == nil {
		t.Error("same-scope PIM/store reorder must be flagged under the scope model")
	}
	if c := build(false).FindCycle(); c != nil {
		t.Errorf("cross-scope reorder wrongly flagged: %v", c)
	}
}
