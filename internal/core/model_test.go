package core

import (
	"testing"
	"testing/quick"

	"bulkpim/internal/mem"
)

func op(c OpClass, scope mem.ScopeID, line mem.LineAddr) OpRef {
	return OpRef{Class: c, Scope: scope, Line: line}
}

func TestModelStringsRoundTrip(t *testing.T) {
	for _, m := range AllVariants() {
		got, err := ParseModel(m.String())
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		if got != m {
			t.Fatalf("round trip %v -> %v", m, got)
		}
	}
	if _, err := ParseModel("bogus"); err == nil {
		t.Fatal("expected error for unknown model")
	}
}

func TestModelProperties(t *testing.T) {
	cases := []struct {
		m            Model
		correct, ack bool
		gate         GateKind
		flushLLC     bool
		allCaches    bool
	}{
		{Naive, false, false, GateNone, false, false},
		{SWFlush, false, false, GateNone, false, false},
		{Uncacheable, false, false, GateNone, false, false},
		{Atomic, true, true, GateAll, true, false},
		{Store, true, true, GateStoreOrder, true, false},
		{Scope, true, true, GateSameScope, true, false},
		{ScopeRelaxed, true, false, GateNone, true, true},
	}
	for _, c := range cases {
		if c.m.GuaranteesCorrectness() != c.correct {
			t.Errorf("%v correctness", c.m)
		}
		if c.m.RequiresACK() != c.ack {
			t.Errorf("%v ack", c.m)
		}
		if c.m.EntryGate() != c.gate {
			t.Errorf("%v gate", c.m)
		}
		if c.m.FlushesLLCOnPIMOp() != c.flushLLC {
			t.Errorf("%v flush", c.m)
		}
		if c.m.ScopeStructuresInAllCaches() != c.allCaches {
			t.Errorf("%v all caches", c.m)
		}
	}
	if !ScopeRelaxed.NeedsScopeFence() || Atomic.NeedsScopeFence() {
		t.Error("scope fence requirement wrong")
	}
	if !Scope.NeedsPIMFence() || !ScopeRelaxed.NeedsPIMFence() || Store.NeedsPIMFence() {
		t.Error("PIM fence requirement wrong")
	}
	if len(TableI()) != 4 {
		t.Error("Table I must have four rows")
	}
}

func TestTSOBaseRules(t *testing.T) {
	// Host-only pairs follow x86-TSO under every model.
	for _, m := range AllVariants() {
		ld := op(OpLoad, 0, 0x100)
		st := op(OpStore, 0, 0x200)
		stSame := op(OpStore, 0, 0x100)
		if MayReorder(m, ld, ld) {
			t.Errorf("%v: load-load must not reorder", m)
		}
		if MayReorder(m, ld, st) {
			t.Errorf("%v: load-store must not reorder", m)
		}
		if MayReorder(m, st, stSame) {
			t.Errorf("%v: store-store must not reorder", m)
		}
		if !MayReorder(m, st, ld) {
			t.Errorf("%v: store-load to different lines must reorder (TSO)", m)
		}
		if MayReorder(m, stSame, ld) {
			t.Errorf("%v: store-load to same line must not reorder", m)
		}
	}
}

func TestAtomicModelOrdersEverything(t *testing.T) {
	pim := op(OpPIM, 3, 0)
	others := []OpRef{
		op(OpLoad, 3, 0x100), op(OpLoad, 7, 0x200),
		op(OpStore, 3, 0x100), op(OpStore, 7, 0x200),
		op(OpPIM, 3, 0), op(OpPIM, 7, 0),
	}
	for _, o := range others {
		if MayReorder(Atomic, pim, o) || MayReorder(Atomic, o, pim) {
			t.Errorf("atomic: PIM reordered with %v", o)
		}
	}
}

func TestStoreModelRules(t *testing.T) {
	pim := op(OpPIM, 3, 0)
	// Later load to another scope may bypass the PIM op (store->load).
	if !MayReorder(Store, pim, op(OpLoad, 7, 0x200)) {
		t.Error("store model: PIM->load other scope should reorder")
	}
	// Same scope: never.
	if MayReorder(Store, pim, op(OpLoad, 3, 0x100)) {
		t.Error("store model: PIM->load same scope must not reorder")
	}
	// Load before PIM keeps order (load->store).
	if MayReorder(Store, op(OpLoad, 7, 0x200), pim) {
		t.Error("store model: load->PIM must not reorder")
	}
	// Stores and other PIM ops: ordered (store-store).
	if MayReorder(Store, pim, op(OpStore, 7, 0x200)) || MayReorder(Store, op(OpStore, 7, 0x200), pim) {
		t.Error("store model: PIM/store must not reorder")
	}
	if MayReorder(Store, pim, op(OpPIM, 7, 0)) {
		t.Error("store model: PIM/PIM must not reorder")
	}
}

func TestScopeModelRules(t *testing.T) {
	pim := op(OpPIM, 3, 0)
	// Anything in another scope reorders, loads and stores and PIM ops.
	for _, o := range []OpRef{op(OpLoad, 7, 0x200), op(OpStore, 7, 0x200), op(OpPIM, 7, 0)} {
		if !MayReorder(Scope, pim, o) || !MayReorder(Scope, o, pim) {
			t.Errorf("scope model: PIM should reorder with other-scope %v", o)
		}
	}
	// Same scope: strictly ordered.
	for _, o := range []OpRef{op(OpLoad, 3, 0x100), op(OpStore, 3, 0x100), op(OpPIM, 3, 0)} {
		if MayReorder(Scope, pim, o) || MayReorder(Scope, o, pim) {
			t.Errorf("scope model: PIM must not reorder with same-scope %v", o)
		}
	}
}

func TestScopeRelaxedRules(t *testing.T) {
	pim := op(OpPIM, 3, 0)
	for _, o := range []OpRef{op(OpLoad, 3, 0x100), op(OpStore, 3, 0x100), op(OpPIM, 3, 0), op(OpLoad, 7, 0x200)} {
		if !MayReorder(ScopeRelaxed, pim, o) {
			t.Errorf("scope-relaxed: PIM should reorder with %v", o)
		}
	}
	// But not with fences.
	if MayReorder(ScopeRelaxed, pim, op(OpFenceFull, mem.NoScope, 0)) {
		t.Error("scope-relaxed: PIM must not cross a full fence")
	}
	if MayReorder(ScopeRelaxed, pim, op(OpFenceScope, 3, 0)) {
		t.Error("scope-relaxed: PIM must not cross a same-scope scope-fence")
	}
	if !MayReorder(ScopeRelaxed, pim, op(OpFenceScope, 7, 0)) {
		t.Error("scope-relaxed: PIM should cross another scope's scope-fence")
	}
	if MayReorder(ScopeRelaxed, pim, op(OpFencePIM, mem.NoScope, 0)) {
		t.Error("scope-relaxed: PIM must not cross a PIM fence")
	}
	// Scope-fence orders same-scope loads too.
	if MayReorder(ScopeRelaxed, op(OpFenceScope, 3, 0), op(OpLoad, 3, 0x100)) {
		t.Error("scope-fence must order same-scope loads")
	}
	if !MayReorder(ScopeRelaxed, op(OpFenceScope, 3, 0), op(OpLoad, 7, 0x100)) {
		t.Error("scope-fence must be transparent to other scopes")
	}
	// PIM fence is transparent to plain loads/stores.
	if !MayReorder(ScopeRelaxed, op(OpFencePIM, mem.NoScope, 0), op(OpLoad, 7, 0x100)) {
		t.Error("PIM fence should not order plain loads")
	}
}

func TestFullFenceOrdersAll(t *testing.T) {
	fence := op(OpFenceFull, mem.NoScope, 0)
	for _, m := range AllVariants() {
		for _, o := range []OpRef{op(OpLoad, 3, 0), op(OpStore, 3, 0), op(OpPIM, 3, 0)} {
			if MayReorder(m, fence, o) || MayReorder(m, o, fence) {
				t.Errorf("%v: %v crossed a full fence", m, o)
			}
		}
	}
}

// Property: strictness is monotone — whenever the scope model forbids a
// reorder involving a PIM op, the store model forbids it too, and whenever
// store forbids it, atomic forbids it.
func TestModelStrictnessMonotone(t *testing.T) {
	classes := []OpClass{OpLoad, OpStore, OpPIM}
	prop := func(c1, c2, s1, s2 uint8) bool {
		a := op(classes[int(c1)%3], mem.ScopeID(s1%4), mem.LineAddr(uint64(s1%4)<<21))
		b := op(classes[int(c2)%3], mem.ScopeID(s2%4), mem.LineAddr(uint64(s2%4)<<21+64))
		if a.Class != OpPIM && b.Class != OpPIM {
			return true
		}
		relaxOrder := []Model{Atomic, Store, Scope, ScopeRelaxed}
		prev := false // MayReorder under stricter model
		for _, m := range relaxOrder {
			cur := MayReorder(m, a, b)
			if prev && !cur {
				return false // stricter model allowed what a more relaxed one forbids
			}
			prev = cur
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}
