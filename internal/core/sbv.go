package core

// SBV is the scope bit-vector of §IV-B: one bit per cache set, high when
// the set holds at least one cache line from a PIM-enabled scope. A cache
// scan for a PIM op only visits sets whose bit is high; the rest are
// skipped, which is what keeps LLC scan latency tens of cycles instead of
// thousands (Fig. 10c/d).
//
// Hardware updates the bit on insertion directly and, on eviction of a
// PIM-enabled line, re-checks the remaining lines of the set. The simulator
// tracks an exact per-set count of PIM-enabled lines, which yields the same
// bit value as the hardware's check.
type SBV struct {
	counts []uint32
}

// NewSBV builds a scope bit-vector for a cache with the given set count.
func NewSBV(sets int) *SBV {
	if sets <= 0 {
		panic("core: SBV needs positive set count")
	}
	return &SBV{counts: make([]uint32, sets)}
}

// OnInsert records insertion of a PIM-enabled line into set.
func (v *SBV) OnInsert(set int) { v.counts[set]++ }

// OnEvict records removal of a PIM-enabled line from set (eviction, flush,
// or invalidation).
func (v *SBV) OnEvict(set int) {
	if v.counts[set] == 0 {
		panic("core: SBV eviction underflow")
	}
	v.counts[set]--
}

// Test reports the bit of set: true when the set must be scanned.
func (v *SBV) Test(set int) bool { return v.counts[set] > 0 }

// Sets returns the number of sets covered.
func (v *SBV) Sets() int { return len(v.counts) }

// PopCount returns how many bits are high (sets a scan must visit).
func (v *SBV) PopCount() int {
	n := 0
	for _, c := range v.counts {
		if c > 0 {
			n++
		}
	}
	return n
}

// SkipRatio returns the fraction of sets a scan may skip (Fig. 10d).
func (v *SBV) SkipRatio() float64 {
	return 1 - float64(v.PopCount())/float64(len(v.counts))
}

// Bits returns the SRAM storage of the structure (one bit per set) for the
// area model.
func (v *SBV) Bits() int { return len(v.counts) }
