package core

import (
	"strings"
	"testing"

	"bulkpim/internal/mem"
)

const (
	lineA mem.LineAddr = 0x1000
	lineB mem.LineAddr = 0x2000
)

// TestFig1Cycle reproduces the paper's Fig. 1 scenario as recorded events:
// a PIM op writes A and B; another thread observes the new value of B and
// then the old value of A (a stale cache hit). The happens-before relation
// must be cyclic.
func TestFig1Cycle(t *testing.T) {
	r := NewRecorder(Store)

	// Thread 0: Write(A); MemFence; Write(B); MemFence; PIMop.
	wA := r.RecordOp(0, OpRef{Class: OpStore, Scope: 0, Line: lineA}, "W(A)=A0")
	r.RecordOp(0, OpRef{Class: OpFenceFull, Scope: mem.NoScope}, "fence")
	wB := r.RecordOp(0, OpRef{Class: OpStore, Scope: 0, Line: lineB}, "W(B)=B0")
	r.RecordOp(0, OpRef{Class: OpFenceFull, Scope: mem.NoScope}, "fence")
	pim := r.RecordOp(0, OpRef{Class: OpPIM, Scope: 0}, "PIMop")

	// Visibility order: W(A), W(B), then the PIM op rewrites both lines.
	r.RecordWrite(wA, lineA)
	r.RecordWrite(wB, lineB)
	r.RecordWrite(pim, lineA)
	r.RecordWrite(pim, lineB)

	// Thread 1: reads B twice (B0 then B1) and then reads A getting the
	// stale A0 from its cache.
	r1 := r.RecordOp(1, OpRef{Class: OpLoad, Scope: 0, Line: lineB}, "R(B)=B0")
	r.RecordRead(r1, lineB, wB)
	r2 := r.RecordOp(1, OpRef{Class: OpLoad, Scope: 0, Line: lineB}, "R(B)=B1")
	r.RecordRead(r2, lineB, pim)
	r3 := r.RecordOp(1, OpRef{Class: OpLoad, Scope: 0, Line: lineA}, "R(A)=A0 stale")
	r.RecordRead(r3, lineA, wA)

	c := r.FindCycle()
	if c == nil {
		t.Fatal("Fig. 1 execution must contain a happens-before cycle")
	}
	if s := c.String(); !strings.Contains(s, "->") {
		t.Fatalf("cycle rendering broken: %q", s)
	}
}

// TestFig1FixedByFlush shows the same run with a coherent final read
// (A1 from the PIM op, as the proposed models guarantee): acyclic.
func TestFig1FixedByFlush(t *testing.T) {
	r := NewRecorder(Store)
	wA := r.RecordOp(0, OpRef{Class: OpStore, Scope: 0, Line: lineA}, "W(A)")
	wB := r.RecordOp(0, OpRef{Class: OpStore, Scope: 0, Line: lineB}, "W(B)")
	pim := r.RecordOp(0, OpRef{Class: OpPIM, Scope: 0}, "PIMop")
	r.RecordWrite(wA, lineA)
	r.RecordWrite(wB, lineB)
	r.RecordWrite(pim, lineA)
	r.RecordWrite(pim, lineB)

	r1 := r.RecordOp(1, OpRef{Class: OpLoad, Scope: 0, Line: lineB}, "R(B)=B1")
	r.RecordRead(r1, lineB, pim)
	r2 := r.RecordOp(1, OpRef{Class: OpLoad, Scope: 0, Line: lineA}, "R(A)=A1")
	r.RecordRead(r2, lineA, pim)

	if c := r.FindCycle(); c != nil {
		t.Fatalf("coherent execution flagged cyclic: %v", c)
	}
}

// TestStoreBufferingAllowedByTSO: the classic SB litmus outcome
// (both loads read old values) is allowed under TSO because store->load
// reorders; the checker must not flag it.
func TestStoreBufferingAllowedByTSO(t *testing.T) {
	r := NewRecorder(Atomic)
	wA := r.RecordOp(0, OpRef{Class: OpStore, Scope: mem.NoScope, Line: lineA}, "W(A)")
	rb0 := r.RecordOp(0, OpRef{Class: OpLoad, Scope: mem.NoScope, Line: lineB}, "R(B)=init")
	wB := r.RecordOp(1, OpRef{Class: OpStore, Scope: mem.NoScope, Line: lineB}, "W(B)")
	ra1 := r.RecordOp(1, OpRef{Class: OpLoad, Scope: mem.NoScope, Line: lineA}, "R(A)=init")
	r.RecordWrite(wA, lineA)
	r.RecordWrite(wB, lineB)
	r.RecordRead(rb0, lineB, 0)
	r.RecordRead(ra1, lineA, 0)
	if c := r.FindCycle(); c != nil {
		t.Fatalf("TSO-legal store buffering flagged: %v", c)
	}
}

// TestStoreBufferingWithFencesForbidden: adding full fences between the
// store and load of each thread makes the relaxed outcome a violation.
func TestStoreBufferingWithFencesForbidden(t *testing.T) {
	r := NewRecorder(Atomic)
	wA := r.RecordOp(0, OpRef{Class: OpStore, Scope: mem.NoScope, Line: lineA}, "W(A)")
	r.RecordOp(0, OpRef{Class: OpFenceFull, Scope: mem.NoScope}, "fence")
	rb0 := r.RecordOp(0, OpRef{Class: OpLoad, Scope: mem.NoScope, Line: lineB}, "R(B)=init")
	wB := r.RecordOp(1, OpRef{Class: OpStore, Scope: mem.NoScope, Line: lineB}, "W(B)")
	r.RecordOp(1, OpRef{Class: OpFenceFull, Scope: mem.NoScope}, "fence")
	ra1 := r.RecordOp(1, OpRef{Class: OpLoad, Scope: mem.NoScope, Line: lineA}, "R(A)=init")
	r.RecordWrite(wA, lineA)
	r.RecordWrite(wB, lineB)
	r.RecordRead(rb0, lineB, 0)
	r.RecordRead(ra1, lineA, 0)
	if r.FindCycle() == nil {
		t.Fatal("fenced store buffering with both-old outcome must be cyclic")
	}
}

// TestScopeModelPIMLoadReorderAllowed: under the scope model, a load to
// another scope may be observed before an earlier PIM op; the same pattern
// is a violation under the atomic model.
func TestScopeModelPIMLoadReorderAllowed(t *testing.T) {
	build := func(m Model) *Recorder {
		r := NewRecorder(m)
		// Thread 0: PIM op on scope 0, then store to scope 1.
		pim := r.RecordOp(0, OpRef{Class: OpPIM, Scope: 0}, "PIM(s0)")
		st := r.RecordOp(0, OpRef{Class: OpStore, Scope: 1, Line: lineB}, "W(B,s1)")
		r.RecordWrite(st, lineB)
		r.RecordWrite(pim, lineA)
		// Thread 1: sees the store, then reads scope 0 pre-PIM.
		r1 := r.RecordOp(1, OpRef{Class: OpLoad, Scope: 1, Line: lineB}, "R(B)=new")
		r.RecordRead(r1, lineB, st)
		r2 := r.RecordOp(1, OpRef{Class: OpLoad, Scope: 0, Line: lineA}, "R(A)=init")
		r.RecordRead(r2, lineA, 0)
		return r
	}
	if c := build(Scope).FindCycle(); c != nil {
		t.Fatalf("scope model should allow PIM/other-scope reorder: %v", c)
	}
	if build(Atomic).FindCycle() == nil {
		t.Fatal("atomic model must forbid PIM/store reorder")
	}
}

func TestRecorderDisabled(t *testing.T) {
	r := NewRecorder(Atomic)
	r.Enabled = false
	if id := r.RecordOp(0, OpRef{Class: OpLoad}, "x"); id != 0 {
		t.Fatal("disabled recorder returned id")
	}
	r.RecordWrite(1, lineA)
	r.RecordRead(1, lineA, 0)
	if r.Events() != 0 {
		t.Fatal("disabled recorder stored events")
	}
	if r.FindCycle() != nil {
		t.Fatal("disabled recorder found cycle")
	}
}

func TestRecorderEventAccessors(t *testing.T) {
	r := NewRecorder(Atomic)
	id := r.RecordOp(2, OpRef{Class: OpStore, Line: lineA}, "w")
	ev := r.Event(id)
	if ev.Thread != 2 || ev.Label != "w" || ev.Op.Class != OpStore {
		t.Fatalf("event = %+v", ev)
	}
}
