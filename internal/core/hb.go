package core

import (
	"fmt"
	"strings"

	"bulkpim/internal/mem"
)

// EventID names one recorded memory event. 0 means "initial value" /
// unknown writer.
type EventID = uint64

// Event is one recorded memory operation.
type Event struct {
	ID     EventID
	Thread int
	Op     OpRef
	Label  string
}

// Recorder builds the happens-before relation of an execution and detects
// cycles in it — the formal statement of the paper's Fig. 1 problem: "a
// cyclic ordering without a well-defined happen-before relation". The
// relation is the union of:
//
//   - program order edges the model guarantees (OrderedAfter, Table I),
//   - rf: writer → reader (reads-from),
//   - ws: the per-line write serialization order,
//   - fr: reader → the write that overwrites the value it observed.
//
// An acyclic union means the execution is explainable by the model; a cycle
// means the hardware violated its own ordering rules (e.g. a stale cached
// value observed after a PIM op, §I).
type Recorder struct {
	// Model selects which program-order edges are guaranteed.
	Model Model
	// Enabled gates all recording; a disabled recorder is free.
	Enabled bool

	events     []Event
	threadOps  map[int][]EventID
	lineWrites map[mem.LineAddr][]EventID
	rf         map[EventID]EventID // reader -> writer (0 = initial value)
	readLine   map[EventID]mem.LineAddr
}

// NewRecorder returns an enabled recorder for model m.
func NewRecorder(m Model) *Recorder {
	return &Recorder{
		Model:      m,
		Enabled:    true,
		threadOps:  make(map[int][]EventID),
		lineWrites: make(map[mem.LineAddr][]EventID),
		rf:         make(map[EventID]EventID),
		readLine:   make(map[EventID]mem.LineAddr),
	}
}

// RecordOp appends an operation to thread's program order and returns its
// event ID (first ID is 1).
func (r *Recorder) RecordOp(thread int, op OpRef, label string) EventID {
	if !r.Enabled {
		return 0
	}
	id := EventID(len(r.events) + 1)
	r.events = append(r.events, Event{ID: id, Thread: thread, Op: op, Label: label})
	r.threadOps[thread] = append(r.threadOps[thread], id)
	return id
}

// RecordWrite appends event ev to line's write-serialization order. Call it
// at the operation's visibility point (store drain to an M-state line, PIM
// execution in the memory array).
func (r *Recorder) RecordWrite(ev EventID, line mem.LineAddr) {
	if !r.Enabled || ev == 0 {
		return
	}
	ws := r.lineWrites[line]
	if n := len(ws); n > 0 && ws[n-1] == ev {
		return // idempotent for multi-word stores to one line
	}
	r.lineWrites[line] = append(ws, ev)
}

// RecordRead links reader ev to the writer whose value it observed
// (writer 0 = initial memory contents).
func (r *Recorder) RecordRead(ev EventID, line mem.LineAddr, writer EventID) {
	if !r.Enabled || ev == 0 {
		return
	}
	r.rf[ev] = writer
	r.readLine[ev] = line
}

// Events returns the number of recorded events.
func (r *Recorder) Events() int { return len(r.events) }

// Event returns a recorded event by ID.
func (r *Recorder) Event(id EventID) Event { return r.events[id-1] }

// Cycle is a happens-before cycle: a sequence of events each ordered before
// the next, with the last ordered before the first.
type Cycle struct {
	Events []Event
	Kinds  []string // edge kind leaving each event: po/rf/ws/fr
}

func (c *Cycle) String() string {
	if c == nil {
		return "<no cycle>"
	}
	var b strings.Builder
	for i, e := range c.Events {
		fmt.Fprintf(&b, "[T%d %s %s]", e.Thread, e.Op.Class, e.Label)
		fmt.Fprintf(&b, " -%s-> ", c.Kinds[i])
	}
	if len(c.Events) > 0 {
		e := c.Events[0]
		fmt.Fprintf(&b, "[T%d %s %s]", e.Thread, e.Op.Class, e.Label)
	}
	return b.String()
}

type hbEdge struct {
	to   EventID
	kind string
}

// FindCycle builds the happens-before graph and returns a cycle if one
// exists, or nil for a consistent execution. Cost is quadratic in the
// longest thread's op count; recorders are meant for litmus-scale runs.
func (r *Recorder) FindCycle() *Cycle {
	n := len(r.events)
	adj := make([][]hbEdge, n+1)

	// Program order, filtered to guaranteed edges (Table I).
	for _, ops := range r.threadOps {
		for i := 0; i < len(ops); i++ {
			for j := i + 1; j < len(ops); j++ {
				a, b := r.events[ops[i]-1], r.events[ops[j]-1]
				if OrderedAfter(r.Model, a.Op, b.Op) {
					adj[ops[i]] = append(adj[ops[i]], hbEdge{ops[j], "po"})
				}
			}
		}
	}

	// Write serialization.
	for _, ws := range r.lineWrites {
		for i := 1; i < len(ws); i++ {
			adj[ws[i-1]] = append(adj[ws[i-1]], hbEdge{ws[i], "ws"})
		}
	}

	// Reads-from and from-read.
	for reader, writer := range r.rf {
		line := r.readLine[reader]
		ws := r.lineWrites[line]
		if writer != 0 {
			adj[writer] = append(adj[writer], hbEdge{reader, "rf"})
			for i, w := range ws {
				if w == writer {
					if i+1 < len(ws) {
						adj[reader] = append(adj[reader], hbEdge{ws[i+1], "fr"})
					}
					break
				}
			}
		} else if len(ws) > 0 {
			// Read of the initial value precedes every write of the line.
			adj[reader] = append(adj[reader], hbEdge{ws[0], "fr"})
		}
	}

	// Iterative DFS cycle detection.
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make([]uint8, n+1)
	parent := make([]EventID, n+1)
	parentKind := make([]string, n+1)

	var cycleStart, cycleEnd EventID
	var cycleKind string
	var dfs func(u EventID) bool
	dfs = func(u EventID) bool {
		color[u] = gray
		for _, e := range adj[u] {
			if color[e.to] == gray {
				cycleStart, cycleEnd, cycleKind = e.to, u, e.kind
				return true
			}
			if color[e.to] == white {
				parent[e.to] = u
				parentKind[e.to] = e.kind
				if dfs(e.to) {
					return true
				}
			}
		}
		color[u] = black
		return false
	}
	for id := EventID(1); id <= EventID(n); id++ {
		if color[id] == white && dfs(id) {
			// Reconstruct the cycle from cycleEnd back to cycleStart.
			var ids []EventID
			var kinds []string
			ids = append(ids, cycleEnd)
			kinds = append(kinds, cycleKind)
			for v := cycleEnd; v != cycleStart; v = parent[v] {
				ids = append(ids, parent[v])
				kinds = append(kinds, parentKind[v])
			}
			// ids is reversed (end..start); flip to start..end.
			c := &Cycle{}
			for i := len(ids) - 1; i >= 0; i-- {
				c.Events = append(c.Events, r.events[ids[i]-1])
			}
			for i := len(kinds) - 1; i >= 0; i-- {
				c.Kinds = append(c.Kinds, kinds[i])
			}
			return c
		}
	}
	return nil
}
