package core

import (
	"testing"
	"testing/quick"

	"bulkpim/internal/mem"
)

func TestScopeBufferBasic(t *testing.T) {
	b := NewScopeBuffer(4, 2)
	if b.Lookup(1) {
		t.Fatal("empty buffer hit")
	}
	b.Insert(1)
	if !b.Lookup(1) {
		t.Fatal("inserted scope missing")
	}
	if !b.Invalidate(1) {
		t.Fatal("invalidate missed")
	}
	if b.Lookup(1) {
		t.Fatal("invalidated scope still present")
	}
	if b.Invalidate(1) {
		t.Fatal("double invalidate reported success")
	}
}

func TestScopeBufferLRUEviction(t *testing.T) {
	// One set, two ways: scopes 0, 4, 8 all map to set 0 (4 sets).
	b := NewScopeBuffer(4, 2)
	b.Insert(0)
	b.Insert(4)
	b.Lookup(0) // make scope 4 the LRU
	b.Insert(8) // must evict 4
	if !b.Lookup(0) || !b.Lookup(8) {
		t.Fatal("expected scopes missing")
	}
	if b.Lookup(4) {
		t.Fatal("LRU scope not evicted")
	}
}

func TestScopeBufferReinsertRefreshes(t *testing.T) {
	b := NewScopeBuffer(1, 2)
	b.Insert(0)
	b.Insert(1)
	b.Insert(0) // refresh, no duplicate
	if b.Len() != 2 {
		t.Fatalf("len = %d, want 2", b.Len())
	}
	b.Insert(2) // evicts 1 (LRU)
	if b.Lookup(1) {
		t.Fatal("refresh did not update LRU")
	}
	if !b.Lookup(0) || !b.Lookup(2) {
		t.Fatal("expected scopes missing")
	}
}

func TestScopeBufferGeometryValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for zero ways")
		}
	}()
	NewScopeBuffer(4, 0)
}

func TestScopeBufferBits(t *testing.T) {
	b := NewScopeBuffer(64, 4)
	// 14-bit scope IDs, 6 index bits -> 8 tag + 1 valid + 2 LRU = 11 bits.
	if got := b.Bits(14); got != 64*4*11 {
		t.Fatalf("bits = %d, want %d", got, 64*4*11)
	}
}

// Property: a scope buffer never reports a scope it was not told about, and
// capacity is never exceeded.
func TestScopeBufferProperty(t *testing.T) {
	prop := func(ops []uint16) bool {
		b := NewScopeBuffer(8, 2)
		present := make(map[mem.ScopeID]bool)
		for _, o := range ops {
			s := mem.ScopeID(o % 64)
			switch o % 3 {
			case 0:
				b.Insert(s)
				present[s] = true
			case 1:
				b.Invalidate(s)
				present[s] = false
			case 2:
				if b.Lookup(s) && !present[s] {
					return false // hit on never-inserted or invalidated scope
				}
			}
			if b.Len() > b.Capacity() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestSBV(t *testing.T) {
	v := NewSBV(8)
	if v.Test(3) {
		t.Fatal("fresh SBV bit set")
	}
	v.OnInsert(3)
	v.OnInsert(3)
	if !v.Test(3) {
		t.Fatal("bit should be set")
	}
	v.OnEvict(3)
	if !v.Test(3) {
		t.Fatal("bit should remain set with one line left")
	}
	v.OnEvict(3)
	if v.Test(3) {
		t.Fatal("bit should clear when last PIM line leaves")
	}
	if v.PopCount() != 0 {
		t.Fatal("popcount wrong")
	}
	v.OnInsert(0)
	v.OnInsert(7)
	if v.PopCount() != 2 {
		t.Fatal("popcount wrong")
	}
	if got := v.SkipRatio(); got != 0.75 {
		t.Fatalf("skip ratio = %g, want 0.75", got)
	}
	if v.Bits() != 8 || v.Sets() != 8 {
		t.Fatal("geometry accessors wrong")
	}
}

func TestSBVUnderflowPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected underflow panic")
		}
	}()
	NewSBV(4).OnEvict(0)
}

// Property: SBV bit equals (insertions - evictions > 0) per set.
func TestSBVProperty(t *testing.T) {
	prop := func(ops []uint8) bool {
		v := NewSBV(4)
		counts := make([]int, 4)
		for _, o := range ops {
			set := int(o % 4)
			if o&0x80 != 0 && counts[set] > 0 {
				v.OnEvict(set)
				counts[set]--
			} else {
				v.OnInsert(set)
				counts[set]++
			}
		}
		for s := 0; s < 4; s++ {
			if v.Test(s) != (counts[s] > 0) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestAreaModelMatchesPaper(t *testing.T) {
	rep := EstimateArea(DefaultAreaConfig())
	// Paper §VI-A: 0.092% for the LLC structures, 0.22% for all caches.
	if rep.LLCOnlyCalibratedPct < 0.085 || rep.LLCOnlyCalibratedPct > 0.099 {
		t.Errorf("LLC overhead = %.4f%%, want ~0.092%%", rep.LLCOnlyCalibratedPct)
	}
	if rep.AllCachesCalibratedPct < 0.20 || rep.AllCachesCalibratedPct > 0.24 {
		t.Errorf("all-caches overhead = %.4f%%, want ~0.22%%", rep.AllCachesCalibratedPct)
	}
	// Raw bit ratios are strictly smaller and still tiny.
	if rep.LLCOnlyRawPct <= 0 || rep.LLCOnlyRawPct >= rep.LLCOnlyCalibratedPct {
		t.Errorf("raw pct %v not in (0, calibrated)", rep.LLCOnlyRawPct)
	}
	if rep.AllCachesCalibratedPct <= rep.LLCOnlyCalibratedPct {
		t.Error("all-caches overhead should exceed LLC-only")
	}
}
