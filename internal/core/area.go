package core

// Area model for the hardware-overhead claim of §VI-A: adding a scope
// buffer and an SBV to the L2 costs 0.092% of the cache area, and adding
// them to every cache (scope-relaxed model) costs 0.22% in total, measured
// with a Synopsys 28nm library.
//
// We reproduce the claim by exact SRAM bit counting plus a calibrated
// small-macro overhead: tiny SRAM arrays pay disproportionate periphery
// (decoders, sense amplifiers, comparators) relative to their bit count, so
// the effective area of an added structure is bits*cell + a fixed macro
// term. The macro constants are calibrated once against the paper's two
// percentages and documented here; the raw bit ratios are reported
// alongside so the calibration is transparent.

// CacheGeometry describes one cache level for area accounting.
type CacheGeometry struct {
	Sets, Ways int
	LineBytes  int
	// TagBits per line; StateBits for MESI; extra per-line metadata bits
	// (LRU share, PIM-enabled bit).
	TagBits, StateBits, MetaBits int
}

// DataBits returns the data-array storage.
func (g CacheGeometry) DataBits() int { return g.Sets * g.Ways * g.LineBytes * 8 }

// TagArrayBits returns the tag/state/metadata storage.
func (g CacheGeometry) TagArrayBits() int {
	return g.Sets * g.Ways * (g.TagBits + g.StateBits + g.MetaBits)
}

// TotalBits returns all SRAM bits of the cache.
func (g CacheGeometry) TotalBits() int { return g.DataBits() + g.TagArrayBits() }

// AreaConfig describes the system whose overhead is estimated.
type AreaConfig struct {
	LLC CacheGeometry
	// L1 geometry and how many L1s the host has.
	L1       CacheGeometry
	L1Count  int
	ScopeIDs int // number of addressable scopes (for tag width)

	LLCScopeBufferSets, LLCScopeBufferWays int
	L1ScopeBufferSets, L1ScopeBufferWays   int
}

// DefaultAreaConfig is the paper's Table II system: 16KB/4-way L1s x6,
// 2MB/16-way LLC, 64x4 LLC scope buffer, 16x1 L1 scope buffer, 32GB of
// 2MB scopes (16384 scope IDs).
func DefaultAreaConfig() AreaConfig {
	return AreaConfig{
		LLC:                CacheGeometry{Sets: 2048, Ways: 16, LineBytes: 64, TagBits: 31, StateBits: 2, MetaBits: 5},
		L1:                 CacheGeometry{Sets: 64, Ways: 4, LineBytes: 64, TagBits: 36, StateBits: 2, MetaBits: 3},
		L1Count:            6,
		ScopeIDs:           16384,
		LLCScopeBufferSets: 64, LLCScopeBufferWays: 4,
		L1ScopeBufferSets: 16, L1ScopeBufferWays: 1,
	}
}

// Calibrated macro overheads, in bit-equivalents: the periphery of each
// added structure expressed as the number of SRAM bitcells of equal area.
// Chosen so DefaultAreaConfig reproduces the paper's 0.092% / 0.22%
// (Synopsys 28nm synthesis, §VI-A).
const (
	llcMacroOverheadBits = 11720
	l1MacroOverheadBits  = 3916
)

// AreaReport carries both the raw bit ratio and the calibrated area ratio.
type AreaReport struct {
	// LLCOnly covers the atomic/store/scope models (structures at the LLC
	// only); AllCaches covers the scope-relaxed model.
	LLCOnlyRawPct, LLCOnlyCalibratedPct     float64
	AllCachesRawPct, AllCachesCalibratedPct float64

	LLCAddedBits, L1AddedBitsPerCache int
	LLCBits, TotalCacheBits           int
}

// EstimateArea computes the scope buffer + SBV overhead for cfg.
func EstimateArea(cfg AreaConfig) AreaReport {
	scopeBits := log2ceil(cfg.ScopeIDs)

	llcSB := NewScopeBuffer(cfg.LLCScopeBufferSets, cfg.LLCScopeBufferWays)
	llcAdded := llcSB.Bits(scopeBits) + cfg.LLC.Sets // SBV: one bit per set
	l1SB := NewScopeBuffer(cfg.L1ScopeBufferSets, cfg.L1ScopeBufferWays)
	l1Added := l1SB.Bits(scopeBits) + cfg.L1.Sets

	llcBits := cfg.LLC.TotalBits()
	totalBits := llcBits + cfg.L1Count*cfg.L1.TotalBits()

	rep := AreaReport{
		LLCAddedBits:        llcAdded,
		L1AddedBitsPerCache: l1Added,
		LLCBits:             llcBits,
		TotalCacheBits:      totalBits,
	}
	rep.LLCOnlyRawPct = 100 * float64(llcAdded) / float64(llcBits)
	rep.AllCachesRawPct = 100 * float64(llcAdded+cfg.L1Count*l1Added) / float64(totalBits)

	llcCal := float64(llcAdded + llcMacroOverheadBits)
	l1Cal := float64(l1Added + l1MacroOverheadBits)
	rep.LLCOnlyCalibratedPct = 100 * llcCal / float64(llcBits)
	rep.AllCachesCalibratedPct = 100 * (llcCal + float64(cfg.L1Count)*l1Cal) / float64(totalBits)
	return rep
}
