// Package core implements the paper's primary contribution: the four
// consistency models for bulk-bitwise PIM operations (§III), their
// machine-checkable ordering rules (Table I), and the hardware structures
// that make cache flushes atomic with PIM ops — the scope buffer (§IV-A)
// and the scope bit-vector (§IV-B) — plus a happens-before recorder that
// detects ordering-rule violations such as the cyclic execution of Fig. 1,
// and an SRAM area model for the hardware-overhead claim (§VI-A).
package core

import (
	"fmt"
	"strings"

	"bulkpim/internal/mem"
)

// Model selects how PIM operations are ordered with respect to other memory
// operations. The first three values are the paper's comparison baselines
// (§VI-C, Fig. 3); the last four are the proposed consistency models, from
// strictest to most relaxed (§III).
type Model uint8

const (
	// Naive issues PIM ops with no coherence or ordering support at all.
	// It does not guarantee correct execution; it bounds the overhead of
	// the real models (§VI-C).
	Naive Model = iota
	// SWFlush is the prior-work baseline ([9,25]): software explicitly
	// flushes cache lines before issuing PIM ops. Because the flushes and
	// the PIM op are not atomic, it cannot guarantee correctness (§I,
	// Fig. 1).
	SWFlush
	// Uncacheable marks PIM-enabled scopes uncacheable, the straightforward
	// coherence solution that the paper rejects for bulk-bitwise PIM
	// because result reads lose all cache locality (§IV, Fig. 3).
	Uncacheable
	// Atomic treats a PIM op as an atomic read-modify-write on its whole
	// scope: no memory operation of the issuing thread may reorder with it
	// (§III "atomic model").
	Atomic
	// Store gives PIM ops the ordering rules of store operations under the
	// host's (x86-TSO) consistency model: later loads to other scopes may
	// bypass a pending PIM op, stores may not (§III "store model").
	Store
	// Scope lets PIM ops reorder with any operation addressed to a
	// different scope, while staying strictly ordered with operations to
	// their own scope (§III "scope model").
	Scope
	// ScopeRelaxed lets PIM ops reorder with every memory operation,
	// including those of the same scope; ordering is re-established only
	// by explicit fences: the scope-fence (within one scope) and the
	// dedicated PIM fence of [21] (between scopes) (§III "scope-relaxed
	// model").
	ScopeRelaxed
)

// ProposedModels returns the paper's four consistency models, strictest
// first.
func ProposedModels() []Model { return []Model{Atomic, Store, Scope, ScopeRelaxed} }

// AllVariants returns every run mode: the three baselines followed by the
// four proposed models.
func AllVariants() []Model {
	return []Model{Naive, SWFlush, Uncacheable, Atomic, Store, Scope, ScopeRelaxed}
}

func (m Model) String() string {
	switch m {
	case Naive:
		return "naive"
	case SWFlush:
		return "swflush"
	case Uncacheable:
		return "uncacheable"
	case Atomic:
		return "atomic"
	case Store:
		return "store"
	case Scope:
		return "scope"
	case ScopeRelaxed:
		return "scope-relaxed"
	default:
		return fmt.Sprintf("model(%d)", uint8(m))
	}
}

// ParseModel converts a name (as printed by String) back to a Model.
func ParseModel(s string) (Model, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "naive":
		return Naive, nil
	case "swflush", "sw-flush":
		return SWFlush, nil
	case "uncacheable":
		return Uncacheable, nil
	case "atomic":
		return Atomic, nil
	case "store":
		return Store, nil
	case "scope":
		return Scope, nil
	case "scope-relaxed", "scoperelaxed", "scope_relaxed":
		return ScopeRelaxed, nil
	default:
		return Naive, fmt.Errorf("core: unknown model %q", s)
	}
}

// GuaranteesCorrectness reports whether the model provides the ordering and
// coherence guarantees of §III/§IV. The three baselines do not.
func (m Model) GuaranteesCorrectness() bool { return m >= Atomic }

// RequiresACK reports whether the memory controller must acknowledge PIM op
// arrival back to the host (Fig. 6a/b). The scope-relaxed model "does not
// require the memory controller to return an ACK" (§V-E); neither do the
// baselines, which impose no ordering.
func (m Model) RequiresACK() bool { return m == Atomic || m == Store || m == Scope }

// FlushesLLCOnPIMOp reports whether PIM ops scan-and-flush their scope from
// the LLC on the way to memory (§IV). This is what makes flushes atomic
// with the op; only the four proposed models do it.
func (m Model) FlushesLLCOnPIMOp() bool { return m >= Atomic }

// RoutesPIMThroughL1 reports whether PIM ops must traverse every cache
// level (without flushing them) so that scope-fences can order them; true
// only for the scope-relaxed model (§V-E).
func (m Model) RoutesPIMThroughL1() bool { return m == ScopeRelaxed }

// ScopeStructuresInAllCaches reports whether every cache level carries a
// scope buffer and SBV (scope-relaxed), or only the LLC (Table I).
func (m Model) ScopeStructuresInAllCaches() bool { return m == ScopeRelaxed }

// GateKind describes what the memory-subsystem entry point (the write
// buffer, §V-C/D) holds back while a PIM op awaits its ACK.
type GateKind uint8

const (
	// GateNone: nothing is held back (baselines, scope-relaxed).
	GateNone GateKind = iota
	// GateAll: the core stalls completely until the ACK (atomic model,
	// Fig. 6a: the PIM op does not commit until the ACK arrives).
	GateAll
	// GateStoreOrder: stores and PIM ops wait; loads to other scopes may
	// bypass, loads to the pending PIM op's scope wait (store model,
	// Fig. 6b under x86-TSO).
	GateStoreOrder
	// GateSameScope: only operations addressed to a scope with an
	// outstanding PIM op wait; the entry point is a non-FIFO write buffer
	// (scope model, §V-D).
	GateSameScope
)

// EntryGate returns the entry-point policy of the model.
func (m Model) EntryGate() GateKind {
	switch m {
	case Atomic:
		return GateAll
	case Store:
		return GateStoreOrder
	case Scope:
		return GateSameScope
	default:
		return GateNone
	}
}

// NeedsScopeFence reports whether software must issue scope-fences to order
// PIM ops with same-scope memory operations (scope-relaxed only).
func (m Model) NeedsScopeFence() bool { return m == ScopeRelaxed }

// NeedsPIMFence reports whether ordering between PIM ops of different
// scopes requires the dedicated fence of [21] (scope and scope-relaxed
// models, Table I).
func (m Model) NeedsPIMFence() bool { return m == Scope || m == ScopeRelaxed }

// Definition returns the Table I row for a proposed model: allowed
// reordering, additional fences, and scope buffer/SBV placement.
type Definition struct {
	Model            Model
	AllowedReorder   string
	AdditionalFences string
	Structures       string
}

// TableI returns the paper's Table I.
func TableI() []Definition {
	return []Definition{
		{Atomic, "None", "No", "Only LLC"},
		{Store, "Same as store operations", "No", "Only LLC"},
		{Scope, "All operations to other scopes", "Ordering between scopes", "Only LLC"},
		{ScopeRelaxed, "All operations except fences", "(1) Ordering within scope and (2) between scopes", "All caches"},
	}
}

// OpClass classifies a memory operation for the ordering rules.
type OpClass uint8

const (
	OpLoad OpClass = iota
	OpStore
	OpPIM
	OpFenceFull  // MemFence: orders everything
	OpFencePIM   // dedicated PIM fence of [21]: orders PIM ops across scopes
	OpFenceScope // scope-fence: orders operations of one scope (§V-E)
)

func (c OpClass) String() string {
	switch c {
	case OpLoad:
		return "load"
	case OpStore:
		return "store"
	case OpPIM:
		return "pim"
	case OpFenceFull:
		return "fence"
	case OpFencePIM:
		return "pimfence"
	case OpFenceScope:
		return "scopefence"
	default:
		return fmt.Sprintf("opclass(%d)", uint8(c))
	}
}

// OpRef identifies an operation for ordering purposes: its class, the scope
// it addresses (NoScope outside the PIM region; fences other than
// scope-fences use NoScope), and the line it touches (loads/stores).
type OpRef struct {
	Class OpClass
	Scope mem.ScopeID
	Line  mem.LineAddr
}

// sameLine is only meaningful for load/store pairs.
func sameLine(a, b OpRef) bool {
	return (a.Class == OpLoad || a.Class == OpStore) &&
		(b.Class == OpLoad || b.Class == OpStore) && a.Line == b.Line
}

// MayReorder reports whether, under model m, two operations issued by the
// same thread in program order (first, then second) are permitted to be
// observed out of order by another agent. This is the machine-readable
// form of Table I layered over an x86-TSO host:
//
//   - TSO base: only Store→Load may reorder, and never to the same line.
//   - Full fences order everything across them.
//   - PIM fences order PIM ops (and other PIM fences) across them.
//   - Scope-fences order operations addressed to their scope.
//   - PIM ops follow the model: atomic (never), store (as TSO stores, but
//     never with same-scope operations), scope (only with same-scope
//     operations), scope-relaxed (with everything except fences).
//
// Pairs not involving PIM ops or PIM fences are governed purely by the host
// model: the paper's models "extend, without violating, the existing host
// processor consistency model" (§III).
func MayReorder(m Model, first, second OpRef) bool {
	// Full fences are total: nothing crosses them.
	if first.Class == OpFenceFull || second.Class == OpFenceFull {
		return false
	}

	// Scope-fence: orders operations (loads, stores, PIM ops, and other
	// scope-fences) addressed to the same scope; transparent to the rest.
	if first.Class == OpFenceScope || second.Class == OpFenceScope {
		f, o := first, second
		if o.Class == OpFenceScope {
			f, o = second, first
		}
		if o.Class == OpFenceScope { // both scope-fences
			return f.Scope != o.Scope
		}
		return f.Scope != o.Scope
	}

	// PIM fence: orders PIM ops and other PIM fences across it.
	if first.Class == OpFencePIM || second.Class == OpFencePIM {
		f, o := first, second
		if o.Class == OpFencePIM {
			f, o = second, first
		}
		if o.Class == OpFencePIM { // both PIM fences
			return false
		}
		_ = f
		return o.Class != OpPIM
	}

	// PIM op pairs and PIM-vs-memory pairs follow the model.
	if first.Class == OpPIM || second.Class == OpPIM {
		p, o := first, second
		if o.Class == OpPIM {
			p, o = second, first
		}
		bothPIM := first.Class == OpPIM && second.Class == OpPIM
		sameScope := p.Scope == o.Scope
		switch m {
		case Atomic:
			return false
		case Store:
			// PIM op ≡ store: with another PIM op or a store, ordered
			// (TSO store-store); a later load may bypass an earlier PIM op
			// (TSO store→load), but "PIM ops must not reorder with memory
			// operations to the same scope" (§III).
			if sameScope {
				return false
			}
			if bothPIM || o.Class == OpStore {
				return false
			}
			// Load involved: TSO allows reordering only when the PIM op
			// is first (store→load); a load followed by a PIM op keeps
			// order (load→store).
			return first.Class == OpPIM
		case Scope:
			return !sameScope
		case ScopeRelaxed:
			return true
		default:
			// Baselines enforce nothing for PIM ops.
			return true
		}
	}

	// Host-only pair: x86-TSO. Only store→load reorders, never same line.
	if first.Class == OpStore && second.Class == OpLoad {
		return !sameLine(first, second)
	}
	return false
}

// OrderedAfter is the complement of MayReorder: the model guarantees that
// second becomes visible after first.
func OrderedAfter(m Model, first, second OpRef) bool { return !MayReorder(m, first, second) }
