package core

import "bulkpim/internal/mem"

// ScopeBuffer is the small cache-like structure of §IV-A. It is indexed by
// scope and holds entries for scopes that were recently scanned-and-flushed
// from the cache it is attached to. A hit means the cache can hold no line
// of that scope, so an arriving PIM op may be forwarded without a scan
// (Fig. 4a); a miss triggers a scan-and-flush followed by insertion
// (Fig. 4b). When a line of a scope is inserted into the cache, the scope's
// entry (if any) is erased, because the no-lines-present guarantee no
// longer holds.
type ScopeBuffer struct {
	sets, ways int
	entries    []sbEntry // sets*ways, set-major
	clock      uint64    // LRU timestamp source
}

type sbEntry struct {
	scope mem.ScopeID
	valid bool
	used  uint64
}

// NewScopeBuffer builds a scope buffer with the given geometry. The paper
// uses 64 sets x 4 ways at the LLC and 16 sets x 1 way at each L1
// (Table II).
func NewScopeBuffer(sets, ways int) *ScopeBuffer {
	if sets <= 0 || ways <= 0 {
		panic("core: scope buffer needs positive geometry")
	}
	return &ScopeBuffer{sets: sets, ways: ways, entries: make([]sbEntry, sets*ways)}
}

func (b *ScopeBuffer) set(s mem.ScopeID) []sbEntry {
	idx := int(uint64(s) % uint64(b.sets))
	return b.entries[idx*b.ways : (idx+1)*b.ways]
}

// Lookup reports whether scope s is present, refreshing its LRU age on hit.
func (b *ScopeBuffer) Lookup(s mem.ScopeID) bool {
	b.clock++
	for i := range b.set(s) {
		e := &b.set(s)[i]
		if e.valid && e.scope == s {
			e.used = b.clock
			return true
		}
	}
	return false
}

// Insert records scope s, evicting the LRU way of its set if needed
// ("the new scope simply overwrites an old scope according to a replacement
// policy with no additional action", §IV-A).
func (b *ScopeBuffer) Insert(s mem.ScopeID) {
	b.clock++
	set := b.set(s)
	victim := 0
	for i := range set {
		e := &set[i]
		if e.valid && e.scope == s { // refresh existing entry
			e.used = b.clock
			return
		}
		if !set[i].valid {
			victim = i
			break
		}
		if set[i].used < set[victim].used {
			victim = i
		}
	}
	set[victim] = sbEntry{scope: s, valid: true, used: b.clock}
}

// Invalidate erases scope s (called when a line of s is inserted into the
// attached cache). It reports whether an entry was erased.
func (b *ScopeBuffer) Invalidate(s mem.ScopeID) bool {
	for i := range b.set(s) {
		e := &b.set(s)[i]
		if e.valid && e.scope == s {
			e.valid = false
			return true
		}
	}
	return false
}

// Len returns the number of valid entries.
func (b *ScopeBuffer) Len() int {
	n := 0
	for i := range b.entries {
		if b.entries[i].valid {
			n++
		}
	}
	return n
}

// Capacity returns sets*ways.
func (b *ScopeBuffer) Capacity() int { return b.sets * b.ways }

// Bits returns the SRAM storage the structure needs, for the area model:
// per entry, a scope tag (scopeIDBits minus the index bits), a valid bit,
// and ceil(log2(ways)) LRU bits.
func (b *ScopeBuffer) Bits(scopeIDBits int) int {
	idxBits := log2ceil(b.sets)
	tag := scopeIDBits - idxBits
	if tag < 1 {
		tag = 1
	}
	per := tag + 1 + log2ceil(b.ways)
	return b.sets * b.ways * per
}

func log2ceil(n int) int {
	bits := 0
	for v := n - 1; v > 0; v >>= 1 {
		bits++
	}
	return bits
}
