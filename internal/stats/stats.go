// Package stats collects the measurements the paper's evaluation reports:
// counters (event counts), means sampled over a run (PIM buffer occupancy on
// arrival, LLC scan latency, SBV skip ratio), and small histograms. A
// Registry groups the stats of one simulated system so a run can be
// summarized and compared across consistency models.
package stats

import (
	"fmt"
	"sort"
	"strings"
)

// Counter is a monotonically increasing event count.
type Counter struct {
	n uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.n++ }

// Add adds d.
func (c *Counter) Add(d uint64) { c.n += d }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.n }

// Mean accumulates samples and reports their arithmetic mean.
type Mean struct {
	sum   float64
	count uint64
}

// Observe adds one sample.
func (m *Mean) Observe(v float64) {
	m.sum += v
	m.count++
}

// Value returns the mean (0 for no samples).
func (m *Mean) Value() float64 {
	if m.count == 0 {
		return 0
	}
	return m.sum / float64(m.count)
}

// Count returns the number of samples.
func (m *Mean) Count() uint64 { return m.count }

// Sum returns the accumulated total.
func (m *Mean) Sum() float64 { return m.sum }

// Ratio tracks hits out of total lookups (e.g. scope buffer hit rate).
type Ratio struct {
	hits, total uint64
}

// Hit records a successful lookup.
func (r *Ratio) Hit() { r.hits++; r.total++ }

// Miss records a failed lookup.
func (r *Ratio) Miss() { r.total++ }

// Value returns hits/total (0 for no lookups).
func (r *Ratio) Value() float64 {
	if r.total == 0 {
		return 0
	}
	return float64(r.hits) / float64(r.total)
}

// Hits returns the hit count.
func (r *Ratio) Hits() uint64 { return r.hits }

// Total returns the lookup count.
func (r *Ratio) Total() uint64 { return r.total }

// Histogram is a fixed-bucket latency histogram.
type Histogram struct {
	Bounds []float64 // ascending upper bounds; implicit +inf final bucket
	counts []uint64
	mean   Mean
}

// NewHistogram builds a histogram with the given ascending bucket bounds.
func NewHistogram(bounds ...float64) *Histogram {
	return &Histogram{Bounds: bounds, counts: make([]uint64, len(bounds)+1)}
}

// Observe adds one sample.
func (h *Histogram) Observe(v float64) {
	h.mean.Observe(v)
	for i, b := range h.Bounds {
		if v <= b {
			h.counts[i]++
			return
		}
	}
	h.counts[len(h.Bounds)]++
}

// Mean returns the sample mean.
func (h *Histogram) Mean() float64 { return h.mean.Value() }

// Count returns the number of samples.
func (h *Histogram) Count() uint64 { return h.mean.Count() }

// Bucket returns the count of bucket i (len(Bounds)+1 buckets).
func (h *Histogram) Bucket(i int) uint64 { return h.counts[i] }

// Registry is a named collection of stats for one simulated system.
type Registry struct {
	counters map[string]*Counter
	means    map[string]*Mean
	ratios   map[string]*Ratio
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		means:    make(map[string]*Mean),
		ratios:   make(map[string]*Ratio),
	}
}

// Counter returns (creating on demand) the named counter.
func (r *Registry) Counter(name string) *Counter {
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Mean returns (creating on demand) the named mean.
func (r *Registry) Mean(name string) *Mean {
	m := r.means[name]
	if m == nil {
		m = &Mean{}
		r.means[name] = m
	}
	return m
}

// Ratio returns (creating on demand) the named ratio.
func (r *Registry) Ratio(name string) *Ratio {
	x := r.ratios[name]
	if x == nil {
		x = &Ratio{}
		r.ratios[name] = x
	}
	return x
}

// Snapshot returns all values as a flat map (counters as float64).
func (r *Registry) Snapshot() map[string]float64 {
	out := make(map[string]float64, len(r.counters)+len(r.means)+len(r.ratios))
	for k, c := range r.counters {
		out[k] = float64(c.Value())
	}
	for k, m := range r.means {
		out[k] = m.Value()
	}
	for k, x := range r.ratios {
		out[k] = x.Value()
	}
	return out
}

// String renders the registry sorted by name, for debugging and reports.
func (r *Registry) String() string {
	snap := r.Snapshot()
	keys := make([]string, 0, len(snap))
	for k := range snap {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		fmt.Fprintf(&b, "%-40s %12.4f\n", k, snap[k])
	}
	return b.String()
}
