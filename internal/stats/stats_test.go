package stats

import (
	"strings"
	"testing"
)

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
}

func TestMean(t *testing.T) {
	var m Mean
	if m.Value() != 0 {
		t.Fatal("empty mean should be 0")
	}
	m.Observe(2)
	m.Observe(4)
	if m.Value() != 3 {
		t.Fatalf("mean = %g, want 3", m.Value())
	}
	if m.Count() != 2 || m.Sum() != 6 {
		t.Fatal("count/sum wrong")
	}
}

func TestRatio(t *testing.T) {
	var r Ratio
	if r.Value() != 0 {
		t.Fatal("empty ratio should be 0")
	}
	r.Hit()
	r.Hit()
	r.Miss()
	r.Hit()
	if got := r.Value(); got != 0.75 {
		t.Fatalf("ratio = %g, want 0.75", got)
	}
	if r.Hits() != 3 || r.Total() != 4 {
		t.Fatal("hits/total wrong")
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(10, 100)
	h.Observe(5)
	h.Observe(50)
	h.Observe(500)
	if h.Bucket(0) != 1 || h.Bucket(1) != 1 || h.Bucket(2) != 1 {
		t.Fatal("bucket placement wrong")
	}
	if h.Count() != 3 {
		t.Fatal("count wrong")
	}
	want := (5.0 + 50 + 500) / 3
	if h.Mean() != want {
		t.Fatalf("mean = %g, want %g", h.Mean(), want)
	}
}

func TestRegistry(t *testing.T) {
	r := NewRegistry()
	r.Counter("a").Inc()
	r.Mean("b").Observe(2.5)
	r.Ratio("c").Hit()
	if r.Counter("a").Value() != 1 {
		t.Fatal("counter not shared by name")
	}
	snap := r.Snapshot()
	if snap["a"] != 1 || snap["b"] != 2.5 || snap["c"] != 1 {
		t.Fatalf("snapshot = %v", snap)
	}
	s := r.String()
	if !strings.Contains(s, "a") || !strings.Contains(s, "b") {
		t.Fatal("String missing entries")
	}
}
