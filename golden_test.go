package bulkpim

// Golden-file report tests: smoke-scale expected reports are committed
// under testdata/ and compared byte-for-byte. Cross-run byte-identity
// (cold vs warm, sharded vs single-process) is checked elsewhere; the
// goldens additionally pin the bytes across commits, so an accidental
// simulator or formatting change cannot slip through as "still
// self-consistent". After an intentional change, regenerate with:
//
//	go test -run TestGolden -update
//
// and review the diff like any other code change.

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files under testdata/ with current output")

// checkGolden compares got against testdata/<name>, rewriting the file
// instead when -update is set. Mismatches report the first differing
// line, not a byte dump.
func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", path, len(got))
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file %s (regenerate with `go test -run TestGolden -update`): %v", path, err)
	}
	if bytes.Equal(want, []byte(got)) {
		return
	}
	wantLines := bytes.Split(want, []byte("\n"))
	gotLines := bytes.Split([]byte(got), []byte("\n"))
	for i := 0; i < len(wantLines) || i < len(gotLines); i++ {
		var w, g []byte
		if i < len(wantLines) {
			w = wantLines[i]
		}
		if i < len(gotLines) {
			g = gotLines[i]
		}
		if !bytes.Equal(w, g) {
			t.Fatalf("%s: first difference at line %d:\nwant: %s\ngot:  %s\n(%d vs %d bytes; regenerate with -update if intentional)",
				path, i+1, w, g, len(want), len(got))
		}
	}
	t.Fatalf("%s differs (%d vs %d bytes)", path, len(want), len(got))
}

// goldenReport renders one experiment at smoke scale.
func goldenReport(t *testing.T, exp string) string {
	t.Helper()
	out, err := RunExperiment(exp, Options{Scale: ScaleSmoke})
	if err != nil {
		t.Fatalf("%s: %v", exp, err)
	}
	if out == "" {
		t.Fatalf("%s: empty report", exp)
	}
	return out
}

// TestGoldenReportAllSmoke pins the entire smoke-scale suite output —
// the same bytes the CI shard and coord jobs compare runs against.
func TestGoldenReportAllSmoke(t *testing.T) {
	checkGolden(t, "all_smoke.golden", goldenReport(t, "all"))
}

// TestGoldenReportFig1 pins the litmus verdict table on its own: the
// paper's headline consistency claims, cheap to regenerate and read.
func TestGoldenReportFig1(t *testing.T) {
	checkGolden(t, "fig1_smoke.golden", goldenReport(t, "fig1"))
}

// TestGoldenReportArea pins the hardware-overhead table (§VI-A), which
// is scale-independent.
func TestGoldenReportArea(t *testing.T) {
	checkGolden(t, "area_smoke.golden", goldenReport(t, "area"))
}

// TestGoldenCoversEveryStandaloneExperiment: the all_smoke golden must
// contain every standalone experiment's section header, so a spec
// silently dropped from the registry cannot keep the golden green.
func TestGoldenCoversEveryStandaloneExperiment(t *testing.T) {
	b, err := os.ReadFile(filepath.Join("testdata", "all_smoke.golden"))
	if err != nil {
		t.Skipf("golden not generated yet: %v", err)
	}
	for _, name := range StandaloneExperiments() {
		if !bytes.Contains(b, []byte(fmt.Sprintf("==== %s ====", name))) {
			t.Fatalf("all_smoke.golden missing section for %s", name)
		}
	}
}

// goldenExemptions lists registry experiments deliberately shipped
// without a per-experiment golden, each with the reason. Empty today:
// every spec renders standalone. An entry here is reviewed like code —
// TestGoldenPerExperimentCoverage refuses both silent gaps and stale
// exemptions.
var goldenExemptions = map[string]string{}

// TestGoldenReportEachExperiment pins every registry experiment's
// standalone smoke report under testdata/<name>_smoke.golden. The
// all_smoke golden pins the suite as one document; these pin each
// report in isolation, so a regression localized to one experiment
// names itself in the failure.
func TestGoldenReportEachExperiment(t *testing.T) {
	for _, name := range StandaloneExperiments() {
		if reason, ok := goldenExemptions[name]; ok {
			t.Logf("%s exempt from per-experiment golden: %s", name, reason)
			continue
		}
		t.Run(name, func(t *testing.T) {
			checkGolden(t, name+"_smoke.golden", goldenReport(t, name))
		})
	}
}

// TestGoldenPerExperimentCoverage: every registry experiment has
// either a committed per-experiment golden or an explicit exemption —
// and never both, so an exemption cannot linger after the golden
// lands. A new spec added to the registry fails here until its golden
// is generated (go test -run TestGolden -update) or its absence is
// justified in goldenExemptions.
func TestGoldenPerExperimentCoverage(t *testing.T) {
	for _, name := range StandaloneExperiments() {
		path := filepath.Join("testdata", name+"_smoke.golden")
		_, err := os.Stat(path)
		_, exempt := goldenExemptions[name]
		switch {
		case err == nil && exempt:
			t.Errorf("%s has both a golden and an exemption — drop the goldenExemptions entry", name)
		case os.IsNotExist(err) && !exempt:
			t.Errorf("%s has neither %s nor a goldenExemptions entry (generate with `go test -run TestGolden -update`)", name, path)
		case err != nil && !os.IsNotExist(err):
			t.Fatal(err)
		}
	}
}
