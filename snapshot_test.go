package bulkpim

// Tests for the workload snapshot glue: planning must generate no
// workloads, a snapshot-warm suite run must generate none either while
// staying byte-identical, and the coordinator's pre-warm must publish
// the big databases exactly once.

import (
	"fmt"
	"strings"
	"testing"

	"bulkpim/internal/snapshot"
)

// runAllReport runs the whole suite at smoke scale and returns the
// concatenated reports, the byte-stable form the other paths are
// compared against.
func runAllReport(t *testing.T, opts Options) string {
	t.Helper()
	var b strings.Builder
	if _, err := RunAll(opts, func(name, report string) {
		fmt.Fprintf(&b, "==== %s ====\n%s\n", name, report)
	}, nil); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

// TestSnapshotSkipsRegeneration is the snapshot counterpart of
// TestPlanExecutesNothing: a run against a warm snapshot store must
// perform zero workload generations (every generateYCSB/generateTPCH
// routes through the genCount instrumentation) and still emit reports
// byte-identical to both its own cold run and a store-less run.
func TestSnapshotSkipsRegeneration(t *testing.T) {
	dir := t.TempDir()
	snap, err := OpenSnapshotStore(dir)
	if err != nil {
		t.Fatal(err)
	}

	before := genCount.Load()
	cold := runAllReport(t, Options{Scale: ScaleSmoke, Snapshots: snap})
	coldGen := genCount.Load() - before
	if coldGen == 0 {
		t.Fatal("cold run generated no workloads — the instrumentation is broken")
	}
	if st := snap.Stats(); st.Stores != int(coldGen) {
		t.Fatalf("cold run generated %d workloads but published %d (%+v)", coldGen, st.Stores, st)
	}

	// A fresh handle over the same directory — a new process — must be
	// served entirely from snapshots.
	warmStore, err := OpenSnapshotStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	before = genCount.Load()
	warm := runAllReport(t, Options{Scale: ScaleSmoke, Snapshots: warmStore})
	if got := genCount.Load() - before; got != 0 {
		t.Fatalf("snapshot-warm run generated %d workloads, want 0", got)
	}
	if st := warmStore.Stats(); st.Misses != 0 || st.Hits == 0 || st.Corrupt != 0 {
		t.Fatalf("warm-run store stats = %+v, want all hits", st)
	}
	if warm != cold {
		t.Fatal("snapshot-warm report differs from cold run")
	}

	plain := runAllReport(t, Options{Scale: ScaleSmoke})
	if plain != cold {
		t.Fatal("snapshot-backed report differs from store-less run")
	}
}

// TestPlanGeneratesNoWorkloads mirrors TestPlanExecutesNothing one
// layer down: planning (and fingerprinting) the full-scale suite must
// neither generate a workload nor even consult the snapshot store —
// generation is deferred into the job closures.
func TestPlanGeneratesNoWorkloads(t *testing.T) {
	snap, err := OpenSnapshotStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	before := genCount.Load()
	planned, err := planFor("all", Options{Scale: ScaleFull, Snapshots: snap})
	if err != nil {
		t.Fatal(err)
	}
	jobs := 0
	for _, p := range planned {
		for _, j := range p.jobs {
			jobs++
			if j.FingerprintID() == "" {
				t.Fatalf("%s: job without fingerprint", p.name)
			}
		}
	}
	if jobs == 0 {
		t.Fatal("full-scale suite planned zero jobs")
	}
	if got := genCount.Load() - before; got != 0 {
		t.Fatalf("planning generated %d workloads, want 0", got)
	}
	if st := snap.Stats(); st.Hits+st.Misses != 0 {
		t.Fatalf("planning consulted the snapshot store: %+v", st)
	}
}

// TestPrewarmSnapshots: the coordinator's pre-warm publishes the
// biggest databases the planned experiment actually uses, exactly once
// — a second pre-warm finds them by presence check without loading —
// and is a no-op without a store or for plans that never touch them.
func TestPrewarmSnapshots(t *testing.T) {
	snap, err := OpenSnapshotStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{Scale: ScaleSmoke, Snapshots: snap}
	if n := PrewarmSnapshots("all", opts); n != 2 {
		t.Fatalf("first pre-warm generated %d databases, want 2 (default + fig13 shape)", n)
	}
	if n := PrewarmSnapshots("all", opts); n != 0 {
		t.Fatalf("second pre-warm regenerated %d databases, want 0", n)
	}
	st := snap.Stats()
	if st.Stores != 2 {
		t.Fatalf("pre-warm published %d snapshots, want 2 (%+v)", st.Stores, st)
	}
	// The second pre-warm must use the header-only presence check, not
	// full loads of multi-GB payloads it would only discard.
	if st.Hits != 0 {
		t.Fatalf("second pre-warm loaded %d snapshots instead of presence-checking (%+v)", st.Hits, st)
	}
	if n := PrewarmSnapshots("all", Options{Scale: ScaleSmoke}); n != 0 {
		t.Fatalf("store-less pre-warm generated %d databases, want no-op", n)
	}

	// Plan awareness: a table-only experiment plans no workloads, and a
	// fig13-only run needs only the 8-thread shape.
	empty, err := OpenSnapshotStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if n := PrewarmSnapshots("table1", Options{Scale: ScaleSmoke, Snapshots: empty}); n != 0 {
		t.Fatalf("table-only pre-warm generated %d databases, want 0", n)
	}
	if n := PrewarmSnapshots("fig13", Options{Scale: ScaleSmoke, Snapshots: empty}); n != 1 {
		t.Fatalf("fig13 pre-warm generated %d databases, want 1 (8-thread shape only)", n)
	}

	// The pre-warmed databases are the ones the extension batches load:
	// the ablation runs entirely on the largest default-shape database,
	// so against the pre-warmed store it must generate nothing.
	before := genCount.Load()
	if _, err := RunExperiment("ablation", opts); err != nil {
		t.Fatal(err)
	}
	if got := genCount.Load() - before; got != 0 {
		t.Fatalf("ablation after pre-warm generated %d workloads, want 0", got)
	}
}

// TestGenerateYCSBFallsBackOnCorruptSnapshot: a snapshot that loads
// but fails to decode regenerates (and republishes) instead of
// erroring — snapshots are an accelerator, not a dependency.
func TestGenerateYCSBFallsBackOnCorruptSnapshot(t *testing.T) {
	snap, err := OpenSnapshotStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{Scale: ScaleSmoke}
	p := opts.lastRecordsParams()
	w := generateYCSB(snap, p)

	// Publish a valid store entry whose payload is not a decodable
	// workload: the store's integrity hash passes, the gob layer must
	// reject it, and generation must take over.
	identity := ycsbIdentity(p)
	if err := snap.Save(snapshot.ID(identity), identity, []byte("valid store entry, junk payload")); err != nil {
		t.Fatal(err)
	}
	before := genCount.Load()
	w2 := generateYCSB(snap, p)
	if got := genCount.Load() - before; got != 1 {
		t.Fatalf("undecodable snapshot triggered %d generations, want 1", got)
	}
	if w2.Scopes != w.Scopes || w2.P != w.P {
		t.Fatal("fallback generated a different workload")
	}
	// The optimistic store hit must be re-booked as a corrupt miss, so
	// the hit-rate stats reflect workloads served, not bytes read.
	if st := snap.Stats(); st.Hits != 0 || st.Corrupt != 1 || st.Misses != 2 {
		// Misses: the initial cold generation plus the re-booked one.
		t.Fatalf("decode failure not re-booked as corrupt miss: %+v", st)
	}
}
