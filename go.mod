module bulkpim

go 1.24
