package bulkpim

// Fault-tolerant coordinated execution, built on internal/coord: the
// coordinator plans the suite, dedups it to distinct simulations
// (dedupPlan — the same rule the shard pipeline uses), and dispatches
// individual jobs to a fleet of `pimbench work` subprocesses with
// dynamic work-stealing, retrying jobs from crashed or erroring
// workers on the survivors. Every finished result streams straight
// into the shared result cache — under the canonical key and every
// alias — so a mid-run kill loses at most in-flight jobs and a
// subsequent report pass (pimbench -exp ... -cache-dir ...) is served
// entirely from cache hits, byte-identical to a single-process run.

import (
	"errors"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"sync"

	"bulkpim/internal/coord"
)

// CoordOptions configures a coordinated run.
type CoordOptions struct {
	// Workers is the worker-subprocess fleet size; <= 0 means
	// GOMAXPROCS (never more than the distinct job count).
	Workers int
	// WorkerCmd is the worker launch template. Empty re-executes the
	// current binary; otherwise it is split on whitespace and its
	// "{args}" field expands to the work-subcommand arguments (appended
	// when absent) — e.g. "ssh build-02 /opt/pimbench {args}" for an
	// ssh-style remote worker.
	WorkerCmd string
	// Progress, when non-nil, receives the live jobs-done/ETA footer.
	Progress io.Writer
	// WorkerStderr, when non-nil, receives the workers' stderr (their
	// log channel); nil discards it.
	WorkerStderr io.Writer
	// FailWorker/FailAfter are the crash-injection test hook: with
	// FailAfter > 0, worker FailWorker is launched with `-fail-after
	// FailAfter` and dies after serving that many jobs — losing its
	// next job in flight, which the coordinator must retry elsewhere.
	FailWorker int
	FailAfter  int
	// Stream, when non-nil, receives each artifact emission the moment
	// its last planned job settles (see ReportStream): the coordinated
	// run renders figures coordinator-side from worker results instead
	// of deferring everything to a warm report pass. Workers stay
	// execute-only. Calls arrive serialized.
	Stream func(StreamEmit)
}

// CoordSummary accounts one coordinated run.
type CoordSummary struct {
	// Planned counts the suite's manifest entries; Distinct the unique
	// simulations after fingerprint dedup; Done/Failed the settled
	// tasks; Retried the re-dispatches after worker crashes or job
	// errors; WorkersLost the workers that failed to launch or died.
	Planned, Distinct, Done, Failed, Retried, WorkersLost int
	// Stored counts cache entries written, aliases included.
	Stored int
}

func (s CoordSummary) String() string {
	return fmt.Sprintf("%d/%d distinct jobs done (%d planned, %d failed, %d retried, %d workers lost), %d cache entries",
		s.Done, s.Distinct, s.Planned, s.Failed, s.Retried, s.WorkersLost, s.Stored)
}

// coordWorkArgs builds the work-subcommand argv a coordinator hands to
// its workers: every option a worker needs to independently re-derive
// the coordinator's plan (experiment, scale, seed) plus the shared
// resources it should attach to (the snapshot store directory). Any
// future Options field that changes planning or execution must be
// propagated here — TestCoordWorkArgsRoundTrip asserts the full
// round-trip through the work subcommand's flag set, so a field added
// without a flag fails loudly instead of silently skewing workers.
func coordWorkArgs(name string, opts Options) []string {
	args := []string{"work", "-exp", name, "-scale", string(opts.Scale),
		"-seed", strconv.FormatUint(opts.Seed, 10)}
	if opts.Snapshots != nil {
		args = append(args, "-snapshot-dir", opts.Snapshots.Dir())
	}
	return args
}

// workerArgv builds one worker's launch argv from the template. See
// CoordOptions.WorkerCmd for the template grammar.
func workerArgv(tmpl string, workArgs []string) ([]string, error) {
	if tmpl == "" {
		exe, err := os.Executable()
		if err != nil {
			return nil, fmt.Errorf("worker argv: %w", err)
		}
		return append([]string{exe}, workArgs...), nil
	}
	fields := strings.Fields(tmpl)
	if len(fields) == 0 {
		return nil, errors.New("blank -worker-cmd template")
	}
	var argv []string
	expanded := false
	for _, f := range fields {
		if f == "{args}" {
			argv = append(argv, workArgs...)
			expanded = true
			continue
		}
		argv = append(argv, f)
	}
	if !expanded {
		argv = append(argv, workArgs...)
	}
	return argv, nil
}

// Coordinate is the coordinator half of `pimbench coord`: an
// execute-only fleet run of the named experiment ("all" for the suite)
// whose results land in opts.Cache as they finish. Reports stay with a
// later warm pass against the same cache. The run completes as long as
// at least one worker survives; a completed run returns nil even if
// workers were lost along the way.
func Coordinate(name string, opts Options, copts CoordOptions) (CoordSummary, error) {
	var sum CoordSummary
	if opts.Cache == nil {
		return sum, errors.New("coordinated run needs Options.Cache: results stream into the shared result cache")
	}
	planned, err := planFor(name, opts)
	if err != nil {
		return sum, err
	}
	groups, manifest := dedupPlan(planned)
	sum.Planned, sum.Distinct = len(manifest), len(groups)

	// coord.Run logs from every worker goroutine, but Options.Log's
	// contract does not require goroutine-safety (RunAll serializes its
	// calls), so serialize it here before fanning it out.
	logf := opts.log
	if opts.Log != nil {
		var logMu sync.Mutex
		base := opts.Log
		logf = func(format string, args ...any) {
			logMu.Lock()
			defer logMu.Unlock()
			base(format, args...)
		}
	}

	tasks := make([]coord.Task, len(groups))
	keysOf := make(map[string][]string, len(groups))
	for i, g := range groups {
		tasks[i] = coord.Task{Key: g.keys[0], Fingerprint: g.fp}
		keysOf[g.fp] = g.keys
	}

	// The streaming countdown listens on the same alias keys the cache
	// writes below fan out to, so artifacts complete exactly when their
	// last distinct simulation settles — including ones whose keys this
	// experiment shares with a sibling's fingerprint group.
	var stream *ReportStream
	if copts.Stream != nil {
		if stream, err = NewReportStream(name, opts, copts.Stream); err != nil {
			return sum, err
		}
	}

	// Pre-warm the snapshot store before any worker launches: the
	// biggest databases this plan references are published once by the
	// coordinator, so the fleet — sharing the store's filesystem —
	// loads them instead of racing to regenerate them per worker. The
	// already-built plan is reused; the suite is not planned twice.
	if opts.Snapshots != nil {
		if n := prewarmPlanned(opts, plannedIdentities(planned)); n > 0 {
			logf("coord: pre-warmed %d workload snapshot(s) into %s", n, opts.Snapshots.Dir())
		}
	}

	workArgs := coordWorkArgs(name, opts)
	launch := func(id int) (coord.Worker, error) {
		args := workArgs
		if copts.FailAfter > 0 && id == copts.FailWorker {
			args = append(append([]string(nil), args...),
				"-fail-after", strconv.Itoa(copts.FailAfter))
		}
		argv, err := workerArgv(copts.WorkerCmd, args)
		if err != nil {
			return nil, err
		}
		w, hello, err := coord.StartProc(id, argv, copts.WorkerStderr)
		if err != nil {
			return nil, err
		}
		if hello.Distinct != len(tasks) {
			w.Close()
			return nil, fmt.Errorf("worker planned %d distinct jobs, coordinator planned %d (version or flag skew?)",
				hello.Distinct, len(tasks))
		}
		return w, nil
	}

	// OnResult is serialized by the dispatcher, so the summary counters
	// and the cache appends need no extra locking; streaming each
	// result as it settles is what bounds a mid-run kill's loss to
	// in-flight jobs.
	onResult := func(done, total int, o coord.Outcome) {
		if o.Err != nil {
			logf("[%d/%d] %s FAILED: %v", done, total, o.Task.Key, o.Err)
			if stream != nil {
				for _, key := range keysOf[o.Task.Fingerprint] {
					stream.Settle(key, Result{}, o.Err)
				}
			}
			return
		}
		for _, key := range keysOf[o.Task.Fingerprint] {
			if err := opts.Cache.Store(key, o.Task.Fingerprint, o.Value); err != nil {
				logf("cache store %s: %v", key, err)
			} else {
				sum.Stored++
			}
		}
		if stream != nil {
			for _, key := range keysOf[o.Task.Fingerprint] {
				stream.Settle(key, o.Value, nil)
			}
		}
		logf("[%d/%d] %s done on worker %d (attempt %d)",
			done, total, o.Task.Key, o.Worker, o.Attempts)
	}

	csum, err := coord.Run(tasks, coord.Options{
		Workers:  copts.Workers,
		Launch:   launch,
		OnResult: onResult,
		Progress: copts.Progress,
		Log:      logf,
	})
	sum.Done, sum.Failed = csum.Done, csum.Failed
	sum.Retried, sum.WorkersLost = csum.Retried, csum.WorkersLost
	return sum, err
}

// ServeWork is the worker half — the hidden `pimbench work` endpoint:
// it plans the same suite the coordinator did (planning is
// deterministic, so both derive identical fingerprint groups), then
// executes jobs by fingerprint as protocol requests arrive on in,
// replying on out. failAfter > 0 is the crash-injection test hook
// (serve that many jobs, then exit 3 on the next).
func ServeWork(name string, opts Options, in io.Reader, out io.Writer, failAfter int) error {
	planned, err := planFor(name, opts)
	if err != nil {
		return err
	}
	groups, _ := dedupPlan(planned)
	byFP := make(map[string]SimJob, len(groups))
	for _, g := range groups {
		byFP[g.fp] = g.job
	}
	execute := func(key, fingerprint string) (r Result, err error) {
		j, ok := byFP[fingerprint]
		if !ok {
			return r, fmt.Errorf("unknown fingerprint %s for %s (plan skew between coordinator and worker?)",
				fingerprint, key)
		}
		// A panicking point becomes a job-level error frame, mirroring
		// the in-process runner's panic capture: the worker survives to
		// serve its siblings.
		defer func() {
			if p := recover(); p != nil {
				err = fmt.Errorf("panic: %v", p)
			}
		}()
		return j.Job().Run()
	}
	return coord.Serve(in, out, coord.ServeOptions{
		Distinct:  len(groups),
		Execute:   execute,
		FailAfter: failAfter,
		Log:       opts.Log,
	})
}
