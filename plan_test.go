package bulkpim

// Tests for the plan/execute separation and the distributed pipeline's
// planning half: planning must execute zero simulation work, manifests
// must be deterministic, and shards must partition the suite exactly.

import (
	"reflect"
	"strings"
	"testing"
)

// TestPlanExecutesNothing is the plan/execute separation contract:
// planning every experiment — at the paper's full measurement volume —
// and fingerprinting every planned job must invoke no job's Execute.
// (Every spec routes its Execute closures through the countExec
// instrumentation.)
func TestPlanExecutesNothing(t *testing.T) {
	before := execCount.Load()
	planned, err := planFor("all", Options{Scale: ScaleFull})
	if err != nil {
		t.Fatal(err)
	}
	jobs := 0
	for _, p := range planned {
		for _, j := range p.jobs {
			jobs++
			if j.Key == "" || j.FingerprintID() == "" {
				t.Fatalf("%s: job without key/fingerprint: %+v", p.name, j)
			}
		}
	}
	if jobs == 0 {
		t.Fatal("full-scale suite planned zero jobs")
	}
	if got := execCount.Load() - before; got != 0 {
		t.Fatalf("planning executed %d simulation jobs, want 0", got)
	}
}

// TestManifestDeterministic: two plans of the same options must agree
// exactly — the property that lets every machine of a distributed run
// derive the same manifest independently.
func TestManifestDeterministic(t *testing.T) {
	opts := Options{Scale: ScaleQuick}
	a, err := Manifest("all", opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Manifest("all", opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) == 0 || !reflect.DeepEqual(a, b) {
		t.Fatalf("manifests differ or empty: %d vs %d entries", len(a), len(b))
	}
}

// TestManifestKeyFingerprintCoherent: within one suite manifest, a job
// key must always carry the same fingerprint — grid points shared
// across experiments (the Naive baselines) are one unit of work, and
// merge validation depends on (key, fingerprint) identifying it.
func TestManifestKeyFingerprintCoherent(t *testing.T) {
	manifest, err := Manifest("all", Options{Scale: ScaleSmoke})
	if err != nil {
		t.Fatal(err)
	}
	fp := map[string]string{}
	for _, j := range manifest {
		if prev, ok := fp[j.Key]; ok && prev != j.Fingerprint {
			t.Fatalf("key %s planned with two fingerprints: %s vs %s", j.Key, prev, j.Fingerprint)
		}
		fp[j.Key] = j.Fingerprint
	}
}

// TestShardPartitionProperty: for every shard count n in 1..16 over
// the paper's full-scale manifest, the shards must partition the
// suite — ShardOf gives every key exactly one owner, and the n
// FilterManifest slices are pairwise disjoint with their multiset
// union equal to the full manifest (so independently planned shard
// runs can never skip or duplicate work).
func TestShardPartitionProperty(t *testing.T) {
	manifest, err := Manifest("all", Options{Scale: ScaleFull})
	if err != nil {
		t.Fatal(err)
	}
	if len(manifest) == 0 {
		t.Fatal("empty full-scale manifest")
	}
	want := map[PlannedJob]int{}
	for _, j := range manifest {
		want[j]++
	}
	for n := 1; n <= 16; n++ {
		perShard := make([]int, n)
		for _, j := range manifest {
			owners := 0
			for i := 0; i < n; i++ {
				if (Shard{Index: i, Count: n}).Owns(j.Key) {
					owners++
					perShard[i]++
				}
			}
			if owners != 1 {
				t.Fatalf("n=%d: key %s owned by %d shards, want exactly 1", n, j.Key, owners)
			}
		}
		if n > 1 {
			empty := 0
			for _, c := range perShard {
				if c == 0 {
					empty++
				}
			}
			// The full-scale suite has far more keys than shards; a
			// totally empty shard would mean a degenerate hash.
			if empty == n-1 {
				t.Fatalf("n=%d: all keys hashed to one shard: %v", n, perShard)
			}
		}

		// FilterManifest applies dedup-then-assign ownership: the n
		// filtered slices must cover every manifest entry exactly once
		// (multiset equality ⇒ pairwise disjoint + complete cover).
		got := map[PlannedJob]int{}
		total := 0
		for i := 0; i < n; i++ {
			f := FilterManifest(manifest, Shard{Index: i, Count: n})
			total += len(f)
			for _, j := range f {
				got[j]++
			}
		}
		if total != len(manifest) || !reflect.DeepEqual(got, want) {
			t.Fatalf("n=%d: filtered manifests are not a partition: %d entries over shards, %d in manifest",
				n, total, len(manifest))
		}
	}
}

// TestParseShard covers the accepted and rejected spellings.
func TestParseShard(t *testing.T) {
	sh, err := ParseShard("2/4")
	if err != nil || sh.Index != 2 || sh.Count != 4 || sh.String() != "2/4" {
		t.Fatalf("ParseShard(2/4) = %+v, %v", sh, err)
	}
	for _, bad := range []string{"", "x", "1", "4/4", "-1/4", "0/0", "a/b", "1/2/4", "0/2x", " 0/2"} {
		if _, err := ParseShard(bad); err == nil {
			t.Errorf("ParseShard(%q) accepted", bad)
		}
	}
}

// TestRegistryResolution: the advertised experiment lists and the
// dispatch path both derive from the registry, so every listed name
// must resolve and every standalone name must be a canonical spec.
func TestRegistryResolution(t *testing.T) {
	for _, name := range StandaloneExperiments() {
		spec, ok := LookupExperiment(name)
		if !ok || spec.Name != name {
			t.Fatalf("standalone %q resolves to %q (ok=%v)", name, spec.Name, ok)
		}
	}
	for _, name := range Experiments() {
		if name == "all" {
			continue
		}
		if _, ok := LookupExperiment(name); !ok {
			t.Fatalf("listed experiment %q does not resolve", name)
		}
	}
	// Bundled artifacts resolve to their owning sweep's spec.
	for bundle, owner := range map[string]string{"fig10": "fig7", "fig9": "fig8"} {
		spec, ok := LookupExperiment(bundle)
		if !ok || spec.Name != owner {
			t.Fatalf("bundle %q resolves to %q (ok=%v), want %q", bundle, spec.Name, ok, owner)
		}
	}
	if _, ok := LookupExperiment("all"); ok {
		t.Fatal("\"all\" must not be a registered spec (it is the suite)")
	}
}

// TestExecuteShardCoversSuite: executing every shard of a 3-way split
// at smoke scale must cover exactly the suite's distinct jobs, and a
// report pass against the combined cache must be fully warm and
// byte-identical to an uncached run.
func TestExecuteShardCoversSuite(t *testing.T) {
	cache, err := OpenResultCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer cache.Close()
	opts := Options{Scale: ScaleSmoke, Cache: cache}

	manifest, err := Manifest("all", opts)
	if err != nil {
		t.Fatal(err)
	}
	executed := 0
	var distinct int
	for i := 0; i < 3; i++ {
		sh := Shard{Index: i, Count: 3}
		sum, err := ExecuteShard("all", opts, sh)
		if err != nil {
			t.Fatalf("shard %d: %v", i, err)
		}
		executed += sum.Owned
		distinct = sum.Distinct
		// `plan -shard` and `run -shard` must agree: the filtered
		// manifest's distinct fingerprints are exactly the simulations
		// this shard executed.
		fps := map[string]bool{}
		for _, j := range FilterManifest(manifest, sh) {
			fps[j.Fingerprint] = true
		}
		if len(fps) != sum.Owned {
			t.Fatalf("shard %d: filtered manifest has %d distinct fingerprints, executed %d",
				i, len(fps), sum.Owned)
		}
	}
	if executed != distinct {
		t.Fatalf("shards executed %d jobs, suite has %d distinct", executed, distinct)
	}

	afterShards := cache.Stats()
	var warm strings.Builder
	if _, err := RunAll(opts, func(name, report string) {
		warm.WriteString("==== " + name + " ====\n" + report + "\n")
	}, nil); err != nil {
		t.Fatal(err)
	}
	stats := cache.Stats()
	if stats.Misses != afterShards.Misses {
		t.Fatalf("report pass after sharded execution missed the cache: %+v -> %+v", afterShards, stats)
	}

	var cold strings.Builder
	if _, err := RunAll(Options{Scale: ScaleSmoke}, func(name, report string) {
		cold.WriteString("==== " + name + " ====\n" + report + "\n")
	}, nil); err != nil {
		t.Fatal(err)
	}
	if warm.String() != cold.String() {
		t.Fatal("sharded+cached report differs from direct run")
	}
}
