package bulkpim

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"bulkpim/internal/coord"
	"bulkpim/internal/serve"
)

// jobSpec builds a dynamic-job spec the way the daemon does from an
// API request.
func jobSpec(exp, scale string, seed uint64, overrides string) coord.JobSpec {
	return coord.JobSpec{Exp: exp, Scale: scale, Seed: seed, Overrides: overrides}
}

func TestParseConfigOverride(t *testing.T) {
	mut, err := ParseConfigOverride([]byte(`{"Cores":3,"MCQueue":16}`))
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	mut(&cfg)
	if cfg.Cores != 3 || cfg.MCQueue != 16 {
		t.Fatalf("override not applied: Cores=%d MCQueue=%d", cfg.Cores, cfg.MCQueue)
	}
	// Untouched fields keep their prior values.
	if cfg.Banks != DefaultConfig().Banks {
		t.Fatalf("override clobbered Banks: %d", cfg.Banks)
	}

	for _, empty := range []string{"", "   ", "null"} {
		mut, err := ParseConfigOverride([]byte(empty))
		if err != nil || mut != nil {
			t.Fatalf("ParseConfigOverride(%q) = %p, %v; want nil, nil", empty, mut, err)
		}
	}

	for _, bad := range []string{
		`{"NoSuchKnob":1}`,    // unknown field
		`{"Cores":"three"}`,   // type mismatch
		`[1,2,3]`,             // not an object
		`{"Cores":2} {"x":1}`, // trailing data
		`{"Cores":`,           // truncated
		`true`,
	} {
		if _, err := ParseConfigOverride([]byte(bad)); err == nil {
			t.Errorf("ParseConfigOverride(%q) accepted", bad)
		}
	}
}

// Override-carrying requests must shift every fingerprint: the plan
// digests the final mutated Config (overrides win over the grid's own
// Mutate), so an overridden grid can never collide with — or poison —
// the base grid's cache entries.
func TestConfigOverrideShiftsFingerprints(t *testing.T) {
	pc := newPlanCache(Options{})
	base, err := pc.resolve(jobSpec("fig3", "smoke", 0, ""))
	if err != nil {
		t.Fatal(err)
	}
	over, err := pc.resolve(jobSpec("fig3", "smoke", 0, `{"MCQueue":64}`))
	if err != nil {
		t.Fatal(err)
	}
	if len(base.points) == 0 || len(base.points) != len(over.points) {
		t.Fatalf("point counts: base %d, override %d", len(base.points), len(over.points))
	}
	baseFPs := map[string]bool{}
	for _, p := range base.points {
		baseFPs[p.Fingerprint] = true
	}
	for _, p := range over.points {
		if baseFPs[p.Fingerprint] {
			t.Fatalf("override did not shift fingerprint of %s", p.Key)
		}
	}
	// Same spec resolves to the same memoized plan.
	again, err := pc.resolve(jobSpec("fig3", "smoke", 0, `{"MCQueue":64}`))
	if err != nil || again != over {
		t.Fatalf("memo miss on identical spec: %p vs %p, %v", again, over, err)
	}

	// Bad specs are rejected at resolve time, before any worker sees them.
	for _, bad := range []coord.JobSpec{
		jobSpec("fig3", "galactic", 0, ""),
		jobSpec("fig99", "smoke", 0, ""),
		jobSpec("fig3", "smoke", 0, `{"NoSuchKnob":1}`),
	} {
		if _, err := pc.resolve(bad); err == nil {
			t.Errorf("resolve(%+v) accepted", bad)
		}
	}
}

func FuzzConfigOverride(f *testing.F) {
	f.Add([]byte(`{"Cores":4,"MCQueue":16}`))
	f.Add([]byte(`{"PIMZeroLatency":true,"Seed":18446744073709551615}`))
	f.Add([]byte(`{"ClockGHz":1e999}`))
	f.Add([]byte(`{"Cores":2} garbage`))
	f.Add([]byte(`{"Core`))
	f.Add([]byte(`null`))
	f.Add([]byte("\xff\xfe{}"))
	f.Fuzz(func(t *testing.T, data []byte) {
		mut, err := ParseConfigOverride(data)
		if err != nil {
			if err.Error() == "" {
				t.Fatal("empty error for rejected override")
			}
			return
		}
		if mut == nil {
			return // empty/null override
		}
		cfg := DefaultConfig()
		mut(&cfg) // an accepted override must apply without panicking
	})
}

// startLocalServer boots a daemon on an ephemeral port with in-process
// workers and a fresh cache, returning its base URL.
func startLocalServer(t *testing.T, opts Options, sopts ServerOptions) (*Server, string) {
	t.Helper()
	sopts.Local = true
	if sopts.Addr == "" {
		sopts.Addr = "127.0.0.1:0"
	}
	srv, err := NewServer(opts, sopts)
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	})
	return srv, "http://" + srv.Addr()
}

// submitJob POSTs one request and returns the response job status.
func submitJob(t *testing.T, url, body string) serve.JobStatus {
	t.Helper()
	resp, err := http.Post(url+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st serve.JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /v1/jobs %s: status %d, decode err %v", body, resp.StatusCode, err)
	}
	return st
}

// awaitJob polls a job until it settles.
func awaitJob(t *testing.T, url, id string) serve.JobStatus {
	t.Helper()
	deadline := time.Now().Add(2 * time.Minute)
	for {
		resp, err := http.Get(url + "/v1/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var st serve.JobStatus
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil || resp.StatusCode != http.StatusOK {
			t.Fatalf("GET /v1/jobs/%s: status %d, decode err %v", id, resp.StatusCode, err)
		}
		if st.Status != "pending" {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s still pending after 2m: %+v", id, st)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestServeHTTPDedupExactlyOnce is the cross-request in-flight dedup
// property on the HTTP path: N concurrent clients submit overlapping
// grids against a cold cache, and each distinct fingerprint in the
// union of their plans executes exactly once — the serving analogue of
// TestCoordinateDeliversEachFingerprintOnce. Executions are counted by
// the registry's global Execute counter, so equality with the distinct
// union is exactly-once (every miss must execute at least once to
// settle done).
func TestServeHTTPDedupExactlyOnce(t *testing.T) {
	cache, err := OpenResultCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer cache.Close()
	opts := Options{Cache: cache}
	_, url := startLocalServer(t, opts, ServerOptions{Workers: 4})

	// The expected distinct-fingerprint union of everything the clients
	// will request, planned independently of the daemon.
	shapes := []string{"fig3", "fig1"}
	want := map[string]bool{}
	for _, exp := range shapes {
		o := opts
		o.Scale = ScaleSmoke
		planned, err := planFor(exp, o)
		if err != nil {
			t.Fatal(err)
		}
		groups, _ := dedupPlan(planned)
		for _, g := range groups {
			want[g.fp] = true
		}
	}

	base := execCount.Load()
	const clients = 8
	ids := make([]string, clients)
	var wg sync.WaitGroup
	errc := make(chan error, clients)
	for i := 0; i < clients; i++ {
		exp := shapes[i%len(shapes)]
		wg.Add(1)
		go func(i int, exp string) {
			defer wg.Done()
			body := fmt.Sprintf(`{"experiment":%q,"scale":"smoke"}`, exp)
			resp, err := http.Post(url+"/v1/jobs", "application/json", strings.NewReader(body))
			if err != nil {
				errc <- err
				return
			}
			defer resp.Body.Close()
			var st serve.JobStatus
			if err := json.NewDecoder(resp.Body).Decode(&st); err != nil || resp.StatusCode != http.StatusOK {
				errc <- fmt.Errorf("client %d: status %d, err %v", i, resp.StatusCode, err)
				return
			}
			ids[i] = st.ID
		}(i, exp)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}

	for i, id := range ids {
		st := awaitJob(t, url, id)
		if st.Status != "done" {
			t.Fatalf("client %d job %s settled %q: errors %v", i, id, st.Status, st.Errors)
		}
		if len(st.Results) != st.Points {
			t.Errorf("client %d: %d results for %d points", i, len(st.Results), st.Points)
		}
	}

	if got := execCount.Load() - base; got != int64(len(want)) {
		t.Fatalf("executed %d simulations for %d distinct fingerprints — dedup across requests failed", got, len(want))
	}

	// Warm repeat: pure cache hits, settled in the submit response,
	// zero further executions.
	st := submitJob(t, url, `{"experiment":"fig3","scale":"smoke"}`)
	if st.Status != "done" || st.Cached != st.Points || st.Points == 0 {
		t.Fatalf("warm submit not served from cache: %+v", st)
	}
	if got := execCount.Load() - base; got != int64(len(want)) {
		t.Fatalf("warm submit executed work: %d executions for %d fingerprints", got, len(want))
	}
}

// TestServeExperimentCatalog: GET /v1/experiments advertises every
// registry spec with its bundled aliases and per-spec artifact list —
// the discovery surface clients use before submitting jobs or polling
// artifacts.
func TestServeExperimentCatalog(t *testing.T) {
	cache, err := OpenResultCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer cache.Close()
	_, url := startLocalServer(t, Options{Cache: cache}, ServerOptions{Workers: 1})

	resp, err := http.Get(url + "/v1/experiments")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var payload struct {
		Experiments []serve.ExperimentInfo `json:"experiments"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&payload); err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/experiments: status %d, err %v", resp.StatusCode, err)
	}
	if len(payload.Experiments) != len(StandaloneExperiments()) {
		t.Fatalf("%d catalog entries, want %d", len(payload.Experiments), len(StandaloneExperiments()))
	}
	byName := map[string]serve.ExperimentInfo{}
	total := 0
	for _, e := range payload.Experiments {
		byName[e.Name] = e
		total += len(e.Artifacts)
	}
	if total != 18 {
		t.Fatalf("catalog lists %d artifacts suite-wide, want 18", total)
	}
	fig7 := byName["fig7"]
	if strings.Join(fig7.Artifacts, ",") != "fig7,fig10" || strings.Join(fig7.Bundles, ",") != "fig10" {
		t.Fatalf("fig7 catalog entry: %+v", fig7)
	}
	if tb := byName["table2"]; len(tb.Artifacts) != 1 || tb.Artifacts[0] != "table2" {
		t.Fatalf("table2 catalog entry: %+v", tb)
	}
}

// TestServeArtifactEndpoint drives GET /v1/artifacts/{name} cold to
// warm: pending with missing keys against an empty cache, then — after
// the owning experiment's job settles — ready with output identical to
// an in-process run's report. Job documents expose the same
// per-artifact countdown.
func TestServeArtifactEndpoint(t *testing.T) {
	cache, err := OpenResultCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer cache.Close()
	_, url := startLocalServer(t, Options{Cache: cache}, ServerOptions{Workers: 2})

	getArtifact := func(name, query string) (serve.ArtifactStatus, int) {
		t.Helper()
		resp, err := http.Get(url + "/v1/artifacts/" + name + query)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var st serve.ArtifactStatus
		if resp.StatusCode == http.StatusOK {
			if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
				t.Fatalf("GET /v1/artifacts/%s: %v", name, err)
			}
		}
		return st, resp.StatusCode
	}

	// Unknown artifact: 404. Missing scale: 400.
	if _, code := getArtifact("fig99", "?scale=smoke"); code != http.StatusNotFound {
		t.Fatalf("unknown artifact: status %d, want 404", code)
	}
	if _, code := getArtifact("fig1", ""); code != http.StatusBadRequest {
		t.Fatalf("missing scale: status %d, want 400", code)
	}

	// Cold: every key missing, no output.
	st, code := getArtifact("fig1", "?scale=smoke")
	if code != http.StatusOK {
		t.Fatalf("cold artifact status %d", code)
	}
	if st.Ready || st.Settled != 0 || st.Keys == 0 || len(st.Missing) == 0 || st.Output != "" {
		t.Fatalf("cold artifact not pending: %+v", st)
	}
	if st.Experiment != "fig1" || st.Scale != "smoke" {
		t.Fatalf("artifact identity: %+v", st)
	}

	// Run the experiment through the job API; the job document carries
	// the artifact countdown and settles it to ready.
	job := submitJob(t, url, `{"experiment":"fig1","scale":"smoke"}`)
	done := awaitJob(t, url, job.ID)
	if done.Status != "done" {
		t.Fatalf("job settled %q: %v", done.Status, done.Errors)
	}
	if len(done.Artifacts) != 1 || done.Artifacts[0].Name != "fig1" ||
		!done.Artifacts[0].Ready || done.Artifacts[0].Settled != done.Artifacts[0].Keys {
		t.Fatalf("job artifact countdown: %+v", done.Artifacts)
	}

	// Warm: ready, with output byte-identical to an in-process run.
	st, code = getArtifact("fig1", "?scale=smoke")
	if code != http.StatusOK || !st.Ready || st.Settled != st.Keys || len(st.Missing) != 0 {
		t.Fatalf("warm artifact not ready: status %d, %+v", code, st)
	}
	want, err := RunExperiment("fig1", Options{Scale: ScaleSmoke, Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	if st.Output != want {
		t.Fatalf("artifact output diverges from the in-process report:\n--- serve ---\n%s\n--- run ---\n%s",
			st.Output, want)
	}

	// A bundled artifact resolves through its owner: fig10's status
	// reports fig7 as the owning experiment.
	st, code = getArtifact("fig10", "?scale=smoke")
	if code != http.StatusOK || st.Experiment != "fig7" || st.Artifact != "fig10" {
		t.Fatalf("bundled artifact resolution: status %d, %+v", code, st)
	}

	// Static tables are renderable with zero keys: always ready.
	st, code = getArtifact("table2", "?scale=smoke")
	if code != http.StatusOK || !st.Ready || st.Keys != 0 || st.Output == "" {
		t.Fatalf("static table artifact: status %d, %+v", code, st)
	}
}
