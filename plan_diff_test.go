package bulkpim

import (
	"encoding/json"
	"strings"
	"testing"
)

func smokeEnvelope(t *testing.T, name string) ManifestEnvelope {
	t.Helper()
	opts := Options{Scale: ScaleSmoke}
	manifest, err := Manifest(name, opts)
	if err != nil {
		t.Fatalf("manifest %s: %v", name, err)
	}
	return NewManifestEnvelope(name, opts, "test-build", manifest)
}

// TestManifestEnvelopeRoundTrip: the envelope survives its own JSON
// encoding through ParseManifest unchanged.
func TestManifestEnvelopeRoundTrip(t *testing.T) {
	env := smokeEnvelope(t, "fig3")
	if env.Version != ManifestVersion || env.Schema == "" {
		t.Fatalf("envelope missing version stamps: %+v", env)
	}
	data, err := json.Marshal(env)
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseManifest(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.Experiment != env.Experiment || back.Scale != env.Scale ||
		back.Seed != env.Seed || len(back.Jobs) != len(env.Jobs) {
		t.Fatalf("round-trip skew: %+v vs %+v", back, env)
	}
}

// TestParseManifestRejects: pre-envelope bare arrays, foreign envelope
// versions and junk all fail loudly — a manifest that cannot be judged
// compatible must never feed a diff that reports nothing to do.
func TestParseManifestRejects(t *testing.T) {
	cases := []struct {
		name, data, want string
	}{
		{"empty", "", "empty"},
		{"bare array", `[{"experiment":"fig3","key":"k","fingerprint":"f"}]`, "older pimbench build"},
		{"foreign version", `{"manifest_version":"bulkpim-manifest-v999","schema_version":"s","experiment":"fig3","scale":"smoke","seed":0,"jobs":[]}`, "re-plan with this build"},
		{"missing version", `{"schema_version":"s","experiment":"fig3","scale":"smoke","seed":0,"jobs":[]}`, "re-plan with this build"},
		{"unknown field", `{"manifest_version":"bulkpim-manifest-v1","schema_version":"s","experiment":"fig3","scale":"smoke","seed":0,"jobs":[],"extra":1}`, "extra"},
	}
	for _, c := range cases {
		if _, err := ParseManifest([]byte(c.data)); err == nil {
			t.Errorf("%s: accepted", c.name)
		} else if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.want)
		}
	}
}

// TestDiffManifestsIdentical: a self-diff plans nothing and loses
// nothing.
func TestDiffManifestsIdentical(t *testing.T) {
	env := smokeEnvelope(t, "all")
	d := DiffManifests(env, env)
	if len(d.Invalidated) != 0 || len(d.Removed) != 0 || d.SchemaChanged {
		t.Fatalf("self-diff not empty: %s", d.Summary())
	}
	if d.Unchanged != len(env.Jobs) || d.UnchangedGroups == 0 {
		t.Fatalf("self-diff accounting: %s (want %d unchanged)", d.Summary(), len(env.Jobs))
	}
}

// TestDiffManifestsSchemaBump: a result-cache schema-version change
// invalidates every fingerprint — the cached results are unreadable,
// so fingerprint overlap is irrelevant.
func TestDiffManifestsSchemaBump(t *testing.T) {
	cur := smokeEnvelope(t, "fig3")
	old := cur
	old.Schema = "bulkpim-resultcache-v0-ancient"
	d := DiffManifests(old, cur)
	if !d.SchemaChanged {
		t.Fatal("schema change not detected")
	}
	if len(d.Invalidated) != len(cur.Jobs) || d.Unchanged != 0 {
		t.Fatalf("schema bump must invalidate everything: %s", d.Summary())
	}
	if !strings.Contains(d.Summary(), "schema version changed") {
		t.Fatalf("summary does not flag the schema change: %s", d.Summary())
	}
}

// TestDiffManifestsAliasGroup: the alias keys of one fingerprint group
// diff as one unit — mutating the group's fingerprint in the prior
// manifest invalidates every one of its manifest entries but only one
// fingerprint group.
func TestDiffManifestsAliasGroup(t *testing.T) {
	cur := smokeEnvelope(t, "all")
	byFP := map[string]int{}
	for _, j := range cur.Jobs {
		byFP[j.Fingerprint]++
	}
	groupFP, groupSize := "", 0
	for fp, n := range byFP {
		if n > 1 {
			groupFP, groupSize = fp, n
			break
		}
	}
	if groupFP == "" {
		t.Fatal("smoke suite has no multi-key fingerprint group; the alias-unit case needs one")
	}

	old := cur
	old.Jobs = append([]PlannedJob{}, cur.Jobs...)
	for i, j := range old.Jobs {
		if j.Fingerprint == groupFP {
			old.Jobs[i].Fingerprint = "0000000000000000000000000000dead"
		}
	}
	d := DiffManifests(old, cur)
	if len(d.Invalidated) != groupSize || d.InvalidatedGroups != 1 {
		t.Fatalf("alias group must invalidate as one unit of %d entries: %s", groupSize, d.Summary())
	}
	for _, j := range d.Invalidated {
		if j.Fingerprint != groupFP {
			t.Fatalf("invalidated a foreign fingerprint: %+v", j)
		}
	}
	// The mutated prior fingerprint no longer exists in the current
	// plan, so its entries are reported as removed, not dropped.
	if len(d.Removed) != groupSize {
		t.Fatalf("%d removed entries, want the prior group's %d", len(d.Removed), groupSize)
	}
}

// TestDiffManifestsRemovedReported: grid points the new plan no longer
// produces are listed, never silently discarded.
func TestDiffManifestsRemovedReported(t *testing.T) {
	cur := smokeEnvelope(t, "fig3")
	old := cur
	old.Jobs = append(append([]PlannedJob{}, cur.Jobs...),
		PlannedJob{Experiment: "fig3", Key: "ycsb/records=999/model=ghost",
			Fingerprint: "feedfacefeedfacefeedfacefeedface"})
	d := DiffManifests(old, cur)
	if len(d.Invalidated) != 0 {
		t.Fatalf("nothing new was planned: %s", d.Summary())
	}
	if len(d.Removed) != 1 || d.Removed[0].Key != "ycsb/records=999/model=ghost" {
		t.Fatalf("dropped grid point not reported: %+v", d.Removed)
	}
}

// TestDiffManifestsConfigEdit simulates the incremental-run scenario:
// a config-param edit shifts exactly one experiment's fingerprints, so
// the diff plans that experiment's jobs and nothing else.
func TestDiffManifestsConfigEdit(t *testing.T) {
	old := smokeEnvelope(t, "all")
	cur := old
	cur.Jobs = append([]PlannedJob{}, old.Jobs...)
	edited := 0
	for i, j := range cur.Jobs {
		if j.Experiment == "fig13" {
			cur.Jobs[i].Fingerprint = "c0ffee" + j.Fingerprint[6:]
			edited++
		}
	}
	if edited == 0 {
		t.Fatal("no fig13 jobs in the smoke suite")
	}
	d := DiffManifests(old, cur)
	if len(d.Invalidated) != edited {
		t.Fatalf("%d invalidated, want exactly the %d edited jobs: %s", len(d.Invalidated), edited, d.Summary())
	}
	for _, j := range d.Invalidated {
		if j.Experiment != "fig13" {
			t.Fatalf("untouched experiment invalidated: %+v", j)
		}
	}
	if d.Unchanged != len(old.Jobs)-edited {
		t.Fatalf("unchanged accounting off: %s", d.Summary())
	}
}
