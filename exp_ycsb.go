package bulkpim

// YCSB-swept experiments: Fig. 3 (coherence baselines), Fig. 7 + Fig. 10
// (the six variants plus system statistics), Fig. 11a/b (harness
// ablations), Fig. 12 (8MB LLC) and Fig. 13 (8 threads / 16 cores).
// Each is an ExperimentSpec whose Plan enumerates (records x model)
// grid points and whose artifacts fold looked-up results into series.
// The grid — key format included — is the contract between the
// phases: Plan, Artifacts and Render all enumerate it through
// ycsbGrid, so jobs, countdown key sets and lookups cannot drift.

import (
	"fmt"
	"strings"
	"sync"

	"bulkpim/internal/report"
	"bulkpim/internal/workload/ycsb"
)

// fig3Variants / fig7Variants are the paper's series.
var (
	fig3Variants = []Model{Naive, Uncacheable, SWFlush}
	fig7Variants = []Model{Naive, SWFlush, Atomic, Store, Scope, ScopeRelaxed}
)

// variantNames maps models to series names.
func variantNames(models []Model) []string {
	out := make([]string, len(models))
	for i, m := range models {
		out[i] = m.String()
	}
	return out
}

// ycsbParams builds the workload parameter set for one record count at
// this option's scale and seed.
func (o Options) ycsbParams(records int, modifyParams func(*ycsb.Params)) ycsb.Params {
	p := ycsb.DefaultParams(records)
	p.Operations = o.ycsbOps()
	p.Seed = o.seed()
	if modifyParams != nil {
		modifyParams(&p)
	}
	return p
}

// ycsbIdentity renders the full workload parameter set as a SimJob
// Extra string, so runs at different scales, seeds or thread counts
// never alias in the result cache even when their Configs agree.
func ycsbIdentity(p ycsb.Params) string { return fmt.Sprintf("ycsb:%+v", p) }

// ycsbPoint is one (records, model) grid point, identified before
// execution.
type ycsbPoint struct {
	Key     string
	Records int
	Scopes  int
	Model   Model
}

func ycsbKey(prefix string, records int, m Model) string {
	return fmt.Sprintf("%s/records=%d/model=%s", prefix, records, m)
}

// ycsbGrid enumerates a sweep's grid points — the shared contract
// between Plan (which turns them into jobs) and Report (which looks
// their results up by key).
func ycsbGrid(opts Options, prefix string, models []Model, modifyParams func(*ycsb.Params)) []ycsbPoint {
	var grid []ycsbPoint
	for _, records := range opts.ycsbRecordCounts() {
		p := opts.ycsbParams(records, modifyParams)
		for _, m := range models {
			grid = append(grid, ycsbPoint{
				Key:     ycsbKey(prefix, records, m),
				Records: records,
				Scopes:  ycsb.ScopeCount(p),
				Model:   m,
			})
		}
	}
	return grid
}

// lazyYCSB defers workload generation to the first executing job of a
// record count. Planning therefore touches no workload at all, a
// fully-cached run never generates one, and the sync.Once makes the
// first concurrent use safe; afterwards the workload is frozen
// (Precompute) and shared read-only by every model variant, so all
// models measure the identical operation sequence. With a snapshot
// store attached, generation is first tried as a content-addressed
// load — so across processes sharing the store each database is
// generated at most once suite-wide — and a generated database is
// published back for everyone else.
type lazyYCSB struct {
	p    ycsb.Params
	snap *SnapshotStore
	once sync.Once
	w    *ycsb.Workload
}

func (l *lazyYCSB) workload() *ycsb.Workload {
	l.once.Do(func() {
		l.w = generateYCSB(l.snap, l.p)
	})
	return l.w
}

// planYCSB enumerates one job per (records, model) grid point. One
// lazy workload is shared per record count.
func planYCSB(opts Options, prefix string, models []Model,
	modifyParams func(*ycsb.Params), modify func(*Config)) []SimJob {
	var specs []SimJob
	for _, records := range opts.ycsbRecordCounts() {
		lw := &lazyYCSB{p: opts.ycsbParams(records, modifyParams), snap: opts.Snapshots}
		extra := ycsbIdentity(lw.p)
		for _, m := range models {
			m := m
			specs = append(specs, SimJob{
				Key:  ycsbKey(prefix, records, m),
				Base: DefaultConfig(),
				Mutate: func(cfg *Config) {
					cfg.Model = m
					if modify != nil {
						modify(cfg)
					}
				},
				Execute: countExec(func(cfg Config) (Result, error) {
					return ycsb.Run(lw.workload(), cfg)
				}),
				Extra: extra,
			})
		}
	}
	return specs
}

// RunRecord is one simulated run's outcome inside a sweep.
type RunRecord struct {
	Model   Model
	Records int
	Scopes  int
	Result  Result
}

// gridKeys projects a grid onto its job keys — the per-artifact key
// set the streaming countdown tracks.
func gridKeys(grid []ycsbPoint) []string {
	out := make([]string, len(grid))
	for i, pt := range grid {
		out[i] = pt.Key
	}
	return out
}

// gridRecords folds a grid's looked-up results into RunRecords,
// skipping points whose job failed (absent from the set).
func gridRecords(grid []ycsbPoint, rs *ResultSet) []RunRecord {
	var out []RunRecord
	for _, pt := range grid {
		r, ok := rs.Lookup(pt.Key)
		if !ok {
			continue
		}
		out = append(out, RunRecord{Model: pt.Model, Records: pt.Records, Scopes: pt.Scopes, Result: r})
	}
	return out
}

// YCSBSweep runs the given models across the option's record counts, with
// modify applied to each system config (nil for the base Table II system).
// Points run on the job runner at opts.Parallelism. Job keys use the
// "ycsb" prefix; sweeps with a non-base config should go through
// YCSBSweepNamed so differently-configured points get distinct keys.
func YCSBSweep(opts Options, models []Model, modify func(*Config)) ([]RunRecord, error) {
	return ycsbSweep(opts, "ycsb", models, nil, modify)
}

// YCSBSweepNamed is YCSBSweep with an explicit job-key prefix,
// distinguishing differently-configured grids (Fig. 11 ablations, the
// 8MB-LLC sweep) in progress logs, error reports and the result cache.
func YCSBSweepNamed(opts Options, prefix string, models []Model, modify func(*Config)) ([]RunRecord, error) {
	return ycsbSweep(opts, prefix, models, nil, modify)
}

// ycsbSweep is the plan-then-execute sweep core backing the exported
// sweep helpers: enumerate the grid, run it, fold results back into
// RunRecords.
func ycsbSweep(opts Options, prefix string, models []Model,
	modifyParams func(*ycsb.Params), modify func(*Config)) ([]RunRecord, error) {
	rs, err := runPlan(opts, prefix+" sweep", planYCSB(opts, prefix, models, modifyParams, modify))
	recs := gridRecords(ycsbGrid(opts, prefix, models, modifyParams), rs)
	return recs, err
}

// normalizeToNaive converts a sweep into per-point ratios against Naive.
// It fails explicitly when a record count has no Naive baseline — the
// model list omitted Naive, or its point errored — instead of emitting
// +Inf ratios.
func normalizeToNaive(recs []RunRecord) (map[int]map[string]float64, error) {
	base := map[int]float64{}
	for _, r := range recs {
		if r.Model == Naive {
			base[r.Records] = float64(r.Result.Cycles)
		}
	}
	out := map[int]map[string]float64{}
	for _, r := range recs {
		b := base[r.Records]
		if b == 0 {
			return nil, fmt.Errorf("normalize: no Naive baseline for records=%d (sweep must include a successful Naive point)", r.Records)
		}
		if out[r.Records] == nil {
			out[r.Records] = map[string]float64{}
		}
		out[r.Records][r.Model.String()] = float64(r.Result.Cycles) / b
	}
	return out, nil
}

func scopesOf(recs []RunRecord, records int) int {
	for _, r := range recs {
		if r.Records == records {
			return r.Scopes
		}
	}
	return 0
}

// ---- Fig. 3 ----

// planFig3 is the single job enumeration shared by fig3's spec and the
// exported Fig3 wrapper, so the two cannot drift.
func planFig3(opts Options) []SimJob {
	return planYCSB(opts, "ycsb", fig3Variants, nil, nil)
}

func fig3Spec() ExperimentSpec {
	s := ExperimentSpec{
		Name: "fig3",
		Plan: func(opts Options) ([]SimJob, error) {
			return planFig3(opts), nil
		},
	}
	s.Artifacts, s.Render = singleArtifact("fig3",
		func(opts Options) []string {
			return gridKeys(ycsbGrid(opts, "ycsb", fig3Variants, nil))
		},
		func(opts Options, rs *ResultSet) (string, error) {
			sr, err := fig3Series(opts, rs)
			if err != nil {
				return "", err
			}
			return render(sr), nil
		})
	return s
}

func fig3Series(opts Options, rs *ResultSet) (*Series, error) {
	recs := gridRecords(ycsbGrid(opts, "ycsb", fig3Variants, nil), rs)
	s := report.NewSeries("Fig3", "records", "run time / naive", variantNames(fig3Variants))
	norm, err := normalizeToNaive(recs)
	if err != nil {
		return nil, err
	}
	for _, records := range opts.ycsbRecordCounts() {
		s.AddPoint(float64(records), norm[records])
	}
	return s, nil
}

// Fig3 reproduces Fig. 3: Naive vs Uncacheable vs SW-Flush run time
// (normalized to Naive) over the record-count sweep.
func Fig3(opts Options) (*Series, error) {
	rs, err := runPlan(opts, "fig3", planFig3(opts))
	if err != nil {
		return nil, err
	}
	return fig3Series(opts, rs)
}

// ---- Fig. 7 + Fig. 10 ----

// YCSBFigures bundles the series Figs. 7 and 10 share.
type YCSBFigures struct {
	Abs          *Series // Fig. 7a: absolute run time (seconds)
	Norm         *Series // Fig. 7b: run time normalized to Naive
	BufLen       *Series // Fig. 10a: mean PIM buffer length on arrival
	UniqueScopes *Series // Fig. 10b: mean unique scopes in PIM buffer
	ScanLatency  *Series // Fig. 10c: mean LLC scan latency (cycles)
	SkipRatio    *Series // Fig. 10d: SBV mean skipped-set ratio
}

// buildYCSBFigures derives all YCSB series from one sweep, X = scope count.
func buildYCSBFigures(opts Options, prefix string, recs []RunRecord) (*YCSBFigures, error) {
	names := variantNames(fig7Variants)
	f := &YCSBFigures{
		Abs:          report.NewSeries(prefix+"a", "scopes", "run time [s]", names),
		Norm:         report.NewSeries(prefix+"b", "scopes", "run time / naive", names),
		BufLen:       report.NewSeries(prefix+"-10a", "scopes", "mean PIM buffer len", names),
		UniqueScopes: report.NewSeries(prefix+"-10b", "scopes", "mean unique scopes", names),
		ScanLatency:  report.NewSeries(prefix+"-10c", "scopes", "mean LLC scan latency", names),
		SkipRatio:    report.NewSeries(prefix+"-10d", "scopes", "SBV skip ratio", names),
	}
	norm, err := normalizeToNaive(recs)
	if err != nil {
		return nil, err
	}
	for _, records := range opts.ycsbRecordCounts() {
		x := float64(scopesOf(recs, records))
		abs := map[string]float64{}
		buf := map[string]float64{}
		uniq := map[string]float64{}
		scan := map[string]float64{}
		skip := map[string]float64{}
		for _, r := range recs {
			if r.Records != records {
				continue
			}
			name := r.Model.String()
			abs[name] = r.Result.Seconds
			buf[name] = r.Result.Stats["pim.buffer_len_mean"]
			uniq[name] = r.Result.Stats["pim.unique_scopes_mean"]
			scan[name] = r.Result.Stats["llc.scan_latency_mean"]
			skip[name] = r.Result.Stats["llc.sbv_skip_ratio"]
		}
		f.Abs.AddPoint(x, abs)
		f.Norm.AddPoint(x, norm[records])
		f.BufLen.AddPoint(x, buf)
		f.UniqueScopes.AddPoint(x, uniq)
		f.ScanLatency.AddPoint(x, scan)
		f.SkipRatio.AddPoint(x, skip)
	}
	return f, nil
}

// planFig7 is the job enumeration shared by fig7's spec and the
// exported Fig7 wrapper.
func planFig7(opts Options) []SimJob {
	return planYCSB(opts, "ycsb", fig7Variants, nil, nil)
}

func fig7Spec() ExperimentSpec {
	keys := func(opts Options) []string {
		return gridKeys(ycsbGrid(opts, "ycsb", fig7Variants, nil))
	}
	return ExperimentSpec{
		Name:    "fig7",
		Bundles: []string{"fig10"},
		Plan: func(opts Options) ([]SimJob, error) {
			return planFig7(opts), nil
		},
		// Both artifacts fold the whole sweep (Fig. 10's statistics are
		// cut against the same Naive baselines), so they share one key
		// set and stream out together when the sweep settles.
		Artifacts: func(opts Options) []Artifact {
			ks := keys(opts)
			return []Artifact{{Name: "fig7", Keys: ks}, {Name: "fig10", Keys: ks}}
		},
		Render: func(opts Options, artifact string, rs *ResultSet) (string, error) {
			f, err := buildYCSBFigures(opts, "Fig7", gridRecords(ycsbGrid(opts, "ycsb", fig7Variants, nil), rs))
			if err != nil {
				return "", err
			}
			switch artifact {
			case "fig7":
				return render(f.Abs, f.Norm), nil
			case "fig10":
				return render(f.BufLen, f.UniqueScopes, f.ScanLatency, f.SkipRatio), nil
			}
			return "", fmt.Errorf("fig7: unknown artifact %q", artifact)
		},
	}
}

// Fig7 reproduces Fig. 7 (run times) and Fig. 10 (system statistics) from
// one YCSB sweep over all six variants.
func Fig7(opts Options) (*YCSBFigures, error) {
	rs, err := runPlan(opts, "fig7", planFig7(opts))
	if err != nil {
		return nil, err
	}
	return buildYCSBFigures(opts, "Fig7", gridRecords(ycsbGrid(opts, "ycsb", fig7Variants, nil), rs))
}

// ---- Fig. 11a / Fig. 11b ----

// planFigModified enumerates a Fig. 11 ablation: a fig7-variant sweep
// under a modified config plus the bounded-buffer Naive baseline from
// the base "ycsb" sweep. Shared by the specs and the exported
// wrappers.
func planFigModified(opts Options, prefix string, modify func(*Config)) []SimJob {
	jobs := planYCSB(opts, prefix, fig7Variants, nil, modify)
	return append(jobs, planYCSB(opts, "ycsb", []Model{Naive}, nil, nil)...)
}

// figModifiedSpec describes the Fig. 11 harness ablations, referenced
// against the "basic-naive" baseline series.
func figModifiedSpec(name string, modify func(*Config)) ExperimentSpec {
	prefix := strings.ToLower(name)
	s := ExperimentSpec{
		Name: prefix,
		Plan: func(opts Options) ([]SimJob, error) {
			return planFigModified(opts, prefix, modify), nil
		},
	}
	s.Artifacts, s.Render = singleArtifact(prefix,
		func(opts Options) []string {
			// The modified sweep plus the base-config Naive reference —
			// the same two grids planFigModified enumerates.
			return append(gridKeys(ycsbGrid(opts, prefix, fig7Variants, nil)),
				gridKeys(ycsbGrid(opts, "ycsb", []Model{Naive}, nil))...)
		},
		func(opts Options, rs *ResultSet) (string, error) {
			sr, err := figModifiedSeries(opts, name, rs)
			if err != nil {
				return "", err
			}
			return render(sr), nil
		})
	return s
}

func figModifiedSeries(opts Options, name string, rs *ResultSet) (*Series, error) {
	prefix := strings.ToLower(name)
	recs := gridRecords(ycsbGrid(opts, prefix, fig7Variants, nil), rs)
	baseNaive := gridRecords(ycsbGrid(opts, "ycsb", []Model{Naive}, nil), rs)
	names := append(variantNames(fig7Variants), "basic-naive")
	s := report.NewSeries(name, "scopes", "run time / naive", names)
	norm, err := normalizeToNaive(recs)
	if err != nil {
		return nil, err
	}
	for _, records := range opts.ycsbRecordCounts() {
		vals := norm[records]
		var naiveCycles float64
		for _, r := range recs {
			if r.Records == records && r.Model == Naive {
				naiveCycles = float64(r.Result.Cycles)
			}
		}
		for _, r := range baseNaive {
			if r.Records == records {
				vals["basic-naive"] = float64(r.Result.Cycles) / naiveCycles
			}
		}
		s.AddPoint(float64(scopesOf(recs, records)), vals)
	}
	return s, nil
}

func fig11aSpec() ExperimentSpec {
	return figModifiedSpec("Fig11a", func(cfg *Config) { cfg.PIMBufferSize = 0 })
}

func fig11bSpec() ExperimentSpec {
	return figModifiedSpec("Fig11b", func(cfg *Config) { cfg.PIMZeroLatency = true })
}

// Fig11a: unbounded PIM module buffer. The extra "basic-naive" series is
// the bounded-buffer Naive baseline the paper includes for reference.
func Fig11a(opts Options) (*Series, error) {
	return figWithModifiedConfig(opts, "Fig11a", func(cfg *Config) { cfg.PIMBufferSize = 0 })
}

// Fig11b: zero PIM logic execution time.
func Fig11b(opts Options) (*Series, error) {
	return figWithModifiedConfig(opts, "Fig11b", func(cfg *Config) { cfg.PIMZeroLatency = true })
}

func figWithModifiedConfig(opts Options, name string, modify func(*Config)) (*Series, error) {
	rs, err := runPlan(opts, strings.ToLower(name), planFigModified(opts, strings.ToLower(name), modify))
	if err != nil {
		return nil, err
	}
	return figModifiedSeries(opts, name, rs)
}

// ---- Fig. 12 ----

func fig12Modify(cfg *Config) {
	cfg.LLCSets = 8192 // 8MB, 16-way, 64B lines
}

func planFig12(opts Options) []SimJob {
	return planYCSB(opts, "fig12", fig7Variants, nil, fig12Modify)
}

func fig12Spec() ExperimentSpec {
	s := ExperimentSpec{
		Name: "fig12",
		Plan: func(opts Options) ([]SimJob, error) {
			return planFig12(opts), nil
		},
	}
	s.Artifacts, s.Render = singleArtifact("fig12",
		func(opts Options) []string {
			return gridKeys(ycsbGrid(opts, "fig12", fig7Variants, nil))
		},
		func(opts Options, rs *ResultSet) (string, error) {
			f, err := buildYCSBFigures(opts, "Fig12", gridRecords(ycsbGrid(opts, "fig12", fig7Variants, nil), rs))
			if err != nil {
				return "", err
			}
			return render(f.Norm, f.ScanLatency, f.SkipRatio), nil
		})
	return s
}

// Fig12 reproduces the 8MB-LLC experiment: run time plus the scan-latency
// and SBV statistics (Fig. 12a-c).
func Fig12(opts Options) (*YCSBFigures, error) {
	rs, err := runPlan(opts, "fig12", planFig12(opts))
	if err != nil {
		return nil, err
	}
	return buildYCSBFigures(opts, "Fig12", gridRecords(ycsbGrid(opts, "fig12", fig7Variants, nil), rs))
}

// ---- Fig. 13 ----

func fig13Params(p *ycsb.Params) { p.Threads = 8 }
func fig13Modify(cfg *Config)    { cfg.Cores = 16 }

func planFig13(opts Options) []SimJob {
	return planYCSB(opts, "fig13", fig7Variants, fig13Params, fig13Modify)
}

func fig13Spec() ExperimentSpec {
	s := ExperimentSpec{
		Name: "fig13",
		Plan: func(opts Options) ([]SimJob, error) {
			return planFig13(opts), nil
		},
	}
	s.Artifacts, s.Render = singleArtifact("fig13",
		func(opts Options) []string {
			return gridKeys(ycsbGrid(opts, "fig13", fig7Variants, fig13Params))
		},
		func(opts Options, rs *ResultSet) (string, error) {
			sr, err := fig13Series(opts, rs)
			if err != nil {
				return "", err
			}
			return render(sr), nil
		})
	return s
}

func fig13Series(opts Options, rs *ResultSet) (*Series, error) {
	recs := gridRecords(ycsbGrid(opts, "fig13", fig7Variants, fig13Params), rs)
	s := report.NewSeries("Fig13", "scopes", "run time / naive", variantNames(fig7Variants))
	norm, err := normalizeToNaive(recs)
	if err != nil {
		return nil, err
	}
	for _, records := range opts.ycsbRecordCounts() {
		s.AddPoint(float64(scopesOf(recs, records)), norm[records])
	}
	return s, nil
}

// Fig13 reproduces the 8-thread / 16-core experiment.
func Fig13(opts Options) (*Series, error) {
	rs, err := runPlan(opts, "fig13", planFig13(opts))
	if err != nil {
		return nil, err
	}
	return fig13Series(opts, rs)
}
