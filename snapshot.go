package bulkpim

// Workload snapshot glue: the bridge between the experiment specs'
// lazy workload generation and the content-addressed snapshot store
// (internal/snapshot). Every workload a spec plans is identified by
// the same identity string its jobs carry in SimJob.Extra — the
// workload half of the result-cache fingerprint — so the snapshot id
// is derived from an identity the pipeline already agrees on
// everywhere. generateYCSB/generateTPCH consult the store before
// generating and publish after (YCSB after Precompute, so a loaded
// database is frozen and shareable), and count every actual
// generation through genCount: the instrumentation behind the
// "a warm snapshot run generates zero workloads" invariant CI gates,
// mirroring execCount's plan/execute separation contract.

import (
	"sync/atomic"

	"bulkpim/internal/snapshot"
	"bulkpim/internal/workload/tpch"
	"bulkpim/internal/workload/ycsb"
)

// genCount counts actual workload generations, process-wide. A
// snapshot hit does not count; a miss, a corrupt snapshot or a
// store-less run does. Tests and the pimbench footer read it through
// WorkloadGenerations as before/after deltas.
var genCount atomic.Int64

// WorkloadGenerations returns the process-wide count of workload
// generations (snapshot hits excluded). Read it before and after a
// run and subtract: a run served entirely from snapshots — or from
// the result cache, which never touches workloads at all — adds zero.
func WorkloadGenerations() int64 { return genCount.Load() }

// generateYCSB returns the workload for p: loaded from the snapshot
// store when possible, generated (and published back) otherwise. A
// snapshot that fails to decode or verify falls back to generation —
// never to an error: snapshots are an accelerator, not a dependency.
func generateYCSB(snap *SnapshotStore, p ycsb.Params) *ycsb.Workload {
	identity := ycsbIdentity(p)
	if snap != nil {
		if b, ok := snap.Load(snapshot.ID(identity)); ok {
			w, err := ycsb.FromSnapshot(b, p)
			if err == nil {
				return w
			}
			// The store's integrity check passed but the workload layer
			// rejected the payload (wire-version skew, foreign params):
			// re-book the hit as a corrupt miss so the stats report
			// workloads served, not bytes read.
			snap.DecodeFailed()
		}
	}
	genCount.Add(1)
	w := ycsb.New(p)
	w.Precompute()
	if snap != nil {
		if b, err := w.Snapshot(); err == nil {
			// Publish errors are counted in the store's stats; the
			// generated workload is still good.
			_ = snap.Save(snapshot.ID(identity), identity, b)
		}
	}
	return w
}

// generateTPCH is generateYCSB's TPC-H counterpart. The construction
// is cheap, but routing it through the store keeps the
// zero-generations invariant uniform across workload kinds.
func generateTPCH(snap *SnapshotStore, q tpch.QuerySpec, threads int, scale float64, verify bool) *tpch.Workload {
	identity := tpchIdentity(q, threads, scale, verify)
	if snap != nil {
		if b, ok := snap.Load(snapshot.ID(identity)); ok {
			w, err := tpch.FromSnapshot(b, q, threads, scale, verify)
			if err == nil {
				return w
			}
			snap.DecodeFailed()
		}
	}
	genCount.Add(1)
	w := tpch.NewWorkload(q, threads, scale, verify)
	if snap != nil {
		if b, err := w.Snapshot(); err == nil {
			_ = snap.Save(snapshot.ID(identity), identity, b)
		}
	}
	return w
}

// PrewarmSnapshots generates and publishes the most expensive
// workloads the named experiment ("all" for the suite) actually plans:
// the largest YCSB database in its default shape (shared by the top
// grid points of every base sweep plus the fig9-ycsb, ablation, sbsize
// and multimod batches) and in its Fig. 13 8-thread shape — each only
// when some planned job carries its identity, so a TPC-H-only run
// pre-warms nothing. Databases whose snapshot already exists are
// skipped with a header-only presence check (no multi-GB load just to
// discard it). The coordinator calls this before dispatch so a fleet
// sharing the store's filesystem finds the big databases instead of
// racing to regenerate them; everything smaller is published by
// whichever worker generates it first. No-op without a store. Returns
// how many databases were generated here (0 = present or not planned).
func PrewarmSnapshots(name string, opts Options) int {
	if opts.Snapshots == nil {
		return 0
	}
	planned, err := planFor(name, opts)
	if err != nil {
		// The caller surfaces plan errors on its own path; the pre-warm
		// just declines to guess what to generate.
		return 0
	}
	return prewarmPlanned(opts, plannedIdentities(planned))
}

// plannedIdentities collects the workload identity strings a plan's
// jobs carry in Extra.
func plannedIdentities(planned []plannedExperiment) map[string]bool {
	identities := map[string]bool{}
	for _, p := range planned {
		for _, j := range p.jobs {
			identities[j.Extra] = true
		}
	}
	return identities
}

// prewarmPlanned is the pre-warm core over an already-enumerated
// identity set. Coordinate feeds it the plan it just dispatched from,
// so the suite is not planned twice and the two views cannot drift.
func prewarmPlanned(opts Options, identities map[string]bool) int {
	before := genCount.Load()
	counts := opts.ycsbRecordCounts()
	last := counts[len(counts)-1]
	for _, p := range []ycsb.Params{
		opts.ycsbParams(last, nil),
		opts.ycsbParams(last, fig13Params),
	} {
		identity := ycsbIdentity(p)
		if !identities[identity] || opts.Snapshots.Contains(snapshot.ID(identity)) {
			continue
		}
		generateYCSB(opts.Snapshots, p)
	}
	return int(genCount.Load() - before)
}
